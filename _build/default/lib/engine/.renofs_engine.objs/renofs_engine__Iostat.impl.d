lib/engine/iostat.ml: Cpu Float List Proc Sim Stats
