(** Network-interface CPU cost model (Section 3 of the paper).

    The paper found over a third of server CPU going to low-level network
    interface handling, dominated by copying mbuf data into the board's
    transmit buffers.  Two tunings were applied: mapping mbuf clusters
    into the transmit ring by page-table swaps instead of copying, and
    disabling transmit-complete interrupts.  A profile captures those
    knobs plus the underlying machine constants, and converts a packet
    into seconds of CPU work for the host's {!Renofs_engine.Cpu}. *)

type buffer_strategy =
  | Copy_to_board  (** memcpy every byte into interface buffers *)
  | Map_clusters
      (** swap page-table entries for cluster mbufs; only small
          (sub-cluster) mbufs are copied *)

type profile = {
  strategy : buffer_strategy;
  tx_interrupts : bool;
  per_packet_tx : float;  (** driver start cost per packet, seconds *)
  per_packet_rx : float;  (** receive interrupt + demux per packet *)
  tx_intr_cost : float;  (** transmit-complete interrupt, if enabled *)
  copy_bandwidth : float;  (** memory-to-memory bytes/second *)
  page_map_cost : float;  (** per-cluster PTE swap, seconds *)
  checksum_bandwidth : float;  (** internet-checksum bytes/second *)
}

val deqna_stock : profile
(** The unmodified driver: copy everything, take transmit interrupts. *)

val deqna_tuned : profile
(** After the paper's Section 3 changes: mapped clusters, no transmit
    interrupts, slightly cheaper (unrolled) start routine. *)

val fast_station : profile
(** A DS3100-class interface for the Table 4 client: same structure,
    roughly 15x the memory bandwidth. *)

val tx_cost : profile -> data_bytes:int -> clusters:int -> small_bytes:int -> float
(** CPU seconds to hand one packet to the interface.  [data_bytes] is the
    total payload, split as [clusters] cluster mbufs plus [small_bytes]
    bytes living in small mbufs (headers etc.), which are always
    copied. *)

val rx_cost : profile -> data_bytes:int -> float
(** CPU seconds to take one packet off the interface (interrupt + copy
    into mbufs). *)

val checksum_cost : profile -> bytes:int -> float
(** CPU seconds to checksum a datagram's payload. *)
