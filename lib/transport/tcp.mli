(** A 4.3BSD-Reno-style TCP over the simulated IP layer.

    Implements the pieces the paper's transport comparison depends on:
    Jacobson RTT estimation with [A + 4D] timeouts and Karn's rule,
    slow start and congestion avoidance [Jacobson88a], Reno fast
    retransmit / fast recovery, exponential timer backoff, go-back-N on
    timeout, receiver-advertised flow control with a persist probe, and
    out-of-order reassembly.  Each segment carries a real 20-byte header
    in its payload, and protocol processing is charged to the host CPU —
    the source of TCP's ~20% CPU premium over UDP in Graph 6.

    Simplifications (documented in DESIGN.md): no delayed ACKs (4.3BSD's
    200 ms ACK timer mostly vanishes under RPC traffic because replies
    follow requests immediately), initial sequence numbers are zero, and
    connection teardown is abbreviated (no TIME_WAIT). *)

type stack
type conn

exception Connection_closed
exception Connect_timeout

(** Per-connection observability for the benches. *)
type stats = {
  segs_sent : int;
  segs_received : int;
  retransmit_timeouts : int;
  fast_retransmits : int;
  bytes_sent : int;
  srtt : float;
  rto : float;
  cwnd : float;
}

val install :
  ?send_instructions:float ->
  ?recv_instructions:float ->
  ?ack_instructions:float ->
  Renofs_net.Node.t ->
  stack
(** Claim the node's TCP input.  The instruction counts are per-segment
    protocol-processing costs (defaults 480 / 480 / 200), converted to
    seconds on this node's CPU. *)

val node : stack -> Renofs_net.Node.t

val checksum_drops : stack -> int
(** Segments discarded on input because they were shorter than a header
    or failed the (always-on) TCP checksum — wire corruption the
    sender's retransmission repairs. *)

val listen : stack -> port:int -> (conn -> unit) -> unit
(** Accept connections on [port]; the callback runs as a new process per
    connection. *)

val connect :
  ?mss:int -> ?rcv_buffer:int -> stack -> dst:int -> dst_port:int -> conn
(** Active open; blocks until established.  [mss] defaults to 512, the
    4.3BSD choice for non-local destinations (1460 is the on-LAN value).
    Raises {!Connect_timeout} after repeated unanswered SYNs. *)

val send : conn -> Renofs_mbuf.Mbuf.t -> unit
(** Queue bytes for transmission; blocks while the send buffer is full.
    Concurrent senders are serialised, as the paper notes the Reno NFS
    does for stream sockets.  Consumes the chain. *)

val recv : conn -> max:int -> Renofs_mbuf.Mbuf.t
(** Block until at least one byte is readable; returns at most [max]
    bytes.  Raises {!Connection_closed} once the peer has closed and the
    buffer is drained. *)

val close : conn -> unit
(** Send FIN after pending data; further {!send}s raise. *)

val abort : conn -> unit
(** Hard reset: send RST, drop all state, wake blocked callers with
    {!Connection_closed}.  Must run inside a process. *)

val reset_all : stack -> unit
(** {!abort} every connection — what a host reboot does. *)

val stats : conn -> stats
val mss : conn -> int

val peer : conn -> int
(** Remote host id. *)

val peer_port : conn -> int

val debug_dump : conn -> string
(** One-line internal state summary (sequence space, windows, timers);
    for tests and troubleshooting. *)
