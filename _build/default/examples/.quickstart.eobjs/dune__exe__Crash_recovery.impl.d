examples/crash_recovery.ml: Bytes List Printf Renofs_core Renofs_engine Renofs_net Renofs_transport
