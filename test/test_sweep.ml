(* The parallel sweep runner and the typed experiment-cell API.

   The contract under test: any --jobs value produces byte-identical
   rendered tables, JSON documents and trace streams, because results
   are reassembled by cell index and every cell runs in its own world
   with a private trace sink. *)

open Renofs_workload
module E = Experiments
module Trace = Renofs_trace.Trace

(* ------------------------------------------------------------------ *)
(* Sweep: the domain pool itself                                      *)
(* ------------------------------------------------------------------ *)

let test_sweep_order () =
  let cells = List.init 17 (fun i -> Sweep.cell (fun () -> i * 10)) in
  let expect = List.init 17 (fun i -> i * 10) in
  Alcotest.(check (list int)) "jobs 1" expect (Sweep.run ~jobs:1 cells);
  Alcotest.(check (list int)) "jobs 4" expect (Sweep.run ~jobs:4 cells)

let test_sweep_empty () =
  Alcotest.(check (list int)) "no cells" [] (Sweep.run ~jobs:4 [])

let test_sweep_oversubscription () =
  (* More domains than cells: jobs is clamped, results still ordered. *)
  let cells = List.init 3 (fun i -> Sweep.cell (fun () -> i)) in
  Alcotest.(check (list int)) "jobs 64" [ 0; 1; 2 ] (Sweep.run ~jobs:64 cells)

let test_sweep_uneven_cells () =
  (* Long cells must not displace short ones in the result order. *)
  let work n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := (!acc * 31) + i
    done;
    !acc
  in
  let sizes = [ 500_000; 10; 200_000; 10; 10; 300_000; 10; 10 ] in
  let cells = List.map (fun n -> Sweep.cell (fun () -> work n)) sizes in
  let expect = List.map work sizes in
  Alcotest.(check (list int)) "by index" expect (Sweep.run ~jobs:4 cells)

exception Boom of int

let test_sweep_exn_lowest_index () =
  (* Cells 1 and 3 both fail; run must re-raise cell 1's exception. *)
  let cells =
    List.init 5 (fun i ->
        Sweep.cell (fun () -> if i = 1 || i = 3 then raise (Boom i) else i))
  in
  List.iter
    (fun jobs ->
      match Sweep.run ~jobs cells with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          Alcotest.(check int) (Printf.sprintf "jobs %d" jobs) 1 i)
    [ 1; 2; 5 ]

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Sweep.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Determinism: serial and parallel runs are byte-identical           *)
(* ------------------------------------------------------------------ *)

let render_string results =
  Format.asprintf "%a" E.print_table (E.render results)

let spec_exn id =
  match E.spec ~scale:E.Quick id with
  | Some s -> s
  | None -> Alcotest.fail ("unknown spec " ^ id)

let test_determinism id () =
  let serial = E.run_spec ~jobs:1 (spec_exn id) in
  let parallel = E.run_spec ~jobs:4 (spec_exn id) in
  Alcotest.(check string)
    "rendered table" (render_string serial) (render_string parallel);
  (* Same ~jobs in the emission so the comparison covers the typed
     results, not the run metadata. *)
  Alcotest.(check string)
    "json document"
    (Bench_json.emit ~scale:E.Quick ~jobs:1 [ serial ])
    (Bench_json.emit ~scale:E.Quick ~jobs:1 [ parallel ])

let test_trace_merge_equivalence () =
  (* Parallel cells record into private sinks, merged in cell order:
     the combined stream must equal a serial run's, line for line. *)
  let run jobs =
    let tr = Trace.create ~capacity:(1 lsl 18) () in
    ignore (E.run_spec ~jobs ~trace:tr (spec_exn "graph1"));
    tr
  in
  let serial = run 1 and parallel = run 4 in
  Alcotest.(check int) "dropped" (Trace.dropped serial) (Trace.dropped parallel);
  Alcotest.(check (list string))
    "event stream"
    (List.map Trace.line_of_record (Trace.to_list serial))
    (List.map Trace.line_of_record (Trace.to_list parallel))

(* ------------------------------------------------------------------ *)
(* Registry: every spec has metadata and renders a well-formed table  *)
(* ------------------------------------------------------------------ *)

let test_registry_lookup_covers_specs () =
  List.iter
    (fun (id, _) ->
      match E.spec id with
      | Some s -> Alcotest.(check string) (id ^ " resolves") id s.E.sp_id
      | None -> Alcotest.failf "spec %S not resolvable by id" id)
    E.specs

let test_registry_metadata () =
  List.iter
    (fun (id, mk) ->
      let s = mk E.Quick in
      Alcotest.(check string) (id ^ " id") id s.E.sp_id;
      Alcotest.(check bool) (id ^ " has title") true (s.E.sp_title <> "");
      Alcotest.(check bool) (id ^ " has cells") true (List.length s.E.sp_cells > 0);
      List.iter
        (fun c -> Alcotest.(check bool) (id ^ " cell label") true (c.E.cell_label <> ""))
        s.E.sp_cells)
    E.specs

let test_registry_tables_well_formed () =
  List.iter
    (fun (id, mk) ->
      let t = E.render (E.run_spec ~jobs:2 (mk E.Quick)) in
      let cols = List.length t.E.header in
      Alcotest.(check bool) (id ^ " has columns") true (cols > 0);
      Alcotest.(check bool) (id ^ " has rows") true (t.E.rows <> []);
      List.iteri
        (fun i row ->
          Alcotest.(check int)
            (Printf.sprintf "%s row %d width" id i)
            cols (List.length row))
        t.E.rows)
    E.specs

(* ------------------------------------------------------------------ *)
(* JSON: emission validates, garbage does not                         *)
(* ------------------------------------------------------------------ *)

let test_json_emitted_validates () =
  let results = List.map (fun id -> E.run_spec ~jobs:2 (spec_exn id)) [ "table5" ] in
  match Bench_json.validate (Bench_json.emit ~scale:E.Quick ~jobs:2 results) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("emitted document rejected: " ^ msg)

let check_invalid name doc =
  match Bench_json.validate doc with
  | Ok () -> Alcotest.fail (name ^ ": accepted")
  | Error _ -> ()

let test_json_rejects_bad_documents () =
  check_invalid "garbage" "not json at all";
  check_invalid "wrong schema"
    {|{"schema":"other/9","scale":"quick","jobs":1,"experiments":[]}|};
  check_invalid "empty experiments"
    {|{"schema":"renofs-bench/1","scale":"quick","jobs":1,"experiments":[]}|};
  check_invalid "bad scale"
    {|{"schema":"renofs-bench/1","scale":"medium","jobs":1,"experiments":[]}|};
  check_invalid "ragged row"
    {|{"schema":"renofs-bench/1","scale":"quick","jobs":1,"experiments":[
       {"id":"x","title":"t","header":["a","b"],
        "rows":[[{"type":"text","value":"only one"}]]}]}|};
  check_invalid "unknown unit"
    {|{"schema":"renofs-bench/1","scale":"quick","jobs":1,"experiments":[
       {"id":"x","title":"t","header":["a"],
        "rows":[[{"type":"int","value":3,"unit":"furlongs"}]]}]}|}

let test_json_file_roundtrip () =
  let path = Filename.temp_file "renofs_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bench_json.write_file ~scale:E.Quick ~jobs:2 ~path
        [ E.run_spec ~jobs:2 (spec_exn "table5") ];
      match Bench_json.validate_file path with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sweep"
    [
      ( "pool",
        [
          Alcotest.test_case "cell-index order" `Quick test_sweep_order;
          Alcotest.test_case "empty" `Quick test_sweep_empty;
          Alcotest.test_case "oversubscription" `Quick test_sweep_oversubscription;
          Alcotest.test_case "uneven cells" `Quick test_sweep_uneven_cells;
          Alcotest.test_case "lowest-index exception" `Quick
            test_sweep_exn_lowest_index;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "graph1 serial = parallel" `Quick
            (test_determinism "graph1");
          Alcotest.test_case "table5 serial = parallel" `Quick
            (test_determinism "table5");
          Alcotest.test_case "trace merge" `Quick test_trace_merge_equivalence;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lookup covers specs" `Quick
            test_registry_lookup_covers_specs;
          Alcotest.test_case "metadata" `Quick test_registry_metadata;
          Alcotest.test_case "tables well-formed" `Quick
            test_registry_tables_well_formed;
        ] );
      ( "json",
        [
          Alcotest.test_case "emitted validates" `Quick test_json_emitted_validates;
          Alcotest.test_case "rejects bad documents" `Quick
            test_json_rejects_bad_documents;
          Alcotest.test_case "file roundtrip" `Quick test_json_file_roundtrip;
        ] );
    ]
