(* Cross-client integration tests: the consistency semantics of
   Section 1 and Section 5 observed end-to-end through two independent
   mounts of one server. *)

open Renofs_core
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Stats = Renofs_engine.Stats
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module P = Nfs_proto

type world = {
  sim : Sim.t;
  topo : Net.Topology.t;
  server : Nfs_server.t;
  client_udp : Udp.stack;
  client_tcp : Tcp.stack;
}

let make_world () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  {
    sim;
    topo;
    server;
    client_udp = Udp.install topo.Net.Topology.client;
    client_tcp = Tcp.install topo.Net.Topology.client;
  }

let run_client w body =
  let result = ref None in
  Proc.spawn w.sim (fun () -> result := Some (body ()));
  Sim.run ~until:36_000.0 w.sim;
  match !result with Some r -> r | None -> Alcotest.fail "client never finished"

let mount_in w opts =
  Nfs_client.mount ~udp:w.client_udp ~tcp:w.client_tcp
    ~server:(Net.Topology.server_id w.topo)
    ~root:(Nfs_server.root_fhandle w.server)
    opts

(* ------------------------------------------------------------------ *)
(* Close/open consistency                                             *)
(* ------------------------------------------------------------------ *)

let test_close_open_consistency () =
  (* "a client opening file X for reading after another client that was
     writing to file X does a close, is guaranteed to see those
     changes" (Section 1). *)
  let w = make_world () in
  run_client w (fun () ->
      let a = mount_in w Nfs_client.reno_mount in
      let b = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create a "shared" in
      Nfs_client.write a fd ~off:0 (Bytes.of_string "version-1");
      Nfs_client.close a fd;
      (* B opens after A's close: must see version-1. *)
      let fdb = Nfs_client.open_ b "shared" in
      Alcotest.(check string) "b sees v1" "version-1"
        (Bytes.to_string (Nfs_client.read b fdb ~off:0 ~len:100));
      Nfs_client.close b fdb;
      (* A rewrites and closes again. *)
      let fd = Nfs_client.open_ a "shared" in
      Nfs_client.write a fd ~off:0 (Bytes.of_string "version-2");
      Nfs_client.close a fd;
      (* B must not serve its stale cache on a fresh open once its
         cached attributes have expired. *)
      Proc.sleep w.sim 6.0;
      let fdb = Nfs_client.open_ b "shared" in
      Alcotest.(check string) "b sees v2 after close" "version-2"
        (Bytes.to_string (Nfs_client.read b fdb ~off:0 ~len:100)))

let test_staleness_bounded_by_attr_timeout () =
  (* "cached data will be consistent with that of the server to within a
     few seconds" — within the window, stale data is permitted; after
     it, the change must be visible. *)
  let w = make_world () in
  run_client w (fun () ->
      let a = mount_in w Nfs_client.reno_mount in
      let b = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create a "f" in
      Nfs_client.write a fd ~off:0 (Bytes.of_string "old");
      Nfs_client.close a fd;
      let fdb = Nfs_client.open_ b "f" in
      ignore (Nfs_client.read b fdb ~off:0 ~len:10);
      (* A updates behind B's back. *)
      let fda = Nfs_client.open_ a "f" in
      Nfs_client.write a fda ~off:0 (Bytes.of_string "new");
      Nfs_client.close a fda;
      (* Past the attribute timeout B revalidates and must see it. *)
      Proc.sleep w.sim 6.0;
      Alcotest.(check string) "b sees update within seconds" "new"
        (Bytes.to_string (Nfs_client.read b fdb ~off:0 ~len:10)))

let test_noconsist_never_revalidates () =
  let w = make_world () in
  run_client w (fun () ->
      let a = mount_in w Nfs_client.reno_mount in
      let b = mount_in w Nfs_client.noconsist_mount in
      let fd = Nfs_client.create a "f" in
      Nfs_client.write a fd ~off:0 (Bytes.of_string "old");
      Nfs_client.close a fd;
      let fdb = Nfs_client.open_ b "f" in
      Alcotest.(check string) "b reads old" "old"
        (Bytes.to_string (Nfs_client.read b fdb ~off:0 ~len:10));
      let fda = Nfs_client.open_ a "f" in
      Nfs_client.write a fda ~off:0 (Bytes.of_string "new");
      Nfs_client.close a fda;
      Proc.sleep w.sim 20.0;
      (* The experimental mount flag disables the consistency checks:
         B keeps serving its cache indefinitely. *)
      Alcotest.(check string) "b still serves stale cache" "old"
        (Bytes.to_string (Nfs_client.read b fdb ~off:0 ~len:10)))

let test_disjoint_writers_merge () =
  let w = make_world () in
  run_client w (fun () ->
      let a = mount_in w Nfs_client.reno_mount in
      let b = mount_in w Nfs_client.reno_mount in
      let fda = Nfs_client.create a "merged" in
      Nfs_client.write a fda ~off:0 (Bytes.of_string "AAAA");
      Nfs_client.close a fda;
      let fdb = Nfs_client.open_ b "merged" in
      Nfs_client.write b fdb ~off:4 (Bytes.of_string "BBBB");
      Nfs_client.close b fdb;
      Proc.sleep w.sim 6.0;
      let c = mount_in w Nfs_client.reno_mount in
      let fdc = Nfs_client.open_ c "merged" in
      Alcotest.(check string) "both writes visible" "AAAABBBB"
        (Bytes.to_string (Nfs_client.read c fdc ~off:0 ~len:20)))

let test_stale_handle_after_remove () =
  let w = make_world () in
  run_client w (fun () ->
      let a = mount_in w Nfs_client.reno_mount in
      let b = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create a "doomed" in
      Nfs_client.write a fd ~off:0 (Bytes.make 20000 'x');
      Nfs_client.close a fd;
      let fdb = Nfs_client.open_ b "doomed" in
      ignore (Nfs_client.read b fdb ~off:0 ~len:10);
      Nfs_client.unlink a "doomed";
      (* B's handle is now dead on the stateless server; uncached reads
         must surface ESTALE. *)
      Proc.sleep w.sim 6.0;
      match Nfs_client.read b fdb ~off:16384 ~len:100 with
      | exception Nfs_client.Nfs_error P.NFSERR_STALE -> ()
      | _ -> Alcotest.fail "expected NFSERR_STALE")

let test_rename_visible_across_clients () =
  let w = make_world () in
  run_client w (fun () ->
      let a = mount_in w Nfs_client.reno_mount in
      let b = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create a "from" in
      Nfs_client.write a fd ~off:0 (Bytes.of_string "payload");
      Nfs_client.close a fd;
      ignore (Nfs_client.stat b "from");
      Nfs_client.rename a "from" "to";
      Proc.sleep w.sim 6.0;
      (* B's cached name for "from" must be revalidated away. *)
      (match Nfs_client.stat b "from" with
      | exception Nfs_client.Nfs_error P.NFSERR_NOENT -> ()
      | _ -> Alcotest.fail "stale name served after rename");
      Alcotest.(check string) "new name readable" "payload"
        (Bytes.to_string (Nfs_client.read b (Nfs_client.open_ b "to") ~off:0 ~len:10)))

let test_mixed_transports_share_server () =
  let w = make_world () in
  run_client w (fun () ->
      let udp_mount = mount_in w Nfs_client.reno_mount in
      let tcp_mount = mount_in w Nfs_client.reno_tcp_mount in
      let fd = Nfs_client.create udp_mount "cross" in
      Nfs_client.write udp_mount fd ~off:0 (Bytes.of_string "via-udp");
      Nfs_client.close udp_mount fd;
      let fd2 = Nfs_client.open_ tcp_mount "cross" in
      Alcotest.(check string) "tcp mount reads udp mount's data" "via-udp"
        (Bytes.to_string (Nfs_client.read tcp_mount fd2 ~off:0 ~len:10)))

let test_many_concurrent_clients () =
  (* Stress: several mounts hammering one server stay coherent. *)
  let w = make_world () in
  let total = 6 in
  let finished = ref 0 in
  for i = 0 to total - 1 do
    Proc.spawn w.sim (fun () ->
        let m =
          mount_in w
            (if i mod 2 = 0 then Nfs_client.reno_mount else Nfs_client.reno_tcp_mount)
        in
        let name = Printf.sprintf "c%d" i in
        Nfs_client.mkdir m name;
        for j = 0 to 9 do
          let f = Printf.sprintf "%s/f%d" name j in
          let fd = Nfs_client.create m f in
          Nfs_client.write m fd ~off:0 (Bytes.make (1000 * (j + 1)) (Char.chr (65 + i)));
          Nfs_client.close m fd
        done;
        for j = 0 to 9 do
          let f = Printf.sprintf "%s/f%d" name j in
          let fd = Nfs_client.open_ m f in
          let data = Nfs_client.read m fd ~off:0 ~len:20000 in
          Alcotest.(check int) "size" (1000 * (j + 1)) (Bytes.length data);
          Bytes.iter
            (fun c -> if c <> Char.chr (65 + i) then Alcotest.fail "cross-client corruption")
            data
        done;
        incr finished)
  done;
  Sim.run ~until:36_000.0 w.sim;
  Alcotest.(check int) "all clients finished" total !finished;
  (* The server saw work from everyone. *)
  Alcotest.(check bool) "server busy" true (Nfs_server.rpcs_served w.server > 100)

let test_server_counters_match_client_counters () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (Bytes.make 20000 'z');
      Nfs_client.close m fd;
      ignore (Nfs_client.read m (Nfs_client.open_ m "f") ~off:0 ~len:20000);
      ignore (Nfs_client.readdir m "/");
      (* Every client-issued RPC must have been served exactly once
         (clean LAN: no retransmissions, no duplicates). *)
      let client_total = Stats.Counter.total (Nfs_client.rpc_counters m) in
      (* The mount itself did one getattr before counters existed? No:
         counters include it.  Server counters must match. *)
      Alcotest.(check int) "rpc conservation" client_total
        (Nfs_server.rpcs_served w.server))

let test_cpu_accounting_conservation () =
  (* Sanity for the measurement harness: both hosts accumulate busy
     time, and neither exceeds wall time. *)
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      for i = 0 to 9 do
        let fd = Nfs_client.create m (Printf.sprintf "f%d" i) in
        Nfs_client.write m fd ~off:0 (Bytes.make 8192 'c');
        Nfs_client.close m fd
      done);
  let elapsed = Sim.now w.sim in
  List.iter
    (fun node ->
      let busy = Cpu.busy_time (Net.Node.cpu node) in
      Alcotest.(check bool) "busy positive" true (busy > 0.0);
      Alcotest.(check bool) "busy bounded by elapsed" true (busy <= elapsed))
    [ w.topo.Net.Topology.client; w.topo.Net.Topology.server ]

(* Model-based property: random single-writer-per-file operations from
   two clients, with barriers long enough for the consistency window,
   must leave both clients agreeing with a flat model of the files. *)
let prop_two_client_model =
  QCheck.Test.make ~name:"two clients converge on the model" ~count:12
    QCheck.(list_of_size Gen.(int_range 4 12) (pair (int_bound 1) (int_bound 9999)))
    (fun ops ->
      let w = make_world () in
      run_client w (fun () ->
          let a = mount_in w Nfs_client.reno_mount in
          let b = mount_in w Nfs_client.reno_mount in
          let client i = if i = 0 then a else b in
          let model = Hashtbl.create 8 in
          List.iteri
            (fun i (who, seed) ->
              let m = client who in
              (* Each op writes a whole small file and closes: the
                 close/open consistency unit. *)
              let name = Printf.sprintf "mf%d" (seed mod 4) in
              let size = 100 + (seed mod 900) in
              let byte = Char.chr (65 + (i mod 26)) in
              let fd = Nfs_client.create m name in
              Nfs_client.write m fd ~off:0 (Bytes.make size byte);
              Nfs_client.close m fd;
              Hashtbl.replace model name (size, byte);
              (* Let every attribute window expire before the next
                 client touches anything. *)
              Proc.sleep w.sim 6.0)
            ops;
          (* Both clients must now read back exactly the model. *)
          Hashtbl.fold
            (fun name (size, byte) acc ->
              acc
              && List.for_all
                   (fun m ->
                     let fd = Nfs_client.open_ m name in
                     let data = Nfs_client.read m fd ~off:0 ~len:(size * 2) in
                     Nfs_client.close m fd;
                     Bytes.equal data (Bytes.make size byte))
                   [ a; b ])
            model true))

let () =
  Alcotest.run "integration"
    [
      ( "consistency",
        [
          Alcotest.test_case "close/open" `Quick test_close_open_consistency;
          Alcotest.test_case "staleness bounded" `Quick test_staleness_bounded_by_attr_timeout;
          Alcotest.test_case "noconsist stays stale" `Quick test_noconsist_never_revalidates;
          Alcotest.test_case "disjoint writers merge" `Quick test_disjoint_writers_merge;
          Alcotest.test_case "stale handle" `Quick test_stale_handle_after_remove;
          Alcotest.test_case "rename across clients" `Quick test_rename_visible_across_clients;
        ] );
      ( "coexistence",
        [
          Alcotest.test_case "mixed transports" `Quick test_mixed_transports_share_server;
          Alcotest.test_case "many clients" `Quick test_many_concurrent_clients;
          Alcotest.test_case "rpc conservation" `Quick test_server_counters_match_client_counters;
          Alcotest.test_case "cpu accounting" `Quick test_cpu_accounting_conservation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_two_client_model ]);
    ]
