test/test_transport.ml: Alcotest Buffer Bytes Char Hashtbl List QCheck QCheck_alcotest Renofs_engine Renofs_mbuf Renofs_net Renofs_transport String Tcp Udp
