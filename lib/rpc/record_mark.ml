module Mbuf = Renofs_mbuf.Mbuf

let max_fragment = 0x7FFFFFFF
let last_flag = 0x80000000

(* Upper bound a [Reader] will accept for one fragment (1 MiB): far
   above any record this protocol produces, far below the 2 GB a
   garbage length word can claim. *)
let max_sane_fragment = 1 lsl 20

let frame ?ctr ?pool chain =
  let len = Mbuf.length chain in
  if len > max_fragment then invalid_arg "Record_mark.frame: record too large";
  let framed = Mbuf.empty () in
  Mbuf.add_u32 ?ctr ?pool framed (Int32.of_int (last_flag lor len));
  Mbuf.append_chain framed chain;
  framed

module Reader = struct
  exception Corrupt of string

  type t = {
    mutable buf : Mbuf.t; (* unconsumed stream bytes *)
    mutable fragments : Mbuf.t list; (* completed non-final fragments, newest first *)
  }

  let create () = { buf = Mbuf.empty (); fragments = [] }

  let push t chunk = Mbuf.append_chain t.buf chunk

  let take_buf t n =
    let head, rest = Mbuf.split t.buf n in
    t.buf <- rest;
    head

  let rec pop t =
    if Mbuf.length t.buf < 4 then None
    else begin
      let header = Mbuf.to_bytes (Mbuf.sub_copy t.buf ~pos:0 ~len:4) in
      let word = Int32.to_int (Bytes.get_int32_be header 0) land 0xFFFFFFFF in
      let last = word land last_flag <> 0 in
      let len = word land max_fragment in
      if len = 0 then raise (Corrupt "zero-length fragment");
      (* A corrupt length word must not leave the reader buffering
         forever toward a bound no sane RPC approaches; the largest
         legitimate record here is an 8 KB WRITE plus headers. *)
      if len > max_sane_fragment then
        raise (Corrupt (Printf.sprintf "fragment length %d too large" len));
      if Mbuf.length t.buf < 4 + len then None
      else begin
        ignore (take_buf t 4);
        let frag = take_buf t len in
        if last then begin
          let record = Mbuf.empty () in
          List.iter
            (fun f -> Mbuf.append_chain record f)
            (List.rev (frag :: t.fragments));
          t.fragments <- [];
          Some record
        end
        else begin
          t.fragments <- frag :: t.fragments;
          pop t
        end
      end
    end

  let buffered t = Mbuf.length t.buf
end
