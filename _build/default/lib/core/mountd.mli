(** The mount daemon: serves the {!Mount_proto} program next to an NFS
    server, translating exported path names into file handles and
    keeping the classic rmtab-style record of who mounted what. *)

type t

val start : Nfs_server.t -> t
(** Bind port 635 on the server's UDP stack and serve forever. *)

val mounts : t -> (string * string) list
(** Current (client, path) records, oldest first. *)

val requests_served : t -> int
