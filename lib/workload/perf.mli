(** Wall-clock performance of the simulator itself.

    Every other gate in this library checks *simulated* latencies; this
    one measures how fast the engine turns real CPU time into simulated
    events.  {!run} executes a fixed cell set — the graph5 full sweep
    (6 loads x 3 transports over the 56K WAN world, the timer-heaviest
    standard experiment) with no trace or metrics sinks attached, so it
    times the detached fast path — and reports aggregate events/s and
    RPCs/s of wall clock.

    [nfsbench perf] runs it; [make perf-baseline] commits the result as
    [BENCH_perf.json]; [make perf-gate] fails when either rate drops
    more than the tolerance below the baseline (wide, because container
    wall clocks are noisy — see {!diff}). *)

type cell = {
  c_label : string;
  c_wall_s : float;  (** real seconds this cell took *)
  c_events : int;  (** simulator events processed *)
  c_rpcs : int;  (** NFS RPCs the server completed *)
}

type t = {
  cells : cell list;
  wall_s : float;  (** sum over cells *)
  events : int;
  rpcs : int;
  events_per_s : float;
  rpcs_per_s : float;
  p_profile : Renofs_profile.Profile.snapshot option;
      (** per-subsystem attribution from the profiled second pass *)
}

val run : ?progress:(string -> unit) -> ?profile:bool -> unit -> t
(** Execute the fixed cell set serially (wall-clock measurement wants
    the machine to itself; there is no [?jobs]).  [progress] is called
    with each cell's label as it starts.  With [~profile:true] a second
    pass runs the same cells with the self-profiler attached and stores
    the attribution snapshot in [p_profile]; the gate rates always come
    from the first, detached pass. *)

(** {2 renofs-perf/1 JSON} *)

val emit : t -> string
(** Deterministic field order; floats printed with the shortest
    round-tripping decimal.  (The wall-clock values themselves are of
    course not reproducible.) *)

val write_file : path:string -> t -> unit
val read_file : string -> (t, string) result

(** {2 The gate} *)

type verdict = {
  regressions : string list;
      (** a rate fell more than [tolerance] below the baseline *)
  notes : string list;
      (** informational: rate movement within tolerance, exact
          event/RPC count drift (count drift means the simulation
          changed and the baseline wants a deliberate
          [make perf-baseline], not that the machine was slow),
          per-cell localization (count drift, beyond-tolerance rate
          moves — a single cell's wall clock is too noisy to gate on),
          and subsystem-share shifts when both files carry a
          self-profile *)
}

val diff : tolerance:float -> baseline:t -> current:t -> verdict
(** [tolerance] is a fraction of the baseline rate, e.g. [0.30]. *)
