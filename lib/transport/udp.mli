(** UDP datagram sockets over the simulated IP layer.

    Sockets have bounded receive buffers, as 4.3BSD's do: a server whose
    nfsds cannot keep up drops requests at the socket, which is one of
    the overload behaviours the transport experiments react to. *)

type stack
(** Per-node UDP demultiplexer. *)

type socket

(** One received datagram.  [arrived_at] is the sim time it entered the
    socket queue: receivers subtract it from now to measure queue wait
    (the [Srv_queue] trace event). *)
type datagram = {
  src : int;
  src_port : int;
  payload : Renofs_mbuf.Mbuf.t;
  arrived_at : float;
}

val install : ?sock_cost:float -> ?checksum:bool -> Renofs_net.Node.t -> stack
(** Claim the node's UDP input.  [sock_cost] is CPU seconds of socket-
    layer processing charged per datagram in each direction (default
    0.2 ms at MicroVAXII scale: scaled by the node's MIPS).

    [checksum] (default [true]) controls the optional UDP checksum:
    senders attach [(length, Internet checksum)] metadata and receivers
    drop any datagram whose reassembled payload no longer matches
    (traced as a [Bad_checksum] drop, counted by {!checksum_drops}).
    Unchecksummed datagrams ([sum = None]) are always accepted, as UDP
    specifies.  [~checksum:false] reproduces the early Sun servers that
    shipped with UDP checksums off: wire corruption then reaches the
    RPC layer, and anything XDR happens to decode reaches the file
    system. *)

val node : stack -> Renofs_net.Node.t

val bind : ?recv_buffer:int -> stack -> port:int -> socket
(** Raises [Invalid_argument] if the port is taken.  [recv_buffer] is the
    receive-queue capacity in payload bytes (default 34816 bytes, 4.3BSD's
    ~4 x 8.5 KB). *)

val bind_ephemeral : ?recv_buffer:int -> stack -> socket
val port : socket -> int

val sendto : socket -> dst:int -> dst_port:int -> Renofs_mbuf.Mbuf.t -> unit
(** Transmit one datagram (process context; consumes CPU). *)

val recv : socket -> datagram
(** Block until a datagram arrives. *)

val try_recv : socket -> datagram option
val pending : socket -> int

val drops : socket -> int
(** Datagrams discarded because the receive buffer was full. *)

val checksum_enabled : stack -> bool

val checksum_drops : stack -> int
(** Datagrams discarded for a checksum or length mismatch. *)

val close : socket -> unit
