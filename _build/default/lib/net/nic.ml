type buffer_strategy = Copy_to_board | Map_clusters

type profile = {
  strategy : buffer_strategy;
  tx_interrupts : bool;
  per_packet_tx : float;
  per_packet_rx : float;
  tx_intr_cost : float;
  copy_bandwidth : float;
  page_map_cost : float;
  checksum_bandwidth : float;
}

(* Constants are calibrated to a 0.9 MIPS MicroVAXII with a DEQNA: memory
   copy a little over 1 MB/s, checksum about 1.6 MB/s, several hundred
   instructions of driver work per packet. *)
let deqna_stock =
  {
    strategy = Copy_to_board;
    tx_interrupts = true;
    per_packet_tx = 0.45e-3;
    per_packet_rx = 0.55e-3;
    tx_intr_cost = 0.30e-3;
    copy_bandwidth = 1.2e6;
    page_map_cost = 0.12e-3;
    checksum_bandwidth = 1.6e6;
  }

let deqna_tuned =
  {
    deqna_stock with
    strategy = Map_clusters;
    tx_interrupts = false;
    per_packet_tx = 0.35e-3 (* register variables + unrolled loops *);
  }

let fast_station =
  {
    strategy = Map_clusters;
    tx_interrupts = false;
    per_packet_tx = 0.05e-3;
    per_packet_rx = 0.06e-3;
    tx_intr_cost = 0.03e-3;
    copy_bandwidth = 30.0e6;
    page_map_cost = 0.02e-3;
    checksum_bandwidth = 40.0e6;
  }

let tx_cost p ~data_bytes ~clusters ~small_bytes =
  let move =
    match p.strategy with
    | Copy_to_board -> float_of_int data_bytes /. p.copy_bandwidth
    | Map_clusters ->
        (float_of_int clusters *. p.page_map_cost)
        +. (float_of_int small_bytes /. p.copy_bandwidth)
  in
  let intr = if p.tx_interrupts then p.tx_intr_cost else 0.0 in
  p.per_packet_tx +. move +. intr

let rx_cost p ~data_bytes =
  p.per_packet_rx +. (float_of_int data_bytes /. p.copy_bandwidth)

let checksum_cost p ~bytes = float_of_int bytes /. p.checksum_bandwidth
