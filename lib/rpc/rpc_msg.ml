module Mbuf = Renofs_mbuf.Mbuf
module Xdr = Renofs_xdr.Xdr

type auth =
  | Auth_null
  | Auth_unix of { stamp : int; machine : string; uid : int; gid : int }

type call_header = {
  xid : int32;
  prog : int;
  vers : int;
  proc : int;
  cred : auth;
}

type reject_reason = Rpc_mismatch | Auth_error

type accept_status =
  | Success
  | Prog_unavail
  | Prog_mismatch of { low : int; high : int }
  | Proc_unavail
  | Garbage_args
  | System_err

type reply_status = Accepted of accept_status | Denied of reject_reason

exception Bad_message of string

let rpc_version = 2
let msg_call = 0l
let msg_reply = 1l

let encode_auth enc = function
  | Auth_null ->
      Xdr.Enc.enum enc 0;
      Xdr.Enc.int enc 0 (* zero-length body *)
  | Auth_unix { stamp; machine; uid; gid } ->
      Xdr.Enc.enum enc 1;
      (* Body is itself length-prefixed opaque; build it inline. *)
      let body = Xdr.Enc.sub enc in
      Xdr.Enc.int body stamp;
      Xdr.Enc.string body machine;
      Xdr.Enc.int body uid;
      Xdr.Enc.int body gid;
      Xdr.Enc.int body 0;
      (* empty gids array *)
      let chain = Xdr.Enc.chain body in
      Xdr.Enc.int enc (Mbuf.length chain);
      Xdr.Enc.append_chain enc chain

let decode_auth dec =
  match Xdr.Dec.enum dec with
  | 0 ->
      let len = Xdr.Dec.int dec in
      if len <> 0 then raise (Bad_message "AUTH_NULL with non-empty body");
      Auth_null
  | 1 ->
      let _len = Xdr.Dec.int dec in
      let stamp = Xdr.Dec.int dec in
      let machine = Xdr.Dec.string dec ~max:255 in
      let uid = Xdr.Dec.int dec in
      let gid = Xdr.Dec.int dec in
      let ngids = Xdr.Dec.int dec in
      if ngids > 16 then raise (Bad_message "too many gids");
      for _ = 1 to ngids do
        ignore (Xdr.Dec.int dec)
      done;
      Auth_unix { stamp; machine; uid; gid }
  | n -> raise (Bad_message (Printf.sprintf "unsupported auth flavor %d" n))

let encode_call ?ctr ?pool hdr =
  let enc = Xdr.Enc.create ?ctr ?pool () in
  Xdr.Enc.u32 enc hdr.xid;
  Xdr.Enc.u32 enc msg_call;
  Xdr.Enc.int enc rpc_version;
  Xdr.Enc.int enc hdr.prog;
  Xdr.Enc.int enc hdr.vers;
  Xdr.Enc.int enc hdr.proc;
  encode_auth enc hdr.cred;
  encode_auth enc Auth_null;
  (* verifier *)
  enc

let decode_call chain =
  let dec = Xdr.Dec.create chain in
  let xid = Xdr.Dec.u32 dec in
  if Xdr.Dec.u32 dec <> msg_call then raise (Bad_message "not a call");
  if Xdr.Dec.int dec <> rpc_version then raise (Bad_message "bad rpc version");
  let prog = Xdr.Dec.int dec in
  let vers = Xdr.Dec.int dec in
  let proc = Xdr.Dec.int dec in
  let cred = decode_auth dec in
  let _verf = decode_auth dec in
  ({ xid; prog; vers; proc; cred }, dec)

let encode_reply ?ctr ?pool ~xid status =
  let enc = Xdr.Enc.create ?ctr ?pool () in
  Xdr.Enc.u32 enc xid;
  Xdr.Enc.u32 enc msg_reply;
  (match status with
  | Accepted acc -> (
      Xdr.Enc.enum enc 0;
      encode_auth enc Auth_null;
      match acc with
      | Success -> Xdr.Enc.enum enc 0
      | Prog_unavail -> Xdr.Enc.enum enc 1
      | Prog_mismatch { low; high } ->
          Xdr.Enc.enum enc 2;
          Xdr.Enc.int enc low;
          Xdr.Enc.int enc high
      | Proc_unavail -> Xdr.Enc.enum enc 3
      | Garbage_args -> Xdr.Enc.enum enc 4
      | System_err -> Xdr.Enc.enum enc 5)
  | Denied reason -> (
      Xdr.Enc.enum enc 1;
      match reason with
      | Rpc_mismatch ->
          Xdr.Enc.enum enc 0;
          Xdr.Enc.int enc rpc_version;
          Xdr.Enc.int enc rpc_version
      | Auth_error ->
          Xdr.Enc.enum enc 1;
          Xdr.Enc.enum enc 1 (* AUTH_BADCRED *)));
  enc

let decode_reply chain =
  let dec = Xdr.Dec.create chain in
  let xid = Xdr.Dec.u32 dec in
  if Xdr.Dec.u32 dec <> msg_reply then raise (Bad_message "not a reply");
  let status =
    match Xdr.Dec.enum dec with
    | 0 -> (
        let _verf = decode_auth dec in
        match Xdr.Dec.enum dec with
        | 0 -> Accepted Success
        | 1 -> Accepted Prog_unavail
        | 2 ->
            let low = Xdr.Dec.int dec in
            let high = Xdr.Dec.int dec in
            Accepted (Prog_mismatch { low; high })
        | 3 -> Accepted Proc_unavail
        | 4 -> Accepted Garbage_args
        | 5 -> Accepted System_err
        | n -> raise (Bad_message (Printf.sprintf "bad accept_stat %d" n)))
    | 1 -> (
        match Xdr.Dec.enum dec with
        | 0 ->
            let _low = Xdr.Dec.int dec in
            let _high = Xdr.Dec.int dec in
            Denied Rpc_mismatch
        | 1 ->
            let _why = Xdr.Dec.enum dec in
            Denied Auth_error
        | n -> raise (Bad_message (Printf.sprintf "bad reject_stat %d" n)))
    | n -> raise (Bad_message (Printf.sprintf "bad reply_stat %d" n))
  in
  (xid, status, dec)

let peek_xid chain =
  if Mbuf.length chain < 4 then None
  else
    let dec = Xdr.Dec.create chain in
    Some (Xdr.Dec.u32 dec)
