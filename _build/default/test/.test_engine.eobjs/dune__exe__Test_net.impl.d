test/test_net.ml: Alcotest Bytes Char Ipfrag Link List Nic Node Packet QCheck QCheck_alcotest Renofs_engine Renofs_mbuf Renofs_net Topology
