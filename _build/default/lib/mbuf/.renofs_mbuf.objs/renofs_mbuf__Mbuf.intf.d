lib/mbuf/mbuf.mli:
