lib/xdr/xdr.ml: Bytes Int32 Int64 Renofs_mbuf
