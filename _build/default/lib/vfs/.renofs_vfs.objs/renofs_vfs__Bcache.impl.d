lib/vfs/bcache.ml: Hashtbl List Renofs_engine
