lib/vfs/namecache.mli:
