lib/net/link.mli: Packet Renofs_engine
