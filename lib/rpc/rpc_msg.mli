(** Sun RPC message layer (RFC 1057 subset).

    Call and reply headers are encoded straight into mbuf chains; the
    procedure arguments/results are appended by the caller using the
    returned encoder, exactly as the Reno kernel composes whole RPCs in
    mbufs. *)

type auth =
  | Auth_null
  | Auth_unix of { stamp : int; machine : string; uid : int; gid : int }

type call_header = {
  xid : int32;
  prog : int;
  vers : int;
  proc : int;
  cred : auth;
}

type reject_reason = Rpc_mismatch | Auth_error

type accept_status =
  | Success
  | Prog_unavail
  | Prog_mismatch of { low : int; high : int }
  | Proc_unavail
  | Garbage_args
  | System_err

type reply_status = Accepted of accept_status | Denied of reject_reason

exception Bad_message of string

val encode_call :
  ?ctr:Renofs_mbuf.Mbuf.Counters.t ->
  ?pool:Renofs_mbuf.Mbuf.Pool.t ->
  call_header ->
  Renofs_xdr.Xdr.Enc.t
(** Header encoded; continue with the procedure arguments. *)

val decode_call : Renofs_mbuf.Mbuf.t -> call_header * Renofs_xdr.Xdr.Dec.t
(** Raises {!Bad_message} (or [Xdr.Decode_error]) on garbage. *)

val encode_reply :
  ?ctr:Renofs_mbuf.Mbuf.Counters.t ->
  ?pool:Renofs_mbuf.Mbuf.Pool.t ->
  xid:int32 ->
  reply_status ->
  Renofs_xdr.Xdr.Enc.t
(** On [Accepted Success], continue with the procedure results. *)

val decode_reply :
  Renofs_mbuf.Mbuf.t -> int32 * reply_status * Renofs_xdr.Xdr.Dec.t

val peek_xid : Renofs_mbuf.Mbuf.t -> int32 option
(** Cheap look at the transaction id of any RPC message (first word). *)
