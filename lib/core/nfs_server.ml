module Sim = Renofs_engine.Sim
module Probe = Renofs_engine.Probe
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Stats = Renofs_engine.Stats
module Mbuf = Renofs_mbuf.Mbuf
module Xdr = Renofs_xdr.Xdr
module Rpc_msg = Renofs_rpc.Rpc_msg
module Record_mark = Renofs_rpc.Record_mark
module Node = Renofs_net.Node
module Nic = Renofs_net.Nic
module Trace = Renofs_trace.Trace
module Metrics = Renofs_metrics.Metrics
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Fs = Renofs_vfs.Fs
module Disk = Renofs_vfs.Disk
module P = Nfs_proto

type profile = {
  fs_config : Fs.config;
  nfsd_count : int;
  duplicate_cache : bool;
  decode_instructions : float;
  encode_instructions : float;
  xdr_layer_instructions : float;
}

let reno_profile =
  {
    fs_config = Fs.reno_config;
    nfsd_count = 4;
    duplicate_cache = true;
    decode_instructions = 320.0;
    encode_instructions = 280.0;
    xdr_layer_instructions = 0.0;
  }

let reference_port_profile =
  {
    fs_config = Fs.reference_port_config;
    nfsd_count = 4;
    duplicate_cache = false;
    decode_instructions = 320.0;
    encode_instructions = 280.0;
    (* The user-mode RPC/XDR runtime ported into the kernel: extra
       buffer management and dispatch layers on every RPC. *)
    xdr_layer_instructions = 900.0;
  }

(* Symmetric to [Nfs_client.config]: a default value plus [with_*]
   derivation, so schedule- and experiment-driven reconfiguration reads
   the same on both ends of the wire. *)
type config = profile

let default_config = reno_profile
let with_fs_config c fs_config = { c with fs_config }
let with_nfsd_count c nfsd_count = { c with nfsd_count }
let with_duplicate_cache c duplicate_cache = { c with duplicate_cache }

let with_xdr_layer_instructions c xdr_layer_instructions =
  { c with xdr_layer_instructions }

(* A recent-request cache entry [Juszczak89]: requests still executing
   must also be recognised, or a retransmission arriving mid-execution
   would re-run a non-idempotent operation. *)
type dup_entry = In_progress | Done of { at : float; reply : Mbuf.t }

(* One client's hold on a file lease. *)
type lease_holder = {
  lh_client : int * int; (* (host, port) identity *)
  lh_mode : P.lease_mode;
  mutable lh_expiry : float;
  mutable lh_contested : bool;
      (* someone is waiting for a conflicting lease: renewals are
         refused so the holder flushes and the wait is bounded *)
}

(* One buffered unstable extent: data a v3 WRITE left in volatile
   memory, in arrival order, awaiting COMMIT. *)
type uext = { ue_off : int; ue_data : bytes }

type t = {
  node : Node.t;
  profile : profile;
  fs : Fs.t;
  udp : Udp.stack;
  tcp : Tcp.stack option;
  counters : Stats.Counter.t;
  service_times : (string, Stats.Welford.t) Hashtbl.t;
  mutable served : int;
  mutable dups : int;
  mutable in_service : int; (* RPCs currently inside [execute] *)
  mutable service_hist : Stats.Hist.t option; (* ms; only with metrics *)
  dup_table : (int32 * int * int, dup_entry) Hashtbl.t;
  dup_order : (int32 * int * int) Queue.t;
  leases : (int, lease_holder list ref) Hashtbl.t; (* per fhandle *)
  mutable up : bool;
  mutable no_leases_before : float; (* reboot grace period *)
  unstable : (int, uext list ref) Hashtbl.t;
      (* per-fhandle unstable-write buffer, newest extent first; dies
         with the machine on crash *)
  mutable boots : int;
  mutable write_verf : int;
  mutable lie_on_commit : bool;
      (* fault-injection hook: ack COMMIT without flushing, so the
         committed_durable invariant has a guilty server to convict *)
}

let dup_window = 6.0
let dup_capacity = 128

(* Deterministic per-boot write verifier: a 30-bit fold of node id and
   boot count.  Real servers use boot time; ours must be reproducible at
   any [--jobs], and 30 bits survives the XDR int and JSONL number
   round-trips exactly. *)
let verf_of ~node_id ~boots =
  (((node_id + 1) * 0x9E3779B1) + ((boots + 1) * 0x85EBCA77)) land 0x3FFFFFFF

let lease_duration = 6.0
(* Short, as NQNFS leases are: the bound on both staleness after a
   partition and the wait for a contested grant. *)

(* Sampled sources for the run attached to the server's node, if any:
   throughput and duplicate counters, the service-concurrency gauge,
   the name-cache hit ratio, and a per-RPC service-time histogram
   (created here so the data path pays nothing without metrics). *)
let register_metrics t =
  match Node.metrics t.node with
  | None -> ()
  | Some run ->
      let p s = Node.name t.node ^ ".srv." ^ s in
      (* Per-shard series carry a server label so fleet plots can split
         imbalance across shards without parsing series names. *)
      let labels = [ ("server", Node.name t.node) ] in
      let fi = float_of_int in
      Metrics.register ~labels run ~name:(p "served") ~unit_:"count"
        ~kind:Metrics.Counter (fun () -> fi t.served);
      Metrics.register run ~name:(p "dups") ~unit_:"count"
        ~kind:Metrics.Counter (fun () -> fi t.dups);
      Metrics.register run ~name:(p "inflight") ~unit_:"count"
        ~kind:Metrics.Gauge (fun () -> fi t.in_service);
      (match Fs.namecache t.fs with
      | Some nc ->
          Metrics.register run ~name:(p "namecache.hit_ratio") ~unit_:"percent"
            ~kind:Metrics.Gauge (fun () ->
              let s = Renofs_vfs.Namecache.stats nc in
              let total = s.Renofs_vfs.Namecache.hits + s.Renofs_vfs.Namecache.misses in
              if total = 0 then nan
              else 100.0 *. fi s.Renofs_vfs.Namecache.hits /. fi total)
      | None -> ());
      let hist = Stats.Hist.create ~bucket_width:0.5 ~buckets:200 in
      t.service_hist <- Some hist;
      Metrics.register_hist run ~name:(p "service_ms") ~unit_:"ms" hist

let create node ?(profile = reno_profile) ~udp ?tcp () =
  let sim = Node.sim node in
  let disk = Disk.create sim () in
  let fs = Fs.create sim (Node.cpu node) disk profile.fs_config in
  let t =
    {
      node;
      profile;
      fs;
      udp;
      tcp;
      counters = Stats.Counter.create ();
      service_times = Hashtbl.create 20;
      served = 0;
      dups = 0;
      in_service = 0;
      service_hist = None;
      dup_table = Hashtbl.create dup_capacity;
      dup_order = Queue.create ();
      leases = Hashtbl.create 64;
      up = true;
      no_leases_before = 0.0;
      unstable = Hashtbl.create 16;
      boots = 0;
      write_verf = verf_of ~node_id:(Node.id node) ~boots:0;
      lie_on_commit = false;
    }
  in
  register_metrics t;
  t

let fs t = t.fs
let is_up t = t.up
let udp_stack t = t.udp
let tcp_stack t = t.tcp
let node t = t.node
let root_fhandle t = Fs.ino (Fs.root t.fs)
let counters t = t.counters

let service_times t =
  Hashtbl.fold
    (fun name w acc -> (name, Stats.Welford.mean w, Stats.Welford.count w) :: acc)
    t.service_times []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let note_service t name seconds =
  let w =
    match Hashtbl.find_opt t.service_times name with
    | Some w -> w
    | None ->
        let w = Stats.Welford.create () in
        Hashtbl.replace t.service_times name w;
        w
  in
  Stats.Welford.add w seconds

let rpcs_served t = t.served
let duplicates_dropped t = t.dups
let write_verf t = t.write_verf
let set_lie_on_commit t v = t.lie_on_commit <- v

(* --- v3 unstable-write overlay -------------------------------------- *)

let uext_end e = e.ue_off + Bytes.length e.ue_data

let unstable_append t fh ~off data =
  let r =
    match Hashtbl.find_opt t.unstable fh with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.unstable fh r;
        r
  in
  r := { ue_off = off; ue_data = data } :: !r

let unstable_size t fh =
  match Hashtbl.find_opt t.unstable fh with
  | None -> 0
  | Some r -> List.fold_left (fun acc e -> max acc (uext_end e)) 0 !r

let unstable_bytes t =
  Hashtbl.fold
    (fun _ r acc ->
      List.fold_left (fun a e -> a + Bytes.length e.ue_data) acc !r)
    t.unstable 0

(* Reads must see buffered unstable data: lay intersecting extents,
   oldest first, over what stable storage returned. *)
let overlay_read t fh ~off ~len base =
  match Hashtbl.find_opt t.unstable fh with
  | None -> base
  | Some r ->
      let inter =
        List.filter (fun e -> e.ue_off < off + len && uext_end e > off) !r
      in
      if inter = [] then base
      else begin
        let ov_end =
          List.fold_left (fun acc e -> max acc (uext_end e)) 0 inter
        in
        let want = max (Bytes.length base) (min len (ov_end - off)) in
        let buf = Bytes.make want '\000' in
        Bytes.blit base 0 buf 0 (Bytes.length base);
        List.iter
          (fun e ->
            let s = max e.ue_off off and e_ = min (uext_end e) (off + len) in
            if e_ > s then
              Bytes.blit e.ue_data (s - e.ue_off) buf (s - off) (e_ - s))
          (List.rev inter);
        buf
      end

(* As in [Fs.charge]: the consume suspends, so when probed rebind the
   resumed segment (decode/encode/DRC work) to the server slot with a
   deliberately unmatched enter — the event fire boundary truncates it. *)
let charge t instructions =
  Cpu.consume (Node.cpu t.node)
    (Cpu.seconds_of_instructions (Node.cpu t.node) instructions);
  match Sim.probe (Node.sim t.node) with
  | None -> ()
  | Some p -> ignore (p.Probe.enter Probe.server)

let charge_copy t bytes =
  let bw = (Node.nic t.node).Nic.copy_bandwidth in
  Cpu.consume (Node.cpu t.node) (float_of_int bytes /. bw)

let stat_of_fs_err : Fs.err -> P.stat = function
  | Fs.Enoent -> P.NFSERR_NOENT
  | Fs.Eexist -> P.NFSERR_EXIST
  | Fs.Enotdir -> P.NFSERR_NOTDIR
  | Fs.Eisdir -> P.NFSERR_ISDIR
  | Fs.Enotempty -> P.NFSERR_NOTEMPTY
  | Fs.Estale -> P.NFSERR_STALE
  | Fs.Einval -> P.NFSERR_IO
  | Fs.Efbig -> P.NFSERR_FBIG

let fattr_of_attrs (a : Fs.attrs) : P.fattr =
  {
    P.ftype =
      (match a.Fs.kind with Fs.Reg -> P.NFREG | Fs.Dir -> P.NFDIR | Fs.Lnk -> P.NFLNK);
    mode = a.Fs.mode;
    nlink = a.Fs.nlink;
    uid = a.Fs.uid;
    gid = a.Fs.gid;
    size = a.Fs.size;
    blocksize = 8192;
    rdev = 0;
    blocks = (a.Fs.size + 511) / 512;
    fsid = 1;
    fileid = a.Fs.ino;
    atime = P.time_of_float a.Fs.atime;
    mtime = P.time_of_float a.Fs.mtime;
    ctime = P.time_of_float a.Fs.ctime;
  }

let sattr_to_fs (s : P.sattr) =
  let opt v = if v < 0 then None else Some v in
  (opt s.P.s_mode, opt s.P.s_uid, opt s.P.s_gid, opt s.P.s_size,
   Option.map P.float_of_time s.P.s_mtime)

(* Execute one NFS call against the filesystem.  Every [Fs] operation
   charges its own CPU and disk costs. *)
(* --- lease machinery ------------------------------------------------ *)

let lease_holders t fh =
  match Hashtbl.find_opt t.leases fh with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.leases fh r;
      r

let purge_expired t holders =
  let now = Sim.now (Node.sim t.node) in
  holders := List.filter (fun h -> h.lh_expiry > now) !holders

let conflicts_with ~client ~mode h =
  h.lh_client <> client && (mode = P.Lease_write || h.lh_mode = P.Lease_write)

(* Grant (or renew) a lease, waiting out conflicting holders.  A
   contested holder is refused renewal, so the wait is bounded by one
   lease duration.  Runs in the serving nfsd's process. *)
let rec obtain_lease t ~client ~mode fh =
  let holders = lease_holders t fh in
  purge_expired t holders;
  let mine = List.find_opt (fun h -> h.lh_client = client) !holders in
  (match mine with
  | Some h when h.lh_contested ->
      (* Refuse renewal: the holder must flush and vacate. *)
      holders := List.filter (fun x -> x != h) !holders;
      `Vacate
  | _ -> (
      let others = List.filter (fun h -> conflicts_with ~client ~mode h) !holders in
      match others with
      | [] ->
          let now = Sim.now (Node.sim t.node) in
          let expiry = now +. lease_duration in
          (match mine with
          | Some h ->
              h.lh_expiry <- expiry;
              (* An upgrade replaces the mode. *)
              if mode = P.Lease_write && h.lh_mode = P.Lease_read then
                holders :=
                  { h with lh_mode = P.Lease_write }
                  :: List.filter (fun x -> x != h) !holders
          | None ->
              holders :=
                { lh_client = client; lh_mode = mode; lh_expiry = expiry;
                  lh_contested = false }
                :: !holders);
          `Granted
      | _ ->
          List.iter (fun h -> h.lh_contested <- true) others;
          let earliest =
            List.fold_left (fun acc h -> Float.min acc h.lh_expiry) infinity others
          in
          Proc.sleep (Node.sim t.node) (Float.max 0.01 (earliest -. Sim.now (Node.sim t.node)) +. 0.001);
          obtain_lease t ~client ~mode fh))
  [@@warning "-57"]

exception Access_denied

(* Classic Unix permission bits against the AUTH_UNIX credential; uid 0
   bypasses, as the kernel's VOP_ACCESS does. *)
let access_ok (a : Fs.attrs) ~uid ~gid ~want =
  uid = 0
  ||
  let bits =
    if uid = a.Fs.uid then (a.Fs.mode lsr 6) land 7
    else if gid = a.Fs.gid then (a.Fs.mode lsr 3) land 7
    else a.Fs.mode land 7
  in
  bits land want = want

let r_ok = 4
let w_ok = 2
let x_ok = 1

let trace_event t ev =
  match Node.trace t.node with
  | Some tr ->
      Trace.record tr ~time:(Sim.now (Node.sim t.node)) ~node:(Node.id t.node) ev
  | None -> ()

let execute t ?(client = (0, 0)) ?(cred = Rpc_msg.Auth_null) (call : P.call) :
    P.reply =
  let uid, gid =
    match cred with
    | Rpc_msg.Auth_unix { uid; gid; _ } -> (uid, gid)
    | Rpc_msg.Auth_null -> (65534, 65534) (* nobody *)
  in
  let vn fh = Fs.vnode_by_ino t.fs fh in
  (* Attributes reflect buffered unstable data too: a client that just
     wrote UNSTABLE past EOF must see the grown size. *)
  let attr v =
    let a = fattr_of_attrs (Fs.getattr t.fs v) in
    let os = unstable_size t a.P.fileid in
    if os > a.P.size then
      { a with P.size = os; blocks = (os + 511) / 512 }
    else a
  in
  (* Raises through the wrap_* handlers below. *)
  let check v ~want =
    if not (access_ok (Fs.getattr t.fs v) ~uid ~gid ~want) then raise Access_denied
  in
  let wrap_attr f =
    try P.Rattr (Ok (f ())) with
    | Fs.Err e -> P.Rattr (Error (stat_of_fs_err e))
    | Access_denied -> P.Rattr (Error P.NFSERR_ACCES)
  in
  let wrap_dirop f =
    try P.Rdirop (Ok (f ())) with
    | Fs.Err e -> P.Rdirop (Error (stat_of_fs_err e))
    | Access_denied -> P.Rdirop (Error P.NFSERR_ACCES)
  in
  let wrap_stat f =
    try
      f ();
      P.Rstat P.NFS_OK
    with
    | Fs.Err e -> P.Rstat (stat_of_fs_err e)
    | Access_denied -> P.Rstat P.NFSERR_ACCES
  in
  match call with
  | P.Null -> P.Rnull
  | P.Getattr fh -> wrap_attr (fun () -> attr (vn fh))
  | P.Setattr (fh, s) ->
      wrap_attr (fun () ->
          let v = vn fh in
          (* Only the owner (or root) may change attributes. *)
          let a = Fs.getattr t.fs v in
          if uid <> 0 && uid <> a.Fs.uid then raise Access_denied;
          let mode, s_uid, s_gid, size, mtime = sattr_to_fs s in
          fattr_of_attrs
            (Fs.setattr t.fs v ?mode ?uid:s_uid ?gid:s_gid ?size ?mtime ()))
  | P.Lookup { P.dir; name } ->
      wrap_dirop (fun () ->
          let d = vn dir in
          check d ~want:x_ok;
          let v = Fs.lookup t.fs d name in
          (Fs.ino v, attr v))
  | P.Readlink fh -> (
      try P.Rreadlink (Ok (Fs.readlink t.fs (vn fh)))
      with Fs.Err e -> P.Rreadlink (Error (stat_of_fs_err e)))
  | P.Read { P.read_file; offset; count } -> (
      try
        let v = vn read_file in
        check v ~want:r_ok;
        let fsize = (Fs.getattr t.fs v).Fs.size in
        let data =
          if offset >= fsize then Bytes.empty
          else Fs.read t.fs v ~off:offset ~len:count
        in
        let data = overlay_read t read_file ~off:offset ~len:count data in
        (* Buffer cache to mbuf copy: the residual bottleneck of
           Section 3. *)
        charge_copy t (Bytes.length data);
        P.Rread (Ok (attr v, data))
      with
      | Fs.Err e -> P.Rread (Error (stat_of_fs_err e))
      | Access_denied -> P.Rread (Error P.NFSERR_ACCES))
  | P.Write { P.write_file; write_offset; data } ->
      wrap_attr (fun () ->
          let v = vn write_file in
          check v ~want:w_ok;
          (* mbuf to buffer cache copy before the synchronous write. *)
          charge_copy t (Bytes.length data);
          Fs.write t.fs v ~off:write_offset data;
          let a = attr v in
          trace_event t
            (Trace.Write_committed
               {
                 file = write_file;
                 off = write_offset;
                 len = Bytes.length data;
                 digest = Trace.digest data;
                 mtime = P.float_of_time a.P.mtime;
               });
          a)
  | P.Create { P.where = { P.dir; name }; attributes } ->
      wrap_dirop (fun () ->
          let mode, _, _, size, _ = sattr_to_fs attributes in
          let parent = vn dir in
          check parent ~want:w_ok;
          let v =
            try
              Fs.create_file t.fs ~dir:parent name
                ~mode:(Option.value mode ~default:0o644) ~uid ~gid ()
            with Fs.Err Fs.Eexist ->
              (* NFS create of an existing file truncates per [size]. *)
              Fs.lookup t.fs parent name
          in
          (match size with Some s -> ignore (Fs.setattr t.fs v ~size:s ()) | None -> ());
          (Fs.ino v, attr v))
  | P.Remove { P.dir; name } ->
      wrap_stat (fun () ->
          let d = vn dir in
          check d ~want:w_ok;
          Fs.remove t.fs ~dir:d name)
  | P.Rename { P.from_dir; to_dir } ->
      wrap_stat (fun () ->
          let src_dir = vn from_dir.P.dir and dst_dir = vn to_dir.P.dir in
          check src_dir ~want:w_ok;
          check dst_dir ~want:w_ok;
          Fs.rename t.fs ~src_dir from_dir.P.name ~dst_dir to_dir.P.name)
  | P.Link { P.link_from; link_to } ->
      wrap_stat (fun () ->
          let d = vn link_to.P.dir in
          check d ~want:w_ok;
          Fs.link t.fs ~src:(vn link_from) ~dir:d link_to.P.name)
  | P.Symlink { P.sym_where = { P.dir; name }; sym_target; _ } ->
      wrap_stat (fun () ->
          let d = vn dir in
          check d ~want:w_ok;
          Fs.symlink t.fs ~dir:d name ~target:sym_target ~uid ~gid ())
  | P.Mkdir { P.where = { P.dir; name }; attributes } ->
      wrap_dirop (fun () ->
          let mode, _, _, _, _ = sattr_to_fs attributes in
          let parent = vn dir in
          check parent ~want:w_ok;
          let v =
            Fs.mkdir t.fs ~dir:parent name ~mode:(Option.value mode ~default:0o755)
              ~uid ~gid ()
          in
          (Fs.ino v, attr v))
  | P.Rmdir { P.dir; name } ->
      wrap_stat (fun () ->
          let d = vn dir in
          check d ~want:w_ok;
          Fs.rmdir t.fs ~dir:d name)
  | P.Readdir { P.rd_dir; cookie; rd_count } -> (
      try
        let v = vn rd_dir in
        check v ~want:r_ok;
        (* Entries fit [rd_count] reply bytes: ~16 bytes of framing plus
           the name, per entry. *)
        let approx_entries = max 1 (rd_count / 24) in
        let entries, eof = Fs.readdir t.fs v ~cookie ~count:approx_entries in
        let entries =
          List.mapi
            (fun i (name, ino_) ->
              { P.fileid = ino_; entry_name = name; entry_cookie = cookie + i + 1 })
            entries
        in
        P.Rreaddir (Ok (entries, eof))
      with
      | Fs.Err e -> P.Rreaddir (Error (stat_of_fs_err e))
      | Access_denied -> P.Rreaddir (Error P.NFSERR_ACCES))
  | P.Statfs fh -> (
      try
        ignore (vn fh);
        let st = Fs.statfs t.fs in
        P.Rstatfs
          (Ok
             {
               P.tsize = P.max_data;
               bsize = st.Fs.block_size;
               blocks_total = st.Fs.total_blocks;
               blocks_free = st.Fs.free_blocks;
               blocks_avail = st.Fs.free_blocks;
             })
      with Fs.Err e -> P.Rstatfs (Error (stat_of_fs_err e)))
  | P.Getlease { P.lease_file; lease_mode; lease_duration = want } -> (
      try
        let v = vn lease_file in
        (* Grace period after a reboot: the lease table died with the
           kernel, so leases issued before the crash may still live in
           client memories.  Refuse grants (a vacate) until they must
           all have expired; the refusal also makes lapsed holders
           flush their delayed writes promptly. *)
        if Sim.now (Node.sim t.node) < t.no_leases_before then P.Rlease (Ok None)
        else
          match obtain_lease t ~client ~mode:lease_mode lease_file with
          | `Granted ->
              let dur = min (max 1 want) (int_of_float lease_duration) in
              trace_event t
                (Trace.Lease_grant
                   {
                     file = lease_file;
                     mode =
                       (match lease_mode with
                       | P.Lease_read -> "read"
                       | P.Lease_write -> "write");
                     holder = fst client;
                     duration = float_of_int dur;
                   });
              P.Rlease (Ok (Some { P.granted_duration = dur; lease_attr = attr v }))
          | `Vacate -> P.Rlease (Ok None)
      with Fs.Err e -> P.Rlease (Error (stat_of_fs_err e)))
  | P.Readdirlook { P.rd_dir; cookie; rd_count } -> (
      try
        let v = vn rd_dir in
        let approx_entries = max 1 (rd_count / 96) in
        let entries, eof = Fs.readdir t.fs v ~cookie ~count:approx_entries in
        let ents =
          List.mapi
            (fun i (name, ino_) ->
              let target = Fs.vnode_by_ino t.fs ino_ in
              {
                P.le_entry =
                  { P.fileid = ino_; entry_name = name; entry_cookie = cookie + i + 1 };
                le_file = ino_;
                le_attr = fattr_of_attrs (Fs.getattr t.fs target);
              })
            entries
        in
        P.Rreaddirlook (Ok (ents, eof))
      with Fs.Err e -> P.Rreaddirlook (Error (stat_of_fs_err e)))
  | P.Write3 { P.w3_file; w3_offset; w3_stable; w3_data } -> (
      try
        let v = vn w3_file in
        check v ~want:w_ok;
        (* mbuf to buffer cache copy; for UNSTABLE that is the whole
           cost — no disk until COMMIT, the v3 write-behind win. *)
        charge_copy t (Bytes.length w3_data);
        let committed =
          match w3_stable with
          | P.Unstable ->
              unstable_append t w3_file ~off:w3_offset w3_data;
              trace_event t
                (Trace.Write_unstable
                   {
                     file = w3_file;
                     off = w3_offset;
                     len = Bytes.length w3_data;
                     digest = Trace.digest w3_data;
                     verf = t.write_verf;
                   });
              P.Unstable
          | P.Data_sync | P.File_sync ->
              Fs.write t.fs v ~off:w3_offset w3_data;
              let a = Fs.getattr t.fs v in
              trace_event t
                (Trace.Write_committed
                   {
                     file = w3_file;
                     off = w3_offset;
                     len = Bytes.length w3_data;
                     digest = Trace.digest w3_data;
                     mtime = a.Fs.mtime;
                   });
              P.File_sync
        in
        P.Rwrite3
          (Ok
             {
               P.w3_attr = attr v;
               w3_count = Bytes.length w3_data;
               w3_committed = committed;
               w3_verf = t.write_verf;
             })
      with
      | Fs.Err e -> P.Rwrite3 (Error (stat_of_fs_err e))
      | Access_denied -> P.Rwrite3 (Error P.NFSERR_ACCES))
  | P.Commit { P.cm_file; cm_offset; cm_count } -> (
      try
        let v = vn cm_file in
        check v ~want:w_ok;
        let upto = if cm_count = 0 then max_int else cm_offset + cm_count in
        (* A lying server skips the flush but still acknowledges: the
           committed_durable invariant must convict it at read-back. *)
        (if not t.lie_on_commit then
           match Hashtbl.find_opt t.unstable cm_file with
           | None -> ()
           | Some r ->
               let covered, kept =
                 List.partition
                   (fun e -> e.ue_off < upto && uext_end e > cm_offset)
                   !r
               in
               r := kept;
               if kept = [] then Hashtbl.remove t.unstable cm_file;
               (* Flush in arrival order so overlaps resolve
                  last-writer-wins, matching reads through the overlay. *)
               List.iter
                 (fun e ->
                   Fs.write t.fs v ~off:e.ue_off e.ue_data;
                   let a = Fs.getattr t.fs v in
                   trace_event t
                     (Trace.Write_committed
                        {
                          file = cm_file;
                          off = e.ue_off;
                          len = Bytes.length e.ue_data;
                          digest = Trace.digest e.ue_data;
                          mtime = a.Fs.mtime;
                        }))
                 (List.rev covered));
        trace_event t
          (Trace.Commit_ok
             {
               file = cm_file;
               off = cm_offset;
               count = cm_count;
               verf = t.write_verf;
             });
        P.Rcommit (Ok { P.cmo_attr = attr v; cmo_verf = t.write_verf })
      with
      | Fs.Err e -> P.Rcommit (Error (stat_of_fs_err e))
      | Access_denied -> P.Rcommit (Error P.NFSERR_ACCES))

let dup_key (hdr : Rpc_msg.call_header) ~src ~src_port =
  (hdr.Rpc_msg.xid, src, src_port)

(* [`Execute]: new request, marked in-progress.  [`Drop]: a duplicate of
   a request still executing.  [`Replay r]: a duplicate of a completed
   request whose cached reply should be resent. *)
let dup_check t key =
  match Hashtbl.find_opt t.dup_table key with
  | Some In_progress -> `Drop
  | Some (Done e) when Sim.now (Node.sim t.node) -. e.at <= dup_window ->
      `Replay e.reply
  | Some (Done _) | None ->
      if not (Hashtbl.mem t.dup_table key) then begin
        while Queue.length t.dup_order >= dup_capacity do
          match Queue.take_opt t.dup_order with
          | Some victim -> Hashtbl.remove t.dup_table victim
          | None -> ()
        done;
        Queue.add key t.dup_order
      end;
      Hashtbl.replace t.dup_table key In_progress;
      `Execute

let dup_store t key reply =
  if Hashtbl.mem t.dup_table key then
    Hashtbl.replace t.dup_table key
      (Done
         {
           at = Sim.now (Node.sim t.node);
           reply =
             Mbuf.sub_copy ?pool:(Node.pool t.node) reply ~pos:0
               ~len:(Mbuf.length reply);
         })

(* Handle one RPC message; returns the reply chain, or [None] for
   undecodable garbage (dropped, as a datagram server does).
   [arrived_at] is when the request entered the socket queue (UDP only):
   it turns into the [Srv_queue] wait-time trace event. *)
let handle_message_inner t ?arrived_at chain ~src ~src_port =
  if not t.up then None
  else begin
  charge t (t.profile.decode_instructions +. t.profile.xdr_layer_instructions);
  match Rpc_msg.decode_call chain with
  | exception (Rpc_msg.Bad_message _ | Xdr.Decode_error _) -> None
  | hdr, dec -> (
      (match Node.trace t.node with
      | Some tr -> (
          match arrived_at with
          | Some at ->
              let now = Sim.now (Node.sim t.node) in
              Trace.record tr ~time:now ~node:(Node.id t.node)
                (Trace.Srv_queue
                   { xid = hdr.Rpc_msg.xid; proc = hdr.Rpc_msg.proc; wait = now -. at })
          | None -> ())
      | None -> ());
      let key = dup_key hdr ~src ~src_port in
      let verdict =
        if t.profile.duplicate_cache && not (P.is_idempotent hdr.Rpc_msg.proc) then
          dup_check t key
        else `Execute_untracked
      in
      (match Node.trace t.node with
      | Some tr -> (
          let hit ev =
            Trace.record tr ~time:(Sim.now (Node.sim t.node)) ~node:(Node.id t.node) ev
          in
          match verdict with
          | `Drop | `Replay _ -> hit (Trace.Cache_hit { cache = "drc" })
          | `Execute -> hit (Trace.Cache_miss { cache = "drc" })
          | `Execute_untracked -> ())
      | None -> ());
      match verdict with
      | `Drop ->
          t.dups <- t.dups + 1;
          None
      | `Replay reply ->
          t.dups <- t.dups + 1;
          Some
            (Mbuf.sub_copy ?pool:(Node.pool t.node) reply ~pos:0
               ~len:(Mbuf.length reply))
      | `Execute | `Execute_untracked ->
          let reply_body =
            match P.decode_call ~proc:hdr.Rpc_msg.proc dec with
            | exception Xdr.Decode_error _ -> None
            | call ->
                Stats.Counter.incr t.counters (P.proc_name hdr.Rpc_msg.proc);
                t.served <- t.served + 1;
                let t0 = Sim.now (Node.sim t.node) in
                t.in_service <- t.in_service + 1;
                let reply = execute t ~client:(src, src_port) ~cred:hdr.Rpc_msg.cred call in
                t.in_service <- t.in_service - 1;
                let elapsed = Sim.now (Node.sim t.node) -. t0 in
                note_service t (P.proc_name hdr.Rpc_msg.proc) elapsed;
                (match t.service_hist with
                | Some h -> Stats.Hist.add h (elapsed *. 1e3)
                | None -> ());
                (match Node.trace t.node with
                | Some tr ->
                    Trace.record tr
                      ~time:(Sim.now (Node.sim t.node))
                      ~node:(Node.id t.node)
                      (Trace.Srv_service
                         {
                           xid = hdr.Rpc_msg.xid;
                           proc = hdr.Rpc_msg.proc;
                           service = elapsed;
                         })
                | None -> ());
                Some reply
          in
          charge t (t.profile.encode_instructions +. t.profile.xdr_layer_instructions);
          let ctr = Node.copy_counters t.node in
          let pool = Node.pool t.node in
          let enc =
            match reply_body with
            | None -> Rpc_msg.encode_reply ~ctr ?pool ~xid:hdr.Rpc_msg.xid
                        (Rpc_msg.Accepted Rpc_msg.Garbage_args)
            | Some body ->
                let enc =
                  Rpc_msg.encode_reply ~ctr ?pool ~xid:hdr.Rpc_msg.xid
                    (Rpc_msg.Accepted Rpc_msg.Success)
                in
                P.encode_reply ~ctr enc body;
                enc
          in
          let reply = Xdr.Enc.chain enc in
          if t.profile.duplicate_cache && not (P.is_idempotent hdr.Rpc_msg.proc)
          then
            if reply_body <> None then dup_store t key reply
            else Hashtbl.remove t.dup_table key;
          Some reply)
  end

(* Request service is fiber code ([execute] suspends on the simulated
   CPU and disk), so the server scope relies on the probe's truncating
   depth tokens: the segment up to the first suspension is charged to
   the server slot, resumed segments are charged by their resume sites,
   and the final [leave] is a harmless no-op if the stack was already
   truncated at an event boundary. *)
let handle_message t ?arrived_at chain ~src ~src_port =
  match Sim.probe (Node.sim t.node) with
  | None -> handle_message_inner t ?arrived_at chain ~src ~src_port
  | Some p ->
      let d = p.Probe.enter Probe.server in
      let r =
        try handle_message_inner t ?arrived_at chain ~src ~src_port
        with e -> p.Probe.leave d; raise e
      in
      p.Probe.leave d;
      r

let crash t =
  t.up <- false;
  (* Volatile state dies with the machine. *)
  Hashtbl.reset t.dup_table;
  Queue.clear t.dup_order;
  Hashtbl.reset t.leases;
  (* Acknowledged-but-uncommitted v3 data legally vanishes here; the
     regenerated verifier (see [reboot]) tells clients to rewrite it. *)
  Hashtbl.reset t.unstable;
  (match Fs.namecache t.fs with Some nc -> Renofs_vfs.Namecache.purge nc | None -> ());
  (* A rebooting host's TCP resets every connection. *)
  (match t.tcp with Some stack -> Tcp.reset_all stack | None -> ());
  trace_event t Trace.Srv_crash

let reboot t =
  (* Grace period: 1.5 lease terms, covering a pre-crash lease plus the
     holder's write-back slack. *)
  t.no_leases_before <- Sim.now (Node.sim t.node) +. (1.5 *. lease_duration);
  t.boots <- t.boots + 1;
  t.write_verf <- verf_of ~node_id:(Node.id t.node) ~boots:t.boots;
  t.up <- true;
  trace_event t Trace.Srv_reboot

let crash_and_reboot t ~downtime =
  crash t;
  Proc.sleep (Node.sim t.node) downtime;
  reboot t

let start_udp t =
  let sock = Udp.bind t.udp ~port:P.port in
  (* The receive-queue depth the paper's Section 4 watches back up
     behind the 56K link; registered here because the socket only
     exists once the server starts. *)
  (match Node.metrics t.node with
  | Some run ->
      Metrics.register
        ~labels:[ ("server", Node.name t.node) ]
        run
        ~name:(Node.name t.node ^ ".srv.qdepth")
        ~unit_:"count" ~kind:Metrics.Gauge
        (fun () -> float_of_int (Udp.pending sock))
  | None -> ());
  for _ = 1 to t.profile.nfsd_count do
    Proc.spawn (Node.sim t.node) (fun () ->
        let rec serve () =
          let dg = Udp.recv sock in
          (match
             handle_message t ~arrived_at:dg.Udp.arrived_at dg.Udp.payload
               ~src:dg.Udp.src ~src_port:dg.Udp.src_port
           with
          | Some reply -> Udp.sendto sock ~dst:dg.Udp.src ~dst_port:dg.Udp.src_port reply
          | None -> ());
          (* The request chain is fully decoded (every extracted value is
             a fresh copy) and any cached reply was copied, so this
             worker holds the last reference: recycle the storage the
             client's encoder allocated. *)
          Mbuf.release ?pool:(Node.pool t.node) dg.Udp.payload;
          serve ()
        in
        serve ())
  done

let start_tcp t stack =
  (* Each connection gets a reader that reassembles records; requests are
     served by up to [nfsd_count] concurrent workers per connection. *)
  Tcp.listen stack ~port:P.port (fun conn ->
      let sim = Node.sim t.node in
      let slots = Proc.Semaphore.create sim t.profile.nfsd_count in
      let reader = Record_mark.Reader.create () in
      let rec pump () =
        match Tcp.recv conn ~max:65536 with
        | chunk ->
            Record_mark.Reader.push reader chunk;
            let rec drain () =
              match Record_mark.Reader.pop reader with
              | Some record ->
                  Proc.spawn sim (fun () ->
                      Proc.Semaphore.acquire slots;
                      if not t.up then
                        (* A down host's TCP answers with a reset. *)
                        Tcp.abort conn
                      else begin
                        (* Duplicate-cache identity must be per
                           connection: xids from different clients
                           collide. *)
                        match
                          handle_message t record ~src:(Tcp.peer conn)
                            ~src_port:(Tcp.peer_port conn)
                        with
                        | Some reply -> (
                            try Tcp.send conn (Record_mark.frame reply)
                            with Tcp.Connection_closed -> ())
                        | None -> ()
                      end;
                      Proc.Semaphore.release slots);
                  drain ()
              | None -> ()
            in
            (* A corrupt record mark means this connection's framing is
               unrecoverable: reset it, as a real server's RPC layer
               does; the client reconnects and replays. *)
            (match drain () with
            | () -> pump ()
            | exception Record_mark.Reader.Corrupt _ -> Tcp.abort conn)
        | exception Tcp.Connection_closed -> ()
      in
      pump ())

let start t =
  start_udp t;
  match t.tcp with Some stack -> start_tcp t stack | None -> ()
