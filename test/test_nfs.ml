open Renofs_core
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Stats = Renofs_engine.Stats
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module P = Nfs_proto

let quiet =
  { Net.Topology.default_params with cross_traffic = false; link_loss = 0.0 }

type world = {
  sim : Sim.t;
  topo : Net.Topology.t;
  server : Nfs_server.t;
  client_udp : Udp.stack;
  client_tcp : Tcp.stack;
}

let make_world ?(params = quiet) ?(profile = Nfs_server.reno_profile)
    ?(shape = Net.Topology.Lan) () =
  let sim = Sim.create () in
  let topo =
    Net.Topology.build sim { Net.Topology.shape; clients = 1; params }
  in
  let server_udp = Udp.install topo.Net.Topology.server in
  let server_tcp = Tcp.install topo.Net.Topology.server in
  let server =
    Nfs_server.create topo.Net.Topology.server ~profile ~udp:server_udp
      ~tcp:server_tcp ()
  in
  Nfs_server.start server;
  let client_udp = Udp.install topo.Net.Topology.client in
  let client_tcp = Tcp.install topo.Net.Topology.client in
  { sim; topo; server; client_udp; client_tcp }

let run_client w body =
  let result = ref None in
  Proc.spawn w.sim (fun () -> result := Some (body ()));
  Sim.run ~until:3600.0 w.sim;
  match !result with Some r -> r | None -> Alcotest.fail "client never finished"

let mount_in w opts =
  Nfs_client.mount ~udp:w.client_udp ~tcp:w.client_tcp
    ~server:(Net.Topology.server_id w.topo)
    ~root:(Nfs_server.root_fhandle w.server)
    opts

let pattern n = Bytes.init n (fun i -> Char.chr ((i * 13) mod 256))

(* ------------------------------------------------------------------ *)
(* Basic file operations                                              *)
(* ------------------------------------------------------------------ *)

let test_create_write_read_roundtrip () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "hello.txt" in
      let body = pattern 20000 in
      Nfs_client.write m fd ~off:0 body;
      Nfs_client.close m fd;
      let fd2 = Nfs_client.open_ m "hello.txt" in
      let back = Nfs_client.read m fd2 ~off:0 ~len:30000 in
      Alcotest.(check int) "length" 20000 (Bytes.length back);
      Alcotest.(check bytes) "content" body back;
      let a = Nfs_client.stat m "hello.txt" in
      Alcotest.(check int) "size" 20000 a.P.size)

let test_server_sees_data () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "server-visible");
      Nfs_client.close m fd;
      (* Check the backing store directly. *)
      let fs = Nfs_server.fs w.server in
      let v = Renofs_vfs.Fs.lookup fs (Renofs_vfs.Fs.root fs) "f" in
      let data = Renofs_vfs.Fs.read fs v ~off:0 ~len:100 in
      Alcotest.(check string) "on server" "server-visible" (Bytes.to_string data))

let test_directories_and_paths () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      Nfs_client.mkdir m "a";
      Nfs_client.mkdir m "a/b";
      let fd = Nfs_client.create m "a/b/deep.txt" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "deep");
      Nfs_client.close m fd;
      let names = Nfs_client.readdir m "a/b" in
      Alcotest.(check (list string)) "listing" [ "deep.txt" ] names;
      Alcotest.(check string) "read back" "deep"
        (Bytes.to_string
           (Nfs_client.read m (Nfs_client.open_ m "a/b/deep.txt") ~off:0 ~len:10)))

let test_unlink_rmdir () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      Nfs_client.mkdir m "d";
      let fd = Nfs_client.create m "d/f" in
      Nfs_client.close m fd;
      Nfs_client.unlink m "d/f";
      (match Nfs_client.stat m "d/f" with
      | exception Nfs_client.Nfs_error P.NFSERR_NOENT -> ()
      | _ -> Alcotest.fail "unlinked file still visible");
      Nfs_client.rmdir m "d";
      match Nfs_client.readdir m "d" with
      | exception Nfs_client.Nfs_error P.NFSERR_NOENT -> ()
      | exception Nfs_client.Nfs_error P.NFSERR_STALE -> ()
      | _ -> Alcotest.fail "removed dir still listable")

let test_rename_link_symlink () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "old" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "move me");
      Nfs_client.close m fd;
      Nfs_client.rename m "old" "new";
      Alcotest.(check string) "renamed" "move me"
        (Bytes.to_string (Nfs_client.read m (Nfs_client.open_ m "new") ~off:0 ~len:10));
      Nfs_client.link m ~existing:"new" "alias";
      Alcotest.(check int) "nlink" 2 (Nfs_client.stat m "alias").P.nlink;
      Nfs_client.symlink m "ln" ~target:"new";
      Alcotest.(check string) "readlink" "new" (Nfs_client.readlink m "ln"))

let test_statfs () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let s = Nfs_client.statfs m in
      Alcotest.(check int) "tsize" 8192 s.P.tsize;
      Alcotest.(check bool) "free sane" true (s.P.blocks_free > 0))

let test_open_missing_file () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      match Nfs_client.open_ m "nope" with
      | exception Nfs_client.Nfs_error P.NFSERR_NOENT -> ()
      | _ -> Alcotest.fail "expected NOENT")

let test_sparse_write () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "sparse" in
      Nfs_client.write m fd ~off:20000 (Bytes.of_string "tail");
      Nfs_client.close m fd;
      let fd2 = Nfs_client.open_ m "sparse" in
      let back = Nfs_client.read m fd2 ~off:19998 ~len:6 in
      Alcotest.(check string) "hole boundary" "\000\000tail" (Bytes.to_string back))

(* ------------------------------------------------------------------ *)
(* RPC counting and cache semantics                                   *)
(* ------------------------------------------------------------------ *)

let count m proc = Stats.Counter.get (Nfs_client.rpc_counters m) proc

let test_attr_cache_suppresses_getattr () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.close m fd;
      let before = count m "getattr" in
      for _ = 1 to 10 do
        ignore (Nfs_client.stat m "f")
      done;
      (* All ten stats inside the 5 s window: at most one fresh getattr. *)
      Alcotest.(check bool) "getattr suppressed" true (count m "getattr" - before <= 1))

let test_name_cache_halves_lookups () =
  let lookups opts =
    let w = make_world () in
    run_client w (fun () ->
        let m = mount_in w opts in
        let fd = Nfs_client.create m "target" in
        Nfs_client.close m fd;
        for _ = 1 to 20 do
          ignore (Nfs_client.stat m "target")
        done;
        count m "lookup")
  in
  let reno = lookups Nfs_client.reno_mount in
  let ultrix = lookups Nfs_client.ultrix_mount in
  Alcotest.(check bool) "reno needs few lookups" true (reno <= 2);
  Alcotest.(check bool) "ultrix looks up repeatedly" true (ultrix >= 10)

let test_push_on_close_blocks () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "partial");
      (* Delayed policy, partial block: nothing pushed yet. *)
      Alcotest.(check int) "no writes yet" 0 (count m "write");
      Nfs_client.close m fd;
      Alcotest.(check int) "write pushed at close" 1 (count m "write");
      Alcotest.(check int) "nothing dirty" 0 (Nfs_client.dirty_blocks m))

let test_nopush_defers_writes () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_nopush_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "partial");
      Nfs_client.close m fd;
      Alcotest.(check int) "close pushed nothing" 0 (count m "write");
      Alcotest.(check int) "still dirty" 1 (Nfs_client.dirty_blocks m);
      Nfs_client.flush_all m;
      Alcotest.(check int) "flushed eventually" 1 (count m "write"))

let test_noconsist_discards_on_unlink () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.noconsist_mount in
      let fd = Nfs_client.create m "temp" in
      Nfs_client.write m fd ~off:0 (pattern 50000);
      Nfs_client.close m fd;
      Nfs_client.unlink m "temp";
      (* The data never went to the server. *)
      Alcotest.(check int) "no write RPCs" 0 (count m "write"))

let test_reno_rereads_after_own_write () =
  (* The +50% read RPCs of Table 3: Reno invalidates its cache after its
     own writes; the Ultrix profile trusts them. *)
  let reads opts =
    let w = make_world () in
    run_client w (fun () ->
        let m = mount_in w opts in
        let fd = Nfs_client.create m "f" in
        Nfs_client.write m fd ~off:0 (pattern 8192);
        Nfs_client.close m fd;
        let fd = Nfs_client.open_ m "f" in
        ignore (Nfs_client.read m fd ~off:0 ~len:8192);
        Nfs_client.close m fd;
        count m "read")
  in
  let reno = reads Nfs_client.reno_mount in
  let ultrix = reads Nfs_client.ultrix_mount in
  Alcotest.(check bool) "reno re-reads" true (reno >= 1);
  Alcotest.(check int) "ultrix serves from cache" 0 ultrix

let test_write_policies_rpc_behavior () =
  let writes_before_close policy =
    let w = make_world () in
    run_client w (fun () ->
        let m =
          mount_in w { Nfs_client.reno_mount with Nfs_client.write_policy = policy }
        in
        let fd = Nfs_client.create m "f" in
        (* Two full blocks plus a partial one. *)
        Nfs_client.write m fd ~off:0 (pattern (2 * 8192));
        Nfs_client.write m fd ~off:(2 * 8192) (pattern 100);
        let before_close = count m "write" in
        Nfs_client.close m fd;
        (before_close, count m "write"))
  in
  let wt_before, wt_after = writes_before_close Nfs_client.Write_through in
  Alcotest.(check int) "write-through: all pushed inline" 3 wt_before;
  Alcotest.(check int) "write-through: close adds none" 3 wt_after;
  let d_before, d_after = writes_before_close Nfs_client.Delayed in
  Alcotest.(check int) "delayed: full blocks async" 2 d_before;
  Alcotest.(check int) "delayed: partial at close" 3 d_after

let test_dirty_region_no_preread () =
  (* Writing a few bytes into a fresh block must not read the block. *)
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:100 (Bytes.of_string "mid-block");
      Alcotest.(check int) "no preread" 0 (count m "read");
      Nfs_client.close m fd)

let test_fsync () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_nopush_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "x");
      Nfs_client.fsync m fd;
      Alcotest.(check int) "pushed" 1 (count m "write");
      Alcotest.(check int) "clean" 0 (Nfs_client.dirty_blocks m))

let test_readahead_prefetches () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w { Nfs_client.reno_mount with Nfs_client.read_ahead = 2 } in
      let fd = Nfs_client.create m "big" in
      Nfs_client.write m fd ~off:0 (pattern (8 * 8192));
      Nfs_client.close m fd;
      let fd = Nfs_client.open_ m "big" in
      (* Sequential read: every block must be correct despite read-ahead. *)
      let whole = Buffer.create (8 * 8192) in
      for blk = 0 to 7 do
        Buffer.add_bytes whole (Nfs_client.read m fd ~off:(blk * 8192) ~len:8192)
      done;
      Alcotest.(check bytes) "sequential content" (pattern (8 * 8192))
        (Buffer.to_bytes whole))

let test_readdirlook_prefetch () =
  let rpcs use_it =
    let w = make_world () in
    run_client w (fun () ->
        (* Populate through one mount; list through a second, cold one,
           so the creator's caches don't mask the effect. *)
        let writer = mount_in w Nfs_client.reno_mount in
        Nfs_client.mkdir writer "dir";
        for i = 0 to 9 do
          Nfs_client.close writer (Nfs_client.create writer (Printf.sprintf "dir/f%d" i))
        done;
        let m =
          mount_in w { Nfs_client.reno_mount with Nfs_client.use_readdirlook = use_it }
        in
        (* ls -l pattern: readdir then stat every entry. *)
        let names = Nfs_client.readdir m "dir" in
        List.iter (fun n -> ignore (Nfs_client.stat m ("dir/" ^ n))) names;
        count m "lookup" + count m "getattr")
  in
  let classic = rpcs false and bulk = rpcs true in
  Alcotest.(check bool) "bulk lookup saves RPCs" true (bulk < classic / 2)

(* ------------------------------------------------------------------ *)
(* Transports end-to-end                                              *)
(* ------------------------------------------------------------------ *)

let transport_roundtrip opts shape params =
  let w = make_world ~params ~shape () in
  run_client w (fun () ->
      let m = mount_in w opts in
      let fd = Nfs_client.create m "file" in
      let body = pattern 30000 in
      Nfs_client.write m fd ~off:0 body;
      Nfs_client.close m fd;
      let back = Nfs_client.read m (Nfs_client.open_ m "file") ~off:0 ~len:30000 in
      Alcotest.(check bytes) "content across transport" body back;
      m)

let test_tcp_transport_roundtrip () =
  ignore (transport_roundtrip Nfs_client.reno_tcp_mount Net.Topology.Lan quiet)

let test_dynamic_transport_roundtrip () =
  ignore (transport_roundtrip Nfs_client.reno_dynamic_mount Net.Topology.Lan quiet)

let test_transports_survive_lossy_wan () =
  let lossy = { quiet with Net.Topology.link_loss = 0.02 } in
  List.iter
    (fun opts ->
      let m = transport_roundtrip opts Net.Topology.Campus lossy in
      ignore (Client_transport.summary (Nfs_client.transport m)))
    [
      Nfs_client.reno_mount;
      Nfs_client.reno_dynamic_mount;
      Nfs_client.reno_tcp_mount;
    ]

let test_dynamic_window_reacts_to_loss () =
  let lossy = { quiet with Net.Topology.link_loss = 0.05 } in
  let w = make_world ~params:lossy ~shape:Net.Topology.Campus () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_dynamic_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (pattern (16 * 8192));
      Nfs_client.close m fd;
      for _ = 1 to 6 do
        ignore (Nfs_client.read m (Nfs_client.open_ m "f") ~off:0 ~len:(16 * 8192))
      done;
      let x = Nfs_client.transport m in
      Alcotest.(check bool) "retransmissions happened" true
        (Client_transport.retransmits x > 0);
      Alcotest.(check bool) "window stayed bounded" true
        (Client_transport.congestion_window x <= 12.0))

let test_duplicate_cache_protects_nonidempotent () =
  (* An absurdly low timeo forces retransmission of every RPC; the
     duplicate request cache must absorb the repeats of non-idempotent
     calls without re-executing them. *)
  let w = make_world () in
  run_client w (fun () ->
      let m =
        mount_in w { Nfs_client.reno_mount with Nfs_client.timeo = 0.003 }
      in
      for i = 0 to 4 do
        let fd = Nfs_client.create m (Printf.sprintf "f%d" i) in
        Nfs_client.write m fd ~off:0 (Bytes.of_string "data");
        Nfs_client.close m fd;
        Nfs_client.unlink m (Printf.sprintf "f%d" i)
      done;
      Alcotest.(check bool) "client retransmitted" true
        (Client_transport.retransmits (Nfs_client.transport m) > 0);
      Alcotest.(check bool) "server dropped duplicates" true
        (Nfs_server.duplicates_dropped w.server > 0))

let test_rtt_stats_populated () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_dynamic_mount in
      Client_transport.enable_read_trace (Nfs_client.transport m);
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (pattern (4 * 8192));
      Nfs_client.close m fd;
      ignore (Nfs_client.read m (Nfs_client.open_ m "f") ~off:0 ~len:(4 * 8192));
      let x = Nfs_client.transport m in
      let by_proc = Client_transport.rtt_by_proc x in
      Alcotest.(check bool) "read rtts recorded" true
        (List.mem_assoc "read" by_proc);
      Alcotest.(check bool) "trace recorded" true
        (List.length (Client_transport.read_rtt_trace x) > 0);
      let s = Client_transport.summary x in
      Alcotest.(check bool) "mean rtt positive" true (s.Client_transport.mean_rtt > 0.0))

let test_symlink_following () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      Nfs_client.mkdir m "real";
      let fd = Nfs_client.create m "real/data.txt" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "through the link");
      Nfs_client.close m fd;
      (* A directory symlink in the middle of a path. *)
      Nfs_client.symlink m "alias" ~target:"real";
      Alcotest.(check string) "walk through dir link" "through the link"
        (Bytes.to_string
           (Nfs_client.read m (Nfs_client.open_ m "alias/data.txt") ~off:0 ~len:100));
      (* A file symlink as the final component: open follows it. *)
      Nfs_client.symlink m "shortcut" ~target:"real/data.txt";
      Alcotest.(check string) "open follows final link" "through the link"
        (Bytes.to_string (Nfs_client.read m (Nfs_client.open_ m "shortcut") ~off:0 ~len:100));
      (* readlink reads the link itself, not the target. *)
      Alcotest.(check string) "readlink literal" "real/data.txt"
        (Nfs_client.readlink m "shortcut");
      (* Absolute targets resolve from the mount root. *)
      Nfs_client.symlink m "real/abs" ~target:"/real/data.txt";
      Alcotest.(check string) "absolute target" "through the link"
        (Bytes.to_string (Nfs_client.read m (Nfs_client.open_ m "real/abs") ~off:0 ~len:100)))

let test_symlink_loop_detected () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      Nfs_client.symlink m "a" ~target:"b";
      Nfs_client.symlink m "b" ~target:"a";
      match Nfs_client.open_ m "a" with
      | exception Nfs_client.Nfs_error P.NFSERR_IO -> ()
      | _ -> Alcotest.fail "symlink loop not detected")

let test_silly_rename () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "doomed" in
      Nfs_client.write m fd ~off:0 (Bytes.make 20000 's');
      Nfs_client.close m fd;
      (* Re-open, then unlink while the descriptor is live. *)
      let fd = Nfs_client.open_ m "doomed" in
      Nfs_client.unlink m "doomed";
      (match Nfs_client.stat m "doomed" with
      | exception Nfs_client.Nfs_error P.NFSERR_NOENT -> ()
      | _ -> Alcotest.fail "name still visible after unlink");
      (* The open descriptor still reads everything — including blocks
         that were never cached, which a naive client would lose to
         ESTALE on the stateless server. *)
      let back = Nfs_client.read m fd ~off:16384 ~len:100 in
      Alcotest.(check bytes) "tail readable after unlink" (Bytes.make 100 's') back;
      (* The server-side evidence: a .nfs file exists while open... *)
      let names = Nfs_client.readdir m "/" in
      Alcotest.(check bool) "silly name present" true
        (List.exists (fun n -> String.length n > 4 && String.sub n 0 4 = ".nfs") names);
      (* ...and disappears at the last close. *)
      Nfs_client.close m fd;
      let names = Nfs_client.readdir m "/" in
      Alcotest.(check bool) "silly name removed" false
        (List.exists (fun n -> String.length n > 4 && String.sub n 0 4 = ".nfs") names))

let test_server_service_times () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (pattern (2 * 8192));
      Nfs_client.close m fd;
      ignore (Nfs_client.read m (Nfs_client.open_ m "f") ~off:0 ~len:8192));
  let times = Nfs_server.service_times w.server in
  Alcotest.(check bool) "several procs recorded" true (List.length times >= 3);
  List.iter
    (fun (name, mean, count) ->
      Alcotest.(check bool) (name ^ " count positive") true (count > 0);
      Alcotest.(check bool) (name ^ " mean sane") true (mean >= 0.0 && mean < 1.0))
    times;
  (* A synchronous write (disk) must cost more service time than a
     getattr. *)
  let mean_of n = match List.find_opt (fun (x, _, _) -> x = n) times with
    | Some (_, m, _) -> m
    | None -> 0.0
  in
  Alcotest.(check bool) "write dearer than getattr" true
    (mean_of "write" > mean_of "getattr")

let test_ultrix_server_slower_lookups () =
  (* Graph 8's mechanism: the reference-port server burns more CPU per
     lookup (global buffer search + RPC layering). *)
  let busy profile =
    let w = make_world ~profile () in
    run_client w (fun () ->
        let m = mount_in w Nfs_client.ultrix_mount in
        for i = 0 to 49 do
          Nfs_client.close m (Nfs_client.create m (Printf.sprintf "f%02d" i))
        done;
        for _ = 1 to 3 do
          for i = 0 to 49 do
            ignore (Nfs_client.stat m (Printf.sprintf "f%02d" i))
          done
        done);
    Renofs_engine.Cpu.busy_time (Net.Node.cpu w.topo.Net.Topology.server)
  in
  let reno = busy Nfs_server.reno_profile in
  let ultrix = busy Nfs_server.reference_port_profile in
  Alcotest.(check bool) "reference port costs more" true (ultrix > reno *. 1.2)

(* Property: arbitrary write/read offset sequences through the full
   stack match a flat-array model. *)
let prop_nfs_io_model =
  QCheck.Test.make ~name:"nfs io matches flat-array model" ~count:25
    QCheck.(
      list_of_size Gen.(int_range 1 12)
        (pair (int_range 0 40000) (int_range 1 5000)))
    (fun ops ->
      let w = make_world () in
      run_client w (fun () ->
          let m = mount_in w Nfs_client.reno_mount in
          let fd = Nfs_client.create m "model" in
          let model = Bytes.make 50000 '\000' in
          let model_len = ref 0 in
          List.iteri
            (fun i (off, len) ->
              let data = Bytes.make len (Char.chr (97 + (i mod 26))) in
              Nfs_client.write m fd ~off data;
              Bytes.blit data 0 model off len;
              if off + len > !model_len then model_len := off + len)
            ops;
          Nfs_client.close m fd;
          let fd2 = Nfs_client.open_ m "model" in
          let actual = Nfs_client.read m fd2 ~off:0 ~len:!model_len in
          Bytes.equal actual (Bytes.sub model 0 !model_len)))

let () =
  Alcotest.run "nfs"
    [
      ( "fileops",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read_roundtrip;
          Alcotest.test_case "server sees data" `Quick test_server_sees_data;
          Alcotest.test_case "directories" `Quick test_directories_and_paths;
          Alcotest.test_case "unlink/rmdir" `Quick test_unlink_rmdir;
          Alcotest.test_case "rename/link/symlink" `Quick test_rename_link_symlink;
          Alcotest.test_case "statfs" `Quick test_statfs;
          Alcotest.test_case "open missing" `Quick test_open_missing_file;
          Alcotest.test_case "sparse write" `Quick test_sparse_write;
        ] );
      ( "caching",
        [
          Alcotest.test_case "attr cache" `Quick test_attr_cache_suppresses_getattr;
          Alcotest.test_case "name cache vs ultrix" `Quick test_name_cache_halves_lookups;
          Alcotest.test_case "push on close" `Quick test_push_on_close_blocks;
          Alcotest.test_case "nopush defers" `Quick test_nopush_defers_writes;
          Alcotest.test_case "noconsist discard on unlink" `Quick
            test_noconsist_discards_on_unlink;
          Alcotest.test_case "reno re-reads after write" `Quick
            test_reno_rereads_after_own_write;
          Alcotest.test_case "write policies" `Quick test_write_policies_rpc_behavior;
          Alcotest.test_case "dirty region no preread" `Quick test_dirty_region_no_preread;
          Alcotest.test_case "fsync" `Quick test_fsync;
          Alcotest.test_case "readahead" `Quick test_readahead_prefetches;
          Alcotest.test_case "readdirlook prefetch" `Quick test_readdirlook_prefetch;
        ] );
      ( "transport",
        [
          Alcotest.test_case "tcp mount" `Quick test_tcp_transport_roundtrip;
          Alcotest.test_case "dynamic mount" `Quick test_dynamic_transport_roundtrip;
          Alcotest.test_case "lossy wan all transports" `Quick
            test_transports_survive_lossy_wan;
          Alcotest.test_case "dynamic window reacts" `Quick test_dynamic_window_reacts_to_loss;
          Alcotest.test_case "duplicate cache" `Quick
            test_duplicate_cache_protects_nonidempotent;
          Alcotest.test_case "rtt stats" `Quick test_rtt_stats_populated;
          Alcotest.test_case "reference-port server dearer" `Quick
            test_ultrix_server_slower_lookups;
          Alcotest.test_case "service times" `Quick test_server_service_times;
        ] );
      ( "unix-semantics",
        [
          Alcotest.test_case "symlink following" `Quick test_symlink_following;
          Alcotest.test_case "symlink loop" `Quick test_symlink_loop_detected;
          Alcotest.test_case "silly rename" `Quick test_silly_rename;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_nfs_io_model ]);
    ]
