(** Minimal dependency-free JSON reader.

    Accepts standard JSON (objects, arrays, strings with the common
    escapes, numbers, booleans, null).  Extracted from [Bench_json] so
    layers below the workload library (e.g. [renofs_fault] schedule
    files) can parse documents without depending on the experiment
    registry; [Bench_json] re-exports this type with an equality so
    existing callers are unaffected. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

val parse_exn : string -> json
(** Raises {!Bad} with a message carrying line, column and byte offset
    on malformed input. *)

val parse : string -> (json, string) result

(** {2 Accessors}

    Each raises {!Bad} naming [ctx] when the shape is wrong — suitable
    for schema readers that want one error message out. *)

val member : ctx:string -> string -> (string * json) list -> json
(** [member ~ctx name obj] is the field, or raises "[ctx]: missing
    field [name]". *)

val member_opt : string -> (string * json) list -> json option
val str : ctx:string -> json -> string
val num : ctx:string -> json -> float
val arr : ctx:string -> json -> json list
val obj : ctx:string -> json -> (string * json) list

(** {2 Located file/line decoding}

    The one place [path:] / [path:line:] error prefixes are built, so
    the bench, fault, metrics and scenario loaders report malformed
    input identically. *)

val read_file : string -> (string, string) result
(** Whole-file read; [Error] carries the [Sys_error] message. *)

val load_file : string -> (json, string) result
(** {!read_file} + {!parse}; parse failures come back as
    ["path: parse error: ..."] with the line/column already inside. *)

val decode_file : string -> (json -> 'a) -> ('a, string) result
(** {!load_file}, then run a decoder that may raise {!Bad}; decoder
    failures come back as ["path: ..."]. *)

val decode_line :
  path:string -> lineno:int -> string -> (json -> 'a) -> ('a, string) result
(** Parse and decode one JSONL line; both parse and decoder failures
    come back as ["path:line: ..."]. *)
