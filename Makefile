# Convenience wrapper around dune.  `make check` is the tier-1 gate:
# everything must build, every test must pass, the dune files must be
# formatted (ocamlformat is not vendored, so @fmt covers dune files
# only — see dune-project), and the nfsbench CLI must survive a smoke
# run: list the registry, run one experiment across 2 domains with
# JSON output, validate that output against the renofs-bench/1
# schema, and exercise the fault layer (builtin listing, a schedule
# file on a normal experiment, the chaos invariant matrix).
# `make fuzz-smoke` runs the seeded wire-corruption fuzzer at fixed
# seeds: the checksums-on pass must come back clean (exit 0), and the
# checksums-off pass under bit corruption must detect at least one
# data-integrity violation (non-zero exit, inverted with `!`) — that
# asymmetry is the whole point of the UDP checksum.
# `make bench-gate` reruns the quick suite and diffs it against the
# committed BENCH_quick.json baseline, failing on any >15% regression
# in latency (ms/s) or throughput (per_s) cells; refresh the baseline
# with `make bench-baseline` after an intentional performance change.

.PHONY: all build test fmt smoke fuzz-smoke bench-gate bench-baseline check clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

smoke: build
	dune exec bin/nfsbench.exe -- list
	dune exec bin/nfsbench.exe -- run graph1 --jobs 2 --json /tmp/renofs-smoke.json
	dune exec bin/nfsbench.exe -- validate-json /tmp/renofs-smoke.json
	dune exec bin/nfsbench.exe -- faults
	dune exec bin/nfsbench.exe -- run graph1 --jobs 2 --faults examples/crash.json
	dune exec bin/nfsbench.exe -- chaos --scale quick

fuzz-smoke: build
	dune exec bin/nfsbench.exe -- fuzz --seeds 15 --jobs 2
	! dune exec bin/nfsbench.exe -- fuzz --seeds 5 --jobs 2 --no-checksum

bench-gate: build
	dune exec bin/nfsbench.exe -- all --json /tmp/renofs-bench-gate.json > /dev/null
	dune exec bin/nfsbench.exe -- diff BENCH_quick.json /tmp/renofs-bench-gate.json --tolerance 15

bench-baseline: build
	dune exec bin/nfsbench.exe -- all --json BENCH_quick.json > /dev/null

check: build test fmt smoke fuzz-smoke bench-gate

clean:
	dune clean
