open Renofs_mbuf

let bytes_gen = QCheck.Gen.(map Bytes.of_string (string_size (int_bound 9000)))
let arb_bytes = QCheck.make ~print:(fun b -> Printf.sprintf "<%d bytes>" (Bytes.length b)) bytes_gen

let test_empty () =
  let c = Mbuf.empty () in
  Alcotest.(check int) "length" 0 (Mbuf.length c);
  Alcotest.(check int) "mbufs" 0 (Mbuf.num_mbufs c);
  Alcotest.(check bytes) "to_bytes" Bytes.empty (Mbuf.to_bytes c)

let test_small_append_stays_small () =
  let c = Mbuf.of_string "hello" in
  Alcotest.(check int) "one small mbuf" 1 (Mbuf.num_mbufs c);
  Alcotest.(check int) "no clusters" 0 (Mbuf.num_clusters c)

let test_large_append_uses_clusters () =
  let c = Mbuf.of_bytes (Bytes.make 8192 'x') in
  Alcotest.(check bool) "clusters used" true (Mbuf.num_clusters c >= 4);
  Alcotest.(check int) "length" 8192 (Mbuf.length c)

let test_counters_track_copies () =
  let ctr = Mbuf.Counters.create () in
  let c = Mbuf.empty () in
  Mbuf.add_string ~ctr c (String.make 5000 'y');
  Alcotest.(check int) "copied bytes" 5000 ctr.Mbuf.Counters.bytes_copied;
  Alcotest.(check bool) "clusters counted" true (ctr.Mbuf.Counters.clusters_allocated > 0);
  let _ = Mbuf.to_bytes ~ctr c in
  Alcotest.(check int) "linearise copies again" 10000 ctr.Mbuf.Counters.bytes_copied;
  Mbuf.Counters.reset ctr;
  Alcotest.(check int) "reset" 0 ctr.Mbuf.Counters.bytes_copied

let test_add_u32 () =
  let c = Mbuf.empty () in
  Mbuf.add_u32 c 0xDEADBEEFl;
  let b = Mbuf.to_bytes c in
  Alcotest.(check int32) "big endian" 0xDEADBEEFl (Bytes.get_int32_be b 0)

let test_append_chain_moves () =
  let a = Mbuf.of_string "abc" and b = Mbuf.of_string "def" in
  Mbuf.append_chain a b;
  Alcotest.(check string) "joined" "abcdef" (Bytes.to_string (Mbuf.to_bytes a));
  Alcotest.(check int) "b drained" 0 (Mbuf.length b)

let test_split_boundaries () =
  let payload = String.init 5000 (fun i -> Char.chr (i mod 256)) in
  List.iter
    (fun n ->
      let c = Mbuf.of_string payload in
      let front, back = Mbuf.split c n in
      Alcotest.(check int) "front length" n (Mbuf.length front);
      Alcotest.(check int) "back length" (5000 - n) (Mbuf.length back);
      let joined =
        Bytes.to_string (Mbuf.to_bytes front) ^ Bytes.to_string (Mbuf.to_bytes back)
      in
      Alcotest.(check string) "content preserved" payload joined)
    [ 0; 1; 111; 112; 2048; 2049; 4999; 5000 ]

let test_split_out_of_bounds () =
  let c = Mbuf.of_string "abc" in
  Alcotest.check_raises "past end" (Invalid_argument "Mbuf.split: index out of bounds")
    (fun () -> ignore (Mbuf.split c 4))

let test_sub_copy () =
  let c = Mbuf.of_string "0123456789" in
  let part = Mbuf.sub_copy c ~pos:3 ~len:4 in
  Alcotest.(check string) "middle" "3456" (Bytes.to_string (Mbuf.to_bytes part));
  (* original untouched *)
  Alcotest.(check int) "original intact" 10 (Mbuf.length c)

let test_checksum_known () =
  (* RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2, cksum 220d *)
  let c = Mbuf.of_bytes (Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7") in
  Alcotest.(check int) "rfc1071" 0x220D (Mbuf.checksum c)

let test_checksum_odd_length () =
  let even = Mbuf.of_bytes (Bytes.of_string "\xab\x00") in
  let odd = Mbuf.of_bytes (Bytes.of_string "\xab") in
  Alcotest.(check int) "odd zero-padded" (Mbuf.checksum even) (Mbuf.checksum odd)

let test_cursor_sequential () =
  let c = Mbuf.empty () in
  Mbuf.add_u32 c 7l;
  Mbuf.add_string c "abcd";
  Mbuf.add_u32 c 9l;
  let cur = Mbuf.Cursor.create c in
  Alcotest.(check int) "remaining" 12 (Mbuf.Cursor.remaining cur);
  Alcotest.(check int32) "first" 7l (Mbuf.Cursor.u32 cur);
  Alcotest.(check string) "middle" "abcd" (Bytes.to_string (Mbuf.Cursor.bytes cur 4));
  Alcotest.(check int32) "last" 9l (Mbuf.Cursor.u32 cur);
  Alcotest.(check int) "drained" 0 (Mbuf.Cursor.remaining cur)

let test_cursor_underrun () =
  let c = Mbuf.of_string "ab" in
  let cur = Mbuf.Cursor.create c in
  Alcotest.check_raises "underrun" Mbuf.Cursor.Underrun (fun () ->
      ignore (Mbuf.Cursor.u32 cur))

let test_cursor_skip () =
  let c = Mbuf.of_string (String.make 3000 'a' ^ "Z") in
  let cur = Mbuf.Cursor.create c in
  Mbuf.Cursor.skip cur 3000;
  Alcotest.(check string) "after skip" "Z" (Bytes.to_string (Mbuf.Cursor.bytes cur 1))

(* Regressions: hostile lengths (a garbage XDR count, for instance)
   must raise Underrun up front — never allocate first, never let a
   negative length grow the cursor. *)
let test_cursor_hostile_lengths () =
  let fresh () = Mbuf.Cursor.create (Mbuf.of_string "abcd") in
  let raises name f =
    Alcotest.check_raises name Mbuf.Cursor.Underrun (fun () -> ignore (f ()))
  in
  raises "bytes: huge" (fun () -> Mbuf.Cursor.bytes (fresh ()) max_int);
  raises "bytes: negative" (fun () -> Mbuf.Cursor.bytes (fresh ()) (-1));
  raises "skip: past end" (fun () -> Mbuf.Cursor.skip (fresh ()) 5);
  raises "skip: negative" (fun () -> Mbuf.Cursor.skip (fresh ()) (-1));
  (* A failed negative skip must not have manufactured extra length. *)
  let cur = fresh () in
  (try Mbuf.Cursor.skip cur (-2) with Mbuf.Cursor.Underrun -> ());
  Alcotest.(check int) "remaining unchanged" 4 (Mbuf.Cursor.remaining cur)

(* Property tests *)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_bytes/to_bytes roundtrip" ~count:200 arb_bytes (fun b ->
      Bytes.equal (Mbuf.to_bytes (Mbuf.of_bytes b)) b)

let prop_split_rejoin =
  QCheck.Test.make ~name:"split preserves bytes" ~count:200
    QCheck.(pair arb_bytes (int_bound 10000))
    (fun (b, k) ->
      let n = Bytes.length b in
      let at = if n = 0 then 0 else k mod (n + 1) in
      let front, back = Mbuf.split (Mbuf.of_bytes b) at in
      let joined =
        Bytes.cat (Mbuf.to_bytes front) (Mbuf.to_bytes back)
      in
      Bytes.equal joined b && Mbuf.length front = at)

let prop_cursor_chunks =
  QCheck.Test.make ~name:"cursor chunked reads equal linear bytes" ~count:200
    QCheck.(pair arb_bytes (list_of_size Gen.(int_range 1 20) (int_range 1 500)))
    (fun (b, chunks) ->
      let cur = Mbuf.Cursor.create (Mbuf.of_bytes b) in
      let buf = Buffer.create (Bytes.length b) in
      let ok = ref true in
      (try
         List.iter
           (fun n ->
             let n = min n (Mbuf.Cursor.remaining cur) in
             Buffer.add_bytes buf (Mbuf.Cursor.bytes cur n))
           chunks;
         Buffer.add_bytes buf (Mbuf.Cursor.bytes cur (Mbuf.Cursor.remaining cur))
       with Mbuf.Cursor.Underrun -> ok := false);
      !ok && String.equal (Buffer.contents buf) (Bytes.to_string b))

let prop_checksum_split_invariant =
  QCheck.Test.make ~name:"checksum invariant under split+rejoin" ~count:100
    QCheck.(pair arb_bytes small_nat)
    (fun (b, k) ->
      let n = Bytes.length b in
      let at = if n = 0 then 0 else k mod (n + 1) in
      let whole = Mbuf.checksum (Mbuf.of_bytes b) in
      let front, back = Mbuf.split (Mbuf.of_bytes b) at in
      let rejoined = Mbuf.empty () in
      Mbuf.append_chain rejoined front;
      Mbuf.append_chain rejoined back;
      Mbuf.checksum rejoined = whole)

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_roundtrip () =
  let pool = Mbuf.Pool.create () in
  let c = Mbuf.of_bytes ~pool (Bytes.make 4096 'a') in
  Alcotest.(check int) "first chain allocates fresh" 0 (Mbuf.Pool.hits pool);
  let clusters = Mbuf.num_clusters c in
  Mbuf.release ~pool c;
  Alcotest.(check int) "storage accepted back" clusters (Mbuf.Pool.recycled pool);
  Alcotest.(check int) "free list holds it" clusters (Mbuf.Pool.cluster_free pool);
  Alcotest.(check int) "released chain emptied" 0 (Mbuf.length c);
  let c2 = Mbuf.of_bytes ~pool (Bytes.make 4096 'b') in
  Alcotest.(check int) "second chain served from pool" clusters
    (Mbuf.Pool.hits pool);
  Alcotest.(check bytes) "recycled storage carries new bytes"
    (Bytes.make 4096 'b') (Mbuf.to_bytes c2)

let test_pool_release_never_aliases () =
  (* Once released, a chain holds no view of its old storage: refilling
     the recycled buffers from a new owner must not be observable
     through the released chain, and a double release must not donate
     the same storage twice. *)
  let pool = Mbuf.Pool.create () in
  let c1 = Mbuf.of_bytes ~pool (Bytes.make 2048 'x') in
  Mbuf.release ~pool c1;
  let donated = Mbuf.Pool.recycled pool in
  Mbuf.release ~pool c1;
  Alcotest.(check int) "double release is a no-op" donated
    (Mbuf.Pool.recycled pool);
  Alcotest.(check int) "no phantom view" 0 (Mbuf.num_mbufs c1);
  let c2 = Mbuf.of_bytes ~pool (Bytes.make 2048 'y') in
  Alcotest.(check bool) "reuse happened" true (Mbuf.Pool.hits pool > 0);
  Alcotest.(check bytes) "old owner reads nothing" Bytes.empty
    (Mbuf.to_bytes c1);
  Alcotest.(check bytes) "new owner reads its own bytes"
    (Bytes.make 2048 'y') (Mbuf.to_bytes c2)

let test_pool_split_refcount () =
  (* Split siblings share cluster storage; the shared cluster recycles
     only when the *last* sharer releases, so a released sibling can
     never hand bytes still visible to the survivor to a new writer. *)
  let pool = Mbuf.Pool.create () in
  let src = Bytes.init 4096 (fun i -> Char.chr (i land 0xff)) in
  let c = Mbuf.of_bytes ~pool src in
  let total = Mbuf.num_clusters c in
  let front, back = Mbuf.split c 1000 in
  Mbuf.release ~pool front;
  Alcotest.(check bool) "shared cluster stays out of the free list" true
    (Mbuf.Pool.cluster_free pool < total);
  let survivor = Mbuf.of_bytes ~pool (Bytes.make 2048 'z') in
  ignore survivor;
  Alcotest.(check bytes) "survivor still reads its bytes"
    (Bytes.sub src 1000 (4096 - 1000))
    (Mbuf.to_bytes back);
  Mbuf.release ~pool back;
  Alcotest.(check int) "all storage back once the last sharer releases"
    total
    (Mbuf.Pool.recycled pool)

let test_pool_counts_hits () =
  let pool = Mbuf.Pool.create () in
  let ctr = Mbuf.Counters.create () in
  let c = Mbuf.of_bytes ~ctr ~pool (Bytes.make 6144 'q') in
  Mbuf.release ~pool c;
  let ctr2 = Mbuf.Counters.create () in
  let c2 = Mbuf.of_bytes ~ctr:ctr2 ~pool (Bytes.make 6144 'r') in
  ignore c2;
  Alcotest.(check int) "counters see the pool hits"
    (Mbuf.Pool.hits pool) ctr2.Mbuf.Counters.pool_hits;
  Alcotest.(check bool) "fresh allocations still counted" true
    (ctr.Mbuf.Counters.clusters_allocated > 0
    && ctr.Mbuf.Counters.pool_hits = 0)

let test_pool_caps_bound_retention () =
  let pool = Mbuf.Pool.create ~small_cap:1 ~cluster_cap:1 () in
  let a = Mbuf.of_bytes ~pool (Bytes.make 8192 'a') in
  Alcotest.(check bool) "several clusters released" true
    (Mbuf.num_clusters a > 1);
  Mbuf.release ~pool a;
  Alcotest.(check int) "cluster retention capped" 1
    (Mbuf.Pool.cluster_free pool);
  Alcotest.(check bool) "small retention capped" true
    (Mbuf.Pool.small_free pool <= 1)

let () =
  Alcotest.run "mbuf"
    [
      ( "chain",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "small stays small" `Quick test_small_append_stays_small;
          Alcotest.test_case "large uses clusters" `Quick test_large_append_uses_clusters;
          Alcotest.test_case "copy counters" `Quick test_counters_track_copies;
          Alcotest.test_case "add_u32 big endian" `Quick test_add_u32;
          Alcotest.test_case "append_chain moves" `Quick test_append_chain_moves;
          Alcotest.test_case "split boundaries" `Quick test_split_boundaries;
          Alcotest.test_case "split out of bounds" `Quick test_split_out_of_bounds;
          Alcotest.test_case "sub_copy" `Quick test_sub_copy;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "rfc1071 vector" `Quick test_checksum_known;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
        ] );
      ( "cursor",
        [
          Alcotest.test_case "sequential reads" `Quick test_cursor_sequential;
          Alcotest.test_case "underrun" `Quick test_cursor_underrun;
          Alcotest.test_case "skip across mbufs" `Quick test_cursor_skip;
          Alcotest.test_case "hostile lengths" `Quick test_cursor_hostile_lengths;
        ] );
      ( "pool",
        [
          Alcotest.test_case "roundtrip recycles storage" `Quick test_pool_roundtrip;
          Alcotest.test_case "release never aliases" `Quick
            test_pool_release_never_aliases;
          Alcotest.test_case "split cluster refcount" `Quick test_pool_split_refcount;
          Alcotest.test_case "counters see hits" `Quick test_pool_counts_hits;
          Alcotest.test_case "caps bound retention" `Quick
            test_pool_caps_bound_retention;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_split_rejoin; prop_cursor_chunks; prop_checksum_split_invariant ] );
    ]
