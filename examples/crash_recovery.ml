(* Statelessness in action: crash the server in the middle of a
   workload and watch the client ride through on retransmission alone —
   "the stateless server concept was used so that crash recovery is
   trivial" (paper, Section 1).  Act two plays the same crash against
   the v3 UNSTABLE+COMMIT profile, where recovery is *not* free: the
   server legally drops unacknowledged-durable data, and the client's
   write verifier check has to notice and rewrite.

     dune exec examples/crash_recovery.exe *)

module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Node = Renofs_net.Node
module Topology = Renofs_net.Topology
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Trace = Renofs_trace.Trace
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module Client_transport = Renofs_core.Client_transport

let () =
  let sim = Sim.create () in
  let topo = Topology.build sim Topology.default_spec in
  let sudp = Udp.install topo.Topology.server in
  let stcp = Tcp.install topo.Topology.server in
  let server = Nfs_server.create topo.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Topology.client in
  let ctcp = Tcp.install topo.Topology.client in

  (* The client hammers away, oblivious to what is coming. *)
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp ~server:(Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          Nfs_client.reno_mount
      in
      for i = 1 to 20 do
        let name = Printf.sprintf "f%02d" i in
        let t0 = Sim.now sim in
        let fd = Nfs_client.create m name in
        Nfs_client.write m fd ~off:0 (Bytes.make 4096 'd');
        Nfs_client.close m fd;
        let dt = Sim.now sim -. t0 in
        Printf.printf "t=%6.2fs  created %s%s\n" (Sim.now sim) name
          (if dt > 1.0 then Printf.sprintf "   <- stalled %.1fs across the crash" dt
           else "")
      done;
      (* Everything written before, during and after the outage is on
         stable storage. *)
      let survived = Nfs_client.readdir m "/" in
      Printf.printf "\nafter recovery the server holds %d files; client retransmitted %d times\n"
        (List.length survived)
        (Client_transport.retransmits (Nfs_client.transport m)));

  (* Meanwhile: the server dies at t=2s for 6 seconds, losing its buffer
     cache, name cache, duplicate-request cache and lease table.  The
     synchronously-written filesystem is its only memory — and the only
     one it needs. *)
  Proc.spawn sim (fun () ->
      Proc.sleep sim 2.0;
      Printf.printf "t=%6.2fs  *** server crash ***\n" (Sim.now sim);
      Nfs_server.crash_and_reboot server ~downtime:6.0;
      Printf.printf "t=%6.2fs  *** server back up (volatile state gone) ***\n"
        (Sim.now sim));

  Sim.run ~until:120.0 sim;
  print_endline "\n(no client-side error handling was involved: the RPC layer's";
  print_endline " timeout/retransmit discipline is the entire recovery protocol)";

  (* -------------------------------------------------------------- *)
  (* Act two: the same crash under the v3 async-write protocol.      *)
  (* UNSTABLE writes live only in the server's buffer cache until a  *)
  (* COMMIT; a crash between the two drops them, legally.  The per-  *)
  (* boot write verifier is how the client finds out.                *)
  (* -------------------------------------------------------------- *)
  print_endline "\n=== act two: v3 UNSTABLE writes across the same crash ===\n";
  let sim = Sim.create () in
  let topo = Topology.build sim Topology.default_spec in
  let tr = Trace.create () in
  List.iter
    (fun n -> Node.attach n { Node.detached with Node.trace = Some tr })
    topo.Topology.all;
  let sudp = Udp.install topo.Topology.server in
  let stcp = Tcp.install topo.Topology.server in
  let server = Nfs_server.create topo.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Topology.client in
  let ctcp = Tcp.install topo.Topology.client in
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp ~server:(Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          Nfs_client.v3_mount
      in
      let fd = Nfs_client.create m "ledger" in
      (* A full 32K block goes out asynchronously as UNSTABLE. *)
      Nfs_client.write m fd ~off:0
        (Bytes.make Nfs_client.v3_mount.Nfs_client.wsize 'v');
      Proc.sleep sim 2.0;
      Printf.printf
        "t=%6.2fs  wrote 32K UNSTABLE; server buffers %d volatile bytes under verifier %d\n"
        (Sim.now sim)
        (Nfs_server.unstable_bytes server)
        (Nfs_server.write_verf server);
      Printf.printf "t=%6.2fs  *** server crash: the buffered data is gone ***\n"
        (Sim.now sim);
      Nfs_server.crash_and_reboot server ~downtime:3.0;
      Printf.printf "t=%6.2fs  *** server back up, new verifier %d ***\n"
        (Sim.now sim)
        (Nfs_server.write_verf server);
      (* fsync = flush + COMMIT.  The COMMIT reply's verifier no longer
         matches the one the UNSTABLE ack carried, so the client
         rewrites the lost ranges before fsync is allowed to return. *)
      Nfs_client.fsync m fd;
      Nfs_client.close m fd;
      let mismatches =
        List.length
          (List.filter
             (fun r ->
               match r.Trace.ev with Trace.Verf_mismatch _ -> true | _ -> false)
             (Trace.to_list tr))
      in
      Printf.printf
        "t=%6.2fs  fsync returned: %d verifier mismatch detected, ranges rewritten\n"
        (Sim.now sim) mismatches;
      Printf.printf
        "          server now buffers %d volatile bytes; the 32K is on stable storage\n"
        (Nfs_server.unstable_bytes server));
  Sim.run ~until:120.0 sim;
  print_endline "\n(the write-behind ledger is the client-side half of COMMIT:";
  print_endline " nothing is forgotten until a COMMIT under the same boot verifier";
  print_endline " covers it — a lost verifier means rewrite, not lost data)"
