(* nfsbench: regenerate the paper's tables and figures from the command
   line.

     nfsbench list                     show every experiment id
     nfsbench run graph5               run one experiment (Quick scale)
     nfsbench run table1 -f            run one experiment at Full scale
     nfsbench run graph1 --jobs 4      run its cells across 4 domains
     nfsbench run graph1 --json g.json write typed results as JSON
     nfsbench run graph5 --report      append the nfsstat-style trace report
     nfsbench run graph5 --trace t.jsonl   export the raw event trace
     nfsbench run graph1 --faults crash        run under a fault schedule
     nfsbench chaos [--scale quick|full]       fault-schedule x transport matrix
     nfsbench fuzz --seeds 50          seeded wire-corruption sweep
     nfsbench fuzz --no-checksum --seeds 5     reproduce Sun's checksums-off story
     nfsbench perf --json p.json       wall-clock engine throughput
     nfsbench perf --baseline BENCH_perf.json  gate against a baseline
     nfsbench faults                   list the builtin fault schedules
     nfsbench all [-f] [--jobs N] [--json FILE]   run everything
     nfsbench run graph5 --metrics m.jsonl sample time-series metrics
     nfsbench plot m.jsonl cwnd        chart a recorded series
     nfsbench diff OLD.json NEW.json   regression-gate two --json files
     nfsbench validate-json FILE       check a --json file against the schema

   Results are assembled by cell index, never completion order, so any
   --jobs value produces byte-identical tables and JSON. *)

open Cmdliner
module E = Renofs_workload.Experiments
module Perf = Renofs_workload.Perf
module Sweep = Renofs_workload.Sweep
module Bench_json = Renofs_workload.Bench_json
module Trace = Renofs_trace.Trace
module Fault = Renofs_fault.Fault
module Metrics = Renofs_metrics.Metrics
module Stats = Renofs_engine.Stats

let scale_of_full full = if full then E.Full else E.Quick

let print_with_chart table =
  E.print_table Format.std_formatter table;
  match Renofs_workload.Ascii_plot.render_table table with
  | Some chart
    when String.length table.E.id >= 5 && String.sub table.E.id 0 5 = "graph" ->
      Format.printf "%s@." chart
  | _ -> ()

(* Fail before the sweep runs, not after: a mistyped --trace or --json
   path should not cost minutes of simulation. *)
let check_writable path =
  match open_out path with
  | oc -> close_out oc; None
  | exception Sys_error msg -> Some msg

let check_outputs paths =
  List.find_map
    (fun (what, path) ->
      Option.map
        (fun msg -> Printf.sprintf "cannot write %s: %s" what msg)
        (Option.bind path check_writable))
    paths

(* The default is already clamped to the machine and to the cell count
   (a 9-cell fleet run should not spawn idle domains); an explicit
   larger --jobs still runs, oversubscribed, with a warning. *)
let effective_jobs ?cells jobs =
  let cap j = match cells with Some n when n >= 1 -> min j n | _ -> j in
  match jobs with
  | None -> cap (Sweep.default_jobs ())
  | Some j ->
      let j = max 1 j in
      let recommended = Sweep.default_jobs () in
      if j > recommended then
        Format.eprintf
          "nfsbench: --jobs %d exceeds this machine's %d recommended domains; \
           running oversubscribed@."
          j recommended;
      (match cells with
      | Some n when j > n && n >= 1 ->
          Format.eprintf
            "nfsbench: --jobs %d exceeds the %d cells; extra domains would \
             idle, capping to %d@."
            j n n
      | _ -> ());
      cap j

let resolve_faults = function
  | None -> Ok None
  | Some spec -> Result.map Option.some (Fault.resolve spec)

(* CSV by extension, JSONL otherwise. *)
let export_metrics mt path =
  if Filename.check_suffix path ".csv" then Metrics.export_csv mt path
  else Metrics.export_jsonl mt path

let run_one id full jobs trace_path report json_path faults_spec metrics_path =
  match
    check_outputs
      [ ("trace", trace_path); ("json", json_path); ("metrics", metrics_path) ]
  with
  | Some msg -> `Error (false, msg)
  | None -> (
      match resolve_faults faults_spec with
      | Error msg -> `Error (false, msg)
      | Ok faults -> (
          let scale = scale_of_full full in
          match E.spec ~scale id with
          | None ->
              `Error
                ( false,
                  Printf.sprintf "unknown experiment %S; try one of: %s" id
                    (String.concat ", " (List.map fst E.specs)) )
          | Some spec ->
              let jobs = effective_jobs ~cells:(List.length spec.E.sp_cells) jobs in
              let tr =
                if trace_path <> None || report then
                  (* Full-scale sweeps emit a few hundred thousand events;
                     size the ring so the early runs are not overwritten. *)
                  Some (Trace.create ~capacity:(1 lsl 20) ())
                else None
              in
              let mt =
                match metrics_path with
                | Some _ -> Some (Metrics.create ())
                | None -> None
              in
              (match faults with
              | Some f ->
                  Format.printf "faults: %s — %s@." f.Fault.name f.Fault.description
              | None -> ());
              let results = E.run_spec ~jobs ?trace:tr ?faults ?metrics:mt spec in
              print_with_chart (E.render results);
              (match (mt, metrics_path) with
              | Some mt, Some path ->
                  export_metrics mt path;
                  Format.printf "metrics: %d series written to %s@."
                    (List.length (Metrics.series mt))
                    path
              | _ -> ());
              (match json_path with
              | Some path -> Bench_json.write_file ~scale ~jobs ~path [ results ]
              | None -> ());
              (match (tr, trace_path) with
              | Some tr, Some path ->
                  Trace.export_jsonl tr path;
                  Format.printf "trace: %d events written to %s (%d overwritten)@."
                    (Trace.length tr) path (Trace.dropped tr)
              | _ -> ());
              (match tr with
              | Some tr when report ->
                  Trace.Report.print Format.std_formatter (Trace.Report.build tr)
              | _ -> ());
              `Ok ()))

let run_all full jobs json_path =
  match check_outputs [ ("json", json_path) ] with
  | Some msg -> `Error (false, msg)
  | None ->
      let scale = scale_of_full full in
      let built = List.map (fun (_, mk) -> mk scale) E.specs in
      let cells =
        List.fold_left (fun acc s -> acc + List.length s.E.sp_cells) 0 built
      in
      let jobs = effective_jobs ~cells jobs in
      Format.printf "running %d experiments (%s scale, %d jobs)...@."
        (List.length E.specs)
        (match scale with E.Quick -> "quick" | E.Full -> "full")
        jobs;
      (* One pooled sweep across every experiment's cells: short
         experiments overlap long ones instead of serialising. *)
      let results = E.run_specs ~jobs built in
      List.iter (fun r -> print_with_chart (E.render r)) results;
      (match json_path with
      | Some path -> Bench_json.write_file ~scale ~jobs ~path results
      | None -> ());
      `Ok ()

let any_fail results =
  let is_fail = function
    | E.Text s -> String.length s >= 4 && String.sub s 0 4 = "FAIL"
    | _ -> false
  in
  List.exists (List.exists is_fail) results.E.r_rows

let run_chaos scale jobs seed json_path =
  match check_outputs [ ("json", json_path) ] with
  | Some msg -> `Error (false, msg)
  | None ->
      Format.printf "chaos: seed %d%s@." seed
        (if seed = 0 then " (the default world)" else "");
      let spec = E.chaos_spec ~seed scale in
      let jobs = effective_jobs ~cells:(List.length spec.E.sp_cells) jobs in
      let results = E.run_spec ~jobs spec in
      print_with_chart (E.render results);
      (match json_path with
      | Some path -> Bench_json.write_file ~scale ~jobs ~path [ results ]
      | None -> ());
      if any_fail results then
        `Error (false, "chaos: invariant violation detected (see table)")
      else `Ok ()

let run_fuzz scale jobs seeds seed no_checksum json_path =
  match check_outputs [ ("json", json_path) ] with
  | Some msg -> `Error (false, msg)
  | None ->
      let checksum = not no_checksum in
      Format.printf "fuzz: %d seeds from base seed %d, checksums %s, profiles %s@."
        seeds seed
        (if checksum then "on" else "off")
        (String.concat "," E.fuzz_profiles);
      let spec = E.fuzz_spec ~seeds ~base_seed:seed ~checksum scale in
      let jobs = effective_jobs ~cells:(List.length spec.E.sp_cells) jobs in
      let results = E.run_spec ~jobs spec in
      print_with_chart (E.render results);
      (match json_path with
      | Some path -> Bench_json.write_file ~scale ~jobs ~path [ results ]
      | None -> ());
      if any_fail results then
        `Error (false, "fuzz: violation detected (see table)")
      else `Ok ()

(* A series address is "run/name"; PATTERN is a case-sensitive
   substring of it.  Counters plot as per-interval rates — the level of
   a monotone counter is rarely the interesting shape. *)
let run_plot path pattern =
  match Metrics.import_jsonl path with
  | Error msg -> `Error (false, msg)
  | Ok all ->
      let address (s : Metrics.series) = s.Metrics.e_run ^ "/" ^ s.Metrics.e_name in
      let contains ~sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        sub = "" || go 0
      in
      let matches =
        List.filter (fun s -> contains ~sub:pattern (address s)) all
      in
      if matches = [] then begin
        Format.eprintf "no series matches %S; available:@." pattern;
        List.iter (fun s -> Format.eprintf "  %s@." (address s)) all;
        `Error (false, Printf.sprintf "no series matches %S" pattern)
      end
      else begin
        let shown, rest =
          List.filteri (fun i _ -> i < 4) matches,
          List.filteri (fun i _ -> i >= 4) matches
        in
        List.iter
          (fun (s : Metrics.series) ->
            let points, value_label =
              match s.Metrics.e_kind with
              | Metrics.Counter ->
                  (Stats.Timeseries.rate s.Metrics.e_points, s.Metrics.e_unit ^ "/s")
              | Metrics.Gauge | Metrics.Histogram ->
                  (s.Metrics.e_points, s.Metrics.e_unit)
            in
            Format.printf "%s — %s, %s, %d points@." (address s)
              (Metrics.kind_name s.Metrics.e_kind)
              value_label (List.length points);
            Format.printf "%s@."
              (Renofs_workload.Ascii_plot.render ~x_label:"sim time (s)"
                 ~y_label:value_label ~x:(List.map fst points)
                 ~series:[ (value_label, List.map snd points) ]
                 ()))
          shown;
        if rest <> [] then begin
          Format.printf "...and %d more matches (narrow the pattern):@."
            (List.length rest);
          List.iter (fun s -> Format.printf "  %s@." (address s)) rest
        end;
        `Ok ()
      end

let run_diff old_path new_path tolerance_pct =
  if tolerance_pct < 0.0 then `Error (false, "--tolerance must be >= 0")
  else
    match
      Bench_json.diff_files ~tolerance:(tolerance_pct /. 100.0) old_path new_path
    with
    | Error msg -> `Error (false, msg)
    | Ok r ->
        List.iter (fun w -> Format.printf "note: %s@." w) r.Bench_json.warnings;
        List.iter (fun w -> Format.printf "%s@." w) r.Bench_json.improvements;
        List.iter (fun w -> Format.printf "%s@." w) r.Bench_json.regressions;
        Format.printf "%d cells compared at ±%g%%: %d regressed, %d improved@."
          r.Bench_json.compared tolerance_pct
          (List.length r.Bench_json.regressions)
          (List.length r.Bench_json.improvements);
        if r.Bench_json.regressions <> [] then
          `Error
            ( false,
              Printf.sprintf "%d cells regressed beyond %g%%"
                (List.length r.Bench_json.regressions)
                tolerance_pct )
        else `Ok ()

(* Wall-clock throughput of the engine itself; see Perf.  Serial by
   design — measuring real time wants the machine to itself. *)
let run_perf json_path baseline_path tolerance_pct =
  match check_outputs [ ("json", json_path) ] with
  | Some msg -> `Error (false, msg)
  | None ->
      if tolerance_pct < 0.0 then `Error (false, "--tolerance must be >= 0")
      else begin
        let baseline =
          (* Read the baseline before the minutes-long measurement so a
             bad path fails fast. *)
          match baseline_path with
          | None -> Ok None
          | Some path -> Result.map Option.some (Perf.read_file path)
        in
        match baseline with
        | Error msg -> `Error (false, msg)
        | Ok baseline ->
            let r =
              Perf.run ~progress:(fun label -> Format.printf "%s...@." label) ()
            in
            Format.printf
              "%d cells, %.1f s wall: %d events (%.0f events/s), %d RPCs \
               (%.0f RPCs/s)@."
              (List.length r.Perf.cells) r.Perf.wall_s r.Perf.events
              r.Perf.events_per_s r.Perf.rpcs r.Perf.rpcs_per_s;
            (match json_path with
            | Some path ->
                Perf.write_file ~path r;
                Format.printf "perf: written to %s@." path
            | None -> ());
            (match baseline with
            | None -> `Ok ()
            | Some b ->
                let v =
                  Perf.diff ~tolerance:(tolerance_pct /. 100.0) ~baseline:b
                    ~current:r
                in
                List.iter (fun n -> Format.printf "note: %s@." n) v.Perf.notes;
                List.iter (fun s -> Format.printf "%s@." s) v.Perf.regressions;
                if v.Perf.regressions <> [] then
                  `Error
                    ( false,
                      Printf.sprintf "perf: %d rate(s) regressed beyond %g%%"
                        (List.length v.Perf.regressions)
                        tolerance_pct )
                else `Ok ())
      end

let list_faults () =
  List.iter
    (fun (s : Fault.schedule) ->
      Printf.printf "%-12s %s\n" s.Fault.name s.Fault.description;
      List.iter (fun a -> Printf.printf "    %s\n" (Fault.describe a)) s.Fault.actions)
    Fault.builtins

let list_ids () =
  List.iter (fun (id, _) -> print_endline id) E.specs

let validate_json path =
  match Bench_json.validate_file path with
  | Ok () ->
      Format.printf "%s: valid %s@." path "renofs-bench/1";
      `Ok ()
  | Error msg -> `Error (false, Printf.sprintf "%s: %s" path msg)

let full_flag =
  Arg.(value & flag & info [ "f"; "full" ] ~doc:"Run at full scale (longer sweeps).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Execute experiment cells across $(docv) domains (default: the \
           machine's recommended domain count). Results are deterministic \
           regardless of $(docv).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write typed results as JSON (schema renofs-bench/1) to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record an RPC-lifecycle event trace and export it as JSONL.")

let report_flag =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:
          "Record an RPC-lifecycle event trace and print the nfsstat-style \
           per-procedure table and latency breakdown after the experiment.")

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT"
       ~doc:"Experiment id, e.g. graph1 or table5.")

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
       ~doc:"A file produced by --json.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Sample instrumented sources (cwnd, RTO estimators, server queue \
           depth, link utilization, caches) every 0.5 sim-seconds and write \
           the time series to $(docv): schema renofs-metrics/1 as JSONL, or \
           CSV when $(docv) ends in .csv.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SCHEDULE"
        ~doc:
          "Run under a fault schedule: a builtin name (see $(b,nfsbench \
           faults)) or a renofs-fault/1 JSON file.")

let scale_arg =
  Arg.(
    value
    & opt (enum [ ("quick", E.Quick); ("full", E.Full) ]) E.Quick
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"quick (3 schedules) or full (every builtin schedule).")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print its table")
    Term.(
      ret
        (const run_one $ id_arg $ full_flag $ jobs_arg $ trace_arg $ report_flag
       $ json_arg $ faults_arg $ metrics_arg))

let plot_cmd =
  let metrics_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A renofs-metrics/1 JSONL file (--metrics).")
  in
  let pattern =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SERIES"
          ~doc:
            "Substring of a series address (run/name), e.g. \
             $(b,udp-dyn/client.xport.cwnd) or just $(b,cwnd).")
  in
  Cmd.v
    (Cmd.info "plot"
       ~doc:
         "Render time series from a --metrics file as ASCII charts (counters \
          as per-interval rates)")
    Term.(ret (const run_plot $ metrics_file $ pattern))

let diff_cmd =
  let old_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline renofs-bench/1 file.")
  in
  let new_file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate renofs-bench/1 file.")
  in
  let tolerance =
    Arg.(
      value & opt float 15.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Allowed change in percent before a latency (ms/s) increase or a \
             throughput (per_s) decrease counts as a regression.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two --json files cell by cell; exits non-zero when any \
          cell regressed beyond the tolerance")
    Term.(ret (const run_diff $ old_file $ new_file $ tolerance))

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "World seed (printed in the header so a failing run can be \
           replayed). 0 is the historical default world; for $(b,fuzz) it is \
           the base seed: cell $(i,i) uses seed N+$(i,i).")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the fault-schedule x transport matrix and check the recovery \
          invariants; exits non-zero on any violation")
    Term.(ret (const run_chaos $ scale_arg $ jobs_arg $ seed_arg $ json_arg))

let fuzz_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 15
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Number of fuzzing cells; profile and transport cycle per cell, \
             so 15 or more covers the full profile x transport matrix.")
  in
  let no_checksum_flag =
    Arg.(
      value & flag
      & info [ "no-checksum" ]
          ~doc:
            "Disable UDP checksums, as Sun shipped them — the corrupt \
             profile is then expected to produce (and the exit code to \
             report) end-to-end data-integrity violations.")
  in
  let fuzz_scale =
    Arg.(
      value
      & opt (enum [ ("quick", E.Quick); ("full", E.Full) ]) E.Quick
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Per-cell workload duration: quick (6 sim-s) or full (10).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Sweep seeded wire-mangling profiles (corrupt/truncate/duplicate/\
          reorder/storm) across the three transports under load; exits \
          non-zero on any invariant or data-integrity violation, stuck \
          driver, or uncaught exception")
    Term.(
      ret
        (const run_fuzz $ fuzz_scale $ jobs_arg $ seeds_arg $ seed_arg
       $ no_checksum_flag $ json_arg))

let perf_cmd =
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "A renofs-perf/1 file to gate against: exits non-zero when \
             events/s or RPCs/s fall more than the tolerance below it.")
  in
  let tolerance =
    Arg.(
      value & opt float 30.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Allowed wall-clock rate drop in percent before the run counts \
             as a regression (wide by default: container clocks are noisy).")
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Measure wall-clock engine throughput (events/s, RPCs/s) over the \
          fixed graph5 full cell set; optionally write a renofs-perf/1 JSON \
          and gate against a baseline")
    Term.(ret (const run_perf $ json_arg $ baseline_arg $ tolerance))

let faults_cmd =
  Cmd.v
    (Cmd.info "faults" ~doc:"List the builtin fault schedules")
    Term.(const list_faults $ const ())

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment")
    Term.(ret (const run_all $ full_flag $ jobs_arg $ json_arg))

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids") Term.(const list_ids $ const ())

let validate_cmd =
  Cmd.v
    (Cmd.info "validate-json"
       ~doc:"Validate a --json output file against the renofs-bench/1 schema")
    Term.(ret (const validate_json $ file_arg))

let main =
  Cmd.group
    (Cmd.info "nfsbench" ~version:"1.0"
       ~doc:
         "Reproduce the experiments of 'Lessons Learned Tuning the 4.3BSD Reno \
          Implementation of the NFS Protocol' (Macklem, USENIX 1991)")
    [
      run_cmd;
      chaos_cmd;
      fuzz_cmd;
      perf_cmd;
      faults_cmd;
      all_cmd;
      list_cmd;
      validate_cmd;
      plot_cmd;
      diff_cmd;
    ]

let () = exit (Cmd.eval main)
