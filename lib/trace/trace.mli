(** RPC-lifecycle tracing and metrics.

    A {!t} is an append-only ring buffer of timestamped, typed events,
    attached to the hosts and links of a simulation.  Every hook in the
    stack is behind an [option] check, so a run without a sink pays one
    branch per hook and allocates nothing.

    The event taxonomy follows the layers the paper attributes time to:
    the client RPC layer ({!Rpc_send} / {!Rpc_retransmit} / {!Rpc_reply},
    with {!Cwnd_update} / {!Rto_update} from the congestion-controlled
    transports), the wire ({!Pkt_enqueue} / {!Pkt_drop} / {!Pkt_deliver}
    per link direction, {!Frag_lost} for abandoned IP reassemblies), and
    the server ({!Srv_queue} socket-queue wait, {!Srv_service} execution
    time, {!Cache_hit} / {!Cache_miss} for the duplicate-request cache).

    {!Report} joins a trace's events by xid into per-RPC spans and
    derives an nfsstat-style per-procedure table plus a latency
    breakdown (wire / server queue / service / retransmit wait). *)

type drop_reason =
  | Queue_full  (** drop-tail router/link output queue overflow *)
  | Link_error  (** random per-packet corruption on the wire *)
  | Sock_overflow  (** receiving socket buffer full *)
  | Link_down  (** link administratively down (fault injection) *)
  | Bad_checksum  (** receiver checksum mismatch (mangled payload) *)
  | Garbled  (** undecodable RPC bytes discarded above the transport *)

type event =
  | Rpc_send of { xid : int32; proc : int }
  | Rpc_retransmit of { xid : int32; proc : int; retry : int; rto : float }
  | Rpc_reply of { xid : int32; proc : int; rtt : float }
  | Pkt_enqueue of { link : string; bytes : int; qlen : int }
  | Pkt_drop of { link : string; bytes : int; reason : drop_reason }
  | Pkt_deliver of { link : string; bytes : int }
  | Pkt_mangle of { link : string; bytes : int; op : string }
      (** The fault-injection mangler damaged a packet in flight; [op]
          is ["corrupt"], ["truncate"], ["duplicate"] or ["reorder"]
          and [bytes] the wire size before mangling. *)
  | Frag_lost of { src : int; ip_id : int }
  | Srv_queue of { xid : int32; proc : int; wait : float }
  | Srv_service of { xid : int32; proc : int; service : float }
  | Cwnd_update of { cwnd : float }
  | Rto_update of { rto : float }
  | Cache_hit of { cache : string }
  | Cache_miss of { cache : string }
  | Run_mark of { label : string }
      (** Starts a new trace segment: sim clocks and xid spaces reset
          between experiment worlds, so joins never cross a mark. *)
  | Srv_crash  (** server lost its volatile state (dup cache, leases) *)
  | Srv_reboot  (** server back up; lease-recovery grace period begins *)
  | Write_committed of {
      file : int;  (** inode number *)
      off : int;
      len : int;
      digest : int;  (** {!digest} of the data as written *)
      mtime : float;  (** file mtime after the write *)
    }
      (** The server acknowledged a WRITE after committing it; the
          invariant checker ([Fault.Check]) replays these against the
          post-run file system to prove durability across crashes. *)
  | Lease_grant of { file : int; mode : string; holder : int; duration : float }
      (** NQNFS lease granted; [mode] is ["read"] or ["write"]. *)
  | Cached_read of { file : int; holder : int; mtime : float }
      (** A client served a read from its block cache under a live lease
          without revalidating; [mtime] is the cached attribute. *)
  | Wl_error of { op : string; soft : bool }
      (** An RPC error surfaced to the workload ([ETIMEDOUT] on a soft
          mount's give-up).  [soft = false] would mean a hard mount
          leaked an error — the invariant checkers flag it. *)
  | Fault_inject of { action : string }
      (** A fault schedule applied an action (human-readable form). *)
  | Write_unstable of {
      file : int;  (** inode number *)
      off : int;
      len : int;
      digest : int;  (** {!digest} of the data as received *)
      verf : int;  (** the server's per-boot write verifier *)
    }
      (** The v3 server acknowledged an UNSTABLE WRITE: data is buffered
          volatile and may legally vanish in a crash — until a
          {!Commit_ok} with the same [verf] covers it, at which point
          durability is promised. *)
  | Commit_ok of { file : int; off : int; count : int; verf : int }
      (** The v3 server acknowledged a COMMIT over [off, off+count)
          ([count = 0] means to end of file) after flushing the covered
          unstable data to stable storage.  [Fault.Check.committed_durable]
          pairs these with {!Write_unstable} events by verifier. *)
  | Verf_mismatch of { file : int; expected : int; got : int }
      (** A v3 client noticed the server's write verifier change under
          uncommitted data — the crash-detection signal that obliges it
          to rewrite every unstable range before acking close/fsync. *)

type record_ = { time : float; node : int; ev : event }
(** [node] is the host id the event was observed on, or [-1] when the
    observer has no host identity (marks, link directions without an
    owner). *)

type t

val create : ?capacity:int -> unit -> t
(** A ring buffer holding the last [capacity] records (default 2^18).
    Older records are overwritten, and counted in {!dropped}. *)

val record : t -> time:float -> node:int -> event -> unit
(** Append one record (no-op while disabled, see {!set_enabled}). *)

val mark : t -> time:float -> string -> unit
(** [mark t ~time label] records a {!Run_mark}. *)

val set_enabled : t -> bool -> unit
(** Gate recording without detaching the sink — e.g. off during a
    warmup phase.  Sinks start enabled. *)

val set_probe : t -> Renofs_engine.Probe.t option -> unit
(** With a probe attached, each {!record} charges its own cost to the
    observer slot — the trace's overhead becomes self-measuring.
    Detached (the default): one extra branch per record. *)

val enabled : t -> bool

val length : t -> int
(** Records currently held (at most the capacity). *)

val total : t -> int
(** Records ever offered while enabled. *)

val dropped : t -> int
(** [total - length]: records overwritten by ring wraparound. *)

val clear : t -> unit
val to_list : t -> record_ list
(** Surviving records, oldest first. *)

val capacity : t -> int
(** The ring size this sink was created with. *)

val merge : into:t -> t -> unit
(** [merge ~into src] appends [src]'s surviving records, oldest first,
    to [into] ([into]'s enabled gate applies).  Experiment runners give
    each parallel cell a private sink and merge them back in cell order,
    so the combined stream is identical to a serial run: segments stay
    mark-delimited and never interleave. *)

val proc_name : int -> string
(** NFSv2 procedure names (plus this repo's extensions), matching
    [Nfs_proto.proc_name]; kept here so the trace library stays below
    the protocol layer in the dependency order. *)

val digest : bytes -> int
(** FNV-1a folded to 30 bits — a small nonnegative int that survives the
    JSONL number round-trip exactly.  Used by {!Write_committed} and the
    invariant checker's read-back comparison. *)

(** {2 JSONL export / import}

    One flat JSON object per line, e.g.
    [{"t":1.25,"node":3,"ev":"rpc_send","xid":17,"proc":4}].  Import
    accepts exactly what export produces (field order is free, floats
    round-trip). *)

val line_of_record : record_ -> string
val record_of_line : string -> record_
(** Raises [Failure] on malformed input. *)

val export_jsonl : t -> string -> unit
(** Write surviving records to a file, one per line, preceded by a
    [{"schema":"renofs-trace/1","held":H,"total":T,"overwritten":D}]
    metadata line so ring overwrites are visible in the export itself,
    not only in {!Report.print}. *)

val import_jsonl : string -> record_ list
(** Raises [Failure] with [path:line:] context on malformed input.
    Lines carrying a ["schema"] field (the export header) are
    skipped, so files from before the header import identically. *)

(** {2 Analysis} *)

module Report : sig
  type span = {
    sp_label : string;  (** enclosing {!Run_mark} label, [""] if none *)
    sp_xid : int32;
    sp_proc : int;
    sp_start : float;  (** first transmission *)
    sp_retrans : int;
    sp_rtx_wait : float;
        (** first transmission to last retransmission, capped at
            [sp_total]: a retransmission the original reply overtakes
            (nfsstat's badxid case) cannot have delayed the RPC longer
            than the RPC took *)
    sp_srv_wait : float;  (** server socket-queue wait *)
    sp_srv_service : float;  (** server execution time *)
    sp_total : float;  (** first transmission to reply *)
  }

  val spans : record_ list -> span list
  (** Join events by xid within each mark-delimited segment; a span
      completes on its {!Rpc_reply}.  Unanswered sends are dropped
      (counted by {!build} as incomplete). *)

  val wire_time : span -> float
  (** What is left of [sp_total] after queue wait, service time and
      retransmit wait: transmission, propagation, router queueing and
      host protocol processing. *)

  type proc_row = {
    pr_name : string;
    pr_calls : int;
    pr_retrans : int;
    pr_p50 : float;
    pr_p95 : float;
    pr_p99 : float;  (** latency quantiles in seconds *)
  }

  type label_row = {
    lr_label : string;
    lr_calls : int;
    lr_total : float;
    lr_wire : float;
    lr_queue : float;
    lr_service : float;
    lr_rtx_wait : float;  (** mean seconds per RPC *)
  }

  type report = {
    by_proc : proc_row list;
    by_label : label_row list;
    complete : int;
    incomplete : int;
    events : int;
    events_dropped : int;
  }

  val build : t -> report

  val print : Format.formatter -> report -> unit
  (** The nfsstat-style per-procedure table followed by the per-label
      latency breakdown. *)
end
