let mlen = 112
let mclbytes = 2048

(* Allocate a cluster rather than chaining small mbufs once this many
   bytes remain to be stored (MINCLSIZE in 4.3BSD). *)
let mincl_size = 208

module Counters = struct
  type t = {
    mutable bytes_copied : int;
    mutable smalls_allocated : int;
    mutable clusters_allocated : int;
    mutable pool_hits : int;
  }

  let create () =
    { bytes_copied = 0; smalls_allocated = 0; clusters_allocated = 0; pool_hits = 0 }

  let reset t =
    t.bytes_copied <- 0;
    t.smalls_allocated <- 0;
    t.clusters_allocated <- 0;
    t.pool_hits <- 0
end

type mbuf = {
  data : Bytes.t;
  mutable off : int;
  mutable len : int;
  cluster : bool;
  writable : bool; (* false for views produced by [split] *)
  refs : int ref; (* live records sharing [data]; views share the cell *)
}

(* Free lists of recycled storage.  Only exactly pool-sized buffers are
   kept, so storage that came from [of_bytes] of arbitrary data (or from
   outside the pool entirely) silently falls back to the GC. *)
module Pool = struct
  type t = {
    mutable smalls : Bytes.t list;
    mutable clusters : Bytes.t list;
    mutable nsmalls : int;
    mutable nclusters : int;
    small_cap : int;
    cluster_cap : int;
    mutable hits : int;
    mutable recycled : int;
  }

  let create ?(small_cap = 2048) ?(cluster_cap = 512) () =
    {
      smalls = [];
      clusters = [];
      nsmalls = 0;
      nclusters = 0;
      small_cap;
      cluster_cap;
      hits = 0;
      recycled = 0;
    }

  let grab t cluster =
    if cluster then
      match t.clusters with
      | [] -> None
      | b :: rest ->
          t.clusters <- rest;
          t.nclusters <- t.nclusters - 1;
          t.hits <- t.hits + 1;
          Some b
    else
      match t.smalls with
      | [] -> None
      | b :: rest ->
          t.smalls <- rest;
          t.nsmalls <- t.nsmalls - 1;
          t.hits <- t.hits + 1;
          Some b

  let stash t b =
    let n = Bytes.length b in
    if n = mlen then begin
      if t.nsmalls < t.small_cap then begin
        t.smalls <- b :: t.smalls;
        t.nsmalls <- t.nsmalls + 1;
        t.recycled <- t.recycled + 1
      end
    end
    else if n = mclbytes && t.nclusters < t.cluster_cap then begin
      t.clusters <- b :: t.clusters;
      t.nclusters <- t.nclusters + 1;
      t.recycled <- t.recycled + 1
    end

  let hits t = t.hits
  let recycled t = t.recycled
  let small_free t = t.nsmalls
  let cluster_free t = t.nclusters
end

type t = { mutable rev : mbuf list; mutable total : int }
(* [rev] holds the mbufs in reverse order so append is O(1). *)

let empty () = { rev = []; total = 0 }
let length t = t.total
let num_mbufs t = List.length t.rev
let num_clusters t = List.length (List.filter (fun m -> m.cluster) t.rev)

let cluster_bytes t =
  List.fold_left (fun acc m -> if m.cluster then acc + m.len else acc) 0 t.rev

let note_copy ctr n =
  match ctr with
  | None -> ()
  | Some (c : Counters.t) -> c.bytes_copied <- c.bytes_copied + n

let alloc ?pool ctr want_cluster =
  let cluster = want_cluster in
  (match ctr with
  | None -> ()
  | Some (c : Counters.t) ->
      if cluster then c.clusters_allocated <- c.clusters_allocated + 1
      else c.smalls_allocated <- c.smalls_allocated + 1);
  let data =
    match pool with
    | None -> Bytes.create (if cluster then mclbytes else mlen)
    | Some p -> (
        match Pool.grab p cluster with
        | Some b ->
            (match ctr with
            | Some (c : Counters.t) -> c.pool_hits <- c.pool_hits + 1
            | None -> ());
            b
        | None -> Bytes.create (if cluster then mclbytes else mlen))
  in
  { data; off = 0; len = 0; cluster; writable = true; refs = ref 1 }

(* Explicit ownership: a chain's owner hands the storage back once the
   payload is dead.  Each record drops one reference; storage recycles
   only when the last sharer (a [split] view, usually) releases.  The
   chain is emptied, so releasing twice is a no-op rather than an
   aliasing bug. *)
let release ?pool t =
  (match pool with
  | None -> ()
  | Some p ->
      List.iter
        (fun m ->
          let r = m.refs in
          if !r > 0 then begin
            decr r;
            if !r = 0 then Pool.stash p m.data
          end)
        t.rev);
  t.rev <- [];
  t.total <- 0

let tail_room m =
  if not m.writable then 0 else Bytes.length m.data - (m.off + m.len)

let add_bytes ?ctr ?pool t src ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Mbuf.add_bytes: range out of bounds";
  note_copy ctr len;
  let rec go off len =
    if len > 0 then begin
      let m =
        match t.rev with
        | m :: _ when tail_room m > 0 -> m
        | _ ->
            let m = alloc ?pool ctr (len >= mincl_size) in
            t.rev <- m :: t.rev;
            m
      in
      let n = min len (tail_room m) in
      Bytes.blit src off m.data (m.off + m.len) n;
      m.len <- m.len + n;
      t.total <- t.total + n;
      go (off + n) (len - n)
    end
  in
  go off len

let add_string ?ctr ?pool t s =
  add_bytes ?ctr ?pool t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let add_u32 ?ctr ?pool t v =
  match t.rev with
  | m :: _ when tail_room m >= 4 ->
      (* Write straight into the tail: the common case in XDR encoding,
         which is word-at-a-time, so the staging buffer below would
         otherwise be allocated once per field. *)
      Bytes.set_int32_be m.data (m.off + m.len) v;
      m.len <- m.len + 4;
      t.total <- t.total + 4;
      note_copy ctr 4
  | _ ->
      (* The 4-byte staging buffer must be per call: a module-level
         scratch is written concurrently when experiment cells encode on
         several domains, and corrupts the word. *)
      let b = Bytes.create 4 in
      Bytes.set_int32_be b 0 v;
      add_bytes ?ctr ?pool t b ~off:0 ~len:4

let of_bytes ?ctr ?pool b =
  let t = empty () in
  add_bytes ?ctr ?pool t b ~off:0 ~len:(Bytes.length b);
  t

let of_string ?ctr ?pool s =
  let t = empty () in
  add_string ?ctr ?pool t s;
  t

let iter_mbufs t f = List.iter f (List.rev t.rev)

let to_bytes ?ctr t =
  let out = Bytes.create t.total in
  let pos = ref 0 in
  iter_mbufs t (fun m ->
      Bytes.blit m.data m.off out !pos m.len;
      pos := !pos + m.len);
  note_copy ctr t.total;
  out

let append_chain a b =
  a.rev <- b.rev @ a.rev;
  a.total <- a.total + b.total;
  b.rev <- [];
  b.total <- 0

let split t n =
  if n < 0 || n > t.total then invalid_arg "Mbuf.split: index out of bounds";
  let front = empty () and back = empty () in
  let take chain m =
    chain.rev <- m :: chain.rev;
    chain.total <- chain.total + m.len
  in
  let left = ref n in
  iter_mbufs t (fun m ->
      if !left >= m.len then begin
        take front m;
        left := !left - m.len
      end
      else if !left = 0 then take back m
      else begin
        (* Straddling mbuf: share the underlying storage as two views.
           One record conceptually dies and two are born, so the shared
           reference count grows by exactly one. *)
        incr m.refs;
        let head =
          {
            data = m.data;
            off = m.off;
            len = !left;
            cluster = m.cluster;
            writable = false;
            refs = m.refs;
          }
        and tail =
          {
            data = m.data;
            off = m.off + !left;
            len = m.len - !left;
            cluster = m.cluster;
            writable = false;
            refs = m.refs;
          }
        in
        take front head;
        take back tail;
        left := 0
      end);
  (front, back)

let sub_copy ?ctr ?pool t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.total then
    invalid_arg "Mbuf.sub_copy: range out of bounds";
  let out = empty () in
  let skip = ref pos and want = ref len in
  iter_mbufs t (fun m ->
      if !want > 0 then begin
        let drop = min !skip m.len in
        skip := !skip - drop;
        let avail = m.len - drop in
        if avail > 0 then begin
          let n = min avail !want in
          add_bytes ?ctr ?pool out m.data ~off:(m.off + drop) ~len:n;
          want := !want - n
        end
      end);
  out

let checksum t =
  (* Internet checksum: ones-complement sum of 16-bit big-endian words.
     Summed word-at-a-time without allocating; with 63-bit ints the
     carries can be folded once at the end (end-around-carry addition is
     associative in its 16-bit result), not per word.  [high] is the
     pending odd leading byte across an mbuf boundary, -1 when none. *)
  let sum = ref 0 in
  let high = ref (-1) in
  List.iter
    (fun m ->
      let data = m.data in
      let base = m.off and len = m.len in
      let i = ref 0 in
      (* In-bounds by the mbuf invariant (off + len <= capacity), so the
         inner loop can skip the per-byte bounds checks. *)
      if !high >= 0 && len > 0 then begin
        sum := !sum + ((!high lsl 8) lor Char.code (Bytes.unsafe_get data base));
        high := -1;
        i := 1
      end;
      while !i + 1 < len do
        sum :=
          !sum
          + ((Char.code (Bytes.unsafe_get data (base + !i)) lsl 8)
            lor Char.code (Bytes.unsafe_get data (base + !i + 1)));
        i := !i + 2
      done;
      if !i < len then high := Char.code (Bytes.unsafe_get data (base + !i)))
    (List.rev t.rev);
  if !high >= 0 then sum := !sum + (!high lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

module Cursor = struct
  exception Underrun

  type cursor = {
    mutable mbufs : mbuf list; (* in order, head is current *)
    mutable pos : int; (* offset within head's payload *)
    mutable left : int;
  }

  type t = cursor

  let create chain =
    { mbufs = List.rev chain.rev; pos = 0; left = chain.total }

  let remaining c = c.left

  let read_into c dst off len =
    (* A negative length means a garbage count decoded off the wire;
       treat it as an underrun, never as a request to Bytes. *)
    if len < 0 || len > c.left then raise Underrun;
    let off = ref off and want = ref len in
    while !want > 0 do
      match c.mbufs with
      | [] -> raise Underrun
      | m :: rest ->
          let avail = m.len - c.pos in
          if avail = 0 then begin
            c.mbufs <- rest;
            c.pos <- 0
          end
          else begin
            let n = min avail !want in
            Bytes.blit m.data (m.off + c.pos) dst !off n;
            c.pos <- c.pos + n;
            off := !off + n;
            want := !want - n
          end
    done;
    c.left <- c.left - len

  let bytes c n =
    (* Bounds-check before allocating: a corrupt 4 GB length must raise
       Underrun here, not Invalid_argument (or a huge allocation) from
       [Bytes.create]. *)
    if n < 0 || n > c.left then raise Underrun;
    let out = Bytes.create n in
    read_into c out 0 n;
    out

  let u32 c =
    let b = bytes c 4 in
    Bytes.get_int32_be b 0

  let skip c n =
    (* [n < 0] would skip the loop yet grow [c.left] below. *)
    if n < 0 || n > c.left then raise Underrun;
    let want = ref n in
    while !want > 0 do
      match c.mbufs with
      | [] -> raise Underrun
      | m :: rest ->
          let avail = m.len - c.pos in
          if avail = 0 then begin
            c.mbufs <- rest;
            c.pos <- 0
          end
          else begin
            let k = min avail !want in
            c.pos <- c.pos + k;
            want := !want - k
          end
    done;
    c.left <- c.left - n
end
