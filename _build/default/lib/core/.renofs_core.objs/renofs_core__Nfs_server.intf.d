lib/core/nfs_server.mli: Nfs_proto Renofs_engine Renofs_net Renofs_transport Renofs_vfs
