module Sim = Renofs_engine.Sim
module Rng = Renofs_engine.Rng

type params = {
  seed : int;
  client_mips : float;
  server_mips : float;
  client_nic : Nic.profile;
  server_nic : Nic.profile;
  cross_traffic : bool;
  link_loss : float;
}

let default_params =
  {
    seed = 1;
    client_mips = 0.9;
    server_mips = 0.9;
    client_nic = Nic.deqna_tuned;
    server_nic = Nic.deqna_tuned;
    cross_traffic = true;
    link_loss = 0.001;
  }

type shape = Lan | Campus | Wide_area | Star

type spec = { shape : shape; clients : int; params : params }

let default_spec = { shape = Lan; clients = 1; params = default_params }

type t = {
  sim : Sim.t;
  client : Node.t;
  server : Node.t;
  clients : Node.t list;
  routers : Node.t list;
  all : Node.t list;
  bottleneck : Link.t option;
}

let client_id t = Node.id t.client
let server_id t = Node.id t.server

(* Link-class constants. *)
let ethernet = (10.0e6, 0.1e-3, 1500, 50)
let token_ring = (80.0e6, 0.5e-3, 4464, 30)
let slow_serial = (56.0e3, 5.0e-3, 1006, 10)

let connect_class a b ~name ~loss (bandwidth_bps, delay, mtu, queue_limit) =
  Node.connect a b ~name ~bandwidth_bps ~delay ~mtu ~queue_limit ~loss ()

let make_host sim rng ~id ~name ~mips ~nic =
  Node.create sim ~id ~name ~mips ~nic ~rng:(Rng.split rng) ()

let make_router sim rng ~id ~name =
  (* Dedicated routing hardware: modest CPU fully devoted to forwarding. *)
  Node.create sim ~id ~name ~mips:2.0 ~nic:Nic.deqna_tuned ~rng:(Rng.split rng)
    ~forward_cost:0.3e-3 ()

let host_pair sim rng params =
  ( make_host sim rng ~id:1 ~name:"client" ~mips:params.client_mips
      ~nic:params.client_nic,
    make_host sim rng ~id:2 ~name:"server" ~mips:params.server_mips
      ~nic:params.server_nic )

let build_lan sim params =
  let rng = Rng.create params.seed in
  let client, server = host_pair sim rng params in
  let _ = connect_class client server ~name:"eth0" ~loss:0.0 ethernet in
  let all = [ client; server ] in
  Node.auto_routes all;
  {
    sim;
    client;
    server;
    clients = [ client ];
    routers = [];
    all;
    bottleneck = None;
  }

let build_campus sim params =
  let rng = Rng.create params.seed in
  let client, server = host_pair sim rng params in
  let r1 = make_router sim rng ~id:10 ~name:"router1"
  and r2 = make_router sim rng ~id:11 ~name:"router2" in
  let _ = connect_class client r1 ~name:"eth1" ~loss:0.0 ethernet in
  let _ring_out, ring_back =
    connect_class r1 r2 ~name:"ring" ~loss:params.link_loss token_ring
  in
  let _ = connect_class r2 server ~name:"eth2" ~loss:0.0 ethernet in
  let all = [ client; server; r1; r2 ] in
  Node.auto_routes all;
  if params.cross_traffic then begin
    Traffic.sink r1;
    Traffic.sink r2;
    Traffic.start ~src:r1 ~dst:r2 Traffic.campus_backbone;
    Traffic.start ~src:r2 ~dst:r1 Traffic.campus_backbone
  end;
  {
    sim;
    client;
    server;
    clients = [ client ];
    routers = [ r1; r2 ];
    all;
    bottleneck = Some ring_back;
  }

let build_wide_area sim params =
  let rng = Rng.create params.seed in
  let client, server = host_pair sim rng params in
  let r1 = make_router sim rng ~id:10 ~name:"router1"
  and r2 = make_router sim rng ~id:11 ~name:"router2"
  and r3 = make_router sim rng ~id:12 ~name:"router3" in
  let _ = connect_class client r1 ~name:"eth1" ~loss:0.0 ethernet in
  let _ = connect_class r1 r2 ~name:"ring" ~loss:params.link_loss token_ring in
  let serial_out, _serial_back =
    connect_class r2 r3 ~name:"serial56k" ~loss:params.link_loss slow_serial
  in
  let _ = connect_class r3 server ~name:"eth2" ~loss:0.0 ethernet in
  let all = [ client; server; r1; r2; r3 ] in
  Node.auto_routes all;
  if params.cross_traffic then begin
    (* After hours the 56K line itself carried almost no other load
       (paper, Section 4); the campus ring still did. *)
    Traffic.sink r1;
    Traffic.sink r2;
    Traffic.start ~src:r1 ~dst:r2 Traffic.campus_backbone;
    Traffic.start ~src:r2 ~dst:r1 Traffic.campus_backbone
  end;
  {
    sim;
    client;
    server;
    clients = [ client ];
    routers = [ r1; r2; r3 ];
    all;
    bottleneck = Some serial_out;
  }

let build_star sim ~clients params =
  if clients < 1 then invalid_arg "Topology.build: Star needs at least one client";
  let rng = Rng.create params.seed in
  let server =
    make_host sim rng ~id:2 ~name:"server" ~mips:params.server_mips
      ~nic:params.server_nic
  in
  let client_nodes =
    List.init clients (fun i ->
        let c =
          make_host sim rng ~id:(100 + i)
            ~name:(Printf.sprintf "client%d" i)
            ~mips:params.client_mips ~nic:params.client_nic
        in
        let _ =
          connect_class c server ~name:(Printf.sprintf "eth%d" i) ~loss:0.0 ethernet
        in
        c)
  in
  let all = server :: client_nodes in
  Node.auto_routes all;
  {
    sim;
    client = List.hd client_nodes;
    server;
    clients = client_nodes;
    routers = [];
    all;
    bottleneck = None;
  }

let build sim spec =
  match spec.shape with
  | Star -> build_star sim ~clients:spec.clients spec.params
  | (Lan | Campus | Wide_area) as shape ->
      if spec.clients <> 1 then
        invalid_arg "Topology.build: this shape has exactly one client";
      (match shape with
      | Lan -> build_lan sim spec.params
      | Campus -> build_campus sim spec.params
      | Wide_area -> build_wide_area sim spec.params
      | Star -> assert false)

let shape_of_name = function
  | "lan" -> Lan
  | "campus" -> Campus
  | "wan" -> Wide_area
  | "star" -> Star
  | other -> invalid_arg ("Topology.shape_of_name: unknown topology " ^ other)

(* One-line compatibility wrappers over [build]. *)

let lan sim ?(params = default_params) () =
  build sim { shape = Lan; clients = 1; params }

let campus sim ?(params = default_params) () =
  build sim { shape = Campus; clients = 1; params }

let wide_area sim ?(params = default_params) () =
  build sim { shape = Wide_area; clients = 1; params }

let multi_client sim ~clients ?(params = default_params) () =
  let t = build sim { shape = Star; clients; params } in
  (t, t.clients)

let by_name name sim ?(params = default_params) () =
  build sim { shape = shape_of_name name; clients = 1; params }
