type stats = { mutable hits : int; mutable misses : int; mutable too_long : int }

type t = {
  max_name_len : int;
  capacity : int;
  table : (int * string, int) Hashtbl.t;
  order : (int * string) Queue.t; (* FIFO eviction order *)
  stats : stats;
}

let create ?(max_name_len = 31) ?(capacity = 256) () =
  {
    max_name_len;
    capacity;
    table = Hashtbl.create capacity;
    order = Queue.create ();
    stats = { hits = 0; misses = 0; too_long = 0 };
  }

let lookup t ~dir name =
  if String.length name > t.max_name_len then begin
    t.stats.too_long <- t.stats.too_long + 1;
    None
  end
  else
    match Hashtbl.find_opt t.table (dir, name) with
    | Some ino ->
        t.stats.hits <- t.stats.hits + 1;
        Some ino
    | None ->
        t.stats.misses <- t.stats.misses + 1;
        None

let evict_one t =
  match Queue.take_opt t.order with
  | Some key -> Hashtbl.remove t.table key
  | None -> ()

let enter t ~dir name ino =
  if String.length name <= t.max_name_len then begin
    let key = (dir, name) in
    if not (Hashtbl.mem t.table key) then begin
      while Hashtbl.length t.table >= t.capacity do
        evict_one t
      done;
      Queue.add key t.order
    end;
    Hashtbl.replace t.table key ino
  end

let remove t ~dir name = Hashtbl.remove t.table (dir, name)

let invalidate_dir t dir =
  let doomed =
    Hashtbl.fold
      (fun ((d, _) as key) _ acc -> if d = dir then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed

let purge t =
  Hashtbl.reset t.table;
  Queue.clear t.order

let stats t = t.stats
