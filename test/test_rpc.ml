open Renofs_rpc
module Mbuf = Renofs_mbuf.Mbuf
module Xdr = Renofs_xdr.Xdr

let sample_cred =
  Rpc_msg.Auth_unix { stamp = 17; machine = "client1"; uid = 100; gid = 20 }

let sample_call proc =
  { Rpc_msg.xid = 0x1234l; prog = 100003; vers = 2; proc; cred = sample_cred }

let test_call_roundtrip () =
  let enc = Rpc_msg.encode_call (sample_call 6) in
  Xdr.Enc.int enc 8192;
  (* pretend argument *)
  let hdr, dec = Rpc_msg.decode_call (Xdr.Enc.chain enc) in
  Alcotest.(check int32) "xid" 0x1234l hdr.Rpc_msg.xid;
  Alcotest.(check int) "prog" 100003 hdr.Rpc_msg.prog;
  Alcotest.(check int) "vers" 2 hdr.Rpc_msg.vers;
  Alcotest.(check int) "proc" 6 hdr.Rpc_msg.proc;
  (match hdr.Rpc_msg.cred with
  | Rpc_msg.Auth_unix { machine; uid; gid; _ } ->
      Alcotest.(check string) "machine" "client1" machine;
      Alcotest.(check int) "uid" 100 uid;
      Alcotest.(check int) "gid" 20 gid
  | Rpc_msg.Auth_null -> Alcotest.fail "expected AUTH_UNIX");
  Alcotest.(check int) "args follow" 8192 (Xdr.Dec.int dec)

let test_call_auth_null () =
  let hdr = { (sample_call 1) with Rpc_msg.cred = Rpc_msg.Auth_null } in
  let enc = Rpc_msg.encode_call hdr in
  let got, _ = Rpc_msg.decode_call (Xdr.Enc.chain enc) in
  Alcotest.(check bool) "auth null" true (got.Rpc_msg.cred = Rpc_msg.Auth_null)

let test_reply_success () =
  let enc = Rpc_msg.encode_reply ~xid:7l (Rpc_msg.Accepted Rpc_msg.Success) in
  Xdr.Enc.int enc 0;
  (* NFS_OK status as result *)
  let xid, status, dec = Rpc_msg.decode_reply (Xdr.Enc.chain enc) in
  Alcotest.(check int32) "xid" 7l xid;
  (match status with
  | Rpc_msg.Accepted Rpc_msg.Success -> ()
  | _ -> Alcotest.fail "expected success");
  Alcotest.(check int) "results follow" 0 (Xdr.Dec.int dec)

let test_reply_errors () =
  let cases =
    [
      Rpc_msg.Accepted Rpc_msg.Prog_unavail;
      Rpc_msg.Accepted (Rpc_msg.Prog_mismatch { low = 2; high = 2 });
      Rpc_msg.Accepted Rpc_msg.Proc_unavail;
      Rpc_msg.Accepted Rpc_msg.Garbage_args;
      Rpc_msg.Accepted Rpc_msg.System_err;
      Rpc_msg.Denied Rpc_msg.Rpc_mismatch;
      Rpc_msg.Denied Rpc_msg.Auth_error;
    ]
  in
  List.iter
    (fun status ->
      let enc = Rpc_msg.encode_reply ~xid:9l status in
      let _, got, _ = Rpc_msg.decode_reply (Xdr.Enc.chain enc) in
      Alcotest.(check bool) "status roundtrip" true (got = status))
    cases

let test_call_is_not_reply () =
  let enc = Rpc_msg.encode_call (sample_call 1) in
  Alcotest.check_raises "call rejected as reply" (Rpc_msg.Bad_message "not a reply")
    (fun () -> ignore (Rpc_msg.decode_reply (Xdr.Enc.chain enc)))

let test_peek_xid () =
  let enc = Rpc_msg.encode_call (sample_call 4) in
  Alcotest.(check (option int32)) "peek" (Some 0x1234l)
    (Rpc_msg.peek_xid (Xdr.Enc.chain enc));
  Alcotest.(check (option int32)) "short chain" None (Rpc_msg.peek_xid (Mbuf.empty ()))

let test_garbage_rejected () =
  let chain = Mbuf.of_string "this is not an rpc message at all.." in
  match Rpc_msg.decode_call chain with
  | exception (Rpc_msg.Bad_message _ | Xdr.Decode_error _) -> ()
  | _ -> Alcotest.fail "garbage accepted"

(* Truncation tables: every message type under every strict prefix.
   A truncated packet must surface as [Decode_error] (or [Bad_message]
   at the RPC layer) — never [Invalid_argument]/[Failure]/a bare
   [Underrun] — so the wire-corruption fault layer can only ever drive
   the GARBAGE_ARGS/drop/retransmit paths, not crash a peer.  A strict
   prefix that still decodes is fine: the missing tail was unread. *)

module Nfs_proto = Renofs_core.Nfs_proto
module Mount_proto = Renofs_core.Mount_proto

let check_prefixes ~what ~encode ~decode =
  let enc = Xdr.Enc.create () in
  encode enc;
  let whole = Mbuf.to_bytes (Xdr.Enc.chain enc) in
  for len = 0 to Bytes.length whole - 1 do
    let chain = Renofs_mbuf.Mbuf.of_bytes (Bytes.sub whole 0 len) in
    match decode chain with
    | _ -> ()
    | exception (Xdr.Decode_error _ | Rpc_msg.Bad_message _) -> ()
    | exception e ->
        Alcotest.failf "%s: %d-byte prefix raised %s" what len
          (Printexc.to_string e)
  done

let sample_fattr =
  {
    Nfs_proto.ftype = Nfs_proto.NFREG;
    mode = 0o644;
    nlink = 1;
    uid = 100;
    gid = 20;
    size = 4096;
    blocksize = 1024;
    rdev = 0;
    blocks = 8;
    fsid = 1;
    fileid = 42;
    atime = { Nfs_proto.seconds = 10; useconds = 0 };
    mtime = { Nfs_proto.seconds = 11; useconds = 0 };
    ctime = { Nfs_proto.seconds = 12; useconds = 0 };
  }

let sample_dirop = { Nfs_proto.dir = 7; name = "file.txt" }

let sample_sattr =
  { Nfs_proto.sattr_none with Nfs_proto.s_mode = 0o600; s_size = 100 }

let nfs_sample_calls =
  Nfs_proto.
    [
      Null;
      Getattr 7;
      Setattr (7, sample_sattr);
      Lookup sample_dirop;
      Readlink 7;
      Read { read_file = 7; offset = 0; count = 8192 };
      Write { write_file = 7; write_offset = 1024; data = Bytes.make 100 'w' };
      Create { where = sample_dirop; attributes = sample_sattr };
      Remove sample_dirop;
      Rename { from_dir = sample_dirop; to_dir = { dir = 8; name = "new" } };
      Link { link_from = 7; link_to = sample_dirop };
      Symlink
        { sym_where = sample_dirop; sym_target = "/tmp/t"; sym_attr = sample_sattr };
      Mkdir { where = sample_dirop; attributes = sample_sattr };
      Rmdir sample_dirop;
      Readdir { rd_dir = 7; cookie = 0; rd_count = 512 };
      Statfs 7;
      Readdirlook { rd_dir = 7; cookie = 0; rd_count = 512 };
      Getlease { lease_file = 7; lease_mode = Lease_read; lease_duration = 30 };
    ]

let nfs_sample_replies =
  Nfs_proto.
    [
      (0, Rnull);
      (1, Rattr (Ok sample_fattr));
      (1, Rattr (Error NFSERR_STALE));
      (4, Rdirop (Ok (7, sample_fattr)));
      (5, Rreadlink (Ok "/target"));
      (6, Rread (Ok (sample_fattr, Bytes.make 64 'r')));
      (10, Rstat NFS_OK);
      ( 16,
        Rreaddir
          (Ok ([ { fileid = 3; entry_name = "a"; entry_cookie = 1 } ], true)) );
      ( 17,
        Rstatfs
          (Ok
             {
               tsize = 8192;
               bsize = 1024;
               blocks_total = 1000;
               blocks_free = 500;
               blocks_avail = 400;
             }) );
      ( 18,
        Rreaddirlook
          (Ok
             ( [
                 {
                   le_entry = { fileid = 3; entry_name = "a"; entry_cookie = 1 };
                   le_file = 3;
                   le_attr = sample_fattr;
                 };
               ],
               true )) );
      (19, Rlease (Ok (Some { granted_duration = 30; lease_attr = sample_fattr })));
      (19, Rlease (Ok None));
    ]

let mount_sample_calls =
  Mount_proto.[ Mnt_null; Mnt "/export"; Dump; Umnt "/export"; Umntall; Export ]

let mount_sample_replies =
  Mount_proto.
    [
      (0, Rmnt_null);
      (1, Rmnt (Mnt_ok 7));
      (1, Rmnt (Mnt_error 13));
      (2, Rdump [ ("client1", "/export") ]);
      (3, Rumnt);
      (5, Rexport [ "/export"; "/home" ]);
    ]

let test_nfs_truncation () =
  List.iter
    (fun call ->
      let proc = Nfs_proto.proc_of_call call in
      check_prefixes
        ~what:("nfs call " ^ Nfs_proto.proc_name proc)
        ~encode:(fun enc -> Nfs_proto.encode_call enc call)
        ~decode:(fun chain ->
          ignore (Nfs_proto.decode_call ~proc (Xdr.Dec.create chain))))
    nfs_sample_calls;
  List.iter
    (fun (proc, reply) ->
      check_prefixes
        ~what:("nfs reply " ^ Nfs_proto.proc_name proc)
        ~encode:(fun enc -> Nfs_proto.encode_reply enc reply)
        ~decode:(fun chain ->
          ignore (Nfs_proto.decode_reply ~proc (Xdr.Dec.create chain))))
    nfs_sample_replies

let test_mount_truncation () =
  List.iter
    (fun call ->
      let proc = Mount_proto.proc_of_call call in
      check_prefixes
        ~what:("mount call " ^ Mount_proto.proc_name proc)
        ~encode:(fun enc -> Mount_proto.encode_call enc call)
        ~decode:(fun chain ->
          ignore (Mount_proto.decode_call ~proc (Xdr.Dec.create chain))))
    mount_sample_calls;
  List.iter
    (fun (proc, reply) ->
      check_prefixes
        ~what:("mount reply " ^ Mount_proto.proc_name proc)
        ~encode:(fun enc -> Mount_proto.encode_reply enc reply)
        ~decode:(fun chain ->
          ignore (Mount_proto.decode_reply ~proc (Xdr.Dec.create chain))))
    mount_sample_replies

let test_rpc_truncation () =
  check_prefixes ~what:"rpc call header"
    ~encode:(fun enc ->
      Xdr.Enc.append_chain enc
        (Xdr.Enc.chain (Rpc_msg.encode_call (sample_call 6))))
    ~decode:(fun chain -> ignore (Rpc_msg.decode_call chain));
  List.iter
    (fun status ->
      check_prefixes ~what:"rpc reply header"
        ~encode:(fun enc ->
          Xdr.Enc.append_chain enc
            (Xdr.Enc.chain (Rpc_msg.encode_reply ~xid:9l status)))
        ~decode:(fun chain -> ignore (Rpc_msg.decode_reply chain)))
    [
      Rpc_msg.Accepted Rpc_msg.Success;
      Rpc_msg.Accepted (Rpc_msg.Prog_mismatch { low = 2; high = 2 });
      Rpc_msg.Denied Rpc_msg.Auth_error;
    ]

(* Record marking *)

let test_frame_shape () =
  let body = Mbuf.of_string "abcd" in
  let framed = Record_mark.frame body in
  Alcotest.(check int) "marker + body" 8 (Mbuf.length framed);
  let b = Mbuf.to_bytes framed in
  let word = Int32.to_int (Bytes.get_int32_be b 0) land 0xFFFFFFFF in
  Alcotest.(check bool) "last flag" true (word land 0x80000000 <> 0);
  Alcotest.(check int) "length" 4 (word land 0x7FFFFFFF)

let test_reader_single_record () =
  let r = Record_mark.Reader.create () in
  Record_mark.Reader.push r (Record_mark.frame (Mbuf.of_string "hello"));
  (match Record_mark.Reader.pop r with
  | Some rec_ -> Alcotest.(check string) "record" "hello" (Bytes.to_string (Mbuf.to_bytes rec_))
  | None -> Alcotest.fail "no record");
  Alcotest.(check bool) "drained" true (Record_mark.Reader.pop r = None)

let test_reader_partial_then_complete () =
  let r = Record_mark.Reader.create () in
  let framed = Record_mark.frame (Mbuf.of_string "0123456789") in
  let first, second = Mbuf.split framed 6 in
  Record_mark.Reader.push r first;
  Alcotest.(check bool) "incomplete" true (Record_mark.Reader.pop r = None);
  Record_mark.Reader.push r second;
  match Record_mark.Reader.pop r with
  | Some rec_ ->
      Alcotest.(check string) "assembled" "0123456789"
        (Bytes.to_string (Mbuf.to_bytes rec_))
  | None -> Alcotest.fail "no record after completion"

let test_reader_back_to_back () =
  let r = Record_mark.Reader.create () in
  let joined = Record_mark.frame (Mbuf.of_string "first") in
  Mbuf.append_chain joined (Record_mark.frame (Mbuf.of_string "second!"));
  Record_mark.Reader.push r joined;
  let pop_str () =
    match Record_mark.Reader.pop r with
    | Some c -> Bytes.to_string (Mbuf.to_bytes c)
    | None -> Alcotest.fail "expected record"
  in
  Alcotest.(check string) "first" "first" (pop_str ());
  Alcotest.(check string) "second" "second!" (pop_str ());
  Alcotest.(check bool) "no extra" true (Record_mark.Reader.pop r = None)

(* A corrupt length word must raise [Corrupt] promptly, not leave the
   reader buffering toward 2 GB (or spinning on a zero-length
   fragment). *)
let test_reader_rejects_hostile_lengths () =
  let feed word =
    let r = Record_mark.Reader.create () in
    let b = Mbuf.empty () in
    Mbuf.add_u32 b word;
    Record_mark.Reader.push r b;
    match Record_mark.Reader.pop r with
    | exception Record_mark.Reader.Corrupt _ -> ()
    | _ -> Alcotest.failf "length word %lx accepted" word
  in
  feed 0x80000000l;
  (* a 2 GB claim *)
  feed 0xFFFFFFFFl;
  (* just above the sane-fragment cap *)
  feed (Int32.of_int (0x80000000 lor (2 lsl 20)))

let prop_reader_chunking =
  QCheck.Test.make ~name:"record reader handles arbitrary chunking" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8) (string_of_size Gen.(int_range 1 2000)))
        (list_of_size Gen.(int_range 1 30) (int_range 1 700)))
    (fun (messages, chunk_sizes) ->
      (* Frame all messages into one stream, then feed it in odd chunks. *)
      let stream = Mbuf.empty () in
      List.iter
        (fun m -> Mbuf.append_chain stream (Record_mark.frame (Mbuf.of_string m)))
        messages;
      let reader = Record_mark.Reader.create () in
      let received = ref [] in
      let drain () =
        let rec go () =
          match Record_mark.Reader.pop reader with
          | Some r ->
              received := Bytes.to_string (Mbuf.to_bytes r) :: !received;
              go ()
          | None -> ()
        in
        go ()
      in
      let rec feed stream sizes =
        if Mbuf.length stream > 0 then begin
          let n, rest_sizes =
            match sizes with
            | s :: rest -> (min s (Mbuf.length stream), rest)
            | [] -> (Mbuf.length stream, [])
          in
          let chunk, rest = Mbuf.split stream n in
          Record_mark.Reader.push reader chunk;
          drain ();
          feed rest rest_sizes
        end
      in
      feed stream chunk_sizes;
      List.rev !received = messages)

let prop_rpc_call_roundtrip =
  QCheck.Test.make ~name:"rpc call header roundtrip" ~count:200
    QCheck.(quad (map Int32.of_int int) (int_bound 20) (int_bound 1000) (string_of_size (Gen.int_bound 30)))
    (fun (xid, proc, uid, machine) ->
      let hdr =
        {
          Rpc_msg.xid;
          prog = 100003;
          vers = 2;
          proc;
          cred = Rpc_msg.Auth_unix { stamp = 1; machine; uid; gid = uid + 1 };
        }
      in
      let enc = Rpc_msg.encode_call hdr in
      let got, dec = Rpc_msg.decode_call (Xdr.Enc.chain enc) in
      got = hdr && Xdr.Dec.remaining dec = 0)

let () =
  Alcotest.run "rpc"
    [
      ( "messages",
        [
          Alcotest.test_case "call roundtrip" `Quick test_call_roundtrip;
          Alcotest.test_case "auth null" `Quick test_call_auth_null;
          Alcotest.test_case "reply success" `Quick test_reply_success;
          Alcotest.test_case "reply errors" `Quick test_reply_errors;
          Alcotest.test_case "call is not reply" `Quick test_call_is_not_reply;
          Alcotest.test_case "peek xid" `Quick test_peek_xid;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "rpc headers" `Quick test_rpc_truncation;
          Alcotest.test_case "nfs calls and replies" `Quick test_nfs_truncation;
          Alcotest.test_case "mount calls and replies" `Quick test_mount_truncation;
        ] );
      ( "record-marking",
        [
          Alcotest.test_case "frame shape" `Quick test_frame_shape;
          Alcotest.test_case "single record" `Quick test_reader_single_record;
          Alcotest.test_case "partial then complete" `Quick test_reader_partial_then_complete;
          Alcotest.test_case "back to back" `Quick test_reader_back_to_back;
          Alcotest.test_case "hostile length words" `Quick
            test_reader_rejects_hostile_lengths;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_reader_chunking; prop_rpc_call_roundtrip ] );
    ]
