lib/core/biod.mli: Renofs_engine
