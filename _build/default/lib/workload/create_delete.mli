(** The Create-Delete benchmark [Ousterhout90] behind Table 5.

    Each iteration creates a file, writes a given amount of data, closes
    it and deletes it.  The close is where push-on-close bites: with
    consistency enabled the close blocks until every write RPC has been
    answered, while the noconsist mount's delayed data simply evaporates
    at the delete. *)

type config = {
  data_bytes : int;  (** 0, 10 KB or 100 KB in the paper *)
  iterations : int;
}

val run_nfs : Renofs_core.Nfs_client.t -> config -> float
(** Mean milliseconds per iteration over the mount.  Runs inside a
    process. *)

val run_local :
  Renofs_engine.Sim.t ->
  Renofs_engine.Cpu.t ->
  Renofs_vfs.Fs.t ->
  config ->
  float
(** The local-filesystem baseline: same iteration against a
    {!Renofs_vfs.Fs} directly (use {!Renofs_vfs.Fs.local_config}). *)
