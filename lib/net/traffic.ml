module Proc = Renofs_engine.Proc
module Rng = Renofs_engine.Rng
module Mbuf = Renofs_mbuf.Mbuf

type profile = {
  on_rate : float;
  on_mean : float;
  off_mean : float;
  sizes : (int * float) array;
}

let office_lan =
  {
    on_rate = 120.0;
    on_mean = 0.4;
    off_mean = 1.2;
    sizes = [| (90, 0.6); (300, 0.2); (1400, 0.2) |];
  }

let campus_backbone =
  {
    on_rate = 2800.0;
    on_mean = 0.06;
    off_mean = 0.5;
    sizes = [| (560, 0.3); (1400, 0.5); (4300, 0.2) |];
  }

let discard_port = 9

let pick_size rng sizes =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 sizes in
  let x = Rng.float rng total in
  let rec go i acc =
    let size, w = sizes.(i) in
    if x < acc +. w || i = Array.length sizes - 1 then size else go (i + 1) (acc +. w)
  in
  go 0 0.0

(* One shared all-zero source buffer: payload contents are filler, so
   every packet of every stream can copy out of the same static bytes
   instead of allocating [size] fresh ones per packet. *)
let max_size profile =
  Array.fold_left (fun acc (s, _) -> max acc s) 0 profile.sizes

let start ~src ~dst profile =
  let sim = Node.sim src in
  let module Sim = Renofs_engine.Sim in
  let rng = Rng.split (Node.rng src) in
  let filler = Bytes.create (max_size profile) in
  (* Event-driven rather than a process: the generator runs once per
     packet for the whole simulation, so paying a fiber suspension for
     every sleep and every NIC wait dominates its cost.  Each [Sim.after]
     below lands at exactly the moment the process version's
     [Proc.sleep]/[Cpu.consume] resumes would, and the RNG draws happen
     in the same order, so schedules are unchanged. *)
  let rec off_cycle () = Sim.after sim (Rng.exponential rng profile.off_mean) begin_burst
  and begin_burst () = pump (Sim.now sim +. Rng.exponential rng profile.on_mean)
  and pump burst_end =
    if Sim.now sim < burst_end then begin
      let size = pick_size rng profile.sizes in
      let payload = Mbuf.empty () in
      Mbuf.add_bytes ?pool:(Node.pool src) payload filler ~off:0 ~len:size;
      Node.send_datagram_k src ~proto:Packet.Udp ~dst:(Node.id dst)
        ~src_port:discard_port ~dst_port:discard_port payload (fun () ->
          Sim.after sim
            (Rng.exponential rng (1.0 /. profile.on_rate))
            (fun () -> pump burst_end))
    end
    else off_cycle ()
  in
  (* [Proc.spawn] started the process from the event queue at now + 0. *)
  Sim.after sim 0.0 off_cycle

let sink node =
  (* Discard — but hand the payload storage back to the world's pool:
     cross-traffic is the heaviest mbuf consumer in the busy worlds, and
     its buffers cycle sender-pool-sender forever. *)
  Node.set_proto_handler node ~needs_fiber:false Packet.Udp (fun dg ->
      Mbuf.release ?pool:(Node.pool node) dg.Node.payload)
