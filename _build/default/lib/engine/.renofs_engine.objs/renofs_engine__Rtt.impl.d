lib/engine/rtt.ml:
