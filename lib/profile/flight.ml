module Trace = Renofs_trace.Trace
module Metrics = Renofs_metrics.Metrics

type t = { f_dir : string; f_spec_json : string; f_seed : int }

let arm ~dir ~spec_json ~seed = { f_dir = dir; f_spec_json = spec_json; f_seed = seed }
let dir t = t.f_dir
let tail_records = 20_000

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    label

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_string path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The newest [tail_records] records, with a header mirroring the trace
   export's so the tail is honest about what it omits. *)
let write_trace_tail path tr =
  let all = Trace.to_list tr in
  let held = List.length all in
  let tail =
    if held <= tail_records then all
    else
      List.filteri (fun i _ -> i >= held - tail_records) all
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\"schema\":\"renofs-trace/1\",\"held\":%d,\"total\":%d,\"overwritten\":%d}\n"
        (List.length tail) (Trace.total tr)
        (Trace.total tr - List.length tail);
      List.iter
        (fun r ->
          output_string oc (Trace.line_of_record r);
          output_char oc '\n')
        tail)

let dump t ~label ~reason ?trace ?metrics ?profile () =
  let bundle = Filename.concat t.f_dir (sanitize label) in
  mkdir_p bundle;
  let members = ref [] in
  let add name write =
    write (Filename.concat bundle name);
    members := name :: !members
  in
  add "reason.txt" (fun p -> write_string p (reason ^ "\n"));
  add "run_spec.json" (fun p -> write_string p t.f_spec_json);
  (match trace with
  | Some tr -> add "trace_tail.jsonl" (fun p -> write_trace_tail p tr)
  | None -> ());
  (match metrics with
  | Some m -> add "metrics.jsonl" (fun p -> Metrics.export_jsonl m p)
  | None -> ());
  (match profile with
  | Some p -> add "profile.json" (fun path -> Profile.write_file ~path p)
  | None -> ());
  let member_list =
    String.concat ","
      (List.rev_map (fun m -> Printf.sprintf "%S" m) !members)
  in
  write_string
    (Filename.concat bundle "MANIFEST.json")
    (Printf.sprintf
       "{\"schema\":\"renofs-flight/1\",\"label\":\"%s\",\"seed\":%d,\"reason\":\"%s\",\n\"members\":[%s]}\n"
       (json_escape label) t.f_seed (json_escape reason) member_list);
  bundle
