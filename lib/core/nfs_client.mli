(** The syscall-level NFS client: block cache with dirty regions, name
    and attribute caches, biods, write policies and the cache
    consistency rules whose interplay Section 5 of the paper measures.

    Mount profiles reproduce the paper's configurations:

    - {!reno_mount}: 4.3BSD Reno semantics.  VFS name cache; no preread
      for partial-block writes (the [buf] dirty region); dirty blocks
      pushed before reads; a client that does {e not} trust its own
      write RPCs to explain an mtime change — so its own writes
      invalidate its cache (the +50% read RPCs of Table 3); delayed
      writes pushed on close (close/open consistency).
    - {!ultrix_mount}: Sun-reference-port-shaped client.  No name cache,
      no push-before-read, and it assumes no other client writes the
      file concurrently, so its own writes leave the cache valid.
    - [reno_nopush_mount]: Reno without push-on-close (Table 2's
      "Reno-nopush" row).
    - [noconsist_mount]: the experimental mount flag that disables all
      consistency machinery, giving the optimistic bound on what a real
      cache consistency protocol could achieve.

    All syscalls must run inside a simulation process. *)

type write_policy = Write_through | Async | Delayed

type mount_opts = {
  transport : [ `Udp_fixed | `Udp_dynamic | `Tcp ];
  timeo : float;
  mss : int;  (** TCP segment size *)
  rsize : int;
  wsize : int;
  attr_timeout : float;
  num_biods : int;
  write_policy : write_policy;
      (** [Delayed] is the BSD default: asynchronous for full blocks,
          delayed for partial blocks *)
  push_on_close : bool;
  consistency : bool;
  name_cache : bool;
  push_dirty_before_read : bool;
  trust_own_writes : bool;
  read_ahead : int;
  cache_blocks : int;
  use_readdirlook : bool;
      (** use the experimental bulk-lookup RPC to prefetch handles and
          attributes while reading directories *)
  delay_full_blocks : bool;
      (** under [Delayed], also delay full blocks — the "delayed write
          without push on close" policy of the noconsist experiments *)
  use_leases : bool;
      (** the experimental NQNFS-style lease consistency protocol (the
          paper's Future Directions): a read lease makes cached data
          valid without attribute checks, a write lease makes delayed
          writes without push-on-close safe, and every lease expires —
          so server crashes and network partitions heal by timeout *)
  soft : bool;
      (** soft mount: operations fail with an I/O error after [retrans]
          retransmissions instead of retrying forever (hard mount) *)
  retrans : int;
  adaptive_transfer : bool;
      (** Section 4's last-ditch option made dynamic, as the paper
          suggests: halve the read/write transfer size when
          retransmissions indicate IP fragment loss, and grow it back
          after a run of clean transfers *)
  v3 : bool;
      (** the v3-style protocol profile: writes go out UNSTABLE (the
          server may acknowledge from volatile memory), a write-behind
          ledger tracks every such range until a COMMIT under the same
          write verifier covers it, and close/fsync do not succeed until
          the ledger is clean — rewriting any ranges a server reboot
          (detected by the verifier changing) lost *)
  uid : int;  (** AUTH_UNIX credentials presented to the server *)
  gid : int;
}

val reno_mount : mount_opts
val reno_tcp_mount : mount_opts
val reno_dynamic_mount : mount_opts
(** Reno over the dynamic-RTO + congestion-window UDP transport. *)

val reno_nopush_mount : mount_opts
val noconsist_mount : mount_opts

val lease_mount : mount_opts
(** Reno with the lease protocol: the noconsist mount's write savings
    {e with} consistency — the optimistic bound made safe. *)

val v3_mount : mount_opts
(** The v3 profile: Reno semantics with UNSTABLE writes + COMMIT, 32K
    transfers ([Nfs_proto.max_data_v3]) and the bulk-lookup READDIR. *)

val ultrix_mount : mount_opts

(** {2 Config records}

    [config] is [mount_opts] under the name shared with
    {!Renofs_core.Nfs_server.config}: a [default_config] value plus
    [with_*] derivation, so experiment- and fault-schedule-driven
    reconfiguration reads symmetrically on both ends of the wire.  The
    presets above remain the idiomatic starting points. *)

type config = mount_opts

val default_config : config
(** {!reno_mount}. *)

val with_transport : config -> [ `Udp_fixed | `Udp_dynamic | `Tcp ] -> config
val with_timeo : config -> float -> config
val with_mss : config -> int -> config
val with_write_policy : config -> write_policy -> config
val with_num_biods : config -> int -> config
val with_consistency : config -> bool -> config
val with_leases : config -> bool -> config

val with_soft : config -> retrans:int -> config
(** Switch to a soft mount giving up after [retrans] retransmissions. *)

val with_adaptive_transfer : config -> bool -> config
val with_v3 : config -> bool -> config

exception Nfs_error of Nfs_proto.stat

type t
type fd

val mount :
  udp:Renofs_transport.Udp.stack ->
  ?tcp:Renofs_transport.Tcp.stack ->
  server:int ->
  root:Nfs_proto.fhandle ->
  mount_opts ->
  t
(** Blocking (fetches root attributes); call from a process.  [`Tcp]
    mounts require the [tcp] stack. *)

exception Mount_failed of string

val mount_path :
  udp:Renofs_transport.Udp.stack ->
  ?tcp:Renofs_transport.Tcp.stack ->
  server:int ->
  path:string ->
  mount_opts ->
  t
(** The full mount(8) sequence: obtain the root file handle for [path]
    from the server's mount daemon (MNT over UDP port 635, with
    retries), then {!mount}.  Raises {!Mount_failed} if the daemon
    denies the path or never answers. *)

val opts : t -> mount_opts
val transport : t -> Client_transport.t
val sim : t -> Renofs_engine.Sim.t
val node : t -> Renofs_net.Node.t

val rpc_counters : t -> Renofs_engine.Stats.Counter.t
(** RPCs issued by this mount, by procedure name — the data of Table 3. *)

(* --- pathname syscalls (paths are "/"-separated, relative to the
   mount root) --- *)

val stat : t -> string -> Nfs_proto.fattr
val open_ : t -> string -> fd
val create : t -> string -> fd
(** Creates (or truncates) a regular file. *)

val unlink : t -> string -> unit
val mkdir : t -> string -> unit
val rmdir : t -> string -> unit
val rename : t -> string -> string -> unit
val symlink : t -> string -> target:string -> unit
val readlink : t -> string -> string
val link : t -> existing:string -> string -> unit
val readdir : t -> string -> string list
val statfs : t -> Nfs_proto.statfsok

(* --- fd syscalls --- *)

val read : t -> fd -> off:int -> len:int -> bytes
val write : t -> fd -> off:int -> bytes -> unit
val fsync : t -> fd -> unit
val close : t -> fd -> unit
val fd_size : t -> fd -> int

val flush_all : t -> unit
(** Push every delayed write and wait (umount-style sync). *)

(* --- cache observability --- *)

val current_transfer_size : t -> int
(** The adaptive read/write transfer size (equals [rsize] unless
    [adaptive_transfer] has shrunk it). *)

val dirty_blocks : t -> int
val cached_blocks : t -> int
val name_cache_stats : t -> (int * int) option
(** (hits, misses) when the mount has a name cache. *)

val attr_cache_stats : t -> int * int
