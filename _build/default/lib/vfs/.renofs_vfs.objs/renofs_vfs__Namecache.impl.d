lib/vfs/namecache.ml: Hashtbl List Queue String
