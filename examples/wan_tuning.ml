(* WAN tuning: what happens to NFS across a 56 Kbit/s line and three
   routers — the configuration where the paper's transport work pays
   off.  Shows the dynamic-RTO estimator's RTT/RTO trace (Graph 7) and
   the damage 8K reads take from IP fragmentation under a fixed RTO.

     dune exec examples/wan_tuning.exe *)

module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Topology = Renofs_net.Topology
module Link = Renofs_net.Link
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module Client_transport = Renofs_core.Client_transport
open Renofs_workload

let run name opts =
  let sim = Sim.create () in
  let topo = Topology.build sim { Topology.default_spec with Topology.shape = Topology.Wide_area } in
  let sudp = Udp.install topo.Topology.server in
  let stcp = Tcp.install topo.Topology.server in
  let server = Nfs_server.create topo.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Topology.client in
  let ctcp = Tcp.install topo.Topology.client in
  let fileset =
    Fileset.generate ~dirs:8 ~files_per_dir:12 ~file_size:16384 ~long_names:true
  in
  let result = ref None in
  Proc.spawn sim (fun () ->
      Fileset.preload_server server fileset;
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp ~server:(Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          { opts with Nfs_client.mss = 512 }
      in
      Client_transport.enable_read_trace (Nfs_client.transport m);
      let r =
        Nhfsstone.run m fileset
          {
            Nhfsstone.rate = 8.0;
            duration = 90.0;
            children = 8;
            mix = Nhfsstone.read_lookup_mix;
            seed = 4;
          }
      in
      result := Some (r, Nfs_client.transport m));
  while !result = None do
    Sim.run ~until:(Sim.now sim +. 50.0) sim
  done;
  let r, x = Option.get !result in
  let s = Client_transport.summary x in
  Printf.printf "%-10s reads %4.2f/s, mean op %6.0f ms, retransmits %3d\n" name
    r.Nhfsstone.read_rate
    (r.Nhfsstone.mean_op_latency *. 1000.0)
    s.Client_transport.retransmits;
  (r, x)

let () =
  print_endline "8K reads + lookups across the 56 Kbit/s line (3 routers):";
  let _ = run "udp-fixed" Nfs_client.reno_mount in
  let _, x = run "udp-dyn" Nfs_client.reno_dynamic_mount in
  let _ = run "tcp" Nfs_client.reno_tcp_mount in
  print_endline "\nDynamic estimator trace for read RPCs (Graph 7 style):";
  print_endline "   time(s)   rtt(ms)   rto=A+4D(ms)";
  let rtts = Client_transport.read_rtt_trace x in
  let rtos = Client_transport.read_rto_trace x in
  List.iteri
    (fun i ((t, rtt), (_, rto)) ->
      if i mod 3 = 0 then Printf.printf "   %7.1f   %7.0f   %7.0f\n" t (rtt *. 1000.0) (rto *. 1000.0))
    (List.combine rtts rtos);
  print_endline "\n(the RTO envelope rides above the RTT samples; a fixed 1-second";
  print_endline " timeout would fire spuriously on most of these reads and resend";
  print_endline " all nine fragments of the reply over the slow line)"
