lib/engine/rng.mli:
