(* The MOUNT protocol and daemon: path-to-handle resolution, rmtab
   bookkeeping, and the full mount(8) sequence from the client. *)

open Renofs_core
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Xdr = Renofs_xdr.Xdr
module MP = Mount_proto

let make_world () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let mountd = Mountd.start server in
  let cudp = Udp.install topo.Net.Topology.client in
  let ctcp = Tcp.install topo.Net.Topology.client in
  (sim, topo, server, mountd, cudp, ctcp)

let run sim body =
  let result = ref None in
  Proc.spawn sim (fun () -> result := Some (body ()));
  Sim.run ~until:3600.0 sim;
  match !result with Some r -> r | None -> Alcotest.fail "never finished"

(* Protocol roundtrips. *)

let roundtrip_call call =
  let enc = Xdr.Enc.create () in
  MP.encode_call enc call;
  MP.decode_call ~proc:(MP.proc_of_call call) (Xdr.Dec.create (Xdr.Enc.chain enc))

let roundtrip_reply ~proc reply =
  let enc = Xdr.Enc.create () in
  MP.encode_reply enc reply;
  MP.decode_reply ~proc (Xdr.Dec.create (Xdr.Enc.chain enc))

let test_proto_roundtrips () =
  List.iter
    (fun call -> Alcotest.(check bool) "call" true (roundtrip_call call = call))
    [ MP.Mnt_null; MP.Mnt "/export/home"; MP.Dump; MP.Umnt "/x"; MP.Umntall; MP.Export ];
  List.iter
    (fun (proc, reply) ->
      Alcotest.(check bool) "reply" true (roundtrip_reply ~proc reply = reply))
    [
      (0, MP.Rmnt_null);
      (1, MP.Rmnt (MP.Mnt_ok 42));
      (1, MP.Rmnt (MP.Mnt_error 2));
      (2, MP.Rdump [ ("hostA", "/"); ("hostB", "/src") ]);
      (2, MP.Rdump []);
      (3, MP.Rumnt);
      (5, MP.Rexport [ "/"; "/usr" ]);
    ]

(* The daemon end-to-end. *)

let test_mount_root_by_path () =
  let sim, topo, server, _mountd, cudp, ctcp = make_world () in
  run sim (fun () ->
      let m =
        Nfs_client.mount_path ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo) ~path:"/" Nfs_client.reno_mount
      in
      let fd = Nfs_client.create m "via-mountd" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "resolved");
      Nfs_client.close m fd;
      let fs = Nfs_server.fs server in
      let v = Renofs_vfs.Fs.lookup fs (Renofs_vfs.Fs.root fs) "via-mountd" in
      Alcotest.(check string) "data via path mount" "resolved"
        (Bytes.to_string (Renofs_vfs.Fs.read fs v ~off:0 ~len:10)))

let test_mount_subdirectory () =
  let sim, topo, server, _mountd, cudp, ctcp = make_world () in
  run sim (fun () ->
      (* Make /export/home on the server, then mount just that. *)
      let fs = Nfs_server.fs server in
      let export = Renofs_vfs.Fs.mkdir fs ~dir:(Renofs_vfs.Fs.root fs) "export" ~mode:0o755 () in
      let _home =
        Renofs_vfs.Fs.mkdir fs ~dir:export "home" ~mode:0o755 ~uid:100 ~gid:100 ()
      in
      let m =
        Nfs_client.mount_path ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo) ~path:"/export/home"
          Nfs_client.reno_mount
      in
      let fd = Nfs_client.create m "inside" in
      Nfs_client.close m fd;
      (* The file must exist under /export/home, not the root. *)
      let home = Renofs_vfs.Fs.lookup fs export "home" in
      Alcotest.(check bool) "created under the mounted subtree" true
        (Renofs_vfs.Fs.ino (Renofs_vfs.Fs.lookup fs home "inside") > 0))

let test_mount_missing_path_denied () =
  let sim, topo, _server, _mountd, cudp, ctcp = make_world () in
  run sim (fun () ->
      match
        Nfs_client.mount_path ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo) ~path:"/no/such/dir"
          Nfs_client.reno_mount
      with
      | _ -> Alcotest.fail "mount of missing path succeeded"
      | exception Nfs_client.Mount_failed msg ->
          Alcotest.(check bool) "errno surfaced" true
            (String.length msg > 0))

let test_rmtab_bookkeeping () =
  let sim, topo, _server, mountd, cudp, ctcp = make_world () in
  run sim (fun () ->
      let _m1 =
        Nfs_client.mount_path ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo) ~path:"/" Nfs_client.reno_mount
      in
      let _m2 =
        Nfs_client.mount_path ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo) ~path:"/" Nfs_client.reno_tcp_mount
      in
      Alcotest.(check int) "two records" 2 (List.length (Mountd.mounts mountd));
      Alcotest.(check bool) "requests served" true (Mountd.requests_served mountd >= 2))

let test_mountd_no_daemon () =
  (* Without a mount daemon the path mount must fail in bounded time. *)
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let sudp = Udp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Net.Topology.client in
  run sim (fun () ->
      match
        Nfs_client.mount_path ~udp:cudp ~server:(Net.Topology.server_id topo)
          ~path:"/" Nfs_client.reno_mount
      with
      | _ -> Alcotest.fail "mounted without a daemon"
      | exception Nfs_client.Mount_failed _ -> ())

let () =
  Alcotest.run "mountd"
    [
      ("protocol", [ Alcotest.test_case "roundtrips" `Quick test_proto_roundtrips ]);
      ( "daemon",
        [
          Alcotest.test_case "mount root by path" `Quick test_mount_root_by_path;
          Alcotest.test_case "mount subdirectory" `Quick test_mount_subdirectory;
          Alcotest.test_case "missing path denied" `Quick test_mount_missing_path_denied;
          Alcotest.test_case "rmtab bookkeeping" `Quick test_rmtab_bookkeeping;
          Alcotest.test_case "no daemon: bounded failure" `Quick test_mountd_no_daemon;
        ] );
    ]
