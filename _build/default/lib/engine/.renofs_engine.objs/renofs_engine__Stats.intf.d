lib/engine/stats.mli:
