type 'a cell = { cl_label : string; cl_run : unit -> 'a }

let cell ?(label = "cell") f = { cl_label = label; cl_run = f }
let label c = c.cl_label

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Work-stealing would be overkill: cells are coarse (whole simulated
   worlds), so a shared next-cell counter balances fine and keeps the
   result array indexed by cell, not by completion order. *)
let run_pool ~jobs cells =
  let n = Array.length cells in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
           Some
             (match cells.(i).cl_run () with
             | v -> Ok v
             | exception e -> Error (e, Printexc.get_raw_backtrace ())));
        loop ()
      end
    in
    loop ()
  in
  let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers;
  Array.map
    (function
      | Some r -> r
      | None -> assert false (* the counter visits every index *))
    results

let run ?jobs cells =
  let arr = Array.of_list cells in
  let n = Array.length arr in
  if n = 0 then []
  else
    let jobs =
      max 1 (min n (match jobs with Some j -> j | None -> default_jobs ()))
    in
    let outs =
      if jobs = 1 then
        (* No need to pay domain spawns for a serial run. *)
        Array.map
          (fun c ->
            match c.cl_run () with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ()))
          arr
      else run_pool ~jobs arr
    in
    Array.to_list outs
    |> List.map (function
         | Ok v -> v
         | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
