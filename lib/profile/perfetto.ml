module Trace = Renofs_trace.Trace

(* Event names come from fixed tables (proc names, slot names) or link
   labels built from node ids, but escape anyway — a future label with a
   quote must not produce an invalid file. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rpc_pid = 1
let srv_pid = 2
let prof_pid = 3

type state = {
  buf : Buffer.t;
  mutable first : bool;
  mutable count : int;
  (* run-mark label -> tid under [rpc_pid], in order of appearance *)
  labels : (string, int) Hashtbl.t;
  mutable next_tid : int;
}

let add st line =
  if st.first then st.first <- false else Buffer.add_string st.buf ",\n";
  Buffer.add_string st.buf line

let meta st ~pid ?tid ~name value =
  add st
    (Printf.sprintf
       "{\"ph\":\"M\",\"pid\":%d%s,\"name\":\"%s\",\"args\":{\"name\":\"%s\"}}"
       pid
       (match tid with None -> "" | Some t -> Printf.sprintf ",\"tid\":%d" t)
       name (escape value))

let event st line =
  add st line;
  st.count <- st.count + 1

let tid_of_label st label =
  match Hashtbl.find_opt st.labels label with
  | Some tid -> tid
  | None ->
      let tid = st.next_tid in
      st.next_tid <- tid + 1;
      Hashtbl.add st.labels label tid;
      meta st ~pid:rpc_pid ~tid ~name:"thread_name"
        (if label = "" then "(unlabelled)" else label);
      tid

let us t = t *. 1e6

(* Async ids must not collide across labels (xid spaces reset at run
   marks), so fold the label's tid into the id above bit 32. *)
let span_id tid xid = (tid lsl 32) lor (Int32.to_int xid land 0xFFFFFFFF)

let instant st ~pid ~tid ~ts ~cat ~name =
  event st
    (Printf.sprintf
       "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\",\"cat\":\"%s\",\"name\":\"%s\"}"
       pid tid ts cat (escape name))

let slice st ~pid ~tid ~ts ~dur ~cat ~name =
  event st
    (Printf.sprintf
       "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"cat\":\"%s\",\"name\":\"%s\"}"
       pid tid ts dur cat (escape name))

let export ~path ?profile records =
  let st =
    {
      buf = Buffer.create 65536;
      first = true;
      count = 0;
      labels = Hashtbl.create 8;
      next_tid = 1;
    }
  in
  Buffer.add_string st.buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  meta st ~pid:rpc_pid ~name:"process_name" "rpc spans";
  meta st ~pid:srv_pid ~name:"process_name" "servers";
  (* Completed RPCs as async begin/end pairs, one thread per label. *)
  List.iter
    (fun (sp : Trace.Report.span) ->
      let tid = tid_of_label st sp.Trace.Report.sp_label in
      let id = span_id tid sp.Trace.Report.sp_xid in
      let name = Trace.proc_name sp.Trace.Report.sp_proc in
      let t0 = us sp.Trace.Report.sp_start in
      let t1 = us (sp.Trace.Report.sp_start +. sp.Trace.Report.sp_total) in
      event st
        (Printf.sprintf
           "{\"ph\":\"b\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"cat\":\"rpc\",\"id\":%d,\"name\":\"%s\"}"
           rpc_pid tid t0 id (escape name));
      event st
        (Printf.sprintf
           "{\"ph\":\"e\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"cat\":\"rpc\",\"id\":%d,\"name\":\"%s\"}"
           rpc_pid tid t1 id (escape name)))
    (Trace.Report.spans records);
  (* Server-side slices and notable instants from the raw records.  The
     current run-mark label keys the rpc-side thread for retransmits. *)
  let cur_label = ref "" in
  let srv_tids = Hashtbl.create 8 in
  let srv_tid node =
    if not (Hashtbl.mem srv_tids node) then begin
      Hashtbl.add srv_tids node ();
      meta st ~pid:srv_pid ~tid:node ~name:"thread_name"
        (Printf.sprintf "node%d" node)
    end;
    node
  in
  List.iter
    (fun (r : Trace.record_) ->
      match r.Trace.ev with
      | Trace.Run_mark { label } -> cur_label := label
      | Trace.Srv_service { proc; service; _ } ->
          slice st ~pid:srv_pid ~tid:(srv_tid r.Trace.node)
            ~ts:(us (r.Trace.time -. service))
            ~dur:(us service) ~cat:"service" ~name:(Trace.proc_name proc)
      | Trace.Srv_queue { proc; wait; _ } ->
          if wait > 0.0 then
            slice st ~pid:srv_pid ~tid:(srv_tid r.Trace.node)
              ~ts:(us (r.Trace.time -. wait))
              ~dur:(us wait) ~cat:"queue"
              ~name:("queue " ^ Trace.proc_name proc)
      | Trace.Rpc_retransmit { proc; retry; _ } ->
          instant st ~pid:rpc_pid
            ~tid:(tid_of_label st !cur_label)
            ~ts:(us r.Trace.time) ~cat:"retransmit"
            ~name:(Printf.sprintf "retransmit %s #%d" (Trace.proc_name proc) retry)
      | Trace.Pkt_drop { link; _ } ->
          instant st ~pid:srv_pid
            ~tid:(srv_tid (max r.Trace.node 0))
            ~ts:(us r.Trace.time) ~cat:"drop" ~name:("drop " ^ link)
      | Trace.Srv_crash ->
          instant st ~pid:srv_pid ~tid:(srv_tid r.Trace.node)
            ~ts:(us r.Trace.time) ~cat:"fault" ~name:"crash"
      | Trace.Srv_reboot ->
          instant st ~pid:srv_pid ~tid:(srv_tid r.Trace.node)
            ~ts:(us r.Trace.time) ~cat:"fault" ~name:"reboot"
      | _ -> ())
    records;
  (* Profiler summary: each subsystem's accumulated self-time as one
     slice, laid end to end from t=0 — a proportions bar, not a
     timeline. *)
  (match profile with
  | None -> ()
  | Some s ->
      meta st ~pid:prof_pid ~name:"process_name" "profiler";
      meta st ~pid:prof_pid ~tid:1 ~name:"thread_name" "self-time";
      let cursor = ref 0.0 in
      List.iter
        (fun (ss : Profile.slot_stat) ->
          if ss.Profile.ss_self_s > 0.0 then begin
            slice st ~pid:prof_pid ~tid:1 ~ts:!cursor
              ~dur:(us ss.Profile.ss_self_s)
              ~cat:"profile" ~name:ss.Profile.ss_name;
            cursor := !cursor +. us ss.Profile.ss_self_s
          end)
        s.Profile.p_slots);
  Buffer.add_string st.buf "\n]}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc st.buf);
  st.count
