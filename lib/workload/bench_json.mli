(** Structured JSON output for experiment results ([nfsbench --json]).

    The document schema, version ["renofs-bench/1"]:

    {v
    { "schema": "renofs-bench/1",
      "scale": "quick" | "full",
      "jobs": <int>,
      "experiments": [
        { "id": "graph1",
          "title": "...",
          "header": ["load(rpc/s)", ...],
          "rows": [
            [ {"type":"float","value":5.0,"unit":"per_s","prec":1},
              {"type":"int","value":42,"unit":"count"},
              {"type":"text","value":"same LAN"}, ... ], ... ] } ] }
    v}

    Every row has exactly as many cells as the header has columns;
    [unit] is one of {!Experiments.unit_name}'s outputs.  Emission is
    deterministic (fields in the order above, floats printed with the
    shortest round-tripping decimal), so serial and parallel runs of
    the same experiments produce byte-identical files. *)

val emit : scale:Experiments.scale -> jobs:int -> Experiments.results list -> string
(** The whole document, newline-terminated. *)

val write_file :
  scale:Experiments.scale -> jobs:int -> path:string -> Experiments.results list -> unit

(** {2 Minimal JSON reader, for validation and tests}

    Re-exported from {!Renofs_json.Json} (with a type equality) so the
    reader is also available below the workload layer; accepts standard
    JSON, enough to round-trip what {!emit} produces. *)

type json = Renofs_json.Json.json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result

val validate : string -> (unit, string) result
(** Check a document against the schema above: required fields, row
    rectangularity, known cell types and units.  [Ok ()] means a
    conforming "renofs-bench/1" file. *)

val validate_file : string -> (unit, string) result

(** {2 Regression diffing ([nfsbench diff])} *)

type diff_report = {
  compared : int;  (** numeric cells judged against the tolerance *)
  regressions : string list;
      (** latency (ms/s) grew, or throughput (per_s) shrank, by more
          than the tolerance *)
  improvements : string list;  (** moved past the tolerance the good way *)
  warnings : string list;
      (** skipped material: missing experiments, shape/unit changes *)
}

val diff_files :
  tolerance:float -> string -> string -> (diff_report, string) result
(** [diff_files ~tolerance old new] compares two "renofs-bench/1" files
    cell by cell (matched by experiment id and position; [tolerance] is
    a fraction, e.g. [0.15]).  Only ms/s/per_s cells are judged; other
    units, text cells and zero baselines are informational.  [Error] is
    reserved for unreadable or non-conforming files. *)
