lib/net/ipfrag.ml: Hashtbl List Packet Renofs_engine Renofs_mbuf
