examples/quickstart.mli:
