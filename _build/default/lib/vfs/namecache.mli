(** The VFS name-lookup cache.

    Maps (directory inode, component name) to a target inode.  4.3BSD
    Reno caches names up to 31 characters — longer names bypass the cache
    entirely, which is why Nhfsstone's long-file-name trick (meant to
    defeat client caches) can also defeat a server's cache (paper,
    Appendix caveat 1).  The paper credits this cache with halving the
    client's lookup RPC count (Table 3). *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable too_long : int;  (** lookups skipped because the name is > 31 chars *)
}

val create : ?max_name_len:int -> ?capacity:int -> unit -> t
(** Defaults: 31-character limit, 256 entries, LRU-ish FIFO eviction. *)

val lookup : t -> dir:int -> string -> int option
val enter : t -> dir:int -> string -> int -> unit
val remove : t -> dir:int -> string -> unit
val invalidate_dir : t -> int -> unit
(** Drop every entry under a directory (used on directory change). *)

val purge : t -> unit
val stats : t -> stats
