module Probe = Renofs_engine.Probe
module Json = Renofs_json.Json

let n_slots = Probe.n_slots
let hist_buckets = 28 (* log2(ns): bucket 27 is ~134 ms and up *)

(* One stack frame per nested scope; events never nest deeper than a
   handful of scopes, so overflow means a bug — pushes beyond the array
   are dropped (truncation keeps the accounting conserved anyway). *)
let max_depth = 64

type t = {
  clock_fn : unit -> float;
  self : float array;  (* self seconds per slot *)
  enters : int array;  (* scope enters per slot, deterministic *)
  fires : int array;  (* event fires per tag, deterministic *)
  fire_s : float array;  (* summed fire durations per tag *)
  hist : int array;  (* n_slots * hist_buckets *)
  stack : int array;
  mutable depth : int;  (* >= 1; stack.(0) = Probe.harness *)
  mutable mark : float;  (* wall time of the last attribution boundary *)
  mutable fire_t0 : float;
  mutable fire_tag : int;
  mutable wall_s : float;  (* accumulated across start/stop windows *)
  mutable win_start : float;
  mutable running : bool;
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable gc0 : Gc.stat option;
}

let create ?(clock = Unix.gettimeofday) () =
  let stack = Array.make max_depth Probe.harness in
  {
    clock_fn = clock;
    self = Array.make n_slots 0.0;
    enters = Array.make n_slots 0;
    fires = Array.make n_slots 0;
    fire_s = Array.make n_slots 0.0;
    hist = Array.make (n_slots * hist_buckets) 0;
    stack;
    depth = 1;
    mark = clock ();
    fire_t0 = 0.0;
    fire_tag = 0;
    wall_s = 0.0;
    win_start = 0.0;
    running = false;
    minor_words = 0.0;
    promoted_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    gc0 = None;
  }

(* Charge the time since the last boundary to the top of the stack and
   advance the boundary.  Every probe operation goes through here, so
   slot self-times always sum to the profiled wall time. *)
let charge t =
  let now = t.clock_fn () in
  let top = t.stack.(t.depth - 1) in
  t.self.(top) <- t.self.(top) +. (now -. t.mark);
  t.mark <- now

let enter t slot =
  charge t;
  let d = t.depth in
  if d < max_depth then begin
    t.stack.(d) <- slot;
    t.depth <- d + 1
  end;
  t.enters.(slot) <- t.enters.(slot) + 1;
  d

(* Truncate, don't pop: a stale token (>= depth) is a no-op, and a
   token below several frames drops them all — both are the designed
   behaviour around suspended fibers (see Probe). *)
let leave t d = if d >= 1 && d < t.depth then begin charge t; t.depth <- d end
let current t = t.stack.(t.depth - 1)

let bucket_of_ns ns =
  if ns <= 0 then 0
  else begin
    let b = ref 0 and v = ref ns in
    while !v > 1 && !b < hist_buckets - 1 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let fire_enter t tag =
  charge t;
  t.fires.(tag) <- t.fires.(tag) + 1;
  let d = t.depth in
  if d < max_depth then begin
    t.stack.(d) <- tag;
    t.depth <- d + 1
  end;
  t.fire_t0 <- t.mark;
  t.fire_tag <- tag;
  d

let fire_leave t d =
  charge t;
  let dt = t.mark -. t.fire_t0 in
  let tag = t.fire_tag in
  t.fire_s.(tag) <- t.fire_s.(tag) +. dt;
  let b = bucket_of_ns (int_of_float (dt *. 1e9)) in
  t.hist.((tag * hist_buckets) + b) <- t.hist.((tag * hist_buckets) + b) + 1;
  if d >= 1 && d < t.depth then t.depth <- d

let probe t =
  {
    Probe.enter = (fun slot -> enter t slot);
    leave = (fun d -> leave t d);
    current = (fun () -> current t);
    fire_enter = (fun tag -> fire_enter t tag);
    fire_leave = (fun d -> fire_leave t d);
  }

let start t =
  let now = t.clock_fn () in
  t.depth <- 1;
  t.mark <- now;
  t.win_start <- now;
  t.running <- true;
  t.gc0 <- Some (Gc.quick_stat ())

let stop t =
  if t.running then begin
    charge t;
    t.wall_s <- t.wall_s +. (t.mark -. t.win_start);
    t.running <- false;
    t.depth <- 1;
    match t.gc0 with
    | None -> ()
    | Some g0 ->
        let g1 = Gc.quick_stat () in
        t.minor_words <- t.minor_words +. (g1.Gc.minor_words -. g0.Gc.minor_words);
        t.promoted_words <-
          t.promoted_words +. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
        t.minor_collections <-
          t.minor_collections + (g1.Gc.minor_collections - g0.Gc.minor_collections);
        t.major_collections <-
          t.major_collections + (g1.Gc.major_collections - g0.Gc.major_collections);
        t.gc0 <- None
  end

let merge ~into src =
  for i = 0 to n_slots - 1 do
    into.self.(i) <- into.self.(i) +. src.self.(i);
    into.enters.(i) <- into.enters.(i) + src.enters.(i);
    into.fires.(i) <- into.fires.(i) + src.fires.(i);
    into.fire_s.(i) <- into.fire_s.(i) +. src.fire_s.(i)
  done;
  for i = 0 to (n_slots * hist_buckets) - 1 do
    into.hist.(i) <- into.hist.(i) + src.hist.(i)
  done;
  into.wall_s <- into.wall_s +. src.wall_s;
  into.minor_words <- into.minor_words +. src.minor_words;
  into.promoted_words <- into.promoted_words +. src.promoted_words;
  into.minor_collections <- into.minor_collections + src.minor_collections;
  into.major_collections <- into.major_collections + src.major_collections

let counts t =
  let b = Buffer.create 256 in
  for i = 0 to n_slots - 1 do
    Buffer.add_string b
      (Printf.sprintf "%s enters=%d fires=%d\n" (Probe.slot_name i) t.enters.(i)
         t.fires.(i))
  done;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Snapshots, table, JSON                                             *)
(* ------------------------------------------------------------------ *)

type slot_stat = {
  ss_name : string;
  ss_self_s : float;
  ss_enters : int;
  ss_fires : int;
  ss_fire_s : float;
  ss_hist : int array;
}

type snapshot = {
  p_wall_s : float;
  p_slots : slot_stat list;
  p_events : int;
  p_minor_words : float;
  p_promoted_words : float;
  p_minor_collections : int;
  p_major_collections : int;
}

let snapshot t =
  let slots =
    List.init n_slots (fun i ->
        {
          ss_name = Probe.slot_name i;
          ss_self_s = t.self.(i);
          ss_enters = t.enters.(i);
          ss_fires = t.fires.(i);
          ss_fire_s = t.fire_s.(i);
          ss_hist = Array.sub t.hist (i * hist_buckets) hist_buckets;
        })
  in
  {
    p_wall_s = t.wall_s;
    p_slots = slots;
    p_events = Array.fold_left ( + ) 0 t.fires;
    p_minor_words = t.minor_words;
    p_promoted_words = t.promoted_words;
    p_minor_collections = t.minor_collections;
    p_major_collections = t.major_collections;
  }

let minor_words_per_event s =
  if s.p_events <= 0 then 0.0
  else s.p_minor_words /. float_of_int s.p_events

let print ppf s =
  let total = Float.max s.p_wall_s 1e-12 in
  Format.fprintf ppf "== profile: engine self-time ==@.";
  Format.fprintf ppf "%-10s %10s %6s %12s %12s %12s@." "subsystem" "self(s)"
    "wall%" "enters" "fires" "mean-fire(us)";
  List.iter
    (fun ss ->
      if ss.ss_self_s > 0.0 || ss.ss_enters > 0 || ss.ss_fires > 0 then
        Format.fprintf ppf "%-10s %10.4f %5.1f%% %12d %12d %12.2f@." ss.ss_name
          ss.ss_self_s
          (100.0 *. ss.ss_self_s /. total)
          ss.ss_enters ss.ss_fires
          (if ss.ss_fires = 0 then 0.0
           else 1e6 *. ss.ss_fire_s /. float_of_int ss.ss_fires))
    s.p_slots;
  Format.fprintf ppf "%-10s %10.4f %5.1f%% %12s %12d@." "total" s.p_wall_s 100.0
    "" s.p_events;
  Format.fprintf ppf
    "gc: %.0f minor words (%.1f/event), %.0f promoted, %d minor / %d major collections@."
    s.p_minor_words (minor_words_per_event s) s.p_promoted_words
    s.p_minor_collections s.p_major_collections

let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string (Printf.sprintf "%.6g" f) = f then Printf.sprintf "%.6g" f
  else s

let emit s =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"renofs-profile/1\",\"wall_s\":%s,\"events\":%d,\n"
       (float_str s.p_wall_s) s.p_events);
  Buffer.add_string b
    (Printf.sprintf
       "\"gc\":{\"minor_words\":%s,\"promoted_words\":%s,\"minor_collections\":%d,\"major_collections\":%d},\n"
       (float_str s.p_minor_words) (float_str s.p_promoted_words)
       s.p_minor_collections s.p_major_collections);
  Buffer.add_string b "\"slots\":[\n";
  let n = List.length s.p_slots in
  List.iteri
    (fun i ss ->
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\":%S,\"self_s\":%s,\"enters\":%d,\"fires\":%d,\"fire_s\":%s,\"hist\":["
           ss.ss_name (float_str ss.ss_self_s) ss.ss_enters ss.ss_fires
           (float_str ss.ss_fire_s));
      Array.iteri
        (fun j c ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int c))
        ss.ss_hist;
      Buffer.add_string b (if i = n - 1 then "]}\n" else "]},\n"))
    s.p_slots;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let of_json ~ctx j =
  let o = Json.obj ~ctx j in
  let bad fmt = Printf.ksprintf (fun m -> raise (Json.Bad (ctx ^ ": " ^ m))) fmt in
  (match Json.str ~ctx (Json.member ~ctx "schema" o) with
  | "renofs-profile/1" -> ()
  | s -> bad "unsupported schema %S" s);
  let wall_s = Json.num ~ctx (Json.member ~ctx "wall_s" o) in
  let events = int_of_float (Json.num ~ctx (Json.member ~ctx "events" o)) in
  let gc = Json.obj ~ctx (Json.member ~ctx "gc" o) in
  let gnum name = Json.num ~ctx (Json.member ~ctx name gc) in
  let slots =
    List.map
      (fun sj ->
        let so = Json.obj ~ctx sj in
        let m k = Json.member ~ctx k so in
        {
          ss_name = Json.str ~ctx (m "name");
          ss_self_s = Json.num ~ctx (m "self_s");
          ss_enters = int_of_float (Json.num ~ctx (m "enters"));
          ss_fires = int_of_float (Json.num ~ctx (m "fires"));
          ss_fire_s = Json.num ~ctx (m "fire_s");
          ss_hist =
            Array.of_list
              (List.map
                 (fun x -> int_of_float (Json.num ~ctx x))
                 (Json.arr ~ctx (m "hist")));
        })
      (Json.arr ~ctx (Json.member ~ctx "slots" o))
  in
  if slots = [] then bad "empty slots array";
  List.iter
    (fun ss ->
      if Array.length ss.ss_hist <> hist_buckets then
        bad "slot %s: expected %d histogram buckets, got %d" ss.ss_name
          hist_buckets (Array.length ss.ss_hist))
    slots;
  (* The structural invariant of self-time attribution: slot seconds sum
     to the profiled wall time.  More than 10% apart (on a wall long
     enough to judge) means broken accounting, not noise. *)
  let sum = List.fold_left (fun a ss -> a +. ss.ss_self_s) 0.0 slots in
  if wall_s > 1e-3 && Float.abs (sum -. wall_s) > 0.10 *. wall_s then
    bad "slot self-times sum to %.6fs but wall_s is %.6fs (>10%% apart)" sum
      wall_s;
  {
    p_wall_s = wall_s;
    p_slots = slots;
    p_events = events;
    p_minor_words = gnum "minor_words";
    p_promoted_words = gnum "promoted_words";
    p_minor_collections = int_of_float (gnum "minor_collections");
    p_major_collections = int_of_float (gnum "major_collections");
  }

let write_file ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (emit (snapshot t)))

let read_file path = Json.decode_file path (of_json ~ctx:path)
