(** External Data Representation (RFC 1014 subset) over mbuf chains.

    Encoders append directly to an mbuf chain and decoders walk a chain
    cursor — the [nfsm_build]/[nfsm_disect] style the paper describes,
    with no intermediate linear buffer. *)

exception Decode_error of string
(** Malformed input: bad discriminant, truncated data, negative or
    oversized length.  Errors raised by {!Dec} locate themselves as
    ["... at byte N of M"] within the message being decoded. *)

(** Encoding: all functions append to the chain. *)
module Enc : sig
  type t

  val create :
    ?ctr:Renofs_mbuf.Mbuf.Counters.t ->
    ?pool:Renofs_mbuf.Mbuf.Pool.t ->
    unit ->
    t
  (** [pool] recycles mbuf storage for everything this encoder appends. *)

  val sub : t -> t
  (** A fresh encoder inheriting [t]'s counters and pool, for building a
      nested structure to splice in with {!append_chain}. *)

  val chain : t -> Renofs_mbuf.Mbuf.t
  (** The chain built so far (also usable mid-encode). *)

  val u32 : t -> int32 -> unit
  val int : t -> int -> unit
  (** Encode a non-negative int that fits 32 bits. *)

  val bool : t -> bool -> unit
  val enum : t -> int -> unit
  val u64 : t -> int64 -> unit

  val opaque_fixed : t -> bytes -> unit
  (** Fixed-length opaque: bytes plus zero padding to a 4-byte boundary
      (no length word). *)

  val opaque : t -> bytes -> unit
  (** Variable-length opaque: length word, bytes, padding. *)

  val string : t -> string -> unit

  val append_chain : t -> Renofs_mbuf.Mbuf.t -> unit
  (** Splice an existing chain (e.g. file data already in mbufs) without
      copying — how the Reno server avoids copying read data. *)
end

(** Decoding from a chain cursor. *)
module Dec : sig
  type t

  val create : Renofs_mbuf.Mbuf.t -> t
  val remaining : t -> int
  val u32 : t -> int32
  val int : t -> int
  val bool : t -> bool
  val enum : t -> int
  val u64 : t -> int64

  val opaque_fixed : t -> int -> bytes
  (** Read exactly [n] bytes plus padding. *)

  val opaque : t -> max:int -> bytes
  (** Variable-length opaque; rejects lengths above [max]. *)

  val string : t -> max:int -> string
end
