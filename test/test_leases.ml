(* Tests for the NQNFS-style lease consistency protocol — the paper's
   Future Directions extension: close/open consistency kept, push-on-
   close eliminated. *)

open Renofs_core
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Stats = Renofs_engine.Stats
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module P = Nfs_proto

type world = {
  sim : Sim.t;
  topo : Net.Topology.t;
  server : Nfs_server.t;
  client_udp : Udp.stack;
  client_tcp : Tcp.stack;
}

let make_world () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  {
    sim;
    topo;
    server;
    client_udp = Udp.install topo.Net.Topology.client;
    client_tcp = Tcp.install topo.Net.Topology.client;
  }

let run_client w body =
  let result = ref None in
  Proc.spawn w.sim (fun () -> result := Some (body ()));
  Sim.run ~until:36_000.0 w.sim;
  match !result with Some r -> r | None -> Alcotest.fail "client never finished"

let mount_in w opts =
  Nfs_client.mount ~udp:w.client_udp ~tcp:w.client_tcp
    ~server:(Net.Topology.server_id w.topo)
    ~root:(Nfs_server.root_fhandle w.server)
    opts

let count m proc = Stats.Counter.get (Nfs_client.rpc_counters m) proc

(* ------------------------------------------------------------------ *)
(* Single-client behaviour                                            *)
(* ------------------------------------------------------------------ *)

let test_close_does_not_push () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.lease_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (Bytes.make 20000 'x');
      Nfs_client.close m fd;
      Alcotest.(check int) "no writes at close under a write lease" 0 (count m "write");
      Alcotest.(check bool) "lease RPC issued" true (count m "getlease" >= 1);
      (* The data is not lost: a flush pushes it. *)
      Nfs_client.flush_all m;
      Alcotest.(check bool) "flushed on demand" true (count m "write" >= 3))

let test_leased_reads_skip_getattr () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.lease_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (Bytes.make 8192 'y');
      Nfs_client.close m fd;
      let fd = Nfs_client.open_ m "f" in
      let g0 = count m "getattr" and r0 = count m "read" in
      for _ = 1 to 20 do
        ignore (Nfs_client.read m fd ~off:0 ~len:8192)
      done;
      (* All twenty reads served from cache under the lease: no getattr
         revalidation, no re-reads even though this client wrote the
         file (contrast with the Reno mtime rule). *)
      Alcotest.(check int) "no getattrs" g0 (count m "getattr");
      Alcotest.(check int) "no read RPCs" r0 (count m "read"))

let test_reno_style_invalidation_avoided () =
  (* The +50% read RPC cost of Reno's own-write invalidation disappears
     under a write lease. *)
  let reads opts =
    let w = make_world () in
    run_client w (fun () ->
        let m = mount_in w opts in
        let fd = Nfs_client.create m "f" in
        Nfs_client.write m fd ~off:0 (Bytes.make 8192 'z');
        Nfs_client.close m fd;
        let fd = Nfs_client.open_ m "f" in
        ignore (Nfs_client.read m fd ~off:0 ~len:8192);
        count m "read")
  in
  Alcotest.(check bool) "reno re-reads" true (reads Nfs_client.reno_mount >= 1);
  Alcotest.(check int) "leases do not" 0 (reads Nfs_client.lease_mount)

let test_lease_renewal_keeps_dirty_data_safe () =
  let w = make_world () in
  run_client w (fun () ->
      let m = mount_in w Nfs_client.lease_mount in
      let fd = Nfs_client.create m "f" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "delayed");
      Nfs_client.close m fd;
      (* Well past several lease durations: renewals must have kept the
         lease alive and the data either safely delayed or flushed by
         the 30 s syncer — never silently dropped. *)
      Proc.sleep w.sim 40.0;
      Nfs_client.flush_all m;
      let fs = Nfs_server.fs w.server in
      let v = Renofs_vfs.Fs.lookup fs (Renofs_vfs.Fs.root fs) "f" in
      Alcotest.(check string) "data reached the server" "delayed"
        (Bytes.to_string (Renofs_vfs.Fs.read fs v ~off:0 ~len:10)))

(* ------------------------------------------------------------------ *)
(* Cross-client consistency                                           *)
(* ------------------------------------------------------------------ *)

let test_reader_forces_writer_flush () =
  (* The whole point: no push-on-close, yet a reader that opens after
     the writer's close still sees the data — the contested lease makes
     the writer vacate and flush. *)
  let w = make_world () in
  run_client w (fun () ->
      let writer = mount_in w Nfs_client.lease_mount in
      let reader = mount_in w Nfs_client.lease_mount in
      let fd = Nfs_client.create writer "shared" in
      Nfs_client.write writer fd ~off:0 (Bytes.of_string "lease-consistent");
      Nfs_client.close writer fd;
      Alcotest.(check int) "writer pushed nothing at close" 0 (count writer "write");
      (* Reader comes along: its lease request contests the writer's. *)
      let fdr = Nfs_client.open_ reader "shared" in
      let data = Nfs_client.read reader fdr ~off:0 ~len:100 in
      Alcotest.(check string) "reader sees the writer's data" "lease-consistent"
        (Bytes.to_string data);
      Alcotest.(check bool) "writer flushed when contested" true
        (count writer "write" >= 1))

let test_two_readers_share () =
  let w = make_world () in
  run_client w (fun () ->
      (* The file is made by a classic mount so no write lease exists. *)
      let writer = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create writer "f" in
      Nfs_client.write writer fd ~off:0 (Bytes.of_string "shared read");
      Nfs_client.close writer fd;
      let a = mount_in w Nfs_client.lease_mount in
      let b = mount_in w Nfs_client.lease_mount in
      (* Read leases are compatible: neither client waits a lease term. *)
      let t0 = Sim.now w.sim in
      let da = Nfs_client.read a (Nfs_client.open_ a "f") ~off:0 ~len:20 in
      let db = Nfs_client.read b (Nfs_client.open_ b "f") ~off:0 ~len:20 in
      Alcotest.(check string) "a" "shared read" (Bytes.to_string da);
      Alcotest.(check string) "b" "shared read" (Bytes.to_string db);
      Alcotest.(check bool) "no lease-term stall" true (Sim.now w.sim -. t0 < 3.0);
      Alcotest.(check bool) "both hold leases" true
        (count a "getlease" >= 1 && count b "getlease" >= 1))

let test_alternating_writers () =
  (* Two clients take turns appending; leases serialise them and nothing
     is lost. *)
  let w = make_world () in
  run_client w (fun () ->
      let a = mount_in w Nfs_client.lease_mount in
      let b = mount_in w Nfs_client.lease_mount in
      let fd = Nfs_client.create a "turns" in
      Nfs_client.write a fd ~off:0 (Bytes.of_string "AAAA");
      Nfs_client.close a fd;
      let fdb = Nfs_client.open_ b "turns" in
      Nfs_client.write b fdb ~off:4 (Bytes.of_string "BBBB");
      Nfs_client.close b fdb;
      let fda = Nfs_client.open_ a "turns" in
      Nfs_client.write a fda ~off:8 (Bytes.of_string "CCCC");
      Nfs_client.close a fda;
      Nfs_client.flush_all a;
      Nfs_client.flush_all b;
      Proc.sleep w.sim 8.0;
      let c = mount_in w Nfs_client.reno_mount in
      let data = Nfs_client.read c (Nfs_client.open_ c "turns") ~off:0 ~len:20 in
      Alcotest.(check string) "all three rounds" "AAAABBBBCCCC" (Bytes.to_string data))

let test_lease_and_plain_mounts_coexist () =
  (* A lease mount and a classic Reno mount against the same server:
     the classic client's consistency still works (it never asks for
     leases; staleness stays bounded by the lease term + attr window). *)
  let w = make_world () in
  run_client w (fun () ->
      let lm = mount_in w Nfs_client.lease_mount in
      let rm = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create lm "mixed" in
      Nfs_client.write lm fd ~off:0 (Bytes.of_string "from-lease-client");
      Nfs_client.close lm fd;
      (* Give the lease world time to settle, then force the flush path
         the classic client depends on. *)
      Nfs_client.fsync lm fd;
      Proc.sleep w.sim 6.0;
      let data = Nfs_client.read rm (Nfs_client.open_ rm "mixed") ~off:0 ~len:100 in
      Alcotest.(check string) "classic client reads it" "from-lease-client"
        (Bytes.to_string data))

(* ------------------------------------------------------------------ *)
(* Crash recovery: the grace period                                   *)
(* ------------------------------------------------------------------ *)

let test_second_crash_restarts_grace () =
  (* The lease table dies with the kernel, so a rebooted server refuses
     grants until every pre-crash lease must have expired.  A second
     crash *during* that grace period has to restart it: the new boot's
     table is just as empty as the first's.  Timeline (lease term 6 s,
     grace 1.5x = 9 s):

       t=10  crash #1   t=11  reboot #1  -> grace until 20
       t=15  crash #2 mid-grace
       t=16  reboot #2  -> grace restarted, until 25
       t=21  past where the first window ended, inside the restarted
             one: still vacated
       t=26  past the restarted window: granted again *)
  let w = make_world () in
  run_client w (fun () ->
      let x =
        Client_transport.create_udp_fixed w.client_udp
          ~server:(Net.Topology.server_id w.topo)
          ()
      in
      let root = Nfs_server.root_fhandle w.server in
      let ask () =
        match
          Client_transport.call x
            (P.Getlease
               {
                 P.lease_file = root;
                 lease_mode = P.Lease_read;
                 lease_duration = 6;
               })
        with
        | P.Rlease (Ok (Some _)) -> `Granted
        | P.Rlease (Ok None) -> `Vacated
        | _ -> Alcotest.fail "unexpected getlease reply"
      in
      Alcotest.(check bool) "granted on a healthy server" true
        (ask () = `Granted);
      Proc.sleep w.sim 10.0;
      Nfs_server.crash w.server;
      Proc.sleep w.sim 1.0;
      Nfs_server.reboot w.server;
      Proc.sleep w.sim 4.0;
      (* Second crash strikes mid-grace. *)
      Nfs_server.crash w.server;
      Proc.sleep w.sim 1.0;
      Nfs_server.reboot w.server;
      Proc.sleep w.sim 5.0;
      Alcotest.(check bool) "restarted grace still refuses at t=21" true
        (ask () = `Vacated);
      Proc.sleep w.sim 5.5;
      Alcotest.(check bool) "grants again once the restarted window ends"
        true
        (ask () = `Granted))

(* ------------------------------------------------------------------ *)
(* RPC economy: the paper's prediction                                *)
(* ------------------------------------------------------------------ *)

let test_lease_write_savings_on_andrew () =
  (* "A cache consistency protocol would reduce the number of write RPCs
     by at least half" is the paper's conclusion (comparing against the
     asynchronous policy); against our Reno baseline the temporaries and
     merged rewrites must show a clear saving, approaching noconsist. *)
  let writes opts =
    let w = make_world () in
    run_client w (fun () ->
        let m = mount_in w opts in
        let cfg =
          {
            Renofs_workload.Andrew.default_config with
            Renofs_workload.Andrew.source_files = 10;
            header_files = 5;
            compile_instructions_per_byte = 50.0;
          }
        in
        let r = Renofs_workload.Andrew.run m ~config:cfg () in
        List.assoc "write" r.Renofs_workload.Andrew.rpc_counts)
  in
  let reno = writes Nfs_client.reno_mount in
  let leased = writes Nfs_client.lease_mount in
  let noconsist = writes Nfs_client.noconsist_mount in
  Alcotest.(check bool) "leases cut write RPCs" true (leased < reno);
  Alcotest.(check bool) "leases within 25% of the unsafe bound" true
    (leased <= noconsist * 5 / 4)

let () =
  Alcotest.run "leases"
    [
      ( "single-client",
        [
          Alcotest.test_case "close does not push" `Quick test_close_does_not_push;
          Alcotest.test_case "leased reads skip getattr" `Quick test_leased_reads_skip_getattr;
          Alcotest.test_case "no own-write invalidation" `Quick
            test_reno_style_invalidation_avoided;
          Alcotest.test_case "renewal keeps data safe" `Quick
            test_lease_renewal_keeps_dirty_data_safe;
        ] );
      ( "cross-client",
        [
          Alcotest.test_case "reader forces writer flush" `Quick
            test_reader_forces_writer_flush;
          Alcotest.test_case "two readers share" `Quick test_two_readers_share;
          Alcotest.test_case "alternating writers" `Quick test_alternating_writers;
          Alcotest.test_case "coexists with plain mounts" `Quick
            test_lease_and_plain_mounts_coexist;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "second crash restarts grace" `Quick
            test_second_crash_restarts_grace;
        ] );
      ( "economy",
        [
          Alcotest.test_case "write savings on MAB" `Quick test_lease_write_savings_on_andrew;
        ] );
    ]
