module Sim = Renofs_engine.Sim
module Rng = Renofs_engine.Rng
module Trace = Renofs_trace.Trace

type stats = {
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable queue_drops : int;
  mutable error_drops : int;
}

type t = {
  sim : Sim.t;
  name : string;
  bandwidth_bps : float;
  delay : float;
  queue_limit : int;
  mutable loss : float;
  mutable up : bool;
  rng : Rng.t;
  deliver : Packet.t -> unit;
  queue : Packet.t Queue.t;
  mutable transmitting : bool;
  stats : stats;
  mutable busy : float;
  owner : int; (* transmitting-side node id, -1 if unattached *)
  mutable trace : Trace.t option;
}

let create sim ~name ~bandwidth_bps ~delay ~queue_limit ?(loss = 0.0) ?(owner = -1)
    ~rng ~deliver () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  {
    sim;
    name;
    bandwidth_bps;
    delay;
    queue_limit;
    loss;
    up = true;
    rng;
    deliver;
    queue = Queue.create ();
    transmitting = false;
    stats = { packets_sent = 0; bytes_sent = 0; queue_drops = 0; error_drops = 0 };
    busy = 0.0;
    owner;
    trace = None;
  }

let set_trace t tr = t.trace <- tr

(* Background cross-traffic is addressed to the discard service (port 9,
   [Traffic.discard_port]); its per-packet events would swamp the ring
   buffer and evict the RPC lifecycle the trace exists to capture, so
   enqueue/deliver events skip it.  Drops are always recorded: they are
   the congestion signal, whoever suffers them. *)
let pkt_traced (pkt : Packet.t) = pkt.Packet.dst_port <> 9

let trace_pkt t pkt ev_of =
  match t.trace with
  | Some tr when pkt_traced pkt ->
      Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
        (ev_of (Packet.wire_size pkt))
  | Some _ | None -> ()

let rec start_next t =
  match Queue.take_opt t.queue with
  | None -> t.transmitting <- false
  | Some pkt ->
      t.transmitting <- true;
      let bytes = Packet.wire_size pkt in
      let tx_time = float_of_int (bytes * 8) /. t.bandwidth_bps in
      t.busy <- t.busy +. tx_time;
      Sim.after t.sim tx_time (fun () ->
          t.stats.packets_sent <- t.stats.packets_sent + 1;
          t.stats.bytes_sent <- t.stats.bytes_sent + bytes;
          if t.loss > 0.0 && Rng.chance t.rng t.loss then begin
            t.stats.error_drops <- t.stats.error_drops + 1;
            match t.trace with
            | Some tr ->
                Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
                  (Trace.Pkt_drop
                     { link = t.name; bytes; reason = Trace.Link_error })
            | None -> ()
          end
          else
            Sim.after t.sim t.delay (fun () ->
                trace_pkt t pkt (fun bytes ->
                    Trace.Pkt_deliver { link = t.name; bytes });
                t.deliver pkt);
          start_next t)

let send t pkt =
  if not t.up then begin
    t.stats.error_drops <- t.stats.error_drops + 1;
    match t.trace with
    | Some tr ->
        Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
          (Trace.Pkt_drop
             {
               link = t.name;
               bytes = Packet.wire_size pkt;
               reason = Trace.Link_down;
             })
    | None -> ()
  end
  else if Queue.length t.queue >= t.queue_limit then begin
    t.stats.queue_drops <- t.stats.queue_drops + 1;
    match t.trace with
    | Some tr ->
        Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
          (Trace.Pkt_drop
             {
               link = t.name;
               bytes = Packet.wire_size pkt;
               reason = Trace.Queue_full;
             })
    | None -> ()
  end
  else begin
    Queue.add pkt t.queue;
    trace_pkt t pkt (fun bytes ->
        Trace.Pkt_enqueue { link = t.name; bytes; qlen = Queue.length t.queue });
    if not t.transmitting then start_next t
  end

let name t = t.name
let queue_length t = Queue.length t.queue
let stats t = t.stats
let loss t = t.loss
let set_loss t p = t.loss <- Float.max 0.0 (Float.min 1.0 p)
let is_up t = t.up
let set_up t up = t.up <- up

let utilization t =
  let now = Sim.now t.sim in
  if now <= 0.0 then 0.0 else t.busy /. now

let busy_time t = t.busy
