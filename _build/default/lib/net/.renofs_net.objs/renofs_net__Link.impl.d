lib/net/link.ml: Packet Queue Renofs_engine
