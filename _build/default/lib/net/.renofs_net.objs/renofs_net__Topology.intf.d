lib/net/topology.mli: Link Nic Node Renofs_engine
