module Xdr = Renofs_xdr.Xdr

let program = 100005
let version = 1
let port = 635
let max_path = 1024
let max_name = 255

type call =
  | Mnt_null
  | Mnt of string
  | Dump
  | Umnt of string
  | Umntall
  | Export

type mnt_status = Mnt_ok of Nfs_proto.fhandle | Mnt_error of int

type reply =
  | Rmnt_null
  | Rmnt of mnt_status
  | Rdump of (string * string) list
  | Rumnt
  | Rexport of string list

let proc_of_call = function
  | Mnt_null -> 0
  | Mnt _ -> 1
  | Dump -> 2
  | Umnt _ -> 3
  | Umntall -> 4
  | Export -> 5

let proc_name = function
  | 0 -> "null"
  | 1 -> "mnt"
  | 2 -> "dump"
  | 3 -> "umnt"
  | 4 -> "umntall"
  | 5 -> "export"
  | n -> Printf.sprintf "mountproc%d" n

(* File handles share the NFS 32-byte representation. *)
let enc_fhandle enc fh =
  let b = Bytes.make Nfs_proto.fhandle_size '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int fh);
  Xdr.Enc.opaque_fixed enc b

let dec_fhandle dec =
  let b = Xdr.Dec.opaque_fixed dec Nfs_proto.fhandle_size in
  Int32.to_int (Bytes.get_int32_be b 0) land 0xFFFFFFFF

let encode_call enc = function
  | Mnt_null | Dump | Umntall | Export -> ()
  | Mnt path | Umnt path -> Xdr.Enc.string enc path

let decode_call ~proc dec =
  match proc with
  | 0 -> Mnt_null
  | 1 -> Mnt (Xdr.Dec.string dec ~max:max_path)
  | 2 -> Dump
  | 3 -> Umnt (Xdr.Dec.string dec ~max:max_path)
  | 4 -> Umntall
  | 5 -> Export
  | n -> raise (Xdr.Decode_error (Printf.sprintf "unknown MOUNT procedure %d" n))

let encode_reply enc = function
  | Rmnt_null | Rumnt -> ()
  | Rmnt (Mnt_ok fh) ->
      Xdr.Enc.enum enc 0;
      enc_fhandle enc fh
  | Rmnt (Mnt_error errno) -> Xdr.Enc.enum enc errno
  | Rdump records ->
      List.iter
        (fun (host, path) ->
          Xdr.Enc.bool enc true;
          Xdr.Enc.string enc host;
          Xdr.Enc.string enc path)
        records;
      Xdr.Enc.bool enc false
  | Rexport dirs ->
      List.iter
        (fun dir ->
          Xdr.Enc.bool enc true;
          Xdr.Enc.string enc dir;
          (* empty groups list *)
          Xdr.Enc.bool enc false)
        dirs;
      Xdr.Enc.bool enc false

let decode_reply ~proc dec =
  match proc with
  | 0 -> Rmnt_null
  | 1 -> (
      match Xdr.Dec.enum dec with
      | 0 -> Rmnt (Mnt_ok (dec_fhandle dec))
      | errno -> Rmnt (Mnt_error errno))
  | 2 ->
      let rec entries acc =
        if Xdr.Dec.bool dec then begin
          let host = Xdr.Dec.string dec ~max:max_name in
          let path = Xdr.Dec.string dec ~max:max_path in
          entries ((host, path) :: acc)
        end
        else List.rev acc
      in
      Rdump (entries [])
  | 3 | 4 -> Rumnt
  | 5 ->
      let rec dirs acc =
        if Xdr.Dec.bool dec then begin
          let dir = Xdr.Dec.string dec ~max:max_path in
          let rec skip_groups () =
            if Xdr.Dec.bool dec then begin
              ignore (Xdr.Dec.string dec ~max:max_name);
              skip_groups ()
            end
          in
          skip_groups ();
          dirs (dir :: acc)
        end
        else List.rev acc
      in
      Rexport (dirs [])
  | n -> raise (Xdr.Decode_error (Printf.sprintf "unknown MOUNT procedure %d" n))
