lib/transport/tcp.ml: Bytes Char Float Hashtbl Int32 List Printf Renofs_engine Renofs_mbuf Renofs_net
