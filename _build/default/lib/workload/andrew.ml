module Sim = Renofs_engine.Sim
module Cpu = Renofs_engine.Cpu
module Rng = Renofs_engine.Rng
module Stats = Renofs_engine.Stats
module Node = Renofs_net.Node
module Nfs_client = Renofs_core.Nfs_client

type config = {
  source_files : int;
  header_files : int;
  subdirs : int;
  compile_instructions_per_byte : float;
  seed : int;
}

let default_config =
  {
    source_files = 50;
    header_files = 20;
    subdirs = 4;
    (* ~2200 instructions per source byte: a 10 KB file takes ~24 s of
       compilation on a 0.9 MIPS MicroVAXII, giving phase V times in the
       paper's range. *)
    compile_instructions_per_byte = 2200.0;
    seed = 71;
  }

type result = {
  phase_times : float array;
  time_i_iv : float;
  time_v : float;
  rpc_counts : (string * int) list;
  total_rpcs : int;
}

let subdir cfg i = Printf.sprintf "mab/s%d" (i mod cfg.subdirs)
let source_path cfg i = Printf.sprintf "%s/src%02d.c" (subdir cfg i) i
let header_path cfg i = Printf.sprintf "%s/hdr%02d.h" (subdir cfg i) i
let copy_of path = "mabcopy/" ^ String.map (fun c -> if c = '/' then '_' else c) path

(* Deterministic file sizes between 2 KB and 26 KB. *)
let size_of_file seed name = 2048 + (Hashtbl.hash (seed, name) mod 24576)

let body name size = Bytes.init size (fun i -> Char.chr ((Hashtbl.hash name + i) mod 256))

(* cp and the compiler passes move data through 4 KB stdio buffers, so
   half-block writes are the norm; Reno's dirty-region merging turns two
   of them into one write RPC where an eager client pays two. *)
let io_chunk = 4096

let write_fully m fd data =
  let total = Bytes.length data in
  let rec loop off =
    if off < total then begin
      let n = min io_chunk (total - off) in
      Nfs_client.write m fd ~off (Bytes.sub data off n);
      loop (off + n)
    end
  in
  loop 0

let copy_file m src dst =
  let fd_in = Nfs_client.open_ m src in
  let size = Nfs_client.fd_size m fd_in in
  let fd_out = Nfs_client.create m dst in
  let rec loop off =
    if off < size then begin
      let chunk = Nfs_client.read m fd_in ~off ~len:io_chunk in
      if Bytes.length chunk > 0 then begin
        Nfs_client.write m fd_out ~off chunk;
        loop (off + Bytes.length chunk)
      end
    end
  in
  loop 0;
  Nfs_client.close m fd_in;
  Nfs_client.close m fd_out

let read_fully m path =
  let fd = Nfs_client.open_ m path in
  let size = Nfs_client.fd_size m fd in
  let rec loop off =
    if off < size then begin
      let chunk = Nfs_client.read m fd ~off ~len:8192 in
      if Bytes.length chunk > 0 then loop (off + Bytes.length chunk)
    end
  in
  loop 0;
  Nfs_client.close m fd;
  size

let run m ?(config = default_config) () =
  let sim = Nfs_client.sim m in
  let cpu = Node.cpu (Nfs_client.node m) in
  let think instructions = Cpu.consume cpu (Cpu.seconds_of_instructions cpu instructions) in
  let rng = Rng.create config.seed in
  let counters = Nfs_client.rpc_counters m in
  let counts_before = Stats.Counter.to_list counters in
  let phase_times = Array.make 5 0.0 in
  let timed i f =
    let t0 = Sim.now sim in
    f ();
    phase_times.(i) <- Sim.now sim -. t0
  in
  let sources = List.init config.source_files (source_path config) in
  let headers = List.init config.header_files (header_path config) in
  let all_files = sources @ headers in

  (* Phase 0 (untimed): materialise the "original" source tree the
     benchmark copies from. *)
  Nfs_client.mkdir m "mab";
  for i = 0 to config.subdirs - 1 do
    Nfs_client.mkdir m (Printf.sprintf "mab/s%d" i)
  done;
  List.iter
    (fun path ->
      let size = size_of_file config.seed path in
      let fd = Nfs_client.create m path in
      Nfs_client.write m fd ~off:0 (body path size);
      Nfs_client.close m fd)
    all_files;

  (* Phase I: make the target directory hierarchy (mkdir is a forked
     command: real work per directory). *)
  timed 0 (fun () ->
      Nfs_client.mkdir m "mabcopy";
      think 200_000.0;
      for i = 0 to config.subdirs - 1 do
        Nfs_client.mkdir m (Printf.sprintf "mabcopy/t%d" i);
        think 200_000.0
      done);

  (* Phase II: copy every file; each cp costs fork/exec/stat work. *)
  timed 1 (fun () ->
      List.iter
        (fun path ->
          think 350_000.0;
          copy_file m path (copy_of path))
        all_files);

  (* Phase III: recursive ls -l — readdir plus a stat of every entry. *)
  timed 2 (fun () ->
      let names = Nfs_client.readdir m "mabcopy" in
      List.iter
        (fun n ->
          ignore (Nfs_client.stat m ("mabcopy/" ^ n));
          (* Formatting and printing the entry. *)
          think 90_000.0)
        names);

  (* Phase IV: read every copied file (grep). *)
  timed 3 (fun () ->
      List.iter
        (fun path ->
          think 120_000.0;
          let size = read_fully m (copy_of path) in
          (* Scanning the bytes costs CPU too. *)
          think (float_of_int size *. 25.0))
        all_files);

  (* Phase V: compile.  Each source is read along with a few headers,
     a lot of CPU burns, and an object file is written. *)
  timed 4 (fun () ->
      let headers_arr = Array.of_list headers in
      List.iter
        (fun src ->
          let size = read_fully m (copy_of src) in
          for _ = 1 to 3 do
            let h = headers_arr.(Rng.int rng (Array.length headers_arr)) in
            ignore (read_fully m (copy_of h))
          done;
          (* The preprocessor writes an intermediate file, the later
             passes read it back, and it is deleted: under close/open
             consistency each temporary costs write RPCs; a noconsist
             mount never pushes it at all. *)
          let tmp = copy_of src ^ ".i" in
          let tsize = size * 3 / 2 in
          let tfd = Nfs_client.create m tmp in
          write_fully m tfd (body tmp tsize);
          Nfs_client.close m tfd;
          ignore (read_fully m tmp);
          Nfs_client.unlink m tmp;
          Cpu.consume cpu
            (Cpu.seconds_of_instructions cpu
               (float_of_int size *. config.compile_instructions_per_byte));
          let obj = copy_of src ^ ".o" in
          let fd = Nfs_client.create m obj in
          let osize = max 1024 (size * 7 / 10) in
          write_fully m fd (body obj osize);
          Nfs_client.close m fd)
        sources);

  let counts_after = Stats.Counter.to_list counters in
  let delta name =
    let get l = try List.assoc name l with Not_found -> 0 in
    get counts_after - get counts_before
  in
  let names =
    List.sort_uniq compare (List.map fst counts_before @ List.map fst counts_after)
  in
  let rpc_counts = List.map (fun n -> (n, delta n)) names in
  {
    phase_times;
    time_i_iv = phase_times.(0) +. phase_times.(1) +. phase_times.(2) +. phase_times.(3);
    time_v = phase_times.(4);
    rpc_counts;
    total_rpcs = List.fold_left (fun acc (_, c) -> acc + c) 0 rpc_counts;
  }
