test/test_workload.ml: Alcotest Andrew Array Create_delete Experiments Fileset List Nhfsstone Printf Renofs_core Renofs_engine Renofs_net Renofs_transport Renofs_vfs Renofs_workload String
