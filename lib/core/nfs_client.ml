module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Stats = Renofs_engine.Stats
module Node = Renofs_net.Node
module Nic = Renofs_net.Nic
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Namecache = Renofs_vfs.Namecache
module Trace = Renofs_trace.Trace
module Metrics = Renofs_metrics.Metrics
module P = Nfs_proto

type write_policy = Write_through | Async | Delayed

type mount_opts = {
  transport : [ `Udp_fixed | `Udp_dynamic | `Tcp ];
  timeo : float;
  mss : int;
  rsize : int;
  wsize : int;
  attr_timeout : float;
  num_biods : int;
  write_policy : write_policy;
  push_on_close : bool;
  consistency : bool;
  name_cache : bool;
  push_dirty_before_read : bool;
  trust_own_writes : bool;
  read_ahead : int;
  cache_blocks : int;
  use_readdirlook : bool;
  delay_full_blocks : bool;
      (** under [Delayed], also delay full blocks instead of starting
          their write RPCs immediately — the "delayed write without push
          on close" policy of the noconsist experiments *)
  use_leases : bool;
      (** the experimental NQNFS-style lease protocol: cached data is
          valid while a read lease is held, and delayed writes without
          push-on-close are safe under a write lease *)
  soft : bool;
      (** soft mount: fail operations with an I/O error after [retrans]
          retransmissions instead of retrying forever *)
  retrans : int;
  adaptive_transfer : bool;
      (** the paper's last-ditch option, made dynamic as its Section 4
          suggests: halve the read/write transfer size when
          retransmissions indicate fragment loss, and grow it back after
          a run of clean transfers *)
  v3 : bool;
      (** the v3-style protocol profile: WRITE goes out UNSTABLE (the
          server may buffer it volatile) and a COMMIT makes it durable
          before close/fsync return; a changed write verifier in any
          reply means the server rebooted and the client rewrites every
          uncommitted range *)
  uid : int;  (** AUTH_UNIX credentials presented to the server *)
  gid : int;
}

let reno_mount =
  {
    transport = `Udp_fixed;
    timeo = 1.0;
    mss = 1024;
    rsize = 8192;
    wsize = 8192;
    attr_timeout = 5.0;
    num_biods = 4;
    write_policy = Delayed;
    push_on_close = true;
    consistency = true;
    name_cache = true;
    push_dirty_before_read = true;
    trust_own_writes = false;
    read_ahead = 1;
    (* 48 x 8K = 384 KB: the scale of a MicroVAXII buffer cache. *)
    cache_blocks = 48;
    use_readdirlook = false;
    delay_full_blocks = false;
    use_leases = false;
    soft = false;
    retrans = 4;
    adaptive_transfer = false;
    v3 = false;
    uid = 100;
    gid = 100;
  }

let reno_tcp_mount = { reno_mount with transport = `Tcp }
let reno_dynamic_mount = { reno_mount with transport = `Udp_dynamic }
let reno_nopush_mount = { reno_mount with push_on_close = false }

let noconsist_mount =
  {
    reno_mount with
    consistency = false;
    push_on_close = false;
    delay_full_blocks = true;
  }

(* The paper's future-work configuration: full consistency through
   leases, with the noconsist mount's write behaviour. *)
let lease_mount =
  {
    reno_mount with
    use_leases = true;
    push_on_close = false;
    delay_full_blocks = true;
    push_dirty_before_read = false;
  }

(* The v3 profile: asynchronous writes with COMMIT, 32K transfers, and
   the bulk-lookup READDIR — the NFSv3 feature set grafted onto the Reno
   client structure. *)
let v3_mount =
  {
    reno_mount with
    v3 = true;
    rsize = P.max_data_v3;
    wsize = P.max_data_v3;
    use_readdirlook = true;
  }

let ultrix_mount =
  {
    reno_mount with
    name_cache = false;
    push_dirty_before_read = false;
    trust_own_writes = true;
    (* The reference port starts a write RPC per write call rather than
       delaying and merging partial-block dirty regions. *)
    write_policy = Async;
  }

(* Symmetric to [Nfs_server.config]: a default value plus [with_*]
   derivation over the option record. *)
type config = mount_opts

let default_config = reno_mount
let with_transport c transport = { c with transport }
let with_timeo c timeo = { c with timeo }
let with_mss c mss = { c with mss }
let with_write_policy c write_policy = { c with write_policy }
let with_num_biods c num_biods = { c with num_biods }
let with_consistency c consistency = { c with consistency }
let with_leases c use_leases = { c with use_leases }
let with_soft c ~retrans = { c with soft = true; retrans }
let with_adaptive_transfer c adaptive_transfer = { c with adaptive_transfer }
let with_v3 c v3 = { c with v3 }

exception Nfs_error of P.stat

let fail st = raise (Nfs_error st)

(* A cached block.  [valid] means the whole block's contents (up to the
   file size) are known; a block created by a partial write is *not*
   valid but carries a dirty region — the no-preread behaviour of the
   Reno buf structure. *)
type cblock = {
  b_blk : int;
  data : Bytes.t;
  mutable valid : bool;
  mutable dirty : (int * int) option;
  mutable lru : int;
  mutable fetching : unit Proc.Ivar.t option;
  mutable pushing : bool;
      (* a write RPC for this block is in flight (B_BUSY): further
         pushes must chain behind it or the server could apply them out
         of order *)
  mutable needs_commit : (int * int) option;
      (* the write-behind ledger (B_NEEDCOMMIT): the block-relative
         range acknowledged UNSTABLE by a v3 server and not yet covered
         by a successful COMMIT — the only client-side record of data
         the server may be holding in volatile memory *)
}

type cfile = {
  c_fh : int;
  blocks : (int, cblock) Hashtbl.t;
  mutable cached_mtime : float;
  mutable csize : int;
  mutable dirty_count : int;
  mutable last_seq_blk : int;
  mutable outstanding : int; (* async write RPCs in flight *)
  mutable waiters : (unit -> unit) list;
  mutable write_error : P.stat option;
  mutable commit_verf : int option;
      (* the write verifier the file's unstable writes were acked under;
         a different verifier in any later reply means the server
         rebooted and the uncommitted ranges must be rewritten *)
  mutable lease : (P.lease_mode * float) option; (* (mode, expiry) *)
  mutable open_count : int;
  mutable silly : (int * string) option;
      (* unlinked while open: renamed server-side to .nfsNNNN in
         (directory, name), removed at last close — the classic BSD
         silly rename *)
}

type fd = cfile

type t = {
  sim : Sim.t;
  node : Node.t;
  opts : mount_opts;
  xport : Client_transport.t;
  root : int;
  files : (int, cfile) Hashtbl.t;
  attrs : Attrcache.t;
  names : Namecache.t option;
  name_stamps : (int, float) Hashtbl.t;
      (* directory mtime under which its cached names were entered; a
         changed mtime invalidates them, as the BSD cache_purge on
         directory change does *)
  biods : Biod.t;
  counters : Stats.Counter.t;
  mutable lru_clock : int;
  mutable total_blocks : int;
  mutable xfer_size : int; (* current read/write transfer size *)
  mutable clean_transfers : int;
  mutable seen_retransmits : int;
}

let opts t = t.opts
let transport t = t.xport
let sim t = t.sim
let node t = t.node
let rpc_counters t = t.counters

let syscall_instructions = 180.0

let charge t instructions =
  Cpu.consume (Node.cpu t.node) (Cpu.seconds_of_instructions (Node.cpu t.node) instructions)

let charge_copy t bytes =
  let bw = (Node.nic t.node).Nic.copy_bandwidth in
  Cpu.consume (Node.cpu t.node) (float_of_int bytes /. bw)

let mtime_of (a : P.fattr) = P.float_of_time a.P.mtime

(* Issue one RPC, counting it and folding any returned attributes into
   the attribute cache (the piggyback updates that keep Getattr rare). *)
let rpc t call =
  Stats.Counter.incr t.counters (P.proc_name (P.proc_of_call call));
  let reply =
    try Client_transport.call t.xport call
    with Client_transport.Rpc_timed_out _ ->
      (* Soft mount semantics: the operation fails with EIO. *)
      fail P.NFSERR_IO
  in
  (match (reply, call) with
  | P.Rattr (Ok a), P.Getattr fh
  | P.Rattr (Ok a), P.Setattr (fh, _)
  | P.Rattr (Ok a), P.Write { P.write_file = fh; _ } ->
      Attrcache.update t.attrs fh a
  | P.Rdirop (Ok (fh, a)), _ -> Attrcache.update t.attrs fh a
  | P.Rread (Ok (a, _)), P.Read r -> Attrcache.update t.attrs r.P.read_file a
  | P.Rlease (Ok (Some ok)), P.Getlease la ->
      Attrcache.update t.attrs la.P.lease_file ok.P.lease_attr
  | P.Rwrite3 (Ok ok), P.Write3 { P.w3_file = fh; _ } ->
      Attrcache.update t.attrs fh ok.P.w3_attr
  | P.Rcommit (Ok ok), P.Commit { P.cm_file = fh; _ } ->
      Attrcache.update t.attrs fh ok.P.cmo_attr
  | _ -> ());
  reply

let getattr_rpc t fh =
  match rpc t (P.Getattr fh) with
  | P.Rattr (Ok a) -> a
  | P.Rattr (Error st) -> fail st
  | _ -> fail P.NFSERR_IO

let get_attrs t fh =
  match Attrcache.get t.attrs fh with Some a -> a | None -> getattr_rpc t fh

(* ------------------------------------------------------------------ *)
(* Pathname resolution                                                *)
(* ------------------------------------------------------------------ *)

let split_path path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")

(* Record a name under the directory's currently-believed mtime; a
   different stamp means older entries are stale, so purge them. *)
let name_enter t ~dir name fh =
  match t.names with
  | None -> ()
  | Some nc ->
      let dir_mtime =
        match Attrcache.peek t.attrs dir with Some a -> mtime_of a | None -> 0.0
      in
      (match Hashtbl.find_opt t.name_stamps dir with
      | Some stamp when stamp <> dir_mtime -> Namecache.invalidate_dir nc dir
      | _ -> ());
      Hashtbl.replace t.name_stamps dir dir_mtime;
      Namecache.enter nc ~dir name fh

let name_remove t ~dir name =
  match t.names with Some nc -> Namecache.remove nc ~dir name | None -> ()

let lookup_rpc t dir name =
  match rpc t (P.Lookup { P.dir; name }) with
  | P.Rdirop (Ok (fh, a)) ->
      name_enter t ~dir name fh;
      (fh, Some a)
  | P.Rdirop (Error st) -> fail st
  | _ -> fail P.NFSERR_IO

let lookup_component t dir name =
  let cached =
    match t.names with
    | Some nc -> (
        match Namecache.lookup nc ~dir name with
        | None -> None
        | Some fh -> (
            (* Validate against the directory's modify time (through the
               attribute cache, so at most one getattr per timeout). *)
            let da = get_attrs t dir in
            let m = mtime_of da in
            match Hashtbl.find_opt t.name_stamps dir with
            | Some stamp when stamp = m -> Some fh
            | _ ->
                Namecache.invalidate_dir nc dir;
                Hashtbl.replace t.name_stamps dir m;
                None))
    | None -> None
  in
  match cached with
  | Some fh -> fh
  | None -> fst (lookup_rpc t dir name)

let readlink_rpc t fh =
  match rpc t (P.Readlink fh) with
  | P.Rreadlink (Ok target) -> target
  | P.Rreadlink (Error st) -> fail st
  | _ -> fail P.NFSERR_IO

(* An inode's type never changes, so a stale cache entry is still good
   enough to decide whether to follow; only an unknown handle costs a
   getattr. *)
let kind_of_fh t fh =
  match Attrcache.peek t.attrs fh with
  | Some a -> a.P.ftype
  | None -> (get_attrs t fh).P.ftype

(* namei: resolve components from [dir], following symbolic links (up to
   a loop budget; the final component only when [follow_last]). *)
let rec resolve t ~fuel dir components ~follow_last =
  match components with
  | [] -> dir
  | name :: rest -> (
      let fh = lookup_component t dir name in
      let is_last = rest = [] in
      match kind_of_fh t fh with
      | P.NFLNK when (not is_last) || follow_last ->
          if fuel = 0 then fail P.NFSERR_IO (* symlink loop *);
          let target = readlink_rpc t fh in
          let tcomps = split_path target in
          let base = if String.length target > 0 && target.[0] = '/' then t.root else dir in
          resolve t ~fuel:(fuel - 1) base (tcomps @ rest) ~follow_last
      | _ -> resolve t ~fuel fh rest ~follow_last)

let walk t path = resolve t ~fuel:8 t.root (split_path path) ~follow_last:true

(* Resolve a path into (parent directory handle, final component);
   intermediate links are followed, the final name is taken literally. *)
let walk_parent t path =
  match List.rev (split_path path) with
  | [] -> fail P.NFSERR_NOENT
  | name :: rev_dirs ->
      let dir = resolve t ~fuel:8 t.root (List.rev rev_dirs) ~follow_last:true in
      (dir, name)

(* ------------------------------------------------------------------ *)
(* Block cache                                                        *)
(* ------------------------------------------------------------------ *)

let cfile_of t fh ~attr =
  match Hashtbl.find_opt t.files fh with
  | Some cf -> cf
  | None ->
      let mtime, size =
        match attr with Some a -> (mtime_of a, a.P.size) | None -> (0.0, 0)
      in
      let cf =
        {
          c_fh = fh;
          blocks = Hashtbl.create 16;
          cached_mtime = mtime;
          csize = size;
          dirty_count = 0;
          last_seq_blk = -2;
          outstanding = 0;
          waiters = [];
          write_error = None;
          commit_verf = None;
          lease = None;
          open_count = 0;
          silly = None;
        }
      in
      Hashtbl.replace t.files fh cf;
      cf

let set_dirty cf b range =
  (match (b.dirty, range) with
  | None, Some _ -> cf.dirty_count <- cf.dirty_count + 1
  | Some _, None -> cf.dirty_count <- cf.dirty_count - 1
  | _ -> ());
  b.dirty <- range

(* Adaptive transfer feedback: any retransmission since the last look
   is read as fragment loss (the paper's suggested signal), halving the
   transfer size; a run of clean transfers grows it back. *)
let note_transfer t =
  if t.opts.adaptive_transfer then begin
    let r = Client_transport.retransmits t.xport in
    if r > t.seen_retransmits then begin
      t.seen_retransmits <- r;
      t.clean_transfers <- 0;
      t.xfer_size <- max 1024 (t.xfer_size / 2)
    end
    else begin
      t.clean_transfers <- t.clean_transfers + 1;
      if t.clean_transfers >= 25 && t.xfer_size < t.opts.rsize then begin
        t.xfer_size <- min t.opts.rsize (t.xfer_size * 2);
        t.clean_transfers <- 0
      end
    end
  end

let lease_valid t cf mode =
  match cf.lease with
  | Some (held, expiry) when Sim.now t.sim < expiry ->
      held = P.Lease_write || mode = P.Lease_read
  | _ -> false

let wait_outstanding cf =
  let rec wait () =
    if cf.outstanding > 0 then begin
      Proc.suspend (fun resume -> cf.waiters <- cf.waiters @ [ resume ]);
      wait ()
    end
  in
  wait ()

let uncommitted_blocks cf =
  Hashtbl.fold
    (fun _ b acc -> if b.needs_commit <> None then b :: acc else acc)
    cf.blocks []

(* Fold a write verifier from a v3 reply into the file's ledger.  A
   changed verifier under uncommitted data means the server rebooted and
   dropped its unstable buffer: trace the detection and re-dirty every
   uncommitted range so the normal push machinery rewrites it. *)
let note_verf t cf verf =
  match cf.commit_verf with
  | Some v when v <> verf ->
      cf.commit_verf <- Some verf;
      let lost = uncommitted_blocks cf in
      if lost <> [] then begin
        (match Node.trace t.node with
        | Some tr ->
            Trace.record tr ~time:(Sim.now t.sim) ~node:(Node.id t.node)
              (Trace.Verf_mismatch { file = cf.c_fh; expected = v; got = verf })
        | None -> ());
        List.iter
          (fun b ->
            match b.needs_commit with
            | None -> ()
            | Some (lo, hi) ->
                b.needs_commit <- None;
                let range =
                  match b.dirty with
                  | Some (dlo, dhi) -> (min lo dlo, max hi dhi)
                  | None -> (lo, hi)
                in
                set_dirty cf b (Some range))
          lost
      end
  | _ -> cf.commit_verf <- Some verf

let push_block t cf b ~wait =
  match b.dirty with
  | None -> ()
  | Some _ when b.pushing ->
      (* The in-flight writer re-checks the dirty region when its RPC
         completes and will carry this data too. *)
      if wait then wait_outstanding cf
  | Some (lo, hi) ->
      b.pushing <- true;
      set_dirty cf b None;
      cf.outstanding <- cf.outstanding + 1;
      let write_rpc ~lo ~hi =
        (* One RPC per current transfer size: under adaptive transfer a
           big dirty region goes out in smaller, fragment-safe pieces. *)
        let rec go lo =
          if lo < hi then begin
            let n = min (hi - lo) (max 1024 t.xfer_size) in
            let off = (b.b_blk * t.opts.rsize) + lo in
            let payload = Bytes.sub b.data lo n in
            (if t.opts.v3 then begin
               (* Write-through demands stability now; everything else
                  goes out UNSTABLE and is made durable by the COMMIT at
                  fsync/close. *)
               let stable =
                 match t.opts.write_policy with
                 | Write_through -> P.File_sync
                 | Async | Delayed -> P.Unstable
               in
               match
                 rpc t
                   (P.Write3
                      {
                        P.w3_file = cf.c_fh;
                        w3_offset = off;
                        w3_stable = stable;
                        w3_data = payload;
                      })
               with
               | P.Rwrite3 (Ok ok) ->
                   if t.opts.trust_own_writes || lease_valid t cf P.Lease_write
                   then cf.cached_mtime <- mtime_of ok.P.w3_attr;
                   cf.csize <- max cf.csize ok.P.w3_attr.P.size;
                   (if ok.P.w3_committed = P.Unstable then
                      (* Enter the range in the write-behind ledger:
                         only a covering COMMIT under the same verifier
                         releases it. *)
                      let range =
                        match b.needs_commit with
                        | Some (clo, chi) -> (min lo clo, max (lo + n) chi)
                        | None -> (lo, lo + n)
                      in
                      b.needs_commit <- Some range);
                   note_verf t cf ok.P.w3_verf
               | P.Rwrite3 (Error st) -> cf.write_error <- Some st
               | exception Nfs_error st -> cf.write_error <- Some st
               | _ -> cf.write_error <- Some P.NFSERR_IO
             end
             else
               match
                 rpc t
                   (P.Write
                      { P.write_file = cf.c_fh; write_offset = off; data = payload })
               with
               | P.Rattr (Ok a) ->
                   (* Under a write lease nobody else can be writing, so
                      the new modify time is certainly ours. *)
                   if t.opts.trust_own_writes || lease_valid t cf P.Lease_write
                   then cf.cached_mtime <- mtime_of a;
                   cf.csize <- max cf.csize a.P.size
               | P.Rattr (Error st) -> cf.write_error <- Some st
               | exception Nfs_error st -> cf.write_error <- Some st
               | _ -> cf.write_error <- Some P.NFSERR_IO);
            note_transfer t;
            go (lo + n)
          end
        in
        go lo
      in
      let rec do_write ~lo ~hi =
        write_rpc ~lo ~hi;
        match b.dirty with
        | Some (lo', hi') ->
            (* Re-dirtied while the RPC was in flight: push that too,
               still holding the block busy. *)
            set_dirty cf b None;
            do_write ~lo:lo' ~hi:hi'
        | None ->
            b.pushing <- false;
            cf.outstanding <- cf.outstanding - 1;
            if cf.outstanding = 0 then begin
              let waiters = cf.waiters in
              cf.waiters <- [];
              List.iter (fun resume -> Sim.after t.sim 0.0 resume) waiters
            end
      in
      if wait then do_write ~lo ~hi
      else Biod.submit t.biods (fun () -> do_write ~lo ~hi)

let flush_file t cf ~wait =
  Hashtbl.iter (fun _ b -> push_block t cf b ~wait:false) cf.blocks;
  if wait then wait_outstanding cf

(* Make a file's acknowledged-unstable data durable: flush dirty blocks,
   COMMIT, and check the verifier.  A mismatch means the server rebooted
   under the data — [note_verf] has re-dirtied the lost ranges, so write
   them again and re-COMMIT until the ledger is clean.  Any COMMIT
   failure (including a soft mount's give-up) records the error and
   releases the ledger: a wedged ledger would block every later
   close/fsync forever, while the recorded error reaches the caller. *)
let rec commit_file t cf =
  flush_file t cf ~wait:true;
  if t.opts.v3 then
    match uncommitted_blocks cf with
    | [] -> ()
    | uncommitted -> (
        let expected = cf.commit_verf in
        match rpc t (P.Commit { P.cm_file = cf.c_fh; cm_offset = 0; cm_count = 0 }) with
        | P.Rcommit (Ok ok) -> (
            note_verf t cf ok.P.cmo_verf;
            match expected with
            | Some v when v <> ok.P.cmo_verf ->
                (* The data this COMMIT covered predates the reboot and
                   is gone; rewrite and try again. *)
                commit_file t cf
            | _ -> List.iter (fun b -> b.needs_commit <- None) uncommitted)
        | P.Rcommit (Error st) ->
            cf.write_error <- Some st;
            List.iter (fun b -> b.needs_commit <- None) uncommitted
        | exception Nfs_error st ->
            cf.write_error <- Some st;
            List.iter (fun b -> b.needs_commit <- None) uncommitted
        | _ ->
            cf.write_error <- Some P.NFSERR_IO;
            List.iter (fun b -> b.needs_commit <- None) uncommitted)

(* Evict the least-recently-used block across all files, pushing it
   first if dirty.  Blocks in the write-behind ledger are passed over
   when possible — their contents may exist nowhere but here and the
   server's volatile buffer — and committed first when not. *)
let evict_one t =
  let victim = ref None in
  let consider cf b =
    match !victim with
    | Some (_, best) when best.lru <= b.lru -> ()
    | _ -> victim := Some (cf, b)
  in
  Hashtbl.iter
    (fun _ cf ->
      Hashtbl.iter
        (fun _ b -> if b.needs_commit = None then consider cf b)
        cf.blocks)
    t.files;
  if !victim = None then
    Hashtbl.iter
      (fun _ cf -> Hashtbl.iter (fun _ b -> consider cf b) cf.blocks)
      t.files;
  match !victim with
  | None -> ()
  | Some (cf, b) ->
      push_block t cf b ~wait:true;
      if b.needs_commit <> None then commit_file t cf;
      Hashtbl.remove cf.blocks b.b_blk;
      t.total_blocks <- t.total_blocks - 1

let get_or_create_block t cf blk =
  match Hashtbl.find_opt cf.blocks blk with
  | Some b ->
      t.lru_clock <- t.lru_clock + 1;
      b.lru <- t.lru_clock;
      b
  | None ->
      while t.total_blocks >= t.opts.cache_blocks do
        evict_one t
      done;
      t.lru_clock <- t.lru_clock + 1;
      let b =
        {
          b_blk = blk;
          data = Bytes.make t.opts.rsize '\000';
          valid = false;
          dirty = None;
          lru = t.lru_clock;
          fetching = None;
          pushing = false;
          needs_commit = None;
        }
      in
      Hashtbl.replace cf.blocks blk b;
      t.total_blocks <- t.total_blocks + 1;
      b

(* Invalidate the clean cached blocks of a file (dirty data survives:
   it still has to reach the server, and uncommitted data survives: it
   may still have to be rewritten after a server reboot). *)
let invalidate_clean t cf =
  let doomed =
    Hashtbl.fold
      (fun blk b acc ->
        if b.dirty = None && (not b.pushing) && b.needs_commit = None then
          blk :: acc
        else acc)
      cf.blocks []
  in
  List.iter
    (fun blk ->
      Hashtbl.remove cf.blocks blk;
      t.total_blocks <- t.total_blocks - 1)
    doomed

(* The Reno consistency rule: cached data is valid only while the
   server's modify time matches what we cached under.  A client that
   does not [trust_own_writes] cannot tell its own writes from another
   client's, so its own pushes invalidate its cache.  A valid lease
   short-circuits all of it: the server has promised nobody else is
   writing. *)
let validate t cf =
  if t.opts.use_leases && lease_valid t cf P.Lease_read then ()
  else if t.opts.consistency then begin
    let a = get_attrs t cf.c_fh in
    let m = mtime_of a in
    if m <> cf.cached_mtime then begin
      invalidate_clean t cf;
      cf.cached_mtime <- m
    end;
    cf.csize <- (if cf.dirty_count > 0 then max cf.csize a.P.size else a.P.size)
  end

(* Acquire, renew or upgrade a lease.  A refusal is a vacate order:
   flush everything and stop caching until re-acquired. *)
let getlease t cf mode =
  match
    rpc t (P.Getlease { P.lease_file = cf.c_fh; lease_mode = mode; lease_duration = 6 })
  with
  | P.Rlease (Ok (Some ok)) ->
      let m = mtime_of ok.P.lease_attr in
      if m <> cf.cached_mtime then begin
        invalidate_clean t cf;
        cf.cached_mtime <- m
      end;
      cf.csize <-
        (if cf.dirty_count > 0 then max cf.csize ok.P.lease_attr.P.size
         else ok.P.lease_attr.P.size);
      let held =
        match (cf.lease, mode) with
        | Some (P.Lease_write, _), _ -> P.Lease_write
        | _, m -> m
      in
      (* A safety margin keeps us from acting on a lease the server is
         about to consider expired. *)
      cf.lease <-
        Some (held, Sim.now t.sim +. float_of_int ok.P.granted_duration -. 0.25);
      true
  | P.Rlease (Ok None) ->
      cf.lease <- None;
      flush_file t cf ~wait:true;
      invalidate_clean t cf;
      false
  | P.Rlease (Error st) -> fail st
  | _ -> fail P.NFSERR_IO

let ensure_lease t cf mode =
  if lease_valid t cf mode then true else getlease t cf mode

(* ------------------------------------------------------------------ *)
(* Mount                                                              *)
(* ------------------------------------------------------------------ *)

let syncer_interval = 30.0

let mount ~udp ?tcp ~server ~root opts =
  let node = Udp.node udp in
  let max_retries = if opts.soft then Some opts.retrans else None in
  let uid = opts.uid and gid = opts.gid in
  let xport =
    match opts.transport with
    | `Udp_fixed ->
        Client_transport.create_udp_fixed udp ~server ~timeo:opts.timeo
          ?max_retries ~uid ~gid ()
    | `Udp_dynamic ->
        Client_transport.create_udp_dynamic udp ~server ~timeo:opts.timeo
          ?max_retries ~uid ~gid ()
    | `Tcp -> (
        match tcp with
        | Some stack ->
            Client_transport.create_tcp stack ~server ~mss:opts.mss ~uid ~gid ()
        | None -> invalid_arg "Nfs_client.mount: TCP transport needs a tcp stack")
  in
  let t =
    {
      sim = Node.sim node;
      node;
      opts;
      xport;
      root;
      files = Hashtbl.create 64;
      attrs = Attrcache.create (Node.sim node) ~timeout:opts.attr_timeout ();
      names = (if opts.name_cache then Some (Namecache.create ()) else None);
      name_stamps = Hashtbl.create 32;
      biods = Biod.create (Node.sim node) ~count:opts.num_biods;
      counters = Stats.Counter.create ();
      lru_clock = 0;
      total_blocks = 0;
      xfer_size = opts.rsize;
      clean_transfers = 0;
      seen_retransmits = 0;
    }
  in
  (* Client cache and biod sources for the run attached to this node,
     if any (the transport registered its own at creation). *)
  (match Node.metrics node with
  | None -> ()
  | Some run ->
      let p s = Node.name node ^ ".cli." ^ s in
      let fi = float_of_int in
      Metrics.register run ~name:(p "attrcache.hit_ratio") ~unit_:"percent"
        ~kind:Metrics.Gauge (fun () ->
          let total = Attrcache.hits t.attrs + Attrcache.misses t.attrs in
          if total = 0 then nan
          else 100.0 *. fi (Attrcache.hits t.attrs) /. fi total);
      (match t.names with
      | Some nc ->
          Metrics.register run ~name:(p "namecache.hit_ratio") ~unit_:"percent"
            ~kind:Metrics.Gauge (fun () ->
              let s = Namecache.stats nc in
              let total = s.Namecache.hits + s.Namecache.misses in
              if total = 0 then nan
              else 100.0 *. fi s.Namecache.hits /. fi total)
      | None -> ());
      Metrics.register run ~name:(p "biod.queued") ~unit_:"count"
        ~kind:Metrics.Gauge (fun () -> fi (Biod.queued t.biods));
      Metrics.register run ~name:(p "biod.jobs") ~unit_:"count"
        ~kind:Metrics.Counter (fun () -> fi (Biod.jobs_run t.biods)));
  ignore (getattr_rpc t root);
  (* Lease renewal: dirty files keep their leases alive (and get told to
     vacate as soon as they are contested); clean leases just lapse. *)
  if opts.use_leases then
    Proc.spawn t.sim (fun () ->
        let rec tick () =
          Proc.sleep t.sim 2.0;
          let snapshot = Hashtbl.fold (fun _ cf acc -> cf :: acc) t.files [] in
          List.iter
            (fun cf ->
              match cf.lease with
              | Some (_, expiry) when Sim.now t.sim >= expiry ->
                  (* The lease lapsed: exclusivity can no longer be
                     assumed (the server may even have rebooted and lost
                     the lease table), so dirty data must be written back
                     before anyone else is granted a lease. *)
                  cf.lease <- None;
                  if cf.dirty_count > 0 then flush_file t cf ~wait:false
              | Some (mode, expiry) ->
                  if
                    (cf.dirty_count > 0 || cf.outstanding > 0)
                    && expiry -. Sim.now t.sim < 4.0
                  then (
                    try ignore (getlease t cf mode)
                    with Nfs_error _ | Client_transport.Rpc_error _ -> ())
              | None ->
                  (* Dirty data that lost its lease must not linger. *)
                  if cf.dirty_count > 0 then flush_file t cf ~wait:false)
            snapshot;
          tick ()
        in
        tick ());
  (* The 30-second sync that pushes delayed writes. *)
  Proc.spawn t.sim (fun () ->
      let rec tick () =
        Proc.sleep t.sim syncer_interval;
        Hashtbl.iter (fun _ cf -> flush_file t cf ~wait:false) t.files;
        tick ()
      in
      tick ());
  t

exception Mount_failed of string

(* One-shot RPC exchange with the mount daemon: its own little socket
   and a fixed-timeout retry loop (mount(8) does the same). *)
let mount_path ~udp ?tcp ~server ~path opts =
  let node = Udp.node udp in
  let sim = Node.sim node in
  let sock = Udp.bind_ephemeral udp in
  let reply = ref None in
  Proc.spawn sim (fun () ->
      let rec listen () =
        let dg = Udp.recv sock in
        reply := Some dg.Udp.payload;
        listen ()
      in
      try listen () with _ -> ());
  let call = Mount_proto.Mnt path in
  let xid = 77l in
  let attempt () =
    let enc =
      Renofs_rpc.Rpc_msg.encode_call
        {
          Renofs_rpc.Rpc_msg.xid;
          prog = Mount_proto.program;
          vers = Mount_proto.version;
          proc = Mount_proto.proc_of_call call;
          cred = Renofs_rpc.Rpc_msg.Auth_null;
        }
    in
    Mount_proto.encode_call enc call;
    Udp.sendto sock ~dst:server ~dst_port:Mount_proto.port
      (Renofs_xdr.Xdr.Enc.chain enc)
  in
  let rec wait_reply tries =
    if !reply <> None then ()
    else if tries = 0 then begin
      Udp.close sock;
      raise (Mount_failed "mount daemon not responding")
    end
    else begin
      attempt ();
      let deadline = Sim.now sim +. 1.0 in
      let rec poll () =
        if !reply = None && Sim.now sim < deadline then begin
          Proc.sleep sim 0.05;
          poll ()
        end
      in
      poll ();
      if !reply = None then wait_reply (tries - 1)
    end
  in
  wait_reply 5;
  Udp.close sock;
  match !reply with
  | None -> raise (Mount_failed "mount daemon not responding")
  | Some chain -> (
      match Renofs_rpc.Rpc_msg.decode_reply chain with
      | _, Renofs_rpc.Rpc_msg.Accepted Renofs_rpc.Rpc_msg.Success, dec -> (
          match Mount_proto.decode_reply ~proc:1 dec with
          | Mount_proto.Rmnt (Mount_proto.Mnt_ok root) -> mount ~udp ?tcp ~server ~root opts
          | Mount_proto.Rmnt (Mount_proto.Mnt_error errno) ->
              raise (Mount_failed (Printf.sprintf "mount denied (errno %d)" errno))
          | _ -> raise (Mount_failed "unexpected mount reply"))
      | _ -> raise (Mount_failed "mount RPC rejected")
      | exception _ -> raise (Mount_failed "garbled mount reply"))

(* ------------------------------------------------------------------ *)
(* Reads                                                              *)
(* ------------------------------------------------------------------ *)

let install_block t _cf b (data : bytes) =
  (* Preserve any dirty range: locally-written bytes win over the
     server's copy until they are pushed. *)
  let saved =
    match b.dirty with
    | Some (lo, hi) -> Some (lo, hi, Bytes.sub b.data lo (hi - lo))
    | None -> None
  in
  Bytes.fill b.data 0 (Bytes.length b.data) '\000';
  Bytes.blit data 0 b.data 0 (Bytes.length data);
  (match saved with
  | Some (lo, hi, bytes_) -> Bytes.blit bytes_ 0 b.data lo (hi - lo)
  | None -> ());
  b.valid <- true;
  ignore t

let rec ensure_block t cf blk =
  let b = get_or_create_block t cf blk in
  match b.fetching with
  | Some iv ->
      Proc.Ivar.read iv;
      ensure_block t cf blk
  | None ->
      if not b.valid then begin
        let iv = Proc.Ivar.create t.sim in
        b.fetching <- Some iv;
        let bs = t.opts.rsize in
        let base = blk * bs in
        let buf = Bytes.create bs in
        let finish_err st =
          b.fetching <- None;
          Proc.Ivar.fill iv ();
          fail st
        in
        (* Fetch the block in [xfer_size] pieces; a short reply is EOF. *)
        let rec fetch pos =
          if pos >= bs then pos
          else begin
            let want = min (bs - pos) (max 1024 t.xfer_size) in
            match
              rpc t (P.Read { P.read_file = cf.c_fh; offset = base + pos; count = want })
            with
            | P.Rread (Ok (a, data)) ->
                Bytes.blit data 0 buf pos (Bytes.length data);
                if cf.cached_mtime = 0.0 then cf.cached_mtime <- mtime_of a;
                cf.csize <-
                  (if cf.dirty_count > 0 then max cf.csize a.P.size else a.P.size);
                note_transfer t;
                if Bytes.length data < want then pos + Bytes.length data
                else fetch (pos + Bytes.length data)
            | P.Rread (Error st) -> finish_err st
            | exception Nfs_error st -> finish_err st
            | _ -> finish_err P.NFSERR_IO
          end
        in
        let got = fetch 0 in
        install_block t cf b (Bytes.sub buf 0 got);
        b.fetching <- None;
        Proc.Ivar.fill iv ()
      end;
      b

let read_ahead t cf blk =
  if t.opts.read_ahead > 0 && Biod.count t.biods > 0 then
    for k = 1 to t.opts.read_ahead do
      let target = blk + k in
      if target * t.opts.rsize < cf.csize then begin
        let already =
          match Hashtbl.find_opt cf.blocks target with
          | Some b -> b.valid || b.fetching <> None
          | None -> false
        in
        if not already then
          Biod.submit t.biods (fun () ->
              try ignore (ensure_block t cf target) with Nfs_error _ -> ())
      end
    done

let read t fd ~off ~len =
  charge t syscall_instructions;
  if off < 0 || len < 0 then fail P.NFSERR_IO;
  let cf = fd in
  let leased = t.opts.use_leases && ensure_lease t cf P.Lease_read in
  if not leased then begin
    if t.opts.consistency && t.opts.push_dirty_before_read && cf.dirty_count > 0
    then flush_file t cf ~wait:true;
    validate t cf
  end
  else begin
    (* Serving from cache on lease authority alone: the staleness the
       invariant checker audits against live write leases. *)
    match Node.trace t.node with
    | Some tr ->
        Trace.record tr
          ~time:(Sim.now t.sim)
          ~node:(Node.id t.node)
          (Trace.Cached_read
             {
               file = cf.c_fh;
               holder = Node.id t.node;
               mtime = cf.cached_mtime;
             })
    | None -> ()
  end;
  let len = if off >= cf.csize then 0 else min len (cf.csize - off) in
  let out = Bytes.create len in
  let bs = t.opts.rsize in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blk = abs / bs in
    let b = ensure_block t cf blk in
    let in_blk = abs mod bs in
    let n = min (bs - in_blk) (len - !pos) in
    Bytes.blit b.data in_blk out !pos n;
    pos := !pos + n;
    (* Sequential access triggers read-ahead. *)
    if blk = cf.last_seq_blk + 1 || blk = cf.last_seq_blk then read_ahead t cf blk;
    cf.last_seq_blk <- blk
  done;
  charge_copy t len;
  out

(* ------------------------------------------------------------------ *)
(* Writes                                                             *)
(* ------------------------------------------------------------------ *)

let mergeable b lo hi =
  match b.dirty with
  | None -> true
  | Some (dlo, dhi) ->
      (* Overlapping or adjacent ranges always merge; disjoint ranges
         merge only when the block is fully valid (the gap bytes are
         then known data). *)
      b.valid || (lo <= dhi && hi >= dlo)

let write t fd ~off data =
  charge t syscall_instructions;
  let cf = fd in
  (* Dirty data may only be delayed under a write lease. *)
  let leased = t.opts.use_leases && ensure_lease t cf P.Lease_write in
  let len = Bytes.length data in
  charge_copy t len;
  let bs = t.opts.wsize in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blk = abs / bs in
    let lo = abs mod bs in
    let n = min (bs - lo) (len - !pos) in
    let hi = lo + n in
    let b = get_or_create_block t cf blk in
    (* A buf holds a single dirty region: push the old one first if the
       new range cannot merge with it. *)
    if not (mergeable b lo hi) then push_block t cf b ~wait:true;
    Bytes.blit data !pos b.data lo n;
    let range =
      match b.dirty with
      | Some (dlo, dhi) -> (min lo dlo, max hi dhi)
      | None -> (lo, hi)
    in
    set_dirty cf b (Some range);
    if off + len > cf.csize then cf.csize <- off + len;
    (* A block dirtied from its start to its end — or to end-of-file —
       has fully known contents. *)
    (match b.dirty with
    | Some (0, dhi) when dhi = bs || (blk * bs) + dhi >= cf.csize -> b.valid <- true
    | _ -> ());
    (match t.opts.write_policy with
    | Write_through -> push_block t cf b ~wait:true
    | Async -> push_block t cf b ~wait:false
    | Delayed ->
        (* Asynchronous for full blocks, delayed for partial ones —
           unless the mount delays everything. *)
        let dlo, dhi = match b.dirty with Some r -> r | None -> (0, 0) in
        if dlo = 0 && dhi = bs && not (t.opts.delay_full_blocks || leased) then
          push_block t cf b ~wait:false);
    pos := !pos + n
  done

(* ------------------------------------------------------------------ *)
(* Open / close / attributes                                          *)
(* ------------------------------------------------------------------ *)

let stat t path =
  charge t syscall_instructions;
  let fh = walk t path in
  get_attrs t fh

let open_ t path =
  charge t syscall_instructions;
  let fh = walk t path in
  let a = get_attrs t fh in
  if a.P.ftype = P.NFDIR then fail P.NFSERR_ISDIR;
  let cf = cfile_of t fh ~attr:(Some a) in
  validate t cf;
  cf.open_count <- cf.open_count + 1;
  cf

let create t path =
  charge t syscall_instructions;
  let dir, name = walk_parent t path in
  match
    rpc t
      (P.Create
         {
           P.where = { P.dir; name };
           attributes = { P.sattr_none with P.s_mode = 0o644; s_size = 0 };
         })
  with
  | P.Rdirop (Ok (fh, a)) ->
      name_enter t ~dir name fh;
      (* Truncation by create: discard any cached data. *)
      (match Hashtbl.find_opt t.files fh with
      | Some old ->
          Hashtbl.iter
            (fun _ b ->
              set_dirty old b None;
              (* Truncation discards the ledger too: the data is gone by
                 request, nothing is left to replay. *)
              b.needs_commit <- None)
            old.blocks;
          invalidate_clean t old;
          old.csize <- 0;
          old.cached_mtime <- mtime_of a
      | None -> ());
      let cf = cfile_of t fh ~attr:(Some a) in
      cf.cached_mtime <- mtime_of a;
      cf.csize <- a.P.size;
      cf.open_count <- cf.open_count + 1;
      cf
  | P.Rdirop (Error st) -> fail st
  | _ -> fail P.NFSERR_IO

let fsync t fd =
  charge t syscall_instructions;
  commit_file t fd;
  match fd.write_error with
  | Some st ->
      fd.write_error <- None;
      fail st
  | None -> ()

(* Forget everything cached about a file (it is going away). *)
let drop_cfile t fh =
  match Hashtbl.find_opt t.files fh with
  | Some cf ->
      t.total_blocks <- t.total_blocks - Hashtbl.length cf.blocks;
      Hashtbl.remove t.files fh
  | None -> ()

let close t fd =
  charge t syscall_instructions;
  if fd.open_count > 0 then fd.open_count <- fd.open_count - 1;
  (* The last close of a silly-renamed file finally removes it. *)
  (if fd.open_count = 0 then
     match fd.silly with
     | Some (dir, name) ->
         fd.silly <- None;
         (match rpc t (P.Remove { P.dir; name }) with
         | P.Rstat _ -> ()
         | _ -> ());
         name_remove t ~dir name;
         drop_cfile t fd.c_fh;
         Attrcache.invalidate t.attrs fd.c_fh
     | None -> ());
  if t.opts.use_leases && lease_valid t fd P.Lease_write then
    (* The write lease guarantees close/open consistency without the
       blocking push: a later opener's lease request forces our flush. *)
    ()
  else if t.opts.push_on_close && t.opts.consistency then begin
    commit_file t fd;
    match fd.write_error with
    | Some st ->
        fd.write_error <- None;
        fail st
    | None -> ()
  end

let fd_size t fd =
  validate t fd;
  fd.csize

let unlink t path =
  charge t syscall_instructions;
  let dir, name = walk_parent t path in
  (* Unlinking a file some process still has open: the stateless server
     would free the inode and later reads would see ESTALE, so the BSD
     client renames it out of the way and removes it at the last close
     — the silly rename. *)
  let open_cfile =
    match
      (match t.names with Some nc -> Namecache.lookup nc ~dir name | None -> None)
    with
    | Some fh -> (
        match Hashtbl.find_opt t.files fh with
        | Some cf when cf.open_count > 0 -> Some cf
        | _ -> None)
    | None -> None
  in
  match open_cfile with
  | Some cf -> (
      let silly_name = Printf.sprintf ".nfs%04d" cf.c_fh in
      match
        rpc t
          (P.Rename
             { P.from_dir = { P.dir; name }; to_dir = { P.dir; name = silly_name } })
      with
      | P.Rstat P.NFS_OK ->
          name_remove t ~dir name;
          cf.silly <- Some (dir, silly_name)
      | P.Rstat st -> fail st
      | _ -> fail P.NFSERR_IO)
  | None -> (
      let doomed =
        match t.names with
        | Some nc -> Namecache.lookup nc ~dir name
        | None -> None
      in
      match rpc t (P.Remove { P.dir; name }) with
      | P.Rstat P.NFS_OK ->
          name_remove t ~dir name;
          (match doomed with
          | Some fh ->
              drop_cfile t fh;
              Attrcache.invalidate t.attrs fh
          | None -> ())
      | P.Rstat st -> fail st
      | _ -> fail P.NFSERR_IO)

let mkdir t path =
  charge t syscall_instructions;
  let dir, name = walk_parent t path in
  match
    rpc t
      (P.Mkdir
         { P.where = { P.dir; name }; attributes = { P.sattr_none with P.s_mode = 0o755 } })
  with
  | P.Rdirop (Ok (fh, _)) -> name_enter t ~dir name fh
  | P.Rdirop (Error st) -> fail st
  | _ -> fail P.NFSERR_IO

let rmdir t path =
  charge t syscall_instructions;
  let dir, name = walk_parent t path in
  match rpc t (P.Rmdir { P.dir; name }) with
  | P.Rstat P.NFS_OK -> (
      match t.names with
      | Some nc ->
          (match Namecache.lookup nc ~dir name with
          | Some fh ->
              Namecache.invalidate_dir nc fh;
              Hashtbl.remove t.name_stamps fh
          | None -> ());
          Namecache.remove nc ~dir name
      | None -> ())
  | P.Rstat st -> fail st
  | _ -> fail P.NFSERR_IO

let rename t src dst =
  charge t syscall_instructions;
  let sdir, sname = walk_parent t src in
  let ddir, dname = walk_parent t dst in
  match
    rpc t (P.Rename { P.from_dir = { P.dir = sdir; name = sname };
                      to_dir = { P.dir = ddir; name = dname } })
  with
  | P.Rstat P.NFS_OK -> (
      match t.names with
      | Some nc ->
          (match Namecache.lookup nc ~dir:sdir sname with
          | Some fh -> name_enter t ~dir:ddir dname fh
          | None -> ());
          Namecache.remove nc ~dir:sdir sname
      | None -> ())
  | P.Rstat st -> fail st
  | _ -> fail P.NFSERR_IO

let symlink t path ~target =
  charge t syscall_instructions;
  let dir, name = walk_parent t path in
  match
    rpc t
      (P.Symlink
         { P.sym_where = { P.dir; name }; sym_target = target; sym_attr = P.sattr_none })
  with
  | P.Rstat P.NFS_OK -> ()
  | P.Rstat st -> fail st
  | _ -> fail P.NFSERR_IO

let readlink t path =
  charge t syscall_instructions;
  let dir, name = walk_parent t path in
  let fh = lookup_component t dir name in
  readlink_rpc t fh

let link t ~existing path =
  charge t syscall_instructions;
  let src = walk t existing in
  let dir, name = walk_parent t path in
  match rpc t (P.Link { P.link_from = src; link_to = { P.dir; name } }) with
  | P.Rstat P.NFS_OK ->
      (* The v2 link reply carries no attributes and nlink changed:
         invalidate, as the BSD client zaps n_attrstamp here. *)
      Attrcache.invalidate t.attrs src;
      name_enter t ~dir name src
  | P.Rstat st -> fail st
  | _ -> fail P.NFSERR_IO

let readdir t path =
  charge t syscall_instructions;
  let dir = walk t path in
  let rec page cookie acc =
    if t.opts.use_readdirlook then begin
      match rpc t (P.Readdirlook { P.rd_dir = dir; cookie; rd_count = 8192 }) with
      | P.Rreaddirlook (Ok (ents, eof)) ->
          (* Prefetch: each entry's handle and attributes feed the name
             and attribute caches, saving later lookup/getattr RPCs. *)
          List.iter
            (fun le ->
              name_enter t ~dir le.P.le_entry.P.entry_name le.P.le_file;
              Attrcache.update t.attrs le.P.le_file le.P.le_attr)
            ents;
          let acc = List.rev_append (List.map (fun le -> le.P.le_entry.P.entry_name) ents) acc in
          if eof then List.rev acc
          else
            let next =
              match List.rev ents with
              | last :: _ -> last.P.le_entry.P.entry_cookie
              | [] -> cookie
            in
            page next acc
      | P.Rreaddirlook (Error st) -> fail st
      | _ -> fail P.NFSERR_IO
    end
    else begin
      match rpc t (P.Readdir { P.rd_dir = dir; cookie; rd_count = 8192 }) with
      | P.Rreaddir (Ok (entries, eof)) ->
          let acc = List.rev_append (List.map (fun e -> e.P.entry_name) entries) acc in
          if eof then List.rev acc
          else
            let next =
              match List.rev entries with
              | last :: _ -> last.P.entry_cookie
              | [] -> cookie
            in
            page next acc
      | P.Rreaddir (Error st) -> fail st
      | _ -> fail P.NFSERR_IO
    end
  in
  page 0 []

let statfs t =
  charge t syscall_instructions;
  match rpc t (P.Statfs t.root) with
  | P.Rstatfs (Ok s) -> s
  | P.Rstatfs (Error st) -> fail st
  | _ -> fail P.NFSERR_IO

let flush_all t =
  Hashtbl.iter (fun _ cf -> flush_file t cf ~wait:false) t.files;
  Hashtbl.iter (fun _ cf -> wait_outstanding cf) t.files;
  if t.opts.v3 then
    Hashtbl.iter (fun _ cf -> commit_file t cf) t.files

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

let current_transfer_size t = t.xfer_size

let dirty_blocks t = Hashtbl.fold (fun _ cf acc -> acc + cf.dirty_count) t.files 0
let cached_blocks t = t.total_blocks

let name_cache_stats t =
  match t.names with
  | Some nc ->
      let s = Namecache.stats nc in
      Some (s.Namecache.hits, s.Namecache.misses)
  | None -> None

let attr_cache_stats t = (Attrcache.hits t.attrs, Attrcache.misses t.attrs)
