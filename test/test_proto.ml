(* Wire-level tests for the NFSv2 protocol encoding: exhaustive
   call/reply roundtrips, golden byte layouts against RFC 1094, and
   malformed-input rejection. *)

open Renofs_core
module Mbuf = Renofs_mbuf.Mbuf
module Xdr = Renofs_xdr.Xdr
module P = Nfs_proto

let encode_call call =
  let enc = Xdr.Enc.create () in
  P.encode_call enc call;
  Xdr.Enc.chain enc

let roundtrip_call call =
  let chain = encode_call call in
  P.decode_call ~proc:(P.proc_of_call call) (Xdr.Dec.create chain)

let encode_reply reply =
  let enc = Xdr.Enc.create () in
  P.encode_reply enc reply;
  Xdr.Enc.chain enc

let roundtrip_reply ~proc reply =
  P.decode_reply ~proc (Xdr.Dec.create (encode_reply reply))

let sample_time = { P.seconds = 123456; useconds = 654321 }

let sample_fattr =
  {
    P.ftype = P.NFREG;
    mode = 0o644;
    nlink = 2;
    uid = 100;
    gid = 20;
    size = 8192;
    blocksize = 8192;
    rdev = 0;
    blocks = 16;
    fsid = 1;
    fileid = 42;
    atime = sample_time;
    mtime = sample_time;
    ctime = sample_time;
  }

let sample_sattr =
  { P.s_mode = 0o600; s_uid = 1; s_gid = 2; s_size = 100; s_atime = Some sample_time;
    s_mtime = None }

let all_calls =
  [
    P.Null;
    P.Getattr 7;
    P.Setattr (8, sample_sattr);
    P.Setattr (9, P.sattr_none);
    P.Lookup { P.dir = 2; name = "file.txt" };
    P.Readlink 11;
    P.Read { P.read_file = 12; offset = 16384; count = 8192 };
    P.Write { P.write_file = 13; write_offset = 4096; data = Bytes.make 1000 'w' };
    P.Create { P.where = { P.dir = 2; name = "new" }; attributes = sample_sattr };
    P.Remove { P.dir = 2; name = "gone" };
    P.Rename
      {
        P.from_dir = { P.dir = 2; name = "a" };
        to_dir = { P.dir = 3; name = "b" };
      };
    P.Link { P.link_from = 14; link_to = { P.dir = 2; name = "alias" } };
    P.Symlink
      { P.sym_where = { P.dir = 2; name = "ln" }; sym_target = "/else/where";
        sym_attr = P.sattr_none };
    P.Mkdir { P.where = { P.dir = 2; name = "d" }; attributes = P.sattr_none };
    P.Rmdir { P.dir = 2; name = "d" };
    P.Readdir { P.rd_dir = 2; cookie = 10; rd_count = 4096 };
    P.Statfs 2;
    P.Readdirlook { P.rd_dir = 2; cookie = 0; rd_count = 8192 };
    P.Getlease { P.lease_file = 5; lease_mode = P.Lease_write; lease_duration = 6 };
    P.Getlease { P.lease_file = 6; lease_mode = P.Lease_read; lease_duration = 30 };
    P.Write3
      { P.w3_file = 13; w3_offset = 65536; w3_stable = P.Unstable;
        w3_data = Bytes.make 32768 'u' };
    P.Write3
      { P.w3_file = 13; w3_offset = 0; w3_stable = P.Data_sync;
        w3_data = Bytes.make 1 'd' };
    P.Write3
      { P.w3_file = 14; w3_offset = 4096; w3_stable = P.File_sync;
        w3_data = Bytes.empty };
    P.Commit { P.cm_file = 13; cm_offset = 0; cm_count = 0 };
    P.Commit { P.cm_file = 13; cm_offset = 8192; cm_count = 32768 };
  ]

let all_replies =
  [
    (0, P.Rnull);
    (1, P.Rattr (Ok sample_fattr));
    (1, P.Rattr (Error P.NFSERR_STALE));
    (2, P.Rattr (Ok sample_fattr));
    (8, P.Rattr (Error P.NFSERR_FBIG));
    (4, P.Rdirop (Ok (99, sample_fattr)));
    (4, P.Rdirop (Error P.NFSERR_NOENT));
    (9, P.Rdirop (Ok (100, sample_fattr)));
    (14, P.Rdirop (Error P.NFSERR_EXIST));
    (5, P.Rreadlink (Ok "/target/path"));
    (5, P.Rreadlink (Error P.NFSERR_IO));
    (6, P.Rread (Ok (sample_fattr, Bytes.make 8192 'r')));
    (6, P.Rread (Ok (sample_fattr, Bytes.empty)));
    (6, P.Rread (Error P.NFSERR_STALE));
    (10, P.Rstat P.NFS_OK);
    (11, P.Rstat P.NFSERR_ACCES);
    (15, P.Rstat P.NFSERR_NOTEMPTY);
    ( 16,
      P.Rreaddir
        (Ok
           ( [
               { P.fileid = 3; entry_name = "x"; entry_cookie = 1 };
               { P.fileid = 4; entry_name = "a-much-longer-name"; entry_cookie = 2 };
             ],
             false )) );
    (16, P.Rreaddir (Ok ([], true)));
    (16, P.Rreaddir (Error P.NFSERR_NOTDIR));
    ( 17,
      P.Rstatfs
        (Ok { P.tsize = 8192; bsize = 8192; blocks_total = 1000; blocks_free = 400;
              blocks_avail = 400 }) );
    ( 18,
      P.Rreaddirlook
        (Ok
           ( [
               {
                 P.le_entry = { P.fileid = 3; entry_name = "x"; entry_cookie = 1 };
                 le_file = 3;
                 le_attr = sample_fattr;
               };
             ],
             true )) );
    (19, P.Rlease (Ok (Some { P.granted_duration = 6; lease_attr = sample_fattr })));
    (19, P.Rlease (Ok None));
    (19, P.Rlease (Error P.NFSERR_STALE));
    ( 20,
      P.Rwrite3
        (Ok
           { P.w3_attr = sample_fattr; w3_count = 32768;
             w3_committed = P.Unstable; w3_verf = 0x1234_5678 }) );
    ( 20,
      P.Rwrite3
        (Ok
           { P.w3_attr = sample_fattr; w3_count = 1; w3_committed = P.File_sync;
             w3_verf = 1 }) );
    (20, P.Rwrite3 (Error P.NFSERR_IO));
    (21, P.Rcommit (Ok { P.cmo_attr = sample_fattr; cmo_verf = 0x3FFF_FFFF }));
    (21, P.Rcommit (Error P.NFSERR_STALE));
  ]

let test_call_roundtrips () =
  List.iter
    (fun call ->
      let got = roundtrip_call call in
      Alcotest.(check bool)
        (Printf.sprintf "call %s roundtrips" (P.proc_name (P.proc_of_call call)))
        true (got = call))
    all_calls

let test_reply_roundtrips () =
  List.iter
    (fun (proc, reply) ->
      let got = roundtrip_reply ~proc reply in
      Alcotest.(check bool)
        (Printf.sprintf "reply for %s roundtrips" (P.proc_name proc))
        true (got = reply))
    all_replies

let test_alignment () =
  List.iter
    (fun call ->
      Alcotest.(check int) "call 4-aligned" 0 (Mbuf.length (encode_call call) mod 4))
    all_calls;
  List.iter
    (fun (_, reply) ->
      Alcotest.(check int) "reply 4-aligned" 0 (Mbuf.length (encode_reply reply) mod 4))
    all_replies

(* Golden wire layouts against RFC 1094. *)

let test_golden_getattr_call () =
  (* GETATTR args = one 32-byte fhandle. *)
  let b = Mbuf.to_bytes (encode_call (P.Getattr 0x0102)) in
  Alcotest.(check int) "length" 32 (Bytes.length b);
  Alcotest.(check int32) "ino in first word" 0x0102l (Bytes.get_int32_be b 0);
  for i = 4 to 31 do
    Alcotest.(check char) "zero padding" '\000' (Bytes.get b i)
  done

let test_golden_read_call () =
  (* READ args: fhandle(32) + offset(4) + count(4) + totalcount(4). *)
  let b =
    Mbuf.to_bytes (encode_call (P.Read { P.read_file = 5; offset = 8192; count = 4096 }))
  in
  Alcotest.(check int) "length" 44 (Bytes.length b);
  Alcotest.(check int32) "offset" 8192l (Bytes.get_int32_be b 32);
  Alcotest.(check int32) "count" 4096l (Bytes.get_int32_be b 36)

let test_golden_lookup_call () =
  (* LOOKUP: fhandle(32) + string length(4) + name + pad. *)
  let b = Mbuf.to_bytes (encode_call (P.Lookup { P.dir = 2; name = "abc" })) in
  Alcotest.(check int) "length 32+4+4" 40 (Bytes.length b);
  Alcotest.(check int32) "name length" 3l (Bytes.get_int32_be b 32);
  Alcotest.(check string) "name bytes" "abc" (Bytes.to_string (Bytes.sub b 36 3));
  Alcotest.(check char) "pad" '\000' (Bytes.get b 39)

let test_golden_error_reply () =
  (* An error attrstat is just the status word. *)
  let b = Mbuf.to_bytes (encode_reply (P.Rattr (Error P.NFSERR_NOENT))) in
  Alcotest.(check int) "length" 4 (Bytes.length b);
  Alcotest.(check int32) "ENOENT = 2" 2l (Bytes.get_int32_be b 0)

let test_golden_sattr_dont_set () =
  (* Unset sattr fields are 0xffffffff on the wire. *)
  let b = Mbuf.to_bytes (encode_call (P.Setattr (1, P.sattr_none))) in
  (* fhandle(32) + mode uid gid size (4 each) + atime(8) + mtime(8) *)
  Alcotest.(check int) "length" 64 (Bytes.length b);
  for word = 8 to 15 do
    Alcotest.(check int32) "all -1" (-1l) (Bytes.get_int32_be b (word * 4))
  done

(* Malformed input. *)

let test_unknown_proc_rejected () =
  let chain = encode_call P.Null in
  Alcotest.check_raises "proc 99" (Xdr.Decode_error "unknown NFS procedure 99")
    (fun () -> ignore (P.decode_call ~proc:99 (Xdr.Dec.create chain)))

let test_oversized_read_count_rejected () =
  let enc = Xdr.Enc.create () in
  P.encode_call enc (P.Read { P.read_file = 1; offset = 0; count = 8192 });
  (* Rebuild with an oversized count by hand. *)
  let enc2 = Xdr.Enc.create () in
  let b = Bytes.make 32 '\000' in
  Xdr.Enc.opaque_fixed enc2 b;
  Xdr.Enc.int enc2 0;
  Xdr.Enc.int enc2 1_000_000;
  Xdr.Enc.int enc2 0;
  match P.decode_call ~proc:6 (Xdr.Dec.create (Xdr.Enc.chain enc2)) with
  | exception Xdr.Decode_error _ -> ()
  | _ -> Alcotest.fail "giant read count accepted"

let test_truncated_call_rejected () =
  let chain = encode_call (P.Lookup { P.dir = 2; name = "abcdef" }) in
  let truncated, _ = Mbuf.split chain 20 in
  match P.decode_call ~proc:4 (Xdr.Dec.create truncated) with
  | exception Xdr.Decode_error _ -> ()
  | _ -> Alcotest.fail "truncated lookup accepted"

let test_bad_stat_rejected () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.enum enc 9999;
  match P.decode_reply ~proc:10 (Xdr.Dec.create (Xdr.Enc.chain enc)) with
  | exception Xdr.Decode_error _ -> ()
  | _ -> Alcotest.fail "bad nfsstat accepted"

(* Classification tables. *)

let test_classification () =
  Alcotest.(check bool) "read is big" true (P.classify 6 = `Big);
  Alcotest.(check bool) "write is big" true (P.classify 8 = `Big);
  Alcotest.(check bool) "readdir is big" true (P.classify 16 = `Big);
  Alcotest.(check bool) "write3 is big" true (P.classify 20 = `Big);
  Alcotest.(check bool) "lookup is small" true (P.classify 4 = `Small);
  Alcotest.(check bool) "getattr is small" true (P.classify 1 = `Small);
  Alcotest.(check bool) "commit is small" true (P.classify 21 = `Small)

let test_idempotency_table () =
  (* COMMIT is idempotent (re-flushing flushed data is harmless);
     WRITE3 is not — an UNSTABLE write replayed after an intervening
     overlapping write would resurrect old bytes, so the duplicate
     cache must absorb the retransmission. *)
  List.iter
    (fun proc ->
      Alcotest.(check bool) (P.proc_name proc ^ " idempotent") true (P.is_idempotent proc))
    [ 0; 1; 4; 5; 6; 16; 17; 18; 19; 21 ];
  List.iter
    (fun proc ->
      Alcotest.(check bool)
        (P.proc_name proc ^ " not idempotent")
        false (P.is_idempotent proc))
    [ 2; 8; 9; 10; 11; 12; 13; 14; 15; 20 ]

let test_time_conversion () =
  let t = P.time_of_float 12.25 in
  Alcotest.(check int) "seconds" 12 t.P.seconds;
  Alcotest.(check int) "useconds" 250000 t.P.useconds;
  Alcotest.(check (float 1e-6)) "roundtrip" 12.25 (P.float_of_time t)

(* Property: arbitrary read/write payloads round trip. *)

let prop_write_payload_roundtrip =
  QCheck.Test.make ~name:"write args roundtrip arbitrary payloads" ~count:200
    QCheck.(
      triple (int_bound 0xFFFFFF) (int_bound 0xFFFFFF)
        (map Bytes.of_string (string_of_size (Gen.int_bound 8192))))
    (fun (fh, off, data) ->
      let call = P.Write { P.write_file = fh; write_offset = off; data } in
      roundtrip_call call = call)

let prop_readdir_entries_roundtrip =
  QCheck.Test.make ~name:"readdir entries roundtrip" ~count:100
    QCheck.(
      pair bool
        (list_of_size (Gen.int_bound 30)
           (pair (int_bound 100000) (string_of_size (Gen.int_range 1 64)))))
    (fun (eof, raw) ->
      let entries =
        List.mapi
          (fun i (fid, name) -> { P.fileid = fid; entry_name = name; entry_cookie = i })
          raw
      in
      let reply = P.Rreaddir (Ok (entries, eof)) in
      roundtrip_reply ~proc:16 reply = reply)

let () =
  Alcotest.run "proto"
    [
      ( "roundtrips",
        [
          Alcotest.test_case "all calls" `Quick test_call_roundtrips;
          Alcotest.test_case "all replies" `Quick test_reply_roundtrips;
          Alcotest.test_case "alignment" `Quick test_alignment;
        ] );
      ( "golden",
        [
          Alcotest.test_case "getattr call" `Quick test_golden_getattr_call;
          Alcotest.test_case "read call" `Quick test_golden_read_call;
          Alcotest.test_case "lookup call" `Quick test_golden_lookup_call;
          Alcotest.test_case "error reply" `Quick test_golden_error_reply;
          Alcotest.test_case "sattr don't-set" `Quick test_golden_sattr_dont_set;
        ] );
      ( "malformed",
        [
          Alcotest.test_case "unknown proc" `Quick test_unknown_proc_rejected;
          Alcotest.test_case "oversized read" `Quick test_oversized_read_count_rejected;
          Alcotest.test_case "truncated call" `Quick test_truncated_call_rejected;
          Alcotest.test_case "bad stat" `Quick test_bad_stat_rejected;
        ] );
      ( "tables",
        [
          Alcotest.test_case "big/small classes" `Quick test_classification;
          Alcotest.test_case "idempotency" `Quick test_idempotency_table;
          Alcotest.test_case "time conversion" `Quick test_time_conversion;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_write_payload_roundtrip; prop_readdir_entries_roundtrip ] );
    ]
