type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let suspend register = Effect.perform (Suspend register)

let handler =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun () -> continue k ()))
        | _ -> None);
  }

let run body = Effect.Deep.match_with body () handler
let spawn sim body = Sim.after sim 0.0 (fun () -> run body)

let sleep sim duration =
  suspend (fun resume -> Sim.after sim duration resume)

let yield sim = sleep sim 0.0

module Ivar = struct
  type 'a state = Empty of (unit -> unit) list | Full of 'a
  type 'a t = { sim : Sim.t; mutable state : 'a state }

  let create sim = { sim; state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already full"
    | Empty waiters ->
        t.state <- Full v;
        List.iter (fun resume -> Sim.after t.sim 0.0 resume) (List.rev waiters)

  let is_full t = match t.state with Full _ -> true | Empty _ -> false
  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ ->
        suspend (fun resume ->
            match t.state with
            | Full _ -> Sim.after t.sim 0.0 resume
            | Empty waiters -> t.state <- Empty (resume :: waiters));
        (match t.state with
        | Full v -> v
        | Empty _ -> assert false)
end

module Mailbox = struct
  type 'a t = {
    sim : Sim.t;
    items : 'a Queue.t;
    mutable waiters : (unit -> unit) list;
  }

  let create sim = { sim; items = Queue.create (); waiters = [] }

  let send t v =
    Queue.add v t.items;
    match t.waiters with
    | [] -> ()
    | resume :: rest ->
        t.waiters <- rest;
        Sim.after t.sim 0.0 resume

  let try_recv t = Queue.take_opt t.items
  let length t = Queue.length t.items

  let rec recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None ->
        suspend (fun resume -> t.waiters <- t.waiters @ [ resume ]);
        recv t
end

module Semaphore = struct
  type t = {
    sim : Sim.t;
    mutable count : int;
    mutable waiters : (unit -> unit) list;
  }

  let create sim count =
    if count < 0 then invalid_arg "Semaphore.create: negative count";
    { sim; count; waiters = [] }

  let rec acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else begin
      suspend (fun resume -> t.waiters <- t.waiters @ [ resume ]);
      acquire t
    end

  let release t =
    t.count <- t.count + 1;
    match t.waiters with
    | [] -> ()
    | resume :: rest ->
        t.waiters <- rest;
        Sim.after t.sim 0.0 resume

  let available t = t.count
end
