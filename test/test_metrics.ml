module Sim = Renofs_engine.Sim
module Stats = Renofs_engine.Stats
module Metrics = Renofs_metrics.Metrics

let check_points = Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))

(* Drive a sim in [~until] windows the way the experiment drivers do;
   the sampler tick reschedules itself forever, so a bare [Sim.run]
   would never return. *)
let drive sim until = Sim.run ~until sim

let test_sampling_tick () =
  let sim = Sim.create () in
  let t = Metrics.create ~interval:1.0 () in
  let run = Metrics.start_run t ~sim ~label:"cell" in
  let level = ref 0.0 in
  Metrics.register run ~name:"level" ~unit_:"count" ~kind:Metrics.Gauge (fun () -> !level);
  Sim.at sim 1.5 (fun () -> level := 4.0);
  drive sim 3.2;
  match Metrics.series t with
  | [ s ] ->
      Alcotest.(check string) "run label" "cell" s.Metrics.e_run;
      Alcotest.(check string) "name" "level" s.Metrics.e_name;
      Alcotest.(check string) "unit" "count" s.Metrics.e_unit;
      (* ticks at 1,2,3 (the tick starting the run fires one interval in) *)
      check_points "sampled on the grid"
        [ (1.0, 0.0); (2.0, 4.0); (3.0, 4.0) ]
        s.Metrics.e_points
  | l -> Alcotest.failf "expected 1 series, got %d" (List.length l)

let test_nonfinite_skipped () =
  let sim = Sim.create () in
  let t = Metrics.create ~interval:1.0 () in
  let run = Metrics.start_run t ~sim ~label:"cell" in
  let v = ref Float.nan in
  Metrics.register run ~name:"srtt" ~unit_:"ms" ~kind:Metrics.Gauge (fun () -> !v);
  Sim.at sim 1.5 (fun () -> v := 7.0);
  drive sim 3.2;
  let s = List.hd (Metrics.series t) in
  check_points "nan before first estimate skipped" [ (2.0, 7.0); (3.0, 7.0) ]
    s.Metrics.e_points

let test_enable_gate () =
  let sim = Sim.create () in
  let t = Metrics.create ~interval:1.0 () in
  let run = Metrics.start_run t ~sim ~label:"cell" in
  Metrics.register run ~name:"g" ~unit_:"count" ~kind:Metrics.Gauge (fun () -> 1.0);
  Metrics.set_enabled t false;
  drive sim 2.5;
  Metrics.set_enabled t true;
  drive sim 4.5;
  let s = List.hd (Metrics.series t) in
  check_points "warmup excluded" [ (3.0, 1.0); (4.0, 1.0) ] s.Metrics.e_points

let test_histogram_quantiles () =
  let sim = Sim.create () in
  let t = Metrics.create ~interval:1.0 () in
  let run = Metrics.start_run t ~sim ~label:"cell" in
  let h = Stats.Hist.create ~bucket_width:1.0 ~buckets:100 in
  Metrics.register_hist run ~name:"svc" ~unit_:"ms" h;
  Sim.at sim 0.5 (fun () ->
      for i = 1 to 100 do
        Stats.Hist.add h (float_of_int i)
      done);
  drive sim 1.5;
  let names = List.map (fun s -> s.Metrics.e_name) (Metrics.series t) in
  Alcotest.(check (list string)) "p50/p95 series" [ "svc/p50"; "svc/p95" ] names;
  let p50 = List.hd (Metrics.series t) in
  Alcotest.(check int) "empty hist at t=0 contributes nothing, one point after" 1
    (List.length p50.Metrics.e_points)

let test_label_uniquified () =
  let sim = Sim.create () in
  let t = Metrics.create () in
  let r1 = Metrics.start_run t ~sim ~label:"cell" in
  let r2 = Metrics.start_run t ~sim ~label:"cell" in
  Metrics.register r1 ~name:"a" ~unit_:"count" ~kind:Metrics.Gauge (fun () -> 0.0);
  Metrics.register r2 ~name:"a" ~unit_:"count" ~kind:Metrics.Gauge (fun () -> 0.0);
  match Metrics.series t with
  | [ s1; s2 ] ->
      Alcotest.(check string) "first keeps label" "cell" s1.Metrics.e_run;
      Alcotest.(check string) "second suffixed" "cell#2" s2.Metrics.e_run
  | l -> Alcotest.failf "expected 2 series, got %d" (List.length l)

let test_merge_order () =
  let mk label =
    let sim = Sim.create () in
    let t = Metrics.create ~interval:1.0 () in
    let run = Metrics.start_run t ~sim ~label in
    Metrics.register run ~name:"g" ~unit_:"count" ~kind:Metrics.Gauge (fun () -> 1.0);
    drive sim 1.5;
    t
  in
  let a = mk "cell-a" and b = mk "cell-b" in
  let into = Metrics.create ~interval:1.0 () in
  Metrics.merge ~into a;
  Metrics.merge ~into b;
  let runs = List.map (fun s -> s.Metrics.e_run) (Metrics.series into) in
  Alcotest.(check (list string)) "cell order preserved" [ "cell-a"; "cell-b" ] runs;
  Alcotest.(check int) "sources drained" 0 (List.length (Metrics.series a))

let with_temp f =
  let path = Filename.temp_file "renofs_metrics" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_series_labels () =
  let sim = Sim.create () in
  let t = Metrics.create ~interval:0.5 () in
  let run = Metrics.start_run t ~sim ~label:"cell" in
  Metrics.register ~labels:[ ("server", "server1") ] run ~name:"srv.served"
    ~unit_:"count" ~kind:Metrics.Counter (fun () -> 1.0);
  Metrics.register run ~name:"plain" ~unit_:"count" ~kind:Metrics.Gauge
    (fun () -> 2.0);
  drive sim 1.2;
  with_temp (fun path ->
      Metrics.export_jsonl t path;
      let labelled, plain =
        match List.filter (contains ~sub:"srv.served") (read_lines path) with
        | [ l ] -> (l, List.hd (List.filter (contains ~sub:"plain") (read_lines path)))
        | l -> Alcotest.failf "expected 1 labelled line, got %d" (List.length l)
      in
      Alcotest.(check bool) "labels member present" true
        (contains ~sub:{|"labels":{"server":"server1"}|} labelled);
      (* Unlabelled series keep the pre-label wire format. *)
      Alcotest.(check bool) "no labels member when empty" false
        (contains ~sub:"labels" plain);
      match Metrics.import_jsonl path with
      | Error e -> Alcotest.fail e
      | Ok imported ->
          let find name =
            List.find (fun s -> s.Metrics.e_name = name) imported
          in
          Alcotest.(check (list (pair string string))) "labels round-trip"
            [ ("server", "server1") ]
            (find "srv.served").Metrics.e_labels;
          Alcotest.(check (list (pair string string))) "empty labels round-trip"
            [] (find "plain").Metrics.e_labels)

let test_jsonl_roundtrip () =
  let sim = Sim.create () in
  let t = Metrics.create ~interval:0.5 () in
  let run = Metrics.start_run t ~sim ~label:"quick/udp" in
  let n = ref 0.0 in
  Metrics.register run ~name:"xport.calls" ~unit_:"count" ~kind:Metrics.Counter
    (fun () ->
      n := !n +. 1.5;
      !n);
  drive sim 2.2;
  with_temp (fun path ->
      Metrics.export_jsonl t path;
      match Metrics.import_jsonl path with
      | Error e -> Alcotest.fail e
      | Ok imported ->
          Alcotest.(check int) "one series" 1 (List.length imported);
          let s = List.hd imported and orig = List.hd (Metrics.series t) in
          Alcotest.(check string) "run" orig.Metrics.e_run s.Metrics.e_run;
          Alcotest.(check string) "name" orig.Metrics.e_name s.Metrics.e_name;
          Alcotest.(check bool) "kind" true (s.Metrics.e_kind = Metrics.Counter);
          check_points "points round-trip exactly" orig.Metrics.e_points
            s.Metrics.e_points)

let test_import_error_location () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc
        "{\"schema\":\"renofs-metrics/1\",\"interval\":0.5,\"series\":1}\n{broken\n";
      close_out oc;
      match Metrics.import_jsonl path with
      | Ok _ -> Alcotest.fail "malformed input accepted"
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "error %S carries path:line" e)
            true
            (String.length e > String.length path
            && String.sub e 0 (String.length path) = path))

let test_import_rejects_other_schema () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "{\"schema\":\"renofs-bench/1\"}\n";
      close_out oc;
      match Metrics.import_jsonl path with
      | Ok _ -> Alcotest.fail "wrong schema accepted"
      | Error _ -> ())

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "sampling tick" `Quick test_sampling_tick;
          Alcotest.test_case "non-finite skipped" `Quick test_nonfinite_skipped;
          Alcotest.test_case "enable gate" `Quick test_enable_gate;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "label uniquified" `Quick test_label_uniquified;
          Alcotest.test_case "merge order" `Quick test_merge_order;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "series labels" `Quick test_series_labels;
          Alcotest.test_case "error location" `Quick test_import_error_location;
          Alcotest.test_case "schema check" `Quick test_import_rejects_other_schema;
        ] );
    ]
