module Sim = Renofs_engine.Sim
module Cpu = Renofs_engine.Cpu
module Fs = Renofs_vfs.Fs
module Nfs_client = Renofs_core.Nfs_client

type config = { data_bytes : int; iterations : int }

let chunked_write write total =
  let rec loop off =
    if off < total then begin
      let n = min 8192 (total - off) in
      write ~off (Bytes.make n 'd');
      loop (off + n)
    end
  in
  loop 0

let run_nfs m config =
  let sim = Nfs_client.sim m in
  let t0 = Sim.now sim in
  for i = 1 to config.iterations do
    let name = Printf.sprintf "cd_%d" i in
    let fd = Nfs_client.create m name in
    if config.data_bytes > 0 then
      chunked_write (fun ~off data -> Nfs_client.write m fd ~off data) config.data_bytes;
    Nfs_client.close m fd;
    Nfs_client.unlink m name
  done;
  (Sim.now sim -. t0) /. float_of_int config.iterations *. 1000.0

let run_local sim cpu fs config =
  let root = Fs.root fs in
  let t0 = Sim.now sim in
  for i = 1 to config.iterations do
    let name = Printf.sprintf "cd_%d" i in
    let v = Fs.create_file fs ~dir:root name ~mode:0o644 () in
    if config.data_bytes > 0 then
      chunked_write (fun ~off data -> Fs.write fs v ~off data) config.data_bytes;
    (* A local close is free; the delete follows immediately. *)
    Cpu.consume cpu (Cpu.seconds_of_instructions cpu 200.0);
    Fs.remove fs ~dir:root name
  done;
  (Sim.now sim -. t0) /. float_of_int config.iterations *. 1000.0
