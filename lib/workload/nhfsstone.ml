module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Rng = Renofs_engine.Rng
module Stats = Renofs_engine.Stats
module Nfs_client = Renofs_core.Nfs_client
module Client_transport = Renofs_core.Client_transport

type op = Op_lookup | Op_read | Op_getattr | Op_write | Op_readdir

type mix = (op * float) list

let lookup_mix = [ (Op_lookup, 1.0) ]
let read_lookup_mix = [ (Op_read, 0.5); (Op_lookup, 0.5) ]

(* Nhfsstone's stock mix, restricted to the operations we generate and
   renormalised (writes at the 8% default the paper quotes).  Because
   the mix writes, the subtree changes during a run — hence the
   appendix's caveat that it must be preloaded before each test. *)
let default_mix =
  [
    (Op_lookup, 0.425);
    (Op_read, 0.275);
    (Op_getattr, 0.1625);
    (Op_write, 0.1);
    (Op_readdir, 0.0375);
  ]

type config = {
  rate : float;
  duration : float;
  children : int;
  mix : mix;
  seed : int;
}

type result = {
  offered : float;
  achieved : float;
  ops_completed : int;
  mean_rtt : float;
  rtt_by_proc : (string * float * int) list;
  retransmits : int;
  read_rate : float;
  mean_op_latency : float;
}

let pick_op rng mix =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
  let x = Rng.float rng total in
  let rec go acc = function
    | [] -> Op_lookup
    | (op, w) :: rest -> if x < acc +. w then op else go (acc +. w) rest
  in
  go 0.0 mix

let run ?latency_hist mount fileset config =
  let sim = Nfs_client.sim mount in
  let files = Array.of_list fileset.Fileset.files in
  if Array.length files = 0 then invalid_arg "Nhfsstone.run: empty fileset";
  let completed = ref 0 and reads_done = ref 0 in
  let op_latency = Stats.Welford.create () in
  (* Shared open-file table, filled lazily. *)
  let fds = Hashtbl.create 64 in
  let fd_of path =
    match Hashtbl.find_opt fds path with
    | Some fd -> fd
    | None ->
        let fd = Nfs_client.open_ mount path in
        Hashtbl.replace fds path fd;
        fd
  in
  let xport = Nfs_client.transport mount in
  let before = Client_transport.summary xport in
  let one_op rng =
    let path = files.(Rng.int rng (Array.length files)) in
    let t0 = Sim.now sim in
    let op = pick_op rng config.mix in
    (try
       match op with
       | Op_lookup | Op_getattr -> ignore (Nfs_client.stat mount path)
       | Op_read ->
           let fd = fd_of path in
           let max_blk = max 1 (fileset.Fileset.file_size / 8192) in
           let off = Rng.int rng max_blk * 8192 in
           ignore (Nfs_client.read mount fd ~off ~len:8192);
           incr reads_done
       | Op_write ->
           let fd = fd_of path in
           Nfs_client.write mount fd ~off:0 (Bytes.make 8192 'w');
           Nfs_client.fsync mount fd
       | Op_readdir -> (
           match String.index_opt path '/' with
           | Some i -> ignore (Nfs_client.readdir mount (String.sub path 0 i))
           | None -> ())
     with Nfs_client.Nfs_error _ | Client_transport.Rpc_error _ -> ());
    incr completed;
    let dt = Sim.now sim -. t0 in
    Stats.Welford.add op_latency dt;
    match latency_hist with
    | Some h -> Stats.Hist.add h (dt *. 1000.0)
    | None -> ()
  in
  let children = max 1 config.children in
  let stop_at = Sim.now sim +. config.duration in
  let child_rate = config.rate /. float_of_int children in
  let finished = ref 0 in
  let all_done = Proc.Ivar.create sim in
  for i = 1 to children do
    let crng = Rng.create (config.seed + (i * 7919)) in
    Proc.spawn sim (fun () ->
        let rec loop () =
          if Sim.now sim < stop_at then begin
            Proc.sleep sim (Rng.exponential crng (1.0 /. child_rate));
            if Sim.now sim < stop_at then one_op crng;
            loop ()
          end
        in
        loop ();
        incr finished;
        if !finished = children then Proc.Ivar.fill all_done ())
  done;
  Proc.Ivar.read all_done;
  let after = Client_transport.summary xport in
  let rtts =
    Client_transport.rtt_by_proc xport
    |> List.map (fun (name, w) -> (name, Stats.Welford.mean w, Stats.Welford.count w))
  in
  {
    offered = config.rate;
    achieved = float_of_int !completed /. config.duration;
    ops_completed = !completed;
    mean_rtt = after.Client_transport.mean_rtt;
    rtt_by_proc = rtts;
    retransmits =
      after.Client_transport.retransmits - before.Client_transport.retransmits;
    read_rate = float_of_int !reads_done /. config.duration;
    mean_op_latency = Stats.Welford.mean op_latency;
  }
