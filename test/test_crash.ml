(* Statelessness under fire: "The stateless server concept was used so
   that crash recovery is trivial" (paper, Section 1).  These tests
   crash the server mid-workload and verify that clients recover by
   retransmission alone — and that the lease extension's grace period
   keeps its promises across reboots. *)

open Renofs_core
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module P = Nfs_proto

let make_world () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Net.Topology.client in
  let ctcp = Tcp.install topo.Net.Topology.client in
  (sim, topo, server, cudp, ctcp)

let run sim body =
  let result = ref None in
  Proc.spawn sim (fun () -> result := Some (body ()));
  Sim.run ~until:36_000.0 sim;
  match !result with Some r -> r | None -> Alcotest.fail "never finished"

let mount_in (topo, server, cudp, ctcp) opts =
  Nfs_client.mount ~udp:cudp ~tcp:ctcp
    ~server:(Net.Topology.server_id topo)
    ~root:(Nfs_server.root_fhandle server)
    opts

let test_hard_mount_rides_through_crash () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "before" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "pre-crash");
      Nfs_client.close m fd;
      (* Crash in the background while the client keeps working. *)
      Proc.spawn sim (fun () -> Nfs_server.crash_and_reboot server ~downtime:5.0);
      Proc.sleep sim 0.1;
      Alcotest.(check bool) "server is down" false (Nfs_server.is_up server);
      (* The hard mount blocks and retransmits until the reboot. *)
      let t0 = Sim.now sim in
      let fd2 = Nfs_client.create m "during" in
      Nfs_client.write m fd2 ~off:0 (Bytes.of_string "post-crash");
      Nfs_client.close m fd2;
      Alcotest.(check bool) "operation stalled across downtime" true
        (Sim.now sim -. t0 >= 4.0);
      (* Synchronously-written data from before the crash survives. *)
      let back = Nfs_client.read m (Nfs_client.open_ m "before") ~off:0 ~len:100 in
      Alcotest.(check string) "stable storage survived" "pre-crash"
        (Bytes.to_string back);
      Alcotest.(check bool) "client retransmitted" true
        (Client_transport.retransmits (Nfs_client.transport m) > 0))

let test_soft_mount_errors_during_crash () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let m =
        mount_in w { Nfs_client.reno_mount with Nfs_client.soft = true; retrans = 2 }
      in
      let fd = Nfs_client.create m "f" in
      Nfs_client.close m fd;
      Proc.spawn sim (fun () -> Nfs_server.crash_and_reboot server ~downtime:60.0);
      Proc.sleep sim 0.1;
      match Nfs_client.create m "g" with
      | _ -> Alcotest.fail "soft mount succeeded against a dead server"
      | exception Nfs_client.Nfs_error P.NFSERR_IO -> ())

let test_dup_cache_loss_is_harmless_for_idempotent () =
  (* After a reboot the duplicate cache is empty; retransmitted
     idempotent calls simply re-execute.  (This is also why the paper
     worries about the non-idempotent ones on a "heavily loaded
     server".) *)
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let m = mount_in w Nfs_client.reno_mount in
      let fd = Nfs_client.create m "idem" in
      Nfs_client.write m fd ~off:0 (Bytes.make 8192 'i');
      Nfs_client.close m fd;
      Proc.spawn sim (fun () -> Nfs_server.crash_and_reboot server ~downtime:3.0);
      Proc.sleep sim 0.1;
      (* Reads spanning the crash re-execute cleanly after reboot. *)
      let back = Nfs_client.read m (Nfs_client.open_ m "idem") ~off:0 ~len:8192 in
      Alcotest.(check bytes) "read re-executed" (Bytes.make 8192 'i') back)

let test_lease_grace_period () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let a = mount_in w Nfs_client.lease_mount in
      (* A acquires a write lease and leaves delayed data behind it. *)
      let fd = Nfs_client.create a "leased" in
      Nfs_client.write a fd ~off:0 (Bytes.of_string "v1");
      Nfs_client.close a fd;
      (* Server reboots: the lease table is gone, but A's write lease
         may still be live in A's memory. *)
      Nfs_server.crash_and_reboot server ~downtime:0.5;
      (* During the grace period every lease request is refused. *)
      let b = mount_in w Nfs_client.lease_mount in
      let probe = Nfs_client.stat b "leased" in
      (match
         Client_transport.call (Nfs_client.transport b)
           (P.Getlease
              { P.lease_file = probe.P.fileid; lease_mode = P.Lease_read;
                lease_duration = 6 })
       with
      | P.Rlease (Ok None) -> ()
      | _ -> Alcotest.fail "lease granted during the grace period");
      (* A's next renewal is refused too, forcing its delayed write
         back to the server within a couple of seconds; B must also wait
         out its own attribute-cache window (staleness within the attr
         timeout is NFS-legal). *)
      Proc.sleep sim 6.0;
      let fdb = Nfs_client.open_ b "leased" in
      Alcotest.(check string) "coherent after writer flush" "v1"
        (Bytes.to_string (Nfs_client.read b fdb ~off:0 ~len:10));
      (* After the grace period leases are granted again. *)
      Proc.sleep sim 8.0;
      match
        Client_transport.call (Nfs_client.transport b)
          (P.Getlease
             { P.lease_file = probe.P.fileid; lease_mode = P.Lease_read;
               lease_duration = 6 })
      with
      | P.Rlease (Ok (Some _)) -> ()
      | _ -> Alcotest.fail "lease still refused after the grace period")

let test_tcp_mount_survives_if_connection_lives () =
  (* The reboot resets every TCP connection; the NFS-over-TCP client
     must reconnect and replay its unanswered requests ("it maintains
     the connection", paper Section 2). *)
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let m = mount_in w Nfs_client.reno_tcp_mount in
      let fd = Nfs_client.create m "tcp-pre" in
      Nfs_client.close m fd;
      Proc.spawn sim (fun () -> Nfs_server.crash_and_reboot server ~downtime:2.0);
      Proc.sleep sim 0.1;
      let fd2 = Nfs_client.create m "tcp-post" in
      Nfs_client.close m fd2;
      Alcotest.(check bool) "created after reboot" true
        ((Nfs_client.stat m "tcp-post").P.size >= 0))

let () =
  Alcotest.run "crash"
    [
      ( "statelessness",
        [
          Alcotest.test_case "hard mount rides through" `Quick
            test_hard_mount_rides_through_crash;
          Alcotest.test_case "soft mount errors" `Quick test_soft_mount_errors_during_crash;
          Alcotest.test_case "idempotent replay" `Quick
            test_dup_cache_loss_is_harmless_for_idempotent;
          Alcotest.test_case "lease grace period" `Quick test_lease_grace_period;
          Alcotest.test_case "tcp mount survives" `Quick
            test_tcp_mount_survives_if_connection_lives;
        ] );
    ]
