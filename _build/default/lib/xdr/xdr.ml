module Mbuf = Renofs_mbuf.Mbuf

exception Decode_error of string

let pad_len n = (4 - (n land 3)) land 3
let zeros = Bytes.make 4 '\000'

module Enc = struct
  type t = { chain : Mbuf.t; ctr : Mbuf.Counters.t option }

  let create ?ctr () = { chain = Mbuf.empty (); ctr }
  let chain t = t.chain
  let u32 t v = Mbuf.add_u32 ?ctr:t.ctr t.chain v

  let int t v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Xdr.Enc.int: out of range";
    u32 t (Int32.of_int (v land 0xFFFFFFFF))

  let bool t b = u32 t (if b then 1l else 0l)
  let enum t v = int t v

  let u64 t v =
    u32 t (Int64.to_int32 (Int64.shift_right_logical v 32));
    u32 t (Int64.to_int32 v)

  let opaque_fixed t b =
    Mbuf.add_bytes ?ctr:t.ctr t.chain b ~off:0 ~len:(Bytes.length b);
    let pad = pad_len (Bytes.length b) in
    if pad > 0 then Mbuf.add_bytes ?ctr:t.ctr t.chain zeros ~off:0 ~len:pad

  let opaque t b =
    int t (Bytes.length b);
    opaque_fixed t b

  let string t s = opaque t (Bytes.of_string s)
  let append_chain t other = Mbuf.append_chain t.chain other
end

module Dec = struct
  type t = Mbuf.Cursor.t

  let create chain = Mbuf.Cursor.create chain
  let remaining = Mbuf.Cursor.remaining

  let u32 t =
    try Mbuf.Cursor.u32 t
    with Mbuf.Cursor.Underrun -> raise (Decode_error "truncated u32")

  let int t =
    let v = u32 t in
    Int32.to_int v land 0xFFFFFFFF

  let bool t =
    match u32 t with
    | 0l -> false
    | 1l -> true
    | _ -> raise (Decode_error "bad bool")

  let enum t = int t

  let u64 t =
    let hi = u32 t and lo = u32 t in
    let hi64 = Int64.shift_left (Int64.of_int32 hi) 32 in
    let lo64 = Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL in
    Int64.logor hi64 lo64

  let opaque_fixed t n =
    if n < 0 then raise (Decode_error "negative opaque length");
    let body =
      try Mbuf.Cursor.bytes t n
      with Mbuf.Cursor.Underrun -> raise (Decode_error "truncated opaque")
    in
    let pad = pad_len n in
    (try Mbuf.Cursor.skip t pad
     with Mbuf.Cursor.Underrun -> raise (Decode_error "truncated padding"));
    body

  let opaque t ~max =
    let n = int t in
    if n > max then raise (Decode_error "opaque too long");
    opaque_fixed t n

  let string t ~max = Bytes.to_string (opaque t ~max)
end
