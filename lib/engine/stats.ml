module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total
end

module Hist = struct
  type t = {
    bucket_width : float;
    counts : int array; (* last slot is the overflow bucket *)
    mutable n : int;
  }

  let create ~bucket_width ~buckets =
    if bucket_width <= 0.0 || buckets <= 0 then
      invalid_arg "Hist.create: nonpositive shape";
    { bucket_width; counts = Array.make (buckets + 1) 0; n = 0 }

  let add t x =
    let slots = Array.length t.counts in
    let i = int_of_float (x /. t.bucket_width) in
    let i = if i < 0 then 0 else if i >= slots - 1 then slots - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1

  let count t = t.n

  let quantile t q =
    if t.n = 0 then invalid_arg "Hist.quantile: empty";
    if q < 0.0 || q > 1.0 then invalid_arg "Hist.quantile: q outside [0,1]";
    let target = int_of_float (ceil (q *. float_of_int t.n)) in
    let target = if target < 1 then 1 else target in
    let rec scan i acc =
      let acc = acc + t.counts.(i) in
      if acc >= target || i = Array.length t.counts - 1 then
        if i = Array.length t.counts - 1 then infinity
        else t.bucket_width *. float_of_int (i + 1)
      else scan (i + 1) acc
    in
    scan 0 0

  let to_list t =
    let slots = Array.length t.counts in
    List.init slots (fun i ->
        let bound =
          if i = slots - 1 then infinity
          else t.bucket_width *. float_of_int (i + 1)
        in
        (bound, t.counts.(i)))
end

module Timeseries = struct
  type t = { name : string; mutable rev : (float * float) list; mutable n : int }

  let create ?(name = "") () = { name; rev = []; n = 0 }
  let name t = t.name

  let add t time v =
    t.rev <- (time, v) :: t.rev;
    t.n <- t.n + 1

  let length t = t.n
  let to_list t = List.rev t.rev

  (* Successive differences over an already-ordered point list.  One
     output point per input pair, stamped at the later time, so an
     n-point series yields n-1 points and empty/singleton series yield
     []. *)
  let delta points =
    match points with
    | [] | [ _ ] -> []
    | (_, v0) :: rest ->
        let prev = ref v0 in
        List.map
          (fun (t, v) ->
            let d = v -. !prev in
            prev := v;
            (t, d))
          rest

  (* Counter -> per-second rate: delta divided by the sampling gap.
     Pairs with a nonpositive time step carry no rate information
     (duplicate timestamps from merged runs) and are skipped. *)
  let rate points =
    match points with
    | [] | [ _ ] -> []
    | (t0, v0) :: rest ->
        let prev_t = ref t0 and prev_v = ref v0 in
        List.filter_map
          (fun (t, v) ->
            let dt = t -. !prev_t and dv = v -. !prev_v in
            prev_t := t;
            prev_v := v;
            if dt > 0.0 then Some (t, dv /. dt) else None)
          rest
end

module Series = Timeseries

module Counter = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t key =
    match Hashtbl.find_opt t key with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t key (ref by)

  let get t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0
  let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let reset t = Hashtbl.reset t
end
