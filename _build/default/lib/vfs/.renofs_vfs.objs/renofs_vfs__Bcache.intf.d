lib/vfs/bcache.mli: Renofs_engine
