lib/net/nic.ml:
