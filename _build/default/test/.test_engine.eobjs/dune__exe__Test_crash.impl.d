test/test_crash.ml: Alcotest Bytes Client_transport Nfs_client Nfs_proto Nfs_server Renofs_core Renofs_engine Renofs_net Renofs_transport
