lib/net/packet.mli: Renofs_mbuf
