test/test_leases.mli:
