lib/net/node.ml: Hashtbl Ipfrag Link List Nic Packet Queue Renofs_engine Renofs_mbuf
