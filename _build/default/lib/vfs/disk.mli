(** A simple seek + rotation + transfer disk model (RD53-class by
    default), serving one request at a time.

    NFSv2 servers must push every write RPC to stable storage before
    replying — "every write RPC requires 1-3 disk writes on the server"
    (paper, Section 5) — so disk latency is load-bearing for the write
    policy experiments (Table 5). *)

type t

val create :
  Renofs_engine.Sim.t ->
  ?avg_seek:float ->
  ?avg_rotation:float ->
  ?transfer_rate:float ->
  unit ->
  t
(** Defaults model an RD53: 30 ms average seek, 8.3 ms rotational delay
    (3600 rpm), 0.6 MB/s transfer. *)

val read : t -> bytes:int -> unit
(** Block the calling process for one read I/O of [bytes]. *)

val write : t -> bytes:int -> unit

val reads : t -> int
val writes : t -> int
val busy_time : t -> float
