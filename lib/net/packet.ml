module Mbuf = Renofs_mbuf.Mbuf

type proto = Udp | Tcp

type t = {
  proto : proto;
  src : int;
  dst : int;
  src_port : int;
  dst_port : int;
  ip_id : int;
  frag_off : int;
  more : bool;
  total_data : int;
  payload : Mbuf.t;
  sum : (int * int) option;
      (* UDP checksum metadata: (data length, Internet checksum) as the
         sender computed them.  Virtual, like the UDP header it lives in:
         not counted in wire_size, carried by every fragment, verified by
         the receiving transport.  [None] = sender did not checksum. *)
}

let ip_header_bytes = 20
(* UDP's 8-byte header is virtual (ports travel as metadata); TCP needs
   sequence/ack/flag fields the metadata does not carry, so the TCP layer
   writes a real 20-byte header into the payload and we must not count it
   again here. *)
let proto_header_bytes = function Udp -> 8 | Tcp -> 0
let data_len p = Mbuf.length p.payload

let wire_size p =
  let transport = if p.frag_off = 0 then proto_header_bytes p.proto else 0 in
  ip_header_bytes + transport + data_len p

let is_fragmented p = p.more || p.frag_off > 0

let make_datagram ?sum ~proto ~src ~dst ~src_port ~dst_port ~ip_id payload =
  {
    proto;
    src;
    dst;
    src_port;
    dst_port;
    ip_id;
    frag_off = 0;
    more = false;
    total_data = Mbuf.length payload;
    payload;
    sum;
  }

let fragment p ~mtu =
  if wire_size p <= mtu then [ p ]
  else begin
    let room off =
      let transport = if off = 0 then proto_header_bytes p.proto else 0 in
      mtu - ip_header_bytes - transport
    in
    let rec go off chain acc =
      let remaining = Mbuf.length chain in
      if remaining <= room off then
        (* Final piece; preserve [more] when re-fragmenting a middle
           fragment of a larger datagram. *)
        let last = { p with frag_off = off; payload = chain } in
        List.rev (last :: acc)
      else begin
        (* Non-final fragments carry an 8-aligned number of data bytes. *)
        let take = room off land lnot 7 in
        if take <= 0 then invalid_arg "Packet.fragment: mtu too small";
        let head, rest = Mbuf.split chain take in
        let piece = { p with frag_off = off; more = true; payload = head } in
        go (off + take) rest (piece :: acc)
      end
    in
    go p.frag_off p.payload []
  end
