lib/rpc/record_mark.ml: Bytes Int32 List Renofs_mbuf
