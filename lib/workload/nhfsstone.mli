(** An Nhfsstone-style NFS load generator [Legato89].

    Offers a target RPC rate against a mounted filesystem with a given
    operation mix, from several concurrent child processes, and reports
    the achieved rate plus round-trip statistics.  As in the paper's
    Section 4 experiments, the mixes used for the transport comparison
    avoid operations that modify the subtree, so runs are repeatable
    without reloading. *)

type op = Op_lookup | Op_read | Op_getattr | Op_write | Op_readdir

type mix = (op * float) list
(** Weighted operation mixture. *)

val lookup_mix : mix
(** 100% lookup — Graphs 1, 3 and 5. *)

val read_lookup_mix : mix
(** 50/50 read/lookup — Graphs 2 and 4. *)

val default_mix : mix
(** Nhfsstone's stock mixture (lookup-dominant, 8% writes), for
    workloads beyond the paper's two; writes modify the subtree, so
    preload before every run as the appendix prescribes. *)

val bulk_mix : mix
(** Sustained bulk-transfer phases (xDFS-style file movement):
    45% read / 45% write / 10% lookup.  Heavily mutating — preload
    before every run. *)

val mix_of_name : string -> mix option
(** ["lookup"], ["read-lookup"], ["default"], ["bulk"] — the stable
    names scenario files use. *)

val mix_names : string list
(** The names {!mix_of_name} accepts, for error messages. *)

type config = {
  rate : float;  (** offered ops/second *)
  duration : float;  (** measurement interval, seconds *)
  children : int;  (** concurrent generator processes *)
  mix : mix;
  seed : int;
}

type result = {
  offered : float;
  achieved : float;  (** completed ops/second *)
  ops_completed : int;
  mean_rtt : float;  (** mean RPC round-trip over the run, seconds *)
  rtt_by_proc : (string * float * int) list;
      (** (procedure, mean RTT, samples) *)
  retransmits : int;
  read_rate : float;  (** completed read ops/second *)
  mean_op_latency : float;  (** syscall-level latency, seconds *)
}

val run :
  ?latency_hist:Renofs_engine.Stats.Hist.t ->
  Renofs_core.Nfs_client.t ->
  Fileset.t ->
  config ->
  result
(** Drive the load from inside a process; returns after [duration] of
    virtual time (plus drain).  RPC statistics are deltas over the run
    as long as the mount is fresh.  [latency_hist] additionally records
    every op's syscall-level latency in milliseconds — share one
    histogram across a population of clients to get fleet-wide
    quantiles. *)

(** {2 Rate-schedule programs}

    A time-varying load: a sequence of segments, each with its own
    offered rate (optionally a linear ramp) and operation mix.  This is
    the hook the scenario layer's diurnal curves, flash crowds and
    bulk-transfer phases compile down to. *)

type segment = {
  sg_label : string;  (** e.g. ["night"], ["peak"], for diagnostics *)
  sg_duration : float;  (** seconds of virtual time *)
  sg_rate : float;  (** offered ops/second at segment start *)
  sg_rate_end : float option;
      (** when set, the rate ramps linearly to this value over the
          segment (flash-crowd rise, diurnal shoulder) *)
  sg_mix : mix;
}

type program = {
  pg_segments : segment list;
  pg_children : int;
  pg_seed : int;
}

val program_duration : program -> float
(** Total virtual seconds over all segments. *)

val program_mean_rate : program -> float
(** Time-weighted mean offered rate (ramps count their midpoint). *)

val run_program :
  ?latency_hist:Renofs_engine.Stats.Hist.t ->
  Renofs_core.Nfs_client.t ->
  Fileset.t ->
  program ->
  result
(** As {!run}, but pacing follows the program: each child draws its
    next inter-arrival gap from the instantaneous per-child rate, an op
    uses the mix of the segment it fires in, and zero-rate segments are
    skipped to their boundary.  [offered] in the result is
    {!program_mean_rate}; [achieved] and [read_rate] divide by
    {!program_duration}.  Raises [Invalid_argument] on an empty
    program. *)
