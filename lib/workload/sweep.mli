(** Parallel execution of independent experiment cells.

    A sweep is a list of {!cell}s — self-contained [unit -> 'a]
    closures, one per (transport x load x topology x profile) point.
    Every cell builds its own simulated world ({!Renofs_engine.Sim.t},
    topology, xid space), so cells share no mutable state and can run
    on separate OCaml 5 domains.

    Determinism guarantee: {!run} reassembles results by cell index,
    never by completion order, so the output is byte-identical whatever
    [jobs] is.  Each cell's simulation is itself deterministic (no wall
    clock, no global RNG — seeds live in the cell closure), so the only
    thing parallelism may change is wall time. *)

type 'a cell
(** A unit of work: one measurement in its own world. *)

val cell : ?label:string -> (unit -> 'a) -> 'a cell
(** [cell ~label f] names [f] for diagnostics. *)

val label : 'a cell -> string

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — the default for
    an unspecified [--jobs]. *)

val run : ?jobs:int -> 'a cell list -> 'a list
(** Execute the cells across [jobs] domains (default {!default_jobs};
    clamped to [1 .. length cells] — extra domains would have no cell
    to start on).  Workers pull the next
    unstarted cell from a shared atomic counter, so long cells do not
    serialise behind short ones.  Results come back in cell order.

    If any cell raises, [run] still waits for every worker, then
    re-raises the exception of the lowest-indexed failing cell with its
    backtrace. *)
