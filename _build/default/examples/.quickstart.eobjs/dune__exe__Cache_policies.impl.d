examples/cache_policies.ml: Andrew Create_delete List Option Printf Renofs_core Renofs_engine Renofs_net Renofs_transport Renofs_workload
