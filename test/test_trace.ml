open Renofs_trace
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Net = Renofs_net
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module E = Renofs_workload.Experiments

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                        *)
(* ------------------------------------------------------------------ *)

let cwnd_at i =
  match i.Trace.ev with
  | Trace.Cwnd_update { cwnd } -> cwnd
  | _ -> Alcotest.fail "expected Cwnd_update"

let test_ring_basic () =
  let tr = Trace.create ~capacity:64 () in
  for i = 0 to 4 do
    Trace.record tr ~time:(float_of_int i) ~node:1
      (Trace.Cwnd_update { cwnd = float_of_int i })
  done;
  Alcotest.(check int) "length" 5 (Trace.length tr);
  Alcotest.(check int) "total" 5 (Trace.total tr);
  Alcotest.(check int) "dropped" 0 (Trace.dropped tr);
  Alcotest.(check (list (float 1e-9)))
    "order" [ 0.0; 1.0; 2.0; 3.0; 4.0 ]
    (List.map cwnd_at (Trace.to_list tr))

let test_ring_wraparound () =
  let tr = Trace.create ~capacity:8 () in
  for i = 0 to 19 do
    Trace.record tr ~time:(float_of_int i) ~node:1
      (Trace.Cwnd_update { cwnd = float_of_int i })
  done;
  Alcotest.(check int) "length capped" 8 (Trace.length tr);
  Alcotest.(check int) "total counts all" 20 (Trace.total tr);
  Alcotest.(check int) "dropped" 12 (Trace.dropped tr);
  (* Survivors are the newest 8, oldest first. *)
  Alcotest.(check (list (float 1e-9)))
    "survivors" [ 12.0; 13.0; 14.0; 15.0; 16.0; 17.0; 18.0; 19.0 ]
    (List.map cwnd_at (Trace.to_list tr))

let test_enabled_gate () =
  let tr = Trace.create ~capacity:8 () in
  Trace.record tr ~time:0.0 ~node:0 (Trace.Cwnd_update { cwnd = 1.0 });
  Trace.set_enabled tr false;
  Trace.record tr ~time:1.0 ~node:0 (Trace.Cwnd_update { cwnd = 2.0 });
  Alcotest.(check bool) "reports disabled" false (Trace.enabled tr);
  Trace.set_enabled tr true;
  Trace.record tr ~time:2.0 ~node:0 (Trace.Cwnd_update { cwnd = 3.0 });
  Alcotest.(check int) "gated record not counted" 2 (Trace.total tr);
  Alcotest.(check (list (float 1e-9)))
    "gated record absent" [ 1.0; 3.0 ]
    (List.map cwnd_at (Trace.to_list tr))

(* ------------------------------------------------------------------ *)
(* Span joining                                                       *)
(* ------------------------------------------------------------------ *)

let mk time ev = { Trace.time; node = 0; ev }

let test_xid_join () =
  let records =
    [
      mk 0.0 (Trace.Run_mark { label = "runA" });
      mk 1.0 (Trace.Rpc_send { xid = 1l; proc = 4 });
      mk 1.1 (Trace.Rpc_send { xid = 2l; proc = 6 });
      mk 1.05 (Trace.Srv_queue { xid = 1l; proc = 4; wait = 0.01 });
      mk 1.06 (Trace.Srv_service { xid = 1l; proc = 4; service = 0.002 });
      mk 1.08 (Trace.Rpc_reply { xid = 1l; proc = 4; rtt = 0.08 });
      mk 1.3 (Trace.Rpc_retransmit { xid = 2l; proc = 6; retry = 1; rto = 0.2 });
      mk 1.35 (Trace.Srv_queue { xid = 2l; proc = 6; wait = 0.005 });
      mk 1.36 (Trace.Srv_service { xid = 2l; proc = 6; service = 0.01 });
      mk 1.5 (Trace.Rpc_reply { xid = 2l; proc = 6; rtt = 0.2 });
      (* Unanswered send, cleared at the next mark. *)
      mk 2.0 (Trace.Rpc_send { xid = 3l; proc = 4 });
      mk 0.0 (Trace.Run_mark { label = "runB" });
      (* xids restart per run: xid 1 again, in a new segment. *)
      mk 0.5 (Trace.Rpc_send { xid = 1l; proc = 1 });
      mk 0.6 (Trace.Rpc_reply { xid = 1l; proc = 1; rtt = 0.1 });
    ]
  in
  match Trace.Report.spans records with
  | [ s1; s2; s3 ] ->
      let feq = Alcotest.(check (float 1e-9)) in
      Alcotest.(check string) "label A" "runA" s1.Trace.Report.sp_label;
      Alcotest.(check int) "proc" 4 s1.Trace.Report.sp_proc;
      feq "no-retransmit span has no rtx wait" 0.0 s1.Trace.Report.sp_rtx_wait;
      feq "srv wait" 0.01 s1.Trace.Report.sp_srv_wait;
      feq "srv service" 0.002 s1.Trace.Report.sp_srv_service;
      feq "total" 0.08 s1.Trace.Report.sp_total;
      feq "wire = total - components" 0.068 (Trace.Report.wire_time s1);
      Alcotest.(check int) "retrans counted" 1 s2.Trace.Report.sp_retrans;
      feq "rtx wait = last rtx - first send" 0.2 s2.Trace.Report.sp_rtx_wait;
      feq "total spans the reply" 0.4 s2.Trace.Report.sp_total;
      Alcotest.(check string) "label B" "runB" s3.Trace.Report.sp_label;
      feq "reused xid joins within its segment only" 0.1 s3.Trace.Report.sp_total
  | spans ->
      Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_rtx_wait_cap () =
  (* A retransmission record landing after the reply (possible in a
     hand-edited or merged trace) must not produce wait > total. *)
  let records =
    [
      mk 1.0 (Trace.Rpc_send { xid = 1l; proc = 4 });
      mk 1.4 (Trace.Rpc_retransmit { xid = 1l; proc = 4; retry = 1; rto = 0.4 });
      mk 1.5 (Trace.Rpc_reply { xid = 1l; proc = 4; rtt = 0.1 });
    ]
  in
  match Trace.Report.spans records with
  | [ s ] ->
      Alcotest.(check (float 1e-9)) "wait within total" 0.4 s.Trace.Report.sp_rtx_wait;
      Alcotest.(check bool) "wire nonnegative" true (Trace.Report.wire_time s >= 0.0)
  | _ -> Alcotest.fail "expected one span"

let test_incomplete_accounting () =
  let tr = Trace.create () in
  Trace.mark tr ~time:0.0 "x";
  Trace.record tr ~time:1.0 ~node:0 (Trace.Rpc_send { xid = 7l; proc = 4 });
  Trace.record tr ~time:2.0 ~node:0 (Trace.Rpc_send { xid = 8l; proc = 4 });
  Trace.record tr ~time:2.5 ~node:0 (Trace.Rpc_reply { xid = 8l; proc = 4; rtt = 0.5 });
  let r = Trace.Report.build tr in
  Alcotest.(check int) "complete" 1 r.Trace.Report.complete;
  Alcotest.(check int) "incomplete" 1 r.Trace.Report.incomplete;
  Alcotest.(check int) "events" 4 r.Trace.Report.events

(* ------------------------------------------------------------------ *)
(* JSONL                                                              *)
(* ------------------------------------------------------------------ *)

let every_event =
  [
    mk 0.0 (Trace.Run_mark { label = "a \"quoted\" label\n" });
    mk 1.25 (Trace.Rpc_send { xid = 17l; proc = 4 });
    mk 1.5 (Trace.Rpc_retransmit { xid = 17l; proc = 4; retry = 2; rto = 0.4375 });
    mk 1.625 (Trace.Rpc_reply { xid = 17l; proc = 4; rtt = 0.375 });
    mk 2.0 (Trace.Pkt_enqueue { link = "eth0->r1"; bytes = 1500; qlen = 3 });
    mk 2.1 (Trace.Pkt_drop { link = "serial56k"; bytes = 576; reason = Trace.Queue_full });
    mk 2.2 (Trace.Pkt_drop { link = "ring"; bytes = 576; reason = Trace.Link_error });
    mk 2.3 (Trace.Pkt_drop { link = "udp:2049"; bytes = 8192; reason = Trace.Sock_overflow });
    mk 2.4 (Trace.Pkt_deliver { link = "eth0->r1"; bytes = 1500 });
    mk 3.0 (Trace.Frag_lost { src = 2; ip_id = 99 });
    mk 4.0 (Trace.Srv_queue { xid = 17l; proc = 6; wait = 0.0123 });
    mk 4.5 (Trace.Srv_service { xid = 17l; proc = 6; service = 0.00456 });
    mk 5.0 (Trace.Cwnd_update { cwnd = 3.75 });
    mk 5.5 (Trace.Rto_update { rto = 0.2 });
    mk 6.0 (Trace.Cache_hit { cache = "drc" });
    mk 6.5 (Trace.Cache_miss { cache = "drc" });
  ]

let test_jsonl_line_roundtrip () =
  List.iter
    (fun r ->
      let line = Trace.line_of_record r in
      let back = Trace.record_of_line line in
      if back <> r then Alcotest.failf "did not round-trip: %s" line)
    every_event

let test_jsonl_float_precision () =
  (* Times that need full precision must survive the text round trip. *)
  List.iter
    (fun time ->
      let r = mk time (Trace.Rto_update { rto = time }) in
      let back = Trace.record_of_line (Trace.line_of_record r) in
      Alcotest.(check (float 0.0)) "exact" time back.Trace.time)
    [ 0.1 +. 0.2; 1.0 /. 3.0; 123456.789012345; 1e-9; 0.0 ]

let test_jsonl_file_roundtrip () =
  let tr = Trace.create () in
  List.iter (fun r -> Trace.record tr ~time:r.Trace.time ~node:r.Trace.node r.Trace.ev)
    every_event;
  let path = Filename.temp_file "renofs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.export_jsonl tr path;
      let back = Trace.import_jsonl path in
      Alcotest.(check int) "count" (Trace.length tr) (List.length back);
      if back <> Trace.to_list tr then Alcotest.fail "file round trip changed records")

let test_jsonl_rejects_garbage () =
  List.iter
    (fun line ->
      match Trace.record_of_line line with
      | _ -> Alcotest.failf "accepted %S" line
      | exception Failure _ -> ())
    [ ""; "{}"; "{\"t\":1.0}"; "{\"t\":1.0,\"node\":0,\"ev\":\"nope\"}" ]

(* ------------------------------------------------------------------ *)
(* A live traced run                                                  *)
(* ------------------------------------------------------------------ *)

let quiet =
  { Net.Topology.default_params with cross_traffic = false; link_loss = 0.0 }

let traced_world () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim { Net.Topology.default_spec with Net.Topology.params = quiet } in
  let server_udp = Udp.install topo.Net.Topology.server in
  let server_tcp = Tcp.install topo.Net.Topology.server in
  let server =
    Nfs_server.create topo.Net.Topology.server ~udp:server_udp ~tcp:server_tcp ()
  in
  Nfs_server.start server;
  let tr = Trace.create () in
  List.iter (fun n -> Net.Node.attach n { Net.Node.detached with trace = Some tr }) topo.Net.Topology.all;
  Trace.mark tr ~time:(Sim.now sim) "live";
  let client_udp = Udp.install topo.Net.Topology.client in
  let client_tcp = Tcp.install topo.Net.Topology.client in
  (sim, topo, server, client_udp, client_tcp, tr)

let run_traced body =
  let sim, topo, server, udp, tcp, tr = traced_world () in
  let done_ = ref false in
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp ~tcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          Nfs_client.reno_mount
      in
      body m;
      done_ := true);
  Sim.run ~until:3600.0 sim;
  Alcotest.(check bool) "workload finished" true !done_;
  tr

let count_ev p tr =
  List.fold_left (fun acc r -> if p r.Trace.ev then acc + 1 else acc) 0
    (Trace.to_list tr)

let test_live_trace () =
  let tr =
    run_traced (fun m ->
        let fd = Nfs_client.create m "traced.txt" in
        Nfs_client.write m fd ~off:0 (Bytes.make 20000 'x');
        Nfs_client.close m fd;
        let fd2 = Nfs_client.open_ m "traced.txt" in
        ignore (Nfs_client.read m fd2 ~off:0 ~len:20000);
        ignore (Nfs_client.stat m "traced.txt"))
  in
  (* Times never go backwards within a segment (one world here). *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone sim time" true
          (a.Trace.time <= b.Trace.time);
        monotone rest
    | _ -> ()
  in
  monotone (Trace.to_list tr);
  let sends = count_ev (function Trace.Rpc_send _ -> true | _ -> false) tr in
  let replies = count_ev (function Trace.Rpc_reply _ -> true | _ -> false) tr in
  let services = count_ev (function Trace.Srv_service _ -> true | _ -> false) tr in
  let queues = count_ev (function Trace.Srv_queue _ -> true | _ -> false) tr in
  let misses = count_ev (function Trace.Cache_miss _ -> true | _ -> false) tr in
  Alcotest.(check bool) "some RPCs traced" true (sends > 5);
  Alcotest.(check bool) "replies do not exceed sends" true (replies <= sends);
  Alcotest.(check bool) "server work observed" true (services > 0 && queues > 0);
  (* create/write are non-idempotent, so the DRC is consulted. *)
  Alcotest.(check bool) "DRC misses observed" true (misses > 0);
  let report = Trace.Report.build tr in
  Alcotest.(check int) "all replies joined" replies report.Trace.Report.complete;
  List.iter
    (fun sp ->
      Alcotest.(check bool) "wire time nonnegative" true
        (Trace.Report.wire_time sp >= 0.0);
      Alcotest.(check string) "segment label" "live" sp.Trace.Report.sp_label)
    (Trace.Report.spans (Trace.to_list tr));
  (* Exported JSONL is line-per-record, parseable, and complete. *)
  let path = Filename.temp_file "renofs_live" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.export_jsonl tr path;
      let back = Trace.import_jsonl path in
      Alcotest.(check int) "every event exported" (Trace.length tr)
        (List.length back);
      if back <> Trace.to_list tr then Alcotest.fail "export/import drift")

let test_untraced_run_records_nothing () =
  let sim, topo, server, udp, tcp, tr = traced_world () in
  (* Detach: the same world must record nothing once the sink is gone. *)
  List.iter (fun n -> Net.Node.attach n Net.Node.detached) topo.Net.Topology.all;
  let before = Trace.total tr in
  let done_ = ref false in
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp ~tcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          Nfs_client.reno_mount
      in
      ignore (Nfs_client.stat m ".");
      done_ := true);
  Sim.run ~until:3600.0 sim;
  Alcotest.(check bool) "workload finished" true !done_;
  Alcotest.(check int) "no events after detach" before (Trace.total tr)

let test_experiment_with_trace () =
  (* The nfsbench --trace path: run a real experiment under a sink and
     round-trip the whole event stream through JSONL. *)
  let tr = Trace.create () in
  let table =
    E.render (E.run_spec ~jobs:1 ~trace:tr ((List.assoc "table5" E.specs) E.Quick))
  in
  Alcotest.(check bool) "experiment produced rows" true (List.length table.E.rows > 0);
  Alcotest.(check bool) "events recorded" true (Trace.length tr > 0);
  let report = Trace.Report.build tr in
  Alcotest.(check bool) "spans joined" true (report.Trace.Report.complete > 0);
  let path = Filename.temp_file "renofs_exp" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.export_jsonl tr path;
      let ic = open_in path in
      let lines = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr lines
         done
       with End_of_file -> close_in ic);
      (* one line per held event, plus the schema metadata header *)
      Alcotest.(check int) "one line per held event" (Trace.length tr + 1) !lines;
      Alcotest.(check int) "all lines parse, header skipped"
        (Trace.length tr)
        (List.length (Trace.import_jsonl path)))

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "enable gate" `Quick test_enabled_gate;
        ] );
      ( "report",
        [
          Alcotest.test_case "xid join" `Quick test_xid_join;
          Alcotest.test_case "rtx wait cap" `Quick test_rtx_wait_cap;
          Alcotest.test_case "incomplete accounting" `Quick test_incomplete_accounting;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "line roundtrip" `Quick test_jsonl_line_roundtrip;
          Alcotest.test_case "float precision" `Quick test_jsonl_float_precision;
          Alcotest.test_case "file roundtrip" `Quick test_jsonl_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
        ] );
      ( "live",
        [
          Alcotest.test_case "traced run" `Quick test_live_trace;
          Alcotest.test_case "detached run" `Quick test_untraced_run_records_nothing;
          Alcotest.test_case "experiment with_trace" `Quick test_experiment_with_trace;
        ] );
    ]
