module Sim = Renofs_engine.Sim
module Probe = Renofs_engine.Probe
module Rng = Renofs_engine.Rng
module Trace = Renofs_trace.Trace
module Mbuf = Renofs_mbuf.Mbuf

type stats = {
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable queue_drops : int;
  mutable error_drops : int;
  mutable mangled : int;
}

type mangle_op = Corrupt | Truncate | Duplicate | Reorder

(* All-float box for the cumulative busy-seconds counter: a float field
   of the mixed [t] record would box every per-packet update. *)
type busy = { mutable b : float }

(* The mangler's state: one private RNG (seeded from the fault action's
   seed mixed with the link name, so every link direction draws an
   independent, reproducible stream) plus one rate per operation.
   Allocated lazily on the first [set_mangle]; a link that is never
   mangled keeps [mangle = None] and pays one branch per packet. *)
type mangle = {
  m_rng : Rng.t;
  mutable m_corrupt : float;
  mutable m_truncate : float;
  mutable m_duplicate : float;
  mutable m_reorder : float;
}

type t = {
  sim : Sim.t;
  name : string;
  bandwidth_bps : float;
  delay : float;
  queue_limit : int;
  mutable loss : float;
  mutable up : bool;
  rng : Rng.t;
  deliver : Packet.t -> unit;
  queue : Packet.t Queue.t;
  mutable transmitting : bool;
  stats : stats;
  busy : busy;
  owner : int; (* transmitting-side node id, -1 if unattached *)
  mutable trace : Trace.t option;
  mutable mangle : mangle option;
  (* Batched delivery: packets in flight on the wire, FIFO.  Every
     unmangled delivery is due exactly [delay] after its transmission
     completes, and completions are strictly increasing (serial
     transmitter, positive tx times), so due times are too — one shared
     [drain] closure scheduled once per packet pops them in order,
     instead of a fresh closure capturing each packet.  Mangled
     deliveries (reordered or duplicated copies break the FIFO
     invariant) keep per-packet closures. *)
  in_flight : Packet.t Queue.t;
  mutable drain : unit -> unit;
  (* The transmitter is serial, so the packet whose transmission is in
     progress lives in a field and one shared [tx_done] closure reads
     it back — again no per-packet closure. *)
  mutable tx_pkt : Packet.t option;
  mutable tx_bytes : int;
  mutable tx_done : unit -> unit;
}

let set_trace t tr = t.trace <- tr

(* Background cross-traffic is addressed to the discard service (port 9,
   [Traffic.discard_port]); its per-packet events would swamp the ring
   buffer and evict the RPC lifecycle the trace exists to capture, so
   enqueue/deliver events skip it.  Drops are always recorded: they are
   the congestion signal, whoever suffers them. *)
let pkt_traced (pkt : Packet.t) = pkt.Packet.dst_port <> 9

let trace_pkt t pkt ev_of =
  match t.trace with
  | Some tr when pkt_traced pkt ->
      Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
        (ev_of (Packet.wire_size pkt))
  | Some _ | None -> ()

(* Wire-delay and transmit-complete events run link (NIC) code and then
   hand the packet up the receive path; when probed, charge them to the
   link slot.  Detached cost: one branch. *)
let link_scope t f =
  match Sim.probe t.sim with
  | None -> f t
  | Some p ->
      let d = p.Probe.enter Probe.link in
      (try f t with e -> p.Probe.leave d; raise e);
      p.Probe.leave d

let deliver_after t delay pkt =
  Sim.after t.sim delay (fun () ->
      link_scope t (fun t ->
          trace_pkt t pkt (fun bytes ->
              Trace.Pkt_deliver { link = t.name; bytes });
          t.deliver pkt))

let note_mangle t pkt op =
  t.stats.mangled <- t.stats.mangled + 1;
  match t.trace with
  | Some tr when pkt_traced pkt ->
      Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
        (Trace.Pkt_mangle { link = t.name; bytes = Packet.wire_size pkt; op })
  | Some _ | None -> ()

(* A small but nonzero base for the extra reorder/duplicate latency on
   zero-delay links. *)
let mangle_delay_unit t = Float.max t.delay 0.001

(* Damage [pkt] per the mangle config and hand every resulting copy to
   [deliver_after].  Mutation is never in place: split fragments share
   their parent's storage, so the payload is deep-copied through bytes
   before a bit is touched. *)
let mangle_deliver t (m : mangle) pkt =
  let rng = m.m_rng in
  let pkt =
    if m.m_corrupt > 0.0 && Rng.chance rng m.m_corrupt && Packet.data_len pkt > 0
    then begin
      note_mangle t pkt "corrupt";
      let b = Mbuf.to_bytes pkt.Packet.payload in
      (* Flip exactly one bit: the smallest damage, and the case the
         Internet checksum is guaranteed to catch. *)
      let bit = Rng.int rng (Bytes.length b * 8) in
      let i = bit lsr 3 in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit land 7))));
      { pkt with Packet.payload = Mbuf.of_bytes b }
    end
    else pkt
  in
  let pkt =
    if
      m.m_truncate > 0.0
      && Rng.chance rng m.m_truncate
      && Packet.data_len pkt > 0
    then begin
      note_mangle t pkt "truncate";
      let keep = Rng.int rng (Packet.data_len pkt) in
      let b = Bytes.sub (Mbuf.to_bytes pkt.Packet.payload) 0 keep in
      { pkt with Packet.payload = Mbuf.of_bytes b }
    end
    else pkt
  in
  let delay =
    if m.m_reorder > 0.0 && Rng.chance rng m.m_reorder then begin
      note_mangle t pkt "reorder";
      (* Hold this packet past anything transmitted within the next
         round-trip-ish window. *)
      t.delay +. (mangle_delay_unit t *. (1.0 +. Rng.float rng 1.0))
    end
    else t.delay
  in
  deliver_after t delay pkt;
  if m.m_duplicate > 0.0 && Rng.chance rng m.m_duplicate then begin
    note_mangle t pkt "duplicate";
    (* Receivers consume payload chains destructively, so the twin needs
       its own storage. *)
    let copy =
      Mbuf.sub_copy pkt.Packet.payload ~pos:0 ~len:(Packet.data_len pkt)
    in
    deliver_after t
      (delay +. (mangle_delay_unit t *. Rng.float rng 1.0))
      { pkt with Packet.payload = copy }
  end

let start_next t =
  match Queue.take_opt t.queue with
  | None -> t.transmitting <- false
  | Some pkt ->
      t.transmitting <- true;
      let bytes = Packet.wire_size pkt in
      let tx_time = float_of_int (bytes * 8) /. t.bandwidth_bps in
      t.busy.b <- t.busy.b +. tx_time;
      t.tx_pkt <- Some pkt;
      t.tx_bytes <- bytes;
      Sim.after t.sim tx_time t.tx_done

let tx_complete t =
  let pkt = match t.tx_pkt with Some p -> p | None -> assert false in
  t.tx_pkt <- None;
  let bytes = t.tx_bytes in
  t.stats.packets_sent <- t.stats.packets_sent + 1;
  t.stats.bytes_sent <- t.stats.bytes_sent + bytes;
  (if t.loss > 0.0 && Rng.chance t.rng t.loss then begin
     t.stats.error_drops <- t.stats.error_drops + 1;
     match t.trace with
     | Some tr ->
         Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
           (Trace.Pkt_drop { link = t.name; bytes; reason = Trace.Link_error })
     | None -> ()
   end
   else
     match t.mangle with
     | None ->
         Queue.add pkt t.in_flight;
         Sim.after t.sim t.delay t.drain
     | Some m -> mangle_deliver t m pkt);
  start_next t

let drain_one t =
  let pkt = Queue.take t.in_flight in
  (match t.trace with
  | Some tr when pkt_traced pkt ->
      Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
        (Trace.Pkt_deliver { link = t.name; bytes = Packet.wire_size pkt })
  | Some _ | None -> ());
  t.deliver pkt

let create sim ~name ~bandwidth_bps ~delay ~queue_limit ?(loss = 0.0) ?(owner = -1)
    ~rng ~deliver () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  let t =
    {
      sim;
      name;
      bandwidth_bps;
      delay;
      queue_limit;
      loss;
      up = true;
      rng;
      deliver;
      queue = Queue.create ();
      transmitting = false;
      stats =
        {
          packets_sent = 0;
          bytes_sent = 0;
          queue_drops = 0;
          error_drops = 0;
          mangled = 0;
        };
      busy = { b = 0.0 };
      owner;
      trace = None;
      mangle = None;
      in_flight = Queue.create ();
      drain = ignore;
      tx_pkt = None;
      tx_bytes = 0;
      tx_done = ignore;
    }
  in
  t.drain <- (fun () -> link_scope t drain_one);
  t.tx_done <- (fun () -> link_scope t tx_complete);
  t

let send t pkt =
  if not t.up then begin
    t.stats.error_drops <- t.stats.error_drops + 1;
    match t.trace with
    | Some tr ->
        Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
          (Trace.Pkt_drop
             {
               link = t.name;
               bytes = Packet.wire_size pkt;
               reason = Trace.Link_down;
             })
    | None -> ()
  end
  else if Queue.length t.queue >= t.queue_limit then begin
    t.stats.queue_drops <- t.stats.queue_drops + 1;
    match t.trace with
    | Some tr ->
        Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
          (Trace.Pkt_drop
             {
               link = t.name;
               bytes = Packet.wire_size pkt;
               reason = Trace.Queue_full;
             })
    | None -> ()
  end
  else begin
    Queue.add pkt t.queue;
    (match t.trace with
    | Some tr when pkt_traced pkt ->
        Trace.record tr ~time:(Sim.now t.sim) ~node:t.owner
          (Trace.Pkt_enqueue
             {
               link = t.name;
               bytes = Packet.wire_size pkt;
               qlen = Queue.length t.queue;
             })
    | Some _ | None -> ());
    if not t.transmitting then start_next t
  end

let name t = t.name
let queue_length t = Queue.length t.queue
let stats t = t.stats
let loss t = t.loss
let set_loss t p = t.loss <- Float.max 0.0 (Float.min 1.0 p)
let is_up t = t.up
let set_up t up = t.up <- up

(* Deterministic, non-randomized string hash (FNV-1a), so mangle RNG
   streams do not depend on [Hashtbl.hash] implementation details. *)
let name_hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let ensure_mangle t ~seed =
  match t.mangle with
  | Some m -> m
  | None ->
      let m =
        {
          m_rng = Rng.create (seed lxor name_hash t.name);
          m_corrupt = 0.0;
          m_truncate = 0.0;
          m_duplicate = 0.0;
          m_reorder = 0.0;
        }
      in
      t.mangle <- Some m;
      m

let set_mangle t ?(seed = 0) op rate =
  let m = ensure_mangle t ~seed in
  let rate = Float.max 0.0 (Float.min 1.0 rate) in
  match op with
  | Corrupt -> m.m_corrupt <- rate
  | Truncate -> m.m_truncate <- rate
  | Duplicate -> m.m_duplicate <- rate
  | Reorder -> m.m_reorder <- rate

let mangle_rate t op =
  match t.mangle with
  | None -> 0.0
  | Some m -> (
      match op with
      | Corrupt -> m.m_corrupt
      | Truncate -> m.m_truncate
      | Duplicate -> m.m_duplicate
      | Reorder -> m.m_reorder)

let utilization t =
  let now = Sim.now t.sim in
  if now <= 0.0 then 0.0 else t.busy.b /. now

let busy_time t = t.busy.b
