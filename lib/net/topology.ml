module Sim = Renofs_engine.Sim
module Rng = Renofs_engine.Rng

type params = {
  seed : int;
  client_mips : float;
  server_mips : float;
  client_nic : Nic.profile;
  server_nic : Nic.profile;
  cross_traffic : bool;
  link_loss : float;
}

let default_params =
  {
    seed = 1;
    client_mips = 0.9;
    server_mips = 0.9;
    client_nic = Nic.deqna_tuned;
    server_nic = Nic.deqna_tuned;
    cross_traffic = true;
    link_loss = 0.001;
  }

type shape = Lan | Campus | Wide_area | Star

type spec = { shape : shape; clients : int; params : params }

let default_spec = { shape = Lan; clients = 1; params = default_params }

type tier = Backbone of int | Fat_tree of { spines : int; leaves : int }

type graph_spec = {
  g_servers : int;
  g_clients : int;
  g_tier : tier;
  g_wan_fraction : float;
  g_params : params;
}

let default_graph_spec =
  {
    g_servers = 4;
    g_clients = 8;
    g_tier = Backbone 1;
    g_wan_fraction = 0.0;
    g_params = default_params;
  }

type t = {
  sim : Sim.t;
  client : Node.t;
  server : Node.t;
  clients : Node.t list;
  servers : Node.t list;
  routers : Node.t list;
  all : Node.t list;
  bottleneck : Link.t option;
}

let client_id t = Node.id t.client
let server_id t = Node.id t.server

(* Link-class constants. *)
let ethernet = (10.0e6, 0.1e-3, 1500, 50)
let token_ring = (80.0e6, 0.5e-3, 4464, 30)
let slow_serial = (56.0e3, 5.0e-3, 1006, 10)

let connect_class a b ~name ~loss (bandwidth_bps, delay, mtu, queue_limit) =
  Node.connect a b ~name ~bandwidth_bps ~delay ~mtu ~queue_limit ~loss ()

let make_host sim rng ~id ~name ~mips ~nic =
  Node.create sim ~id ~name ~mips ~nic ~rng:(Rng.split rng) ()

let make_router sim rng ~id ~name =
  (* Dedicated routing hardware: modest CPU fully devoted to forwarding. *)
  Node.create sim ~id ~name ~mips:2.0 ~nic:Nic.deqna_tuned ~rng:(Rng.split rng)
    ~forward_cost:0.3e-3 ()

(* Fleet-era fabric routers: fast enough that the servers, not the
   interconnect, stay the saturating resource in multi-server worlds
   (the paper's 1991 routers would bottleneck a 16-server sweep before
   the first server broke a sweat). *)
let make_fabric_router sim rng ~id ~name =
  Node.create sim ~id ~name ~mips:10.0 ~nic:Nic.deqna_tuned ~rng:(Rng.split rng)
    ~forward_cost:0.05e-3 ()

let host_pair sim rng params =
  ( make_host sim rng ~id:1 ~name:"client" ~mips:params.client_mips
      ~nic:params.client_nic,
    make_host sim rng ~id:2 ~name:"server" ~mips:params.server_mips
      ~nic:params.server_nic )

let build_lan sim params =
  let rng = Rng.create params.seed in
  let client, server = host_pair sim rng params in
  let _ = connect_class client server ~name:"eth0" ~loss:0.0 ethernet in
  let all = [ client; server ] in
  Node.auto_routes all;
  {
    sim;
    client;
    server;
    clients = [ client ];
    servers = [ server ];
    routers = [];
    all;
    bottleneck = None;
  }

let build_campus sim params =
  let rng = Rng.create params.seed in
  let client, server = host_pair sim rng params in
  let r1 = make_router sim rng ~id:10 ~name:"router1"
  and r2 = make_router sim rng ~id:11 ~name:"router2" in
  let _ = connect_class client r1 ~name:"eth1" ~loss:0.0 ethernet in
  let _ring_out, ring_back =
    connect_class r1 r2 ~name:"ring" ~loss:params.link_loss token_ring
  in
  let _ = connect_class r2 server ~name:"eth2" ~loss:0.0 ethernet in
  let all = [ client; server; r1; r2 ] in
  Node.auto_routes all;
  if params.cross_traffic then begin
    Traffic.sink r1;
    Traffic.sink r2;
    Traffic.start ~src:r1 ~dst:r2 Traffic.campus_backbone;
    Traffic.start ~src:r2 ~dst:r1 Traffic.campus_backbone
  end;
  {
    sim;
    client;
    server;
    clients = [ client ];
    servers = [ server ];
    routers = [ r1; r2 ];
    all;
    bottleneck = Some ring_back;
  }

let build_wide_area sim params =
  let rng = Rng.create params.seed in
  let client, server = host_pair sim rng params in
  let r1 = make_router sim rng ~id:10 ~name:"router1"
  and r2 = make_router sim rng ~id:11 ~name:"router2"
  and r3 = make_router sim rng ~id:12 ~name:"router3" in
  let _ = connect_class client r1 ~name:"eth1" ~loss:0.0 ethernet in
  let _ = connect_class r1 r2 ~name:"ring" ~loss:params.link_loss token_ring in
  let serial_out, _serial_back =
    connect_class r2 r3 ~name:"serial56k" ~loss:params.link_loss slow_serial
  in
  let _ = connect_class r3 server ~name:"eth2" ~loss:0.0 ethernet in
  let all = [ client; server; r1; r2; r3 ] in
  Node.auto_routes all;
  if params.cross_traffic then begin
    (* After hours the 56K line itself carried almost no other load
       (paper, Section 4); the campus ring still did. *)
    Traffic.sink r1;
    Traffic.sink r2;
    Traffic.start ~src:r1 ~dst:r2 Traffic.campus_backbone;
    Traffic.start ~src:r2 ~dst:r1 Traffic.campus_backbone
  end;
  {
    sim;
    client;
    server;
    clients = [ client ];
    servers = [ server ];
    routers = [ r1; r2; r3 ];
    all;
    bottleneck = Some serial_out;
  }

let build_star sim ~clients params =
  if clients < 1 then invalid_arg "Topology.build: Star needs at least one client";
  let rng = Rng.create params.seed in
  let server =
    make_host sim rng ~id:2 ~name:"server" ~mips:params.server_mips
      ~nic:params.server_nic
  in
  let client_nodes =
    List.init clients (fun i ->
        let c =
          make_host sim rng ~id:(100 + i)
            ~name:(Printf.sprintf "client%d" i)
            ~mips:params.client_mips ~nic:params.client_nic
        in
        let _ =
          connect_class c server ~name:(Printf.sprintf "eth%d" i) ~loss:0.0 ethernet
        in
        c)
  in
  let all = server :: client_nodes in
  Node.auto_routes all;
  {
    sim;
    client = List.hd client_nodes;
    server;
    clients = client_nodes;
    servers = [ server ];
    routers = [];
    all;
    bottleneck = None;
  }

(* ------------------------------------------------------------------ *)
(* Graph worlds: N servers behind a router tier                        *)
(* ------------------------------------------------------------------ *)

(* Disjoint id ranges, so fault schedules and traces can always tell
   who is who: servers 2..91, routers 1000+, clients 100_000+. *)
let max_graph_servers = 90

let build_graph sim g =
  let p = g.g_params in
  if g.g_servers < 1 then
    invalid_arg "Topology.build_graph: needs at least one server";
  if g.g_servers > max_graph_servers then
    invalid_arg
      (Printf.sprintf "Topology.build_graph: at most %d servers (got %d)"
         max_graph_servers g.g_servers);
  if g.g_clients < 1 then
    invalid_arg "Topology.build_graph: needs at least one client";
  if g.g_wan_fraction < 0.0 || g.g_wan_fraction > 1.0 then
    invalid_arg "Topology.build_graph: wan_fraction must be within [0,1]";
  let rng = Rng.create p.seed in
  let servers =
    List.init g.g_servers (fun i ->
        make_host sim rng ~id:(2 + i)
          ~name:(Printf.sprintf "server%d" i)
          ~mips:p.server_mips ~nic:p.server_nic)
  in
  (* [attach k] is the edge router the k-th host (server or client, each
     numbered independently) plugs into — round-robin, so shard load
     spreads across the tier. *)
  let routers, attach =
    match g.g_tier with
    | Backbone n ->
        if n < 1 then
          invalid_arg "Topology.build_graph: Backbone needs at least one router";
        let bb =
          Array.init n (fun i ->
              make_fabric_router sim rng ~id:(1000 + i)
                ~name:(Printf.sprintf "bb%d" i))
        in
        Array.iteri
          (fun i r ->
            if i + 1 < n then
              ignore
                (connect_class r bb.(i + 1)
                   ~name:(Printf.sprintf "bbring%d" i)
                   ~loss:p.link_loss token_ring))
          bb;
        (Array.to_list bb, fun k -> bb.(k mod n))
    | Fat_tree { spines; leaves } ->
        if spines < 1 || leaves < 1 then
          invalid_arg
            "Topology.build_graph: Fat_tree needs at least one spine and one \
             leaf";
        let spine =
          Array.init spines (fun i ->
              make_fabric_router sim rng ~id:(1000 + i)
                ~name:(Printf.sprintf "spine%d" i))
        in
        let leaf =
          Array.init leaves (fun i ->
              make_fabric_router sim rng
                ~id:(1000 + spines + i)
                ~name:(Printf.sprintf "leaf%d" i))
        in
        Array.iteri
          (fun i s ->
            Array.iteri
              (fun j l ->
                ignore
                  (connect_class s l
                     ~name:(Printf.sprintf "ft%d_%d" i j)
                     ~loss:p.link_loss token_ring))
              leaf)
          spine;
        (Array.to_list spine @ Array.to_list leaf, fun k -> leaf.(k mod leaves))
  in
  List.iteri
    (fun i s ->
      ignore
        (connect_class s (attach i)
           ~name:(Printf.sprintf "srv%d" i)
           ~loss:0.0 ethernet))
    servers;
  (* Client i is WAN-class when the running count [wan_fraction * i]
     gains a unit — spreads the slow edges evenly instead of bunching
     them at the front. *)
  let wan_count i = int_of_float (g.g_wan_fraction *. float_of_int i) in
  let clients =
    List.init g.g_clients (fun i ->
        let c =
          make_host sim rng ~id:(100_000 + i)
            ~name:(Printf.sprintf "client%d" i)
            ~mips:p.client_mips ~nic:p.client_nic
        in
        let cls = if wan_count (i + 1) > wan_count i then slow_serial else ethernet in
        ignore
          (connect_class c (attach i) ~name:(Printf.sprintf "cl%d" i) ~loss:0.0
             cls);
        c)
  in
  let all = servers @ routers @ clients in
  Node.auto_routes all;
  {
    sim;
    client = List.hd clients;
    server = List.hd servers;
    clients;
    servers;
    routers;
    all;
    bottleneck = None;
  }

let shape_name = function
  | Lan -> "Lan"
  | Campus -> "Campus"
  | Wide_area -> "Wide_area"
  | Star -> "Star"

let build sim spec =
  match spec.shape with
  | Star -> build_star sim ~clients:spec.clients spec.params
  | (Lan | Campus | Wide_area) as shape ->
      if spec.clients <> 1 then
        invalid_arg
          (Printf.sprintf
             "Topology.build: shape %s has exactly one client (got %d)"
             (shape_name shape) spec.clients);
      (match shape with
      | Lan -> build_lan sim spec.params
      | Campus -> build_campus sim spec.params
      | Wide_area -> build_wide_area sim spec.params
      | Star -> assert false)

let shape_of_name = function
  | "lan" -> Lan
  | "campus" -> Campus
  | "wan" -> Wide_area
  | "star" -> Star
  | other -> invalid_arg ("Topology.shape_of_name: unknown topology " ^ other)

