lib/workload/ascii_plot.mli: Experiments
