lib/workload/create_delete.ml: Bytes Printf Renofs_core Renofs_engine Renofs_vfs
