(* The fleet layer: shard placement is deterministic under a fixed
   seed, every mount point has exactly one owner, the Hash policy
   keeps fleets balanced, a real multi-server world serves mounts
   end-to-end, the recovery invariants stay green (6/6) when one shard
   server crash/reboots mid-run, and the fleet experiment family is
   byte-identical at any --jobs. *)

open Renofs_core
module Net = Renofs_net
module Topology = Net.Topology
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Udp = Renofs_transport.Udp
module Fs = Renofs_vfs.Fs
module Trace = Renofs_trace.Trace
module Fault = Renofs_fault.Fault
module Check = Fault.Check
module Fleet = Renofs_fleet.Fleet
module E = Renofs_workload.Experiments
module Bench_json = Renofs_workload.Bench_json

let shard_names n = List.init n (fun i -> Printf.sprintf "/home%d" i)

(* ---------------------------------------------------------------- *)
(* Shard maps                                                       *)
(* ---------------------------------------------------------------- *)

let test_policy_determinism () =
  let names = shard_names 100 in
  List.iter
    (fun policy ->
      let place () =
        let m = Fleet.Shard_map.create ~seed:7 policy ~servers:4 in
        List.iter (fun s -> ignore (Fleet.Shard_map.assign m s)) names;
        Fleet.Shard_map.assignments m
      in
      Alcotest.(check bool)
        (Fleet.policy_name policy ^ " deterministic under fixed seed")
        true
        (place () = place ()))
    [ Fleet.Round_robin; Fleet.Hash; Fleet.Least_loaded ];
  (* The seed actually perturbs the Hash placement. *)
  let with_seed seed =
    let m = Fleet.Shard_map.create ~seed Fleet.Hash ~servers:4 in
    List.iter (fun s -> ignore (Fleet.Shard_map.assign m s)) names;
    Fleet.Shard_map.assignments m
  in
  Alcotest.(check bool) "seed changes hash placement" false
    (with_seed 0 = with_seed 1)

let test_every_shard_has_one_owner () =
  let names = shard_names 100 in
  let m = Fleet.Shard_map.create Fleet.Hash ~servers:4 in
  List.iter
    (fun s ->
      let first = Fleet.Shard_map.assign m s in
      Alcotest.(check bool) (s ^ " in range") true (first >= 0 && first < 4);
      Alcotest.(check int) (s ^ " sticky") first (Fleet.Shard_map.assign m s);
      Alcotest.(check (option int)) (s ^ " find agrees") (Some first)
        (Fleet.Shard_map.find m s))
    names;
  Alcotest.(check int) "one assignment per shard" 100
    (List.length (Fleet.Shard_map.assignments m));
  Alcotest.(check int) "loads sum to shards" 100
    (Array.fold_left ( + ) 0 (Fleet.Shard_map.loads m));
  Alcotest.(check (option int)) "find never places" None
    (Fleet.Shard_map.find m "/never-assigned")

let max_over_mean loads =
  let total = Array.fold_left ( + ) 0 loads in
  let mean = float_of_int total /. float_of_int (Array.length loads) in
  float_of_int (Array.fold_left max 0 loads) /. mean

let test_placement_balance () =
  let names = shard_names 100 in
  (* Hash must stay within the fleet experiment's balance bound for
     any seed; round-robin and least-loaded are perfect by design. *)
  List.iter
    (fun seed ->
      let m = Fleet.Shard_map.create ~seed Fleet.Hash ~servers:4 in
      List.iter (fun s -> ignore (Fleet.Shard_map.assign m s)) names;
      let skew = max_over_mean (Fleet.Shard_map.loads m) in
      if skew > 1.25 then
        Alcotest.failf "hash skew %.2f > 1.25 at seed %d" skew seed)
    [ 0; 1; 2; 3; 4 ];
  List.iter
    (fun policy ->
      let m = Fleet.Shard_map.create policy ~servers:4 in
      List.iter (fun s -> ignore (Fleet.Shard_map.assign m s)) names;
      Alcotest.(check (array int))
        (Fleet.policy_name policy ^ " perfectly even")
        [| 25; 25; 25; 25 |]
        (Fleet.Shard_map.loads m))
    [ Fleet.Round_robin; Fleet.Least_loaded ]

let test_shard_map_errors () =
  Alcotest.check_raises "zero servers"
    (Invalid_argument "Fleet.Shard_map.create: needs at least one server")
    (fun () -> ignore (Fleet.Shard_map.create Fleet.Hash ~servers:0));
  Alcotest.check_raises "unknown policy"
    (Invalid_argument "Fleet.policy_of_name: unknown policy best-fit")
    (fun () -> ignore (Fleet.policy_of_name "best-fit"));
  List.iter
    (fun p ->
      Alcotest.(check bool) "name round-trips" true
        (Fleet.policy_of_name (Fleet.policy_name p) = p))
    [ Fleet.Round_robin; Fleet.Hash; Fleet.Least_loaded ]

(* ---------------------------------------------------------------- *)
(* A real two-server world                                          *)
(* ---------------------------------------------------------------- *)

let quiet_params =
  { Topology.default_params with cross_traffic = false; link_loss = 0.0 }

let two_server_world sim ~clients =
  Topology.build_graph sim
    {
      Topology.g_servers = 2;
      g_clients = clients;
      g_tier = Topology.Backbone 1;
      g_wan_fraction = 0.0;
      g_params = quiet_params;
    }

let test_fleet_mounts_end_to_end () =
  let sim = Sim.create () in
  let topo = two_server_world sim ~clients:1 in
  let fleet = Fleet.create ~policy:Fleet.Hash ~shards:4 topo.Topology.servers in
  let cudp = Udp.install topo.Topology.client in
  let finished = ref false in
  Proc.spawn sim (fun () ->
      Fleet.provision fleet;
      List.iter
        (fun shard ->
          let m = Fleet.mount_shard fleet ~udp:cudp ~shard Nfs_client.reno_mount in
          let fd = Nfs_client.create m "probe" in
          Nfs_client.write m fd ~off:0 (Bytes.of_string ("hello" ^ shard));
          Nfs_client.close m fd;
          let back = Nfs_client.read m (Nfs_client.open_ m "probe") ~off:0 ~len:100 in
          Alcotest.(check string) (shard ^ " readable") ("hello" ^ shard)
            (Bytes.to_string back))
        (Fleet.shards fleet);
      (* Each shard directory exists on exactly the server the map
         names (Fs runs server-side, so still inside the process). *)
      Fleet.iter_shards fleet (fun ~shard ~server ->
          let fs = Nfs_server.fs server in
          let name = String.sub shard 1 (String.length shard - 1) in
          ignore (Fs.lookup fs (Fs.root fs) name));
      finished := true);
  Sim.run ~until:600.0 sim;
  Alcotest.(check bool) "finished" true !finished;
  Alcotest.(check bool) "work spread over both servers" true
    (List.for_all
       (fun srv -> Nfs_server.rpcs_served srv > 0)
       (Fleet.servers fleet));
  Alcotest.(check bool) "served something" true (Fleet.total_served fleet > 0);
  Alcotest.(check bool) "balance within bound" true (Fleet.balance fleet <= 2.0)

(* ---------------------------------------------------------------- *)
(* One shard server crashes mid-run: invariants stay 6/6            *)
(* ---------------------------------------------------------------- *)

let test_shard_server_crash_invariants () =
  let sim = Sim.create () in
  let topo = two_server_world sim ~clients:1 in
  let tr = Trace.create ~capacity:(1 lsl 16) () in
  List.iter (fun n -> Net.Node.attach n { Net.Node.detached with trace = Some tr }) topo.Topology.all;
  (* Round-robin places /home0 on server0 and /home1 on server1, so
     the crash target is known by name. *)
  let fleet =
    Fleet.create ~policy:Fleet.Round_robin ~shards:2 topo.Topology.servers
  in
  Fault.install
    { Fault.sim; nodes = topo.Topology.all; servers = Fleet.servers fleet; trace = Some tr }
    {
      Fault.name = "shard-crash";
      description = "server1 crashes at 1s for 3s";
      actions = [ Fault.Server_crash { at = 1.0; downtime = 3.0; server = "server1" } ];
    };
  let survivor = List.nth (Fleet.servers fleet) 0 in
  let victim = List.nth (Fleet.servers fleet) 1 in
  (* Per-name targeting: mid-downtime only server1 is down. *)
  let checked_mid_downtime = ref false in
  Proc.spawn sim (fun () ->
      Proc.sleep sim 2.0;
      Alcotest.(check bool) "victim down mid-run" false (Nfs_server.is_up victim);
      Alcotest.(check bool) "survivor untouched" true (Nfs_server.is_up survivor);
      checked_mid_downtime := true);
  let cudp = Udp.install topo.Topology.client in
  let ledger = ref [] in
  let finished = ref false in
  Proc.spawn sim (fun () ->
      Fleet.provision fleet;
      (* A hard mount of the crashing server's shard: writes span the
         outage and must ride through. *)
      let m = Fleet.mount_shard fleet ~udp:cudp ~shard:"/home1" Nfs_client.reno_mount in
      for i = 0 to 3 do
        let name = Printf.sprintf "f%d" i in
        let data = Bytes.of_string (Printf.sprintf "extent-%d" i) in
        let fd = Nfs_client.create m name in
        Nfs_client.write m fd ~off:0 data;
        Nfs_client.close m fd;
        ledger := (i, 0, data) :: !ledger;
        Proc.sleep sim 0.7
      done;
      finished := true);
  Sim.run ~until:600.0 sim;
  Alcotest.(check bool) "probe ran" true !checked_mid_downtime;
  Alcotest.(check bool) "writes rode through the crash" true !finished;
  Alcotest.(check bool) "victim rebooted" true (Nfs_server.is_up victim);
  (* Reading back goes through Fs (charges server CPU), so the checks
     run in a fresh process on the quiesced sim. *)
  let verdicts_ref = ref [] in
  Proc.spawn sim (fun () ->
      let fs = Nfs_server.fs victim in
      let read_back_ino ~file ~off ~len =
        try Some (Fs.read fs (Fs.vnode_by_ino fs file) ~off ~len) with _ -> None
      in
      let read_back_name ~file ~off ~len =
        try
          let home = Fs.lookup fs (Fs.root fs) "home1" in
          let vn = Fs.lookup fs home (Printf.sprintf "f%d" file) in
          Some (Fs.read fs vn ~off ~len)
        with _ -> None
      in
      let records = Trace.to_list tr in
      verdicts_ref :=
        Check.check_all ~read_back:read_back_ino records
        @ [
            Check.data_integrity ~expected:(List.rev !ledger)
              ~read_back:read_back_name;
          ]);
  Sim.run ~until:1200.0 sim;
  let verdicts = !verdicts_ref in
  Alcotest.(check int) "six invariants" 6 (List.length verdicts);
  List.iter
    (fun v ->
      if not v.Check.v_ok then
        Alcotest.failf "invariant %s failed: %s" v.Check.v_name v.Check.v_detail)
    verdicts

(* ---------------------------------------------------------------- *)
(* Fleet experiment determinism at any --jobs                       *)
(* ---------------------------------------------------------------- *)

let test_fleet_family_jobs_determinism () =
  (* The full quick matrix: its assemble step pairs rows with the cell
     matrix, so cells cannot be subsetted.  Quick is ~1s per run. *)
  let spec = Option.get (E.spec "fleet-quick") in
  let run jobs = Bench_json.emit ~scale:E.Quick ~jobs:1 [ E.run_spec ~jobs spec ] in
  Alcotest.(check string) "JSON byte-identical across jobs" (run 1) (run 2)

let () =
  Alcotest.run "fleet"
    [
      ( "shard-map",
        [
          Alcotest.test_case "policies deterministic" `Quick test_policy_determinism;
          Alcotest.test_case "one owner per shard" `Quick
            test_every_shard_has_one_owner;
          Alcotest.test_case "placement balance" `Quick test_placement_balance;
          Alcotest.test_case "errors and names" `Quick test_shard_map_errors;
        ] );
      ( "worlds",
        [
          Alcotest.test_case "mounts end to end" `Quick test_fleet_mounts_end_to_end;
          Alcotest.test_case "shard crash keeps invariants" `Quick
            test_shard_server_crash_invariants;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "deterministic at any --jobs" `Quick
            test_fleet_family_jobs_determinism;
        ] );
    ]
