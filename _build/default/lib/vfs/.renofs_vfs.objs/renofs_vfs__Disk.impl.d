lib/vfs/disk.ml: Renofs_engine
