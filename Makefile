# Convenience wrapper around dune.  `make check` is the tier-1 gate:
# everything must build, every test must pass, the dune files must be
# formatted (ocamlformat is not vendored, so @fmt covers dune files
# only — see dune-project), and the nfsbench CLI must survive a smoke
# run: list the registry, run one experiment across 2 domains with
# JSON output, validate that output against the renofs-bench/1
# schema, and exercise the fault layer (builtin listing, a schedule
# file on a normal experiment).
# `make chaos-smoke` runs the quick chaos matrix — every fault
# schedule crossed with the three transports plus the v3
# UNSTABLE+COMMIT profile — failing on any invariant violation, and
# byte-compares a 2-domain run against a 1-domain run: the recovery
# verdicts must be deterministic at any --jobs.
# `make fuzz-smoke` runs the seeded wire-corruption fuzzer at fixed
# seeds: the checksums-on pass must come back clean (exit 0), and the
# checksums-off pass under bit corruption must detect at least one
# data-integrity violation (non-zero exit, inverted with `!`) — that
# asymmetry is the whole point of the UDP checksum.
# `make bench-gate` reruns the quick suite and diffs it against the
# committed BENCH_quick.json baseline, failing on any >15% regression
# in latency (ms/s) or throughput (per_s) cells; refresh the baseline
# with `make bench-baseline` after an intentional performance change.
# `make fleet-smoke` runs the sharded multi-server family across 2
# domains, validates the JSON, and byte-compares it against a 1-domain
# run (minus the "jobs" header line, the one legitimate difference) —
# the determinism contract for fleet-scale worlds.
# `make slo-smoke` exercises the scenario layer both ways: the five
# builtin day-in-the-life scenarios must meet their SLOs (exit 0,
# byte-identical between a 2-domain and a 1-domain run), and the
# crash-without-reboot example must breach (non-zero exit, inverted
# with `!`) while naming the violated SLOs.
# `make perf-gate` measures wall-clock engine throughput (events/s,
# RPCs/s over the fixed graph5 full cell set) and fails if either rate
# drops more than 30% below the committed BENCH_perf.json — wide
# because container clocks are noisy, but tight enough to catch a real
# hot-path regression.  Refresh with `make perf-baseline` after an
# intentional engine change (run it on a quiet machine).
# `make profile-smoke` exercises the observability additions: a
# profiled + Perfetto-exported run whose renofs-profile/1 file must
# validate (validation includes the self-time-sums-to-wall accounting
# check), and the crash-without-reboot scenario under --flight, which
# must still breach (inverted with `!`) while leaving a complete
# post-mortem bundle.

.PHONY: all build test fmt smoke chaos-smoke fuzz-smoke fleet-smoke slo-smoke bench-gate bench-baseline perf-gate perf-baseline profile-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

smoke: build
	dune exec bin/nfsbench.exe -- list
	dune exec bin/nfsbench.exe -- run graph1 --jobs 2 --json /tmp/renofs-smoke.json
	dune exec bin/nfsbench.exe -- validate-json /tmp/renofs-smoke.json
	dune exec bin/nfsbench.exe -- faults
	dune exec bin/nfsbench.exe -- run graph1 --jobs 2 --faults examples/crash.json

chaos-smoke: build
	dune exec bin/nfsbench.exe -- chaos --scale quick --jobs 2 > /tmp/renofs-chaos-smoke2.txt
	dune exec bin/nfsbench.exe -- chaos --scale quick --jobs 1 > /tmp/renofs-chaos-smoke1.txt
	cmp /tmp/renofs-chaos-smoke1.txt /tmp/renofs-chaos-smoke2.txt

fuzz-smoke: build
	dune exec bin/nfsbench.exe -- fuzz --seeds 15 --jobs 2
	! dune exec bin/nfsbench.exe -- fuzz --seeds 5 --jobs 2 --no-checksum

fleet-smoke: build
	dune exec bin/nfsbench.exe -- run fleet-quick --jobs 2 --json /tmp/renofs-fleet-smoke2.json
	dune exec bin/nfsbench.exe -- validate-json /tmp/renofs-fleet-smoke2.json
	dune exec bin/nfsbench.exe -- run fleet-quick --jobs 1 --json /tmp/renofs-fleet-smoke1.json > /dev/null
	grep -v '"jobs"' /tmp/renofs-fleet-smoke1.json > /tmp/renofs-fleet-smoke1.stripped
	grep -v '"jobs"' /tmp/renofs-fleet-smoke2.json > /tmp/renofs-fleet-smoke2.stripped
	cmp /tmp/renofs-fleet-smoke1.stripped /tmp/renofs-fleet-smoke2.stripped

slo-smoke: build
	dune exec bin/nfsbench.exe -- slo --jobs 2 > /tmp/renofs-slo-smoke2.txt
	dune exec bin/nfsbench.exe -- slo --jobs 1 > /tmp/renofs-slo-smoke1.txt
	cmp /tmp/renofs-slo-smoke1.txt /tmp/renofs-slo-smoke2.txt
	dune exec bin/nfsbench.exe -- validate-json examples/crash_noreboot.scenario.json
	! dune exec bin/nfsbench.exe -- slo examples/crash_noreboot.scenario.json > /dev/null

bench-gate: build
	dune exec bin/nfsbench.exe -- all --json /tmp/renofs-bench-gate.json > /dev/null
	dune exec bin/nfsbench.exe -- diff BENCH_quick.json /tmp/renofs-bench-gate.json --tolerance 15

bench-baseline: build
	dune exec bin/nfsbench.exe -- all --json BENCH_quick.json > /dev/null

perf-gate: build
	dune exec bin/nfsbench.exe -- perf --baseline BENCH_perf.json --tolerance 30

perf-baseline: build
	dune exec bin/nfsbench.exe -- perf --json BENCH_perf.json

profile-smoke: build
	dune exec bin/nfsbench.exe -- run graph1 --jobs 2 --profile /tmp/renofs-profile.json --perfetto /tmp/renofs-perfetto.json > /dev/null
	dune exec bin/nfsbench.exe -- validate-json /tmp/renofs-profile.json
	rm -rf /tmp/renofs-flight
	! dune exec bin/nfsbench.exe -- slo examples/crash_noreboot.scenario.json --flight /tmp/renofs-flight > /dev/null
	test -s /tmp/renofs-flight/*/MANIFEST.json
	test -s /tmp/renofs-flight/*/reason.txt
	test -s /tmp/renofs-flight/*/trace_tail.jsonl
	test -s /tmp/renofs-flight/*/profile.json

check: build test fmt smoke chaos-smoke fuzz-smoke fleet-smoke slo-smoke bench-gate perf-gate profile-smoke

clean:
	dune clean
