(** An Nhfsstone-style NFS load generator [Legato89].

    Offers a target RPC rate against a mounted filesystem with a given
    operation mix, from several concurrent child processes, and reports
    the achieved rate plus round-trip statistics.  As in the paper's
    Section 4 experiments, the mixes used for the transport comparison
    avoid operations that modify the subtree, so runs are repeatable
    without reloading. *)

type op = Op_lookup | Op_read | Op_getattr | Op_write | Op_readdir

type mix = (op * float) list
(** Weighted operation mixture. *)

val lookup_mix : mix
(** 100% lookup — Graphs 1, 3 and 5. *)

val read_lookup_mix : mix
(** 50/50 read/lookup — Graphs 2 and 4. *)

val default_mix : mix
(** Nhfsstone's stock mixture (lookup-dominant, 8% writes), for
    workloads beyond the paper's two; writes modify the subtree, so
    preload before every run as the appendix prescribes. *)

type config = {
  rate : float;  (** offered ops/second *)
  duration : float;  (** measurement interval, seconds *)
  children : int;  (** concurrent generator processes *)
  mix : mix;
  seed : int;
}

type result = {
  offered : float;
  achieved : float;  (** completed ops/second *)
  ops_completed : int;
  mean_rtt : float;  (** mean RPC round-trip over the run, seconds *)
  rtt_by_proc : (string * float * int) list;
      (** (procedure, mean RTT, samples) *)
  retransmits : int;
  read_rate : float;  (** completed read ops/second *)
  mean_op_latency : float;  (** syscall-level latency, seconds *)
}

val run :
  ?latency_hist:Renofs_engine.Stats.Hist.t ->
  Renofs_core.Nfs_client.t ->
  Fileset.t ->
  config ->
  result
(** Drive the load from inside a process; returns after [duration] of
    virtual time (plus drain).  RPC statistics are deltas over the run
    as long as the mount is fresh.  [latency_hist] additionally records
    every op's syscall-level latency in milliseconds — share one
    histogram across a population of clients to get fleet-wide
    quantiles. *)
