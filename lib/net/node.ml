module Sim = Renofs_engine.Sim
module Probe = Renofs_engine.Probe
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Rng = Renofs_engine.Rng
module Mbuf = Renofs_mbuf.Mbuf
module Trace = Renofs_trace.Trace
module Metrics = Renofs_metrics.Metrics

type datagram = {
  proto : Packet.proto;
  src : int;
  src_port : int;
  dst_port : int;
  payload : Mbuf.t;
  sum : (int * int) option;
      (* sender's (length, checksum) metadata — see [Packet.t.sum] *)
}

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable packets_forwarded : int;
  mutable no_route_drops : int;
  mutable no_handler_drops : int;
}

type iface = { mtu : int; link : Link.t; peer : int }

(* Everything a world may hang off a node to watch (or feed) it.  One
   record instead of one setter per layer: adding an observer kind means
   one field here plus its wiring in [attach]. *)
type observers = {
  trace : Trace.t option;
  metrics : Metrics.run option;
  pool : Mbuf.Pool.t option;
}

type t = {
  sim : Sim.t;
  id : int;
  name : string;
  cpu : Cpu.t;
  mutable nic : Nic.profile;
  rng : Rng.t;
  forward_cost : float;
  mutable ifaces : iface list; (* in attachment order *)
  routes : (int, iface) Hashtbl.t;
  mutable default_route : (iface * (int, unit) Hashtbl.t) option;
      (* single-homed shortcut: (only iface, ids reachable through it) *)
  (* One-entry route cache: a router forwards long runs of packets to
     the same destination (cross-traffic especially), and a host's
     sends cluster per peer — so remembering the last lookup skips the
     hashtable (and its [find_opt] allocation) on almost every packet.
     Invalidated by [auto_routes]. *)
  mutable rc_dst : int;
  mutable rc_iface : iface option;
  reasm : Ipfrag.t;
  mutable udp_handler : (datagram -> unit) option;
  mutable tcp_handler : (datagram -> unit) option;
  copy_ctr : Mbuf.Counters.t;
  stats : stats;
  mutable next_ip_id : int;
  mutable trace : Trace.t option;
  mutable metrics : Metrics.run option;
  mutable pool : Mbuf.Pool.t option;
}

let create sim ~id ~name ~mips ~nic ~rng ?(forward_cost = 0.3e-3) () =
  {
    sim;
    id;
    name;
    cpu = Cpu.create sim ~mips;
    nic;
    rng;
    forward_cost;
    ifaces = [];
    routes = Hashtbl.create 16;
    default_route = None;
    rc_dst = min_int;
    rc_iface = None;
    reasm = Ipfrag.create sim ();
    udp_handler = None;
    tcp_handler = None;
    copy_ctr = Mbuf.Counters.create ();
    stats =
      {
        datagrams_sent = 0;
        datagrams_received = 0;
        packets_forwarded = 0;
        no_route_drops = 0;
        no_handler_drops = 0;
      };
    next_ip_id = id * 100_000;
    trace = None;
    metrics = None;
    pool = None;
  }

let detached : observers = { trace = None; metrics = None; pool = None }

let id t = t.id
let name t = t.name
let sim t = t.sim
let cpu t = t.cpu
let rng t = t.rng
let nic t = t.nic
let set_nic t profile = t.nic <- profile
let copy_counters t = t.copy_ctr
let stats t = t.stats
let trace t = t.trace

let reassembly_timeouts t = Ipfrag.timeouts t.reasm
let links t = List.rev_map (fun i -> i.link) t.ifaces |> List.rev
let metrics t = t.metrics
let pool t = t.pool

let register_link_metrics run link =
  let p suffix = Printf.sprintf "link:%s/%s" (Link.name link) suffix in
  let fi = float_of_int in
  Metrics.register run ~name:(p "busy_time") ~unit_:"s" ~kind:Metrics.Counter
    (fun () -> Link.busy_time link);
  Metrics.register run ~name:(p "qlen") ~unit_:"count" ~kind:Metrics.Gauge
    (fun () -> fi (Link.queue_length link));
  Metrics.register run ~name:(p "drops") ~unit_:"count" ~kind:Metrics.Counter
    (fun () ->
      let s = Link.stats link in
      fi (s.Link.queue_drops + s.Link.error_drops));
  Metrics.register run ~name:(p "bytes") ~unit_:"bytes" ~kind:Metrics.Counter
    (fun () -> fi (Link.stats link).Link.bytes_sent);
  Metrics.register run ~name:(p "mangled") ~unit_:"count" ~kind:Metrics.Counter
    (fun () -> fi (Link.stats link).Link.mangled)

(* One call per node wires every observer kind at once: the trace sink
   covers the host's own hooks, its reassembly buffer (fragment-loss
   events) and every outgoing link direction attached so far; the
   metrics run registers sampled sources for the same set; the mbuf
   pool is simply recorded for upper layers to consult.  Detached
   fields stay [None] and cost one branch wherever they are read. *)
let attach t (obs : observers) =
  t.trace <- obs.trace;
  t.pool <- obs.pool;
  List.iter (fun i -> Link.set_trace i.link obs.trace) t.ifaces;
  Ipfrag.set_on_timeout t.reasm (fun ~src ~ip_id ->
      match t.trace with
      | Some sink ->
          Trace.record sink ~time:(Sim.now t.sim) ~node:t.id
            (Trace.Frag_lost { src; ip_id })
      | None -> ());
  t.metrics <- obs.metrics;
  match obs.metrics with
  | None -> ()
  | Some run ->
      let p suffix = t.name ^ "." ^ suffix in
      let fi = float_of_int in
      Metrics.register run ~name:(p "ipfrag.pending") ~unit_:"count"
        ~kind:Metrics.Gauge (fun () -> fi (Ipfrag.pending t.reasm));
      Metrics.register run ~name:(p "ipfrag.timeouts") ~unit_:"count"
        ~kind:Metrics.Counter (fun () -> fi (Ipfrag.timeouts t.reasm));
      Metrics.register run ~name:(p "mbuf.bytes_copied") ~unit_:"bytes"
        ~kind:Metrics.Counter (fun () ->
          fi t.copy_ctr.Mbuf.Counters.bytes_copied);
      List.iter (fun i -> register_link_metrics run i.link) t.ifaces

let handler_for t = function
  | Packet.Udp -> t.udp_handler
  | Packet.Tcp -> t.tcp_handler

(* Handlers that may suspend (block on the CPU, a socket, a timer) are
   wrapped in a fiber at registration time, so the dispatch point below
   stays a plain call; handlers that never suspend register with
   [~needs_fiber:false] and skip the fiber allocation entirely — the
   cross-traffic sink runs millions of times per run and does nothing
   but recycle a buffer. *)
let set_proto_handler t ?(needs_fiber = true) proto h =
  let h = if needs_fiber then fun dg -> Proc.run (fun () -> h dg) else h in
  match proto with
  | Packet.Udp -> t.udp_handler <- Some h
  | Packet.Tcp -> t.tcp_handler <- Some h

let route_slow t dst =
  match Hashtbl.find_opt t.routes dst with
  | Some _ as r -> r
  | None -> (
      match t.default_route with
      | Some (iface, known) when dst <> t.id && Hashtbl.mem known dst ->
          Some iface
      | _ -> None)

let route t dst =
  if dst = t.rc_dst then t.rc_iface
  else begin
    let r = route_slow t dst in
    t.rc_dst <- dst;
    t.rc_iface <- r;
    r
  end

(* Deliver a locally-addressed packet: interrupt-level per-packet work,
   reassembly, checksum of completed datagrams, protocol dispatch.

   Written in continuation-passing style over [Cpu.consume_k]: the old
   shape spawned a process per packet just to block on the CPU twice,
   which cost a fiber allocation and two effect suspensions per packet
   for control flow that creates exactly the same events.  The stage
   boundaries (one event to enter, one CPU job per stage) are
   unchanged, so event sequences — and therefore all simulated
   timings — are identical. *)
let dispatch t (whole : Packet.t) =
  t.stats.datagrams_received <- t.stats.datagrams_received + 1;
  match handler_for t whole.Packet.proto with
  | None -> t.stats.no_handler_drops <- t.stats.no_handler_drops + 1
  | Some h -> (
      let dg =
        {
          proto = whole.Packet.proto;
          src = whole.Packet.src;
          src_port = whole.Packet.src_port;
          dst_port = whole.Packet.dst_port;
          payload = whole.Packet.payload;
          sum = whole.Packet.sum;
        }
      in
      (* The handler is the protocol layer (UDP/TCP demux, RPC decode,
         fiber resume); charge it to the transport slot when probed. *)
      match Sim.probe t.sim with
      | None -> h dg
      | Some p ->
          let d = p.Probe.enter Probe.transport in
          (try h dg with e -> p.Probe.leave d; raise e);
          p.Probe.leave d)

let deliver_local t (pkt : Packet.t) =
  Sim.after t.sim 0.0 (fun () ->
      Cpu.consume_k ~priority:Cpu.Interrupt t.cpu
        (Nic.rx_cost t.nic ~data_bytes:(Packet.data_len pkt))
        (fun () ->
          match Ipfrag.insert t.reasm pkt with
          | None -> ()
          | Some whole ->
              Cpu.consume_k t.cpu
                (Nic.checksum_cost t.nic ~bytes:(Packet.data_len whole))
                (fun () -> dispatch t whole)))

let forward t (pkt : Packet.t) =
  Sim.after t.sim 0.0 (fun () ->
      Cpu.consume_k ~priority:Cpu.Interrupt t.cpu t.forward_cost (fun () ->
          match route t pkt.Packet.dst with
          | None -> t.stats.no_route_drops <- t.stats.no_route_drops + 1
          | Some iface ->
              t.stats.packets_forwarded <- t.stats.packets_forwarded + 1;
              List.iter (Link.send iface.link) (Packet.fragment pkt ~mtu:iface.mtu)))

let receive t pkt =
  if pkt.Packet.dst = t.id then deliver_local t pkt else forward t pkt

let connect a b ~name ~bandwidth_bps ~delay ~mtu ~queue_limit ?(loss = 0.0) () =
  let ab =
    Link.create a.sim
      ~name:(name ^ ":" ^ a.name ^ ">" ^ b.name)
      ~bandwidth_bps ~delay ~queue_limit ~loss ~owner:a.id ~rng:(Rng.split a.rng)
      ~deliver:(fun pkt -> receive b pkt)
      ()
  in
  let ba =
    Link.create a.sim
      ~name:(name ^ ":" ^ b.name ^ ">" ^ a.name)
      ~bandwidth_bps ~delay ~queue_limit ~loss ~owner:b.id ~rng:(Rng.split b.rng)
      ~deliver:(fun pkt -> receive a pkt)
      ()
  in
  (match a.trace with Some _ as tr -> Link.set_trace ab tr | None -> ());
  (match b.trace with Some _ as tr -> Link.set_trace ba tr | None -> ());
  (match a.metrics with Some run -> register_link_metrics run ab | None -> ());
  (match b.metrics with Some run -> register_link_metrics run ba | None -> ());
  a.ifaces <- a.ifaces @ [ { mtu; link = ab; peer = b.id } ];
  b.ifaces <- b.ifaces @ [ { mtu; link = ba; peer = a.id } ];
  (ab, ba)

let auto_routes nodes =
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun n ->
      n.rc_dst <- min_int;
      n.rc_iface <- None;
      Hashtbl.replace by_id n.id n)
    nodes;
  let bfs src =
    (* Shortest-hop tree rooted at [src]; record each node's first hop. *)
    let first_hop = Hashtbl.create 16 in
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited src.id ();
    let q = Queue.create () in
    List.iter
      (fun iface ->
        if not (Hashtbl.mem visited iface.peer) then begin
          Hashtbl.replace visited iface.peer ();
          Hashtbl.replace first_hop iface.peer iface;
          Queue.add (iface.peer, iface) q
        end)
      src.ifaces;
    while not (Queue.is_empty q) do
      let node_id, hop = Queue.take q in
      match Hashtbl.find_opt by_id node_id with
      | None -> ()
      | Some node ->
          List.iter
            (fun iface ->
              if not (Hashtbl.mem visited iface.peer) then begin
                Hashtbl.replace visited iface.peer ();
                Hashtbl.replace first_hop iface.peer hop;
                Queue.add (iface.peer, hop) q
              end)
            node.ifaces
    done;
    Hashtbl.iter (fun dst iface -> Hashtbl.replace src.routes dst iface) first_hop
  in
  (* A single-homed host's whole table would say "via my one link"; a
     shared membership set of its connected component replaces the
     per-destination entries (and the per-host BFS), which is what lets
     worlds with thousands of leaf clients route in O(n) instead of
     O(n^2) time and space.  Multi-homed nodes (routers) and nodes
     outside the first component keep the exact BFS tables. *)
  match nodes with
  | [] -> ()
  | first :: _ ->
      let component = Hashtbl.create 16 in
      let q = Queue.create () in
      Hashtbl.replace component first.id ();
      Queue.add first q;
      while not (Queue.is_empty q) do
        let n = Queue.take q in
        List.iter
          (fun iface ->
            if not (Hashtbl.mem component iface.peer) then begin
              Hashtbl.replace component iface.peer ();
              match Hashtbl.find_opt by_id iface.peer with
              | Some m -> Queue.add m q
              | None -> ()
            end)
          n.ifaces
      done;
      List.iter
        (fun n ->
          match n.ifaces with
          | [ only ] when Hashtbl.mem component n.id ->
              n.default_route <- Some (only, component)
          | _ -> bfs n)
        nodes

(* Continuation-passing transmit: checksum cost, then per-fragment NIC
   work and wire handoff, each stage from the CPU completion event of
   the one before — the same job sequence {!Cpu.consume} produced when
   this blocked a process, without needing one.  [k] runs right after
   the last fragment reaches its link. *)
let send_datagram_k t ?sum ~proto ~dst ~src_port ~dst_port payload k =
  match route t dst with
  | None ->
      t.stats.no_route_drops <- t.stats.no_route_drops + 1;
      k ()
  | Some iface ->
      t.next_ip_id <- t.next_ip_id + 1;
      let dgram =
        Packet.make_datagram ?sum ~proto ~src:t.id ~dst ~src_port ~dst_port
          ~ip_id:t.next_ip_id payload
      in
      let bytes = Packet.data_len dgram in
      Cpu.consume_k t.cpu (Nic.checksum_cost t.nic ~bytes) (fun () ->
          let frags = Packet.fragment dgram ~mtu:iface.mtu in
          let rec send_frags = function
            | [] ->
                t.stats.datagrams_sent <- t.stats.datagrams_sent + 1;
                k ()
            | pkt :: rest ->
                let data_bytes = Packet.data_len pkt in
                let clusters = Mbuf.num_clusters pkt.Packet.payload in
                let cluster_bytes = Mbuf.cluster_bytes pkt.Packet.payload in
                let small_bytes = data_bytes - cluster_bytes in
                (match t.nic.Nic.strategy with
                | Nic.Copy_to_board ->
                    t.copy_ctr.Mbuf.Counters.bytes_copied <-
                      t.copy_ctr.Mbuf.Counters.bytes_copied + data_bytes
                | Nic.Map_clusters ->
                    t.copy_ctr.Mbuf.Counters.bytes_copied <-
                      t.copy_ctr.Mbuf.Counters.bytes_copied + small_bytes);
                Cpu.consume_k t.cpu
                  (Nic.tx_cost t.nic ~data_bytes ~clusters ~small_bytes)
                  (fun () ->
                    Link.send iface.link pkt;
                    send_frags rest)
          in
          send_frags frags)

let send_datagram t ?sum ~proto ~dst ~src_port ~dst_port payload =
  Proc.suspend (fun resume ->
      send_datagram_k t ?sum ~proto ~dst ~src_port ~dst_port payload resume)
