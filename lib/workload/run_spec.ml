module E = Experiments
module Json = Renofs_json.Json
module Trace = Renofs_trace.Trace
module Fault = Renofs_fault.Fault
module Metrics = Renofs_metrics.Metrics
module Profile = Renofs_profile.Profile
module Perfetto = Renofs_profile.Perfetto
module Flight = Renofs_profile.Flight

type t = {
  rs_scale : E.scale option;
  rs_jobs : int option;
  rs_seed : int option;
  rs_json : string option;
  rs_trace : string option;
  rs_report : bool;
  rs_metrics : string option;
  rs_faults : string option;
  rs_profile : string option;
  rs_perfetto : string option;
  rs_flight : string option;
}

let empty =
  {
    rs_scale = None;
    rs_jobs = None;
    rs_seed = None;
    rs_json = None;
    rs_trace = None;
    rs_report = false;
    rs_metrics = None;
    rs_faults = None;
    rs_profile = None;
    rs_perfetto = None;
    rs_flight = None;
  }

let scale t = Option.value t.rs_scale ~default:E.Quick
let seed t = Option.value t.rs_seed ~default:0

let override ~base t =
  let pick a b = match a with Some _ -> a | None -> b in
  {
    rs_scale = pick t.rs_scale base.rs_scale;
    rs_jobs = pick t.rs_jobs base.rs_jobs;
    rs_seed = pick t.rs_seed base.rs_seed;
    rs_json = pick t.rs_json base.rs_json;
    rs_trace = pick t.rs_trace base.rs_trace;
    rs_report = t.rs_report || base.rs_report;
    rs_metrics = pick t.rs_metrics base.rs_metrics;
    rs_faults = pick t.rs_faults base.rs_faults;
    rs_profile = pick t.rs_profile base.rs_profile;
    rs_perfetto = pick t.rs_perfetto base.rs_perfetto;
    rs_flight = pick t.rs_flight base.rs_flight;
  }

let of_json ~ctx o =
  let bad fmt = Printf.ksprintf (fun m -> raise (Json.Bad (ctx ^ ": " ^ m))) fmt in
  List.iter
    (fun (k, _) ->
      match k with
      | "scale" | "jobs" | "seed" | "json" | "trace" | "report" | "metrics"
      | "faults" | "profile" | "perfetto" | "flight" ->
          ()
      | other -> bad "unknown run field %S" other)
    o;
  let str name =
    Option.map (Json.str ~ctx:(ctx ^ "." ^ name)) (Json.member_opt name o)
  in
  let int name =
    Option.map
      (fun j -> int_of_float (Json.num ~ctx:(ctx ^ "." ^ name) j))
      (Json.member_opt name o)
  in
  let scale =
    match str "scale" with
    | None -> None
    | Some "quick" -> Some E.Quick
    | Some "full" -> Some E.Full
    | Some other -> bad "scale %S (expected \"quick\" or \"full\")" other
  in
  let report =
    match Json.member_opt "report" o with
    | None -> false
    | Some (Json.Bool b) -> b
    | Some _ -> bad "report: expected a boolean"
  in
  {
    rs_scale = scale;
    rs_jobs = int "jobs";
    rs_seed = int "seed";
    rs_json = str "json";
    rs_trace = str "trace";
    rs_report = report;
    rs_metrics = str "metrics";
    rs_faults = str "faults";
    rs_profile = str "profile";
    rs_perfetto = str "perfetto";
    rs_flight = str "flight";
  }

(* Fail before the sweep runs, not after: a mistyped --trace or --json
   path should not cost minutes of simulation. *)
let check_writable path =
  match open_out path with
  | oc ->
      close_out oc;
      None
  | exception Sys_error msg -> Some msg

let check_outputs paths =
  List.find_map
    (fun (what, path) ->
      Option.map
        (fun msg -> Printf.sprintf "cannot write %s: %s" what msg)
        (Option.bind path check_writable))
    paths

(* The default is already clamped to the machine and to the cell count
   (a 9-cell fleet run should not spawn idle domains); an explicit
   larger --jobs still runs, oversubscribed, with a warning. *)
let effective_jobs ?cells jobs =
  let cap j = match cells with Some n when n >= 1 -> min j n | _ -> j in
  match jobs with
  | None -> cap (Sweep.default_jobs ())
  | Some j ->
      let j = max 1 j in
      let recommended = Sweep.default_jobs () in
      if j > recommended then
        Format.eprintf
          "nfsbench: --jobs %d exceeds this machine's %d recommended domains; \
           running oversubscribed@."
          j recommended;
      (match cells with
      | Some n when j > n && n >= 1 ->
          Format.eprintf
            "nfsbench: --jobs %d exceeds the %d cells; extra domains would \
             idle, capping to %d@."
            j n n
      | _ -> ());
      cap j

let resolve_faults = function
  | None -> Ok None
  | Some spec -> Result.map Option.some (Fault.resolve spec)

(* CSV by extension, JSONL otherwise. *)
let export_metrics mt path =
  if Filename.check_suffix path ".csv" then Metrics.export_csv mt path
  else Metrics.export_jsonl mt path

(* A compact rendering of the effective run spec, stored in flight
   bundles so a dump can be replayed without the original command line. *)
let spec_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"schema\":\"renofs-runspec/1\"";
  Buffer.add_string buf
    (Printf.sprintf ",\"scale\":\"%s\""
       (match scale t with E.Quick -> "quick" | E.Full -> "full"));
  Buffer.add_string buf (Printf.sprintf ",\"seed\":%d" (seed t));
  (match t.rs_jobs with
  | Some j -> Buffer.add_string buf (Printf.sprintf ",\"jobs\":%d" j)
  | None -> ());
  let str_field name v =
    match v with
    | Some s ->
        Buffer.add_string buf (Printf.sprintf ",%S:%S" name s)
    | None -> ()
  in
  str_field "faults" t.rs_faults;
  str_field "flight" t.rs_flight;
  Buffer.add_string buf "}";
  Buffer.contents buf

let execute_many ?(print = fun _ -> ()) t specs =
  match
    check_outputs
      [
        ("trace", t.rs_trace);
        ("json", t.rs_json);
        ("metrics", t.rs_metrics);
        ("profile", t.rs_profile);
        ("perfetto", t.rs_perfetto);
      ]
  with
  | Some msg -> Error msg
  | None -> (
      match resolve_faults t.rs_faults with
      | Error msg -> Error msg
      | Ok faults ->
          let cells =
            List.fold_left (fun acc s -> acc + List.length s.E.sp_cells) 0 specs
          in
          let jobs = effective_jobs ~cells t.rs_jobs in
          let tr =
            if t.rs_trace <> None || t.rs_report || t.rs_perfetto <> None then
              (* Full-scale sweeps emit a few hundred thousand events;
                 size the ring so the early runs are not overwritten. *)
              Some (Trace.create ~capacity:(1 lsl 20) ())
            else None
          in
          let mt =
            match t.rs_metrics with
            | Some _ -> Some (Metrics.create ())
            | None -> None
          in
          let profile =
            if t.rs_profile <> None || t.rs_perfetto <> None then
              Some (Profile.create ())
            else None
          in
          let flight =
            match t.rs_flight with
            | Some dir ->
                Some (Flight.arm ~dir ~spec_json:(spec_json t) ~seed:(seed t))
            | None -> None
          in
          (match faults with
          | Some f ->
              Format.printf "faults: %s — %s@." f.Fault.name f.Fault.description
          | None -> ());
          let results =
            E.run_specs ~jobs ?trace:tr ?faults ?metrics:mt ?profile ?flight
              specs
          in
          List.iter (fun r -> print (E.render r)) results;
          (match (mt, t.rs_metrics) with
          | Some mt, Some path ->
              export_metrics mt path;
              Format.printf "metrics: %d series written to %s@."
                (List.length (Metrics.series mt))
                path
          | _ -> ());
          (match t.rs_json with
          | Some path ->
              Bench_json.write_file ~scale:(scale t) ~jobs ~path results
          | None -> ());
          (match (tr, t.rs_trace) with
          | Some tr, Some path ->
              Trace.export_jsonl tr path;
              Format.printf "trace: %d events written to %s (%d overwritten)@."
                (Trace.length tr) path (Trace.dropped tr)
          | _ -> ());
          (match tr with
          | Some tr when t.rs_report ->
              Trace.Report.print Format.std_formatter (Trace.Report.build tr)
          | _ -> ());
          (match (profile, t.rs_profile) with
          | Some p, Some path ->
              Profile.write_file ~path p;
              Format.printf "profile: written to %s@." path
          | _ -> ());
          (match profile with
          | Some p ->
              Profile.print Format.std_formatter (Profile.snapshot p)
          | None -> ());
          (match (tr, t.rs_perfetto) with
          | Some tr, Some path ->
              let n =
                Perfetto.export ~path
                  ?profile:(Option.map Profile.snapshot profile)
                  (Trace.to_list tr)
              in
              Format.printf "perfetto: %d events written to %s@." n path
          | _ -> ());
          Ok results)

let execute ?print t spec =
  Result.map
    (function [ r ] -> r | _ -> assert false)
    (execute_many ?print t [ spec ])
