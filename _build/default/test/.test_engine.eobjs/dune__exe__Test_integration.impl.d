test/test_integration.ml: Alcotest Bytes Char Gen Hashtbl List Nfs_client Nfs_proto Nfs_server Printf QCheck QCheck_alcotest Renofs_core Renofs_engine Renofs_net Renofs_transport
