lib/engine/iostat.mli: Cpu Sim
