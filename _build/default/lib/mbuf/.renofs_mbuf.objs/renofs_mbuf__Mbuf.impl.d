lib/mbuf/mbuf.ml: Bytes Char List String
