lib/rpc/rpc_msg.mli: Renofs_mbuf Renofs_xdr
