lib/core/nfs_client.ml: Attrcache Biod Bytes Client_transport Hashtbl List Mount_proto Nfs_proto Printf Renofs_engine Renofs_net Renofs_rpc Renofs_transport Renofs_vfs Renofs_xdr String
