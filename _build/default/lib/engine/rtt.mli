(** Jacobson/Karels round-trip-time estimation.

    Maintains the smoothed mean [A] and mean deviation [D] of observed
    RTTs and derives a retransmission timeout [A + k*D].  The paper uses
    [k = 2] for small NFS RPCs (Getattr, Lookup) and — after finding the
    retry rate 2–4x too high — [k = 4] for big RPCs (Read, Write,
    Readdir), matching TCP's [srtt + 4*rttvar]. *)

type t

val create : ?k:float -> ?min_rto:float -> ?max_rto:float -> unit -> t
(** Defaults: [k = 4.0], [min_rto = 0.1] s, [max_rto = 60.0] s. *)

val observe : t -> float -> unit
(** Feed one RTT sample (seconds).  The first sample initialises
    [A = sample], [D = sample /. 2]; later samples use gains 1/8 and 1/4. *)

val initialized : t -> bool
(** [false] until the first sample. *)

val srtt : t -> float
(** Smoothed RTT [A]; [0.0] before the first sample. *)

val deviation : t -> float
(** Smoothed mean deviation [D]. *)

val rto : t -> default:float -> float
(** [A + k*D] clamped to [\[min_rto, max_rto\]], or [default] before the
    first sample (the mount-time constant). *)
