(** Day-in-the-life scenarios with SLO verdicts.

    A scenario binds, in one declarative [renofs-scenario/1] document,
    everything a "day in the life" run needs: a fleet {!world}
    (servers, clients, router tier, WAN mix), a time-varying load
    program (the {!Renofs_workload.Nhfsstone.segment} rate schedule —
    diurnal curves, flash crowds, bulk phases), a fault timeline
    (reusing [renofs-fault/1] action objects verbatim), an {!slo} to
    judge the run against, and a {!Renofs_workload.Run_spec.t} run
    section sharing the CLI's flag surface.

    [nfsbench slo] compiles each scenario to one experiment cell
    ({!cell}), so a suite sweeps under the ordinary deterministic
    runner: byte-identical output at any [--jobs].  The {!Slo}
    evaluator then judges the run's trace — p99 latency per operation
    class, availability over fixed windows, worst crash-to-service
    recovery gap, and the {!Renofs_fault.Fault.Check} integrity
    invariants — and the verdict column says [PASS] or [FAIL:]
    followed by the violated SLO names. *)

type world = {
  w_servers : int;  (** 1 .. 90 *)
  w_clients : int;  (** at least 1; one shard ["/home<i>"] per client *)
  w_tier : Renofs_net.Topology.tier;
  w_wan_fraction : float;  (** fraction of clients on 56K edges *)
  w_seed : int;  (** topology/workload seed; 0 = default world *)
}

val default_world : world
(** 2 servers, 6 clients, [Backbone 1], no WAN clients, seed 0. *)

type slo = {
  slo_p99_ms : (string * float) list;
      (** p99 ceiling (ms) per operation class — a procedure name as
          printed by {!Renofs_trace.Trace.proc_name} (["read"],
          ["lookup"], ...) or ["*"] for all RPCs pooled.  A class with
          no samples in the run passes vacuously. *)
  slo_availability : float;
      (** floor on the fraction of judged {!slo_window}s that saw at
          least one RPC reply; a window with no requests is not
          judged.  [0.] disables the check. *)
  slo_window : float;  (** availability window, seconds (default 1.0) *)
  slo_max_recovery_s : float option;
      (** ceiling on the worst per-server crash-to-first-service gap
          ({!Renofs_fault.Fault.Check.recovery_time}); [None] skips *)
  slo_integrity : bool;
      (** require the {!Renofs_fault.Fault.Check} invariants: durable
          writes (read back from each server) and no-double-effect per
          server, hard-mount-errors and stale-lease-reads globally *)
}

val default_slo : slo
(** No latency ceilings, no availability floor, 1s window, no recovery
    ceiling, integrity on. *)

type t = {
  sc_name : string;
  sc_description : string;
  sc_world : world;
  sc_load : Renofs_workload.Nhfsstone.segment list;
      (** the per-client rate schedule; never empty *)
  sc_faults : Renofs_fault.Fault.action list;
      (** action times are relative to load start (after provisioning
          and the mount storm), not world construction *)
  sc_slo : slo;
  sc_run : Renofs_workload.Run_spec.t;
      (** the file's ["run"] section; the CLI overrides it via
          {!Renofs_workload.Run_spec.override} *)
}

(** {1 SLO evaluation}

    Pure over a trace record list, so verdict logic is testable on
    synthetic streams without running a world. *)

module Slo : sig
  type breach = {
    b_slo : string;
        (** ["p99-read"], ["p99-all"], ["availability"], ["recovery"],
            or ["integrity:<invariant>"] *)
    b_detail : string;  (** measured vs ceiling, human-readable *)
  }

  type outcome = {
    o_p99_ms : float;  (** p99 over every completed RPC, ms *)
    o_availability : float;  (** fraction of judged windows available *)
    o_recovery : float;  (** worst per-server recovery gap, seconds *)
    o_breaches : breach list;  (** empty = PASS *)
  }

  val p99 : float list -> float
  (** The 99th percentile (nearest-rank on the sorted samples); NaN
      samples are dropped; [0.] of the empty list.  A sample exactly
      at a ceiling passes — breaches are strict inequalities. *)

  val availability : window:float -> Renofs_trace.Trace.record_ list -> float
  (** Fixed windows of [window] seconds anchored at the earliest RPC
      event: a window is judged when it contains a send or retransmit,
      available when it contains a reply.  [1.] when no window is
      judged. *)

  val evaluate :
    slo ->
    server_nodes:int list ->
    read_back:(node:int -> file:int -> off:int -> len:int -> bytes option) ->
    Renofs_trace.Trace.record_ list ->
    outcome
  (** Judge a run.  [server_nodes] are the node ids of the fleet's
      servers — per-server checks (recovery, durable writes,
      double-effect) run on the records observed at that node, so one
      server's crash is never paired with another's first service.
      [read_back ~node] reads an extent back from that server's
      post-run file system. *)
end

(** {1 Builtins} *)

val builtins : t list
(** The five [nfsbench slo] defaults: [diurnal] (overnight quiet,
    morning ramp, daytime plateau, evening bulk backup), [flash-crowd]
    (8x rate spike and decay), [crash-at-peak] (one server crashes at
    the daily peak and reboots), [flapping-wan] (half the clients on
    56K lines that flap), [background-corruption] (2% wire corruption
    all day, absorbed by checksums + retransmission). *)

val builtin_names : string list
val find_builtin : string -> t option

(** {1 JSON scenario files}

    Schema ["renofs-scenario/1"]:

    {v
    { "schema": "renofs-scenario/1",
      "name": "crash-at-peak",
      "description": "server0 crashes at the daily peak",
      "world": { "servers": 2, "clients": 6, "tier": "backbone:1",
                 "wan_fraction": 0.0, "seed": 0 },
      "load": [
        { "label": "warm",  "duration": 6.0, "rate": 3.0, "mix": "default" },
        { "label": "climb", "duration": 4.0, "rate": 3.0, "rate_end": 9.0,
          "mix": "default" },
        { "label": "peak",  "duration": 10.0, "rate": 9.0, "mix": "default" } ],
      "faults": [
        { "kind": "server_crash", "at": 12.0, "downtime": 3.0,
          "server": "server0" } ],
      "slo": { "p99_ms": { "*": 6000.0 }, "availability": 0.8,
               "window": 1.0, "max_recovery_s": 10.0, "integrity": true },
      "run": { "jobs": 2 } }
    v}

    ["world"], ["faults"], ["slo"] and ["run"] are optional (defaults:
    {!default_world}, no faults, {!default_slo}, nothing set); ["load"]
    is required and non-empty.  ["tier"] is ["backbone:N"] or
    ["fat-tree:SxL"]; segment ["mix"] names come from
    {!Renofs_workload.Nhfsstone.mix_of_name}; fault action objects are
    exactly [renofs-fault/1]'s.  Unknown fields anywhere are errors —
    a typo fails loudly instead of running with defaults. *)

val of_json : Renofs_json.Json.json -> (t, string) result
val parse : string -> (t, string) result
val load_file : string -> (t, string) result

val resolve : string -> (t, string) result
(** A builtin name if one matches, otherwise a scenario file path. *)

(** {1 Running} *)

val cell : t -> Renofs_workload.Experiments.cell
(** One self-contained cell: build the fleet world, provision and
    mount with the trace gated off, then enable tracing, install the
    fault timeline and run the load program on every client; afterwards
    evaluate the SLO and emit the row
    [scenario | elapsed | ops | achieved | p99 | avail | recovery |
    verdict]. *)

val suite_spec : t list -> Renofs_workload.Experiments.spec
(** The ["slo"] spec: one {!cell} per scenario, rows in scenario
    order. *)

val failures : Renofs_workload.Experiments.results -> string list
(** ["<scenario>: FAIL:<slo,...>"] for each failing row — the
    [nfsbench slo] exit-code and stderr source. *)
