lib/core/attrcache.mli: Nfs_proto Renofs_engine
