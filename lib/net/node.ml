module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Rng = Renofs_engine.Rng
module Mbuf = Renofs_mbuf.Mbuf
module Trace = Renofs_trace.Trace
module Metrics = Renofs_metrics.Metrics

type datagram = {
  proto : Packet.proto;
  src : int;
  src_port : int;
  dst_port : int;
  payload : Mbuf.t;
  sum : (int * int) option;
      (* sender's (length, checksum) metadata — see [Packet.t.sum] *)
}

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable packets_forwarded : int;
  mutable no_route_drops : int;
  mutable no_handler_drops : int;
}

type iface = { mtu : int; link : Link.t; peer : int }

type t = {
  sim : Sim.t;
  id : int;
  name : string;
  cpu : Cpu.t;
  mutable nic : Nic.profile;
  rng : Rng.t;
  forward_cost : float;
  mutable ifaces : iface list; (* in attachment order *)
  routes : (int, iface) Hashtbl.t;
  mutable default_route : (iface * (int, unit) Hashtbl.t) option;
      (* single-homed shortcut: (only iface, ids reachable through it) *)
  reasm : Ipfrag.t;
  mutable udp_handler : (datagram -> unit) option;
  mutable tcp_handler : (datagram -> unit) option;
  copy_ctr : Mbuf.Counters.t;
  stats : stats;
  mutable next_ip_id : int;
  mutable trace : Trace.t option;
  mutable metrics : Metrics.run option;
}

let create sim ~id ~name ~mips ~nic ~rng ?(forward_cost = 0.3e-3) () =
  {
    sim;
    id;
    name;
    cpu = Cpu.create sim ~mips;
    nic;
    rng;
    forward_cost;
    ifaces = [];
    routes = Hashtbl.create 16;
    default_route = None;
    reasm = Ipfrag.create sim ();
    udp_handler = None;
    tcp_handler = None;
    copy_ctr = Mbuf.Counters.create ();
    stats =
      {
        datagrams_sent = 0;
        datagrams_received = 0;
        packets_forwarded = 0;
        no_route_drops = 0;
        no_handler_drops = 0;
      };
    next_ip_id = id * 100_000;
    trace = None;
    metrics = None;
  }

let id t = t.id
let name t = t.name
let sim t = t.sim
let cpu t = t.cpu
let rng t = t.rng
let nic t = t.nic
let set_nic t profile = t.nic <- profile
let copy_counters t = t.copy_ctr
let stats t = t.stats
let trace t = t.trace

(* Attaching a sink covers the host's own hooks, its reassembly buffer
   (fragment-loss events) and every outgoing link direction attached so
   far — so wiring a whole topology is one call per node. *)
let set_trace t tr =
  t.trace <- tr;
  List.iter (fun i -> Link.set_trace i.link tr) t.ifaces;
  Ipfrag.set_on_timeout t.reasm (fun ~src ~ip_id ->
      match t.trace with
      | Some sink ->
          Trace.record sink ~time:(Sim.now t.sim) ~node:t.id
            (Trace.Frag_lost { src; ip_id })
      | None -> ())
let reassembly_timeouts t = Ipfrag.timeouts t.reasm
let links t = List.rev_map (fun i -> i.link) t.ifaces |> List.rev
let metrics t = t.metrics

let register_link_metrics run link =
  let p suffix = Printf.sprintf "link:%s/%s" (Link.name link) suffix in
  let fi = float_of_int in
  Metrics.register run ~name:(p "busy_time") ~unit_:"s" ~kind:Metrics.Counter
    (fun () -> Link.busy_time link);
  Metrics.register run ~name:(p "qlen") ~unit_:"count" ~kind:Metrics.Gauge
    (fun () -> fi (Link.queue_length link));
  Metrics.register run ~name:(p "drops") ~unit_:"count" ~kind:Metrics.Counter
    (fun () ->
      let s = Link.stats link in
      fi (s.Link.queue_drops + s.Link.error_drops));
  Metrics.register run ~name:(p "bytes") ~unit_:"bytes" ~kind:Metrics.Counter
    (fun () -> fi (Link.stats link).Link.bytes_sent);
  Metrics.register run ~name:(p "mangled") ~unit_:"count" ~kind:Metrics.Counter
    (fun () -> fi (Link.stats link).Link.mangled)

(* Like [set_trace]: one call per node covers the host's reassembly
   buffer, its mbuf copy accounting and every outgoing link direction
   attached so far. *)
let set_metrics t run =
  t.metrics <- run;
  match run with
  | None -> ()
  | Some run ->
      let p suffix = t.name ^ "." ^ suffix in
      let fi = float_of_int in
      Metrics.register run ~name:(p "ipfrag.pending") ~unit_:"count"
        ~kind:Metrics.Gauge (fun () -> fi (Ipfrag.pending t.reasm));
      Metrics.register run ~name:(p "ipfrag.timeouts") ~unit_:"count"
        ~kind:Metrics.Counter (fun () -> fi (Ipfrag.timeouts t.reasm));
      Metrics.register run ~name:(p "mbuf.bytes_copied") ~unit_:"bytes"
        ~kind:Metrics.Counter (fun () ->
          fi t.copy_ctr.Mbuf.Counters.bytes_copied);
      List.iter (fun i -> register_link_metrics run i.link) t.ifaces

let handler_for t = function
  | Packet.Udp -> t.udp_handler
  | Packet.Tcp -> t.tcp_handler

let set_proto_handler t proto h =
  match proto with
  | Packet.Udp -> t.udp_handler <- Some h
  | Packet.Tcp -> t.tcp_handler <- Some h

let route t dst =
  match Hashtbl.find_opt t.routes dst with
  | Some _ as r -> r
  | None -> (
      match t.default_route with
      | Some (iface, known) when dst <> t.id && Hashtbl.mem known dst ->
          Some iface
      | _ -> None)

(* Deliver a locally-addressed packet: interrupt-level per-packet work,
   reassembly, checksum of completed datagrams, protocol dispatch. *)
let deliver_local t (pkt : Packet.t) =
  Proc.spawn t.sim (fun () ->
      Cpu.consume ~priority:Cpu.Interrupt t.cpu
        (Nic.rx_cost t.nic ~data_bytes:(Packet.data_len pkt));
      match Ipfrag.insert t.reasm pkt with
      | None -> ()
      | Some whole -> (
          Cpu.consume t.cpu (Nic.checksum_cost t.nic ~bytes:(Packet.data_len whole));
          t.stats.datagrams_received <- t.stats.datagrams_received + 1;
          match handler_for t whole.Packet.proto with
          | None -> t.stats.no_handler_drops <- t.stats.no_handler_drops + 1
          | Some h ->
              h
                {
                  proto = whole.Packet.proto;
                  src = whole.Packet.src;
                  src_port = whole.Packet.src_port;
                  dst_port = whole.Packet.dst_port;
                  payload = whole.Packet.payload;
                  sum = whole.Packet.sum;
                }))

let forward t (pkt : Packet.t) =
  Proc.spawn t.sim (fun () ->
      Cpu.consume ~priority:Cpu.Interrupt t.cpu t.forward_cost;
      match route t pkt.Packet.dst with
      | None -> t.stats.no_route_drops <- t.stats.no_route_drops + 1
      | Some iface ->
          t.stats.packets_forwarded <- t.stats.packets_forwarded + 1;
          List.iter (Link.send iface.link) (Packet.fragment pkt ~mtu:iface.mtu))

let receive t pkt =
  if pkt.Packet.dst = t.id then deliver_local t pkt else forward t pkt

let connect a b ~name ~bandwidth_bps ~delay ~mtu ~queue_limit ?(loss = 0.0) () =
  let ab =
    Link.create a.sim
      ~name:(name ^ ":" ^ a.name ^ ">" ^ b.name)
      ~bandwidth_bps ~delay ~queue_limit ~loss ~owner:a.id ~rng:(Rng.split a.rng)
      ~deliver:(fun pkt -> receive b pkt)
      ()
  in
  let ba =
    Link.create a.sim
      ~name:(name ^ ":" ^ b.name ^ ">" ^ a.name)
      ~bandwidth_bps ~delay ~queue_limit ~loss ~owner:b.id ~rng:(Rng.split b.rng)
      ~deliver:(fun pkt -> receive a pkt)
      ()
  in
  (match a.trace with Some _ as tr -> Link.set_trace ab tr | None -> ());
  (match b.trace with Some _ as tr -> Link.set_trace ba tr | None -> ());
  (match a.metrics with Some run -> register_link_metrics run ab | None -> ());
  (match b.metrics with Some run -> register_link_metrics run ba | None -> ());
  a.ifaces <- a.ifaces @ [ { mtu; link = ab; peer = b.id } ];
  b.ifaces <- b.ifaces @ [ { mtu; link = ba; peer = a.id } ];
  (ab, ba)

let auto_routes nodes =
  let by_id = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace by_id n.id n) nodes;
  let bfs src =
    (* Shortest-hop tree rooted at [src]; record each node's first hop. *)
    let first_hop = Hashtbl.create 16 in
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited src.id ();
    let q = Queue.create () in
    List.iter
      (fun iface ->
        if not (Hashtbl.mem visited iface.peer) then begin
          Hashtbl.replace visited iface.peer ();
          Hashtbl.replace first_hop iface.peer iface;
          Queue.add (iface.peer, iface) q
        end)
      src.ifaces;
    while not (Queue.is_empty q) do
      let node_id, hop = Queue.take q in
      match Hashtbl.find_opt by_id node_id with
      | None -> ()
      | Some node ->
          List.iter
            (fun iface ->
              if not (Hashtbl.mem visited iface.peer) then begin
                Hashtbl.replace visited iface.peer ();
                Hashtbl.replace first_hop iface.peer hop;
                Queue.add (iface.peer, hop) q
              end)
            node.ifaces
    done;
    Hashtbl.iter (fun dst iface -> Hashtbl.replace src.routes dst iface) first_hop
  in
  (* A single-homed host's whole table would say "via my one link"; a
     shared membership set of its connected component replaces the
     per-destination entries (and the per-host BFS), which is what lets
     worlds with thousands of leaf clients route in O(n) instead of
     O(n^2) time and space.  Multi-homed nodes (routers) and nodes
     outside the first component keep the exact BFS tables. *)
  match nodes with
  | [] -> ()
  | first :: _ ->
      let component = Hashtbl.create 16 in
      let q = Queue.create () in
      Hashtbl.replace component first.id ();
      Queue.add first q;
      while not (Queue.is_empty q) do
        let n = Queue.take q in
        List.iter
          (fun iface ->
            if not (Hashtbl.mem component iface.peer) then begin
              Hashtbl.replace component iface.peer ();
              match Hashtbl.find_opt by_id iface.peer with
              | Some m -> Queue.add m q
              | None -> ()
            end)
          n.ifaces
      done;
      List.iter
        (fun n ->
          match n.ifaces with
          | [ only ] when Hashtbl.mem component n.id ->
              n.default_route <- Some (only, component)
          | _ -> bfs n)
        nodes

let send_datagram t ?sum ~proto ~dst ~src_port ~dst_port payload =
  match route t dst with
  | None -> t.stats.no_route_drops <- t.stats.no_route_drops + 1
  | Some iface ->
      t.next_ip_id <- t.next_ip_id + 1;
      let dgram =
        Packet.make_datagram ?sum ~proto ~src:t.id ~dst ~src_port ~dst_port
          ~ip_id:t.next_ip_id payload
      in
      let bytes = Packet.data_len dgram in
      Cpu.consume t.cpu (Nic.checksum_cost t.nic ~bytes);
      let frags = Packet.fragment dgram ~mtu:iface.mtu in
      List.iter
        (fun pkt ->
          let data_bytes = Packet.data_len pkt in
          let clusters = Mbuf.num_clusters pkt.Packet.payload in
          let cluster_bytes = Mbuf.cluster_bytes pkt.Packet.payload in
          let small_bytes = data_bytes - cluster_bytes in
          (match t.nic.Nic.strategy with
          | Nic.Copy_to_board ->
              t.copy_ctr.Mbuf.Counters.bytes_copied <-
                t.copy_ctr.Mbuf.Counters.bytes_copied + data_bytes
          | Nic.Map_clusters ->
              t.copy_ctr.Mbuf.Counters.bytes_copied <-
                t.copy_ctr.Mbuf.Counters.bytes_copied + small_bytes);
          Cpu.consume t.cpu (Nic.tx_cost t.nic ~data_bytes ~clusters ~small_bytes);
          Link.send iface.link pkt)
        frags;
      t.stats.datagrams_sent <- t.stats.datagrams_sent + 1
