lib/net/traffic.ml: Array Bytes Node Packet Renofs_engine Renofs_mbuf
