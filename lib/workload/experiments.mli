(** One experiment spec per paper artifact (Graphs 1-9, Tables 1-5, the
    Section 3 NIC tuning numbers, and the lease/scaling extensions).

    An experiment is declared as a list of {!cell}s — one self-contained
    measurement per (transport x load x topology x profile) point, each
    building its own fresh world — plus an assembly function that turns
    the typed per-cell results into rows.  {!run_spec} executes the
    cells, serially or across domains via {!Sweep}, and returns typed
    {!results}; {!render} turns those into the printable string
    {!table}.  No runner formats measurement strings itself.

    [Quick] scale keeps every experiment in seconds of wall time for
    tests; [Full] runs longer sweeps for the bench harness. *)

type scale = Quick | Full

(** {2 Typed measurement values} *)

type unit_of_measure = Ms | Sec | Per_sec | Percent | Bytes | Count

type value =
  | Text of string  (** row labels and placeholders *)
  | Int of int * unit_of_measure
  | Float of float * unit_of_measure * int
      (** value already in its display unit, with rendering precision *)

val unit_name : unit_of_measure -> string
(** Stable lowercase names ("ms", "s", "per_s", "percent", "bytes",
    "count") used by the JSON export. *)

val render_value : value -> string
(** The single place measurement values become strings: fixed-precision
    decimal, a ["%"] suffix for {!Percent}. *)

val float_of_value : value -> float
(** The numeric payload (parses {!Text}; raises [Failure] when it is
    not numeric). *)

(** {2 Rendered tables} *)

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
}

val print_table : Format.formatter -> table -> unit

(** {2 Cells, specs and execution} *)

type ctx = {
  trace : Renofs_trace.Trace.t option;
  faults : Renofs_fault.Fault.schedule option;
  metrics : Renofs_metrics.Metrics.t option;
  profile : Renofs_profile.Profile.t option;
  cell_label : string;
}
(** Everything a cell receives from the runner.  The trace, metrics and
    profile sinks, when present, are private to the cell — see
    {!run_spec}.  The fault schedule, when present, is installed on
    every world the cell builds through [make_world].  [cell_label]
    labels the cell's metrics runs. *)

type cell = {
  cell_label : string;  (** e.g. ["graph1/load10/udp-dyn"], for diagnostics *)
  cell_run : ctx -> value list;  (** builds its own world(s) and measures *)
}

type spec = {
  sp_id : string;
  sp_title : string;
  sp_header : string list;
  sp_cells : cell list;
  sp_assemble : value list list -> value list list;
      (** per-cell outputs, in cell order, to table rows *)
}

type results = {
  r_id : string;
  r_title : string;
  r_header : string list;
  r_rows : value list list;
}

val specs : (string * (scale -> spec)) list
(** Every experiment, keyed by id ("graph1" ... "table5", "section3",
    plus the extensions "leases", "scaling" and "fleet").  Building a
    spec is cheap — no simulation runs until {!run_spec}. *)

val spec : ?scale:scale -> string -> spec option
(** Look up and build one spec ([Quick] by default).  The extra id
    "fleet-quick" resolves to the fleet family pinned at [Quick]
    regardless of [scale] — the stable target of the make-check smoke
    stage. *)

val chaos_spec : ?seed:int -> scale -> spec
(** The registry's "chaos" spec, with an explicit world seed.  [seed]
    defaults to the historical fixed world (bit-for-bit identical to
    [spec "chaos"]); any other value re-seeds the topology RNG so
    repeated chaos runs explore different timing interleavings. *)

val fuzz_profiles : string list
(** The wire-mangling profiles {!fuzz_spec} cycles through: corrupt,
    truncate, duplicate, reorder, storm. *)

val fuzz_spec : ?seeds:int -> ?base_seed:int -> ?checksum:bool -> scale -> spec
(** Seeded wire-corruption fuzzing, deliberately absent from {!specs}
    (it is a robustness gate, not a paper artifact).  Cell [i] runs the
    chaos-style write/read workload on a hard mount under mangling
    driven by seed [base_seed + i], cycling profile and mount — the
    three transports plus the v3 UNSTABLE+COMMIT profile — so any
    [seeds >= 20] covers the full matrix.  Each row reports
    retransmissions, garbled replies, checksum drops, and the
    {!Renofs_fault.Fault.Check} verdicts including the end-to-end
    {!Renofs_fault.Fault.Check.data_integrity} check against the
    client-side ledger; a stuck driver or uncaught exception becomes a
    ["FAIL:..."] verdict instead of killing the sweep.  [checksum:false]
    disables UDP checksums — the Sun configuration whose silent
    corruption the paper recounts — and under the corrupt profile is
    expected to produce data-integrity violations. *)

val run_spec :
  ?jobs:int ->
  ?trace:Renofs_trace.Trace.t ->
  ?faults:Renofs_fault.Fault.schedule ->
  ?metrics:Renofs_metrics.Metrics.t ->
  ?profile:Renofs_profile.Profile.t ->
  ?flight:Renofs_profile.Flight.t ->
  spec ->
  results
(** Execute a spec's cells across [jobs] domains (default
    {!Sweep.default_jobs}) and assemble the typed rows.  Results are
    reassembled by cell index, never completion order, so output is
    identical for every [jobs].

    Tracing: with [trace], every cell records into a private sink of
    the same capacity, attached to its worlds and mark-delimited per
    world; the private sinks are merged into the main one in cell order
    after the sweep.  The combined stream is therefore race-free and
    identical to a serial run's.

    Faults: with [faults], the schedule is installed on every world the
    cells build, so any experiment can run under any schedule (the
    [nfsbench run ID --faults FILE] path).

    Metrics: with [metrics], every cell samples into a private sink of
    the same interval, one labelled run per world; the sinks are merged
    into the main one in cell order after the sweep, so the exported
    series are byte-identical at any [jobs] (the [nfsbench run ID
    --metrics FILE] path).

    Profiling: with [profile], every cell gets a private
    {!Renofs_profile.Profile.t} which {!attach_observers} turns into a
    [Sim] probe on each world; the per-cell counters are merged in cell
    order.  The deterministic slice (enter/fire counts) is identical at
    any [jobs]; the wall-clock attribution is real time and is not.

    Flight recorder: with [flight], a private trace sink and profile
    are forced on every cell, and a cell that raises {!Driver_stuck} or
    returns a row with a ["FAIL"]-prefixed value (invariant or SLO
    verdicts) dumps a post-mortem bundle before the sweep re-raises. *)

val run_specs :
  ?jobs:int ->
  ?trace:Renofs_trace.Trace.t ->
  ?faults:Renofs_fault.Fault.schedule ->
  ?metrics:Renofs_metrics.Metrics.t ->
  ?profile:Renofs_profile.Profile.t ->
  ?flight:Renofs_profile.Flight.t ->
  spec list ->
  results list
(** As {!run_spec} over several specs, pooling all their cells into one
    sweep so short experiments overlap long ones. *)

val render : results -> table
(** Pure rendering of typed results via {!render_value}. *)

exception Driver_stuck of string
(** An experiment driver failed to finish; the message carries the run
    label, sim time, pending event count and events processed. *)


