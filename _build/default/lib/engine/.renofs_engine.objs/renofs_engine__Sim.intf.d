lib/engine/sim.mli:
