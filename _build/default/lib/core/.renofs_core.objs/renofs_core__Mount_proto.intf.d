lib/core/mount_proto.mli: Nfs_proto Renofs_xdr
