module Fs = Renofs_vfs.Fs
module Nfs_server = Renofs_core.Nfs_server

type t = { dirs : string list; files : string list; file_size : int }

let dir_name i = Printf.sprintf "d%02d" i

let file_name ~long_names d f =
  if long_names then
    (* 38 characters: past the 31-character name-cache limit. *)
    Printf.sprintf "nhfsstone_long_file_name_%02d_%02d_xxxxx" d f
  else Printf.sprintf "f%02d_%02d" d f

let generate ~dirs ~files_per_dir ~file_size ~long_names =
  let dir_list = List.init dirs dir_name in
  let files =
    List.concat
      (List.init dirs (fun d ->
           List.init files_per_dir (fun f ->
               dir_name d ^ "/" ^ file_name ~long_names d f)))
  in
  { dirs = dir_list; files; file_size }

let content ~path ~size =
  let seedc = Hashtbl.hash path land 0xFF in
  Bytes.init size (fun i -> Char.chr ((seedc + (i * 31)) mod 256))

let preload_at fs root t =
  List.iter (fun d -> ignore (Fs.mkdir fs ~dir:root d ~mode:0o755 ())) t.dirs;
  List.iter
    (fun path ->
      match String.split_on_char '/' path with
      | [ d; name ] ->
          let dirv = Fs.lookup fs root d in
          let v = Fs.create_file fs ~dir:dirv name ~mode:0o644 () in
          if t.file_size > 0 then
            Fs.write fs v ~off:0 (content ~path ~size:t.file_size)
      | _ -> invalid_arg "Fileset.preload_server: unexpected path shape")
    t.files

let preload_server server t = preload_at (Nfs_server.fs server) (Fs.root (Nfs_server.fs server)) t

let preload_under server ~path t =
  let fs = Nfs_server.fs server in
  let components =
    String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")
  in
  let dir =
    List.fold_left
      (fun dir c ->
        match Fs.lookup fs dir c with
        | v -> v
        | exception Fs.Err Fs.Enoent -> Fs.mkdir fs ~dir c ~mode:0o755 ())
      (Fs.root fs) components
  in
  preload_at fs dir t
