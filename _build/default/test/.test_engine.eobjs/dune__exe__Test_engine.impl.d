test/test_engine.ml: Alcotest Cpu Iostat List Proc Renofs_engine Rng Rtt Sim Stats
