test/test_mbuf.mli:
