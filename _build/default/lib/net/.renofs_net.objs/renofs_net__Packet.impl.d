lib/net/packet.ml: List Renofs_mbuf
