(** RPC record marking for stream transports (RFC 1057 §10).

    Each RPC message on a TCP connection is preceded by a 4-byte marker:
    the top bit flags the last fragment of a record and the low 31 bits
    give the fragment length.  The Reno implementation inserts these
    marks so that request/reply boundaries survive the byte stream. *)

val frame :
  ?ctr:Renofs_mbuf.Mbuf.Counters.t ->
  ?pool:Renofs_mbuf.Mbuf.Pool.t ->
  Renofs_mbuf.Mbuf.t ->
  Renofs_mbuf.Mbuf.t
(** Wrap one message as a single-fragment record (marker prepended); the
    argument chain is spliced in without copying and becomes empty. *)

(** Reassembles records from arbitrarily-chunked stream data. *)
module Reader : sig
  type t

  exception Corrupt of string
  (** Raised by {!pop} when a marker declares a zero/oversized fragment. *)

  val create : unit -> t

  val push : t -> Renofs_mbuf.Mbuf.t -> unit
  (** Feed the next chunk of received stream bytes (chain is consumed). *)

  val pop : t -> Renofs_mbuf.Mbuf.t option
  (** Next complete record, if any ([None] while a record is partial). *)

  val buffered : t -> int
  (** Bytes held waiting for record completion. *)
end
