module E = Experiments

let schema_version = "renofs-bench/1"

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal that round-trips, so files stay readable and
   serial/parallel runs compare byte for byte. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s15 = Printf.sprintf "%.15g" v in
    if float_of_string s15 = v then s15
    else
      let s16 = Printf.sprintf "%.16g" v in
      if float_of_string s16 = v then s16 else Printf.sprintf "%.17g" v

let value_json = function
  | E.Text s -> Printf.sprintf {|{"type":"text","value":"%s"}|} (escape s)
  | E.Int (v, u) ->
      Printf.sprintf {|{"type":"int","value":%d,"unit":"%s"}|} v (E.unit_name u)
  | E.Float (v, u, prec) ->
      Printf.sprintf {|{"type":"float","value":%s,"unit":"%s","prec":%d}|}
        (float_str v) (E.unit_name u) prec

let results_json (r : E.results) =
  let header = List.map (fun h -> "\"" ^ escape h ^ "\"") r.E.r_header in
  let rows =
    List.map
      (fun row -> "      [" ^ String.concat "," (List.map value_json row) ^ "]")
      r.E.r_rows
  in
  Printf.sprintf
    "    {\"id\":\"%s\",\n\
    \     \"title\":\"%s\",\n\
    \     \"header\":[%s],\n\
    \     \"rows\":[\n%s\n    ]}"
    (escape r.E.r_id) (escape r.E.r_title)
    (String.concat "," header)
    (String.concat ",\n" rows)

let emit ~scale ~jobs results =
  Printf.sprintf
    "{\"schema\":\"%s\",\n\
    \ \"scale\":\"%s\",\n\
    \ \"jobs\":%d,\n\
    \ \"experiments\":[\n%s\n]}\n"
    schema_version
    (match scale with E.Quick -> "quick" | E.Full -> "full")
    jobs
    (String.concat ",\n" (List.map results_json results))

let write_file ~scale ~jobs ~path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (emit ~scale ~jobs results))

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* ASCII round-trips; anything higher degrades to '?'
                  (the emitter never produces it). *)
               Buffer.add_char b (if code < 128 then Char.chr code else '?');
               pos := !pos + 5
           | _ -> fail "unknown escape");
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s = try Ok (parse_exn s) with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Schema validation                                                  *)
(* ------------------------------------------------------------------ *)

let known_units = [ "ms"; "s"; "per_s"; "percent"; "bytes"; "count" ]

let validate_exn doc =
  let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt in
  let field obj name =
    match List.assoc_opt name obj with
    | Some v -> v
    | None -> fail "missing field %S" name
  in
  let str ctx = function Str s -> s | _ -> fail "%s: expected string" ctx in
  let num ctx = function Num v -> v | _ -> fail "%s: expected number" ctx in
  let arr ctx = function Arr l -> l | _ -> fail "%s: expected array" ctx in
  let obj ctx = function Obj o -> o | _ -> fail "%s: expected object" ctx in
  let top = obj "document" doc in
  let version = str "schema" (field top "schema") in
  if version <> schema_version then
    fail "schema %S, expected %S" version schema_version;
  (match str "scale" (field top "scale") with
  | "quick" | "full" -> ()
  | other -> fail "scale %S is not quick|full" other);
  let jobs = num "jobs" (field top "jobs") in
  if jobs < 1.0 || not (Float.is_integer jobs) then fail "jobs must be a positive integer";
  let experiments = arr "experiments" (field top "experiments") in
  if experiments = [] then fail "experiments array is empty";
  List.iter
    (fun e ->
      let e = obj "experiment" e in
      let id = str "id" (field e "id") in
      ignore (str "title" (field e "title"));
      let header = List.map (str (id ^ ".header")) (arr (id ^ ".header") (field e "header")) in
      let cols = List.length header in
      if cols = 0 then fail "%s: empty header" id;
      let rows = arr (id ^ ".rows") (field e "rows") in
      if rows = [] then fail "%s: no rows" id;
      List.iteri
        (fun i row ->
          let row = arr (Printf.sprintf "%s.rows[%d]" id i) row in
          if List.length row <> cols then
            fail "%s.rows[%d]: %d cells for %d header columns" id i
              (List.length row) cols;
          List.iter
            (fun cell ->
              let ctx = Printf.sprintf "%s.rows[%d]" id i in
              let cell = obj ctx cell in
              let check_unit () =
                let u = str (ctx ^ ".unit") (field cell "unit") in
                if not (List.mem u known_units) then fail "%s: unknown unit %S" ctx u
              in
              match str (ctx ^ ".type") (field cell "type") with
              | "text" -> ignore (str ctx (field cell "value"))
              | "int" ->
                  let v = num ctx (field cell "value") in
                  if not (Float.is_integer v) then fail "%s: int cell holds %g" ctx v;
                  check_unit ()
              | "float" ->
                  ignore (num ctx (field cell "value"));
                  ignore (num (ctx ^ ".prec") (field cell "prec"));
                  check_unit ()
              | other -> fail "%s: unknown cell type %S" ctx other)
            row)
        rows)
    experiments

let validate s =
  match parse s with
  | Error msg -> Error ("parse error: " ^ msg)
  | Ok doc -> ( try Ok (validate_exn doc) with Bad msg -> Error msg)

let validate_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> validate content
  | exception Sys_error msg -> Error msg
