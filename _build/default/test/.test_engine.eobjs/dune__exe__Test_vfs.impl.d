test/test_vfs.ml: Alcotest Bcache Bytes Char Disk Fs Gen List Namecache Printf QCheck QCheck_alcotest Renofs_engine Renofs_vfs String
