module E = Experiments

let schema_version = "renofs-bench/1"

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal that round-trips, so files stay readable and
   serial/parallel runs compare byte for byte. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s15 = Printf.sprintf "%.15g" v in
    if float_of_string s15 = v then s15
    else
      let s16 = Printf.sprintf "%.16g" v in
      if float_of_string s16 = v then s16 else Printf.sprintf "%.17g" v

let value_json = function
  | E.Text s -> Printf.sprintf {|{"type":"text","value":"%s"}|} (escape s)
  | E.Int (v, u) ->
      Printf.sprintf {|{"type":"int","value":%d,"unit":"%s"}|} v (E.unit_name u)
  | E.Float (v, u, prec) ->
      Printf.sprintf {|{"type":"float","value":%s,"unit":"%s","prec":%d}|}
        (float_str v) (E.unit_name u) prec

let results_json (r : E.results) =
  let header = List.map (fun h -> "\"" ^ escape h ^ "\"") r.E.r_header in
  let rows =
    List.map
      (fun row -> "      [" ^ String.concat "," (List.map value_json row) ^ "]")
      r.E.r_rows
  in
  Printf.sprintf
    "    {\"id\":\"%s\",\n\
    \     \"title\":\"%s\",\n\
    \     \"header\":[%s],\n\
    \     \"rows\":[\n%s\n    ]}"
    (escape r.E.r_id) (escape r.E.r_title)
    (String.concat "," header)
    (String.concat ",\n" rows)

let emit ~scale ~jobs results =
  Printf.sprintf
    "{\"schema\":\"%s\",\n\
    \ \"scale\":\"%s\",\n\
    \ \"jobs\":%d,\n\
    \ \"experiments\":[\n%s\n]}\n"
    schema_version
    (match scale with E.Quick -> "quick" | E.Full -> "full")
    jobs
    (String.concat ",\n" (List.map results_json results))

let write_file ~scale ~jobs ~path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (emit ~scale ~jobs results))

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

(* The reader itself lives in the dependency-free [renofs_json] library
   (fault schedules parse with it too); re-exported here with a type
   equality so existing callers keep pattern-matching [Bench_json]'s
   constructors. *)

type json = Renofs_json.Json.json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad = Renofs_json.Json.Bad

let parse = Renofs_json.Json.parse

(* ------------------------------------------------------------------ *)
(* Schema validation                                                  *)
(* ------------------------------------------------------------------ *)

let known_units = [ "ms"; "s"; "per_s"; "percent"; "bytes"; "count" ]

let validate_exn doc =
  let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt in
  let field obj name =
    match List.assoc_opt name obj with
    | Some v -> v
    | None -> fail "missing field %S" name
  in
  let str ctx = function Str s -> s | _ -> fail "%s: expected string" ctx in
  let num ctx = function Num v -> v | _ -> fail "%s: expected number" ctx in
  let arr ctx = function Arr l -> l | _ -> fail "%s: expected array" ctx in
  let obj ctx = function Obj o -> o | _ -> fail "%s: expected object" ctx in
  let top = obj "document" doc in
  let version = str "schema" (field top "schema") in
  if version <> schema_version then
    fail "schema %S, expected %S" version schema_version;
  (match str "scale" (field top "scale") with
  | "quick" | "full" -> ()
  | other -> fail "scale %S is not quick|full" other);
  let jobs = num "jobs" (field top "jobs") in
  if jobs < 1.0 || not (Float.is_integer jobs) then fail "jobs must be a positive integer";
  let experiments = arr "experiments" (field top "experiments") in
  if experiments = [] then fail "experiments array is empty";
  List.iter
    (fun e ->
      let e = obj "experiment" e in
      let id = str "id" (field e "id") in
      ignore (str "title" (field e "title"));
      let header = List.map (str (id ^ ".header")) (arr (id ^ ".header") (field e "header")) in
      let cols = List.length header in
      if cols = 0 then fail "%s: empty header" id;
      let rows = arr (id ^ ".rows") (field e "rows") in
      if rows = [] then fail "%s: no rows" id;
      List.iteri
        (fun i row ->
          let row = arr (Printf.sprintf "%s.rows[%d]" id i) row in
          if List.length row <> cols then
            fail "%s.rows[%d]: %d cells for %d header columns" id i
              (List.length row) cols;
          List.iter
            (fun cell ->
              let ctx = Printf.sprintf "%s.rows[%d]" id i in
              let cell = obj ctx cell in
              let check_unit () =
                let u = str (ctx ^ ".unit") (field cell "unit") in
                if not (List.mem u known_units) then fail "%s: unknown unit %S" ctx u
              in
              match str (ctx ^ ".type") (field cell "type") with
              | "text" -> ignore (str ctx (field cell "value"))
              | "int" ->
                  let v = num ctx (field cell "value") in
                  if not (Float.is_integer v) then fail "%s: int cell holds %g" ctx v;
                  check_unit ()
              | "float" ->
                  ignore (num ctx (field cell "value"));
                  ignore (num (ctx ^ ".prec") (field cell "prec"));
                  check_unit ()
              | other -> fail "%s: unknown cell type %S" ctx other)
            row)
        rows)
    experiments

let validate s =
  match parse s with
  | Error msg -> Error ("parse error: " ^ msg)
  | Ok doc -> ( try Ok (validate_exn doc) with Bad msg -> Error msg)

let validate_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> validate content
  | exception Sys_error msg -> Error msg
