lib/net/topology.ml: Link List Nic Node Printf Renofs_engine Traffic
