(* nfsbench: regenerate the paper's tables and figures from the command
   line.

     nfsbench list            show every experiment id
     nfsbench run graph5      run one experiment (Quick scale)
     nfsbench run table1 -f   run one experiment at Full scale
     nfsbench all [-f]        run everything *)

open Cmdliner
module E = Renofs_workload.Experiments

let scale_of_full full = if full then E.Full else E.Quick

let print_with_chart id table =
  E.print_table Format.std_formatter table;
  match Renofs_workload.Ascii_plot.render_table table with
  | Some chart when String.length id >= 5 && String.sub id 0 5 = "graph" ->
      Format.printf "%s@." chart
  | _ -> ()

let run_one id full =
  match List.assoc_opt id E.all with
  | Some f ->
      print_with_chart id (f ?scale:(Some (scale_of_full full)) ());
      `Ok ()
  | None ->
      `Error
        ( false,
          Printf.sprintf "unknown experiment %S; try one of: %s" id
            (String.concat ", " (List.map fst E.all)) )

let run_all full =
  List.iter
    (fun (id, f) ->
      Format.printf "running %s...@." id;
      print_with_chart id (f ?scale:(Some (scale_of_full full)) ()))
    E.all

let list_ids () =
  List.iter (fun (id, _) -> print_endline id) E.all

let full_flag =
  Arg.(value & flag & info [ "f"; "full" ] ~doc:"Run at full scale (longer sweeps).")

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT"
       ~doc:"Experiment id, e.g. graph1 or table5.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print its table")
    Term.(ret (const run_one $ id_arg $ full_flag))

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run_all $ full_flag)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids") Term.(const list_ids $ const ())

let main =
  Cmd.group
    (Cmd.info "nfsbench" ~version:"1.0"
       ~doc:
         "Reproduce the experiments of 'Lessons Learned Tuning the 4.3BSD Reno \
          Implementation of the NFS Protocol' (Macklem, USENIX 1991)")
    [ run_cmd; all_cmd; list_cmd ]

let () = exit (Cmd.eval main)
