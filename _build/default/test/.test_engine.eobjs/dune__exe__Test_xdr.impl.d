test/test_xdr.ml: Alcotest Bytes Int32 Int64 List Printf QCheck QCheck_alcotest Renofs_mbuf Renofs_xdr String Xdr
