lib/engine/sim.ml: Array Printf
