test/test_proto.ml: Alcotest Bytes Gen List Nfs_proto Printf QCheck QCheck_alcotest Renofs_core Renofs_mbuf Renofs_xdr
