(** IP datagram reassembly at the destination host.

    Fragments are collected per [(src, ip_id)]; a datagram is delivered
    only when every byte of it has arrived.  Partial assemblies are
    discarded after a timeout — so one lost fragment wastes the delivery
    and buffering of all its siblings, the cost [Kent87b] warns about. *)

type t

val create : Renofs_engine.Sim.t -> ?timeout:float -> unit -> t
(** [timeout] defaults to 15 s, 4.3BSD's reassembly time-to-live. *)

val insert : t -> Packet.t -> Packet.t option
(** Add one fragment.  Returns the whole datagram (as an unfragmented
    packet) once complete.  Unfragmented packets pass straight through.
    Duplicate coverage is ignored. *)

val pending : t -> int
(** Partial assemblies currently held. *)

val timeouts : t -> int
(** Assemblies abandoned so far. *)

val set_on_timeout : t -> (src:int -> ip_id:int -> unit) -> unit
(** Called whenever a partial assembly is abandoned — the "one lost
    fragment wastes them all" event the tracing layer reports as
    [Frag_lost]. *)
