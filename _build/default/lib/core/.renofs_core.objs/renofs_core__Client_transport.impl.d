lib/core/client_transport.ml: Float Hashtbl Int32 List Nfs_proto Option Renofs_engine Renofs_mbuf Renofs_net Renofs_rpc Renofs_transport Renofs_xdr String
