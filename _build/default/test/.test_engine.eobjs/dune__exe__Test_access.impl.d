test/test_access.ml: Alcotest Bytes Client_transport Nfs_client Nfs_proto Nfs_server Obj Renofs_core Renofs_engine Renofs_net Renofs_transport Renofs_vfs
