open Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Rng = Renofs_engine.Rng
module Cpu = Renofs_engine.Cpu
module Mbuf = Renofs_mbuf.Mbuf

let mk_payload n = Mbuf.of_bytes (Bytes.init n (fun i -> Char.chr (i mod 256)))

let mk_datagram ?(proto = Packet.Udp) n =
  Packet.make_datagram ~proto ~src:1 ~dst:2 ~src_port:1000 ~dst_port:2049
    ~ip_id:7 (mk_payload n)

(* ------------------------------------------------------------------ *)
(* Packet fragmentation                                               *)
(* ------------------------------------------------------------------ *)

let test_no_fragmentation_when_small () =
  let p = mk_datagram 100 in
  let frags = Packet.fragment p ~mtu:1500 in
  Alcotest.(check int) "single" 1 (List.length frags);
  Alcotest.(check bool) "not fragmented" false (Packet.is_fragmented (List.hd frags))

let test_8k_over_ethernet_is_6_fragments () =
  (* The paper: an 8 Kbyte RPC is 6 IP fragments on an Ethernet. *)
  let p = mk_datagram 8192 in
  let frags = Packet.fragment p ~mtu:1500 in
  Alcotest.(check int) "six fragments" 6 (List.length frags);
  List.iter
    (fun f -> Alcotest.(check bool) "fits mtu" true (Packet.wire_size f <= 1500))
    frags;
  let total = List.fold_left (fun acc f -> acc + Packet.data_len f) 0 frags in
  Alcotest.(check int) "all data" 8192 total

let test_fragment_offsets_aligned () =
  let p = mk_datagram 8192 in
  let frags = Packet.fragment p ~mtu:1500 in
  List.iter
    (fun f ->
      if f.Packet.more then
        Alcotest.(check int) "aligned data" 0 (Packet.data_len f mod 8))
    frags

let test_refragmentation () =
  (* Router re-fragments a middle fragment onto a smaller-MTU link. *)
  let p = mk_datagram 8192 in
  let frags = Packet.fragment p ~mtu:4464 in
  Alcotest.(check bool) "multiple" true (List.length frags >= 2);
  (* A non-final fragment: all pieces of its re-fragmentation must keep
     the more-fragments flag, including the last. *)
  let middle = List.hd frags in
  Alcotest.(check bool) "middle has more" true middle.Packet.more;
  let refrags = Packet.fragment middle ~mtu:1006 in
  Alcotest.(check bool) "split further" true (List.length refrags >= 2);
  (* Every non-final piece keeps [more]; the final piece of a middle
     fragment must also keep [more] set. *)
  List.iter
    (fun f -> Alcotest.(check bool) "more preserved" true f.Packet.more)
    refrags

let test_fragment_mtu_too_small () =
  let p = mk_datagram 5000 in
  Alcotest.check_raises "tiny mtu" (Invalid_argument "Packet.fragment: mtu too small")
    (fun () -> ignore (Packet.fragment p ~mtu:24))

(* ------------------------------------------------------------------ *)
(* Reassembly                                                         *)
(* ------------------------------------------------------------------ *)

let test_reassembly_in_order () =
  let sim = Sim.create () in
  let reasm = Ipfrag.create sim () in
  let p = mk_datagram 8192 in
  let original = Mbuf.to_bytes (Mbuf.sub_copy p.Packet.payload ~pos:0 ~len:8192) in
  let frags = Packet.fragment p ~mtu:1500 in
  let results = List.filter_map (Ipfrag.insert reasm) frags in
  match results with
  | [ whole ] ->
      Alcotest.(check int) "length" 8192 (Packet.data_len whole);
      Alcotest.(check bytes) "content" original (Mbuf.to_bytes whole.Packet.payload);
      Alcotest.(check int) "table empty" 0 (Ipfrag.pending reasm)
  | _ -> Alcotest.fail "expected exactly one completed datagram"

let test_reassembly_out_of_order () =
  let sim = Sim.create () in
  let reasm = Ipfrag.create sim () in
  let p = mk_datagram 4000 in
  let frags = Packet.fragment p ~mtu:1500 in
  let shuffled = List.rev frags in
  let results = List.filter_map (Ipfrag.insert reasm) shuffled in
  Alcotest.(check int) "one datagram" 1 (List.length results);
  Alcotest.(check int) "reassembled size" 4000 (Packet.data_len (List.hd results))

let test_reassembly_missing_fragment_times_out () =
  let sim = Sim.create () in
  let reasm = Ipfrag.create sim ~timeout:5.0 () in
  let p = mk_datagram 8192 in
  let frags = Packet.fragment p ~mtu:1500 in
  (* Drop the second fragment. *)
  let delivered = List.filteri (fun i _ -> i <> 1) frags in
  let results = List.filter_map (Ipfrag.insert reasm) delivered in
  Alcotest.(check int) "never completes" 0 (List.length results);
  Alcotest.(check int) "partial held" 1 (Ipfrag.pending reasm);
  Sim.run sim;
  Alcotest.(check int) "timed out" 1 (Ipfrag.timeouts reasm);
  Alcotest.(check int) "table empty" 0 (Ipfrag.pending reasm)

let test_reassembly_duplicate_fragments () =
  let sim = Sim.create () in
  let reasm = Ipfrag.create sim () in
  let p = mk_datagram 3000 in
  let frags = Packet.fragment p ~mtu:1500 in
  let doubled = frags @ [ List.hd frags ] in
  (* Feed first fragment twice then the rest. *)
  let results = List.filter_map (Ipfrag.insert reasm) doubled in
  Alcotest.(check int) "one datagram, dup ignored" 1 (List.length results)

let test_reassembly_interleaved_datagrams () =
  let sim = Sim.create () in
  let reasm = Ipfrag.create sim () in
  let p1 = mk_datagram 3000 in
  let p2 =
    Packet.make_datagram ~proto:Packet.Udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2
      ~ip_id:8 (mk_payload 3000)
  in
  let f1 = Packet.fragment p1 ~mtu:1500 and f2 = Packet.fragment p2 ~mtu:1500 in
  let interleaved = List.concat (List.map2 (fun a b -> [ a; b ]) f1 f2) in
  let results = List.filter_map (Ipfrag.insert reasm) interleaved in
  Alcotest.(check int) "both complete" 2 (List.length results)

(* ------------------------------------------------------------------ *)
(* Links                                                              *)
(* ------------------------------------------------------------------ *)

let test_link_serialization_delay () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let link =
    Link.create sim ~name:"l" ~bandwidth_bps:8000.0 ~delay:0.5 ~queue_limit:10
      ~rng:(Rng.create 1)
      ~deliver:(fun p -> arrivals := (Sim.now sim, Packet.data_len p) :: !arrivals)
      ()
  in
  (* 100-byte UDP datagram = 128 wire bytes = 1024 bits at 8000 bps
     = 0.128 s tx + 0.5 s propagation. *)
  Link.send link (mk_datagram 100);
  Sim.run sim;
  match !arrivals with
  | [ (t, 100) ] ->
      Alcotest.(check (float 1e-6)) "arrival time" 0.628 t
  | _ -> Alcotest.fail "expected one arrival"

let test_link_fifo_backlog () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let link =
    Link.create sim ~name:"l" ~bandwidth_bps:8000.0 ~delay:0.0 ~queue_limit:10
      ~rng:(Rng.create 1)
      ~deliver:(fun _ -> arrivals := Sim.now sim :: !arrivals)
      ()
  in
  Link.send link (mk_datagram 100);
  Link.send link (mk_datagram 100);
  Sim.run sim;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
      Alcotest.(check (float 1e-6)) "first" 0.128 t1;
      Alcotest.(check (float 1e-6)) "second serialized after" 0.256 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_link_queue_drops () =
  let sim = Sim.create () in
  let delivered = ref 0 in
  let link =
    Link.create sim ~name:"l" ~bandwidth_bps:1000.0 ~delay:0.0 ~queue_limit:3
      ~rng:(Rng.create 1)
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  for _ = 1 to 10 do
    Link.send link (mk_datagram 100)
  done;
  Sim.run sim;
  (* One in transmission + 3 queued accepted = 4 delivered, 6 dropped. *)
  Alcotest.(check int) "delivered" 4 !delivered;
  Alcotest.(check int) "drops counted" 6 (Link.stats link).Link.queue_drops

let test_link_random_loss () =
  let sim = Sim.create () in
  let delivered = ref 0 in
  let link =
    Link.create sim ~name:"l" ~bandwidth_bps:1e9 ~delay:0.0 ~queue_limit:1000
      ~loss:0.5 ~rng:(Rng.create 42)
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  for _ = 1 to 1000 do
    Link.send link (mk_datagram 10);
    Sim.run sim
  done;
  let drops = (Link.stats link).Link.error_drops in
  Alcotest.(check int) "all accounted" 1000 (!delivered + drops);
  Alcotest.(check bool) "roughly half lost" true (drops > 400 && drops < 600)

(* ------------------------------------------------------------------ *)
(* Wire mangling                                                      *)
(* ------------------------------------------------------------------ *)

let mangle_link ?(name = "l") sim sink =
  Link.create sim ~name ~bandwidth_bps:1e9 ~delay:0.001 ~queue_limit:1000
    ~rng:(Rng.create 1)
    ~deliver:(fun p -> sink := Mbuf.to_bytes p.Packet.payload :: !sink)
    ()

let test_mangle_corrupt_flips_one_bit () =
  let sim = Sim.create () in
  let got = ref [] in
  let link = mangle_link sim got in
  Link.set_mangle link ~seed:7 Link.Corrupt 1.0;
  let original = Bytes.init 100 (fun i -> Char.chr (i mod 256)) in
  Link.send link (mk_datagram 100);
  Sim.run sim;
  (match !got with
  | [ b ] ->
      let diff_bits = ref 0 in
      Bytes.iteri
        (fun i c ->
          let x = Char.code c lxor Char.code (Bytes.get original i) in
          let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
          diff_bits := !diff_bits + pop x)
        b;
      Alcotest.(check int) "exactly one bit flipped" 1 !diff_bits;
      (* A single bit flip is always visible to the Internet checksum. *)
      Alcotest.(check bool) "checksum catches it" true
        (Mbuf.checksum (Mbuf.of_bytes b)
        <> Mbuf.checksum (Mbuf.of_bytes original))
  | _ -> Alcotest.fail "expected one delivery");
  Alcotest.(check int) "mangled counted" 1 (Link.stats link).Link.mangled

let test_mangle_truncate_shortens () =
  let sim = Sim.create () in
  let got = ref [] in
  let link = mangle_link sim got in
  Link.set_mangle link ~seed:3 Link.Truncate 1.0;
  Link.send link (mk_datagram 100);
  Sim.run sim;
  match !got with
  | [ b ] ->
      Alcotest.(check bool) "shorter than sent" true (Bytes.length b < 100)
  | _ -> Alcotest.fail "expected one delivery"

let test_mangle_duplicate_delivers_twice () =
  let sim = Sim.create () in
  let got = ref [] in
  let link = mangle_link sim got in
  Link.set_mangle link ~seed:5 Link.Duplicate 1.0;
  let original = Bytes.init 100 (fun i -> Char.chr (i mod 256)) in
  Link.send link (mk_datagram 100);
  Sim.run sim;
  match !got with
  | [ a; b ] ->
      Alcotest.(check bytes) "copy 1 intact" original a;
      Alcotest.(check bytes) "copy 2 intact" original b
  | l -> Alcotest.failf "expected two deliveries, got %d" (List.length l)

let test_mangle_reorder_delays () =
  let base_arrival =
    let sim = Sim.create () in
    let t = ref 0.0 in
    let link =
      Link.create sim ~name:"l" ~bandwidth_bps:1e9 ~delay:0.001
        ~queue_limit:1000 ~rng:(Rng.create 1)
        ~deliver:(fun _ -> t := Sim.now sim)
        ()
    in
    Link.send link (mk_datagram 100);
    Sim.run sim;
    !t
  in
  let sim = Sim.create () in
  let t = ref 0.0 in
  let link =
    Link.create sim ~name:"l" ~bandwidth_bps:1e9 ~delay:0.001 ~queue_limit:1000
      ~rng:(Rng.create 1)
      ~deliver:(fun _ -> t := Sim.now sim)
      ()
  in
  Link.set_mangle link ~seed:9 Link.Reorder 1.0;
  Link.send link (mk_datagram 100);
  Sim.run sim;
  Alcotest.(check bool) "held back past normal delivery" true (!t > base_arrival)

(* Same link name and seed must damage the packet identically — a
   failing fuzz seed has to replay — and the seed must matter. *)
let test_mangle_deterministic_by_seed () =
  let run ~seed =
    let sim = Sim.create () in
    let got = ref [] in
    let link = mangle_link sim got in
    Link.set_mangle link ~seed Link.Corrupt 1.0;
    Link.send link (mk_datagram 100);
    Sim.run sim;
    List.hd !got
  in
  Alcotest.(check bytes) "seed 11 replays" (run ~seed:11) (run ~seed:11);
  Alcotest.(check bool) "different seeds differ" true
    (not (Bytes.equal (run ~seed:11) (run ~seed:12)))

let test_mangle_rate_save_restore () =
  let sim = Sim.create () in
  let got = ref [] in
  let link = mangle_link sim got in
  Alcotest.(check (float 0.0)) "off by default" 0.0
    (Link.mangle_rate link Link.Corrupt);
  Link.set_mangle link ~seed:1 Link.Corrupt 0.25;
  Alcotest.(check (float 0.0)) "set" 0.25 (Link.mangle_rate link Link.Corrupt);
  Alcotest.(check (float 0.0)) "others untouched" 0.0
    (Link.mangle_rate link Link.Truncate);
  Link.set_mangle link Link.Corrupt 0.0;
  Alcotest.(check (float 0.0)) "restored" 0.0
    (Link.mangle_rate link Link.Corrupt)

(* ------------------------------------------------------------------ *)
(* Nodes and routing                                                  *)
(* ------------------------------------------------------------------ *)

let test_lan_datagram_delivery () =
  let sim = Sim.create () in
  let topo = Topology.build sim Topology.default_spec in
  let received = ref None in
  Node.set_proto_handler topo.Topology.server Packet.Udp (fun dg ->
      received := Some (dg.Node.src, Mbuf.length dg.Node.payload));
  Proc.spawn sim (fun () ->
      Node.send_datagram topo.Topology.client ~proto:Packet.Udp
        ~dst:(Node.id topo.Topology.server) ~src_port:1000 ~dst_port:2049
        (mk_payload 8192));
  Sim.run sim;
  match !received with
  | Some (src, len) ->
      Alcotest.(check int) "from client" (Node.id topo.Topology.client) src;
      Alcotest.(check int) "full datagram" 8192 len
  | None -> Alcotest.fail "datagram not delivered"

let test_campus_forwarding () =
  let sim = Sim.create () in
  let params = { Topology.default_params with cross_traffic = false; link_loss = 0.0 } in
  let topo = Topology.build sim { Topology.default_spec with Topology.shape = Topology.Campus; params } in
  let received = ref 0 in
  Node.set_proto_handler topo.Topology.server Packet.Udp (fun dg ->
      received := Mbuf.length dg.Node.payload);
  Proc.spawn sim (fun () ->
      Node.send_datagram topo.Topology.client ~proto:Packet.Udp
        ~dst:(Node.id topo.Topology.server) ~src_port:1000 ~dst_port:2049
        (mk_payload 8192));
  Sim.run sim;
  Alcotest.(check int) "delivered across routers" 8192 !received;
  List.iter
    (fun r ->
      Alcotest.(check bool) "router forwarded" true ((Node.stats r).Node.packets_forwarded > 0))
    topo.Topology.routers

let test_wan_forwarding_and_refragmentation () =
  let sim = Sim.create () in
  let params = { Topology.default_params with cross_traffic = false; link_loss = 0.0 } in
  let topo = Topology.build sim { Topology.default_spec with Topology.shape = Topology.Wide_area; params } in
  let received = ref 0 in
  Node.set_proto_handler topo.Topology.server Packet.Udp (fun dg ->
      received := Mbuf.length dg.Node.payload);
  Proc.spawn sim (fun () ->
      Node.send_datagram topo.Topology.client ~proto:Packet.Udp
        ~dst:(Node.id topo.Topology.server) ~src_port:1000 ~dst_port:2049
        (mk_payload 8192));
  Sim.run sim;
  Alcotest.(check int) "delivered across 3 routers + 56K" 8192 !received;
  (* The serial link should carry more, smaller packets than the ring. *)
  match topo.Topology.bottleneck with
  | Some serial ->
      Alcotest.(check bool) "many fragments over serial" true
        ((Link.stats serial).Link.packets_sent >= 9)
  | None -> Alcotest.fail "wan should expose a bottleneck"

let test_no_route_drop () =
  let sim = Sim.create () in
  let topo = Topology.build sim Topology.default_spec in
  Proc.spawn sim (fun () ->
      Node.send_datagram topo.Topology.client ~proto:Packet.Udp ~dst:99
        ~src_port:1 ~dst_port:2 (mk_payload 10));
  Sim.run sim;
  Alcotest.(check int) "counted" 1 (Node.stats topo.Topology.client).Node.no_route_drops

let test_send_consumes_cpu () =
  let sim = Sim.create () in
  let topo = Topology.build sim Topology.default_spec in
  Proc.spawn sim (fun () ->
      Node.send_datagram topo.Topology.client ~proto:Packet.Udp
        ~dst:(Node.id topo.Topology.server) ~src_port:1 ~dst_port:2
        (mk_payload 8192));
  Sim.run sim;
  let client_busy = Cpu.busy_time (Node.cpu topo.Topology.client) in
  let server_busy = Cpu.busy_time (Node.cpu topo.Topology.server) in
  Alcotest.(check bool) "client paid to send" true (client_busy > 0.001);
  Alcotest.(check bool) "server paid to receive" true (server_busy > 0.001)

let test_nic_stock_copies_more_than_tuned () =
  let stock = Nic.deqna_stock and tuned = Nic.deqna_tuned in
  let tx p = Nic.tx_cost p ~data_bytes:1480 ~clusters:1 ~small_bytes:40 in
  Alcotest.(check bool) "tuned cheaper" true (tx tuned < tx stock);
  (* Stock pays bytes/copy_bw; tuned pays one PTE swap + 40 bytes. *)
  Alcotest.(check bool) "substantially cheaper" true (tx tuned < tx stock /. 1.5)

let test_nic_copy_accounting () =
  let sim = Sim.create () in
  let params =
    {
      Topology.default_params with
      client_nic = Nic.deqna_stock;
      server_nic = Nic.deqna_stock;
    }
  in
  let topo = Topology.build sim { Topology.default_spec with Topology.params = params } in
  Proc.spawn sim (fun () ->
      Node.send_datagram topo.Topology.client ~proto:Packet.Udp
        ~dst:(Node.id topo.Topology.server) ~src_port:1 ~dst_port:2
        (mk_payload 8192));
  Sim.run sim;
  let copied =
    (Node.copy_counters topo.Topology.client).Mbuf.Counters.bytes_copied
  in
  Alcotest.(check bool) "stock NIC copies all 8K" true (copied >= 8192);
  (* Now tuned: cluster bytes are mapped, not copied. *)
  let sim2 = Sim.create () in
  let topo2 = Topology.build sim2 Topology.default_spec in
  Proc.spawn sim2 (fun () ->
      Node.send_datagram topo2.Topology.client ~proto:Packet.Udp
        ~dst:(Node.id topo2.Topology.server) ~src_port:1 ~dst_port:2
        (mk_payload 8192));
  Sim.run sim2;
  let copied2 =
    (Node.copy_counters topo2.Topology.client).Mbuf.Counters.bytes_copied
  in
  Alcotest.(check bool) "tuned NIC copies much less" true (copied2 < copied / 4)

let test_cross_traffic_loads_ring () =
  let sim = Sim.create () in
  let topo = Topology.build sim { Topology.default_spec with Topology.shape = Topology.Campus } in
  Sim.run ~until:30.0 sim;
  match topo.Topology.bottleneck with
  | Some ring ->
      Alcotest.(check bool) "background packets flowed" true
        ((Link.stats ring).Link.packets_sent > 100)
  | None -> Alcotest.fail "campus should expose the ring"

(* ------------------------------------------------------------------ *)
(* Graph worlds                                                       *)
(* ------------------------------------------------------------------ *)

let quiet_params =
  { Topology.default_params with cross_traffic = false; link_loss = 0.0 }

let test_build_error_names_shape () =
  let sim = Sim.create () in
  Alcotest.check_raises "campus, 3 clients"
    (Invalid_argument "Topology.build: shape Campus has exactly one client (got 3)")
    (fun () ->
      ignore
        (Topology.build sim
           { Topology.shape = Topology.Campus; clients = 3; params = quiet_params }));
  Alcotest.check_raises "lan, 0 clients"
    (Invalid_argument "Topology.build: shape Lan has exactly one client (got 0)")
    (fun () ->
      ignore
        (Topology.build sim
           { Topology.shape = Topology.Lan; clients = 0; params = quiet_params }))

let test_graph_invalid_specs () =
  let sim = Sim.create () in
  let base = { Topology.default_graph_spec with g_params = quiet_params } in
  let expect name msg spec =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (Topology.build_graph sim spec))
  in
  expect "no servers" "Topology.build_graph: needs at least one server"
    { base with Topology.g_servers = 0 };
  expect "too many servers" "Topology.build_graph: at most 90 servers (got 91)"
    { base with Topology.g_servers = 91 };
  expect "no clients" "Topology.build_graph: needs at least one client"
    { base with Topology.g_clients = 0 };
  expect "wan fraction range"
    "Topology.build_graph: wan_fraction must be within [0,1]"
    { base with Topology.g_wan_fraction = 1.5 };
  expect "empty backbone" "Topology.build_graph: Backbone needs at least one router"
    { base with Topology.g_tier = Topology.Backbone 0 };
  expect "empty fat-tree"
    "Topology.build_graph: Fat_tree needs at least one spine and one leaf"
    { base with Topology.g_tier = Topology.Fat_tree { spines = 0; leaves = 2 } }

(* Any client can reach any server across the fabric, and the naming /
   id contract holds. *)
let check_graph_delivery topo ~client ~server =
  let sim = topo.Topology.sim in
  let received = ref 0 in
  Node.set_proto_handler server Packet.Udp (fun dg ->
      received := Mbuf.length dg.Node.payload);
  Proc.spawn sim (fun () ->
      Node.send_datagram client ~proto:Packet.Udp ~dst:(Node.id server)
        ~src_port:1000 ~dst_port:2049 (mk_payload 8192));
  Sim.run sim;
  Alcotest.(check int) "delivered across fabric" 8192 !received

let test_graph_backbone () =
  let sim = Sim.create () in
  let topo =
    Topology.build_graph sim
      {
        Topology.g_servers = 4;
        g_clients = 6;
        g_tier = Topology.Backbone 2;
        g_wan_fraction = 0.0;
        g_params = quiet_params;
      }
  in
  Alcotest.(check (list string)) "server names"
    [ "server0"; "server1"; "server2"; "server3" ]
    (List.map Node.name topo.Topology.servers);
  Alcotest.(check (list int)) "server ids" [ 2; 3; 4; 5 ]
    (List.map Node.id topo.Topology.servers);
  Alcotest.(check (list string)) "router names" [ "bb0"; "bb1" ]
    (List.map Node.name topo.Topology.routers);
  Alcotest.(check int) "six clients" 6 (List.length topo.Topology.clients);
  Alcotest.(check string) "first client" "client0"
    (Node.name topo.Topology.client);
  Alcotest.(check int) "client ids from 100000" 100_000
    (Node.id topo.Topology.client);
  (* client5 attaches to bb1, server3 to bb1 as well; client0 to bb0 and
     server3 to bb1 crosses the backbone ring. *)
  let last_server = List.nth topo.Topology.servers 3 in
  check_graph_delivery topo ~client:topo.Topology.client ~server:last_server;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Node.name r ^ " forwarded")
        true
        ((Node.stats r).Node.packets_forwarded > 0))
    topo.Topology.routers

let test_graph_fat_tree () =
  let sim = Sim.create () in
  let topo =
    Topology.build_graph sim
      {
        Topology.g_servers = 4;
        g_clients = 4;
        g_tier = Topology.Fat_tree { spines = 2; leaves = 2 };
        g_wan_fraction = 0.0;
        g_params = quiet_params;
      }
  in
  Alcotest.(check (list string)) "tier names"
    [ "spine0"; "spine1"; "leaf0"; "leaf1" ]
    (List.map Node.name topo.Topology.routers);
  let last_server = List.nth topo.Topology.servers 3 in
  check_graph_delivery topo ~client:topo.Topology.client ~server:last_server

let test_graph_wan_fraction () =
  let sim = Sim.create () in
  let topo =
    Topology.build_graph sim
      {
        Topology.g_servers = 1;
        g_clients = 8;
        g_tier = Topology.Backbone 1;
        g_wan_fraction = 0.25;
        g_params = quiet_params;
      }
  in
  let server = topo.Topology.server in
  let delivered = ref 0 in
  Node.set_proto_handler server Packet.Udp (fun _ -> incr delivered);
  List.iter
    (fun c ->
      Proc.spawn sim (fun () ->
          Node.send_datagram c ~proto:Packet.Udp ~dst:(Node.id server)
            ~src_port:1000 ~dst_port:2049 (mk_payload 8192)))
    topo.Topology.clients;
  Sim.run sim;
  Alcotest.(check int) "all datagrams arrive" 8 !delivered;
  (* A 56K serial edge has a 1006-byte MTU, so the 8K datagram leaves a
     WAN client in >= 9 fragments where an Ethernet edge takes 6.  With
     wan_fraction 0.25 over 8 clients the even-spread rule marks
     exactly clients 3 and 7. *)
  let wan_clients =
    List.filteri
      (fun _ c ->
        match Node.links c with
        | [ l ] -> (Link.stats l).Link.packets_sent >= 9
        | _ -> false)
      topo.Topology.clients
    |> List.map Node.name
  in
  Alcotest.(check (list string)) "even spread" [ "client3"; "client7" ] wan_clients

(* Properties *)

let prop_fragment_reassemble =
  QCheck.Test.make ~name:"fragment/reassemble identity across mtus" ~count:100
    QCheck.(pair (int_range 1 20000) (int_range 64 9000))
    (fun (size, mtu) ->
      let sim = Sim.create () in
      let reasm = Ipfrag.create sim () in
      let p = mk_datagram size in
      let original = Mbuf.to_bytes (Mbuf.sub_copy p.Packet.payload ~pos:0 ~len:size) in
      let frags = Packet.fragment p ~mtu in
      match List.filter_map (Ipfrag.insert reasm) frags with
      | [ whole ] -> Bytes.equal (Mbuf.to_bytes whole.Packet.payload) original
      | _ -> false)

let prop_fragment_two_stage =
  QCheck.Test.make ~name:"two-stage fragmentation reassembles" ~count:100
    QCheck.(triple (int_range 1 16384) (int_range 600 4500) (int_range 300 1500))
    (fun (size, mtu1, mtu2) ->
      let sim = Sim.create () in
      let reasm = Ipfrag.create sim () in
      let p = mk_datagram size in
      let original = Mbuf.to_bytes (Mbuf.sub_copy p.Packet.payload ~pos:0 ~len:size) in
      let stage1 = Packet.fragment p ~mtu:mtu1 in
      let stage2 = List.concat_map (fun f -> Packet.fragment f ~mtu:mtu2) stage1 in
      match List.filter_map (Ipfrag.insert reasm) stage2 with
      | [ whole ] -> Bytes.equal (Mbuf.to_bytes whole.Packet.payload) original
      | _ -> false)

let () =
  Alcotest.run "net"
    [
      ( "fragmentation",
        [
          Alcotest.test_case "small passes through" `Quick test_no_fragmentation_when_small;
          Alcotest.test_case "8K = 6 ethernet fragments" `Quick
            test_8k_over_ethernet_is_6_fragments;
          Alcotest.test_case "offsets aligned" `Quick test_fragment_offsets_aligned;
          Alcotest.test_case "router re-fragmentation" `Quick test_refragmentation;
          Alcotest.test_case "mtu too small" `Quick test_fragment_mtu_too_small;
        ] );
      ( "reassembly",
        [
          Alcotest.test_case "in order" `Quick test_reassembly_in_order;
          Alcotest.test_case "out of order" `Quick test_reassembly_out_of_order;
          Alcotest.test_case "missing fragment times out" `Quick
            test_reassembly_missing_fragment_times_out;
          Alcotest.test_case "duplicates ignored" `Quick test_reassembly_duplicate_fragments;
          Alcotest.test_case "interleaved datagrams" `Quick
            test_reassembly_interleaved_datagrams;
        ] );
      ( "links",
        [
          Alcotest.test_case "serialization + delay" `Quick test_link_serialization_delay;
          Alcotest.test_case "fifo backlog" `Quick test_link_fifo_backlog;
          Alcotest.test_case "queue drops" `Quick test_link_queue_drops;
          Alcotest.test_case "random loss" `Quick test_link_random_loss;
        ] );
      ( "mangling",
        [
          Alcotest.test_case "corrupt flips one bit" `Quick
            test_mangle_corrupt_flips_one_bit;
          Alcotest.test_case "truncate shortens" `Quick test_mangle_truncate_shortens;
          Alcotest.test_case "duplicate delivers twice" `Quick
            test_mangle_duplicate_delivers_twice;
          Alcotest.test_case "reorder delays" `Quick test_mangle_reorder_delays;
          Alcotest.test_case "deterministic by seed" `Quick
            test_mangle_deterministic_by_seed;
          Alcotest.test_case "rate save/restore" `Quick test_mangle_rate_save_restore;
        ] );
      ( "nodes",
        [
          Alcotest.test_case "lan delivery" `Quick test_lan_datagram_delivery;
          Alcotest.test_case "campus forwarding" `Quick test_campus_forwarding;
          Alcotest.test_case "wan re-fragmentation" `Quick
            test_wan_forwarding_and_refragmentation;
          Alcotest.test_case "no route drop" `Quick test_no_route_drop;
          Alcotest.test_case "send consumes cpu" `Quick test_send_consumes_cpu;
          Alcotest.test_case "nic stock vs tuned cost" `Quick
            test_nic_stock_copies_more_than_tuned;
          Alcotest.test_case "nic copy accounting" `Quick test_nic_copy_accounting;
          Alcotest.test_case "cross traffic flows" `Quick test_cross_traffic_loads_ring;
        ] );
      ( "topology",
        [
          Alcotest.test_case "build error names shape" `Quick
            test_build_error_names_shape;
          Alcotest.test_case "graph spec validation" `Quick test_graph_invalid_specs;
          Alcotest.test_case "backbone graph" `Quick test_graph_backbone;
          Alcotest.test_case "fat-tree graph" `Quick test_graph_fat_tree;
          Alcotest.test_case "wan fraction spread" `Quick test_graph_wan_fraction;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fragment_reassemble; prop_fragment_two_stage ] );
    ]
