module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Rtt = Renofs_engine.Rtt
module Stats = Renofs_engine.Stats
module Mbuf = Renofs_mbuf.Mbuf
module Xdr = Renofs_xdr.Xdr
module Rpc_msg = Renofs_rpc.Rpc_msg
module Record_mark = Renofs_rpc.Record_mark
module Node = Renofs_net.Node
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Trace = Renofs_trace.Trace
module Metrics = Renofs_metrics.Metrics
module P = Nfs_proto

exception Rpc_error of string
exception Rpc_timed_out of { proc : string; final_timeo : float }

(* Ceiling on the backed-off retransmission timeout: exponential backoff
   must not grow a soft mount's final wait (or a hard mount's retry
   interval) past a minute, as BSD's NFS_MAXTIMEO (60 s) does. *)
let max_rto = 60.0

type summary = { calls : int; retransmits : int; mean_rtt : float }

type pending = {
  p_xid : int32;
  p_proc : int;
  request : Mbuf.t; (* master copy for retransmission *)
  reply : (Mbuf.t, exn) result Proc.Ivar.t;
  mutable sent_at : float;
  mutable retransmitted : bool;
  mutable retries : int;
  mutable backoff : float;
  mutable timer : Sim.timer option;
}

(* Jacobson estimators for the four most frequent RPCs; the paper uses
   A+4D for the big, high-variance ones and A+2D for the small ones.
   The backoff persists across requests of the class (Karn): while no
   clean sample has arrived, successive requests keep the inflated RTO,
   otherwise an underestimating default could retransmit every request
   forever and never obtain a sample to learn from. *)
type est_entry = { e_rtt : Rtt.t; mutable e_backoff : float }

type estimators = {
  e_read : est_entry;
  e_write : est_entry;
  e_getattr : est_entry;
  e_lookup : est_entry;
}

type tcp_state = {
  tcp_stack : Tcp.stack;
  tcp_mss : int;
  mutable conn : Tcp.conn;
  mutable reconnecting : bool;
}

type mode =
  | Udp_fixed
  | Udp_dynamic of estimators
  | Tcp_stream of tcp_state

type t = {
  sim : Sim.t;
  node : Node.t;
  mode : mode;
  sock : Udp.socket option;
  server : int;
  timeo : float;
  max_retries : int option; (* None = hard mount: retry forever *)
  cred : Rpc_msg.auth;
  mutable next_xid : int32;
  pending : (int32, pending) Hashtbl.t;
  (* congestion window on outstanding requests (dynamic mode only) *)
  mutable cwnd : float;
  cwnd_max : float;
  mutable last_cwnd_cut : float;
  mutable outstanding : int;
  mutable gate : (unit -> unit) list;
  (* statistics *)
  mutable n_calls : int;
  mutable n_retransmits : int;
  mutable n_garbled : int;
  rtt_all : Stats.Welford.t;
  rtt_by_proc : (string, Stats.Welford.t) Hashtbl.t;
  mutable trace : (Stats.Series.t * Stats.Series.t) option;
}

let encode_instructions = 260.0
let decode_instructions = 260.0

let charge t instructions =
  Cpu.consume (Node.cpu t.node) (Cpu.seconds_of_instructions (Node.cpu t.node) instructions)

let fresh_estimators () =
  (* The BSD NFS retransmit timer runs off the 10 Hz slow-timeout
     clock: an RTO below two ticks cannot fire.  The 200 ms floor also
     keeps the timer above the RTT tail on slow links, where an RTO
     that hugs the smoothed mean retransmits spuriously (nfsstat's
     badxid) every time queueing stretches a round trip. *)
  let entry k = { e_rtt = Rtt.create ~k ~min_rto:0.2 (); e_backoff = 1.0 } in
  {
    e_read = entry 4.0;
    e_write = entry 4.0;
    e_getattr = entry 2.0;
    e_lookup = entry 2.0;
  }

let estimator_for est proc =
  match proc with
  | 6 -> Some est.e_read
  | 8 -> Some est.e_write
  | 1 -> Some est.e_getattr
  | 4 -> Some est.e_lookup
  | _ -> None

(* RTO for a transmission attempt, using the *current* A and D (the
   paper recalculates on every NFS clock tick so the freshest values are
   used; computing at arm time gives the same effect). *)
let rto_for t p =
  match t.mode with
  | Udp_fixed -> Float.min max_rto (t.timeo *. p.backoff)
  | Udp_dynamic est -> (
      match estimator_for est p.p_proc with
      | Some e ->
          Float.min max_rto
            (Rtt.rto e.e_rtt ~default:t.timeo *. e.e_backoff *. p.backoff)
      | None -> Float.min max_rto (t.timeo *. p.backoff))
  | Tcp_stream _ -> infinity

let record_rtt t p rtt =
  Stats.Welford.add t.rtt_all rtt;
  let name = P.proc_name p.p_proc in
  let w =
    match Hashtbl.find_opt t.rtt_by_proc name with
    | Some w -> w
    | None ->
        let w = Stats.Welford.create () in
        Hashtbl.replace t.rtt_by_proc name w;
        w
  in
  Stats.Welford.add w rtt;
  (match t.mode with
  | Udp_dynamic est -> (
      match estimator_for est p.p_proc with
      | Some e -> (
          Rtt.observe e.e_rtt rtt;
          e.e_backoff <- 1.0;
          match Node.trace t.node with
          | Some tr ->
              Trace.record tr ~time:(Sim.now t.sim) ~node:(Node.id t.node)
                (Trace.Rto_update { rto = Rtt.rto e.e_rtt ~default:t.timeo })
          | None -> ())
      | None -> ())
  | Udp_fixed | Tcp_stream _ -> ());
  match t.trace with
  | Some (rtts, rtos) when p.p_proc = 6 ->
      let now = Sim.now t.sim in
      Stats.Series.add rtts now rtt;
      let rto =
        match t.mode with
        | Udp_dynamic est -> Rtt.rto est.e_read.e_rtt ~default:t.timeo
        | Udp_fixed -> t.timeo
        | Tcp_stream _ -> 0.0
      in
      Stats.Series.add rtos now rto
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* UDP transmission and retransmission                                *)
(* ------------------------------------------------------------------ *)

let request_copy t p =
  Mbuf.sub_copy ?pool:(Node.pool t.node) p.request ~pos:0
    ~len:(Mbuf.length p.request)

let rec transmit_udp t p =
  let sock = Option.get t.sock in
  p.sent_at <- Sim.now t.sim;
  Udp.sendto sock ~dst:t.server ~dst_port:P.port (request_copy t p);
  let rto = rto_for t p in
  p.timer <-
    Some
      (Sim.timer_after t.sim rto (fun () ->
           Proc.spawn t.sim (fun () -> on_udp_timeout t p)))

and on_udp_timeout t p =
  if Hashtbl.mem t.pending p.p_xid then begin
    p.retries <- p.retries + 1;
    match t.max_retries with
    | Some limit when p.retries > limit ->
        (* Soft mount: give up and fail the call. *)
        Hashtbl.remove t.pending p.p_xid;
        t.outstanding <- t.outstanding - 1;
        (match t.gate with
        | [] -> ()
        | resume :: rest ->
            t.gate <- rest;
            Sim.after t.sim 0.0 resume);
        (match Node.trace t.node with
        | Some tr ->
            (* Only soft mounts have a retry limit, so [soft] is true on
               every real emission; the invariant checker flags any
               [soft = false] occurrence as a hard-mount leak. *)
            Trace.record tr ~time:(Sim.now t.sim) ~node:(Node.id t.node)
              (Trace.Wl_error { op = P.proc_name p.p_proc; soft = true })
        | None -> ());
        Mbuf.release ?pool:(Node.pool t.node) p.request;
        Proc.Ivar.fill p.reply
          (Error
             (Rpc_timed_out
                { proc = P.proc_name p.p_proc; final_timeo = rto_for t p }))
    | _ ->
        t.n_retransmits <- t.n_retransmits + 1;
        p.retransmitted <- true;
        p.backoff <- Float.min (p.backoff *. 2.0) 64.0;
        (match t.mode with
        | Udp_dynamic est ->
            (* One window cut per congestion event, as TCP does: a burst
               of outstanding requests timing out together is one event,
               not ten. *)
            if Sim.now t.sim -. t.last_cwnd_cut > 1.0 then begin
              t.cwnd <- Float.max 1.0 (t.cwnd /. 2.0);
              t.last_cwnd_cut <- Sim.now t.sim;
              match Node.trace t.node with
              | Some tr ->
                  Trace.record tr ~time:(Sim.now t.sim) ~node:(Node.id t.node)
                    (Trace.Cwnd_update { cwnd = t.cwnd })
              | None -> ()
            end;
            (match estimator_for est p.p_proc with
            | Some e -> e.e_backoff <- Float.min (e.e_backoff *. 2.0) 16.0
            | None -> ())
        | Udp_fixed | Tcp_stream _ -> ());
        (match Node.trace t.node with
        | Some tr ->
            Trace.record tr ~time:(Sim.now t.sim) ~node:(Node.id t.node)
              (Trace.Rpc_retransmit
                 {
                   xid = p.p_xid;
                   proc = p.p_proc;
                   retry = p.retries;
                   rto = rto_for t p;
                 })
        | None -> ());
        transmit_udp t p
  end

let complete t xid chain =
  match Hashtbl.find_opt t.pending xid with
  | None -> () (* reply for a forgotten (already answered) request *)
  | Some p ->
      Hashtbl.remove t.pending xid;
      (match p.timer with Some tm -> Sim.cancel tm | None -> ());
      (* The master copy can never be retransmitted again; recycle it.
         Every transmission sent a fresh [request_copy], so no in-flight
         packet aliases this storage. *)
      Mbuf.release ?pool:(Node.pool t.node) p.request;
      (* Karn's rule: no RTT sample from retransmitted requests. *)
      if not p.retransmitted then record_rtt t p (Sim.now t.sim -. p.sent_at);
      (match t.mode with
      | Udp_dynamic _ ->
          (* +1 per round trip, approximated as +1/cwnd per reply; the
             paper's scheme with slow start removed. *)
          t.cwnd <- Float.min t.cwnd_max (t.cwnd +. (1.0 /. Float.max 1.0 t.cwnd))
      | Udp_fixed | Tcp_stream _ -> ());
      (match Node.trace t.node with
      | Some tr ->
          let time = Sim.now t.sim in
          let node = Node.id t.node in
          Trace.record tr ~time ~node
            (Trace.Rpc_reply { xid; proc = p.p_proc; rtt = time -. p.sent_at });
          (match t.mode with
          | Udp_dynamic _ ->
              Trace.record tr ~time ~node (Trace.Cwnd_update { cwnd = t.cwnd })
          | Udp_fixed | Tcp_stream _ -> ())
      | None -> ());
      t.outstanding <- t.outstanding - 1;
      (match t.gate with
      | [] -> ()
      | resume :: rest ->
          t.gate <- rest;
          Sim.after t.sim 0.0 resume);
      Proc.Ivar.fill p.reply (Ok chain)

(* Validate a received reply end to end before completing the pending
   request.  Anything that does not decode — short packet, damaged RPC
   header, damaged NFS body — is counted, traced as a [Garbled] drop and
   discarded, which leaves the request pending: the RTO fires and
   retransmits (UDP), or the reconnect path replays (TCP).  A decodable
   reply whose xid matches nothing pending is a late duplicate of an
   answered request and is dropped silently, as the BSD client does.
   [GARBAGE_ARGS] means the *request* was damaged in transit; the server
   never executed it, so it too is left to the retransmit path. *)
let garbage t ~bytes =
  t.n_garbled <- t.n_garbled + 1;
  match Node.trace t.node with
  | Some tr ->
      Trace.record tr ~time:(Sim.now t.sim) ~node:(Node.id t.node)
        (Trace.Pkt_drop
           { link = Node.name t.node ^ ":rpc"; bytes; reason = Trace.Garbled })
  | None -> ()

let garbage_reply t chain =
  garbage t ~bytes:(Mbuf.length chain);
  (* The chain goes nowhere else; hand its storage back. *)
  Mbuf.release ?pool:(Node.pool t.node) chain

let try_complete t chain =
  match Rpc_msg.peek_xid chain with
  | None -> garbage_reply t chain
  | Some xid -> (
      match Hashtbl.find_opt t.pending xid with
      | None ->
          (* Late duplicate of an already-answered request: dropped
             silently, as the BSD client does, but the storage is still
             ours to recycle. *)
          Mbuf.release ?pool:(Node.pool t.node) chain
      | Some p -> (
          match Rpc_msg.decode_reply chain with
          | exception (Rpc_msg.Bad_message _ | Xdr.Decode_error _) ->
              garbage_reply t chain
          | _, Rpc_msg.Accepted Rpc_msg.Success, dec -> (
              (* Throwaway decode of the body: [call] decodes again from
                 its own cursor, so validating here costs one extra pass
                 only on the reply actually being completed. *)
              match P.decode_reply ~proc:p.p_proc dec with
              | exception (Rpc_msg.Bad_message _ | Xdr.Decode_error _) ->
                  garbage_reply t chain
              | _ -> complete t xid chain)
          | _, Rpc_msg.Accepted Rpc_msg.Garbage_args, _ ->
              garbage_reply t chain
          | _, (Rpc_msg.Accepted _ | Rpc_msg.Denied _), _ ->
              (* A well-formed error reply (wrong program, auth trouble):
                 genuine server state, delivered to the caller. *)
              complete t xid chain))

let start_udp_receiver t =
  let sock = Option.get t.sock in
  Proc.spawn t.sim (fun () ->
      let rec loop () =
        let dg = Udp.recv sock in
        try_complete t dg.Udp.payload;
        loop ()
      in
      loop ())

(* Receive records until the connection dies, then reconnect and resend
   every pending request — the client-side connection maintenance the
   paper describes for stream sockets.  Requests the server executed
   before the crash are re-executed; for the non-idempotent ones this
   is precisely the at-least-once hazard the paper's conclusion calls
   out (the server's duplicate cache died with it). *)
let rec start_tcp_receiver t st =
  Proc.spawn t.sim (fun () ->
      let conn = st.conn in
      let reader = Record_mark.Reader.create () in
      let rec loop () =
        match Tcp.recv conn ~max:65536 with
        | chunk -> (
            Record_mark.Reader.push reader chunk;
            let rec drain () =
              match Record_mark.Reader.pop reader with
              | Some record ->
                  try_complete t record;
                  drain ()
              | None -> ()
            in
            (* A corrupt record mark means framing is lost for good:
               abort so the next [recv] raises [Connection_closed] and
               the normal reconnect-and-replay path takes over. *)
            match drain () with
            | () -> loop ()
            | exception Record_mark.Reader.Corrupt _ ->
                garbage t ~bytes:(Record_mark.Reader.buffered reader);
                Tcp.abort conn;
                loop ())
        | exception Tcp.Connection_closed -> reconnect t st
      in
      loop ())

and reconnect t st =
  if not st.reconnecting then begin
    st.reconnecting <- true;
    let rec attempt () =
      Proc.sleep t.sim 1.0;
      match Tcp.connect ~mss:st.tcp_mss st.tcp_stack ~dst:t.server ~dst_port:P.port with
      | conn ->
          st.conn <- conn;
          st.reconnecting <- false;
          start_tcp_receiver t st;
          (* Replay everything still unanswered. *)
          let pending = Hashtbl.fold (fun _ p acc -> p :: acc) t.pending [] in
          List.iter
            (fun p ->
              p.retransmitted <- true;
              t.n_retransmits <- t.n_retransmits + 1;
              (match Node.trace t.node with
              | Some tr ->
                  Trace.record tr ~time:(Sim.now t.sim) ~node:(Node.id t.node)
                    (Trace.Rpc_retransmit
                       { xid = p.p_xid; proc = p.p_proc; retry = p.retries; rto = 0.0 })
              | None -> ());
              try Tcp.send conn (Record_mark.frame (request_copy t p))
              with Tcp.Connection_closed -> ())
            pending
      | exception Tcp.Connect_timeout -> attempt ()
    in
    attempt ()
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

(* Sampled sources for the run attached to this client's node, if any:
   the congestion window and outstanding-request gauges plus per-class
   Jacobson estimator state (srtt / rttvar / RTO, in ms) — the
   trajectories behind Graphs 5 and 7.  Estimators without a sample yet
   return nan, which the sampler skips. *)
let register_metrics t =
  match Node.metrics t.node with
  | None -> ()
  | Some run ->
      let p s = Node.name t.node ^ ".xport." ^ s in
      let fi = float_of_int in
      Metrics.register run ~name:(p "outstanding") ~unit_:"count"
        ~kind:Metrics.Gauge (fun () -> fi t.outstanding);
      Metrics.register run ~name:(p "calls") ~unit_:"count"
        ~kind:Metrics.Counter (fun () -> fi t.n_calls);
      Metrics.register run ~name:(p "retransmits") ~unit_:"count"
        ~kind:Metrics.Counter (fun () -> fi t.n_retransmits);
      Metrics.register run ~name:(p "garbled") ~unit_:"count"
        ~kind:Metrics.Counter (fun () -> fi t.n_garbled);
      match t.mode with
      | Udp_fixed | Tcp_stream _ -> ()
      | Udp_dynamic est ->
          Metrics.register run ~name:(p "cwnd") ~unit_:"count"
            ~kind:Metrics.Gauge (fun () -> t.cwnd);
          List.iter
            (fun (cls, e) ->
              let ms f () = if Rtt.initialized e.e_rtt then f () *. 1e3 else nan in
              Metrics.register run ~name:(p cls ^ ".srtt") ~unit_:"ms"
                ~kind:Metrics.Gauge
                (ms (fun () -> Rtt.srtt e.e_rtt));
              Metrics.register run ~name:(p cls ^ ".rttvar") ~unit_:"ms"
                ~kind:Metrics.Gauge
                (ms (fun () -> Rtt.deviation e.e_rtt));
              Metrics.register run ~name:(p cls ^ ".rto") ~unit_:"ms"
                ~kind:Metrics.Gauge
                (ms (fun () -> Rtt.rto e.e_rtt ~default:t.timeo)))
            [
              ("read", est.e_read);
              ("write", est.e_write);
              ("getattr", est.e_getattr);
              ("lookup", est.e_lookup);
            ]

let base node ~mode ~sock ~server ~timeo ?max_retries ?(uid = 100) ?(gid = 100)
    ~cwnd_init ~cwnd_max () =
  let t =
    {
      sim = Node.sim node;
    node;
    mode;
    sock;
    server;
    timeo;
    max_retries;
    cred = Rpc_msg.Auth_unix { stamp = 0; machine = "renofs-client"; uid; gid };
    next_xid = 1l;
    pending = Hashtbl.create 32;
    cwnd = cwnd_init;
    cwnd_max;
    last_cwnd_cut = -1.0;
    outstanding = 0;
    gate = [];
    n_calls = 0;
    n_retransmits = 0;
    n_garbled = 0;
      rtt_all = Stats.Welford.create ();
      rtt_by_proc = Hashtbl.create 8;
      trace = None;
    }
  in
  register_metrics t;
  t

let create_udp_fixed stack ~server ?(timeo = 1.0) ?max_retries ?uid ?gid () =
  let node = Udp.node stack in
  let sock = Udp.bind_ephemeral stack in
  let t =
    base node ~mode:Udp_fixed ~sock:(Some sock) ~server ~timeo ?max_retries ?uid
      ?gid ~cwnd_init:infinity ~cwnd_max:infinity ()
  in
  start_udp_receiver t;
  t

let create_udp_dynamic stack ~server ?(timeo = 1.0) ?max_retries ?uid ?gid
    ?(cwnd_init = 4.0) ?(cwnd_max = 12.0) () =
  let node = Udp.node stack in
  let sock = Udp.bind_ephemeral stack in
  let t =
    base node
      ~mode:(Udp_dynamic (fresh_estimators ()))
      ~sock:(Some sock) ~server ~timeo ?max_retries ?uid ?gid ~cwnd_init ~cwnd_max ()
  in
  start_udp_receiver t;
  t

let create_tcp stack ~server ?(mss = 1024) ?uid ?gid () =
  let node = Tcp.node stack in
  match Tcp.connect ~mss stack ~dst:server ~dst_port:P.port with
  | conn ->
      let st = { tcp_stack = stack; tcp_mss = mss; conn; reconnecting = false } in
      let t =
        base node ~mode:(Tcp_stream st) ~sock:None ~server ~timeo:1.0 ?uid ?gid
          ~cwnd_init:infinity ~cwnd_max:infinity ()
      in
      start_tcp_receiver t st;
      t
  | exception Tcp.Connect_timeout -> raise (Rpc_error "NFS server not responding (TCP connect)")

(* ------------------------------------------------------------------ *)
(* The call itself                                                    *)
(* ------------------------------------------------------------------ *)

let gate_wait t =
  match t.mode with
  | Udp_dynamic _ ->
      let rec wait () =
        if float_of_int t.outstanding >= t.cwnd then begin
          Proc.suspend (fun resume -> t.gate <- t.gate @ [ resume ]);
          wait ()
        end
      in
      wait ()
  | Udp_fixed | Tcp_stream _ -> ()

let call t call_v =
  let proc = P.proc_of_call call_v in
  charge t encode_instructions;
  let xid = t.next_xid in
  t.next_xid <- Int32.add t.next_xid 1l;
  let ctr = Node.copy_counters t.node in
  let pool = Node.pool t.node in
  let enc =
    Rpc_msg.encode_call ~ctr ?pool
      { Rpc_msg.xid; prog = P.program; vers = P.version; proc; cred = t.cred }
  in
  P.encode_call ~ctr enc call_v;
  let master = Xdr.Enc.chain enc in
  let p =
    {
      p_xid = xid;
      p_proc = proc;
      request = master;
      reply = Proc.Ivar.create t.sim;
      sent_at = Sim.now t.sim;
      retransmitted = false;
      retries = 0;
      backoff = 1.0;
      timer = None;
    }
  in
  gate_wait t;
  t.outstanding <- t.outstanding + 1;
  t.n_calls <- t.n_calls + 1;
  Hashtbl.replace t.pending xid p;
  (match Node.trace t.node with
  | Some tr ->
      Trace.record tr ~time:(Sim.now t.sim) ~node:(Node.id t.node)
        (Trace.Rpc_send { xid; proc })
  | None -> ());
  (match t.mode with
  | Udp_fixed | Udp_dynamic _ -> transmit_udp t p
  | Tcp_stream st -> (
      p.sent_at <- Sim.now t.sim;
      (* A dead connection is not an error: the request stays pending
         and is replayed after the automatic reconnect. *)
      try Tcp.send st.conn (Record_mark.frame ~ctr ?pool (request_copy t p))
      with Tcp.Connection_closed -> ()));
  let reply_chain =
    match Proc.Ivar.read p.reply with Ok c -> c | Error e -> raise e
  in
  charge t decode_instructions;
  match Rpc_msg.decode_reply reply_chain with
  | exception (Rpc_msg.Bad_message m | Xdr.Decode_error m) -> raise (Rpc_error m)
  | _, Rpc_msg.Accepted Rpc_msg.Success, dec ->
      (* Decoded values are fresh bytes (the cursor copies out of the
         chain), so once the body is decoded the reply storage is dead. *)
      let result = P.decode_reply ~proc dec in
      Mbuf.release ?pool reply_chain;
      result
  | _, Rpc_msg.Accepted _, _ -> raise (Rpc_error "rpc accepted with error")
  | _, Rpc_msg.Denied _, _ -> raise (Rpc_error "rpc denied")

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

let summary t =
  {
    calls = t.n_calls;
    retransmits = t.n_retransmits;
    mean_rtt = Stats.Welford.mean t.rtt_all;
  }

let retransmits t = t.n_retransmits
let garbled t = t.n_garbled
let outstanding t = t.outstanding
let congestion_window t = t.cwnd

let rtt_by_proc t =
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) t.rtt_by_proc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let enable_read_trace t =
  if t.trace = None then
    t.trace <- Some (Stats.Series.create ~name:"rtt" (), Stats.Series.create ~name:"rto" ())

let read_rtt_trace t =
  match t.trace with Some (r, _) -> Stats.Series.to_list r | None -> []

let read_rto_trace t =
  match t.trace with Some (_, r) -> Stats.Series.to_list r | None -> []
