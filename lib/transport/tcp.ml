module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Rtt = Renofs_engine.Rtt
module Mbuf = Renofs_mbuf.Mbuf
module Node = Renofs_net.Node
module Packet = Renofs_net.Packet
module Trace = Renofs_trace.Trace

exception Connection_closed
exception Connect_timeout

type stats = {
  segs_sent : int;
  segs_received : int;
  retransmit_timeouts : int;
  fast_retransmits : int;
  bytes_sent : int;
  srtt : float;
  rto : float;
  cwnd : float;
}

(* ------------------------------------------------------------------ *)
(* Segment header: 20 real bytes at the front of every payload.       *)
(* ------------------------------------------------------------------ *)

let header_bytes = 20
let flag_syn = 1
let flag_ack = 2
let flag_fin = 4
let flag_rst = 8

type header = { seq : int; ack : int; flags : int; window : int }

let encode_header h =
  let b = Bytes.make header_bytes '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int h.seq);
  Bytes.set_int32_be b 4 (Int32.of_int h.ack);
  Bytes.set b 8 (Char.chr (h.flags land 0xFF));
  Bytes.set_int32_be b 10 (Int32.of_int h.window);
  b

(* TCP's checksum, always on: the ones-complement sum of header and
   data, complemented and stored in the header's unused bytes 14-15
   (left zero by [encode_header]).  Summing an intact segment end to
   end therefore yields zero — the verification the input handler
   performs before it trusts a single header field. *)
let ones_sum_bytes b =
  let s = ref 0 in
  let n = Bytes.length b in
  let i = ref 0 in
  while !i + 1 < n do
    s :=
      !s
      + ((Char.code (Bytes.get b !i) lsl 8) lor Char.code (Bytes.get b (!i + 1)));
    s := (!s land 0xFFFF) + (!s lsr 16);
    i := !i + 2
  done;
  if !i < n then begin
    s := !s + (Char.code (Bytes.get b !i) lsl 8);
    s := (!s land 0xFFFF) + (!s lsr 16)
  end;
  !s

(* Header + optional data as one chain with the checksum stamped in.
   The header is even-length, so the two ones-complement partial sums
   combine with a single carry fold. *)
let checksummed_chain hdr data =
  let hb = encode_header hdr in
  let data_sum =
    match data with None -> 0 | Some d -> lnot (Mbuf.checksum d) land 0xFFFF
  in
  let s = ones_sum_bytes hb + data_sum in
  let s = (s land 0xFFFF) + (s lsr 16) in
  Bytes.set_uint16_be hb 14 (lnot s land 0xFFFF);
  let chain = Mbuf.of_bytes hb in
  (match data with Some d -> Mbuf.append_chain chain d | None -> ());
  chain

let decode_header chain =
  let b = Mbuf.to_bytes (Mbuf.sub_copy chain ~pos:0 ~len:header_bytes) in
  {
    seq = Int32.to_int (Bytes.get_int32_be b 0) land 0xFFFFFFFF;
    ack = Int32.to_int (Bytes.get_int32_be b 4) land 0xFFFFFFFF;
    flags = Char.code (Bytes.get b 8);
    window = Int32.to_int (Bytes.get_int32_be b 10) land 0xFFFFFFFF;
  }

(* ------------------------------------------------------------------ *)
(* Connections                                                        *)
(* ------------------------------------------------------------------ *)

type state = Syn_sent | Syn_received | Established | Closing | Closed

type conn = {
  stack : stack;
  local_port : int;
  peer : int;
  peer_port : int;
  mss : int;
  mutable state : state;
  (* --- send side: snd_buf byte 0 is sequence snd_una --- *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_buf : Mbuf.t;
  snd_buf_limit : int;
  mutable snd_wnd : int;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable dup_acks : int;
  mutable in_recovery : bool;
  rtt : Rtt.t;
  mutable timed_seq : int option;
  mutable timed_at : float;
  mutable rto_backoff : float;
  mutable rexmt : Sim.timer option;
  mutable persist : Sim.timer option;
  mutable send_waiters : (unit -> unit) list;
  mutable want_fin : bool;
  mutable fin_sent : bool;
  (* --- receive side --- *)
  mutable rcv_nxt : int;
  mutable ooo : (int * Mbuf.t * bool) list; (* (seq, data, fin) *)
  mutable rcv_buf : Mbuf.t;
  rcv_buf_limit : int;
  mutable rcv_waiters : (unit -> unit) list;
  mutable fin_rcvd : bool;
  (* delayed ACKs: in-order data is acknowledged every second segment
     or after a short timer, as in BSD; out-of-order data immediately *)
  mutable delack : Sim.timer option;
  mutable unacked_segs : int;
  established : [ `Ok | `Timeout ] Proc.Ivar.t;
  mutable syn_tries : int;
  send_lock : Proc.Semaphore.t;
  (* --- stats --- *)
  mutable n_segs_sent : int;
  mutable n_segs_rcvd : int;
  mutable n_timeouts : int;
  mutable n_fast_rexmt : int;
  mutable n_bytes_sent : int;
}

and stack = {
  node : Node.t;
  send_cost : float;
  recv_cost : float;
  ack_cost : float;
  listeners : (int, conn -> unit) Hashtbl.t;
  conns : (int * int * int, conn) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable checksum_drops : int;
}

let node t = t.node
let checksum_drops t = t.checksum_drops
let mss conn = conn.mss
let peer conn = conn.peer
let peer_port conn = conn.peer_port

let stats c =
  {
    segs_sent = c.n_segs_sent;
    segs_received = c.n_segs_rcvd;
    retransmit_timeouts = c.n_timeouts;
    fast_retransmits = c.n_fast_rexmt;
    bytes_sent = c.n_bytes_sent;
    srtt = Rtt.srtt c.rtt;
    rto = Rtt.rto c.rtt ~default:3.0;
    cwnd = c.cwnd;
  }

let sim c = Node.sim c.stack.node
let cpu c = Node.cpu c.stack.node

let adv_window c = max 0 (c.rcv_buf_limit - Mbuf.length c.rcv_buf)

let fin_in_flight c = if c.fin_sent then 1 else 0

(* Data bytes transmitted but not yet acknowledged.  Clamped: once the
   peer acknowledges the FIN, [snd_una] covers it and the difference
   would otherwise go to -1. *)
let data_in_flight c = max 0 (c.snd_nxt - c.snd_una - fin_in_flight c)

let rto_of c = Rtt.rto c.rtt ~default:3.0 *. c.rto_backoff

(* Record the congestion-control state after it changes (timeout, fast
   retransmit, window growth): one [Cwnd_update] plus one [Rto_update]
   per congestion event when a sink is attached, nothing otherwise. *)
let trace_cc c =
  match Node.trace c.stack.node with
  | Some tr ->
      let time = Sim.now (Node.sim c.stack.node) in
      let node = Node.id c.stack.node in
      Trace.record tr ~time ~node (Trace.Cwnd_update { cwnd = c.cwnd });
      Trace.record tr ~time ~node (Trace.Rto_update { rto = rto_of c })
  | None -> ()

let send_segment c ~seq ~flags ~data =
  (* Every segment carries the current ack: piggybacking satisfies any
     pending delayed ACK. *)
  (match c.delack with
  | Some tm ->
      Sim.cancel tm;
      c.delack <- None
  | None -> ());
  c.unacked_segs <- 0;
  let hdr =
    { seq; ack = c.rcv_nxt; flags = flags lor flag_ack; window = adv_window c }
  in
  let chain = checksummed_chain hdr data in
  c.n_segs_sent <- c.n_segs_sent + 1;
  c.n_bytes_sent <- c.n_bytes_sent + Mbuf.length chain;
  Cpu.consume (cpu c) c.stack.send_cost;
  Node.send_datagram c.stack.node ~proto:Packet.Tcp ~dst:c.peer
    ~src_port:c.local_port ~dst_port:c.peer_port chain

(* The SYN does not carry the ACK flag. *)
let send_syn c =
  let hdr = { seq = 0; ack = 0; flags = flag_syn; window = adv_window c } in
  let chain = checksummed_chain hdr None in
  c.n_segs_sent <- c.n_segs_sent + 1;
  Cpu.consume (cpu c) c.stack.send_cost;
  Node.send_datagram c.stack.node ~proto:Packet.Tcp ~dst:c.peer
    ~src_port:c.local_port ~dst_port:c.peer_port chain

let send_syn_ack c =
  send_segment c ~seq:0 ~flags:flag_syn ~data:None

let send_ack c = send_segment c ~seq:c.snd_nxt ~flags:0 ~data:None

let delack_interval = 0.05

(* Acknowledge lazily: every second in-order segment, or when the
   delayed-ACK timer fires; a reply segment usually piggybacks first. *)
let ack_later c =
  c.unacked_segs <- c.unacked_segs + 1;
  if c.unacked_segs >= 2 then send_ack c
  else if c.delack = None then
    c.delack <-
      Some
        (Sim.timer_after (sim c) delack_interval (fun () ->
             c.delack <- None;
             Proc.spawn (sim c) (fun () ->
                 if c.state <> Closed then send_ack c)))

let cancel_timer = function Some t -> Sim.cancel t | None -> ()

let rec arm_rexmt c =
  cancel_timer c.rexmt;
  c.rexmt <-
    Some
      (Sim.timer_after (sim c) (rto_of c) (fun () ->
           Proc.spawn (sim c) (fun () -> on_rexmt_timeout c)))

and on_rexmt_timeout c =
  match c.state with
  | Closed -> ()
  | Syn_sent ->
      c.syn_tries <- c.syn_tries + 1;
      if c.syn_tries > 4 then begin
        c.state <- Closed;
        if not (Proc.Ivar.is_full c.established) then
          Proc.Ivar.fill c.established `Timeout
      end
      else begin
        c.rto_backoff <- Float.min (c.rto_backoff *. 2.0) 64.0;
        send_syn c;
        arm_rexmt c
      end
  | Syn_received ->
      c.rto_backoff <- Float.min (c.rto_backoff *. 2.0) 64.0;
      send_syn_ack c;
      arm_rexmt c
  | Established | Closing ->
      if c.snd_una < c.snd_nxt then begin
        c.n_timeouts <- c.n_timeouts + 1;
        let flight = float_of_int (c.snd_nxt - c.snd_una) in
        c.ssthresh <-
          Float.max (Float.min c.cwnd flight /. 2.0) (2.0 *. float_of_int c.mss);
        c.cwnd <- float_of_int c.mss;
        c.rto_backoff <- Float.min (c.rto_backoff *. 2.0) 64.0;
        (* Karn: give up on the sample being timed. *)
        c.timed_seq <- None;
        c.dup_acks <- 0;
        c.in_recovery <- false;
        trace_cc c;
        (* Go-back-N from the last acknowledged byte. *)
        c.snd_nxt <- c.snd_una;
        c.fin_sent <- false;
        output c
      end

and arm_persist c =
  if c.persist = None then
    c.persist <-
      Some
        (Sim.timer_after (sim c) (rto_of c) (fun () ->
             c.persist <- None;
             Proc.spawn (sim c) (fun () -> output ~probe:true c)))

(* Push out as much buffered data as windows allow. *)
and output ?(probe = false) c =
  match c.state with
  | Established | Closing ->
      let buffered = Mbuf.length c.snd_buf in
      let in_flight = data_in_flight c in
      let unsent = buffered - in_flight in
      let wnd = min (int_of_float c.cwnd) c.snd_wnd in
      let usable = wnd - in_flight in
      if unsent > 0 && (usable > 0 || (probe && in_flight = 0)) then begin
        let n = min c.mss (min unsent (if usable > 0 then usable else 1)) in
        let seq = c.snd_nxt in
        let data = Mbuf.sub_copy c.snd_buf ~pos:in_flight ~len:n in
        c.snd_nxt <- c.snd_nxt + n;
        if c.timed_seq = None then begin
          c.timed_seq <- Some seq;
          c.timed_at <- Sim.now (sim c)
        end;
        send_segment c ~seq ~flags:0 ~data:(Some data);
        arm_rexmt c;
        output c
      end
      else if unsent > 0 && in_flight = 0 && c.snd_wnd = 0 then
        (* Zero window: probe periodically. *)
        arm_persist c
      else if
        unsent = 0 && c.want_fin && not c.fin_sent && c.state = Closing
      then begin
        c.fin_sent <- true;
        let seq = c.snd_nxt in
        c.snd_nxt <- c.snd_nxt + 1;
        send_segment c ~seq ~flags:flag_fin ~data:None;
        arm_rexmt c
      end
  | Syn_sent | Syn_received | Closed -> ()

let wake_all sim waiters =
  List.iter (fun resume -> Sim.after sim 0.0 resume) waiters

(* Retransmit the earliest unacknowledged segment (fast retransmit). *)
let retransmit_head c =
  let n = min c.mss (Mbuf.length c.snd_buf) in
  if n > 0 then begin
    let data = Mbuf.sub_copy c.snd_buf ~pos:0 ~len:n in
    c.timed_seq <- None;
    send_segment c ~seq:c.snd_una ~flags:0 ~data:(Some data);
    arm_rexmt c
  end

let process_ack c (h : header) ~had_data =
  if h.ack > c.snd_una then begin
    let acked = h.ack - c.snd_una in
    let data_acked = min acked (Mbuf.length c.snd_buf) in
    if data_acked > 0 then begin
      let _, rest = Mbuf.split c.snd_buf data_acked in
      c.snd_buf <- rest
    end;
    c.snd_una <- h.ack;
    (* A late ack for data sent before a go-back-N reset can pass
       [snd_nxt]; transmission resumes from the acknowledged point. *)
    if c.snd_nxt < c.snd_una then c.snd_nxt <- c.snd_una;
    (* RTT sample (Karn's rule: [timed_seq] is cleared on retransmit). *)
    (match c.timed_seq with
    | Some seq when h.ack > seq ->
        Rtt.observe c.rtt (Sim.now (sim c) -. c.timed_at);
        c.timed_seq <- None
    | _ -> ());
    c.rto_backoff <- 1.0;
    (* Congestion window growth. *)
    if c.in_recovery then begin
      c.cwnd <- c.ssthresh;
      c.in_recovery <- false
    end
    else if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd +. float_of_int c.mss
    else
      c.cwnd <-
        c.cwnd +. (float_of_int (c.mss * c.mss) /. c.cwnd);
    c.cwnd <- Float.min c.cwnd 65536.0;
    trace_cc c;
    c.dup_acks <- 0;
    if c.snd_una = c.snd_nxt then begin
      cancel_timer c.rexmt;
      c.rexmt <- None
    end
    else arm_rexmt c;
    let waiters = c.send_waiters in
    c.send_waiters <- [];
    wake_all (sim c) waiters;
    output c
  end
  else if (not had_data) && h.ack = c.snd_una && c.snd_una < c.snd_nxt then begin
    c.dup_acks <- c.dup_acks + 1;
    if c.dup_acks = 3 then begin
      c.n_fast_rexmt <- c.n_fast_rexmt + 1;
      let flight = float_of_int (c.snd_nxt - c.snd_una) in
      c.ssthresh <-
        Float.max (flight /. 2.0) (2.0 *. float_of_int c.mss);
      retransmit_head c;
      c.cwnd <- c.ssthresh +. (3.0 *. float_of_int c.mss);
      c.in_recovery <- true;
      trace_cc c
    end
    else if c.dup_acks > 3 then begin
      c.cwnd <- c.cwnd +. float_of_int c.mss;
      output c
    end
  end

(* Absorb in-order data (and any out-of-order segments it releases). *)
let rec absorb c seq data fin =
  let len = Mbuf.length data in
  if seq = c.rcv_nxt then begin
    Mbuf.append_chain c.rcv_buf data;
    c.rcv_nxt <- c.rcv_nxt + len;
    if fin then begin
      c.rcv_nxt <- c.rcv_nxt + 1;
      c.fin_rcvd <- true
    end;
    let ready, rest =
      List.partition (fun (s, _, _) -> s <= c.rcv_nxt) c.ooo
    in
    c.ooo <- rest;
    List.iter
      (fun (s, d, f) ->
        if s = c.rcv_nxt then absorb c s d f
        else if s < c.rcv_nxt then begin
          (* Overlapping retransmission: drop the covered prefix. *)
          let skip = c.rcv_nxt - s in
          if skip < Mbuf.length d then begin
            let _, tail = Mbuf.split d skip in
            absorb c c.rcv_nxt tail f
          end
          else if f && s + Mbuf.length d >= c.rcv_nxt then absorb c c.rcv_nxt (Mbuf.empty ()) f
        end)
      (List.sort (fun (a, _, _) (b, _, _) -> compare a b) ready)
  end
  else if seq > c.rcv_nxt then begin
    if not (List.exists (fun (s, _, _) -> s = seq) c.ooo) then
      c.ooo <- (seq, data, fin) :: c.ooo
  end
  else begin
    (* Partially or fully duplicate segment. *)
    let skip = c.rcv_nxt - seq in
    if skip < len then begin
      let _, tail = Mbuf.split data skip in
      absorb c c.rcv_nxt tail fin
    end
    else if fin && seq + len = c.rcv_nxt && not c.fin_rcvd then begin
      c.rcv_nxt <- c.rcv_nxt + 1;
      c.fin_rcvd <- true
    end
  end

(* Tear down all local state and wake every waiter; they see
   [Connection_closed]. *)
let teardown c =
  if c.state <> Closed then begin
    c.state <- Closed;
    cancel_timer c.rexmt;
    c.rexmt <- None;
    cancel_timer c.persist;
    c.persist <- None;
    cancel_timer c.delack;
    c.delack <- None;
    c.fin_rcvd <- true;
    Hashtbl.remove c.stack.conns (c.local_port, c.peer, c.peer_port);
    let rs = c.rcv_waiters and ss = c.send_waiters in
    c.rcv_waiters <- [];
    c.send_waiters <- [];
    wake_all (sim c) rs;
    wake_all (sim c) ss;
    if not (Proc.Ivar.is_full c.established) then Proc.Ivar.fill c.established `Timeout
  end

let abort c =
  if c.state <> Closed then begin
    (* Best-effort RST to the peer (a rebooting host's TCP does this for
       segments addressed to vanished connections). *)
    (try
       let hdr = { seq = c.snd_nxt; ack = c.rcv_nxt; flags = flag_rst; window = 0 } in
       let chain = checksummed_chain hdr None in
       Cpu.consume (cpu c) c.stack.send_cost;
       Node.send_datagram c.stack.node ~proto:Packet.Tcp ~dst:c.peer
         ~src_port:c.local_port ~dst_port:c.peer_port chain
     with _ -> ());
    teardown c
  end

let reset_all stack =
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) stack.conns [] in
  List.iter abort conns

let conn_input c (h : header) payload =
  c.n_segs_rcvd <- c.n_segs_rcvd + 1;
  if h.flags land flag_rst <> 0 then teardown c
  else begin
  c.snd_wnd <- h.window;
  (match c.persist with
  | Some t when h.window > 0 ->
      Sim.cancel t;
      c.persist <- None
  | _ -> ());
  let data_len = Mbuf.length payload in
  let is_syn = h.flags land flag_syn <> 0 in
  let is_fin = h.flags land flag_fin <> 0 in
  let has_ack = h.flags land flag_ack <> 0 in
  match c.state with
  | Syn_sent when is_syn && has_ack && h.ack >= 1 ->
      c.snd_una <- 1;
      c.snd_nxt <- 1;
      c.rcv_nxt <- 1;
      c.state <- Established;
      cancel_timer c.rexmt;
      c.rexmt <- None;
      c.rto_backoff <- 1.0;
      send_ack c;
      if not (Proc.Ivar.is_full c.established) then Proc.Ivar.fill c.established `Ok
  | Syn_sent -> ()
  | Syn_received when is_syn ->
      (* Duplicate SYN: our SYN-ACK was lost. *)
      send_syn_ack c
  | Syn_received when has_ack && h.ack >= 1 ->
      c.snd_una <- max c.snd_una 1;
      c.state <- Established;
      cancel_timer c.rexmt;
      c.rexmt <- None;
      c.rto_backoff <- 1.0;
      if not (Proc.Ivar.is_full c.established) then Proc.Ivar.fill c.established `Ok;
      if data_len > 0 || is_fin then begin
        absorb c h.seq payload is_fin;
        let waiters = c.rcv_waiters in
        c.rcv_waiters <- [];
        wake_all (sim c) waiters;
        send_ack c
      end
  | Syn_received -> ()
  | Established | Closing ->
      if is_syn then send_ack c (* stale handshake segment *)
      else begin
        if has_ack then process_ack c h ~had_data:(data_len > 0);
        if data_len > 0 || is_fin then begin
          let in_order = h.seq = c.rcv_nxt && c.ooo = [] in
          absorb c h.seq payload is_fin;
          let waiters = c.rcv_waiters in
          c.rcv_waiters <- [];
          wake_all (sim c) waiters;
          (* Out-of-order or duplicate data must be acknowledged at once
             (it generates the dup ACKs fast retransmit needs); clean
             in-order data can wait for a piggyback. *)
          if in_order && not is_fin then ack_later c else send_ack c
        end;
        (* As in BSD's tcp_input: always try to transmit afterwards — a
           window update with no new ack must still unblock the sender. *)
        output c
      end
  | Closed -> ()
  end

(* ------------------------------------------------------------------ *)
(* Stack                                                              *)
(* ------------------------------------------------------------------ *)

let make_conn stack ~local_port ~peer ~peer_port ~mss ~rcv_buffer ~state =
  {
    stack;
    local_port;
    peer;
    peer_port;
    mss;
    state;
    snd_una = 0;
    snd_nxt = 0;
    snd_buf = Mbuf.empty ();
    snd_buf_limit = 16384;
    snd_wnd = 16384;
    cwnd = float_of_int mss;
    ssthresh = 65536.0;
    dup_acks = 0;
    in_recovery = false;
    rtt = Rtt.create ~k:4.0 ~min_rto:0.2 ();
    timed_seq = None;
    timed_at = 0.0;
    rto_backoff = 1.0;
    rexmt = None;
    persist = None;
    send_waiters = [];
    want_fin = false;
    fin_sent = false;
    rcv_nxt = 0;
    ooo = [];
    rcv_buf = Mbuf.empty ();
    rcv_buf_limit = rcv_buffer;
    rcv_waiters = [];
    fin_rcvd = false;
    delack = None;
    unacked_segs = 0;
    established = Proc.Ivar.create (Node.sim stack.node);
    syn_tries = 0;
    send_lock = Proc.Semaphore.create (Node.sim stack.node) 1;
    n_segs_sent = 0;
    n_segs_rcvd = 0;
    n_timeouts = 0;
    n_fast_rexmt = 0;
    n_bytes_sent = 0;
  }

let default_rcv_buffer = 16384

let install ?(send_instructions = 480.0) ?(recv_instructions = 480.0)
    ?(ack_instructions = 200.0) node =
  let per n = Cpu.seconds_of_instructions (Node.cpu node) n in
  let stack =
    {
      node;
      send_cost = per send_instructions;
      recv_cost = per recv_instructions;
      ack_cost = per ack_instructions;
      listeners = Hashtbl.create 8;
      conns = Hashtbl.create 32;
      next_ephemeral = 50000;
      checksum_drops = 0;
    }
  in
  Node.set_proto_handler node Packet.Tcp (fun (dg : Node.datagram) ->
      if
        Mbuf.length dg.Node.payload < header_bytes
        || Mbuf.checksum dg.Node.payload <> 0
      then begin
        (* Short or corrupt segment: drop before trusting any header
           field; the sender's retransmission repairs the stream. *)
        stack.checksum_drops <- stack.checksum_drops + 1;
        match Node.trace node with
        | Some tr ->
            Trace.record tr
              ~time:(Sim.now (Node.sim node))
              ~node:(Node.id node)
              (Trace.Pkt_drop
                 {
                   link = Printf.sprintf "tcp:%d" dg.Node.dst_port;
                   bytes = Mbuf.length dg.Node.payload;
                   reason = Trace.Bad_checksum;
                 })
        | None -> ()
      end
      else begin
        let h = decode_header dg.Node.payload in
        let _, payload = Mbuf.split dg.Node.payload header_bytes in
        (* Input protocol processing cost: cheaper for pure ACKs. *)
        let cost =
          if Mbuf.length payload = 0 && h.flags land flag_syn = 0 then
            stack.ack_cost
          else stack.recv_cost
        in
        Cpu.consume (Node.cpu node) cost;
        let key = (dg.Node.dst_port, dg.Node.src, dg.Node.src_port) in
        match Hashtbl.find_opt stack.conns key with
        | Some conn -> conn_input conn h payload
        | None -> (
            match Hashtbl.find_opt stack.listeners dg.Node.dst_port with
            | Some accept_fn when h.flags land flag_syn <> 0 ->
                let conn =
                  make_conn stack ~local_port:dg.Node.dst_port ~peer:dg.Node.src
                    ~peer_port:dg.Node.src_port ~mss:512
                    ~rcv_buffer:default_rcv_buffer ~state:Syn_received
                in
                conn.rcv_nxt <- 1;
                conn.snd_nxt <- 1;
                (* SYN occupies sequence 0. *)
                Hashtbl.replace stack.conns key conn;
                send_syn_ack conn;
                arm_rexmt conn;
                Proc.spawn (Node.sim node) (fun () ->
                    match Proc.Ivar.read conn.established with
                    | `Ok -> accept_fn conn
                    | `Timeout -> ())
            | _ -> () (* no listener: segment dropped *))
      end);
  stack

let listen stack ~port fn =
  if Hashtbl.mem stack.listeners port then
    invalid_arg (Printf.sprintf "Tcp.listen: port %d in use" port);
  Hashtbl.replace stack.listeners port fn

let connect ?(mss = 512) ?(rcv_buffer = default_rcv_buffer) stack ~dst ~dst_port =
  let rec pick () =
    let p = stack.next_ephemeral in
    stack.next_ephemeral <- stack.next_ephemeral + 1;
    if Hashtbl.mem stack.conns (p, dst, dst_port) then pick () else p
  in
  let local_port = pick () in
  let conn =
    make_conn stack ~local_port ~peer:dst ~peer_port:dst_port ~mss ~rcv_buffer
      ~state:Syn_sent
  in
  Hashtbl.replace stack.conns (local_port, dst, dst_port) conn;
  conn.snd_nxt <- 1;
  (* SYN occupies sequence 0 *)
  send_syn conn;
  arm_rexmt conn;
  match Proc.Ivar.read conn.established with
  | `Ok -> conn
  | `Timeout ->
      Hashtbl.remove stack.conns (local_port, dst, dst_port);
      raise Connect_timeout

let send conn chain =
  if conn.state <> Established then raise Connection_closed;
  Proc.Semaphore.acquire conn.send_lock;
  let rec push pending =
    if Mbuf.length pending > 0 then begin
      if conn.state <> Established then raise Connection_closed;
      let room = conn.snd_buf_limit - Mbuf.length conn.snd_buf in
      if room <= 0 then begin
        Proc.suspend (fun resume ->
            conn.send_waiters <- conn.send_waiters @ [ resume ]);
        push pending
      end
      else begin
        let n = min room (Mbuf.length pending) in
        let head, rest = Mbuf.split pending n in
        Mbuf.append_chain conn.snd_buf head;
        output conn;
        push rest
      end
    end
  in
  (match push chain with
  | () -> Proc.Semaphore.release conn.send_lock
  | exception e ->
      Proc.Semaphore.release conn.send_lock;
      raise e)

let rec recv conn ~max =
  let len = Mbuf.length conn.rcv_buf in
  if len > 0 then begin
    let n = min max len in
    let head, rest = Mbuf.split conn.rcv_buf n in
    conn.rcv_buf <- rest;
    (* Window update if the receive buffer had filled. *)
    if len >= conn.rcv_buf_limit then send_ack conn;
    head
  end
  else if conn.fin_rcvd || conn.state = Closed then raise Connection_closed
  else begin
    Proc.suspend (fun resume -> conn.rcv_waiters <- conn.rcv_waiters @ [ resume ]);
    recv conn ~max
  end

let debug_dump c =
  let state =
    match c.state with
    | Syn_sent -> "syn_sent"
    | Syn_received -> "syn_rcvd"
    | Established -> "estab"
    | Closing -> "closing"
    | Closed -> "closed"
  in
  Printf.sprintf
    "%s una=%d nxt=%d buf=%d wnd=%d cwnd=%.0f ssthresh=%.0f dup=%d rcv_nxt=%d \
     rcvbuf=%d ooo=%d rexmt=%b persist=%b waiters=s%d/r%d fin_s=%b fin_r=%b"
    state c.snd_una c.snd_nxt (Mbuf.length c.snd_buf) c.snd_wnd c.cwnd
    c.ssthresh c.dup_acks c.rcv_nxt (Mbuf.length c.rcv_buf) (List.length c.ooo)
    (c.rexmt <> None) (c.persist <> None)
    (List.length c.send_waiters)
    (List.length c.rcv_waiters)
    c.fin_sent c.fin_rcvd

let close conn =
  match conn.state with
  | Established ->
      conn.state <- Closing;
      conn.want_fin <- true;
      Proc.spawn (sim conn) (fun () -> output conn)
  | Closing | Closed | Syn_sent | Syn_received -> conn.state <- Closed
