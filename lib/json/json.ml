type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg =
    (* Count newlines up to the failure point so callers can report
       file:line:col on multi-line documents (fault schedules, JSONL). *)
    let line = ref 1 and bol = ref 0 in
    for i = 0 to Stdlib.min !pos n - 1 do
      if s.[i] = '\n' then begin
        incr line;
        bol := i + 1
      end
    done;
    raise
      (Bad
         (Printf.sprintf "%s at line %d, column %d (offset %d)" msg !line
            (!pos - !bol + 1) !pos))
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* ASCII round-trips; anything higher degrades to '?'
                  (our emitters never produce it). *)
               Buffer.add_char b (if code < 128 then Char.chr code else '?');
               pos := !pos + 5
           | _ -> fail "unknown escape");
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s = try Ok (parse_exn s) with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let fail ctx msg = raise (Bad (Printf.sprintf "%s: %s" ctx msg))

let member ~ctx name o =
  match List.assoc_opt name o with
  | Some v -> v
  | None -> fail ctx (Printf.sprintf "missing field %S" name)

let member_opt name o = List.assoc_opt name o
let str ~ctx = function Str s -> s | _ -> fail ctx "expected string"
let num ~ctx = function Num v -> v | _ -> fail ctx "expected number"
let arr ~ctx = function Arr l -> l | _ -> fail ctx "expected array"
let obj ~ctx = function Obj o -> o | _ -> fail ctx "expected object"

(* ------------------------------------------------------------------ *)
(* Located file/line decoding                                         *)
(* ------------------------------------------------------------------ *)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> Ok content
  | exception Sys_error msg -> Error msg

let load_file path =
  match read_file path with
  | Error _ as e -> e
  | Ok content ->
      (* Parse errors already carry line/column; add which file. *)
      Result.map_error
        (fun msg -> path ^ ": parse error: " ^ msg)
        (parse content)

let decode_file path decode =
  match load_file path with
  | Error _ as e -> e
  | Ok doc -> (
      try Ok (decode doc) with Bad msg -> Error (path ^ ": " ^ msg))

let decode_line ~path ~lineno line decode =
  match parse line with
  | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg)
  | Ok doc -> (
      try Ok (decode doc)
      with Bad msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg))
