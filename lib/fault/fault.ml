module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Node = Renofs_net.Node
module Link = Renofs_net.Link
module Trace = Renofs_trace.Trace
module Nfs_server = Renofs_core.Nfs_server
module Json = Renofs_json.Json

type mangle_spec = {
  at : float;
  duration : float;
  link : string;
  rate : float;
  seed : int;
}

type action =
  | Server_crash of { at : float; downtime : float; server : string }
  | Link_down of { at : float; duration : float; link : string }
  | Loss_burst of { at : float; duration : float; link : string; loss : float }
  | Cpu_slow of { at : float; duration : float; node : string; factor : float }
  | Partition of { at : float; duration : float; between : string * string }
  | Corrupt of mangle_spec
  | Truncate of mangle_spec
  | Duplicate of mangle_spec
  | Reorder of mangle_spec

type schedule = { name : string; description : string; actions : action list }

(* The four wire-mangling actions differ only in which [Link.mangle_op]
   they drive; collapse them for describe/encode/install. *)
let mangle_parts = function
  | Corrupt m -> Some (Link.Corrupt, "corrupt", m)
  | Truncate m -> Some (Link.Truncate, "truncate", m)
  | Duplicate m -> Some (Link.Duplicate, "duplicate", m)
  | Reorder m -> Some (Link.Reorder, "reorder", m)
  | Server_crash _ | Link_down _ | Loss_burst _ | Cpu_slow _ | Partition _ ->
      None

let describe = function
  | Server_crash { at; downtime; server } ->
      Printf.sprintf "server_crash at=%g downtime=%g server=%s" at downtime
        server
  | Link_down { at; duration; link } ->
      Printf.sprintf "link_down at=%g duration=%g link=%s" at duration link
  | Loss_burst { at; duration; link; loss } ->
      Printf.sprintf "loss_burst at=%g duration=%g link=%s loss=%g" at duration
        link loss
  | Cpu_slow { at; duration; node; factor } ->
      Printf.sprintf "cpu_slow at=%g duration=%g node=%s factor=%g" at duration
        node factor
  | Partition { at; duration; between = a, b } ->
      Printf.sprintf "partition at=%g duration=%g between=%s,%s" at duration a b
  | (Corrupt _ | Truncate _ | Duplicate _ | Reorder _) as a ->
      let _, kind, { at; duration; link; rate; seed } =
        Option.get (mangle_parts a)
      in
      Printf.sprintf "%s at=%g duration=%g link=%s rate=%g seed=%d" kind at
        duration link rate seed

(* ------------------------------------------------------------------ *)
(* Built-in schedules                                                 *)
(* ------------------------------------------------------------------ *)

let builtins =
  [
    {
      name = "crash";
      description = "server crashes at t=4s, reboots 3s later";
      actions = [ Server_crash { at = 4.0; downtime = 3.0; server = "*" } ];
    };
    {
      name = "flaky";
      description = "5% corruption on every link from t=2s to t=8s";
      actions =
        [ Loss_burst { at = 2.0; duration = 6.0; link = "*"; loss = 0.05 } ];
    };
    {
      name = "flap";
      description = "every link goes down for 400ms, twice";
      actions =
        [
          Link_down { at = 3.0; duration = 0.4; link = "*" };
          Link_down { at = 6.0; duration = 0.4; link = "*" };
        ];
    };
    {
      name = "slow-server";
      description = "server CPU 8x slower from t=2s to t=8s";
      actions =
        [ Cpu_slow { at = 2.0; duration = 6.0; node = "server"; factor = 8.0 } ];
    };
    {
      name = "garble";
      description = "1% single-bit wire corruption on every link, t=1s to t=9s";
      actions =
        [
          Corrupt
            { at = 1.0; duration = 8.0; link = "*"; rate = 0.01; seed = 0 };
        ];
    };
    {
      name = "partition";
      description = "client and server partitioned from t=3s for 2s";
      actions =
        [
          Partition { at = 3.0; duration = 2.0; between = ("client", "server") };
        ];
    };
  ]

let find_builtin name = List.find_opt (fun s -> s.name = name) builtins

(* ------------------------------------------------------------------ *)
(* JSON schedule files ("renofs-fault/1")                             *)
(* ------------------------------------------------------------------ *)

let schema_version = "renofs-fault/1"

let action_of_json j =
  let ctx = "action" in
  let o = Json.obj ~ctx j in
  let kind = Json.str ~ctx:(ctx ^ ".kind") (Json.member ~ctx "kind" o) in
  let ctx = kind in
  let num name = Json.num ~ctx:(ctx ^ "." ^ name) (Json.member ~ctx name o) in
  let str name = Json.str ~ctx:(ctx ^ "." ^ name) (Json.member ~ctx name o) in
  let at = num "at" in
  match kind with
  | "server_crash" ->
      Server_crash
        {
          at;
          downtime = num "downtime";
          server =
            (match Json.member_opt "server" o with
            | Some s -> Json.str ~ctx:(ctx ^ ".server") s
            | None -> "*");
        }
  | "link_down" ->
      Link_down { at; duration = num "duration"; link = str "link" }
  | "loss_burst" ->
      Loss_burst
        { at; duration = num "duration"; link = str "link"; loss = num "loss" }
  | "cpu_slow" ->
      Cpu_slow
        { at; duration = num "duration"; node = str "node"; factor = num "factor" }
  | "partition" -> (
      match Json.arr ~ctx:"partition.between" (Json.member ~ctx "between" o) with
      | [ a; b ] ->
          Partition
            {
              at;
              duration = num "duration";
              between =
                ( Json.str ~ctx:"partition.between" a,
                  Json.str ~ctx:"partition.between" b );
            }
      | _ -> raise (Json.Bad "partition.between: expected a two-element array"))
  | "corrupt" | "truncate" | "duplicate" | "reorder" ->
      let m =
        {
          at;
          duration = num "duration";
          link = str "link";
          rate = num "rate";
          seed =
            (match Json.member_opt "seed" o with
            | Some s -> int_of_float (Json.num ~ctx:(ctx ^ ".seed") s)
            | None -> 0);
        }
      in
      (match kind with
      | "corrupt" -> Corrupt m
      | "truncate" -> Truncate m
      | "duplicate" -> Duplicate m
      | _ -> Reorder m)
  | other -> raise (Json.Bad (Printf.sprintf "unknown action kind %S" other))

let of_json j =
  try
    let top = Json.obj ~ctx:"schedule" j in
    let version =
      Json.str ~ctx:"schema" (Json.member ~ctx:"schedule" "schema" top)
    in
    if version <> schema_version then
      raise
        (Json.Bad
           (Printf.sprintf "schema %S, expected %S" version schema_version));
    let name = Json.str ~ctx:"name" (Json.member ~ctx:"schedule" "name" top) in
    let description =
      match Json.member_opt "description" top with
      | Some d -> Json.str ~ctx:"description" d
      | None -> ""
    in
    let actions =
      Json.arr ~ctx:"actions" (Json.member ~ctx:"schedule" "actions" top)
      |> List.map action_of_json
    in
    if actions = [] then raise (Json.Bad "actions array is empty");
    Ok { name; description; actions }
  with Json.Bad msg -> Error msg

let parse s =
  match Json.parse s with
  | Error msg -> Error ("parse error: " ^ msg)
  | Ok doc -> of_json doc

let load_file path =
  match Json.load_file path with
  | Error _ as e -> e
  | Ok doc -> Result.map_error (fun msg -> path ^ ": " ^ msg) (of_json doc)

let resolve spec =
  match find_builtin spec with Some s -> Ok s | None -> load_file spec

(* ------------------------------------------------------------------ *)
(* Installation                                                       *)
(* ------------------------------------------------------------------ *)

type env = {
  sim : Sim.t;
  nodes : Node.t list;
  servers : Nfs_server.t list;
  trace : Trace.t option;
}

let note env action =
  match env.trace with
  | Some tr ->
      Trace.record tr ~time:(Sim.now env.sim) ~node:(-1)
        (Trace.Fault_inject { action = describe action })
  | None -> ()

let all_links env = List.concat_map Node.links env.nodes

(* Link directions are named "<base>:<a>><b>" by [Node.connect]; a bare
   base name matches both directions. *)
let base_of name =
  match String.index_opt name ':' with
  | Some i -> String.sub name 0 i
  | None -> name

let links_matching env pat =
  all_links env
  |> List.filter (fun l ->
         pat = "*" || Link.name l = pat || base_of (Link.name l) = pat)

let links_between env (a, b) =
  let dir x y = ":" ^ x ^ ">" ^ y in
  let suffix_matches name s =
    String.length name >= String.length s
    && String.sub name (String.length name - String.length s) (String.length s)
       = s
  in
  all_links env
  |> List.filter (fun l ->
         suffix_matches (Link.name l) (dir a b)
         || suffix_matches (Link.name l) (dir b a))

let node_named env name = List.find_opt (fun n -> Node.name n = name) env.nodes

let install env sched =
  (* Action times are relative to installation, so a schedule can be
     installed after a warmup phase and still mean "crash 4s into the
     measured run". *)
  let base = Sim.now env.sim in
  let at time f = Sim.at env.sim (base +. time) f in
  List.iter
    (fun action ->
      match action with
      | Server_crash { at = t; downtime; server } ->
          at t (fun () ->
              note env action;
              (* "*" crashes every server — the single-server worlds'
                 behaviour, unchanged; a name picks one shard out of a
                 fleet. *)
              env.servers
              |> List.iter (fun srv ->
                     if server = "*" || Node.name (Nfs_server.node srv) = server
                     then
                       Proc.spawn env.sim (fun () ->
                           Nfs_server.crash_and_reboot srv ~downtime)))
      | Link_down { at = t; duration; link } ->
          at t (fun () ->
              note env action;
              let ls = links_matching env link in
              List.iter (fun l -> Link.set_up l false) ls;
              Sim.after env.sim duration (fun () ->
                  List.iter (fun l -> Link.set_up l true) ls))
      | Loss_burst { at = t; duration; link; loss } ->
          at t (fun () ->
              note env action;
              let ls = links_matching env link in
              let saved = List.map (fun l -> (l, Link.loss l)) ls in
              List.iter (fun l -> Link.set_loss l loss) ls;
              Sim.after env.sim duration (fun () ->
                  List.iter (fun (l, v) -> Link.set_loss l v) saved))
      | Cpu_slow { at = t; duration; node; factor } ->
          at t (fun () ->
              note env action;
              match node_named env node with
              | Some n ->
                  let cpu = Node.cpu n in
                  let saved = Cpu.slowdown cpu in
                  Cpu.set_slowdown cpu factor;
                  Sim.after env.sim duration (fun () ->
                      Cpu.set_slowdown cpu saved)
              | None -> ())
      | Partition { at = t; duration; between } ->
          at t (fun () ->
              note env action;
              let ls = links_between env between in
              List.iter (fun l -> Link.set_up l false) ls;
              Sim.after env.sim duration (fun () ->
                  List.iter (fun l -> Link.set_up l true) ls))
      | Corrupt _ | Truncate _ | Duplicate _ | Reorder _ ->
          let op, _, { at = t; duration; link; rate; seed } =
            Option.get (mangle_parts action)
          in
          at t (fun () ->
              note env action;
              let ls = links_matching env link in
              let saved = List.map (fun l -> (l, Link.mangle_rate l op)) ls in
              List.iter (fun l -> Link.set_mangle l ~seed op rate) ls;
              Sim.after env.sim duration (fun () ->
                  List.iter (fun (l, v) -> Link.set_mangle l ~seed op v) saved)))
    sched.actions

(* ------------------------------------------------------------------ *)
(* Invariant checking                                                 *)
(* ------------------------------------------------------------------ *)

module Check = struct
  type verdict = { v_name : string; v_ok : bool; v_detail : string }

  let non_idempotent proc = proc = 9 || proc = 10 || proc = 11

  let verdict name = function
    | [] -> { v_name = name; v_ok = true; v_detail = "ok" }
    | v :: _ as all ->
        {
          v_name = name;
          v_ok = false;
          v_detail =
            (if List.length all = 1 then v
             else Printf.sprintf "%s (+%d more)" v (List.length all - 1));
        }

  (* -- durable writes ---------------------------------------------- *)

  type committed = {
    w_file : int;
    w_off : int;
    w_len : int;
    w_digest : int;
  }

  let durable_writes ?read_back records =
    let name = "durable-writes" in
    (* Oldest first; later writes supersede overlapping extents, and a
       Run_mark starts a fresh world whose writes we cannot read back. *)
    let writes = ref [] in
    List.iter
      (fun r ->
        match r.Trace.ev with
        | Trace.Run_mark _ -> writes := []
        | Trace.Write_committed { file; off; len; digest; _ } ->
            writes :=
              { w_file = file; w_off = off; w_len = len; w_digest = digest }
              :: !writes
        | _ -> ())
      records;
    let writes = List.rev !writes in
    match read_back with
    | None ->
        {
          v_name = name;
          v_ok = true;
          v_detail =
            Printf.sprintf "%d acknowledged writes (no read-back handle)"
              (List.length writes);
        }
    | Some read_back ->
        let overlaps a b =
          a.w_file = b.w_file && a.w_off < b.w_off + b.w_len
          && b.w_off < a.w_off + a.w_len
        in
        let rec surviving = function
          | [] -> []
          | w :: later ->
              (* Conservative: only check writes no later write touches,
                 so a digest comparison over the full extent is exact. *)
              if List.exists (overlaps w) later then surviving later
              else w :: surviving later
        in
        let violations =
          List.filter_map
            (fun w ->
              match read_back ~file:w.w_file ~off:w.w_off ~len:w.w_len with
              | None ->
                  Some
                    (Printf.sprintf "file %d vanished (write at %d+%d lost)"
                       w.w_file w.w_off w.w_len)
              | Some data ->
                  if Bytes.length data = w.w_len && Trace.digest data = w.w_digest
                  then None
                  else
                    Some
                      (Printf.sprintf
                         "file %d bytes %d+%d: read-back digest mismatch"
                         w.w_file w.w_off w.w_len))
            (surviving writes)
        in
        if violations = [] then
          {
            v_name = name;
            v_ok = true;
            v_detail =
              Printf.sprintf "%d acknowledged writes verified"
                (List.length writes);
          }
        else verdict name violations

  (* -- v3 committed durability -------------------------------------- *)

  type unstable_w = {
    u_file : int;
    u_off : int;
    u_len : int;
    u_digest : int;
    u_verf : int;
    mutable u_committed : bool;
  }

  (* Every write-class event in trace order, for the supersession scan. *)
  type wseq =
    | Wu of unstable_w
    | Wc of { c_file : int; c_off : int; c_len : int; c_digest : int }

  let committed_durable ?read_back records =
    let name = "committed-durable" in
    let seq = ref [] in
    (* Newest first while accumulating. *)
    List.iter
      (fun r ->
        match r.Trace.ev with
        | Trace.Run_mark _ -> seq := []
        | Trace.Write_unstable { file; off; len; digest; verf } ->
            seq :=
              Wu
                {
                  u_file = file;
                  u_off = off;
                  u_len = len;
                  u_digest = digest;
                  u_verf = verf;
                  u_committed = false;
                }
              :: !seq
        | Trace.Write_committed { file; off; len; digest; _ } ->
            seq :=
              Wc { c_file = file; c_off = off; c_len = len; c_digest = digest }
              :: !seq
        | Trace.Commit_ok { file; off; count; verf } ->
            (* An acknowledged COMMIT promises durability for every
               earlier unstable write it covers {e under the same
               verifier}: a reboot between write and commit changed the
               verifier, so such writes stay uncovered — the client is
               obliged to rewrite them, and until then their data may
               legally be gone. *)
            List.iter
              (function
                | Wu u
                  when (not u.u_committed)
                       && u.u_file = file && u.u_verf = verf && off <= u.u_off
                       && (count = 0 || off + count >= u.u_off + u.u_len) ->
                    u.u_committed <- true
                | _ -> ())
              !seq
        | _ -> ())
      records;
    let seq = List.rev !seq in
    let total =
      List.length
        (List.filter (function Wu u -> u.u_committed | Wc _ -> false) seq)
    in
    match read_back with
    | None ->
        {
          v_name = name;
          v_ok = true;
          v_detail =
            Printf.sprintf "%d commit-covered writes (no read-back handle)"
              total;
        }
    | Some read_back ->
        let overlaps u ~file ~off ~len =
          u.u_file = file && u.u_off < off + len && off < u.u_off + u.u_len
        in
        (* As in [durable_writes], only extents nothing later superseded
           are digest-comparable — but an honest server's COMMIT flush
           echoes each extent as an identical [Write_committed], which
           must not count as supersession of the write it makes durable. *)
        let rec survivors = function
          | [] -> []
          | Wc _ :: later -> survivors later
          | Wu u :: later ->
              if not u.u_committed then survivors later
              else if
                List.exists
                  (function
                    | Wu v ->
                        overlaps u ~file:v.u_file ~off:v.u_off ~len:v.u_len
                    | Wc c ->
                        overlaps u ~file:c.c_file ~off:c.c_off ~len:c.c_len
                        && not
                             (c.c_file = u.u_file && c.c_off = u.u_off
                              && c.c_len = u.u_len && c.c_digest = u.u_digest))
                  later
              then survivors later
              else u :: survivors later
        in
        let violations =
          List.filter_map
            (fun u ->
              match read_back ~file:u.u_file ~off:u.u_off ~len:u.u_len with
              | None ->
                  Some
                    (Printf.sprintf
                       "file %d vanished (committed write at %d+%d lost)"
                       u.u_file u.u_off u.u_len)
              | Some data ->
                  if
                    Bytes.length data = u.u_len
                    && Trace.digest data = u.u_digest
                  then None
                  else
                    Some
                      (Printf.sprintf
                         "file %d bytes %d+%d: commit acknowledged but \
                          read-back digest mismatches"
                         u.u_file u.u_off u.u_len))
            (survivors seq)
        in
        if violations = [] then
          {
            v_name = name;
            v_ok = true;
            v_detail =
              Printf.sprintf "%d commit-covered writes verified" total;
          }
        else verdict name violations

  (* -- end-to-end data integrity ----------------------------------- *)

  let data_integrity ~expected ~read_back =
    let name = "data-integrity" in
    let violations =
      List.filter_map
        (fun (file, off, data) ->
          let len = Bytes.length data in
          match read_back ~file ~off ~len with
          | None ->
              Some
                (Printf.sprintf "file %d bytes %d+%d unreadable" file off len)
          | Some got ->
              if Bytes.equal got data then None
              else
                Some
                  (Printf.sprintf
                     "file %d bytes %d+%d differ from what the client sent"
                     file off len))
        expected
    in
    if violations = [] then
      {
        v_name = name;
        v_ok = true;
        v_detail =
          Printf.sprintf "%d client extents verified" (List.length expected);
      }
    else verdict name violations

  (* -- hard mount errors ------------------------------------------- *)

  let hard_mount_errors records =
    let violations =
      List.filter_map
        (fun r ->
          match r.Trace.ev with
          | Trace.Wl_error { op; soft = false } ->
              Some
                (Printf.sprintf "hard mount surfaced %s error at t=%.3f" op
                   r.Trace.time)
          | _ -> None)
        records
    in
    verdict "hard-mount-errors" violations

  (* -- duplicate execution of non-idempotent RPCs ------------------ *)

  let no_double_effect records =
    let violations = ref [] in
    let seen : (int32 * int, float) Hashtbl.t = Hashtbl.create 64 in
    let last_crash = ref neg_infinity in
    List.iter
      (fun r ->
        match r.Trace.ev with
        | Trace.Run_mark _ ->
            Hashtbl.reset seen;
            last_crash := neg_infinity
        | Trace.Srv_crash -> last_crash := r.Trace.time
        | Trace.Srv_service { xid; proc; _ } when non_idempotent proc ->
            (match Hashtbl.find_opt seen (xid, proc) with
            | Some prev when prev > !last_crash ->
                (* No crash between the two executions: the duplicate
                   cache should have replayed, not re-run. *)
                violations :=
                  Printf.sprintf
                    "%s xid=%ld executed at t=%.3f and again at t=%.3f"
                    (Trace.proc_name proc) xid prev r.Trace.time
                  :: !violations
            | _ -> ());
            Hashtbl.replace seen (xid, proc) r.Trace.time
        | _ -> ())
      records;
    verdict "no-double-effect" (List.rev !violations)

  (* -- stale reads under live write leases ------------------------- *)

  type wlease = { wl_holder : int; wl_expiry : float }

  let no_stale_lease_reads records =
    let violations = ref [] in
    let wleases : (int, wlease list) Hashtbl.t = Hashtbl.create 16 in
    let last_mtime : (int, float) Hashtbl.t = Hashtbl.create 16 in
    let reset () =
      Hashtbl.reset wleases;
      Hashtbl.reset last_mtime
    in
    List.iter
      (fun r ->
        let now = r.Trace.time in
        match r.Trace.ev with
        | Trace.Run_mark _ -> reset ()
        (* The lease table dies with the server: pre-crash grants no
           longer authorize anything and must not raise violations. *)
        | Trace.Srv_crash -> Hashtbl.reset wleases
        | Trace.Lease_grant { file; mode = "write"; holder; duration } ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt wleases file) in
            Hashtbl.replace wleases file
              ({ wl_holder = holder; wl_expiry = now +. duration } :: cur)
        | Trace.Write_committed { file; mtime; _ } ->
            Hashtbl.replace last_mtime file mtime
        | Trace.Cached_read { file; holder; mtime } -> (
            match Hashtbl.find_opt last_mtime file with
            | Some committed when mtime < committed ->
                let conflicting =
                  Option.value ~default:[] (Hashtbl.find_opt wleases file)
                  |> List.exists (fun wl ->
                         wl.wl_holder <> holder && now < wl.wl_expiry)
                in
                if conflicting then
                  violations :=
                    Printf.sprintf
                      "node %d served file %d from cache (mtime %.3f < %.3f) \
                       under a live conflicting write lease at t=%.3f"
                      holder file mtime committed now
                    :: !violations
            | _ -> ())
        | _ -> ())
      records;
    verdict "no-stale-lease-reads" (List.rev !violations)

  let check_all ?read_back records =
    [
      durable_writes ?read_back records;
      committed_durable ?read_back records;
      hard_mount_errors records;
      no_double_effect records;
      no_stale_lease_reads records;
    ]

  let summary verdicts =
    let failing = List.filter (fun v -> not v.v_ok) verdicts in
    if failing = [] then Printf.sprintf "%d/%d ok" (List.length verdicts) (List.length verdicts)
    else
      "FAIL:" ^ String.concat "," (List.map (fun v -> v.v_name) failing)

  let recovery_time records =
    let worst = ref 0.0 in
    let crash_at = ref None in
    let end_time = ref 0.0 in
    List.iter
      (fun r ->
        end_time := r.Trace.time;
        match r.Trace.ev with
        | Trace.Srv_crash -> (
            match !crash_at with None -> crash_at := Some r.Trace.time | Some _ -> ())
        | Trace.Srv_service _ -> (
            match !crash_at with
            | Some t0 ->
                worst := Float.max !worst (r.Trace.time -. t0);
                crash_at := None
            | None -> ())
        | _ -> ())
      records;
    (match !crash_at with
    | Some t0 -> worst := Float.max !worst (!end_time -. t0)
    | None -> ());
    !worst
end
