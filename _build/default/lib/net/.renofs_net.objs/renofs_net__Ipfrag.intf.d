lib/net/ipfrag.mli: Packet Renofs_engine
