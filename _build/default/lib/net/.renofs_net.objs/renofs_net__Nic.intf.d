lib/net/nic.mli:
