lib/core/nfs_proto.ml: Bytes Int32 List Printf Renofs_xdr
