lib/net/node.mli: Link Nic Packet Renofs_engine Renofs_mbuf
