lib/engine/cpu.mli: Sim
