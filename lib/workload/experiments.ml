module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Stats = Renofs_engine.Stats
module Net = Renofs_net
module Node = Renofs_net.Node
module Nic = Renofs_net.Nic
module Topology = Renofs_net.Topology
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Fs = Renofs_vfs.Fs
module Disk = Renofs_vfs.Disk
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module Client_transport = Renofs_core.Client_transport
module Trace = Renofs_trace.Trace

type scale = Quick | Full

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
}

let print_table fmt t =
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi (fun i cell -> max (List.nth acc i) (String.length cell)) row)
      (List.map String.length t.header)
      t.rows
  in
  let print_row row =
    Format.fprintf fmt "| %s |@."
      (String.concat " | "
         (List.mapi
            (fun i cell -> cell ^ String.make (List.nth widths i - String.length cell) ' ')
            row))
  in
  Format.fprintf fmt "== %s: %s ==@." t.id t.title;
  print_row t.header;
  Format.fprintf fmt "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row t.rows;
  Format.fprintf fmt "@."

let ms v = Printf.sprintf "%.1f" (v *. 1000.0)
let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v

(* ------------------------------------------------------------------ *)
(* World plumbing                                                     *)
(* ------------------------------------------------------------------ *)

type world = {
  sim : Sim.t;
  topo : Topology.t;
  server : Nfs_server.t;
  client_udp : Udp.stack;
  client_tcp : Tcp.stack;
}

(* The sink every world built while [with_trace] is active attaches to.
   Experiments create fresh worlds per cell, so attachment has to happen
   inside the runners; a ref avoids threading an argument through all of
   them. *)
let current_trace : Trace.t option ref = ref None

let with_trace tr f =
  current_trace := Some tr;
  Fun.protect ~finally:(fun () -> current_trace := None) f

(* Attach the active sink to every node, and open a new mark-delimited
   segment: each world has its own sim clock and xid space, so the
   report must not join across worlds. *)
let attach_trace sim topo label =
  match !current_trace with
  | None -> ()
  | Some tr ->
      List.iter (fun n -> Node.set_trace n (Some tr)) topo.Topology.all;
      Trace.mark tr ~time:(Sim.now sim) label

let make_world ?(params = Topology.default_params)
    ?(server_profile = Nfs_server.reno_profile) ?run_label ~topology () =
  let sim = Sim.create () in
  let topo = Topology.by_name topology sim ~params () in
  attach_trace sim topo (Option.value run_label ~default:topology);
  let sudp = Udp.install topo.Topology.server in
  let stcp = Tcp.install topo.Topology.server in
  let server =
    Nfs_server.create topo.Topology.server ~profile:server_profile ~udp:sudp
      ~tcp:stcp ()
  in
  Nfs_server.start server;
  {
    sim;
    topo;
    server;
    client_udp = Udp.install topo.Topology.client;
    client_tcp = Tcp.install topo.Topology.client;
  }

exception Driver_stuck of string

(* Run [body] as a driver process; keep the simulator moving (cross
   traffic never drains the event queue) until the driver finishes. *)
let drive world body =
  let result = ref None in
  Proc.spawn world.sim (fun () -> result := Some (body ()));
  let guard = ref 0 in
  while !result = None do
    incr guard;
    if !guard > 100_000 then raise (Driver_stuck "experiment driver never finished");
    Sim.run ~until:(Sim.now world.sim +. 100.0) world.sim
  done;
  Option.get !result

let mss_for topology = if topology = "lan" then 1460 else 512

let mount_opts_for ~transport ~topology =
  let base =
    match transport with
    | `Udp_fixed -> Nfs_client.reno_mount
    | `Udp_dynamic -> Nfs_client.reno_dynamic_mount
    | `Tcp -> Nfs_client.reno_tcp_mount
  in
  { base with Nfs_client.mss = mss_for topology }

let mount_in world opts =
  Nfs_client.mount ~udp:world.client_udp ~tcp:world.client_tcp
    ~server:(Topology.server_id world.topo)
    ~root:(Nfs_server.root_fhandle world.server)
    opts

let transports = [ ("udp-fixed", `Udp_fixed); ("udp-dyn", `Udp_dynamic); ("tcp", `Tcp) ]

let standard_fileset =
  Fileset.generate ~dirs:20 ~files_per_dir:20 ~file_size:16384 ~long_names:true

(* ------------------------------------------------------------------ *)
(* Nhfsstone sweeps (Graphs 1-5, 8, 9; Tables 1; Graph 6)             *)
(* ------------------------------------------------------------------ *)

let sweep_loads = function Quick -> [ 5.0; 10.0; 20.0; 30.0 ] | Full -> [ 5.0; 10.0; 15.0; 20.0; 25.0; 30.0; 40.0 ]
let sweep_duration = function Quick -> 20.0 | Full -> 120.0

let one_nhfsstone_run ?(server_profile = Nfs_server.reno_profile)
    ?(params = Topology.default_params) ?(warmup = 8.0) ?(children = 4) ?label
    ~topology ~mount_opts ~mix ~rate ~duration ~seed () =
  let world = make_world ~params ~server_profile ?run_label:label ~topology () in
  drive world (fun () ->
      (* Preload and warmup are not part of the measured run: gate the
         sink so the report sees steady state only. *)
      (match !current_trace with Some tr -> Trace.set_enabled tr false | None -> ());
      Fileset.preload_server world.server standard_fileset;
      let m = mount_in world mount_opts in
      if warmup > 0.0 then
        ignore
          (Nhfsstone.run m standard_fileset
             { Nhfsstone.rate; duration = warmup; children; mix; seed = seed + 1 });
      (match !current_trace with Some tr -> Trace.set_enabled tr true | None -> ());
      Nhfsstone.run m standard_fileset
        { Nhfsstone.rate; duration; children; mix; seed })

let transport_sweep ~id ~title ~topology ~mix ~scale =
  let loads = sweep_loads scale and duration = sweep_duration scale in
  let rows =
    List.map
      (fun load ->
        f1 load
        :: List.map
             (fun (name, transport) ->
               let r =
                 one_nhfsstone_run ~label:name ~topology
                   ~mount_opts:(mount_opts_for ~transport ~topology)
                   ~mix ~rate:load ~duration ~seed:42 ()
               in
               ms r.Nhfsstone.mean_op_latency)
             transports)
      loads
  in
  {
    id;
    title;
    header = "load(rpc/s)" :: List.map (fun (n, _) -> n ^ " RTT(ms)") transports;
    rows;
  }

let graph1 ?(scale = Quick) () =
  transport_sweep ~id:"graph1" ~title:"Ave RTT vs load, lookup mix, same LAN"
    ~topology:"lan" ~mix:Nhfsstone.lookup_mix ~scale

let graph2 ?(scale = Quick) () =
  transport_sweep ~id:"graph2" ~title:"Ave RTT vs load, 50/50 read/lookup, same LAN"
    ~topology:"lan" ~mix:Nhfsstone.read_lookup_mix ~scale

let graph3 ?(scale = Quick) () =
  transport_sweep ~id:"graph3"
    ~title:"Ave RTT vs load, lookup mix, token ring + 2 routers" ~topology:"campus"
    ~mix:Nhfsstone.lookup_mix ~scale

let graph4 ?(scale = Quick) () =
  transport_sweep ~id:"graph4"
    ~title:"Ave RTT vs load, read/lookup mix, token ring + 2 routers"
    ~topology:"campus" ~mix:Nhfsstone.read_lookup_mix ~scale

let graph5 ?(scale = Quick) () =
  (* The 56K line saturates near 18 lookup/s; the interesting region is
     the approach to it. *)
  let scale_loads =
    match scale with
    | Quick -> [ 4.0; 10.0; 18.0 ]
    | Full -> [ 4.0; 8.0; 12.0; 14.0; 16.0; 18.0 ]
  in
  let duration = sweep_duration scale in
  let rows =
    List.map
      (fun load ->
        f1 load
        :: List.map
             (fun (name, transport) ->
               let r =
                 one_nhfsstone_run ~label:name ~topology:"wan"
                   ~mount_opts:(mount_opts_for ~transport ~topology:"wan")
                   ~mix:Nhfsstone.lookup_mix ~rate:load ~duration ~seed:42 ()
               in
               ms r.Nhfsstone.mean_op_latency)
             transports)
      scale_loads
  in
  {
    id = "graph5";
    title = "Ave RTT vs load, lookup mix, 56Kbps link + 3 routers";
    header = "load(rpc/s)" :: List.map (fun (n, _) -> n ^ " RTT(ms)") transports;
    rows;
  }

let table1 ?(scale = Quick) () =
  (* The fixed-RTO pathology on the 56K line builds up over repeated
     backoff cycles, so even Quick scale needs a couple of minutes of
     virtual time per cell. *)
  let duration = match scale with Quick -> 120.0 | Full -> 180.0 in
  let configs =
    (* The 56K row runs enough closed-loop children to saturate the
       line, as offered load did in the paper. *)
    [
      ("same LAN", "lan", 24.0, 4);
      ("token ring", "campus", 20.0, 4);
      ("56Kbps", "wan", 8.0, 8);
    ]
  in
  let rows =
    List.map
      (fun (label, topology, rate, children) ->
        label
        :: List.map
             (fun (name, transport) ->
               let r =
                 one_nhfsstone_run ~label:name ~topology ~children
                   ~mount_opts:(mount_opts_for ~transport ~topology)
                   ~mix:Nhfsstone.read_lookup_mix ~rate ~duration ~seed:97 ()
               in
               f2 r.Nhfsstone.read_rate)
             transports)
      configs
  in
  {
    id = "table1";
    title = "Achieved read rate (reads/sec) by transport and interconnect";
    header = "interconnect" :: List.map (fun (n, _) -> n) transports;
    rows;
  }

let graph6 ?(scale = Quick) () =
  let loads = sweep_loads scale and duration = sweep_duration scale in
  let cpu_per_rpc transport rate =
    let world = make_world ~topology:"lan" () in
    drive world (fun () ->
        Fileset.preload_server world.server standard_fileset;
        let m = mount_in world (mount_opts_for ~transport ~topology:"lan") in
        let cpu = Node.cpu world.topo.Topology.server in
        let busy0 = Cpu.busy_time cpu and served0 = Nfs_server.rpcs_served world.server in
        let _ =
          Nhfsstone.run m standard_fileset
            {
              Nhfsstone.rate;
              duration;
              children = 4;
              mix = Nhfsstone.read_lookup_mix;
              seed = 13;
            }
        in
        let served = Nfs_server.rpcs_served world.server - served0 in
        if served = 0 then 0.0
        else (Cpu.busy_time cpu -. busy0) /. float_of_int served)
  in
  let rows =
    List.map
      (fun load ->
        [
          f1 load;
          ms (cpu_per_rpc `Udp_fixed load);
          ms (cpu_per_rpc `Tcp load);
        ])
      loads
  in
  {
    id = "graph6";
    title = "Server CPU overhead per RPC, UDP vs TCP, read mix";
    header = [ "load(rpc/s)"; "udp CPU(ms/rpc)"; "tcp CPU(ms/rpc)" ];
    rows;
  }

let graph7 ?(scale = Quick) () =
  let duration = match scale with Quick -> 60.0 | Full -> 300.0 in
  let world = make_world ~topology:"campus" () in
  let rtts, rtos =
    drive world (fun () ->
        Fileset.preload_server world.server standard_fileset;
        let m = mount_in world (mount_opts_for ~transport:`Udp_dynamic ~topology:"campus") in
        Client_transport.enable_read_trace (Nfs_client.transport m);
        let _ =
          Nhfsstone.run m standard_fileset
            {
              Nhfsstone.rate = 12.0;
              duration;
              children = 4;
              mix = Nhfsstone.read_lookup_mix;
              seed = 7;
            }
        in
        let x = Nfs_client.transport m in
        (Client_transport.read_rtt_trace x, Client_transport.read_rto_trace x))
  in
  let keep_every n l = List.filteri (fun i _ -> i mod n = 0) l in
  let stride = max 1 (List.length rtts / 60) in
  let rows =
    List.map2
      (fun (t, rtt) (_, rto) -> [ f2 t; ms rtt; ms rto ])
      (keep_every stride rtts) (keep_every stride rtos)
  in
  {
    id = "graph7";
    title = "Trace of read RPC RTT and dynamic RTO = A+4D";
    header = [ "time(s)"; "rtt(ms)"; "rto(ms)" ];
    rows;
  }

let server_comparison ~id ~title ~mix ~scale =
  let loads = sweep_loads scale and duration = sweep_duration scale in
  let profiles =
    [
      ("reno", Nfs_server.reno_profile);
      ( "reno-nonc",
        {
          Nfs_server.reno_profile with
          Nfs_server.fs_config =
            { Fs.reno_config with Fs.name_cache = false };
        } );
      ("ultrix", Nfs_server.reference_port_profile);
    ]
  in
  let rows =
    List.map
      (fun load ->
        f1 load
        :: List.map
             (fun (name, profile) ->
               let r =
                 one_nhfsstone_run ~label:name ~server_profile:profile
                   ~topology:"lan"
                   ~mount_opts:(mount_opts_for ~transport:`Udp_fixed ~topology:"lan")
                   ~mix ~rate:load ~duration ~seed:23 ()
               in
               ms r.Nhfsstone.mean_op_latency)
             profiles)
      loads
  in
  {
    id;
    title;
    header = "load(rpc/s)" :: List.map (fun (n, _) -> n ^ " RTT(ms)") profiles;
    rows;
  }

let graph8 ?(scale = Quick) () =
  server_comparison ~id:"graph8"
    ~title:"Lookup mix: Reno vs Reno-without-server-name-cache vs reference port"
    ~mix:Nhfsstone.lookup_mix ~scale

let graph9 ?(scale = Quick) () =
  server_comparison ~id:"graph9"
    ~title:"Read/lookup mix: Reno vs Reno-without-server-name-cache vs reference port"
    ~mix:Nhfsstone.read_lookup_mix ~scale

(* ------------------------------------------------------------------ *)
(* Modified Andrew Benchmark (Tables 2-4)                             *)
(* ------------------------------------------------------------------ *)

let andrew_config = function
  | Quick ->
      {
        Andrew.default_config with
        Andrew.source_files = 20;
        header_files = 8;
        compile_instructions_per_byte = 400.0;
      }
  | Full -> Andrew.default_config

let run_andrew ~scale ~client_opts ~server_profile ~client_mips ~client_nic () =
  let params =
    { Topology.default_params with Topology.client_mips; client_nic }
  in
  let world = make_world ~params ~server_profile ~topology:"lan" () in
  drive world (fun () ->
      let m = mount_in world client_opts in
      Andrew.run m ~config:(andrew_config scale) ())

let microvax_rows scale =
  [
    ("Reno", Nfs_client.reno_mount, Nfs_server.reno_profile);
    ("Reno-TCP", { Nfs_client.reno_tcp_mount with Nfs_client.mss = 1460 }, Nfs_server.reno_profile);
    ("Reno-nopush", Nfs_client.reno_nopush_mount, Nfs_server.reno_profile);
    ("Ultrix2.2", Nfs_client.ultrix_mount, Nfs_server.reference_port_profile);
  ]
  |> List.map (fun (name, opts, profile) ->
         ( name,
           run_andrew ~scale ~client_opts:opts ~server_profile:profile
             ~client_mips:0.9 ~client_nic:Nic.deqna_tuned () ))

let table2 ?(scale = Quick) () =
  let rows =
    List.map
      (fun (name, (r : Andrew.result)) ->
        [ name; f1 r.Andrew.time_i_iv; f1 r.Andrew.time_v ])
      (microvax_rows scale)
  in
  {
    id = "table2";
    title = "Modified Andrew Benchmark, MicroVAXII client (seconds)";
    header = [ "OS/Phase"; "I-IV"; "V" ];
    rows;
  }

let table3 ?(scale = Quick) () =
  let runs =
    [
      ("Reno", Nfs_client.reno_mount, Nfs_server.reno_profile);
      ("Reno-noconsist", Nfs_client.noconsist_mount, Nfs_server.reno_profile);
      ("Ultrix2.2", Nfs_client.ultrix_mount, Nfs_server.reference_port_profile);
    ]
    |> List.map (fun (name, opts, profile) ->
           ( name,
             run_andrew ~scale ~client_opts:opts ~server_profile:profile
               ~client_mips:0.9 ~client_nic:Nic.deqna_tuned () ))
  in
  let interesting = [ "getattr"; "setattr"; "read"; "write"; "lookup"; "readdir" ] in
  let count (r : Andrew.result) name =
    try List.assoc name r.Andrew.rpc_counts with Not_found -> 0
  in
  let other (r : Andrew.result) =
    List.fold_left
      (fun acc (n, c) -> if List.mem n interesting then acc else acc + c)
      0 r.Andrew.rpc_counts
  in
  let rows =
    List.map
      (fun proc ->
        String.capitalize_ascii proc
        :: List.map (fun (_, r) -> string_of_int (count r proc)) runs)
      interesting
    @ [
        "Other" :: List.map (fun (_, r) -> string_of_int (other r)) runs;
        "Total" :: List.map (fun (_, r) -> string_of_int r.Andrew.total_rpcs) runs;
      ]
  in
  {
    id = "table3";
    title = "Modified Andrew Benchmark RPC counts, MicroVAXII client";
    header = "RPC" :: List.map fst runs;
    rows;
  }

let table4 ?(scale = Quick) () =
  let rows =
    [
      ("Reno", Nfs_client.reno_mount, Nfs_server.reno_profile);
      ("Ultrix2.2", Nfs_client.ultrix_mount, Nfs_server.reference_port_profile);
    ]
    |> List.map (fun (name, opts, profile) ->
           let r =
             run_andrew ~scale ~client_opts:opts ~server_profile:profile
               ~client_mips:14.0 ~client_nic:Nic.fast_station ()
           in
           [ name; f1 r.Andrew.time_i_iv; f1 r.Andrew.time_v ])
  in
  {
    id = "table4";
    title = "Modified Andrew Benchmark, DS3100 client (seconds)";
    header = [ "OS/Phase"; "I-IV"; "V" ];
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Create-Delete (Table 5)                                            *)
(* ------------------------------------------------------------------ *)

let table5 ?(scale = Quick) () =
  let iterations = match scale with Quick -> 5 | Full -> 20 in
  let sizes = [ ("No data", 0); ("10Kbytes", 10240); ("100Kbytes", 102400) ] in
  let local_cell bytes =
    let sim = Sim.create () in
    let cpu = Cpu.create sim ~mips:0.9 in
    let disk = Disk.create sim () in
    let fs = Fs.create sim cpu disk Fs.local_config in
    let result = ref None in
    Proc.spawn sim (fun () ->
        result :=
          Some
            (Create_delete.run_local sim cpu fs
               { Create_delete.data_bytes = bytes; iterations }));
    Sim.run sim;
    Option.get !result
  in
  let nfs_cell opts bytes =
    let world = make_world ~topology:"lan" () in
    drive world (fun () ->
        let m = mount_in world opts in
        Create_delete.run_nfs m { Create_delete.data_bytes = bytes; iterations })
  in
  let configs =
    [
      ("Local", `Local);
      ("write thru", `Nfs { Nfs_client.reno_mount with Nfs_client.write_policy = Nfs_client.Write_through });
      ("async,4biod", `Nfs { Nfs_client.reno_mount with Nfs_client.write_policy = Nfs_client.Async; num_biods = 4 });
      ("async,16biod", `Nfs { Nfs_client.reno_mount with Nfs_client.write_policy = Nfs_client.Async; num_biods = 16 });
      ("delay wrt.", `Nfs Nfs_client.reno_mount);
      ("no consist", `Nfs Nfs_client.noconsist_mount);
    ]
  in
  let rows =
    List.map
      (fun (label, kind) ->
        label
        :: List.map
             (fun (_, bytes) ->
               match kind with
               | `Local -> f1 (local_cell bytes)
               | `Nfs opts -> f1 (nfs_cell opts bytes))
             sizes)
      configs
  in
  {
    id = "table5";
    title = "Create-Delete benchmark (msec per iteration), MicroVAXII";
    header = "Config" :: List.map fst sizes;
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Section 3: NIC tuning                                              *)
(* ------------------------------------------------------------------ *)

let section3 ?(scale = Quick) () =
  let duration = sweep_duration scale *. 2.0 in
  let run nic =
    let params = { Topology.default_params with Topology.server_nic = nic } in
    let world = make_world ~params ~topology:"lan" () in
    drive world (fun () ->
        Fileset.preload_server world.server standard_fileset;
        let m = mount_in world (mount_opts_for ~transport:`Udp_fixed ~topology:"lan") in
        let cpu = Node.cpu world.topo.Topology.server in
        let ctr = Node.copy_counters world.topo.Topology.server in
        let busy0 = Cpu.busy_time cpu
        and served0 = Nfs_server.rpcs_served world.server
        and copied0 = ctr.Renofs_mbuf.Mbuf.Counters.bytes_copied in
        let _ =
          Nhfsstone.run m standard_fileset
            {
              Nhfsstone.rate = 20.0;
              duration;
              children = 4;
              mix = Nhfsstone.read_lookup_mix;
              seed = 5;
            }
        in
        let served = Nfs_server.rpcs_served world.server - served0 in
        let busy = Cpu.busy_time cpu -. busy0 in
        let copied = ctr.Renofs_mbuf.Mbuf.Counters.bytes_copied - copied0 in
        ( (if served = 0 then 0.0 else busy /. float_of_int served),
          if served = 0 then 0 else copied / served ))
  in
  let stock_cpu, stock_copy = run Nic.deqna_stock in
  let tuned_cpu, tuned_copy = run Nic.deqna_tuned in
  let reduction =
    if stock_cpu > 0.0 then (stock_cpu -. tuned_cpu) /. stock_cpu *. 100.0 else 0.0
  in
  {
    id = "section3";
    title = "Server CPU with stock vs tuned network interface handling";
    header = [ "driver"; "CPU(ms/rpc)"; "bytes copied/rpc" ];
    rows =
      [
        [ "stock (copy + tx intr)"; ms stock_cpu; string_of_int stock_copy ];
        [ "tuned (map, no tx intr)"; ms tuned_cpu; string_of_int tuned_copy ];
        [ "reduction"; Printf.sprintf "%.0f%%" reduction; "-" ];
      ];
  }

(* ------------------------------------------------------------------ *)
(* Extension ablation: the lease consistency protocol                 *)
(* ------------------------------------------------------------------ *)

let leases ?(scale = Quick) () =
  (* The paper's conclusion — "a cache consistency protocol would reduce
     the number of write RPCs by at least half" — checked against the
     NQNFS-style lease extension: MAB RPC economy plus Create-Delete
     latency, with noconsist as the unsafe optimistic bound. *)
  let cfg = andrew_config scale in
  let iterations = match scale with Quick -> 5 | Full -> 15 in
  let row (name, opts) =
    let world = make_world ~topology:"lan" () in
    let mab =
      drive world (fun () ->
          let m = mount_in world opts in
          Andrew.run m ~config:cfg ())
    in
    let cd =
      let world = make_world ~topology:"lan" () in
      drive world (fun () ->
          let m = mount_in world opts in
          Create_delete.run_nfs m { Create_delete.data_bytes = 102400; iterations })
    in
    let c n = try List.assoc n mab.Andrew.rpc_counts with Not_found -> 0 in
    [
      name;
      string_of_int (c "write");
      string_of_int (c "read");
      string_of_int (c "getattr" + c "getlease");
      f1 cd;
    ]
  in
  {
    id = "leases";
    title = "Lease consistency ablation: MAB RPCs and Create-Delete 100K";
    header = [ "client"; "MAB writes"; "MAB reads"; "MAB getattr+lease"; "CD-100K (ms)" ];
    rows =
      List.map row
        [
          ("Reno (push-on-close)", Nfs_client.reno_mount);
          ("Leases (consistent)", Nfs_client.lease_mount);
          ("noconsist (unsafe bound)", Nfs_client.noconsist_mount);
        ];
  }

(* ------------------------------------------------------------------ *)
(* Extension: server characterization under many clients [Keith90]    *)
(* ------------------------------------------------------------------ *)

let scaling ?(scale = Quick) () =
  let duration = match scale with Quick -> 25.0 | Full -> 120.0 in
  let per_client_rate = 12.0 in
  let row n =
    let sim = Sim.create () in
    let topo, clients = Topology.multi_client sim ~clients:n () in
    attach_trace sim topo (Printf.sprintf "scaling-%d" n);
    let sudp = Udp.install topo.Topology.server in
    let stcp = Tcp.install topo.Topology.server in
    let server =
      Nfs_server.create topo.Topology.server ~profile:Nfs_server.reno_profile
        ~udp:sudp ~tcp:stcp ()
    in
    Nfs_server.start server;
    let finished = ref 0 in
    let achieved = ref 0.0 and latency = ref 0.0 in
    let ready = Proc.Ivar.create sim in
    let iostat = ref None in
    Proc.spawn sim (fun () ->
        Fileset.preload_server server standard_fileset;
        (* Measure server CPU only over the loaded phase. *)
        iostat := Some (Renofs_engine.Iostat.start sim (Node.cpu topo.Topology.server) ());
        Proc.Ivar.fill ready ());
    List.iteri
      (fun i client ->
        let cudp = Udp.install client in
        let ctcp = Tcp.install client in
        Proc.spawn sim (fun () ->
            Proc.Ivar.read ready;
            let m =
              Nfs_client.mount ~udp:cudp ~tcp:ctcp
                ~server:(Topology.server_id topo)
                ~root:(Nfs_server.root_fhandle server)
                Nfs_client.reno_mount
            in
            let r =
              Nhfsstone.run m standard_fileset
                {
                  Nhfsstone.rate = per_client_rate;
                  duration;
                  children = 3;
                  mix = Nhfsstone.read_lookup_mix;
                  seed = 31 + i;
                }
            in
            achieved := !achieved +. r.Nhfsstone.achieved;
            latency := !latency +. r.Nhfsstone.mean_op_latency;
            incr finished))
      clients;
    let guard = ref 0 in
    while !finished < n do
      incr guard;
      if !guard > 100_000 then raise (Driver_stuck "scaling row");
      Sim.run ~until:(Sim.now sim +. 50.0) sim
    done;
    let util =
      match !iostat with
      | Some io ->
          Renofs_engine.Iostat.stop io;
          Renofs_engine.Iostat.mean_utilization io
      | None -> 0.0
    in
    [
      string_of_int n;
      f1 (float_of_int n *. per_client_rate);
      f1 !achieved;
      ms (!latency /. float_of_int n);
      Printf.sprintf "%.0f%%" (util *. 100.0);
    ]
  in
  let counts = match scale with Quick -> [ 1; 2; 4 ] | Full -> [ 1; 2; 4; 6; 8 ] in
  {
    id = "scaling";
    title = "Server characterization: aggregate throughput vs client count";
    header = [ "clients"; "offered (op/s)"; "achieved (op/s)"; "mean latency (ms)"; "server CPU" ];
    rows = List.map row counts;
  }

let all =
  [
    ("graph1", graph1);
    ("graph2", graph2);
    ("graph3", graph3);
    ("graph4", graph4);
    ("graph5", graph5);
    ("graph6", graph6);
    ("graph7", graph7);
    ("graph8", graph8);
    ("graph9", graph9);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("section3", section3);
    ("leases", leases);
    ("scaling", scaling);
  ]
