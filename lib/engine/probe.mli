(** Self-profiling hooks for the engine.

    A probe is a record of closures that a profiler (lib/profile)
    installs on a {!Sim.t} so the engine and the layers above it can
    attribute wall-clock time to the subsystem actually executing —
    without the engine depending on the profiler.  Every instrumented
    site follows the observer discipline used by trace and metrics: one
    [match] on an [option], and nothing else, when detached.

    Attribution is a slot stack.  Slot 0 ([harness]) is the base: time
    not claimed by any scope — the workload driver, world construction,
    measurement code.  {!t.enter} pushes a slot and returns a depth
    token; {!t.leave} restores that depth.  Restoring is a truncation,
    not a pop, which makes the scheme safe around effects-based fibers:
    a fiber segment that enters a scope and then suspends leaves its
    frame on the stack, and the enclosing event's {!t.fire_leave}
    truncates back to the event boundary, so time stays conserved and
    the stack can never grow without bound.  A stale [leave] token from
    a resumed continuation is at worst a no-op. *)

(** {1 Subsystem slots} *)

val harness : int  (** 0 — driver, world build, measurement (the base) *)

val scheduler : int  (** event-queue bookkeeping inside [Sim.run] *)

val cpu : int  (** simulated-CPU completion dispatch *)

val link : int  (** link transmit/propagation events *)

val transport : int  (** datagram dispatch into protocol handlers *)

val server : int  (** NFS server request service *)

val vfs : int  (** file-system operations under the server *)

val observer : int  (** trace recording and metrics sampling overhead *)

val n_slots : int

val slot_name : int -> string
(** Stable lowercase names ("harness", "scheduler", ...); out-of-range
    slots render as ["slot<i>"]. *)

(** {1 The hook record} *)

type t = {
  enter : int -> int;
      (** [enter slot] charges elapsed time to the current top, pushes
          [slot], and returns the previous depth as a restore token. *)
  leave : int -> unit;
      (** [leave token] charges elapsed time to the current top and
          truncates the stack back to [token] depth.  A token at or
          above the current depth is a no-op. *)
  current : unit -> int;  (** the slot on top of the stack *)
  fire_enter : int -> int;
      (** Event-fire begin: like [enter tag], and additionally counts
          the fire and starts the per-event duration clock. *)
  fire_leave : int -> unit;
      (** Event-fire end: records the event duration in the tag's
          histogram and truncates to the token depth. *)
}

val scoped : t option -> int -> (unit -> 'a) -> 'a
(** [scoped probe slot f] runs [f] inside [slot] when a probe is
    attached (exception-safe), and is just [f ()] when detached.  For
    cold and warm call sites; the hottest paths hand-inline the match
    to avoid the closure. *)
