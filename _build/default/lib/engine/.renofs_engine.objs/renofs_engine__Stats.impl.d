lib/engine/stats.ml: Array Hashtbl List String
