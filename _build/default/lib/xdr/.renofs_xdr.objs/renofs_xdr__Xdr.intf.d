lib/xdr/xdr.mli: Renofs_mbuf
