(** An in-memory Unix filesystem with kernel-shaped cost behaviour.

    Data is real (reads return what writes stored), while timing flows
    through the {!Bcache}, {!Namecache} and {!Disk} models: directory
    scans cost CPU per entry, block misses cost disk I/Os, and
    synchronous metadata updates cost the 1-3 disk writes per operation
    that make NFS server writes expensive.  The same filesystem serves as
    the NFS server's backing store and as the "Local" baseline in the
    Create-Delete benchmark (Table 5). *)

type kind = Reg | Dir | Lnk

type attrs = {
  kind : kind;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  ino : int;
  atime : float;
  mtime : float;
  ctime : float;
}

type err =
  | Enoent
  | Eexist
  | Enotdir
  | Eisdir
  | Enotempty
  | Estale
  | Einval
  | Efbig

exception Err of err

type config = {
  bcache_blocks : int;
  bcache_search : Bcache.search_mode;
  name_cache : bool;
  block_size : int;
  sync_data : bool;
      (** push data blocks to disk before returning, as a stateless NFS
          server must *)
  sync_meta : bool;
      (** push inode/directory updates synchronously (both NFS servers
          and local FFS do) *)
}

val reno_config : config
(** Vnode-chained buffers, name cache on, 8K blocks, 256-buffer cache,
    synchronous writes. *)

val reference_port_config : config
(** The Sun-reference-port-shaped server: global buffer search, no server
    name cache; same cache size (the paper configured identical caches
    for the comparison). *)

val local_config : config
(** {!reno_config} with delayed data writes but synchronous metadata —
    local FFS behaviour, the "Local" baseline of Table 5. *)

type t
type vnode

val create :
  Renofs_engine.Sim.t ->
  Renofs_engine.Cpu.t ->
  Disk.t ->
  config ->
  t

val root : t -> vnode
val ino : vnode -> int

val vnode_by_ino : t -> int -> vnode
(** File-handle resolution; raises [Err Estale] for dead inodes. *)

val getattr : t -> vnode -> attrs

val setattr :
  t ->
  vnode ->
  ?mode:int ->
  ?uid:int ->
  ?gid:int ->
  ?size:int ->
  ?mtime:float ->
  unit ->
  attrs

val lookup : t -> vnode -> string -> vnode
(** One pathname component.  Consults the name cache (if configured),
    then scans the directory through the buffer cache. *)

val read : t -> vnode -> off:int -> len:int -> bytes
(** Short reads at EOF; raises [Err Eisdir] on directories. *)

val write : t -> vnode -> off:int -> bytes -> unit
val create_file :
  t -> dir:vnode -> string -> mode:int -> ?uid:int -> ?gid:int -> unit -> vnode

val mkdir :
  t -> dir:vnode -> string -> mode:int -> ?uid:int -> ?gid:int -> unit -> vnode

val symlink :
  t -> dir:vnode -> string -> target:string -> ?uid:int -> ?gid:int -> unit -> unit
val readlink : t -> vnode -> string
val remove : t -> dir:vnode -> string -> unit
val rmdir : t -> dir:vnode -> string -> unit
val rename : t -> src_dir:vnode -> string -> dst_dir:vnode -> string -> unit
val link : t -> src:vnode -> dir:vnode -> string -> unit

val readdir : t -> vnode -> cookie:int -> count:int -> (string * int) list * bool
(** Entries from [cookie], at most [count]; [true] when the listing is
    complete.  The next cookie is [cookie + length returned]. *)

type fsstat = { total_blocks : int; free_blocks : int; block_size : int }

val statfs : t -> fsstat

val namecache : t -> Namecache.t option
val bcache : t -> Bcache.t
val disk : t -> Disk.t

val fsck : t -> string list
(** Invariant check, fsck-style: every directory entry points at a live
    inode; every live inode is reachable from the root (or still has
    links); link counts match reference counts; directory parents are
    consistent.  Returns human-readable violations (empty = clean). *)
