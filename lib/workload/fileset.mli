(** Test-subtree construction and preloading.

    The paper's appendix notes two Nhfsstone caveats this module
    implements: file names can be made long enough (> 31 characters) to
    defeat both client and server name caches, and the subtree must be
    preloaded with non-empty files before each run so reads do not hit
    empty files and bias the results. *)

type t = {
  dirs : string list;  (** directory paths, relative to the root *)
  files : string list;  (** file paths *)
  file_size : int;
}

val generate :
  dirs:int -> files_per_dir:int -> file_size:int -> long_names:bool -> t
(** Deterministic layout: [dirs] directories of [files_per_dir] files.
    With [long_names], file names exceed the 31-character name-cache
    limit (the Nhfsstone trick). *)

val preload_server : Renofs_core.Nfs_server.t -> t -> unit
(** Create the tree directly in the server's backing store, bypassing
    the wire (and temporarily bypassing the per-block disk costs would
    be wrong — this runs through the normal Fs path, so call it before
    starting measurement).  Must run inside a process. *)

val preload_under : Renofs_core.Nfs_server.t -> path:string -> t -> unit
(** {!preload_server}, but rooted at [path] (["/home3"]-style export
    directory; created if absent) instead of the filesystem root — how
    fleet shards each get their own subtree.  Must run inside a
    process. *)

val content : path:string -> size:int -> bytes
(** The deterministic content every preloaded file holds; lets tests
    verify reads end-to-end. *)
