open Renofs_xdr
module Mbuf = Renofs_mbuf.Mbuf

let roundtrip encode decode =
  let enc = Xdr.Enc.create () in
  encode enc;
  decode (Xdr.Dec.create (Xdr.Enc.chain enc))

let test_u32 () =
  List.iter
    (fun v ->
      let got = roundtrip (fun e -> Xdr.Enc.u32 e v) Xdr.Dec.u32 in
      Alcotest.(check int32) "u32" v got)
    [ 0l; 1l; -1l; Int32.max_int; Int32.min_int; 0x12345678l ]

let test_int () =
  List.iter
    (fun v ->
      let got = roundtrip (fun e -> Xdr.Enc.int e v) Xdr.Dec.int in
      Alcotest.(check int) "int" v got)
    [ 0; 1; 8192; 0xFFFFFFFF ]

let test_int_range_check () =
  let enc = Xdr.Enc.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Xdr.Enc.int: out of range")
    (fun () -> Xdr.Enc.int enc (-1))

let test_bool () =
  Alcotest.(check bool) "true" true (roundtrip (fun e -> Xdr.Enc.bool e true) Xdr.Dec.bool);
  Alcotest.(check bool) "false" false
    (roundtrip (fun e -> Xdr.Enc.bool e false) Xdr.Dec.bool)

let test_bool_strict () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.u32 enc 2l;
  let dec = Xdr.Dec.create (Xdr.Enc.chain enc) in
  Alcotest.check_raises "bad bool" (Xdr.Decode_error "bad bool at byte 4 of 4")
    (fun () -> ignore (Xdr.Dec.bool dec))

let test_u64 () =
  List.iter
    (fun v ->
      let got = roundtrip (fun e -> Xdr.Enc.u64 e v) Xdr.Dec.u64 in
      Alcotest.(check int64) "u64" v got)
    [ 0L; 1L; -1L; Int64.max_int; 0x123456789ABCDEF0L ]

let test_string_padding () =
  List.iter
    (fun s ->
      let enc = Xdr.Enc.create () in
      Xdr.Enc.string enc s;
      let len = Mbuf.length (Xdr.Enc.chain enc) in
      Alcotest.(check int) "padded to 4" 0 (len mod 4);
      let got = Xdr.Dec.string (Xdr.Dec.create (Xdr.Enc.chain enc)) ~max:100 in
      Alcotest.(check string) "roundtrip" s got)
    [ ""; "a"; "ab"; "abc"; "abcd"; "abcde" ]

let test_opaque_max () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.opaque enc (Bytes.make 10 'z');
  let dec = Xdr.Dec.create (Xdr.Enc.chain enc) in
  Alcotest.check_raises "too long"
    (Xdr.Decode_error "opaque too long (10 > 5) at byte 4 of 16") (fun () ->
      ignore (Xdr.Dec.opaque dec ~max:5))

let test_opaque_fixed () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.opaque_fixed enc (Bytes.of_string "xyz");
  Alcotest.(check int) "padded, no length word" 4 (Mbuf.length (Xdr.Enc.chain enc));
  let got = Xdr.Dec.opaque_fixed (Xdr.Dec.create (Xdr.Enc.chain enc)) 3 in
  Alcotest.(check string) "content" "xyz" (Bytes.to_string got)

let test_truncated () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.u32 enc 5l;
  let dec = Xdr.Dec.create (Xdr.Enc.chain enc) in
  ignore (Xdr.Dec.u32 dec);
  Alcotest.check_raises "truncated"
    (Xdr.Decode_error "truncated u32 at byte 4 of 4") (fun () ->
      ignore (Xdr.Dec.u32 dec))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Every strict prefix of a representative stream must fail with a
   located [Decode_error] — never [Invalid_argument], [Failure] or a
   bare cursor [Underrun] — because a truncated packet is exactly what
   the wire-mangling fault layer produces. *)
let test_truncation_table () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.int enc 3;
  Xdr.Enc.string enc "file.txt";
  Xdr.Enc.bool enc true;
  Xdr.Enc.u64 enc 123456789L;
  Xdr.Enc.opaque enc (Bytes.make 10 'z');
  let whole = Mbuf.to_bytes (Xdr.Enc.chain enc) in
  for len = 0 to Bytes.length whole - 1 do
    let dec = Xdr.Dec.create (Mbuf.of_bytes (Bytes.sub whole 0 len)) in
    match
      ignore (Xdr.Dec.int dec);
      ignore (Xdr.Dec.string dec ~max:255);
      ignore (Xdr.Dec.bool dec);
      ignore (Xdr.Dec.u64 dec);
      ignore (Xdr.Dec.opaque dec ~max:64)
    with
    | () -> Alcotest.failf "prefix of %d bytes decoded completely" len
    | exception Xdr.Decode_error msg ->
        if not (contains ~sub:" at byte " msg) then
          Alcotest.failf "prefix %d: error %S lacks a location" len msg
    | exception e ->
        Alcotest.failf "prefix %d: raised %s, not Decode_error" len
          (Printexc.to_string e)
  done

let test_append_chain_zero_copy () =
  let ctr = Mbuf.Counters.create () in
  let data = Mbuf.of_bytes (Bytes.make 8192 'd') in
  let enc = Xdr.Enc.create ~ctr () in
  Xdr.Enc.int enc 8192;
  let before = ctr.Mbuf.Counters.bytes_copied in
  Xdr.Enc.append_chain enc data;
  Alcotest.(check int) "no copy for spliced data" before ctr.Mbuf.Counters.bytes_copied;
  Alcotest.(check int) "total length" (4 + 8192) (Mbuf.length (Xdr.Enc.chain enc))

let test_mixed_sequence () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.int enc 3;
  Xdr.Enc.string enc "file.txt";
  Xdr.Enc.bool enc true;
  Xdr.Enc.u64 enc 123456789L;
  let dec = Xdr.Dec.create (Xdr.Enc.chain enc) in
  Alcotest.(check int) "int" 3 (Xdr.Dec.int dec);
  Alcotest.(check string) "string" "file.txt" (Xdr.Dec.string dec ~max:255);
  Alcotest.(check bool) "bool" true (Xdr.Dec.bool dec);
  Alcotest.(check int64) "u64" 123456789L (Xdr.Dec.u64 dec);
  Alcotest.(check int) "fully consumed" 0 (Xdr.Dec.remaining dec)

(* Property tests *)

type item = I of int | S of string | B of bool | Q of int64

let item_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> I (abs n land 0xFFFFFFFF)) int);
        (3, map (fun s -> S s) (string_size (int_bound 64)));
        (1, map (fun b -> B b) bool);
        (2, map (fun q -> Q q) int64);
      ])

let arb_items =
  QCheck.make
    ~print:(fun items -> Printf.sprintf "<%d items>" (List.length items))
    QCheck.Gen.(list_size (int_bound 50) item_gen)

let prop_sequence_roundtrip =
  QCheck.Test.make ~name:"mixed sequence roundtrip" ~count:200 arb_items (fun items ->
      let enc = Xdr.Enc.create () in
      List.iter
        (function
          | I n -> Xdr.Enc.int enc n
          | S s -> Xdr.Enc.string enc s
          | B b -> Xdr.Enc.bool enc b
          | Q q -> Xdr.Enc.u64 enc q)
        items;
      let dec = Xdr.Dec.create (Xdr.Enc.chain enc) in
      List.for_all
        (function
          | I n -> Xdr.Dec.int dec = n
          | S s -> String.equal (Xdr.Dec.string dec ~max:64) s
          | B b -> Xdr.Dec.bool dec = b
          | Q q -> Int64.equal (Xdr.Dec.u64 dec) q)
        items
      && Xdr.Dec.remaining dec = 0)

let prop_alignment =
  QCheck.Test.make ~name:"encoded length is always 4-aligned" ~count:200 arb_items
    (fun items ->
      let enc = Xdr.Enc.create () in
      List.iter
        (function
          | I n -> Xdr.Enc.int enc n
          | S s -> Xdr.Enc.string enc s
          | B b -> Xdr.Enc.bool enc b
          | Q q -> Xdr.Enc.u64 enc q)
        items;
      Mbuf.length (Xdr.Enc.chain enc) mod 4 = 0)

let () =
  Alcotest.run "xdr"
    [
      ( "scalars",
        [
          Alcotest.test_case "u32" `Quick test_u32;
          Alcotest.test_case "int" `Quick test_int;
          Alcotest.test_case "int range" `Quick test_int_range_check;
          Alcotest.test_case "bool" `Quick test_bool;
          Alcotest.test_case "bool strict" `Quick test_bool_strict;
          Alcotest.test_case "u64" `Quick test_u64;
        ] );
      ( "opaque",
        [
          Alcotest.test_case "string padding" `Quick test_string_padding;
          Alcotest.test_case "opaque max" `Quick test_opaque_max;
          Alcotest.test_case "opaque fixed" `Quick test_opaque_fixed;
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "truncation table" `Quick test_truncation_table;
          Alcotest.test_case "zero-copy splice" `Quick test_append_chain_zero_copy;
          Alcotest.test_case "mixed sequence" `Quick test_mixed_sequence;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_sequence_roundtrip; prop_alignment ] );
    ]
