(** Sharded multi-server NFS fleets.

    The scaling unit is the mount point: a fleet owns a set of export
    trees (["/home0"], ["/home1"], ...) spread across N servers by a
    {!Shard_map}, and clients mount each shard from whichever server
    owns it through the ordinary mount protocol ({!Mountd} + MNT RPC).
    Automount-style — a client holds handles only for the shards it
    mounted; no server proxies for another, so aggregate throughput
    scales with servers until a shared resource (the router tier, the
    client population) saturates.

    Worlds come from {!Renofs_net.Topology.build_graph}; {!create}
    takes its [servers] node list and brings up one NFS server + mount
    daemon per node. *)

(** How mount points are placed on servers. *)
type policy =
  | Round_robin  (** assignment order, cycling through servers *)
  | Hash
      (** two-choice seeded hash of the mount-point name: the
          lighter-loaded of two hash-picked candidate servers — name
          affinity with near-perfect balance *)
  | Least_loaded
      (** at mount time, the server owning the fewest shards so far;
          ties break to the lowest index *)

val policy_name : policy -> string
(** "round-robin", "hash" or "least-loaded". *)

val policy_of_name : string -> policy
(** Inverse of {!policy_name} (plus "rr"/"ll" abbreviations).  Raises
    [Invalid_argument] otherwise. *)

(** Mount point → server assignment.  Assignment is sticky and lazy:
    a shard is placed by the policy the first time {!Shard_map.assign}
    sees it and keeps that owner forever after — deterministic given
    the policy, seed and assignment order (all sim-driven). *)
module Shard_map : sig
  type t

  val create : ?seed:int -> policy -> servers:int -> t
  (** [seed] (default 0) perturbs the [Hash] policy.  Raises
      [Invalid_argument] when [servers < 1]. *)

  val assign : t -> string -> int
  (** The owning server index, placing the shard on first use. *)

  val find : t -> string -> int option
  (** The owner if already placed; never places. *)

  val loads : t -> int array
  (** Shards currently owned, per server index. *)

  val assignments : t -> (string * int) list
  (** Every placement so far, sorted by shard name. *)

  val n_servers : t -> int
  val policy : t -> policy
end

type t

val create :
  ?profile:Renofs_core.Nfs_server.profile ->
  ?policy:policy ->
  ?seed:int ->
  shards:int ->
  Renofs_net.Node.t list ->
  t
(** Bring up one NFS server (UDP transport) and mount daemon on each
    node — pass [Topology.build_graph]'s [servers] list — and name
    [shards] mount points ["/home0"] .. ["/home<shards-1>"].  Policy
    defaults to [Hash].  Placement happens lazily as shards are first
    provisioned or mounted. *)

val provision : t -> unit
(** Create every shard's export directory on its owning server (which
    places all shards, in shard order).  Must run inside a process;
    call before clients mount. *)

val mount_shard :
  t ->
  udp:Renofs_transport.Udp.stack ->
  ?tcp:Renofs_transport.Tcp.stack ->
  shard:string ->
  Renofs_core.Nfs_client.mount_opts ->
  Renofs_core.Nfs_client.t
(** Mount [shard] from its owning server via the mount daemon
    ({!Renofs_core.Nfs_client.mount_path}).  Must run inside a
    process. *)

val shards : t -> string list
val shard_map : t -> Shard_map.t
val servers : t -> Renofs_core.Nfs_server.t list

val server_of_shard : t -> string -> Renofs_core.Nfs_server.t
(** The owner, placing the shard if new. *)

val iter_shards :
  t -> (shard:string -> server:Renofs_core.Nfs_server.t -> unit) -> unit
(** Visit every shard with its owner, in shard order — the hook for
    preloading per-shard filesets. *)

val total_served : t -> int
(** Sum of [rpcs_served] across the fleet. *)

val balance : t -> float
(** max/mean of per-server [rpcs_served] — 1.0 is perfect balance;
    1.0 when nothing has been served yet. *)
