open Renofs_transport
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Mbuf = Renofs_mbuf.Mbuf

let quiet_params =
  { Net.Topology.default_params with cross_traffic = false; link_loss = 0.0 }

let pattern n = Bytes.init n (fun i -> Char.chr ((i * 7) mod 256))

(* ------------------------------------------------------------------ *)
(* UDP                                                                *)
(* ------------------------------------------------------------------ *)

let test_udp_roundtrip () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let cs = Udp.install topo.Net.Topology.client
  and ss = Udp.install topo.Net.Topology.server in
  let server_sock = Udp.bind ss ~port:2049 in
  let echoed = ref None in
  Proc.spawn sim (fun () ->
      let dg = Udp.recv server_sock in
      Udp.sendto server_sock ~dst:dg.Udp.src ~dst_port:dg.Udp.src_port
        (Mbuf.of_string "pong"));
  Proc.spawn sim (fun () ->
      let sock = Udp.bind_ephemeral cs in
      Udp.sendto sock ~dst:(Net.Topology.server_id topo) ~dst_port:2049
        (Mbuf.of_string "ping");
      let reply = Udp.recv sock in
      echoed := Some (Bytes.to_string (Mbuf.to_bytes reply.Udp.payload)));
  Sim.run sim;
  Alcotest.(check (option string)) "echo" (Some "pong") !echoed

let test_udp_8k_over_wan () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim { Net.Topology.default_spec with Net.Topology.shape = Net.Topology.Wide_area; params = quiet_params } in
  let cs = Udp.install topo.Net.Topology.client
  and ss = Udp.install topo.Net.Topology.server in
  let server_sock = Udp.bind ss ~port:2049 in
  let got = ref 0 and t_arrive = ref 0.0 in
  Proc.spawn sim (fun () ->
      let dg = Udp.recv server_sock in
      got := Mbuf.length dg.Udp.payload;
      t_arrive := Sim.now sim);
  Proc.spawn sim (fun () ->
      let sock = Udp.bind_ephemeral cs in
      Udp.sendto sock ~dst:(Net.Topology.server_id topo) ~dst_port:2049
        (Mbuf.of_bytes (pattern 8192)));
  Sim.run sim;
  Alcotest.(check int) "delivered" 8192 !got;
  (* 8 KB over a 56 Kbit/s link needs over a second of serialization. *)
  Alcotest.(check bool) "took over a second" true (!t_arrive > 1.0)

let test_udp_unknown_port_dropped () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let cs = Udp.install topo.Net.Topology.client
  and ss = Udp.install topo.Net.Topology.server in
  let bound = Udp.bind ss ~port:2049 in
  Proc.spawn sim (fun () ->
      let sock = Udp.bind_ephemeral cs in
      Udp.sendto sock ~dst:(Net.Topology.server_id topo) ~dst_port:999
        (Mbuf.of_string "void"));
  Sim.run sim;
  Alcotest.(check int) "nothing queued" 0 (Udp.pending bound)

let test_udp_receive_buffer_overflow () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let cs = Udp.install topo.Net.Topology.client
  and ss = Udp.install topo.Net.Topology.server in
  (* Tiny buffer: fits just one 8K datagram. *)
  let server_sock = Udp.bind ~recv_buffer:9000 ss ~port:2049 in
  Proc.spawn sim (fun () ->
      let sock = Udp.bind_ephemeral cs in
      for _ = 1 to 5 do
        Udp.sendto sock ~dst:(Net.Topology.server_id topo) ~dst_port:2049
          (Mbuf.of_bytes (pattern 8192))
      done);
  Sim.run sim;
  Alcotest.(check int) "one queued" 1 (Udp.pending server_sock);
  Alcotest.(check int) "four dropped at socket" 4 (Udp.drops server_sock)

let test_udp_port_conflict () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let ss = Udp.install topo.Net.Topology.server in
  let _ = Udp.bind ss ~port:2049 in
  Alcotest.check_raises "conflict" (Invalid_argument "Udp.bind: port 2049 in use")
    (fun () -> ignore (Udp.bind ss ~port:2049))

(* ------------------------------------------------------------------ *)
(* TCP                                                                *)
(* ------------------------------------------------------------------ *)

let echo_server stack ~port =
  Tcp.listen stack ~port (fun conn ->
      let rec loop () =
        match Tcp.recv conn ~max:65536 with
        | chunk ->
            Tcp.send conn chunk;
            loop ()
        | exception Tcp.Connection_closed -> ()
      in
      loop ())

let run_echo ?(mss = 1460) ~topo ~bytes () =
  let sim = topo.Net.Topology.sim in
  let cs = Tcp.install topo.Net.Topology.client
  and ss = Tcp.install topo.Net.Topology.server in
  echo_server ss ~port:2049;
  let sent = pattern bytes in
  let received = Buffer.create bytes in
  let conn_stats = ref None in
  Proc.spawn sim (fun () ->
      let conn = Tcp.connect ~mss cs ~dst:(Net.Topology.server_id topo) ~dst_port:2049 in
      Proc.spawn sim (fun () ->
          Tcp.send conn (Mbuf.of_bytes (Bytes.copy sent)));
      let rec drain () =
        if Buffer.length received < bytes then begin
          let chunk = Tcp.recv conn ~max:65536 in
          Buffer.add_bytes received (Mbuf.to_bytes chunk);
          drain ()
        end
      in
      drain ();
      conn_stats := Some (Tcp.stats conn));
  Sim.run sim;
  Alcotest.(check int) "all bytes echoed" bytes (Buffer.length received);
  Alcotest.(check bytes) "content intact" sent (Buffer.to_bytes received);
  match !conn_stats with Some s -> s | None -> Alcotest.fail "no stats"

let test_tcp_lan_echo () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let stats = run_echo ~topo ~bytes:100_000 () in
  Alcotest.(check int) "no timeouts on clean lan" 0 stats.Tcp.retransmit_timeouts;
  Alcotest.(check bool) "rtt estimated" true (stats.Tcp.srtt > 0.0)

let test_tcp_campus_echo () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim { Net.Topology.default_spec with Net.Topology.shape = Net.Topology.Campus; params = quiet_params } in
  let stats = run_echo ~mss:512 ~topo ~bytes:60_000 () in
  Alcotest.(check bool) "segments flowed" true (stats.Tcp.segs_sent > 100)

let test_tcp_wan_echo () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim { Net.Topology.default_spec with Net.Topology.shape = Net.Topology.Wide_area; params = quiet_params } in
  let _stats = run_echo ~mss:512 ~topo ~bytes:20_000 () in
  ()

let test_tcp_lossy_link_recovers () =
  let sim = Sim.create () in
  let params = { quiet_params with link_loss = 0.05 } in
  let topo = Net.Topology.build sim { Net.Topology.default_spec with Net.Topology.shape = Net.Topology.Campus; params } in
  let stats = run_echo ~mss:512 ~topo ~bytes:60_000 () in
  Alcotest.(check bool) "recovered via retransmission" true
    (stats.Tcp.retransmit_timeouts + stats.Tcp.fast_retransmits > 0)

let test_tcp_slow_start_growth () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let cs = Tcp.install topo.Net.Topology.client
  and ss = Tcp.install topo.Net.Topology.server in
  (* A sink server that reads forever. *)
  Tcp.listen ss ~port:2049 (fun conn ->
      let rec loop () =
        match Tcp.recv conn ~max:65536 with
        | _ -> loop ()
        | exception Tcp.Connection_closed -> ()
      in
      loop ());
  let final_cwnd = ref 0.0 in
  Proc.spawn sim (fun () ->
      let conn = Tcp.connect ~mss:1460 cs ~dst:(Net.Topology.server_id topo) ~dst_port:2049 in
      Tcp.send conn (Mbuf.of_bytes (pattern 64_000));
      final_cwnd := (Tcp.stats conn).Tcp.cwnd);
  Sim.run sim;
  Alcotest.(check bool) "cwnd grew beyond 1 segment" true (!final_cwnd > 2.0 *. 1460.0)

let test_tcp_connect_timeout () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let cs = Tcp.install topo.Net.Topology.client in
  let _ss = Tcp.install topo.Net.Topology.server in
  let outcome = ref "" in
  Proc.spawn sim (fun () ->
      match Tcp.connect cs ~dst:(Net.Topology.server_id topo) ~dst_port:7777 with
      | _ -> outcome := "connected"
      | exception Tcp.Connect_timeout -> outcome := "timeout");
  Sim.run sim;
  Alcotest.(check string) "gave up" "timeout" !outcome

let test_tcp_concurrent_senders_serialized () =
  (* Two processes interleaving sends on one connection must not corrupt
     the stream: total byte count is preserved (the NFS client relies on
     per-record locking above this, but the socket layer must at least
     keep the byte stream intact). *)
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let cs = Tcp.install topo.Net.Topology.client
  and ss = Tcp.install topo.Net.Topology.server in
  let total = ref 0 in
  Tcp.listen ss ~port:2049 (fun conn ->
      let rec loop () =
        match Tcp.recv conn ~max:65536 with
        | chunk ->
            total := !total + Mbuf.length chunk;
            loop ()
        | exception Tcp.Connection_closed -> ()
      in
      loop ());
  Proc.spawn sim (fun () ->
      let conn = Tcp.connect ~mss:1460 cs ~dst:(Net.Topology.server_id topo) ~dst_port:2049 in
      for _ = 1 to 4 do
        Proc.spawn sim (fun () -> Tcp.send conn (Mbuf.of_bytes (pattern 20_000)))
      done);
  Sim.run ~until:120.0 sim;
  Alcotest.(check int) "all bytes through" 80_000 !total

let test_tcp_close_delivers_eof () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let cs = Tcp.install topo.Net.Topology.client
  and ss = Tcp.install topo.Net.Topology.server in
  let server_saw = ref [] in
  Tcp.listen ss ~port:2049 (fun conn ->
      let rec loop () =
        match Tcp.recv conn ~max:65536 with
        | chunk ->
            server_saw := Bytes.to_string (Mbuf.to_bytes chunk) :: !server_saw;
            loop ()
        | exception Tcp.Connection_closed -> server_saw := "EOF" :: !server_saw
      in
      loop ());
  Proc.spawn sim (fun () ->
      let conn = Tcp.connect cs ~dst:(Net.Topology.server_id topo) ~dst_port:2049 in
      Tcp.send conn (Mbuf.of_string "last words");
      Tcp.close conn);
  Sim.run ~until:300.0 sim;
  match List.rev !server_saw with
  | [ "last words"; "EOF" ] -> ()
  | other ->
      Alcotest.failf "unexpected sequence: %s" (String.concat "," other)

let test_tcp_zero_window_persist () =
  (* A receiver that refuses to read closes its window; the sender must
     stall, probe, and finish once the receiver drains. *)
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let cs = Tcp.install topo.Net.Topology.client
  and ss = Tcp.install topo.Net.Topology.server in
  let got = Buffer.create 65536 in
  Tcp.listen ss ~port:2049 (fun conn ->
      (* Ignore the data for 30 seconds, then drain everything. *)
      Proc.sleep sim 30.0;
      let rec loop () =
        match Tcp.recv conn ~max:65536 with
        | chunk ->
            Buffer.add_bytes got (Mbuf.to_bytes chunk);
            loop ()
        | exception Tcp.Connection_closed -> ()
      in
      loop ());
  let body = pattern 40_000 in
  Proc.spawn sim (fun () ->
      let conn = Tcp.connect ~mss:1460 cs ~dst:(Net.Topology.server_id topo) ~dst_port:2049 in
      Tcp.send conn (Mbuf.of_bytes (Bytes.copy body));
      Tcp.close conn);
  Sim.run ~until:600.0 sim;
  Alcotest.(check int) "all bytes after stall" 40_000 (Buffer.length got);
  Alcotest.(check bytes) "intact" body (Buffer.to_bytes got)

let test_tcp_interleaved_connections () =
  (* Several simultaneous connections between the same two hosts must
     demultiplex cleanly. *)
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let cs = Tcp.install topo.Net.Topology.client
  and ss = Tcp.install topo.Net.Topology.server in
  let sums = Hashtbl.create 4 in
  Tcp.listen ss ~port:2049 (fun conn ->
      let rec loop acc =
        match Tcp.recv conn ~max:65536 with
        | chunk -> loop (acc + Mbuf.length chunk)
        | exception Tcp.Connection_closed ->
            Hashtbl.replace sums (Tcp.peer_port conn) acc
      in
      loop 0);
  for i = 1 to 4 do
    Proc.spawn sim (fun () ->
        let conn = Tcp.connect ~mss:512 cs ~dst:(Net.Topology.server_id topo) ~dst_port:2049 in
        Tcp.send conn (Mbuf.of_bytes (pattern (i * 10_000)));
        Tcp.close conn)
  done;
  Sim.run ~until:600.0 sim;
  let totals = Hashtbl.fold (fun _ v acc -> v :: acc) sums [] |> List.sort compare in
  Alcotest.(check (list int)) "per-connection byte counts"
    [ 10_000; 20_000; 30_000; 40_000 ] totals

let test_tcp_cpu_premium_over_udp () =
  (* Graph 6's premise: moving the same bytes by TCP costs the server
     more CPU than by UDP. *)
  let run_udp () =
    let sim = Sim.create () in
    let topo = Net.Topology.build sim Net.Topology.default_spec in
    let cs = Udp.install topo.Net.Topology.client
    and ss = Udp.install topo.Net.Topology.server in
    let server_sock = Udp.bind ss ~port:2049 in
    Proc.spawn sim (fun () ->
        for _ = 1 to 20 do
          ignore (Udp.recv server_sock)
        done);
    Proc.spawn sim (fun () ->
        let sock = Udp.bind_ephemeral cs in
        for _ = 1 to 20 do
          Udp.sendto sock ~dst:(Net.Topology.server_id topo) ~dst_port:2049
            (Mbuf.of_bytes (pattern 8192));
          Proc.sleep sim 0.2
        done);
    Sim.run sim;
    Renofs_engine.Cpu.busy_time (Net.Node.cpu topo.Net.Topology.server)
  in
  let run_tcp () =
    let sim = Sim.create () in
    let topo = Net.Topology.build sim Net.Topology.default_spec in
    let cs = Tcp.install topo.Net.Topology.client
    and ss = Tcp.install topo.Net.Topology.server in
    let got = ref 0 in
    Tcp.listen ss ~port:2049 (fun conn ->
        let rec loop () =
          match Tcp.recv conn ~max:65536 with
          | chunk ->
              got := !got + Mbuf.length chunk;
              loop ()
          | exception Tcp.Connection_closed -> ()
        in
        loop ());
    Proc.spawn sim (fun () ->
        let conn = Tcp.connect ~mss:1460 cs ~dst:(Net.Topology.server_id topo) ~dst_port:2049 in
        for _ = 1 to 20 do
          Tcp.send conn (Mbuf.of_bytes (pattern 8192));
          Proc.sleep sim 0.2
        done);
    Sim.run ~until:60.0 sim;
    Renofs_engine.Cpu.busy_time (Net.Node.cpu topo.Net.Topology.server)
  in
  let udp_busy = run_udp () and tcp_busy = run_tcp () in
  Alcotest.(check bool) "tcp costs more" true (tcp_busy > udp_busy);
  Alcotest.(check bool) "but not absurdly more" true (tcp_busy < udp_busy *. 2.5)

let prop_tcp_transfer_integrity =
  QCheck.Test.make ~name:"tcp preserves arbitrary streams across lossy paths" ~count:15
    QCheck.(pair (int_range 1 40_000) (int_range 0 3))
    (fun (bytes, loss_level) ->
      let sim = Sim.create () in
      let params =
        {
          quiet_params with
          link_loss = float_of_int loss_level *. 0.02;
          seed = bytes;
        }
      in
      let topo = Net.Topology.build sim { Net.Topology.default_spec with Net.Topology.shape = Net.Topology.Campus; params } in
      let cs = Tcp.install topo.Net.Topology.client
      and ss = Tcp.install topo.Net.Topology.server in
      let received = Buffer.create bytes in
      Tcp.listen ss ~port:2049 (fun conn ->
          let rec loop () =
            match Tcp.recv conn ~max:65536 with
            | chunk ->
                Buffer.add_bytes received (Mbuf.to_bytes chunk);
                loop ()
            | exception Tcp.Connection_closed -> ()
          in
          loop ());
      let sent = pattern bytes in
      Proc.spawn sim (fun () ->
          let conn = Tcp.connect ~mss:512 cs ~dst:(Net.Topology.server_id topo) ~dst_port:2049 in
          Tcp.send conn (Mbuf.of_bytes (Bytes.copy sent));
          Tcp.close conn);
      Sim.run ~until:600.0 sim;
      Bytes.equal (Buffer.to_bytes received) sent)

let () =
  Alcotest.run "transport"
    [
      ( "udp",
        [
          Alcotest.test_case "roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "8K over wan" `Quick test_udp_8k_over_wan;
          Alcotest.test_case "unknown port dropped" `Quick test_udp_unknown_port_dropped;
          Alcotest.test_case "recv buffer overflow" `Quick test_udp_receive_buffer_overflow;
          Alcotest.test_case "port conflict" `Quick test_udp_port_conflict;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "lan echo 100K" `Quick test_tcp_lan_echo;
          Alcotest.test_case "campus echo" `Quick test_tcp_campus_echo;
          Alcotest.test_case "wan echo" `Quick test_tcp_wan_echo;
          Alcotest.test_case "lossy link recovers" `Quick test_tcp_lossy_link_recovers;
          Alcotest.test_case "slow start growth" `Quick test_tcp_slow_start_growth;
          Alcotest.test_case "connect timeout" `Quick test_tcp_connect_timeout;
          Alcotest.test_case "concurrent senders" `Quick
            test_tcp_concurrent_senders_serialized;
          Alcotest.test_case "close delivers EOF" `Quick test_tcp_close_delivers_eof;
          Alcotest.test_case "cpu premium vs udp" `Quick test_tcp_cpu_premium_over_udp;
          Alcotest.test_case "zero-window persist" `Quick test_tcp_zero_window_persist;
          Alcotest.test_case "interleaved connections" `Quick test_tcp_interleaved_connections;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_tcp_transfer_integrity ] );
    ]
