(** Client-side RPC transport: the three mechanisms compared in
    Section 4 of the paper.

    - {b UDP, fixed RTO}: the classic NFS client.  The retransmission
      timeout is the mount-time [timeo] constant, backed off
      exponentially; fragments of a retransmitted 8K request repeat in
      full.
    - {b UDP, dynamic RTO + congestion window}: per-procedure Jacobson
      estimators for the four most frequent RPCs (Read and Write with
      RTO [A+4D] for their large variance; Getattr and Lookup with
      [A+2D]), the mount constant for the rest, and a TCP-style window
      on outstanding {e requests} — incremented per reply, halved on
      timeout, with no slow start (the paper found slow start hurt and
      removed it).
    - {b TCP}: one connection per mount, record-marked RPC stream,
      reliability and congestion control delegated to
      {!Renofs_transport.Tcp}.

    All three present the same blocking [call] interface and keep the
    RTT/retry statistics the paper's graphs are made of. *)

type t

exception Rpc_error of string
(** The server rejected the RPC at the Sun-RPC layer, or the TCP
    connection failed. *)

exception Rpc_timed_out of { proc : string; final_timeo : float }
(** A soft mount's retransmission limit was exhausted.  [proc] names the
    procedure that gave up and [final_timeo] is the retransmission
    timeout in force at the give-up — the mount [timeo] after
    exponential backoff, capped at 60 s (BSD's [NFS_MAXTIMEO]) so the
    backoff can never stretch a soft mount's final wait past a minute. *)

type summary = {
  calls : int;
  retransmits : int;
  mean_rtt : float;  (** seconds over completed calls *)
}

val create_udp_fixed :
  Renofs_transport.Udp.stack ->
  server:int ->
  ?timeo:float ->
  ?max_retries:int ->
  ?uid:int ->
  ?gid:int ->
  unit ->
  t
(** [timeo] defaults to 1.0 s — the value whose RTT-trace peaks told the
    paper not to lower it.  [max_retries] makes the transport "soft":
    {!call} raises {!Rpc_timed_out} once the limit is exhausted instead
    of retrying forever. *)

val create_udp_dynamic :
  Renofs_transport.Udp.stack ->
  server:int ->
  ?timeo:float ->
  ?max_retries:int ->
  ?uid:int ->
  ?gid:int ->
  ?cwnd_init:float ->
  ?cwnd_max:float ->
  unit ->
  t

val create_tcp :
  Renofs_transport.Tcp.stack ->
  server:int ->
  ?mss:int ->
  ?uid:int ->
  ?gid:int ->
  unit ->
  t
(** Blocking connect: call from a process.  Raises {!Rpc_error} if the
    server cannot be reached. *)

val call : t -> Nfs_proto.call -> Nfs_proto.reply
(** Execute one RPC: encode (charging client CPU), transmit with the
    transport's retry discipline, match the reply by xid, decode.
    Blocks the calling process; concurrent calls are supported and
    (for the dynamic transport) gated by the congestion window. *)

val summary : t -> summary
val retransmits : t -> int

val garbled : t -> int
(** Replies discarded because they failed to decode end to end (short
    packet, damaged header or body, or a [GARBAGE_ARGS] verdict on a
    request damaged in transit).  Each leaves its request pending for
    the normal retransmit/replay path. *)

val outstanding : t -> int
val congestion_window : t -> float
(** Current window in requests; meaningful for the dynamic transport. *)

val rtt_by_proc : t -> (string * Renofs_engine.Stats.Welford.t) list
(** Completed-call round-trip statistics keyed by procedure name. *)

val enable_read_trace : t -> unit
(** Start recording (time, RTT) and (time, RTO) samples for Read RPCs —
    the data behind Graph 7. *)

val read_rtt_trace : t -> (float * float) list
val read_rto_trace : t -> (float * float) list
