lib/net/traffic.mli: Node
