(** Failure flight recorder.

    Armed once per run with everything that must survive a crash of the
    run itself — the bundle directory, the rendered run-spec JSON and
    the seed — and invoked per failing cell by the experiment runner on
    a [Driver_stuck], a [Fault.Check] invariant FAIL or an SLO breach.
    Each dump is a self-contained post-mortem bundle:

    {v
    <dir>/<cell-label>/
      MANIFEST.json      renofs-flight/1: label, seed, reason, members
      reason.txt         why the recorder fired
      run_spec.json      the run's flag surface, re-runnable
      trace_tail.jsonl   last records of the cell's trace ring
      metrics.jsonl      the cell's metric series (when sampled)
      profile.json       renofs-profile/1 snapshot (when profiled)
    v}

    Dumps are per-cell and cell labels are unique within a run, so
    parallel sweeps never contend on a bundle directory. *)

type t

val arm : dir:string -> spec_json:string -> seed:int -> t
(** Immutable arming record; nothing is written until a dump. *)

val dir : t -> string

val tail_records : int
(** How many of the newest trace records a bundle keeps (20_000). *)

val dump :
  t ->
  label:string ->
  reason:string ->
  ?trace:Renofs_trace.Trace.t ->
  ?metrics:Renofs_metrics.Metrics.t ->
  ?profile:Profile.t ->
  unit ->
  string
(** Write one bundle and return its directory.  The label is sanitized
    to a path component ([A-Za-z0-9._-], anything else becomes ['_']).
    An existing bundle for the same label is overwritten member by
    member. *)
