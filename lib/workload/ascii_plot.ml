let markers = [| '*'; '+'; 'o'; 'x'; '#' |]

let render ?(width = 56) ?(height = 14) ~x_label ~y_label ~x ~series () =
  ignore y_label;
  let n = List.fold_left (fun acc (_, ys) -> min acc (List.length ys)) (List.length x) series in
  let xs = Array.of_list (List.filteri (fun i _ -> i < n) x) in
  (* NaN/infinite coordinates carry no plottable information and would
     make [int_of_float] undefined below: they are rejected up front
     (axis ranges) and skipped point by point. *)
  let finite = Float.is_finite in
  if n = 0 || not (Array.exists finite xs) then "(no data)\n"
  else begin
    let x_min =
      Array.fold_left (fun a v -> if finite v then Float.min a v else a) infinity xs
    and x_max =
      Array.fold_left
        (fun a v -> if finite v then Float.max a v else a)
        neg_infinity xs
    in
    let y_max =
      List.fold_left
        (fun acc (_, ys) ->
          List.fold_left
            (fun a v -> if finite v then Float.max a v else a)
            acc
            (List.filteri (fun i _ -> i < n) ys))
        1e-9 series
    in
    let grid = Array.make_matrix height width ' ' in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let place xv yv marker =
      if finite xv && finite yv then begin
        let col =
          int_of_float ((xv -. x_min) /. x_span *. float_of_int (width - 1))
        in
        let row =
          height - 1 - int_of_float (yv /. y_max *. float_of_int (height - 1))
        in
        let col = max 0 (min (width - 1) col) in
        let row = max 0 (min (height - 1) row) in
        grid.(row).(col) <- (if grid.(row).(col) = ' ' then marker else '@')
      end
    in
    List.iteri
      (fun si (_, ys) ->
        let marker = markers.(si mod Array.length markers) in
        List.iteri (fun i yv -> if i < n then place xs.(i) yv marker) ys)
      series;
    let buf = Buffer.create ((height + 4) * (width + 12)) in
    Array.iteri
      (fun row line ->
        let label =
          if row = 0 then Printf.sprintf "%8.1f |" y_max
          else if row = height - 1 then Printf.sprintf "%8.1f |" 0.0
          else "         |"
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("         +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "          %-8.1f%s%8.1f  (%s)\n" x_min
         (String.make (max 1 (width - 18)) ' ')
         x_max x_label);
    Buffer.add_string buf "          legend: ";
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "%c=%s  " markers.(si mod Array.length markers) name))
      series;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

let float_cell s = float_of_string_opt (String.trim s)

let render_table (t : Experiments.table) =
  match t.Experiments.rows with
  | [] -> None
  | rows ->
      let parsed =
        List.map (fun row -> List.map float_cell row) rows
      in
      if
        List.for_all (fun row -> List.for_all Option.is_some row) parsed
        && List.length (List.hd parsed) >= 2
      then begin
        let numeric = List.map (List.map Option.get) parsed in
        let x = List.map List.hd numeric in
        let cols = List.length (List.hd numeric) - 1 in
        let series =
          List.init cols (fun c ->
              let name = List.nth t.Experiments.header (c + 1) in
              (name, List.map (fun row -> List.nth row (c + 1)) numeric))
        in
        Some
          (render
             ~x_label:(List.hd t.Experiments.header)
             ~y_label:"" ~x ~series ())
      end
      else None
