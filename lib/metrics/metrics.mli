(** Sampled time-series metrics.

    A {!t} is a sink owned by the harness; each simulated world opens a
    labelled {!run} on it ({!start_run}), and instrumented components
    register named sources — counters, gauges, or [Stats.Hist]-backed
    histograms — against that run.  A sim-time periodic tick snapshots
    every source into a per-series {!Renofs_engine.Stats.Timeseries}, so
    the dynamics the end-of-run aggregates hide (the congestion window
    collapsing, the server queue backing up behind the 56K link) become
    plottable trajectories.

    Cost contract: components hold a [run option]; with no sink
    attached nothing is registered and the data path pays one branch,
    exactly like tracing.  Sampling runs off the simulator clock, so a
    run's series are deterministic for a given seed, and per-cell sinks
    merged in cell order ({!merge}) reproduce a serial run's output
    byte-for-byte at any [--jobs].

    The tick reschedules itself forever; that is safe for worlds
    drained with [Sim.run ~until] windows (every experiment driver) but
    would hang a bare [Sim.run] — do not attach a sink to a world
    drained that way. *)

type t
type run

type kind = Counter | Gauge | Histogram
(** [Counter] marks monotonically nondecreasing samples (convert to
    rates with {!Renofs_engine.Stats.Timeseries.rate}); [Gauge] is an
    instantaneous level; [Histogram] marks quantile series derived from
    a [Stats.Hist] via {!register_hist}. *)

type series = {
  e_run : string;  (** owning run's label, unique within the sink *)
  e_name : string;
  e_kind : kind;
  e_unit : string;
  e_labels : (string * string) list;
      (** dimension tags, e.g. [("server", "server3")] on per-shard
          series; empty for most sources *)
  e_points : (float * float) list;  (** (sim time, value), time-ordered *)
}

val create : ?interval:float -> unit -> t
(** A sink sampling every [interval] sim-seconds (default 0.5). *)

val interval : t -> float

val set_enabled : t -> bool -> unit
(** Gate sampling without tearing the tick down — used to exclude
    warmup phases, mirroring [Trace.set_enabled]. *)

val enabled : t -> bool

val start_run : t -> sim:Renofs_engine.Sim.t -> label:string -> run
(** Open a run on [sim] and start its sampling tick.  [label] is
    uniquified against the sink's existing runs ([#2], [#3]...) so
    plots can always address a single run. *)

val register :
  ?labels:(string * string) list ->
  run ->
  name:string ->
  unit_:string ->
  kind:kind ->
  (unit -> float) ->
  unit
(** Add a sampled source.  Non-finite samples are skipped (a gauge with
    nothing to report returns [nan]).  [labels] (default none) tags the
    series with dimensions — fleet worlds label per-shard series with
    [("server", name)] so plots can split shard imbalance. *)

val register_hist :
  ?labels:(string * string) list ->
  run ->
  name:string ->
  unit_:string ->
  Renofs_engine.Stats.Hist.t ->
  unit
(** Derive [name/p50] and [name/p95] quantile series from a live
    histogram; empty histograms contribute no points. *)

val merge : into:t -> t -> unit
(** Append [t]'s runs after [into]'s, preserving start order — the
    sweep runner's per-cell merge, called in cell order. *)

val series : t -> series list
(** Every series, runs in start order and sources in registration
    order. *)

(** {2 renofs-metrics/1 export/import}

    JSONL: a header line
    [{"schema":"renofs-metrics/1","interval":I,"series":N}] followed by
    one object per series with fields [run], [name], [kind], [unit],
    [points] (array of [[time, value]] pairs), plus [labels] (a string
    object) only when the series carries labels — unlabelled exports
    are byte-identical to pre-label writers, and old files import with
    empty labels.  Floats print with shortest round-trip precision so
    serial and parallel exports are byte-identical.  CSV: a
    [run,series,kind,unit,time,value] header then one row per point;
    labelled series render as [name{k=v;...}] in the series column. *)

val export_jsonl : t -> string -> unit
val export_csv : t -> string -> unit

val import_jsonl : string -> (series list, string) result
(** Errors carry [path:line:] context. *)

val kind_name : kind -> string
(** "counter", "gauge" or "histogram". *)
