type t = {
  k : float;
  min_rto : float;
  max_rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable inited : bool;
}

let create ?(k = 4.0) ?(min_rto = 0.1) ?(max_rto = 60.0) () =
  { k; min_rto; max_rto; srtt = 0.0; rttvar = 0.0; inited = false }

let observe t sample =
  if not t.inited then begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.0;
    t.inited <- true
  end
  else begin
    let err = sample -. t.srtt in
    t.srtt <- t.srtt +. (err /. 8.0);
    t.rttvar <- t.rttvar +. ((abs_float err -. t.rttvar) /. 4.0)
  end

let initialized t = t.inited
let srtt t = t.srtt
let deviation t = t.rttvar

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let rto t ~default =
  if not t.inited then default
  else clamp t.min_rto t.max_rto (t.srtt +. (t.k *. t.rttvar))
