type event = {
  time : float;
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
}

type timer = event

(* A simple binary min-heap on (time, seq).  Cancelled events stay in the
   heap and are skipped when popped; this keeps cancellation O(1). *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let dummy = { time = 0.0; seq = -1; fn = ignore; cancelled = true }

let create () =
  { heap = Array.make 64 dummy; size = 0; clock = 0.0; next_seq = 0; processed = 0 }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let push t ev =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t.heap.(i) t.heap.(parent) then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(parent);
        t.heap.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> i then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        down !smallest
      end
    in
    down 0;
    Some top
  end

let schedule t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is before now %g" time t.clock);
  let ev = { time; seq = t.next_seq; fn; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  ev

let at t time fn = ignore (schedule t time fn)
let after t delay fn = ignore (schedule t (t.clock +. delay) fn)
let timer_after t delay fn = schedule t (t.clock +. delay) fn
let cancel ev = ev.cancelled <- true
let pending ev = not ev.cancelled

let step t =
  let rec next () =
    match pop t with
    | None -> false
    | Some ev when ev.cancelled -> next ()
    | Some ev ->
        t.clock <- ev.time;
        ev.cancelled <- true;
        t.processed <- t.processed + 1;
        ev.fn ();
        true
  in
  next ()

let rec skip_cancelled t =
  if t.size > 0 && t.heap.(0).cancelled then begin
    ignore (pop t);
    skip_cancelled t
  end

let run ?until t =
  let continue () =
    skip_cancelled t;
    match until with
    | None -> t.size > 0
    | Some limit ->
        if t.size > 0 && t.heap.(0).time <= limit then true
        else begin
          if t.clock < limit then t.clock <- limit;
          false
        end
  in
  while continue () do
    ignore (step t)
  done

let events_processed t = t.processed

let pending_events t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).cancelled then incr n
  done;
  !n
