(* Statelessness in action: crash the server in the middle of a
   workload and watch the client ride through on retransmission alone —
   "the stateless server concept was used so that crash recovery is
   trivial" (paper, Section 1).

     dune exec examples/crash_recovery.exe *)

module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Topology = Renofs_net.Topology
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module Client_transport = Renofs_core.Client_transport

let () =
  let sim = Sim.create () in
  let topo = Topology.build sim Topology.default_spec in
  let sudp = Udp.install topo.Topology.server in
  let stcp = Tcp.install topo.Topology.server in
  let server = Nfs_server.create topo.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Topology.client in
  let ctcp = Tcp.install topo.Topology.client in

  (* The client hammers away, oblivious to what is coming. *)
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp ~server:(Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          Nfs_client.reno_mount
      in
      for i = 1 to 20 do
        let name = Printf.sprintf "f%02d" i in
        let t0 = Sim.now sim in
        let fd = Nfs_client.create m name in
        Nfs_client.write m fd ~off:0 (Bytes.make 4096 'd');
        Nfs_client.close m fd;
        let dt = Sim.now sim -. t0 in
        Printf.printf "t=%6.2fs  created %s%s\n" (Sim.now sim) name
          (if dt > 1.0 then Printf.sprintf "   <- stalled %.1fs across the crash" dt
           else "")
      done;
      (* Everything written before, during and after the outage is on
         stable storage. *)
      let survived = Nfs_client.readdir m "/" in
      Printf.printf "\nafter recovery the server holds %d files; client retransmitted %d times\n"
        (List.length survived)
        (Client_transport.retransmits (Nfs_client.transport m)));

  (* Meanwhile: the server dies at t=2s for 6 seconds, losing its buffer
     cache, name cache, duplicate-request cache and lease table.  The
     synchronously-written filesystem is its only memory — and the only
     one it needs. *)
  Proc.spawn sim (fun () ->
      Proc.sleep sim 2.0;
      Printf.printf "t=%6.2fs  *** server crash ***\n" (Sim.now sim);
      Nfs_server.crash_and_reboot server ~downtime:6.0;
      Printf.printf "t=%6.2fs  *** server back up (volatile state gone) ***\n"
        (Sim.now sim));

  Sim.run ~until:120.0 sim;
  print_endline "\n(no client-side error handling was involved: the RPC layer's";
  print_endline " timeout/retransmit discipline is the entire recovery protocol)"
