lib/rpc/record_mark.mli: Renofs_mbuf
