(** The one spelling of "how to run an experiment".

    Every nfsbench subcommand (run, chaos, fuzz, perf, slo, all) and
    the scenario loader build one of these records — from command-line
    flags or from a scenario file's ["run"] object — and hand it to
    {!execute}.  A scenario file and a CLI invocation are therefore two
    spellings of the same spec: same fields, same defaults, same
    output-path checks, same export behavior.

    Fields are optional ("not set") so that a scenario file's run
    section and the command line can be layered with {!override}
    before defaults apply. *)

type t = {
  rs_scale : Experiments.scale option;
  rs_jobs : int option;  (** domains for the cell sweep *)
  rs_seed : int option;  (** world / base seed *)
  rs_json : string option;  (** renofs-bench/1 results file *)
  rs_trace : string option;  (** JSONL event-trace file *)
  rs_report : bool;  (** print the nfsstat-style trace report *)
  rs_metrics : string option;  (** metrics JSONL (or .csv) file *)
  rs_faults : string option;  (** builtin schedule name or file *)
  rs_profile : string option;  (** renofs-profile/1 self-profile file *)
  rs_perfetto : string option;  (** Chrome trace-event (Perfetto) file *)
  rs_flight : string option;  (** flight-recorder bundle directory *)
}

val empty : t
(** Nothing set: quick scale, default jobs, seed 0, no exports. *)

val scale : t -> Experiments.scale
(** [rs_scale], defaulting to [Quick]. *)

val seed : t -> int
(** [rs_seed], defaulting to 0. *)

val override : base:t -> t -> t
(** [override ~base t] layers [t] over [base]: fields set in [t] win,
    unset fields fall through to [base] ([rs_report] ors).  The CLI
    overriding a scenario file's run section is [override
    ~base:(from_file) (from_cli)]. *)

val of_json : ctx:string -> (string * Renofs_json.Json.json) list -> t
(** Decode a run object — [{"scale","jobs","seed","json","trace",
    "report","metrics","faults","profile","perfetto","flight"}], every
    field optional — raising
    {!Renofs_json.Json.Bad} (prefixed with [ctx]) on unknown fields or
    wrong shapes, so a typo in a scenario file fails loudly instead of
    silently running with defaults. *)

val check_writable : string -> string option
(** Probe-open a path for writing; [Some msg] on failure.  Runs before
    the sweep so a mistyped output path does not cost minutes of
    simulation. *)

val check_outputs : (string * string option) list -> string option
(** [check_outputs [("json", t.rs_json); ...]] — first failure message,
    if any. *)

val effective_jobs : ?cells:int -> int option -> int
(** The domain count actually used: the machine's recommended count by
    default, clamped to the cell count; an explicit larger value still
    runs, oversubscribed, with a warning on stderr. *)

val resolve_faults :
  string option -> (Renofs_fault.Fault.schedule option, string) result

val export_metrics : Renofs_metrics.Metrics.t -> string -> unit
(** CSV when the path ends in [.csv], JSONL otherwise. *)

val execute_many :
  ?print:(Experiments.table -> unit) ->
  t ->
  Experiments.spec list ->
  (Experiments.results list, string) result
(** The shared run path: check output paths, resolve the fault
    schedule (announcing it), clamp jobs to the pooled cell count,
    create the trace sink (when [rs_trace], [rs_report] or
    [rs_perfetto]), metrics sink (when [rs_metrics]) and self-profiler
    (when [rs_profile] or [rs_perfetto]), arm the flight recorder
    (when [rs_flight]), execute every spec's cells in one pooled sweep
    via {!Experiments.run_specs}, print each rendered table through
    [print], then export JSON / metrics / trace / profile / perfetto
    and print the report and profile table.  Returns the typed results
    so callers can apply their own verdict (chaos/fuzz/slo exit
    codes).  Cell results are byte-identical at any [rs_jobs];
    profiler wall-times are not (fire counts are). *)

val execute :
  ?print:(Experiments.table -> unit) ->
  t ->
  Experiments.spec ->
  (Experiments.results, string) result
(** {!execute_many} over one spec. *)
