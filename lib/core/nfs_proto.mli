(** The NFS version 2 protocol (RFC 1094), plus experimental
    extensions.

    Wire-faithful XDR encoding and decoding of every procedure's
    arguments and results, built directly in mbuf chains.  The first
    extension is the [Readdirlook] procedure the paper's Future
    Directions sketches ("a way of doing many name lookups per RPC,
    possibly by adding a readdir_and_lookup_files RPC"): a READDIR that
    also returns each entry's file handle and attributes — NFSv3's
    READDIRPLUS, five years early.  It is off unless a client asks for
    it.

    The v3 profile adds the asynchronous-write pair that shipped in
    NFSv3: [Write3] with a {!stable_how} stability demand and a
    per-boot write verifier in the reply, and [Commit] to make buffered
    unstable data durable — plus 32K-class transfers ({!max_data_v3}).
    The verifier contract: a server may acknowledge an UNSTABLE write
    before touching stable storage, but must return a verifier that
    changes whenever buffered data could have been lost (i.e. per
    boot); a client holding unstable writes that sees the verifier
    change must rewrite those ranges before reporting close/fsync
    success. *)

val program : int
(** 100003. *)

val version : int
(** 2. *)

val port : int
(** 2049. *)

val max_data : int
(** 8192, the largest v2 read/write transfer. *)

val max_data_v3 : int
(** 32768, the largest transfer under the v3 profile. *)

val fhandle_size : int
(** 32 bytes. *)

type fhandle = int
(** Opaque to clients; our servers put the inode number inside.  Encoded
    as the full 32-byte opaque on the wire. *)

type stat =
  | NFS_OK
  | NFSERR_PERM
  | NFSERR_NOENT
  | NFSERR_IO
  | NFSERR_ACCES
  | NFSERR_EXIST
  | NFSERR_NOTDIR
  | NFSERR_ISDIR
  | NFSERR_FBIG
  | NFSERR_NOSPC
  | NFSERR_NAMETOOLONG
  | NFSERR_NOTEMPTY
  | NFSERR_STALE

type ftype = NFNON | NFREG | NFDIR | NFBLK | NFCHR | NFLNK

type time = { seconds : int; useconds : int }

val time_of_float : float -> time
val float_of_time : time -> float

type fattr = {
  ftype : ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  blocksize : int;
  rdev : int;
  blocks : int;
  fsid : int;
  fileid : int;
  atime : time;
  mtime : time;
  ctime : time;
}

(** Settable attributes; [-1] fields are left unchanged, as on the wire. *)
type sattr = {
  s_mode : int;
  s_uid : int;
  s_gid : int;
  s_size : int;
  s_atime : time option;
  s_mtime : time option;
}

val sattr_none : sattr

type diropargs = { dir : fhandle; name : string }
type readargs = { read_file : fhandle; offset : int; count : int }

type writeargs = { write_file : fhandle; write_offset : int; data : bytes }

type createargs = { where : diropargs; attributes : sattr }
type renameargs = { from_dir : diropargs; to_dir : diropargs }
type linkargs = { link_from : fhandle; link_to : diropargs }
type symlinkargs = { sym_where : diropargs; sym_target : string; sym_attr : sattr }
type readdirargs = { rd_dir : fhandle; cookie : int; rd_count : int }

type entry = { fileid : int; entry_name : string; entry_cookie : int }

type statfsok = {
  tsize : int;
  bsize : int;
  blocks_total : int;
  blocks_free : int;
  blocks_avail : int;
}

(** One entry of the experimental bulk-lookup reply: a directory entry
    plus its handle and attributes. *)
type lookent = { le_entry : entry; le_file : fhandle; le_attr : fattr }

(** The second experimental extension: short-duration cache leases, the
    crash- and partition-tolerant consistency protocol the paper's
    Future Directions calls for (and which 4.4BSD shipped as NQNFS).
    A read lease makes cached data valid without attribute checks; a
    write lease makes {e delayed write without push on close} safe.
    Leases are never revoked by callback — they expire, and a holder
    whose lease is contested is simply refused renewal, so server
    crashes and partitions heal by timeout. *)
type lease_mode = Lease_read | Lease_write

type leaseargs = {
  lease_file : fhandle;
  lease_mode : lease_mode;
  lease_duration : int;  (** seconds requested *)
}

type leaseok = {
  granted_duration : int;
  lease_attr : fattr;  (** current attributes, so a grant refreshes caches *)
}

(** v3-style write stability: [Unstable] lets the server reply before
    the data reaches stable storage, [Data_sync]/[File_sync] do not. *)
type stable_how = Unstable | Data_sync | File_sync

type write3args = {
  w3_file : fhandle;
  w3_offset : int;
  w3_stable : stable_how;
  w3_data : bytes;
}

type commitargs = {
  cm_file : fhandle;
  cm_offset : int;
  cm_count : int;  (** 0 = from [cm_offset] to end of file *)
}

type write3ok = {
  w3_attr : fattr;
  w3_count : int;
  w3_committed : stable_how;
      (** the stability actually achieved (may exceed the request) *)
  w3_verf : int;  (** the server's per-boot write verifier *)
}

type commitok = { cmo_attr : fattr; cmo_verf : int }

type call =
  | Null
  | Getattr of fhandle
  | Setattr of fhandle * sattr
  | Lookup of diropargs
  | Readlink of fhandle
  | Read of readargs
  | Write of writeargs
  | Create of createargs
  | Remove of diropargs
  | Rename of renameargs
  | Link of linkargs
  | Symlink of symlinkargs
  | Mkdir of createargs
  | Rmdir of diropargs
  | Readdir of readdirargs
  | Statfs of fhandle
  | Readdirlook of readdirargs
  | Getlease of leaseargs
  | Write3 of write3args
  | Commit of commitargs

type reply =
  | Rnull
  | Rattr of (fattr, stat) result  (** getattr, setattr, write *)
  | Rdirop of (fhandle * fattr, stat) result  (** lookup, create, mkdir *)
  | Rreadlink of (string, stat) result
  | Rread of (fattr * bytes, stat) result
  | Rstat of stat  (** remove, rename, link, symlink, rmdir *)
  | Rreaddir of (entry list * bool, stat) result
  | Rstatfs of (statfsok, stat) result
  | Rreaddirlook of (lookent list * bool, stat) result
  | Rlease of (leaseok option, stat) result
      (** [Ok None] = vacate: the lease is contested and will not be
          renewed; flush and stop caching *)
  | Rwrite3 of (write3ok, stat) result
  | Rcommit of (commitok, stat) result

val proc_of_call : call -> int
val proc_name : int -> string
(** e.g. "read", "lookup"; "proc18" for unknown numbers. *)

val is_idempotent : int -> bool
(** Getattr/lookup/read-style procedures may be repeated harmlessly;
    remove/create/rename-style ones may not [Juszczak89]. *)

val classify : int -> [ `Big | `Small ]
(** The paper's split: Read, Write and Readdir are [`Big] (high-variance
    RTT, RTO [A+4D]); everything else is [`Small]. *)

val encode_call :
  ?ctr:Renofs_mbuf.Mbuf.Counters.t -> Renofs_xdr.Xdr.Enc.t -> call -> unit

val decode_call : proc:int -> Renofs_xdr.Xdr.Dec.t -> call
(** Raises [Xdr.Decode_error] on malformed input or unknown [proc]. *)

val encode_reply :
  ?ctr:Renofs_mbuf.Mbuf.Counters.t -> Renofs_xdr.Xdr.Enc.t -> reply -> unit

val decode_reply : proc:int -> Renofs_xdr.Xdr.Dec.t -> reply
