module Node = Renofs_net.Node
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module Mountd = Renofs_core.Mountd

type policy = Round_robin | Hash | Least_loaded

let policy_name = function
  | Round_robin -> "round-robin"
  | Hash -> "hash"
  | Least_loaded -> "least-loaded"

let policy_of_name = function
  | "round-robin" | "rr" -> Round_robin
  | "hash" -> Hash
  | "least-loaded" | "ll" -> Least_loaded
  | other -> invalid_arg ("Fleet.policy_of_name: unknown policy " ^ other)

module Shard_map = struct
  type t = {
    policy : policy;
    seed : int;
    n_servers : int;
    table : (string, int) Hashtbl.t;
    loads : int array;
    mutable next_rr : int;
  }

  let create ?(seed = 0) policy ~servers =
    if servers < 1 then
      invalid_arg "Fleet.Shard_map.create: needs at least one server";
    {
      policy;
      seed;
      n_servers = servers;
      table = Hashtbl.create 64;
      loads = Array.make servers 0;
      next_rr = 0;
    }

  let n_servers t = t.n_servers
  let policy t = t.policy

  (* FNV-1a, then a murmur-style avalanche: FNV alone leaves the low
     bits of near-sequential names like "/home0".."/home99" correlated
     enough to skew [mod n_servers] past the fleet balance bound. *)
  let hash_name seed s =
    let mask = 0x3FFFFFFF in
    let h = ref ((0x811c9dc5 lxor (seed * 0x9e3779b9)) land mask) in
    String.iter
      (fun c -> h := (!h lxor Char.code c) * 0x01000193 land mask)
      s;
    let h = !h in
    let h = (h lxor (h lsr 16)) * 0x7feb352d land mask in
    let h = (h lxor (h lsr 15)) * 0x846ca68b land mask in
    h lxor (h lsr 16)

  let least_loaded t =
    let best = ref 0 in
    Array.iteri (fun i l -> if l < t.loads.(!best) then best := i) t.loads;
    !best

  let assign t shard =
    match Hashtbl.find_opt t.table shard with
    | Some i -> i
    | None ->
        let i =
          match t.policy with
          | Round_robin ->
              let i = t.next_rr mod t.n_servers in
              t.next_rr <- t.next_rr + 1;
              i
          | Hash ->
              (* Two-choice hashing: a single hash leaves a ~1.3
                 max/mean skew at 100 shards over 4 servers; taking
                 the lighter-loaded of two hash-picked candidates
                 keeps it within a shard or two of perfect. *)
              let c1 = hash_name t.seed shard mod t.n_servers in
              let c2 = hash_name (t.seed + 0x5bd1) shard mod t.n_servers in
              if t.loads.(c1) <= t.loads.(c2) then c1 else c2
          | Least_loaded -> least_loaded t
        in
        Hashtbl.replace t.table shard i;
        t.loads.(i) <- t.loads.(i) + 1;
        i

  let find t shard = Hashtbl.find_opt t.table shard
  let loads t = Array.copy t.loads

  let assignments t =
    Hashtbl.fold (fun shard i acc -> (shard, i) :: acc) t.table []
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)
(* Fleet worlds                                                       *)
(* ------------------------------------------------------------------ *)

type member = {
  m_server : Nfs_server.t;
  m_mountd : Mountd.t;
  m_udp : Udp.stack;
}

type t = {
  members : member array;
  map : Shard_map.t;
  shards : string list;
}

let shard_name i = Printf.sprintf "/home%d" i

let create ?profile ?(policy = Hash) ?(seed = 0) ~shards nodes =
  if nodes = [] then invalid_arg "Fleet.create: needs at least one server node";
  if shards < 1 then invalid_arg "Fleet.create: needs at least one shard";
  let members =
    List.map
      (fun node ->
        let udp = Udp.install node in
        let srv =
          match profile with
          | Some profile -> Nfs_server.create node ~profile ~udp ()
          | None -> Nfs_server.create node ~udp ()
        in
        Nfs_server.start srv;
        { m_server = srv; m_mountd = Mountd.start srv; m_udp = udp })
      nodes
  in
  let members = Array.of_list members in
  let map = Shard_map.create ~seed policy ~servers:(Array.length members) in
  { members; map; shards = List.init shards shard_name }

let shards t = t.shards
let shard_map t = t.map
let servers t = Array.to_list t.members |> List.map (fun m -> m.m_server)

let server_of_shard t shard =
  t.members.(Shard_map.assign t.map shard).m_server

let provision t =
  List.iter
    (fun shard ->
      let srv = server_of_shard t shard in
      let fs = Nfs_server.fs srv in
      let name =
        match
          String.split_on_char '/' shard |> List.filter (fun c -> c <> "")
        with
        | [ name ] -> name
        | _ -> invalid_arg "Fleet.provision: shards are single-component paths"
      in
      (* World-writable like the export root itself: clients present
         non-root AUTH_UNIX credentials and must be able to populate
         their shard. *)
      ignore
        (Renofs_vfs.Fs.mkdir fs ~dir:(Renofs_vfs.Fs.root fs) name ~mode:0o777 ()))
    t.shards

let iter_shards t f =
  List.iter (fun shard -> f ~shard ~server:(server_of_shard t shard)) t.shards

let mount_shard t ~udp ?tcp ~shard opts =
  let srv = server_of_shard t shard in
  Nfs_client.mount_path ~udp ?tcp
    ~server:(Node.id (Nfs_server.node srv))
    ~path:shard opts

let total_served t =
  Array.fold_left (fun acc m -> acc + Nfs_server.rpcs_served m.m_server) 0
    t.members

let balance t =
  let n = Array.length t.members in
  let served =
    Array.map (fun m -> float_of_int (Nfs_server.rpcs_served m.m_server)) t.members
  in
  let total = Array.fold_left ( +. ) 0.0 served in
  if total <= 0.0 then 1.0
  else
    let mean = total /. float_of_int n in
    Array.fold_left Float.max 0.0 served /. mean
