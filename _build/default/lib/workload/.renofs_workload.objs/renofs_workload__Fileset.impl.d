lib/workload/fileset.ml: Bytes Char Hashtbl List Printf Renofs_core Renofs_vfs String
