(** Unidirectional links with serialization, propagation delay, a
    drop-tail output queue and optional random loss.

    One link direction transmits a single packet at a time at its
    bandwidth; a full queue drops arriving packets (the congestion signal
    everything in Section 4 reacts to). *)

type stats = {
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable queue_drops : int;
  mutable error_drops : int;
}

type t

val create :
  Renofs_engine.Sim.t ->
  name:string ->
  bandwidth_bps:float ->
  delay:float ->
  queue_limit:int ->
  ?loss:float ->
  ?owner:int ->
  rng:Renofs_engine.Rng.t ->
  deliver:(Packet.t -> unit) ->
  unit ->
  t
(** [loss] is a per-packet random corruption probability applied at the
    receiving end (default 0).  [owner] is the transmitting node's id,
    recorded on trace events (default -1). *)

val set_trace : t -> Renofs_trace.Trace.t option -> unit
(** Attach (or detach) a trace sink.  With a sink, the link records
    [Pkt_enqueue] / [Pkt_deliver] for every packet except background
    discard-port cross-traffic, and [Pkt_drop] for every drop. *)

val send : t -> Packet.t -> unit
(** Enqueue for transmission; silently dropped (and counted) if the queue
    holds [queue_limit] packets. *)

val name : t -> string
val queue_length : t -> int
(** Packets waiting, excluding the one in transmission. *)

val stats : t -> stats

(** {2 Fault-injection hooks}

    Used by [Renofs_fault] to apply loss bursts and link flaps at
    simulated times; harmless to call by hand. *)

val loss : t -> float
val set_loss : t -> float -> unit
(** Change the per-packet corruption probability (clamped to [0..1]);
    applies to packets whose transmission completes after the call. *)

val is_up : t -> bool
val set_up : t -> bool -> unit
(** A downed link drops every newly offered packet (counted as an error
    drop, traced as [Link_down]); packets already queued or in flight
    still deliver.  Links start up. *)

val utilization : t -> float
(** Fraction of time spent transmitting since creation. *)

val busy_time : t -> float
(** Cumulative transmission seconds — a counter; sampled periodically
    and differentiated, it yields the utilization over each window. *)
