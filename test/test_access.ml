(* AUTH_UNIX permission enforcement on the server: the classic Unix
   mode-bit matrix applied to each NFS procedure. *)

open Renofs_core
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Fs = Renofs_vfs.Fs
module P = Nfs_proto

let make_world () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Net.Topology.client in
  let ctcp = Tcp.install topo.Net.Topology.client in
  (sim, topo, server, cudp, ctcp)

let run sim body =
  let result = ref None in
  Proc.spawn sim (fun () -> result := Some (body ()));
  Sim.run ~until:3600.0 sim;
  match !result with Some r -> r | None -> Alcotest.fail "never finished"

let mount_as (topo, server, cudp, ctcp) ~uid ~gid =
  Nfs_client.mount ~udp:cudp ~tcp:ctcp
    ~server:(Net.Topology.server_id topo)
    ~root:(Nfs_server.root_fhandle server)
    { Nfs_client.reno_mount with Nfs_client.uid; gid }

let expect_acces f =
  match f () with
  | exception Nfs_client.Nfs_error P.NFSERR_ACCES -> ()
  | exception Nfs_client.Nfs_error st ->
      Alcotest.failf "wrong error %d" (Obj.magic st : int)
  | _ -> Alcotest.fail "expected EACCES"

let test_owner_can_other_cannot_write () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let alice = mount_as w ~uid:100 ~gid:10 in
      let bob = mount_as w ~uid:200 ~gid:20 in
      (* Alice creates a 0644 file: she can write, Bob cannot. *)
      let fd = Nfs_client.create alice "alice.txt" in
      Nfs_client.write alice fd ~off:0 (Bytes.of_string "mine");
      Nfs_client.close alice fd;
      let fdb = Nfs_client.open_ bob "alice.txt" in
      Alcotest.(check string) "bob can read 0644" "mine"
        (Bytes.to_string (Nfs_client.read bob fdb ~off:0 ~len:10));
      expect_acces (fun () ->
          Nfs_client.write bob fdb ~off:0 (Bytes.of_string "hijack");
          (* write-through the denial *)
          Nfs_client.fsync bob fdb))

let test_mode_0600_hides_from_others () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let alice = mount_as w ~uid:100 ~gid:10 in
      let bob = mount_as w ~uid:200 ~gid:20 in
      (* Create via the server FS directly with a private mode. *)
      let fs = Nfs_server.fs server in
      let v =
        Fs.create_file fs ~dir:(Fs.root fs) "secret" ~mode:0o600 ~uid:100 ~gid:10 ()
      in
      Fs.write fs v ~off:0 (Bytes.of_string "classified");
      (* Owner reads fine. *)
      let fda = Nfs_client.open_ alice "secret" in
      Alcotest.(check string) "owner reads" "classified"
        (Bytes.to_string (Nfs_client.read alice fda ~off:0 ~len:20));
      (* Other is denied. *)
      expect_acces (fun () ->
          let fdb = Nfs_client.open_ bob "secret" in
          ignore (Nfs_client.read bob fdb ~off:0 ~len:20)))

let test_group_read () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let groupmate = mount_as w ~uid:300 ~gid:10 in
      let outsider = mount_as w ~uid:400 ~gid:40 in
      let fs = Nfs_server.fs server in
      let v =
        Fs.create_file fs ~dir:(Fs.root fs) "team" ~mode:0o640 ~uid:100 ~gid:10 ()
      in
      Fs.write fs v ~off:0 (Bytes.of_string "team data");
      let fd = Nfs_client.open_ groupmate "team" in
      Alcotest.(check string) "group member reads 0640" "team data"
        (Bytes.to_string (Nfs_client.read groupmate fd ~off:0 ~len:20));
      expect_acces (fun () ->
          let fd = Nfs_client.open_ outsider "team" in
          ignore (Nfs_client.read outsider fd ~off:0 ~len:20)))

let test_root_bypasses () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let root_mount = mount_as w ~uid:0 ~gid:0 in
      let fs = Nfs_server.fs server in
      let v =
        Fs.create_file fs ~dir:(Fs.root fs) "locked" ~mode:0o000 ~uid:500 ~gid:50 ()
      in
      Fs.write fs v ~off:0 (Bytes.of_string "root sees all");
      let fd = Nfs_client.open_ root_mount "locked" in
      Alcotest.(check string) "uid 0 reads mode 000" "root sees all"
        (Bytes.to_string (Nfs_client.read root_mount fd ~off:0 ~len:20)))

let test_unwritable_directory () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let bob = mount_as w ~uid:200 ~gid:20 in
      let fs = Nfs_server.fs server in
      let _ = Fs.mkdir fs ~dir:(Fs.root fs) "readonly" ~mode:0o755 ~uid:100 ~gid:10 () in
      expect_acces (fun () -> ignore (Nfs_client.create bob "readonly/new"));
      expect_acces (fun () -> Nfs_client.mkdir bob "readonly/sub"))

let test_unsearchable_directory_blocks_lookup () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let bob = mount_as w ~uid:200 ~gid:20 in
      let fs = Nfs_server.fs server in
      let d = Fs.mkdir fs ~dir:(Fs.root fs) "noexec" ~mode:0o600 ~uid:100 ~gid:10 () in
      let _ = Fs.create_file fs ~dir:d "inner" ~mode:0o644 ~uid:100 ~gid:10 () in
      expect_acces (fun () -> ignore (Nfs_client.stat bob "noexec/inner")))

let test_setattr_owner_only () =
  let sim, topo, server, cudp, ctcp = make_world () in
  run sim (fun () ->
      let w = (topo, server, cudp, ctcp) in
      let alice = mount_as w ~uid:100 ~gid:10 in
      let fd = Nfs_client.create alice "own" in
      Nfs_client.write alice fd ~off:0 (Bytes.of_string "0123456789");
      Nfs_client.close alice fd;
      (* A foreign uid cannot truncate: drive Setattr through the raw
         transport of a bob mount. *)
      let bob = mount_as w ~uid:200 ~gid:20 in
      let a = Nfs_client.stat bob "own" in
      let x = Nfs_client.transport bob in
      (match
         Client_transport.call x
           (P.Setattr
              (a.P.fileid, { P.sattr_none with P.s_size = 0 }))
       with
      | P.Rattr (Error P.NFSERR_ACCES) -> ()
      | _ -> Alcotest.fail "foreign setattr allowed");
      (* The owner can. *)
      let xa = Nfs_client.transport alice in
      match
        Client_transport.call xa
          (P.Setattr (a.P.fileid, { P.sattr_none with P.s_size = 4 }))
      with
      | P.Rattr (Ok got) -> Alcotest.(check int) "truncated" 4 got.P.size
      | _ -> Alcotest.fail "owner setattr denied")

let () =
  Alcotest.run "access"
    [
      ( "permissions",
        [
          Alcotest.test_case "owner vs other write" `Quick test_owner_can_other_cannot_write;
          Alcotest.test_case "0600 private" `Quick test_mode_0600_hides_from_others;
          Alcotest.test_case "group read" `Quick test_group_read;
          Alcotest.test_case "root bypass" `Quick test_root_bypasses;
          Alcotest.test_case "unwritable dir" `Quick test_unwritable_directory;
          Alcotest.test_case "unsearchable dir" `Quick
            test_unsearchable_directory_blocks_lookup;
          Alcotest.test_case "setattr owner only" `Quick test_setattr_owner_only;
        ] );
    ]
