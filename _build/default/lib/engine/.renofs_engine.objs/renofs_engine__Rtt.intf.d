lib/engine/rtt.mli:
