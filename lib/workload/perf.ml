(* Wall-clock performance harness: how fast does the simulator itself
   run?  Everything else in this library gates *simulated* latencies;
   this module measures and gates events-per-second and RPCs-per-second
   of real time over a fixed cell set (the graph5 full sweep — the
   timer-heavy 56K WAN world whose RTO churn exercises the scheduler
   hardest), so engine speedups are earned once and then kept by
   `make perf-gate`. *)

module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Mbuf = Renofs_mbuf.Mbuf
module Node = Renofs_net.Node
module Topology = Renofs_net.Topology
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module Json = Renofs_json.Json
module Profile = Renofs_profile.Profile

type cell = {
  c_label : string;
  c_wall_s : float;
  c_events : int;
  c_rpcs : int;
}

type t = {
  cells : cell list;
  wall_s : float;
  events : int;
  rpcs : int;
  events_per_s : float;
  rpcs_per_s : float;
  p_profile : Profile.snapshot option;
}

(* The graph5 full matrix: 6 loads x 3 transports over the 56K WAN
   topology, 120 sim-seconds per cell after an 8 s warmup — the same
   cells `nfsbench run graph5 -f` measures, rebuilt here without trace
   or metrics sinks so the gate times the detached fast path. *)
let loads = [ 4.0; 8.0; 12.0; 14.0; 16.0; 18.0 ]
let transports = [ ("udp-fixed", `Udp_fixed); ("udp-dyn", `Udp_dynamic); ("tcp", `Tcp) ]
let duration = 120.0
let warmup = 8.0

let fileset =
  Fileset.generate ~dirs:20 ~files_per_dir:20 ~file_size:16384 ~long_names:true

let mount_opts transport =
  let base =
    match transport with
    | `Udp_fixed -> Nfs_client.reno_mount
    | `Udp_dynamic -> Nfs_client.reno_dynamic_mount
    | `Tcp -> Nfs_client.reno_tcp_mount
  in
  { base with Nfs_client.mss = 512 }

let run_cell ?profile ~label ~transport ~rate () =
  let sim = Sim.create () in
  (match profile with
  | Some p -> Sim.set_probe sim (Some (Profile.probe p))
  | None -> ());
  let topo =
    Topology.build sim
      {
        Topology.shape = Topology.shape_of_name "wan";
        clients = 1;
        params = Topology.default_params;
      }
  in
  (* No trace or metrics (the detached fast path), but a shared mbuf
     pool, exactly as [Experiments.make_world] wires production cells. *)
  let obs = { Node.detached with pool = Some (Mbuf.Pool.create ()) } in
  List.iter (fun n -> Node.attach n obs) topo.Topology.all;
  let sudp = Udp.install topo.Topology.server in
  let stcp = Tcp.install topo.Topology.server in
  let server =
    Nfs_server.create topo.Topology.server ~profile:Nfs_server.reno_profile
      ~udp:sudp ~tcp:stcp ()
  in
  Nfs_server.start server;
  let cudp = Udp.install topo.Topology.client in
  let ctcp = Tcp.install topo.Topology.client in
  let finished = ref false in
  Proc.spawn sim (fun () ->
      Fileset.preload_server server fileset;
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp
          ~server:(Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          (mount_opts transport)
      in
      ignore
        (Nhfsstone.run m fileset
           {
             Nhfsstone.rate;
             duration = warmup;
             children = 4;
             mix = Nhfsstone.lookup_mix;
             seed = 43;
           });
      ignore
        (Nhfsstone.run m fileset
           {
             Nhfsstone.rate;
             duration;
             children = 4;
             mix = Nhfsstone.lookup_mix;
             seed = 42;
           });
      finished := true);
  let guard = ref 0 in
  while not !finished do
    incr guard;
    if !guard > 100_000 then failwith (label ^ ": perf cell never finished");
    Sim.run ~until:(Sim.now sim +. 100.0) sim
  done;
  (Sim.events_processed sim, Nfs_server.rpcs_served server)

let run ?(progress = ignore) ?(profile = false) () =
  let cells =
    List.concat_map
      (fun rate ->
        List.map
          (fun (tname, transport) ->
            let label = Printf.sprintf "graph5/load%g/%s" rate tname in
            progress label;
            let t0 = Unix.gettimeofday () in
            let events, rpcs = run_cell ~label ~transport ~rate () in
            { c_label = label; c_wall_s = Unix.gettimeofday () -. t0; c_events = events; c_rpcs = rpcs })
          transports)
      loads
  in
  (* The gate timings above run detached.  Attribution comes from a
     second, probed pass over the same cells — it never pollutes the
     rates the baseline compares. *)
  let p_profile =
    if not profile then None
    else begin
      let p = Profile.create () in
      List.iter
        (fun rate ->
          List.iter
            (fun (tname, transport) ->
              let label = Printf.sprintf "graph5/load%g/%s+prof" rate tname in
              progress label;
              Profile.start p;
              ignore (run_cell ~profile:p ~label ~transport ~rate ());
              Profile.stop p)
            transports)
        loads;
      Some (Profile.snapshot p)
    end
  in
  let wall_s = List.fold_left (fun a c -> a +. c.c_wall_s) 0.0 cells in
  let events = List.fold_left (fun a c -> a + c.c_events) 0 cells in
  let rpcs = List.fold_left (fun a c -> a + c.c_rpcs) 0 cells in
  {
    cells;
    wall_s;
    events;
    rpcs;
    events_per_s = (if wall_s > 0.0 then float_of_int events /. wall_s else 0.0);
    rpcs_per_s = (if wall_s > 0.0 then float_of_int rpcs /. wall_s else 0.0);
    p_profile;
  }

(* ------------------------------------------------------------------ *)
(* renofs-perf/1 JSON                                                 *)
(* ------------------------------------------------------------------ *)

(* Shortest round-tripping float, as Bench_json prints measurements. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string (Printf.sprintf "%.6g" f) = f then Printf.sprintf "%.6g" f
  else s

let emit r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"renofs-perf/1\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "\"wall_s\":%s,\"events\":%d,\"rpcs\":%d,\"events_per_s\":%s,\"rpcs_per_s\":%s,\n"
       (float_str r.wall_s) r.events r.rpcs
       (float_str r.events_per_s) (float_str r.rpcs_per_s));
  Buffer.add_string b "\"cells\":[\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf "  {\"label\":%S,\"wall_s\":%s,\"events\":%d,\"rpcs\":%d}%s\n"
           c.c_label (float_str c.c_wall_s) c.c_events c.c_rpcs
           (if i = List.length r.cells - 1 then "" else ",")))
    r.cells;
  Buffer.add_string b "]";
  (match r.p_profile with
  | Some s ->
      Buffer.add_string b ",\n\"profile\":";
      Buffer.add_string b (String.trim (Profile.emit s))
  | None -> ());
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_file ~path r =
  let oc = open_out path in
  output_string oc (emit r);
  close_out oc

let of_json ~ctx j =
  let o = Json.obj ~ctx j in
  (match Json.str ~ctx (Json.member ~ctx "schema" o) with
  | "renofs-perf/1" -> ()
  | s -> raise (Json.Bad (Printf.sprintf "%s: unsupported schema %S" ctx s)));
  let num name = Json.num ~ctx (Json.member ~ctx name o) in
  let cells =
    List.map
      (fun cj ->
        let co = Json.obj ~ctx cj in
        let cnum name = Json.num ~ctx (Json.member ~ctx name co) in
        {
          c_label = Json.str ~ctx (Json.member ~ctx "label" co);
          c_wall_s = cnum "wall_s";
          c_events = int_of_float (cnum "events");
          c_rpcs = int_of_float (cnum "rpcs");
        })
      (Json.arr ~ctx (Json.member ~ctx "cells" o))
  in
  let p_profile =
    Option.map
      (Profile.of_json ~ctx:(ctx ^ ".profile"))
      (Json.member_opt "profile" o)
  in
  {
    cells;
    wall_s = num "wall_s";
    events = int_of_float (num "events");
    rpcs = int_of_float (num "rpcs");
    events_per_s = num "events_per_s";
    rpcs_per_s = num "rpcs_per_s";
    p_profile;
  }

let read_file path = Json.decode_file path (of_json ~ctx:path)

(* The gate: wall-clock throughput may wobble with container noise, so
   only a large drop (default 30%) in either rate counts as a
   regression.  Simulated-event and RPC *counts* are deterministic and
   compared exactly — a count drift means the workload changed and the
   baseline needs a deliberate refresh, not that the machine was slow. *)
type verdict = {
  regressions : string list;
  notes : string list;
}

let diff ~tolerance ~baseline ~current =
  let regressions = ref [] and notes = ref [] in
  let rate name old_v new_v =
    if old_v > 0.0 then begin
      let change = (new_v -. old_v) /. old_v *. 100.0 in
      if new_v < old_v *. (1.0 -. tolerance) then
        regressions :=
          Printf.sprintf "%s: %.0f -> %.0f (%+.1f%%, beyond -%.0f%%)" name old_v
            new_v change (tolerance *. 100.0)
          :: !regressions
      else
        notes := Printf.sprintf "%s: %.0f -> %.0f (%+.1f%%)" name old_v new_v change :: !notes
    end
  in
  rate "events/s" baseline.events_per_s current.events_per_s;
  rate "rpcs/s" baseline.rpcs_per_s current.rpcs_per_s;
  if baseline.events <> current.events then
    notes :=
      Printf.sprintf
        "event count changed: %d -> %d (simulation behavior changed; refresh \
         the baseline deliberately)"
        baseline.events current.events
      :: !notes;
  if baseline.rpcs <> current.rpcs then
    notes :=
      Printf.sprintf "rpc count changed: %d -> %d" baseline.rpcs current.rpcs
      :: !notes;
  (* Per-cell localization: which cell moved?  Cells are matched by
     label; a single cell's wall clock is far noisier than the
     aggregate, so beyond-tolerance cells are reported as notes — the
     aggregate rates above remain the gate. *)
  List.iter
    (fun bc ->
      match List.find_opt (fun c -> c.c_label = bc.c_label) current.cells with
      | None -> notes := Printf.sprintf "cell %s: gone" bc.c_label :: !notes
      | Some cc ->
          if bc.c_events <> cc.c_events then
            notes :=
              Printf.sprintf "cell %s: event count %d -> %d" bc.c_label
                bc.c_events cc.c_events
              :: !notes;
          let b_rate =
            if bc.c_wall_s > 0.0 then float_of_int bc.c_events /. bc.c_wall_s
            else 0.0
          and c_rate =
            if cc.c_wall_s > 0.0 then float_of_int cc.c_events /. cc.c_wall_s
            else 0.0
          in
          if b_rate > 0.0 && c_rate < b_rate *. (1.0 -. tolerance) then
            notes :=
              Printf.sprintf "cell %s: events/s %.0f -> %.0f (%+.1f%%)"
                bc.c_label b_rate c_rate
                ((c_rate -. b_rate) /. b_rate *. 100.0)
              :: !notes)
    baseline.cells;
  List.iter
    (fun (cc : cell) ->
      if not (List.exists (fun bc -> bc.c_label = cc.c_label) baseline.cells)
      then notes := Printf.sprintf "cell %s: new" cc.c_label :: !notes)
    current.cells;
  (* When both sides carry a self-profile, report subsystem-share
     shifts: "events/s fell and the server slot's share doubled" is a
     lead, not just a number that moved. *)
  (match (baseline.p_profile, current.p_profile) with
  | Some bp, Some cp when bp.Profile.p_wall_s > 0.0 && cp.Profile.p_wall_s > 0.0
    ->
      List.iter
        (fun (bs : Profile.slot_stat) ->
          match
            List.find_opt
              (fun (cs : Profile.slot_stat) ->
                cs.Profile.ss_name = bs.Profile.ss_name)
              cp.Profile.p_slots
          with
          | None -> ()
          | Some cs ->
              let b_share = bs.Profile.ss_self_s /. bp.Profile.p_wall_s
              and c_share = cs.Profile.ss_self_s /. cp.Profile.p_wall_s in
              if abs_float (c_share -. b_share) > 0.05 then
                notes :=
                  Printf.sprintf "profile: %s share %.1f%% -> %.1f%%"
                    bs.Profile.ss_name (b_share *. 100.0) (c_share *. 100.0)
                  :: !notes)
        bp.Profile.p_slots
  | _ -> ());
  { regressions = List.rev !regressions; notes = List.rev !notes }
