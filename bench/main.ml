(* The benchmark harness.

   Two parts:

   1. Regenerate every table and figure from the paper and print it —
      the rows/series a reader would compare against the original.
      Scale defaults to Quick; set RENOFS_BENCH_SCALE=full for the long
      sweeps recorded in EXPERIMENTS.md.  RENOFS_BENCH_JOBS=N runs the
      experiment cells across N domains (default: recommended domain
      count); the output is identical either way.

   2. A Bechamel suite with one Test.make per paper artifact (how much
      wall time one Quick regeneration costs) plus microbenchmarks of
      the substrate hot paths (XDR encode, checksum, fragmentation,
      event loop).

     dune exec bench/main.exe *)

open Bechamel
open Toolkit
module E = Renofs_workload.Experiments
module Mbuf = Renofs_mbuf.Mbuf
module Xdr = Renofs_xdr.Xdr
module Packet = Renofs_net.Packet
module Sim = Renofs_engine.Sim

let scale =
  match Sys.getenv_opt "RENOFS_BENCH_SCALE" with
  | Some ("full" | "FULL") -> E.Full
  | _ -> E.Quick

let jobs =
  match Option.bind (Sys.getenv_opt "RENOFS_BENCH_JOBS") int_of_string_opt with
  | Some j when j >= 1 ->
      let recommended = Renofs_workload.Sweep.default_jobs () in
      if j > recommended then
        Format.eprintf
          "bench: RENOFS_BENCH_JOBS=%d exceeds this machine's %d recommended \
           domains; running oversubscribed@."
          j recommended;
      j
  | _ -> Renofs_workload.Sweep.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate every artifact                                   *)
(* ------------------------------------------------------------------ *)

let regenerate () =
  Format.printf "=== Regenerating all paper artifacts (%s scale, %d jobs) ===@.@."
    (match scale with E.Quick -> "quick" | E.Full -> "full")
    jobs;
  let t0 = Unix.gettimeofday () in
  (* One pooled sweep across every experiment's cells, so domains stay
     busy even while the short experiments drain. *)
  let results = E.run_specs ~jobs (List.map (fun (_, mk) -> mk scale) E.specs) in
  List.iter
    (fun r ->
      let table = E.render r in
      E.print_table Format.std_formatter table;
      match Renofs_workload.Ascii_plot.render_table table with
      | Some chart
        when String.length table.E.id >= 5 && String.sub table.E.id 0 5 = "graph"
        ->
          Format.printf "%s@." chart
      | _ -> ())
    results;
  Format.printf "(all %d artifacts regenerated in %.1fs wall)@.@."
    (List.length results)
    (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel                                                    *)
(* ------------------------------------------------------------------ *)

let experiment_tests =
  (* One Test.make per table/figure: cost of a serial Quick regeneration. *)
  List.map
    (fun (id, mk) ->
      Test.make ~name:id
        (Staged.stage (fun () ->
             ignore (E.render (E.run_spec ~jobs:1 (mk E.Quick))))))
    E.specs

let micro_tests =
  let payload = Bytes.create 8192 in
  [
    Test.make ~name:"mbuf-chain-8K"
      (Staged.stage (fun () -> ignore (Mbuf.of_bytes payload)));
    Test.make ~name:"checksum-8K"
      (let chain = Mbuf.of_bytes payload in
       Staged.stage (fun () -> ignore (Mbuf.checksum chain)));
    Test.make ~name:"xdr-encode-write-rpc"
      (Staged.stage (fun () ->
           let enc = Xdr.Enc.create () in
           Xdr.Enc.int enc 8192;
           Xdr.Enc.string enc "somefile";
           Xdr.Enc.opaque enc payload;
           ignore (Xdr.Enc.chain enc)));
    Test.make ~name:"fragment-8K-ethernet"
      (Staged.stage (fun () ->
           let p =
             Packet.make_datagram ~proto:Packet.Udp ~src:1 ~dst:2 ~src_port:1
               ~dst_port:2049 ~ip_id:1 (Mbuf.of_bytes payload)
           in
           ignore (Packet.fragment p ~mtu:1500)));
    Test.make ~name:"sim-10k-events"
      (Staged.stage (fun () ->
           let sim = Sim.create () in
           for i = 1 to 10_000 do
             Sim.at sim (float_of_int i) ignore
           done;
           Sim.run sim));
  ]

let run_bechamel tests =
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"renofs" tests)
  in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, result) ->
      let short =
        match String.index_opt name '/' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "  %-28s %14.0f ns/run@." short est
      | _ -> Format.printf "  %-28s (no estimate)@." short)
    rows

let () =
  regenerate ();
  Format.printf "=== Bechamel: per-artifact regeneration cost ===@.";
  run_bechamel experiment_tests;
  Format.printf "@.=== Bechamel: substrate microbenchmarks ===@.";
  run_bechamel micro_tests
