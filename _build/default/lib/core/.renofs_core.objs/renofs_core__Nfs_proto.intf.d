lib/core/nfs_proto.mli: Renofs_mbuf Renofs_xdr
