(** Declarative fault schedules and trace-driven recovery invariants.

    A {!schedule} is a named timeline of {!action}s — server crashes,
    link flaps, loss bursts, CPU slowdowns, partitions — that
    {!install} compiles onto {!Renofs_engine.Sim} timers against any
    built world, applying each action through the existing
    [Nfs_server] / [Link] / [Cpu] hooks.  Any experiment cell can
    therefore run under any schedule ("the stateless server concept was
    used so that crash recovery is trivial" — this is the layer that
    puts the claim under test).

    {!Check} consumes the run's [Renofs_trace] stream afterwards and
    delivers verdicts on the recovery invariants the paper's design
    implies; {!Check.check_all} lists them. *)

(** {1 Schedules} *)

type mangle_spec = {
  at : float;
  duration : float;
  link : string;  (** link base, full direction name, or ["*"] *)
  rate : float;  (** per-packet probability, clamped to [0..1] *)
  seed : int;
      (** mixed with the link name into the mangler's RNG stream; two
          schedules differing only in [seed] damage different packets *)
}
(** Parameters shared by the four wire-mangling actions. *)

type action =
  | Server_crash of { at : float; downtime : float; server : string }
      (** Crash the matching servers at [at] (volatile state lost),
          reboot them [downtime] seconds later.  [server] is a node
          name (["server3"], one shard of a fleet) or ["*"] for every
          server in the world — what single-server schedules use. *)
  | Link_down of { at : float; duration : float; link : string }
      (** Administratively down the matching links for [duration].
          [link] names a link base (["eth0"], matching both
          directions), a full direction name (["eth0:client>server"]),
          or ["*"] for every link in the world. *)
  | Loss_burst of { at : float; duration : float; link : string; loss : float }
      (** Raise the matching links' per-packet corruption probability
          to [loss] for [duration], then restore each link's previous
          value. *)
  | Cpu_slow of { at : float; duration : float; node : string; factor : float }
      (** Multiply the named node's CPU work by [factor] for
          [duration]. *)
  | Partition of { at : float; duration : float; between : string * string }
      (** Down every link direction directly joining the two named
          nodes, in both directions, for [duration]. *)
  | Corrupt of mangle_spec
      (** Flip one random bit in [rate] of the packets crossing the
          matching links — delivered damaged, not dropped, so only an
          end-to-end checksum can tell.  The Sun "checksums off"
          corruption story from the paper's Section 9 reproduces as a
          data-integrity violation when UDP checksums are disabled. *)
  | Truncate of mangle_spec
      (** Cut a random-length tail off [rate] of the packets. *)
  | Duplicate of mangle_spec
      (** Deliver an extra copy of [rate] of the packets shortly after
          the original. *)
  | Reorder of mangle_spec
      (** Delay [rate] of the packets past their successors. *)

type schedule = { name : string; description : string; actions : action list }

val describe : action -> string
(** Human-readable one-liner, also recorded as the [Fault_inject] trace
    event when the action fires. *)

val builtins : schedule list
(** The schedules [nfsbench faults] lists and the chaos experiment
    family runs: crash, flaky, flap, slow-server, garble, partition. *)

val find_builtin : string -> schedule option

(** {1 JSON schedule files}

    Schema ["renofs-fault/1"]:

    {v
    { "schema": "renofs-fault/1",
      "name": "crash",
      "description": "server crashes at t=4s, reboots 3s later",
      "actions": [
        { "kind": "server_crash", "at": 4.0, "downtime": 3.0 },
        { "kind": "link_down",    "at": 3.0, "duration": 0.5, "link": "eth0" },
        { "kind": "loss_burst",   "at": 2.0, "duration": 6.0, "link": "*",
          "loss": 0.05 },
        { "kind": "cpu_slow",     "at": 2.0, "duration": 6.0, "node": "server",
          "factor": 8.0 },
        { "kind": "partition",    "at": 3.0, "duration": 2.0,
          "between": ["router1", "router2"] },
        { "kind": "corrupt",      "at": 1.0, "duration": 8.0, "link": "*",
          "rate": 0.01, "seed": 7 } ] }
    v}

    The mangling kinds [corrupt], [truncate], [duplicate] and [reorder]
    share the same fields; ["seed"] is optional and defaults to [0].
    [server_crash] takes an optional ["server"] node name (default
    ["*"], every server) to crash one shard of a fleet. *)

val action_of_json : Renofs_json.Json.json -> action
(** One action object (the elements of a schedule's ["actions"] array);
    raises {!Renofs_json.Json.Bad} on shape errors.  Exposed so other
    schemas embedding fault actions (e.g. [renofs-scenario/1]) decode
    them identically. *)

val of_json : Renofs_json.Json.json -> (schedule, string) result
val parse : string -> (schedule, string) result
val load_file : string -> (schedule, string) result

val resolve : string -> (schedule, string) result
(** A builtin name if one matches, otherwise a schedule file path. *)

(** {1 Installation} *)

type env = {
  sim : Renofs_engine.Sim.t;
  nodes : Renofs_net.Node.t list;  (** link/node name lookups *)
  servers : Renofs_core.Nfs_server.t list;
      (** crash targets — one for the paper worlds, N for a fleet *)
  trace : Renofs_trace.Trace.t option;  (** [Fault_inject] sink *)
}

val install : env -> schedule -> unit
(** Compile every action onto sim timers, with action times relative
    to the sim clock at installation (so a schedule installed after a
    warmup phase perturbs the measured run, not the warmup).  Actions
    referencing names absent from the world apply to nothing (and
    still record [Fault_inject]). *)

(** {1 Invariant checking} *)

module Check : sig
  type verdict = { v_name : string; v_ok : bool; v_detail : string }

  val durable_writes :
    ?read_back:(file:int -> off:int -> len:int -> bytes option) ->
    Renofs_trace.Trace.record_ list ->
    verdict
  (** Every acknowledged WRITE ([Write_committed]) must still be
      readable afterwards: writes not overlapped by a later write to
      the same file must digest-match what [read_back] returns from the
      post-run file system.  Without [read_back] the verdict passes
      vacuously, saying so in the detail. *)

  val committed_durable :
    ?read_back:(file:int -> off:int -> len:int -> bytes option) ->
    Renofs_trace.Trace.record_ list ->
    verdict
  (** The v3 verifier contract: every UNSTABLE write
      ([Write_unstable]) covered by a later acknowledged COMMIT
      ([Commit_ok]) {e under the same write verifier} must survive —
      its extent (when no later write supersedes it) must digest-match
      what [read_back] returns.  Unstable data never covered by a
      commit may legally vanish (the client's write-behind ledger is
      then obliged to rewrite it), and a verifier change between write
      and commit leaves the write uncovered by construction.  A server
      that acknowledges COMMIT without flushing is convicted here.
      Without [read_back] the verdict passes vacuously, saying so in
      the detail. *)

  val data_integrity :
    expected:(int * int * bytes) list ->
    read_back:(file:int -> off:int -> len:int -> bytes option) ->
    verdict
  (** End-to-end content check against a client-side ledger: each
      [(file, off, data)] extent the workload believes it wrote must
      read back byte-identical.  Unlike {!durable_writes} — whose
      digests are recorded {e server-side} and therefore cannot see a
      request damaged on the wire — this catches silent wire corruption
      accepted by a checksum-less transport.  Not part of
      {!check_all}; the fuzz harness appends it when it has a ledger. *)

  val hard_mount_errors : Renofs_trace.Trace.record_ list -> verdict
  (** Hard mounts never surface errors: any [Wl_error] with
      [soft = false] is a violation. *)

  val no_double_effect : Renofs_trace.Trace.record_ list -> verdict
  (** With the duplicate-request cache on, no non-idempotent RPC
      (CREATE/REMOVE/RENAME) may execute twice: two [Srv_service]
      events for the same (xid, proc) with no [Srv_crash] between them
      is a violation.  A crash between them is the paper's known
      at-least-once hazard — the cache died with the server — and is
      not flagged. *)

  val no_stale_lease_reads : Renofs_trace.Trace.record_ list -> verdict
  (** No lease-backed cached read served stale while a conflicting
      write lease is live: a [Cached_read] whose [mtime] predates the
      latest [Write_committed] on the file, while another holder's
      write lease ([Lease_grant]) is unexpired (and no crash voided
      it), is a violation. *)

  val check_all :
    ?read_back:(file:int -> off:int -> len:int -> bytes option) ->
    Renofs_trace.Trace.record_ list ->
    verdict list
  (** Every invariant above except {!data_integrity} (which needs a
      client-side ledger), in declaration order.  Add invariants here,
      not in callers: {!summary} and every harness derive their counts
      from this list's length. *)

  val summary : verdict list -> string
  (** ["N/N ok"] with [N = List.length verdicts] when all pass, or
      ["FAIL:" ^ names] of the failing invariants — never a hard-coded
      count. *)

  val recovery_time : Renofs_trace.Trace.record_ list -> float
  (** Worst crash-to-first-service gap: for each [Srv_crash], the time
      until the next [Srv_service] (the first RPC actually served again
      after recovery).  [0.] when no crash occurred; the gap from an
      unrecovered crash to the end of the trace counts. *)
end
