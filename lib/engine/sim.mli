(** Discrete-event simulation core.

    A [Sim.t] owns a virtual clock and a queue of pending events ordered by
    [(time, sequence)].  All simulated activity — process wakeups, packet
    deliveries, timer expiries — is driven by this queue, which makes every
    run deterministic for a given seed.

    The queue is a calendar queue (Brown, CACM 1988): an array of
    time-bucketed sorted lists that resizes with the pending-event
    population, giving O(1) average schedule, fire and cancel for the
    timer-wheel-like distributions a network simulation produces.
    Ordering is exactly [(time, sequence)] — an event scheduled earlier
    for the same instant always fires first, at any queue size. *)

type t

val create : unit -> t
(** A fresh simulator with the clock at [0.0]. *)

val now : t -> float
(** Current virtual time in seconds. *)

val at : t -> float -> (unit -> unit) -> unit
(** [at sim time fn] runs [fn] at absolute virtual [time].  Scheduling in
    the past raises [Invalid_argument]. *)

val after : t -> float -> (unit -> unit) -> unit
(** [after sim delay fn] runs [fn] at [now sim +. delay]. *)

type timer
(** A cancellable handle for a scheduled event. *)

val timer_after : t -> float -> (unit -> unit) -> timer
(** Like {!after} but returns a handle that {!cancel} can revoke. *)

val cancel : timer -> unit
(** Revoke a timer; a no-op if it already fired or was cancelled. *)

val pending : timer -> bool
(** [true] until the timer fires or is cancelled. *)

val step : t -> bool
(** Run the single earliest event.  [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Drain the event queue.  With [~until], stop (leaving later events
    queued) once the next event is strictly past [until] and set the clock
    to [until]. *)

val events_processed : t -> int
(** Total events executed so far; useful for bounding tests. *)

val pending_events : t -> int
(** Events currently queued and not cancelled.  O(1). *)

(** {1 Self-profiling}

    A {!Probe.t} attached here is visible to every layer holding the
    sim, so instrumented sites need no extra plumbing.  When attached,
    {!run} charges queue bookkeeping to the [scheduler] slot, every
    event fire is bracketed and attributed to the slot that scheduled
    it, and {!schedule} stamps each event with the active slot.  When
    detached (the default) each hook is a single [match] branch. *)

val set_probe : t -> Probe.t option -> unit
(** Attach or detach a profiler probe. *)

val probe : t -> Probe.t option
(** The attached probe, for instrumented sites in higher layers. *)
