lib/workload/fileset.mli: Renofs_core
