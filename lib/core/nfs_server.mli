(** The NFS server: a pool of nfsd processes serving NFSv2 RPCs from a
    {!Renofs_vfs.Fs} backing store, over UDP and TCP simultaneously.

    Two cost profiles mirror the paper's comparison: the Reno profile
    decodes and builds RPCs directly in mbufs (cheap, [nfsm_build] /
    [nfsm_disect]) with vnode-chained buffer search and a server name
    cache; the reference-port profile pays an extra per-RPC toll for the
    user-level RPC/XDR library that was "ported into the kernel" (paper,
    Section 1), searches the buffer cache globally, and has no name
    cache.  A Juszczak-style duplicate request cache protects
    non-idempotent procedures from retransmitted requests. *)

type profile = {
  fs_config : Renofs_vfs.Fs.config;
  nfsd_count : int;
  duplicate_cache : bool;
  decode_instructions : float;  (** per-RPC request decode *)
  encode_instructions : float;  (** per-RPC reply build *)
  xdr_layer_instructions : float;
      (** extra per-RPC cost of the layered RPC/XDR library (0 for Reno) *)
}

val reno_profile : profile
val reference_port_profile : profile
(** The Ultrix-2.2-shaped server used in Graphs 8-9 and Tables 2-4. *)

(** {2 Config records}

    [config] is [profile] under the name shared with
    {!Renofs_core.Nfs_client.config}: a [default_config] value plus
    [with_*] derivation, so experiment- and fault-schedule-driven
    reconfiguration reads symmetrically on both ends of the wire. *)

type config = profile

val default_config : config
(** {!reno_profile}. *)

val with_fs_config : config -> Renofs_vfs.Fs.config -> config
val with_nfsd_count : config -> int -> config
val with_duplicate_cache : config -> bool -> config
val with_xdr_layer_instructions : config -> float -> config

type t

val create :
  Renofs_net.Node.t ->
  ?profile:profile ->
  udp:Renofs_transport.Udp.stack ->
  ?tcp:Renofs_transport.Tcp.stack ->
  unit ->
  t
(** Build the filesystem and bind port 2049 on the given stacks; call
    {!start} to begin serving. *)

val start : t -> unit

val fs : t -> Renofs_vfs.Fs.t
(** Direct access to the backing store, e.g. for preloading file trees. *)

val udp_stack : t -> Renofs_transport.Udp.stack
(** The stack the server answers on; {!Mountd.start} binds its port
    here. *)

val tcp_stack : t -> Renofs_transport.Tcp.stack option
(** The TCP stack, when the server was given one — e.g. to read its
    checksum-drop counter after a wire-corruption run. *)

val root_fhandle : t -> Nfs_proto.fhandle
val node : t -> Renofs_net.Node.t

val counters : t -> Renofs_engine.Stats.Counter.t
(** RPCs served, keyed by procedure name. *)

val service_times : t -> (string * float * int) list
(** nfsstat-style view: (procedure, mean service seconds, count), the
    in-server execution time excluding network and queueing. *)

val rpcs_served : t -> int
val duplicates_dropped : t -> int

val write_verf : t -> int
(** The current per-boot write verifier returned in v3 WRITE and COMMIT
    replies.  Deterministic (a fold of node id and boot count) so runs
    reproduce at any [--jobs]; changes on every {!reboot}. *)

val unstable_bytes : t -> int
(** Bytes of acknowledged UNSTABLE write data currently buffered in
    volatile memory, awaiting COMMIT.  Dies with {!crash}. *)

val set_lie_on_commit : t -> bool -> unit
(** Fault-injection hook: when set, COMMIT acknowledges (and traces
    [Commit_ok]) {e without} flushing buffered unstable data — the
    guilty server the [Fault.Check.committed_durable] invariant must
    convict.  Default false. *)

val crash_and_reboot : t -> downtime:float -> unit
(** The statelessness demonstration of Section 1: kill the server for
    [downtime] seconds and bring it back with every volatile structure
    gone — buffer cache, name cache, duplicate-request cache and lease
    table — while the synchronously-written filesystem survives.  While
    down, requests are silently dropped (clients' RPC retransmission is
    the whole recovery story).  After reboot the server observes an
    NQNFS-style grace period of one lease duration before granting new
    leases, so leases issued before the crash cannot be contradicted.
    Call from a process.  Equivalent to {!crash}, a [downtime] sleep,
    then {!reboot}. *)

val crash : t -> unit
(** The instantaneous half of {!crash_and_reboot}: mark the server down
    and discard its volatile state (traced as [Srv_crash]) — including
    the v3 unstable-write buffer, whose acknowledged-but-uncommitted
    data legally vanishes here.  Does not sleep — safe to call from a
    timer callback. *)

val reboot : t -> unit
(** Bring a crashed server back up, start the lease grace period, and
    regenerate the per-boot write verifier so v3 clients detect the
    loss of buffered data (traced as [Srv_reboot]).  A second crash
    {e during} the grace window restarts the full window from the later
    reboot — grace is never shortened by overlapping outages.  Does not
    sleep. *)

val is_up : t -> bool
