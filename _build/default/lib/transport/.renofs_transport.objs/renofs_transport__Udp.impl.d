lib/transport/udp.ml: Hashtbl Printf Queue Renofs_engine Renofs_mbuf Renofs_net
