module Sim = Renofs_engine.Sim
module Probe = Renofs_engine.Probe
module Cpu = Renofs_engine.Cpu

type kind = Reg | Dir | Lnk

type attrs = {
  kind : kind;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  ino : int;
  atime : float;
  mtime : float;
  ctime : float;
}

type err =
  | Enoent
  | Eexist
  | Enotdir
  | Eisdir
  | Enotempty
  | Estale
  | Einval
  | Efbig

exception Err of err

type config = {
  bcache_blocks : int;
  bcache_search : Bcache.search_mode;
  name_cache : bool;
  block_size : int;
  sync_data : bool;
  sync_meta : bool;
}

let reno_config =
  {
    bcache_blocks = 256;
    bcache_search = Bcache.Vnode_chained;
    name_cache = true;
    block_size = 8192;
    sync_data = true;
    sync_meta = true;
  }

let reference_port_config =
  { reno_config with bcache_search = Bcache.Global_scan; name_cache = false }

(* FFS on a local disk: synchronous metadata, delayed data. *)
let local_config = { reno_config with sync_data = false }

type file_data = { mutable bytes : Bytes.t; mutable len : int }

type dirents = {
  names : (string, int) Hashtbl.t;
  mutable order : string list; (* newest first *)
}

type body = File of file_data | Directory of dirents | Symlink of string

type vnode = {
  v_ino : int;
  mutable body : body;
  mutable mode : int;
  mutable nlink : int;
  mutable uid : int;
  mutable gid : int;
  mutable atime : float;
  mutable mtime : float;
  mutable ctime : float;
  mutable parent : int; (* directory containing this node; for dirs, ".." *)
}

type fsstat = { total_blocks : int; free_blocks : int; block_size : int }

type t = {
  sim : Sim.t;
  cpu : Cpu.t;
  disk : Disk.t;
  config : config;
  inodes : (int, vnode) Hashtbl.t;
  mutable next_ino : int;
  namecache : Namecache.t option;
  bcache : Bcache.t;
}

let max_file_size = 64 * 1024 * 1024

(* Operation CPU costs, in instructions. *)
let base_op_instr = 90.0
let getattr_instr = 110.0
let dirent_instr = 16.0
let inode_alloc_instr = 300.0

(* How many directory entries we treat as living in one cached block. *)
let dirents_per_block = 128

(* Every operation opens with a [charge], which suspends on the CPU, so
   the file-system computation proper runs in the resumed segment.  When
   probed, rebind that segment to the vfs slot: the enter is deliberately
   unmatched — the enclosing event's fire boundary truncates the stack —
   which is safe by the probe's truncation discipline and attributes the
   rest of the segment (hash lookups, bcache, byte blits) to vfs. *)
let charge t instr =
  Cpu.consume t.cpu (Cpu.seconds_of_instructions t.cpu instr);
  match Sim.probe t.sim with
  | None -> ()
  | Some p -> ignore (p.Probe.enter Probe.vfs)

let root_ino = 2

let create sim cpu disk config =
  let t =
    {
      sim;
      cpu;
      disk;
      config;
      inodes = Hashtbl.create 512;
      next_ino = root_ino + 1;
      namecache = (if config.name_cache then Some (Namecache.create ()) else None);
      bcache = Bcache.create sim cpu ~blocks:config.bcache_blocks ~search:config.bcache_search ();
    }
  in
  let now = Sim.now sim in
  let root =
    {
      v_ino = root_ino;
      body = Directory { names = Hashtbl.create 16; order = [] };
      (* Exported scratch filesystems are world-writable at the top. *)
      mode = 0o777;
      nlink = 2;
      uid = 0;
      gid = 0;
      atime = now;
      mtime = now;
      ctime = now;
      parent = root_ino;
    }
  in
  Hashtbl.replace t.inodes root_ino root;
  t

let root t = Hashtbl.find t.inodes root_ino
let ino v = v.v_ino

let vnode_by_ino t i =
  match Hashtbl.find_opt t.inodes i with
  | Some v -> v
  | None -> raise (Err Estale)

let kind_of v =
  match v.body with File _ -> Reg | Directory _ -> Dir | Symlink _ -> Lnk

let size_of v =
  match v.body with
  | File f -> f.len
  | Directory d -> Hashtbl.length d.names * 64
  | Symlink s -> String.length s

let attrs_of v =
  {
    kind = kind_of v;
    mode = v.mode;
    nlink = v.nlink;
    uid = v.uid;
    gid = v.gid;
    size = size_of v;
    ino = v.v_ino;
    atime = v.atime;
    mtime = v.mtime;
    ctime = v.ctime;
  }

let dir_of v =
  match v.body with Directory d -> d | File _ | Symlink _ -> raise (Err Enotdir)

let file_of v =
  match v.body with
  | File f -> f
  | Directory _ -> raise (Err Eisdir)
  | Symlink _ -> raise (Err Einval)

(* Touch a directory block range through the buffer cache, paying disk
   reads for misses. *)
let touch_dir_blocks t dir_v ~upto_entry =
  let blocks = (upto_entry / dirents_per_block) + 1 in
  for blk = 0 to blocks - 1 do
    if not (Bcache.lookup t.bcache ~ino:dir_v.v_ino ~blk) then begin
      Disk.read t.disk ~bytes:t.config.block_size;
      Bcache.insert t.bcache ~ino:dir_v.v_ino ~blk
    end
  done

(* Write a directory's metadata: the directory data block plus the inode;
   synchronous when the configuration demands it. *)
let flush_dir_update t dir_v =
  Bcache.insert t.bcache ~ino:dir_v.v_ino ~blk:0;
  if t.config.sync_meta then begin
    Disk.write t.disk ~bytes:t.config.block_size;
    Disk.write t.disk ~bytes:512 (* inode *)
  end

let getattr t v =
  charge t getattr_instr;
  attrs_of v

let now t = Sim.now t.sim

let setattr t v ?mode ?uid ?gid ?size ?mtime () =
  charge t (base_op_instr +. 80.0);
  (match mode with Some m -> v.mode <- m | None -> ());
  (match uid with Some u -> v.uid <- u | None -> ());
  (match gid with Some g -> v.gid <- g | None -> ());
  (match size with
  | Some s -> (
      match v.body with
      | File f ->
          if s > max_file_size then raise (Err Efbig);
          if s <= f.len then f.len <- s
          else begin
            if s > Bytes.length f.bytes then begin
              let grown = Bytes.make s '\000' in
              Bytes.blit f.bytes 0 grown 0 f.len;
              f.bytes <- grown
            end
            else Bytes.fill f.bytes f.len (s - f.len) '\000';
            f.len <- s
          end;
          v.mtime <- now t
      | Directory _ | Symlink _ -> raise (Err Einval))
  | None -> ());
  (match mtime with Some m -> v.mtime <- m | None -> ());
  v.ctime <- now t;
  if t.config.sync_meta then Disk.write t.disk ~bytes:512;
  attrs_of v

(* Position of [name] in directory insertion order (oldest first), used
   to model how far a linear scan must walk. *)
let scan_position d name =
  let oldest_first = List.rev d.order in
  let rec go i = function
    | [] -> None
    | n :: rest -> if String.equal n name then Some i else go (i + 1) rest
  in
  go 0 oldest_first

let lookup t dirv name =
  charge t base_op_instr;
  let d = dir_of dirv in
  if String.equal name "." then dirv
  else if String.equal name ".." then vnode_by_ino t dirv.parent
  else begin
    let from_cache =
      match t.namecache with
      | Some nc -> (
          match Namecache.lookup nc ~dir:dirv.v_ino name with
          | Some i -> Hashtbl.find_opt t.inodes i
          | None -> None)
      | None -> None
    in
    match from_cache with
    | Some v -> v
    | None -> (
        (* Linear directory scan through the buffer cache. *)
        let total = Hashtbl.length d.names in
        let pos = scan_position d name in
        let examined = match pos with Some p -> p + 1 | None -> total in
        charge t (dirent_instr *. float_of_int examined);
        touch_dir_blocks t dirv ~upto_entry:(max 0 (examined - 1));
        match Hashtbl.find_opt d.names name with
        | None -> raise (Err Enoent)
        | Some i ->
            let v = vnode_by_ino t i in
            (match t.namecache with
            | Some nc -> Namecache.enter nc ~dir:dirv.v_ino name i
            | None -> ());
            v)
  end

let blocks_in_range t ~off ~len =
  if len = 0 then []
  else begin
    let first = off / t.config.block_size in
    let last = (off + len - 1) / t.config.block_size in
    List.init (last - first + 1) (fun i -> first + i)
  end

let read t v ~off ~len =
  charge t base_op_instr;
  if off < 0 || len < 0 then raise (Err Einval);
  let f = file_of v in
  let len = if off >= f.len then 0 else min len (f.len - off) in
  List.iter
    (fun blk ->
      if not (Bcache.lookup t.bcache ~ino:v.v_ino ~blk) then begin
        Disk.read t.disk ~bytes:t.config.block_size;
        Bcache.insert t.bcache ~ino:v.v_ino ~blk
      end)
    (blocks_in_range t ~off ~len);
  v.atime <- now t;
  Bytes.sub f.bytes off len

let ensure_capacity f total =
  if total > Bytes.length f.bytes then begin
    let cap = max total (max 1024 (2 * Bytes.length f.bytes)) in
    let grown = Bytes.make cap '\000' in
    Bytes.blit f.bytes 0 grown 0 f.len;
    f.bytes <- grown
  end

let write t v ~off data =
  charge t (base_op_instr +. 60.0);
  if off < 0 then raise (Err Einval);
  let f = file_of v in
  let len = Bytes.length data in
  let total = off + len in
  if total > max_file_size then raise (Err Efbig);
  let old_blocks = (f.len + t.config.block_size - 1) / t.config.block_size in
  ensure_capacity f total;
  if off > f.len then Bytes.fill f.bytes f.len (off - f.len) '\000';
  Bytes.blit data 0 f.bytes off len;
  if total > f.len then f.len <- total;
  let touched = blocks_in_range t ~off ~len in
  List.iter
    (fun blk ->
      ignore (Bcache.lookup t.bcache ~ino:v.v_ino ~blk);
      Bcache.insert t.bcache ~ino:v.v_ino ~blk)
    touched;
  v.mtime <- now t;
  v.ctime <- v.mtime;
  if t.config.sync_data then begin
    (* Data block(s), the inode, and one indirect block when the file
       has grown past the direct blocks: the paper's 1-3 disk writes. *)
    List.iter (fun _ -> Disk.write t.disk ~bytes:t.config.block_size) touched;
    Disk.write t.disk ~bytes:512;
    let new_blocks = (f.len + t.config.block_size - 1) / t.config.block_size in
    if new_blocks > old_blocks && new_blocks > 12 then
      Disk.write t.disk ~bytes:512
  end

let alloc_vnode t ~body ~mode ?(uid = 0) ?(gid = 0) ~parent () =
  let i = t.next_ino in
  t.next_ino <- t.next_ino + 1;
  let ts = now t in
  let v =
    {
      v_ino = i;
      body;
      mode;
      nlink = 1;
      uid;
      gid;
      atime = ts;
      mtime = ts;
      ctime = ts;
      parent;
    }
  in
  Hashtbl.replace t.inodes i v;
  v

let add_entry t dirv name ino_ =
  let d = dir_of dirv in
  Hashtbl.replace d.names name ino_;
  d.order <- name :: d.order;
  dirv.mtime <- now t;
  dirv.ctime <- dirv.mtime;
  (match t.namecache with
  | Some nc -> Namecache.enter nc ~dir:dirv.v_ino name ino_
  | None -> ());
  flush_dir_update t dirv

(* Operating through a vnode whose inode is gone (e.g. a directory
   removed behind the caller's back) is the stale-handle case. *)
let ensure_live t v =
  if not (Hashtbl.mem t.inodes v.v_ino) then raise (Err Estale)

let check_absent t dirv name =
  ensure_live t dirv;
  let d = dir_of dirv in
  if String.length name = 0 || String.contains name '/' then raise (Err Einval);
  if Hashtbl.mem d.names name then raise (Err Eexist)

let create_file t ~dir name ~mode ?uid ?gid () =
  charge t (base_op_instr +. inode_alloc_instr);
  check_absent t dir name;
  let v =
    alloc_vnode t ~body:(File { bytes = Bytes.create 0; len = 0 }) ~mode ?uid ?gid
      ~parent:dir.v_ino ()
  in
  if t.config.sync_meta then Disk.write t.disk ~bytes:512 (* new inode *);
  add_entry t dir name v.v_ino;
  v

let mkdir t ~dir name ~mode ?uid ?gid () =
  charge t (base_op_instr +. inode_alloc_instr);
  check_absent t dir name;
  let v =
    alloc_vnode t
      ~body:(Directory { names = Hashtbl.create 8; order = [] })
      ~mode ?uid ?gid ~parent:dir.v_ino ()
  in
  v.nlink <- 2;
  dir.nlink <- dir.nlink + 1;
  if t.config.sync_meta then Disk.write t.disk ~bytes:512;
  add_entry t dir name v.v_ino;
  v

let symlink t ~dir name ~target ?uid ?gid () =
  charge t (base_op_instr +. inode_alloc_instr);
  check_absent t dir name;
  let v =
    alloc_vnode t ~body:(Symlink target) ~mode:0o777 ?uid ?gid ~parent:dir.v_ino ()
  in
  if t.config.sync_meta then Disk.write t.disk ~bytes:512;
  add_entry t dir name v.v_ino

let readlink t v =
  charge t base_op_instr;
  match v.body with
  | Symlink s -> s
  | File _ | Directory _ -> raise (Err Einval)

let find_entry t dirv name =
  ensure_live t dirv;
  let d = dir_of dirv in
  match Hashtbl.find_opt d.names name with
  | Some i -> i
  | None -> raise (Err Enoent)

let drop_entry t dirv name =
  let d = dir_of dirv in
  Hashtbl.remove d.names name;
  d.order <- List.filter (fun n -> not (String.equal n name)) d.order;
  (match t.namecache with
  | Some nc -> Namecache.remove nc ~dir:dirv.v_ino name
  | None -> ());
  dirv.mtime <- now t;
  dirv.ctime <- dirv.mtime;
  flush_dir_update t dirv

let forget t v =
  Hashtbl.remove t.inodes v.v_ino;
  Bcache.invalidate_ino t.bcache v.v_ino;
  match t.namecache with
  | Some nc -> Namecache.invalidate_dir nc v.v_ino
  | None -> ()

let remove t ~dir name =
  charge t (base_op_instr +. 120.0);
  let i = find_entry t dir name in
  let v = vnode_by_ino t i in
  (match v.body with Directory _ -> raise (Err Eisdir) | File _ | Symlink _ -> ());
  drop_entry t dir name;
  v.nlink <- v.nlink - 1;
  if v.nlink <= 0 then forget t v
  else if t.config.sync_meta then Disk.write t.disk ~bytes:512

let rmdir t ~dir name =
  charge t (base_op_instr +. 120.0);
  let i = find_entry t dir name in
  let v = vnode_by_ino t i in
  let d = dir_of v in
  if Hashtbl.length d.names > 0 then raise (Err Enotempty);
  drop_entry t dir name;
  dir.nlink <- dir.nlink - 1;
  forget t v

let rename t ~src_dir name ~dst_dir new_name =
  charge t (base_op_instr +. 200.0);
  ensure_live t dst_dir;
  let i = find_entry t src_dir name in
  let moved = vnode_by_ino t i in
  let is_dir v = match v.body with Directory _ -> true | File _ | Symlink _ -> false in
  (* Remove a displaced destination first, as rename(2) does. *)
  (let d = dir_of dst_dir in
   match Hashtbl.find_opt d.names new_name with
   | Some j when j <> i ->
       let victim = vnode_by_ino t j in
       (match victim.body with
       | Directory dd when Hashtbl.length dd.names > 0 -> raise (Err Enotempty)
       | _ -> ());
       drop_entry t dst_dir new_name;
       if is_dir victim then begin
         (* An empty directory victim: its parent loses the ".." link
            and the directory itself is gone. *)
         dst_dir.nlink <- dst_dir.nlink - 1;
         forget t victim
       end
       else begin
         victim.nlink <- victim.nlink - 1;
         if victim.nlink <= 0 then forget t victim
       end
   | _ -> ());
  drop_entry t src_dir name;
  add_entry t dst_dir new_name i;
  (* A directory changing parents carries its ".." link with it. *)
  if is_dir moved && src_dir.v_ino <> dst_dir.v_ino then begin
    src_dir.nlink <- src_dir.nlink - 1;
    dst_dir.nlink <- dst_dir.nlink + 1
  end;
  moved.parent <- dst_dir.v_ino;
  moved.ctime <- now t

let link t ~src ~dir name =
  charge t (base_op_instr +. 120.0);
  ensure_live t src;
  (match src.body with Directory _ -> raise (Err Eisdir) | File _ | Symlink _ -> ());
  check_absent t dir name;
  src.nlink <- src.nlink + 1;
  src.ctime <- now t;
  add_entry t dir name src.v_ino

let readdir t v ~cookie ~count =
  charge t base_op_instr;
  let d = dir_of v in
  if cookie < 0 || count <= 0 then raise (Err Einval);
  let all = List.rev d.order in
  let total = List.length all in
  touch_dir_blocks t v ~upto_entry:(max 0 (min (cookie + count) total - 1));
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
  let rec take n l =
    if n <= 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r
  in
  let page = take count (drop cookie all) in
  charge t (dirent_instr *. float_of_int (List.length page));
  let entries =
    List.map (fun n -> (n, Hashtbl.find d.names n)) page
  in
  (entries, cookie + List.length page >= total)

let statfs t =
  charge t base_op_instr;
  let used =
    Hashtbl.fold
      (fun _ v acc ->
        acc + ((size_of v + t.config.block_size - 1) / t.config.block_size))
      t.inodes 0
  in
  {
    total_blocks = 65536;
    free_blocks = max 0 (65536 - used);
    block_size = t.config.block_size;
  }

let namecache t = t.namecache
let bcache t = t.bcache
let disk t = t.disk

let fsck t =
  let problems = ref [] in
  let complain fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (* Count references from directory entries. *)
  let refs = Hashtbl.create 64 in
  let bump i = Hashtbl.replace refs i (1 + Option.value ~default:0 (Hashtbl.find_opt refs i)) in
  Hashtbl.iter
    (fun ino_ v ->
      match v.body with
      | Directory d ->
          Hashtbl.iter
            (fun name target ->
              match Hashtbl.find_opt t.inodes target with
              | None -> complain "entry %d/%s points at dead inode %d" ino_ name target
              | Some child -> (
                  bump target;
                  match child.body with
                  | Directory _ when child.parent <> ino_ ->
                      complain "directory %d has parent %d but lives in %d" target
                        child.parent ino_
                  | _ -> ()))
            d.names;
          (* The order list and the name table must agree. *)
          if List.length d.order <> Hashtbl.length d.names then
            complain "directory %d order/table mismatch (%d vs %d)" ino_
              (List.length d.order) (Hashtbl.length d.names);
          List.iter
            (fun n ->
              if not (Hashtbl.mem d.names n) then
                complain "directory %d order lists ghost entry %s" ino_ n)
            d.order
      | File _ | Symlink _ -> ())
    t.inodes;
  (* Link counts. *)
  Hashtbl.iter
    (fun ino_ v ->
      let entry_refs = Option.value ~default:0 (Hashtbl.find_opt refs ino_) in
      match v.body with
      | File _ | Symlink _ ->
          if ino_ <> root_ino && entry_refs = 0 then
            complain "inode %d is orphaned (no directory entry)" ino_;
          if v.nlink <> entry_refs then
            complain "inode %d nlink %d but %d directory references" ino_ v.nlink
              entry_refs
      | Directory d ->
          (* nlink = 2 (self + entry) + one per child directory. *)
          let subdirs =
            Hashtbl.fold
              (fun _ child acc ->
                match Hashtbl.find_opt t.inodes child with
                | Some c when (match c.body with Directory _ -> true | _ -> false) ->
                    acc + 1
                | _ -> acc)
              d.names 0
          in
          let expected = 2 + subdirs in
          if v.nlink <> expected then
            complain "directory %d nlink %d, expected %d" ino_ v.nlink expected;
          if ino_ <> root_ino && entry_refs <> 1 then
            complain "directory %d has %d entries pointing at it" ino_ entry_refs)
    t.inodes;
  List.rev !problems
