(* nfsbench: regenerate the paper's tables and figures from the command
   line.

     nfsbench list                     show every experiment id
     nfsbench run graph5               run one experiment (Quick scale)
     nfsbench run table1 -f            run one experiment at Full scale
     nfsbench run graph1 --jobs 4      run its cells across 4 domains
     nfsbench run graph1 --json g.json write typed results as JSON
     nfsbench run graph5 --report      append the nfsstat-style trace report
     nfsbench run graph5 --trace t.jsonl   export the raw event trace
     nfsbench run graph1 --faults crash        run under a fault schedule
     nfsbench chaos [--scale quick|full]       fault-schedule x transport matrix
     nfsbench fuzz --seeds 50          seeded wire-corruption sweep
     nfsbench fuzz --no-checksum --seeds 5     reproduce Sun's checksums-off story
     nfsbench perf --json p.json       wall-clock engine throughput
     nfsbench perf --baseline BENCH_perf.json  gate against a baseline
     nfsbench faults                   list the builtin fault schedules
     nfsbench slo                      run the five builtin day-in-the-life
                                       scenarios and judge their SLOs
     nfsbench slo crash-at-peak        a builtin scenario by name
     nfsbench slo day.scenario.json    or a renofs-scenario/1 file
     nfsbench all [-f] [--jobs N] [--json FILE]   run everything
     nfsbench run graph5 --metrics m.jsonl sample time-series metrics
     nfsbench run graph5 --profile p.json  self-profile the simulator
     nfsbench run graph5 --perfetto t.json trace for ui.perfetto.dev
     nfsbench slo crash-at-peak --flight DIR   dump a bundle on failure
     nfsbench plot m.jsonl cwnd        chart a recorded series
     nfsbench diff OLD.json NEW.json   regression-gate two --json files
     nfsbench validate-json FILE       check a --json file against the schema

   Results are assembled by cell index, never completion order, so any
   --jobs value produces byte-identical tables and JSON. *)

open Cmdliner
module E = Renofs_workload.Experiments
module R = Renofs_workload.Run_spec
module Perf = Renofs_workload.Perf
module Bench_json = Renofs_workload.Bench_json
module Scenario = Renofs_scenario.Scenario
module Json = Renofs_json.Json
module Fault = Renofs_fault.Fault
module Metrics = Renofs_metrics.Metrics
module Stats = Renofs_engine.Stats

let print_with_chart table =
  E.print_table Format.std_formatter table;
  match Renofs_workload.Ascii_plot.render_table table with
  | Some chart
    when String.length table.E.id >= 5 && String.sub table.E.id 0 5 = "graph" ->
      Format.printf "%s@." chart
  | _ -> ()

(* Every subcommand shares one flag surface (the Run_spec record); a
   flag a given subcommand cannot honour is refused up front rather
   than silently dropped. *)
let check_unused ~cmd (rs : R.t) unsupported =
  let set = function
    | "scale" -> rs.R.rs_scale <> None
    | "jobs" -> rs.R.rs_jobs <> None
    | "seed" -> rs.R.rs_seed <> None
    | "json" -> rs.R.rs_json <> None
    | "trace" -> rs.R.rs_trace <> None
    | "report" -> rs.R.rs_report
    | "metrics" -> rs.R.rs_metrics <> None
    | "faults" -> rs.R.rs_faults <> None
    | "profile" -> rs.R.rs_profile <> None
    | "perfetto" -> rs.R.rs_perfetto <> None
    | "flight" -> rs.R.rs_flight <> None
    | _ -> false
  in
  match List.filter set unsupported with
  | [] -> None
  | offending ->
      Some
        (Printf.sprintf "%s does not support --%s" cmd
           (String.concat " or --" offending))

let run_result = function
  | Ok () -> `Ok ()
  | Error msg -> `Error (false, msg)

let run_one id rs =
  match check_unused ~cmd:"run" rs [ "seed" ] with
  | Some msg -> `Error (false, msg)
  | None -> (
      match E.spec ~scale:(R.scale rs) id with
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; try one of: %s" id
                (String.concat ", " (List.map fst E.specs)) )
      | Some spec ->
          run_result
            (Result.map ignore (R.execute ~print:print_with_chart rs spec)))

let run_all rs =
  match check_unused ~cmd:"all" rs [ "seed" ] with
  | Some msg -> `Error (false, msg)
  | None ->
      let scale = R.scale rs in
      let built = List.map (fun (_, mk) -> mk scale) E.specs in
      Format.printf "running %d experiments (%s scale)...@."
        (List.length E.specs)
        (match scale with E.Quick -> "quick" | E.Full -> "full");
      (* One pooled sweep across every experiment's cells: short
         experiments overlap long ones instead of serialising. *)
      run_result
        (Result.map ignore (R.execute_many ~print:print_with_chart rs built))

let any_fail results =
  let is_fail = function
    | E.Text s -> String.length s >= 4 && String.sub s 0 4 = "FAIL"
    | _ -> false
  in
  List.exists (List.exists is_fail) results.E.r_rows

(* chaos and fuzz install their own schedules per cell, so an outer
   --faults would be silently ignored — refuse it instead. *)
let run_verdict ~cmd ~fail_msg rs spec =
  match check_unused ~cmd rs [ "faults" ] with
  | Some msg -> `Error (false, msg)
  | None -> (
      match R.execute ~print:print_with_chart rs spec with
      | Error msg -> `Error (false, msg)
      | Ok results ->
          if any_fail results then `Error (false, fail_msg) else `Ok ())

let run_chaos rs =
  let seed = R.seed rs in
  Format.printf "chaos: seed %d%s@." seed
    (if seed = 0 then " (the default world)" else "");
  run_verdict ~cmd:"chaos"
    ~fail_msg:"chaos: invariant violation detected (see table)" rs
    (E.chaos_spec ~seed (R.scale rs))

let run_fuzz rs seeds no_checksum =
  let checksum = not no_checksum in
  let seed = R.seed rs in
  Format.printf "fuzz: %d seeds from base seed %d, checksums %s, profiles %s@."
    seeds seed
    (if checksum then "on" else "off")
    (String.concat "," E.fuzz_profiles);
  run_verdict ~cmd:"fuzz" ~fail_msg:"fuzz: violation detected (see table)" rs
    (E.fuzz_spec ~seeds ~base_seed:seed ~checksum (R.scale rs))

(* Scenarios carry their own world seed, load program and fault
   timeline, so --scale/--seed/--faults would be silently ignored —
   refuse them.  A single scenario's "run" section is layered under
   the CLI flags; with several scenarios only the CLI applies. *)
let run_slo rs names =
  let resolved = List.map Scenario.resolve names in
  match
    List.find_map (function Error msg -> Some msg | Ok _ -> None) resolved
  with
  | Some msg -> `Error (false, msg)
  | None -> (
      let scenarios =
        match names with
        | [] -> Scenario.builtins
        | _ -> List.filter_map Result.to_option resolved
      in
      let rs =
        match scenarios with
        | [ sc ] -> R.override ~base:sc.Scenario.sc_run rs
        | _ -> rs
      in
      match check_unused ~cmd:"slo" rs [ "scale"; "seed"; "faults" ] with
      | Some msg -> `Error (false, msg)
      | None -> (
          match
            R.execute ~print:print_with_chart rs (Scenario.suite_spec scenarios)
          with
          | Error msg -> `Error (false, msg)
          | Ok results -> (
              match Scenario.failures results with
              | [] -> `Ok ()
              | fails ->
                  List.iter (fun f -> Format.eprintf "slo: %s@." f) fails;
                  `Error
                    ( false,
                      Printf.sprintf "slo: %d scenario(s) breached their SLOs"
                        (List.length fails) ))))

(* A series address is "run/name"; PATTERN is a case-sensitive
   substring of it.  Counters plot as per-interval rates — the level of
   a monotone counter is rarely the interesting shape. *)
let run_plot path pattern =
  match Metrics.import_jsonl path with
  | Error msg -> `Error (false, msg)
  | Ok all ->
      let address (s : Metrics.series) = s.Metrics.e_run ^ "/" ^ s.Metrics.e_name in
      let contains ~sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        sub = "" || go 0
      in
      let matches =
        List.filter (fun s -> contains ~sub:pattern (address s)) all
      in
      if matches = [] then begin
        Format.eprintf "no series matches %S; available:@." pattern;
        List.iter (fun s -> Format.eprintf "  %s@." (address s)) all;
        `Error (false, Printf.sprintf "no series matches %S" pattern)
      end
      else begin
        let shown, rest =
          List.filteri (fun i _ -> i < 4) matches,
          List.filteri (fun i _ -> i >= 4) matches
        in
        List.iter
          (fun (s : Metrics.series) ->
            let points, value_label =
              match s.Metrics.e_kind with
              | Metrics.Counter ->
                  (Stats.Timeseries.rate s.Metrics.e_points, s.Metrics.e_unit ^ "/s")
              | Metrics.Gauge | Metrics.Histogram ->
                  (s.Metrics.e_points, s.Metrics.e_unit)
            in
            Format.printf "%s — %s, %s, %d points@." (address s)
              (Metrics.kind_name s.Metrics.e_kind)
              value_label (List.length points);
            Format.printf "%s@."
              (Renofs_workload.Ascii_plot.render ~x_label:"sim time (s)"
                 ~y_label:value_label ~x:(List.map fst points)
                 ~series:[ (value_label, List.map snd points) ]
                 ()))
          shown;
        if rest <> [] then begin
          Format.printf "...and %d more matches (narrow the pattern):@."
            (List.length rest);
          List.iter (fun s -> Format.printf "  %s@." (address s)) rest
        end;
        `Ok ()
      end

(* The schema member of a JSON file, when it parses at all. *)
let schema_of_file path =
  match Json.load_file path with
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "schema" fields with
      | Some (Json.Str s) -> Some s
      | _ -> None)
  | _ -> None

let diff_perf old_path new_path tolerance_pct =
  match (Perf.read_file old_path, Perf.read_file new_path) with
  | Error msg, _ | _, Error msg -> `Error (false, msg)
  | Ok baseline, Ok current ->
      let v =
        Perf.diff ~tolerance:(tolerance_pct /. 100.0) ~baseline ~current
      in
      List.iter (fun n -> Format.printf "note: %s@." n) v.Perf.notes;
      List.iter (fun s -> Format.printf "%s@." s) v.Perf.regressions;
      Format.printf "perf diff at ±%g%%: %d regressed, %d note(s)@."
        tolerance_pct
        (List.length v.Perf.regressions)
        (List.length v.Perf.notes);
      if v.Perf.regressions <> [] then
        `Error
          ( false,
            Printf.sprintf "%d rate(s) regressed beyond %g%%"
              (List.length v.Perf.regressions)
              tolerance_pct )
      else `Ok ()

let run_diff old_path new_path tolerance_pct =
  if tolerance_pct < 0.0 then `Error (false, "--tolerance must be >= 0")
  else if schema_of_file old_path = Some "renofs-perf/1" then
    diff_perf old_path new_path tolerance_pct
  else
    match
      Bench_json.diff_files ~tolerance:(tolerance_pct /. 100.0) old_path new_path
    with
    | Error msg -> `Error (false, msg)
    | Ok r ->
        List.iter (fun w -> Format.printf "note: %s@." w) r.Bench_json.warnings;
        List.iter (fun w -> Format.printf "%s@." w) r.Bench_json.improvements;
        List.iter (fun w -> Format.printf "%s@." w) r.Bench_json.regressions;
        Format.printf "%d cells compared at ±%g%%: %d regressed, %d improved@."
          r.Bench_json.compared tolerance_pct
          (List.length r.Bench_json.regressions)
          (List.length r.Bench_json.improvements);
        if r.Bench_json.regressions <> [] then
          `Error
            ( false,
              Printf.sprintf "%d cells regressed beyond %g%%"
                (List.length r.Bench_json.regressions)
                tolerance_pct )
        else `Ok ()

(* Wall-clock throughput of the engine itself; see Perf.  Serial by
   design — measuring real time wants the machine to itself. *)
let run_perf rs baseline_path tolerance_pct =
  let unsupported =
    [
      "scale"; "jobs"; "seed"; "trace"; "report"; "metrics"; "faults";
      "profile"; "perfetto"; "flight";
    ]
  in
  match check_unused ~cmd:"perf (serial by design)" rs unsupported with
  | Some msg -> `Error (false, msg)
  | None -> (
      let json_path = rs.R.rs_json in
      match R.check_outputs [ ("json", json_path) ] with
      | Some msg -> `Error (false, msg)
      | None ->
          if tolerance_pct < 0.0 then `Error (false, "--tolerance must be >= 0")
          else begin
        let baseline =
          (* Read the baseline before the minutes-long measurement so a
             bad path fails fast. *)
          match baseline_path with
          | None -> Ok None
          | Some path -> Result.map Option.some (Perf.read_file path)
        in
        match baseline with
        | Error msg -> `Error (false, msg)
        | Ok baseline ->
            let r =
              Perf.run ~profile:true
                ~progress:(fun label -> Format.printf "%s...@." label)
                ()
            in
            Format.printf
              "%d cells, %.1f s wall: %d events (%.0f events/s), %d RPCs \
               (%.0f RPCs/s)@."
              (List.length r.Perf.cells) r.Perf.wall_s r.Perf.events
              r.Perf.events_per_s r.Perf.rpcs r.Perf.rpcs_per_s;
            (match r.Perf.p_profile with
            | Some s ->
                Renofs_profile.Profile.print Format.std_formatter s
            | None -> ());
            (match json_path with
            | Some path ->
                Perf.write_file ~path r;
                Format.printf "perf: written to %s@." path
            | None -> ());
            (match baseline with
            | None -> `Ok ()
            | Some b ->
                let v =
                  Perf.diff ~tolerance:(tolerance_pct /. 100.0) ~baseline:b
                    ~current:r
                in
                List.iter (fun n -> Format.printf "note: %s@." n) v.Perf.notes;
                List.iter (fun s -> Format.printf "%s@." s) v.Perf.regressions;
                if v.Perf.regressions <> [] then
                  `Error
                    ( false,
                      Printf.sprintf "perf: %d rate(s) regressed beyond %g%%"
                        (List.length v.Perf.regressions)
                        tolerance_pct )
                else `Ok ())
      end)

let list_faults () =
  List.iter
    (fun (s : Fault.schedule) ->
      Printf.printf "%-12s %s\n" s.Fault.name s.Fault.description;
      List.iter (fun a -> Printf.printf "    %s\n" (Fault.describe a)) s.Fault.actions)
    Fault.builtins

let list_ids () =
  List.iter (fun (id, _) -> print_endline id) E.specs

(* Dispatch on the document's own "schema" member, so one subcommand
   checks any file this repo emits or consumes. *)
let validate_json path =
  let finish name = function
    | Ok _ ->
        Format.printf "%s: valid %s@." path name;
        `Ok ()
    | Error msg -> `Error (false, msg)
  in
  match Json.load_file path with
  | Error msg -> `Error (false, msg)
  | Ok doc -> (
      let schema =
        match doc with
        | Json.Obj fields -> (
            match List.assoc_opt "schema" fields with
            | Some (Json.Str s) -> Some s
            | _ -> None)
        | _ -> None
      in
      match schema with
      | Some "renofs-bench/1" ->
          finish "renofs-bench/1"
            (Result.map_error
               (fun msg -> path ^ ": " ^ msg)
               (Bench_json.validate_file path))
      | Some "renofs-scenario/1" ->
          finish "renofs-scenario/1" (Scenario.load_file path)
      | Some "renofs-fault/1" -> finish "renofs-fault/1" (Fault.load_file path)
      | Some "renofs-perf/1" -> finish "renofs-perf/1" (Perf.read_file path)
      | Some "renofs-profile/1" ->
          finish "renofs-profile/1" (Renofs_profile.Profile.read_file path)
      | Some other ->
          `Error (false, Printf.sprintf "%s: unknown schema %S" path other)
      | None ->
          `Error
            ( false,
              path
              ^ ": no top-level \"schema\" member (want renofs-bench/1, \
                 renofs-scenario/1, renofs-fault/1, renofs-perf/1 or \
                 renofs-profile/1)" ))

(* The one flag surface.  Every subcommand parses the same options with
   the same help text into a Run_spec; a scenario file's "run" object
   carries the same fields. *)

let full_flag =
  Arg.(
    value & flag
    & info [ "f"; "full" ]
        ~doc:"Run at full scale (longer sweeps); shorthand for --scale full.")

let scale_arg =
  Arg.(
    value
    & opt (some (enum [ ("quick", E.Quick); ("full", E.Full) ])) None
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:
          "Workload scale: $(b,quick) (seconds of wall time, the default) or \
           $(b,full) (longer sweeps, every chaos schedule).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Execute experiment cells across $(docv) domains (default: the \
           machine's recommended domain count). Results are deterministic \
           regardless of $(docv).")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "World seed (printed in the header so a failing run can be \
           replayed). 0 is the historical default world; for $(b,fuzz) it is \
           the base seed: cell $(i,i) uses seed N+$(i,i).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write typed results as JSON (schema renofs-bench/1) to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record an RPC-lifecycle event trace and export it as JSONL.")

let report_flag =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:
          "Record an RPC-lifecycle event trace and print the nfsstat-style \
           per-procedure table and latency breakdown after the experiment.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Sample instrumented sources (cwnd, RTO estimators, server queue \
           depth, link utilization, caches) every 0.5 sim-seconds and write \
           the time series to $(docv): schema renofs-metrics/1 as JSONL, or \
           CSV when $(docv) ends in .csv.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SCHEDULE"
        ~doc:
          "Run under a fault schedule: a builtin name (see $(b,nfsbench \
           faults)) or a renofs-fault/1 JSON file.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Self-profile the simulator while it runs — per-subsystem \
           wall-clock attribution, event fire counts and durations, GC \
           pressure — print the profile table and write it to $(docv) \
           (schema renofs-profile/1).")

let perfetto_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "perfetto" ] ~docv:"FILE"
        ~doc:
          "Record an event trace and export it as a Chrome trace-event JSON \
           file that https://ui.perfetto.dev opens directly: RPC spans, \
           server service/queue slices, retransmit and drop instants, and \
           the self-profiler's subsystem summary.")

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"DIR"
        ~doc:
          "Arm the flight recorder: when a cell fails (invariant FAIL, SLO \
           breach or stuck driver) dump a bundle under $(docv)/<cell> — the \
           trace-ring tail, metrics tail, self-profile snapshot, run spec \
           and seed — for post-mortem without a rerun.")

let spec_term =
  let make full scale jobs seed json trace report metrics faults profile
      perfetto flight =
    {
      R.rs_scale = (if full then Some E.Full else scale);
      rs_jobs = jobs;
      rs_seed = seed;
      rs_json = json;
      rs_trace = trace;
      rs_report = report;
      rs_metrics = metrics;
      rs_faults = faults;
      rs_profile = profile;
      rs_perfetto = perfetto;
      rs_flight = flight;
    }
  in
  Term.(
    const make $ full_flag $ scale_arg $ jobs_arg $ seed_arg $ json_arg
    $ trace_arg $ report_flag $ metrics_arg $ faults_arg $ profile_arg
    $ perfetto_arg $ flight_arg)

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT"
       ~doc:"Experiment id, e.g. graph1 or table5.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print its table")
    Term.(ret (const run_one $ id_arg $ spec_term))

let plot_cmd =
  let metrics_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A renofs-metrics/1 JSONL file (--metrics).")
  in
  let pattern =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SERIES"
          ~doc:
            "Substring of a series address (run/name), e.g. \
             $(b,udp-dyn/client.xport.cwnd) or just $(b,cwnd).")
  in
  Cmd.v
    (Cmd.info "plot"
       ~doc:
         "Render time series from a --metrics file as ASCII charts (counters \
          as per-interval rates)")
    Term.(ret (const run_plot $ metrics_file $ pattern))

let diff_cmd =
  let old_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD"
          ~doc:"Baseline renofs-bench/1 or renofs-perf/1 file.")
  in
  let new_file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW"
          ~doc:"Candidate file of the same schema as $(b,OLD).")
  in
  let tolerance =
    Arg.(
      value & opt float 15.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Allowed change in percent before a latency (ms/s) increase or a \
             throughput (per_s) decrease counts as a regression; for perf \
             files, the allowed wall-clock rate drop.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two --json files cell by cell (renofs-bench/1), or two \
          perf files rate by rate and cell by cell (renofs-perf/1); exits \
          non-zero when anything regressed beyond the tolerance")
    Term.(ret (const run_diff $ old_file $ new_file $ tolerance))

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the fault-schedule x transport matrix and check the recovery \
          invariants; exits non-zero on any violation")
    Term.(ret (const run_chaos $ spec_term))

let fuzz_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 20
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Number of fuzzing cells; profile and mount (the three \
             transports plus the v3 profile) cycle per cell, so 20 or more \
             covers the full matrix.")
  in
  let no_checksum_flag =
    Arg.(
      value & flag
      & info [ "no-checksum" ]
          ~doc:
            "Disable UDP checksums, as Sun shipped them — the corrupt \
             profile is then expected to produce (and the exit code to \
             report) end-to-end data-integrity violations.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Sweep seeded wire-mangling profiles (corrupt/truncate/duplicate/\
          reorder/storm) across the three transports and the v3 profile \
          under load; exits non-zero on any invariant or data-integrity \
          violation, stuck driver, or uncaught exception")
    Term.(ret (const run_fuzz $ spec_term $ seeds_arg $ no_checksum_flag))

let perf_cmd =
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "A renofs-perf/1 file to gate against: exits non-zero when \
             events/s or RPCs/s fall more than the tolerance below it.")
  in
  let tolerance =
    Arg.(
      value & opt float 30.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Allowed wall-clock rate drop in percent before the run counts \
             as a regression (wide by default: container clocks are noisy).")
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Measure wall-clock engine throughput (events/s, RPCs/s) over the \
          fixed graph5 full cell set; optionally write a renofs-perf/1 JSON \
          and gate against a baseline")
    Term.(ret (const run_perf $ spec_term $ baseline_arg $ tolerance))

let faults_cmd =
  Cmd.v
    (Cmd.info "faults" ~doc:"List the builtin fault schedules")
    Term.(const list_faults $ const ())

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment")
    Term.(ret (const run_all $ spec_term))

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids") Term.(const list_ids $ const ())

let slo_cmd =
  let scenarios_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Builtin scenario names (diurnal, flash-crowd, crash-at-peak, \
             flapping-wan, background-corruption) or renofs-scenario/1 JSON \
             files; all five builtins when omitted.")
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Run day-in-the-life scenarios — fleet world, time-varying load, \
          fault timeline — and judge each against its SLOs (p99 latency per \
          op class, availability, recovery time, integrity invariants); \
          exits non-zero on any breach, naming the violated SLOs")
    Term.(ret (const run_slo $ spec_term $ scenarios_arg))

let validate_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "A JSON file with a top-level \"schema\" member: renofs-bench/1, \
             renofs-scenario/1, renofs-fault/1 or renofs-perf/1.")
  in
  Cmd.v
    (Cmd.info "validate-json"
       ~doc:
         "Validate a JSON file against the schema its \"schema\" member names")
    Term.(ret (const validate_json $ file_arg))

let main =
  Cmd.group
    (Cmd.info "nfsbench" ~version:"1.0"
       ~doc:
         "Reproduce the experiments of 'Lessons Learned Tuning the 4.3BSD Reno \
          Implementation of the NFS Protocol' (Macklem, USENIX 1991)")
    [
      run_cmd;
      chaos_cmd;
      fuzz_cmd;
      perf_cmd;
      faults_cmd;
      slo_cmd;
      all_cmd;
      list_cmd;
      validate_cmd;
      plot_cmd;
      diff_cmd;
    ]

let () = exit (Cmd.eval main)
