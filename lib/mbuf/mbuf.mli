(** Berkeley-style mbuf chains carrying real bytes.

    The 4.3BSD Reno NFS builds RPC requests and replies directly in mbuf
    data areas ([nfsm_build] / [nfsm_disect]) to avoid intermediate
    buffers.  We model the same structure: a chain of small mbufs
    ({!mlen} usable bytes each) and page clusters ({!mclbytes} bytes),
    with zero-copy {!split} (cluster sharing, as fragmentation does in the
    kernel) and explicit accounting of every memory-to-memory copy — the
    quantity Section 3 of the paper works to minimise. *)

val mlen : int
(** Usable bytes in a small mbuf (112, as in 4.3BSD). *)

val mclbytes : int
(** Bytes in a cluster mbuf (2048). *)

(** Per-host allocation and copy counters.  Pass the owning host's
    counters to the operations that copy; the host charges CPU time for
    [bytes_copied] at its memory-copy bandwidth.

    [smalls_allocated] and [clusters_allocated] count every buffer
    grabbed, however satisfied; [pool_hits] counts the subset served
    from a {!Pool} free list, so fresh heap allocations are
    [smalls_allocated + clusters_allocated - pool_hits]. *)
module Counters : sig
  type t = {
    mutable bytes_copied : int;
    mutable smalls_allocated : int;
    mutable clusters_allocated : int;
    mutable pool_hits : int;
  }

  val create : unit -> t
  val reset : t -> unit
end

(** A free list of recycled mbuf storage, shared per simulated world.

    Chains cross node boundaries zero-copy (network delivery hands the
    sender's storage to the receiver), so the pool is per-world, not
    per-host: whoever ends up owning a chain releases it back to the
    common pool.  Ownership is explicit and conservative — a chain is
    {!release}d only at points where the owner provably holds the last
    reference (a served request after the reply is built, a reply after
    the client decodes it); anything ambiguous is simply left to the GC.
    Only exactly pool-sized buffers ({!mlen} / {!mclbytes} bytes) are
    kept; storage of any other size falls back to the GC too. *)
module Pool : sig
  type t

  val create : ?small_cap:int -> ?cluster_cap:int -> unit -> t
  (** Caps bound how many free buffers of each class are retained
      (defaults: 2048 smalls, 512 clusters); releases beyond the cap are
      dropped on the floor for the GC. *)

  val hits : t -> int
  (** Allocations served from the free list since creation. *)

  val recycled : t -> int
  (** Buffers accepted back by {!release} since creation. *)

  val small_free : t -> int
  val cluster_free : t -> int
end

type t
(** A mutable chain of mbufs. *)

val release : ?pool:Pool.t -> t -> unit
(** Declare the chain's payload dead and hand its storage back to
    [pool].  Each mbuf drops one reference; storage recycles only when
    its last sharer releases, so a {!split} sibling still holding a view
    of the same cluster keeps the bytes alive.  The chain itself is
    emptied, making a second release a no-op.  Releasing a chain while
    any alias of it is still being read is an ownership bug — the
    storage may be handed to a new writer.  Without [pool] this only
    empties the chain. *)

val empty : unit -> t
val length : t -> int
(** Total payload bytes in the chain. *)

val num_mbufs : t -> int
val num_clusters : t -> int

val cluster_bytes : t -> int
(** Payload bytes held in cluster mbufs; the remainder lives in small
    mbufs.  The NIC model maps clusters but must copy small-mbuf bytes. *)

val add_bytes : ?ctr:Counters.t -> ?pool:Pool.t -> t -> bytes -> off:int -> len:int -> unit
(** Append by copying, filling the tail mbuf then allocating new ones
    (clusters once the remainder is large, like [MINCLSIZE]).  With
    [pool], new mbuf storage is grabbed from the free list when one is
    available, allocated fresh otherwise. *)

val add_string : ?ctr:Counters.t -> ?pool:Pool.t -> t -> string -> unit

val add_u32 : ?ctr:Counters.t -> ?pool:Pool.t -> t -> int32 -> unit
(** Append a big-endian 32-bit word (the XDR unit).  Writes directly
    into the tail mbuf when four bytes of room remain. *)

val of_string : ?ctr:Counters.t -> ?pool:Pool.t -> string -> t
val of_bytes : ?ctr:Counters.t -> ?pool:Pool.t -> bytes -> t

val to_bytes : ?ctr:Counters.t -> t -> bytes
(** Linearise by copying; mainly for tests and checksums. *)

val append_chain : t -> t -> unit
(** [append_chain a b] moves [b]'s mbufs to the tail of [a] without
    copying; [b] becomes empty. *)

val split : t -> int -> t * t
(** [split t n] divides the payload at byte [n] without copying: mbufs
    that straddle the boundary are shared as views (cluster reference
    sharing).  Raises [Invalid_argument] if [n] exceeds {!length}. *)

val sub_copy : ?ctr:Counters.t -> ?pool:Pool.t -> t -> pos:int -> len:int -> t
(** Copy out a byte range as a fresh chain. *)

val checksum : t -> int
(** 16-bit ones-complement sum over the payload (Internet checksum,
    zero-padded to even length); exercised per-packet by the network
    layer since the checksum routine was one of the paper's residual CPU
    bottlenecks. *)

(** Sequential reader over a chain ([nfsm_disect] analogue). *)
module Cursor : sig
  type chain := t
  type t

  exception Underrun
  (** Raised when reading past the end of the chain. *)

  val create : chain -> t
  val remaining : t -> int
  val u32 : t -> int32
  val bytes : t -> int -> bytes
  val skip : t -> int -> unit
end
