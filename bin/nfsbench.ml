(* nfsbench: regenerate the paper's tables and figures from the command
   line.

     nfsbench list                     show every experiment id
     nfsbench run graph5               run one experiment (Quick scale)
     nfsbench run table1 -f            run one experiment at Full scale
     nfsbench run graph5 --report      append the nfsstat-style trace report
     nfsbench run graph5 --trace t.jsonl   export the raw event trace
     nfsbench all [-f]                 run everything *)

open Cmdliner
module E = Renofs_workload.Experiments
module Trace = Renofs_trace.Trace

let scale_of_full full = if full then E.Full else E.Quick

let print_with_chart id table =
  E.print_table Format.std_formatter table;
  match Renofs_workload.Ascii_plot.render_table table with
  | Some chart when String.length id >= 5 && String.sub id 0 5 = "graph" ->
      Format.printf "%s@." chart
  | _ -> ()

(* Fail before the sweep runs, not after: a mistyped --trace path
   should not cost minutes of simulation. *)
let check_writable path =
  match open_out path with
  | oc -> close_out oc; None
  | exception Sys_error msg -> Some msg

let run_one id full trace_path report =
  match Option.bind trace_path check_writable with
  | Some msg -> `Error (false, Printf.sprintf "cannot write trace: %s" msg)
  | None -> (
  match List.assoc_opt id E.all with
  | Some f ->
      let scale = Some (scale_of_full full) in
      (if trace_path = None && not report then
         print_with_chart id (f ?scale ())
       else begin
         (* Full-scale sweeps emit a few hundred thousand events; size
            the ring so the early runs are not overwritten. *)
         let tr = Trace.create ~capacity:(1 lsl 20) () in
         print_with_chart id (E.with_trace tr (fun () -> f ?scale ()));
         (match trace_path with
         | Some path ->
             Trace.export_jsonl tr path;
             Format.printf "trace: %d events written to %s (%d overwritten)@."
               (Trace.length tr) path (Trace.dropped tr)
         | None -> ());
         if report then Trace.Report.print Format.std_formatter (Trace.Report.build tr)
       end);
      `Ok ()
  | None ->
      `Error
        ( false,
          Printf.sprintf "unknown experiment %S; try one of: %s" id
            (String.concat ", " (List.map fst E.all)) ))

let run_all full =
  List.iter
    (fun (id, f) ->
      Format.printf "running %s...@." id;
      print_with_chart id (f ?scale:(Some (scale_of_full full)) ()))
    E.all

let list_ids () =
  List.iter (fun (id, _) -> print_endline id) E.all

let full_flag =
  Arg.(value & flag & info [ "f"; "full" ] ~doc:"Run at full scale (longer sweeps).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record an RPC-lifecycle event trace and export it as JSONL.")

let report_flag =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:
          "Record an RPC-lifecycle event trace and print the nfsstat-style \
           per-procedure table and latency breakdown after the experiment.")

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT"
       ~doc:"Experiment id, e.g. graph1 or table5.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print its table")
    Term.(ret (const run_one $ id_arg $ full_flag $ trace_arg $ report_flag))

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run_all $ full_flag)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids") Term.(const list_ids $ const ())

let main =
  Cmd.group
    (Cmd.info "nfsbench" ~version:"1.0"
       ~doc:
         "Reproduce the experiments of 'Lessons Learned Tuning the 4.3BSD Reno \
          Implementation of the NFS Protocol' (Macklem, USENIX 1991)")
    [ run_cmd; all_cmd; list_cmd ]

let () = exit (Cmd.eval main)
