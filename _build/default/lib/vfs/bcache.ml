module Cpu = Renofs_engine.Cpu

type search_mode = Vnode_chained | Global_scan

type stats = { mutable hits : int; mutable misses : int }

type t = {
  cpu : Cpu.t;
  capacity : int;
  search : search_mode;
  table : (int * int, int) Hashtbl.t; (* key -> lru stamp *)
  mutable clock : int;
  stats : stats;
}

(* Search costs in instructions: a hash probe down the vnode chain vs a
   walk over the resident buffer headers. *)
let chained_instructions = 60.0
let scan_instructions_per_buffer = 12.0

let create _sim cpu ~blocks ~search () =
  if blocks <= 0 then invalid_arg "Bcache.create: blocks must be positive";
  {
    cpu;
    capacity = blocks;
    search;
    table = Hashtbl.create blocks;
    clock = 0;
    stats = { hits = 0; misses = 0 };
  }

let search_mode t = t.search

let search_cost t =
  match t.search with
  | Vnode_chained -> Cpu.seconds_of_instructions t.cpu chained_instructions
  | Global_scan ->
      let examined = float_of_int (Hashtbl.length t.table) in
      Cpu.seconds_of_instructions t.cpu
        (chained_instructions +. (scan_instructions_per_buffer *. examined))

let lookup t ~ino ~blk =
  Cpu.consume t.cpu (search_cost t);
  match Hashtbl.find_opt t.table (ino, blk) with
  | Some _ ->
      t.clock <- t.clock + 1;
      Hashtbl.replace t.table (ino, blk) t.clock;
      t.stats.hits <- t.stats.hits + 1;
      true
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      false

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key stamp acc ->
        match acc with
        | Some (_, best) when best <= stamp -> acc
        | _ -> Some (key, stamp))
      t.table None
  in
  match victim with Some (key, _) -> Hashtbl.remove t.table key | None -> ()

let insert t ~ino ~blk =
  if not (Hashtbl.mem t.table (ino, blk)) then begin
    while Hashtbl.length t.table >= t.capacity do
      evict_lru t
    done;
    t.clock <- t.clock + 1;
    Hashtbl.replace t.table (ino, blk) t.clock
  end
  else begin
    t.clock <- t.clock + 1;
    Hashtbl.replace t.table (ino, blk) t.clock
  end

let invalidate_ino t ino =
  let doomed =
    Hashtbl.fold
      (fun ((i, _) as key) _ acc -> if i = ino then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed

let resident t = Hashtbl.length t.table
let stats t = t.stats
