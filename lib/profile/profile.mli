(** The third observability pillar: the simulator watching itself.

    Where renofs_trace and renofs_metrics observe the {e simulated}
    system, a [Profile.t] observes the {e simulator} — per-subsystem
    wall-clock attribution, per-tag event fire counts and duration
    histograms from {!Renofs_engine.Sim}, and GC/allocation pressure
    from [Gc.quick_stat] deltas — so a perf regression has somewhere to
    look, not just a number that moved.

    A profile turns into a {!Renofs_engine.Probe.t} via {!probe};
    attach it with [Sim.set_probe] (and [Trace.set_probe]) and every
    instrumented site in the engine and the layers above starts
    charging its wall time to a subsystem slot.  Attribution is
    self-time over a slot stack (see {!Renofs_engine.Probe}), so the
    per-slot seconds sum exactly to the profiled wall time.

    Two kinds of data come out.  The wall-clock numbers ([self_s],
    duration histograms, GC deltas) are real-time measurements and vary
    run to run; the {e counts} (scope enters per slot, event fires per
    tag) are driven purely by the simulation and are deterministic —
    byte-identical at any [--jobs] — which is what {!counts} exposes
    for the determinism gate. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A detached profile; [clock] (default [Unix.gettimeofday]) is
    injectable so attribution logic is testable on a fake clock. *)

val probe : t -> Renofs_engine.Probe.t
(** The hook record to attach with [Sim.set_probe] / [Trace.set_probe].
    One profile may serve several sims (a multi-world cell), as long as
    they run in one domain. *)

val start : t -> unit
(** Open a measurement window: reset the attribution stack to the
    harness slot and snapshot the GC counters.  Call it in the domain
    that will run the work — GC counters are per-domain. *)

val stop : t -> unit
(** Close the window: charge the tail to the current slot, accumulate
    the window's wall time and GC deltas.  [start]/[stop] windows
    accumulate, so one profile can cover several serial passes. *)

val merge : into:t -> t -> unit
(** Fold [src] counters into [into] (cell-order merge, like the trace
    and metrics sinks). *)

val counts : t -> string
(** Canonical rendering of the deterministic slice only — per-slot
    scope-enter counts and per-tag fire counts.  Byte-identical across
    [--jobs] for the same simulation. *)

(** {1 Reporting} *)

type slot_stat = {
  ss_name : string;
  ss_self_s : float;  (** self wall-clock seconds attributed to the slot *)
  ss_enters : int;  (** scope enters (deterministic) *)
  ss_fires : int;  (** event fires tagged with the slot (deterministic) *)
  ss_fire_s : float;  (** summed durations of those fires *)
  ss_hist : int array;  (** log2(ns) fire-duration histogram *)
}

type snapshot = {
  p_wall_s : float;  (** total profiled wall time (sum of windows) *)
  p_slots : slot_stat list;  (** one per {!Renofs_engine.Probe} slot *)
  p_events : int;  (** total probed event fires *)
  p_minor_words : float;
  p_promoted_words : float;
  p_minor_collections : int;
  p_major_collections : int;
}

val hist_buckets : int

val snapshot : t -> snapshot

val minor_words_per_event : snapshot -> float
(** Allocation pressure: minor words per probed event fire; [0.] when
    no event fired. *)

val print : Format.formatter -> snapshot -> unit
(** The [profile] table: per-subsystem self time, share of wall, scope
    enters, event fires and mean fire duration, then the GC line. *)

(** {1 renofs-profile/1 JSON} *)

val emit : snapshot -> string

val of_json : ctx:string -> Renofs_json.Json.json -> snapshot
(** Raises {!Renofs_json.Json.Bad} on schema violations, including an
    attribution sum more than 10% away from the recorded wall time (for
    walls long enough to judge, > 1 ms) — so validating a profile file
    is also checking the accounting. *)

val write_file : path:string -> t -> unit
val read_file : string -> (snapshot, string) result
