module Stats = Renofs_engine.Stats

type drop_reason =
  | Queue_full
  | Link_error
  | Sock_overflow
  | Link_down
  | Bad_checksum
  | Garbled

type event =
  | Rpc_send of { xid : int32; proc : int }
  | Rpc_retransmit of { xid : int32; proc : int; retry : int; rto : float }
  | Rpc_reply of { xid : int32; proc : int; rtt : float }
  | Pkt_enqueue of { link : string; bytes : int; qlen : int }
  | Pkt_drop of { link : string; bytes : int; reason : drop_reason }
  | Pkt_deliver of { link : string; bytes : int }
  | Pkt_mangle of { link : string; bytes : int; op : string }
  | Frag_lost of { src : int; ip_id : int }
  | Srv_queue of { xid : int32; proc : int; wait : float }
  | Srv_service of { xid : int32; proc : int; service : float }
  | Cwnd_update of { cwnd : float }
  | Rto_update of { rto : float }
  | Cache_hit of { cache : string }
  | Cache_miss of { cache : string }
  | Run_mark of { label : string }
  | Srv_crash
  | Srv_reboot
  | Write_committed of {
      file : int;
      off : int;
      len : int;
      digest : int;
      mtime : float;
    }
  | Lease_grant of { file : int; mode : string; holder : int; duration : float }
  | Cached_read of { file : int; holder : int; mtime : float }
  | Wl_error of { op : string; soft : bool }
  | Fault_inject of { action : string }
  | Write_unstable of {
      file : int;
      off : int;
      len : int;
      digest : int;
      verf : int;
    }
  | Commit_ok of { file : int; off : int; count : int; verf : int }
  | Verf_mismatch of { file : int; expected : int; got : int }

type record_ = { time : float; node : int; ev : event }

type t = {
  capacity : int;
  buf : record_ array;
  mutable next : int; (* next slot to overwrite *)
  mutable total : int;
  mutable on : bool;
  mutable probe : Renofs_engine.Probe.t option;
}

let dummy = { time = 0.0; node = -1; ev = Run_mark { label = "" } }

let create ?(capacity = 1 lsl 18) () =
  if capacity <= 0 then invalid_arg "Trace.create: nonpositive capacity";
  { capacity; buf = Array.make capacity dummy; next = 0; total = 0; on = true;
    probe = None }

let set_probe t p = t.probe <- p

let record t ~time ~node ev =
  if t.on then begin
    (* When probed, the recording cost itself is charged to the observer
       slot — that is the "how much does tracing cost" answer. *)
    (match t.probe with
    | None -> t.buf.(t.next) <- { time; node; ev }
    | Some p ->
        let d = p.Renofs_engine.Probe.enter Renofs_engine.Probe.observer in
        t.buf.(t.next) <- { time; node; ev };
        p.Renofs_engine.Probe.leave d);
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let mark t ~time label = record t ~time ~node:(-1) (Run_mark { label })
let set_enabled t on = t.on <- on
let enabled t = t.on
let length t = min t.total t.capacity
let total t = t.total
let dropped t = t.total - length t

let clear t =
  t.next <- 0;
  t.total <- 0

let to_list t =
  if t.total <= t.capacity then Array.to_list (Array.sub t.buf 0 t.total)
  else
    (* Oldest survivor sits at [next] (the slot about to be overwritten). *)
    List.init t.capacity (fun i -> t.buf.((t.next + i) mod t.capacity))

let capacity t = t.capacity

let merge ~into src =
  List.iter
    (fun { time; node; ev } -> record into ~time ~node ev)
    (to_list src)

(* Same table as [Nfs_proto.proc_name]; duplicated because the trace
   library sits below the protocol layer. *)
let proc_name = function
  | 0 -> "null"
  | 1 -> "getattr"
  | 2 -> "setattr"
  | 3 -> "root"
  | 4 -> "lookup"
  | 5 -> "readlink"
  | 6 -> "read"
  | 7 -> "writecache"
  | 8 -> "write"
  | 9 -> "create"
  | 10 -> "remove"
  | 11 -> "rename"
  | 12 -> "link"
  | 13 -> "symlink"
  | 14 -> "mkdir"
  | 15 -> "rmdir"
  | 16 -> "readdir"
  | 17 -> "statfs"
  | 18 -> "readdirlook"
  | 19 -> "getlease"
  | 20 -> "write3"
  | 21 -> "commit"
  | n -> Printf.sprintf "proc%d" n

(* FNV-1a folded to 30 bits: stays a small nonnegative int on every
   platform and round-trips exactly through the JSONL float fields, so
   trace files compare byte for byte across runs. *)
let digest b =
  let h = ref 0x811c9dc5 in
  Bytes.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    b;
  !h

(* ------------------------------------------------------------------ *)
(* JSONL                                                              *)
(* ------------------------------------------------------------------ *)

let reason_name = function
  | Queue_full -> "queue_full"
  | Link_error -> "link_error"
  | Sock_overflow -> "sock_overflow"
  | Link_down -> "link_down"
  | Bad_checksum -> "bad_checksum"
  | Garbled -> "garbled"

(* Raises [Failure] like every other parse error in this file, so
   [import_jsonl] wraps it with its [path:line:] location. *)
let reason_of_name = function
  | "queue_full" -> Queue_full
  | "link_error" -> Link_error
  | "sock_overflow" -> Sock_overflow
  | "link_down" -> Link_down
  | "bad_checksum" -> Bad_checksum
  | "garbled" -> Garbled
  | s -> failwith (Printf.sprintf "Trace: unknown drop reason %S" s)

(* Shortest decimal representation that still round-trips. *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let line_of_record r =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "{\"t\":%s,\"node\":%d,\"ev\":" (json_float r.time) r.node);
  let field k v = Buffer.add_string b (Printf.sprintf ",%s:%s" (json_string k) v) in
  let num k v = field k (json_float v) in
  let int k v = field k (string_of_int v) in
  let str k v = field k (json_string v) in
  let tag name = Buffer.add_string b (json_string name) in
  (match r.ev with
  | Rpc_send { xid; proc } ->
      tag "rpc_send";
      int "xid" (Int32.to_int xid);
      int "proc" proc
  | Rpc_retransmit { xid; proc; retry; rto } ->
      tag "rpc_retransmit";
      int "xid" (Int32.to_int xid);
      int "proc" proc;
      int "retry" retry;
      num "rto" rto
  | Rpc_reply { xid; proc; rtt } ->
      tag "rpc_reply";
      int "xid" (Int32.to_int xid);
      int "proc" proc;
      num "rtt" rtt
  | Pkt_enqueue { link; bytes; qlen } ->
      tag "pkt_enqueue";
      str "link" link;
      int "bytes" bytes;
      int "qlen" qlen
  | Pkt_drop { link; bytes; reason } ->
      tag "pkt_drop";
      str "link" link;
      int "bytes" bytes;
      str "reason" (reason_name reason)
  | Pkt_deliver { link; bytes } ->
      tag "pkt_deliver";
      str "link" link;
      int "bytes" bytes
  | Pkt_mangle { link; bytes; op } ->
      tag "pkt_mangle";
      str "link" link;
      int "bytes" bytes;
      str "op" op
  | Frag_lost { src; ip_id } ->
      tag "frag_lost";
      int "src" src;
      int "ip_id" ip_id
  | Srv_queue { xid; proc; wait } ->
      tag "srv_queue";
      int "xid" (Int32.to_int xid);
      int "proc" proc;
      num "wait" wait
  | Srv_service { xid; proc; service } ->
      tag "srv_service";
      int "xid" (Int32.to_int xid);
      int "proc" proc;
      num "service" service
  | Cwnd_update { cwnd } ->
      tag "cwnd_update";
      num "cwnd" cwnd
  | Rto_update { rto } ->
      tag "rto_update";
      num "rto" rto
  | Cache_hit { cache } ->
      tag "cache_hit";
      str "cache" cache
  | Cache_miss { cache } ->
      tag "cache_miss";
      str "cache" cache
  | Run_mark { label } ->
      tag "run_mark";
      str "label" label
  | Srv_crash -> tag "srv_crash"
  | Srv_reboot -> tag "srv_reboot"
  | Write_committed { file; off; len; digest; mtime } ->
      tag "write_committed";
      int "file" file;
      int "off" off;
      int "len" len;
      int "digest" digest;
      num "mtime" mtime
  | Lease_grant { file; mode; holder; duration } ->
      tag "lease_grant";
      int "file" file;
      str "mode" mode;
      int "holder" holder;
      num "duration" duration
  | Cached_read { file; holder; mtime } ->
      tag "cached_read";
      int "file" file;
      int "holder" holder;
      num "mtime" mtime
  | Wl_error { op; soft } ->
      tag "wl_error";
      str "op" op;
      int "soft" (if soft then 1 else 0)
  | Fault_inject { action } ->
      tag "fault_inject";
      str "action" action
  | Write_unstable { file; off; len; digest; verf } ->
      tag "write_unstable";
      int "file" file;
      int "off" off;
      int "len" len;
      int "digest" digest;
      int "verf" verf
  | Commit_ok { file; off; count; verf } ->
      tag "commit_ok";
      int "file" file;
      int "off" off;
      int "count" count;
      int "verf" verf
  | Verf_mismatch { file; expected; got } ->
      tag "verf_mismatch";
      int "file" file;
      int "expected" expected;
      int "got" got);
  Buffer.add_char b '}';
  Buffer.contents b

(* A scanner for exactly the flat objects we emit: string or number
   values, no nesting. *)
let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Trace: bad JSONL (%s): %s" msg line) in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if !pos >= n || line.[!pos] <> c then fail (Printf.sprintf "expected '%c'" c);
    incr pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match line.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if !pos + 4 >= n then fail "bad \\u escape";
                let code = int_of_string ("0x" ^ String.sub line (!pos + 1) 4) in
                Buffer.add_char b (Char.chr (code land 0xFF));
                pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> v
    | None -> fail "unparseable number"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let rec members () =
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let v =
        if !pos < n && line.[!pos] = '"' then `Str (parse_string ())
        else `Num (parse_number ())
      in
      fields := (key, v) :: !fields;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        members ()
      end
      else expect '}'
    in
    members ()
  end;
  List.rev !fields

let record_of_line line =
  let fields = parse_fields line in
  let find k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Trace: missing field %S: %s" k line)
  in
  let num k = match find k with `Num v -> v | `Str _ -> failwith ("Trace: field " ^ k ^ " is not a number") in
  let str k = match find k with `Str s -> s | `Num _ -> failwith ("Trace: field " ^ k ^ " is not a string") in
  let int k = int_of_float (num k) in
  let xid () = Int32.of_int (int "xid") in
  let ev =
    match str "ev" with
    | "rpc_send" -> Rpc_send { xid = xid (); proc = int "proc" }
    | "rpc_retransmit" ->
        Rpc_retransmit
          { xid = xid (); proc = int "proc"; retry = int "retry"; rto = num "rto" }
    | "rpc_reply" -> Rpc_reply { xid = xid (); proc = int "proc"; rtt = num "rtt" }
    | "pkt_enqueue" ->
        Pkt_enqueue { link = str "link"; bytes = int "bytes"; qlen = int "qlen" }
    | "pkt_drop" ->
        Pkt_drop
          { link = str "link"; bytes = int "bytes";
            reason = reason_of_name (str "reason") }
    | "pkt_deliver" -> Pkt_deliver { link = str "link"; bytes = int "bytes" }
    | "pkt_mangle" ->
        Pkt_mangle { link = str "link"; bytes = int "bytes"; op = str "op" }
    | "frag_lost" -> Frag_lost { src = int "src"; ip_id = int "ip_id" }
    | "srv_queue" -> Srv_queue { xid = xid (); proc = int "proc"; wait = num "wait" }
    | "srv_service" ->
        Srv_service { xid = xid (); proc = int "proc"; service = num "service" }
    | "cwnd_update" -> Cwnd_update { cwnd = num "cwnd" }
    | "rto_update" -> Rto_update { rto = num "rto" }
    | "cache_hit" -> Cache_hit { cache = str "cache" }
    | "cache_miss" -> Cache_miss { cache = str "cache" }
    | "run_mark" -> Run_mark { label = str "label" }
    | "srv_crash" -> Srv_crash
    | "srv_reboot" -> Srv_reboot
    | "write_committed" ->
        Write_committed
          { file = int "file"; off = int "off"; len = int "len";
            digest = int "digest"; mtime = num "mtime" }
    | "lease_grant" ->
        Lease_grant
          { file = int "file"; mode = str "mode"; holder = int "holder";
            duration = num "duration" }
    | "cached_read" ->
        Cached_read
          { file = int "file"; holder = int "holder"; mtime = num "mtime" }
    | "wl_error" -> Wl_error { op = str "op"; soft = int "soft" <> 0 }
    | "fault_inject" -> Fault_inject { action = str "action" }
    | "write_unstable" ->
        Write_unstable
          { file = int "file"; off = int "off"; len = int "len";
            digest = int "digest"; verf = int "verf" }
    | "commit_ok" ->
        Commit_ok
          { file = int "file"; off = int "off"; count = int "count";
            verf = int "verf" }
    | "verf_mismatch" ->
        Verf_mismatch
          { file = int "file"; expected = int "expected"; got = int "got" }
    | tag -> failwith ("Trace: unknown event tag " ^ tag)
  in
  { time = num "t"; node = int "node"; ev }

let export_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* The metadata header makes ring overwrites visible in the file
         itself (no silent truncation): [held] records follow, out of
         [total] observed, [overwritten] lost to the ring.  Readers that
         predate the header see a line without a "t" field and can skip
         any line carrying "schema". *)
      Printf.fprintf oc
        "{\"schema\":\"renofs-trace/1\",\"held\":%d,\"total\":%d,\"overwritten\":%d}\n"
        (length t) (total t) (dropped t);
      List.iter
        (fun r ->
          output_string oc (line_of_record r);
          output_char oc '\n')
        (to_list t))

let import_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | "" -> go (lineno + 1) acc
        | line ->
            if
              List.exists
                (fun (k, _) -> String.equal k "schema")
                (try parse_fields line with Failure _ -> [])
            then go (lineno + 1) acc
            else
              let r =
                try record_of_line line
                with Failure msg ->
                  failwith (Printf.sprintf "%s:%d: %s" path lineno msg)
              in
              go (lineno + 1) (r :: acc)
        | exception End_of_file -> List.rev acc
      in
      go 1 [])

(* ------------------------------------------------------------------ *)
(* Analysis                                                           *)
(* ------------------------------------------------------------------ *)

module Report = struct
  type span = {
    sp_label : string;
    sp_xid : int32;
    sp_proc : int;
    sp_start : float;
    sp_retrans : int;
    sp_rtx_wait : float;
    sp_srv_wait : float;
    sp_srv_service : float;
    sp_total : float;
  }

  type partial = {
    pt_proc : int;
    pt_first : float;
    mutable pt_last : float;
    mutable pt_retrans : int;
    mutable pt_wait : float;
    mutable pt_service : float;
  }

  let spans_counted records =
    let label = ref "" in
    let pending : (int32, partial) Hashtbl.t = Hashtbl.create 256 in
    let incomplete = ref 0 in
    let out = ref [] in
    List.iter
      (fun r ->
        match r.ev with
        | Run_mark { label = l } ->
            incomplete := !incomplete + Hashtbl.length pending;
            Hashtbl.reset pending;
            label := l
        | Rpc_send { xid; proc } ->
            if Hashtbl.mem pending xid then incr incomplete;
            Hashtbl.replace pending xid
              {
                pt_proc = proc;
                pt_first = r.time;
                pt_last = r.time;
                pt_retrans = 0;
                pt_wait = 0.0;
                pt_service = 0.0;
              }
        | Rpc_retransmit { xid; _ } -> (
            match Hashtbl.find_opt pending xid with
            | Some p ->
                p.pt_last <- r.time;
                p.pt_retrans <- p.pt_retrans + 1
            | None -> ())
        | Srv_queue { xid; wait; _ } -> (
            match Hashtbl.find_opt pending xid with
            | Some p -> p.pt_wait <- wait
            | None -> ())
        | Srv_service { xid; service; _ } -> (
            match Hashtbl.find_opt pending xid with
            | Some p -> p.pt_service <- service
            | None -> ())
        | Rpc_reply { xid; _ } -> (
            match Hashtbl.find_opt pending xid with
            | Some p ->
                Hashtbl.remove pending xid;
                let total = r.time -. p.pt_first in
                out :=
                  {
                    sp_label = !label;
                    sp_xid = xid;
                    sp_proc = p.pt_proc;
                    sp_start = p.pt_first;
                    sp_retrans = p.pt_retrans;
                    (* Capped at the total: a retransmission the original
                       reply overtakes (nfsstat's badxid case) cannot
                       have delayed the RPC longer than the RPC took. *)
                    sp_rtx_wait = Float.min (p.pt_last -. p.pt_first) total;
                    sp_srv_wait = p.pt_wait;
                    sp_srv_service = p.pt_service;
                    sp_total = total;
                  }
                  :: !out
            | None -> ())
        | Pkt_enqueue _ | Pkt_drop _ | Pkt_deliver _ | Pkt_mangle _
        | Frag_lost _ | Cwnd_update _ | Rto_update _ | Cache_hit _
        | Cache_miss _ | Srv_crash | Srv_reboot | Write_committed _
        | Lease_grant _ | Cached_read _ | Wl_error _ | Fault_inject _
        | Write_unstable _ | Commit_ok _ | Verf_mismatch _ ->
            ())
      records;
    (List.rev !out, !incomplete + Hashtbl.length pending)

  let spans records = fst (spans_counted records)

  let wire_time sp =
    Float.max 0.0
      (sp.sp_total -. sp.sp_rtx_wait -. sp.sp_srv_wait -. sp.sp_srv_service)

  type proc_row = {
    pr_name : string;
    pr_calls : int;
    pr_retrans : int;
    pr_p50 : float;
    pr_p95 : float;
    pr_p99 : float;
  }

  type label_row = {
    lr_label : string;
    lr_calls : int;
    lr_total : float;
    lr_wire : float;
    lr_queue : float;
    lr_service : float;
    lr_rtx_wait : float;
  }

  type report = {
    by_proc : proc_row list;
    by_label : label_row list;
    complete : int;
    incomplete : int;
    events : int;
    events_dropped : int;
  }

  (* 1 ms buckets spanning 20 s: comfortably past the deepest RTO
     backoff the 56K experiments reach; slower RPCs land in the
     overflow bucket and report their quantile as [infinity]. *)
  let hist () = Stats.Hist.create ~bucket_width:1e-3 ~buckets:20_000

  type label_acc = {
    mutable la_calls : int;
    mutable la_total : float;
    mutable la_wire : float;
    mutable la_queue : float;
    mutable la_service : float;
    mutable la_rtx : float;
  }

  let build t =
    let records = to_list t in
    let spans, incomplete = spans_counted records in
    let procs : (int, int ref * int ref * Stats.Hist.t) Hashtbl.t =
      Hashtbl.create 24
    in
    let labels : (string, label_acc) Hashtbl.t = Hashtbl.create 8 in
    let label_order = ref [] in
    List.iter
      (fun sp ->
        let calls, retrans, h =
          match Hashtbl.find_opt procs sp.sp_proc with
          | Some v -> v
          | None ->
              let v = (ref 0, ref 0, hist ()) in
              Hashtbl.replace procs sp.sp_proc v;
              v
        in
        incr calls;
        retrans := !retrans + sp.sp_retrans;
        Stats.Hist.add h sp.sp_total;
        let acc =
          match Hashtbl.find_opt labels sp.sp_label with
          | Some a -> a
          | None ->
              let a =
                {
                  la_calls = 0;
                  la_total = 0.0;
                  la_wire = 0.0;
                  la_queue = 0.0;
                  la_service = 0.0;
                  la_rtx = 0.0;
                }
              in
              Hashtbl.replace labels sp.sp_label a;
              label_order := sp.sp_label :: !label_order;
              a
        in
        acc.la_calls <- acc.la_calls + 1;
        acc.la_total <- acc.la_total +. sp.sp_total;
        acc.la_wire <- acc.la_wire +. wire_time sp;
        acc.la_queue <- acc.la_queue +. sp.sp_srv_wait;
        acc.la_service <- acc.la_service +. sp.sp_srv_service;
        acc.la_rtx <- acc.la_rtx +. sp.sp_rtx_wait)
      spans;
    let by_proc =
      Hashtbl.fold (fun proc (c, r, h) acc -> (proc, !c, !r, h) :: acc) procs []
      |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
      |> List.map (fun (proc, calls, retrans, h) ->
             {
               pr_name = proc_name proc;
               pr_calls = calls;
               pr_retrans = retrans;
               pr_p50 = Stats.Hist.quantile h 0.5;
               pr_p95 = Stats.Hist.quantile h 0.95;
               pr_p99 = Stats.Hist.quantile h 0.99;
             })
    in
    let by_label =
      List.rev !label_order
      |> List.map (fun l ->
             let a = Hashtbl.find labels l in
             let n = float_of_int (max 1 a.la_calls) in
             {
               lr_label = (if l = "" then "(unlabelled)" else l);
               lr_calls = a.la_calls;
               lr_total = a.la_total /. n;
               lr_wire = a.la_wire /. n;
               lr_queue = a.la_queue /. n;
               lr_service = a.la_service /. n;
               lr_rtx_wait = a.la_rtx /. n;
             })
    in
    {
      by_proc;
      by_label;
      complete = List.length spans;
      incomplete;
      events = List.length records;
      events_dropped = dropped t;
    }

  let ms v =
    if v = infinity then "inf" else Printf.sprintf "%.1f" (v *. 1000.0)

  let print_table fmt ~header rows =
    let widths =
      List.fold_left
        (fun acc row ->
          List.map2 (fun w cell -> max w (String.length cell)) acc row)
        (List.map String.length header)
        rows
    in
    let line row =
      Format.fprintf fmt "| %s |@."
        (String.concat " | "
           (List.map2
              (fun w cell -> cell ^ String.make (w - String.length cell) ' ')
              widths row))
    in
    line header;
    Format.fprintf fmt "|%s|@."
      (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
    List.iter line rows

  let print fmt r =
    (* Lead with coverage: a silently overwritten ring reads as a full
       record when it is anything but. *)
    Format.fprintf fmt "== trace coverage: %d events held, %d overwritten ==@."
      r.events r.events_dropped;
    if r.events_dropped > 0 then
      Format.fprintf fmt
        "WARNING: the ring overwrote %d events — the oldest spans are \
         missing from every table below; re-run with a larger capacity for \
         full coverage@."
        r.events_dropped;
    Format.fprintf fmt "== rpc statistics by procedure (nfsstat) ==@.";
    let total_calls = List.fold_left (fun a p -> a + p.pr_calls) 0 r.by_proc in
    let total_retrans = List.fold_left (fun a p -> a + p.pr_retrans) 0 r.by_proc in
    let pct part whole =
      if whole = 0 then "0.0"
      else Printf.sprintf "%.1f" (100.0 *. float_of_int part /. float_of_int whole)
    in
    print_table fmt
      ~header:[ "proc"; "calls"; "retrans"; "retrans%"; "p50(ms)"; "p95(ms)"; "p99(ms)" ]
      (List.map
         (fun p ->
           [
             p.pr_name;
             string_of_int p.pr_calls;
             string_of_int p.pr_retrans;
             pct p.pr_retrans p.pr_calls;
             ms p.pr_p50;
             ms p.pr_p95;
             ms p.pr_p99;
           ])
         r.by_proc
      @ [
          [
            "total";
            string_of_int total_calls;
            string_of_int total_retrans;
            pct total_retrans total_calls;
            "-";
            "-";
            "-";
          ];
        ]);
    Format.fprintf fmt "@.== latency breakdown by run (mean ms per RPC) ==@.";
    print_table fmt
      ~header:[ "run"; "rpcs"; "total"; "wire"; "srv-queue"; "service"; "rtx-wait" ]
      (List.map
         (fun l ->
           [
             l.lr_label;
             string_of_int l.lr_calls;
             ms l.lr_total;
             ms l.lr_wire;
             ms l.lr_queue;
             ms l.lr_service;
             ms l.lr_rtx_wait;
           ])
         r.by_label);
    Format.fprintf fmt
      "@.%d spans joined, %d unanswered; %d events held (%d overwritten)@."
      r.complete r.incomplete r.events r.events_dropped
end
