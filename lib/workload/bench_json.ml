module E = Experiments

let schema_version = "renofs-bench/1"

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal that round-trips, so files stay readable and
   serial/parallel runs compare byte for byte. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s15 = Printf.sprintf "%.15g" v in
    if float_of_string s15 = v then s15
    else
      let s16 = Printf.sprintf "%.16g" v in
      if float_of_string s16 = v then s16 else Printf.sprintf "%.17g" v

let value_json = function
  | E.Text s -> Printf.sprintf {|{"type":"text","value":"%s"}|} (escape s)
  | E.Int (v, u) ->
      Printf.sprintf {|{"type":"int","value":%d,"unit":"%s"}|} v (E.unit_name u)
  | E.Float (v, u, prec) ->
      Printf.sprintf {|{"type":"float","value":%s,"unit":"%s","prec":%d}|}
        (float_str v) (E.unit_name u) prec

let results_json (r : E.results) =
  let header = List.map (fun h -> "\"" ^ escape h ^ "\"") r.E.r_header in
  let rows =
    List.map
      (fun row -> "      [" ^ String.concat "," (List.map value_json row) ^ "]")
      r.E.r_rows
  in
  Printf.sprintf
    "    {\"id\":\"%s\",\n\
    \     \"title\":\"%s\",\n\
    \     \"header\":[%s],\n\
    \     \"rows\":[\n%s\n    ]}"
    (escape r.E.r_id) (escape r.E.r_title)
    (String.concat "," header)
    (String.concat ",\n" rows)

let emit ~scale ~jobs results =
  Printf.sprintf
    "{\"schema\":\"%s\",\n\
    \ \"scale\":\"%s\",\n\
    \ \"jobs\":%d,\n\
    \ \"experiments\":[\n%s\n]}\n"
    schema_version
    (match scale with E.Quick -> "quick" | E.Full -> "full")
    jobs
    (String.concat ",\n" (List.map results_json results))

let write_file ~scale ~jobs ~path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (emit ~scale ~jobs results))

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

(* The reader itself lives in the dependency-free [renofs_json] library
   (fault schedules parse with it too); re-exported here with a type
   equality so existing callers keep pattern-matching [Bench_json]'s
   constructors. *)

type json = Renofs_json.Json.json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad = Renofs_json.Json.Bad

let parse = Renofs_json.Json.parse

(* ------------------------------------------------------------------ *)
(* Schema validation                                                  *)
(* ------------------------------------------------------------------ *)

let known_units = [ "ms"; "s"; "per_s"; "percent"; "bytes"; "count" ]

let validate_exn doc =
  let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt in
  let field obj name =
    match List.assoc_opt name obj with
    | Some v -> v
    | None -> fail "missing field %S" name
  in
  let str ctx = function Str s -> s | _ -> fail "%s: expected string" ctx in
  let num ctx = function Num v -> v | _ -> fail "%s: expected number" ctx in
  let arr ctx = function Arr l -> l | _ -> fail "%s: expected array" ctx in
  let obj ctx = function Obj o -> o | _ -> fail "%s: expected object" ctx in
  let top = obj "document" doc in
  let version = str "schema" (field top "schema") in
  if version <> schema_version then
    fail "schema %S, expected %S" version schema_version;
  (match str "scale" (field top "scale") with
  | "quick" | "full" -> ()
  | other -> fail "scale %S is not quick|full" other);
  let jobs = num "jobs" (field top "jobs") in
  if jobs < 1.0 || not (Float.is_integer jobs) then fail "jobs must be a positive integer";
  let experiments = arr "experiments" (field top "experiments") in
  if experiments = [] then fail "experiments array is empty";
  List.iter
    (fun e ->
      let e = obj "experiment" e in
      let id = str "id" (field e "id") in
      ignore (str "title" (field e "title"));
      let header = List.map (str (id ^ ".header")) (arr (id ^ ".header") (field e "header")) in
      let cols = List.length header in
      if cols = 0 then fail "%s: empty header" id;
      let rows = arr (id ^ ".rows") (field e "rows") in
      if rows = [] then fail "%s: no rows" id;
      List.iteri
        (fun i row ->
          let row = arr (Printf.sprintf "%s.rows[%d]" id i) row in
          if List.length row <> cols then
            fail "%s.rows[%d]: %d cells for %d header columns" id i
              (List.length row) cols;
          List.iter
            (fun cell ->
              let ctx = Printf.sprintf "%s.rows[%d]" id i in
              let cell = obj ctx cell in
              let check_unit () =
                let u = str (ctx ^ ".unit") (field cell "unit") in
                if not (List.mem u known_units) then fail "%s: unknown unit %S" ctx u
              in
              match str (ctx ^ ".type") (field cell "type") with
              | "text" -> ignore (str ctx (field cell "value"))
              | "int" ->
                  let v = num ctx (field cell "value") in
                  if not (Float.is_integer v) then fail "%s: int cell holds %g" ctx v;
                  check_unit ()
              | "float" ->
                  ignore (num ctx (field cell "value"));
                  ignore (num (ctx ^ ".prec") (field cell "prec"));
                  check_unit ()
              | other -> fail "%s: unknown cell type %S" ctx other)
            row)
        rows)
    experiments

let validate s =
  match parse s with
  | Error msg -> Error ("parse error: " ^ msg)
  | Ok doc -> ( try Ok (validate_exn doc) with Bad msg -> Error msg)

let read_file = Renofs_json.Json.read_file

let validate_file path =
  match read_file path with
  | Error _ as e -> e
  | Ok content -> validate content

(* ------------------------------------------------------------------ *)
(* Regression diffing                                                 *)
(* ------------------------------------------------------------------ *)

type diff_report = {
  compared : int;
  regressions : string list;
  improvements : string list;
  warnings : string list;
}

(* The flattened view diffing needs: per experiment, the header and
   typed cells. *)
type diff_cell = Dnum of float * string | Dtext of string

let extract_exn doc =
  let j ctx = Renofs_json.Json.obj ~ctx in
  let field ctx name o = Renofs_json.Json.member ~ctx name o in
  let str ctx = Renofs_json.Json.str ~ctx in
  let num ctx = Renofs_json.Json.num ~ctx in
  let arr ctx = Renofs_json.Json.arr ~ctx in
  let top = j "document" doc in
  List.map
    (fun e ->
      let e = j "experiment" e in
      let id = str "id" (field "experiment" "id" e) in
      let header =
        List.map (str (id ^ ".header")) (arr (id ^ ".header") (field id "header" e))
      in
      let rows =
        List.map
          (fun row ->
            List.map
              (fun cell ->
                let c = j (id ^ ".cell") cell in
                match str (id ^ ".type") (field id "type" c) with
                | "text" -> Dtext (str id (field id "value" c))
                | _ ->
                    Dnum
                      ( num id (field id "value" c),
                        str (id ^ ".unit") (field id "unit" c) ))
              (arr (id ^ ".row") row))
          (arr (id ^ ".rows") (field id "rows" e))
      in
      (id, (header, rows)))
    (arr "experiments" (field "document" "experiments" top))

let load_for_diff path =
  Renofs_json.Json.decode_file path (fun doc ->
      validate_exn doc;
      extract_exn doc)

(* A cell regresses when a latency (ms/s) grows, or a throughput
   (per_s) shrinks, by more than [tolerance] (a fraction).  Other units
   (percent/bytes/count) describe the workload rather than its cost and
   are not judged; nor are cells whose baseline is 0 (no direction to
   scale).  Cells are matched positionally within matching experiment
   ids; shape mismatches are reported as warnings, not failures, so a
   baseline survives adding a row to an experiment. *)
let diff_docs ~tolerance old_docs new_docs =
  let compared = ref 0 in
  let regressions = ref [] and improvements = ref [] and warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt in
  List.iter
    (fun (id, (old_header, old_rows)) ->
      match List.assoc_opt id new_docs with
      | None -> warn "%s: missing from new file; skipped" id
      | Some (new_header, new_rows) ->
          if old_header <> new_header then
            warn "%s: header changed; skipped" id
          else if List.length old_rows <> List.length new_rows then
            warn "%s: %d rows vs %d; skipped" id (List.length old_rows)
              (List.length new_rows)
          else
            List.iteri
              (fun ri (old_row, new_row) ->
                let row_label =
                  match
                    List.find_opt (function Dtext _ -> true | _ -> false) old_row
                  with
                  | Some (Dtext s) -> s
                  | _ -> Printf.sprintf "row %d" ri
                in
                if List.length old_row <> List.length new_row then
                  warn "%s/%s: row shape changed; skipped" id row_label
                else
                  List.iteri
                    (fun ci (o, n) ->
                      let col =
                        match List.nth_opt old_header ci with
                        | Some h -> h
                        | None -> Printf.sprintf "col %d" ci
                      in
                      match (o, n) with
                      | Dtext a, Dtext b ->
                          if a <> b then
                            warn "%s/%s: %s changed %S -> %S" id row_label col a b
                      | Dnum (ov, ou), Dnum (nv, nu) when ou = nu ->
                          let direction =
                            match ou with
                            | "ms" | "s" -> Some `Lower_better
                            | "per_s" -> Some `Higher_better
                            | _ -> None
                          in
                          (match direction with
                          | Some dir when ov > 0.0 ->
                              incr compared;
                              let ratio = nv /. ov in
                              let line verdict pct =
                                Printf.sprintf
                                  "%s/%s: %s %s %s -> %s %s (%+.1f%%)" id
                                  row_label col verdict (float_str ov)
                                  (float_str nv) ou pct
                              in
                              let pct = (ratio -. 1.0) *. 100.0 in
                              let bad, good =
                                match dir with
                                | `Lower_better ->
                                    ( ratio > 1.0 +. tolerance,
                                      ratio < 1.0 -. tolerance )
                                | `Higher_better ->
                                    ( ratio < 1.0 -. tolerance,
                                      ratio > 1.0 +. tolerance )
                              in
                              if bad then
                                regressions := line "REGRESSED" pct :: !regressions
                              else if good then
                                improvements := line "improved" pct :: !improvements
                          | _ -> ())
                      | Dnum (_, ou), Dnum (_, nu) ->
                          warn "%s/%s: %s unit changed %S -> %S" id row_label col
                            ou nu
                      | _ -> warn "%s/%s: %s cell type changed" id row_label col)
                    (List.combine old_row new_row))
              (List.combine old_rows new_rows))
    old_docs;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id old_docs) then
        warn "%s: not in baseline; skipped" id)
    new_docs;
  {
    compared = !compared;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    warnings = List.rev !warnings;
  }

let diff_files ~tolerance old_path new_path =
  if tolerance < 0.0 then invalid_arg "Bench_json.diff_files: negative tolerance";
  match load_for_diff old_path with
  | Error _ as e -> e
  | Ok old_docs -> (
      match load_for_diff new_path with
      | Error _ as e -> e
      | Ok new_docs -> Ok (diff_docs ~tolerance old_docs new_docs))
