module Proc = Renofs_engine.Proc
module Rng = Renofs_engine.Rng
module Mbuf = Renofs_mbuf.Mbuf

type profile = {
  on_rate : float;
  on_mean : float;
  off_mean : float;
  sizes : (int * float) array;
}

let office_lan =
  {
    on_rate = 120.0;
    on_mean = 0.4;
    off_mean = 1.2;
    sizes = [| (90, 0.6); (300, 0.2); (1400, 0.2) |];
  }

let campus_backbone =
  {
    on_rate = 2800.0;
    on_mean = 0.06;
    off_mean = 0.5;
    sizes = [| (560, 0.3); (1400, 0.5); (4300, 0.2) |];
  }

let discard_port = 9

let pick_size rng sizes =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 sizes in
  let x = Rng.float rng total in
  let rec go i acc =
    let size, w = sizes.(i) in
    if x < acc +. w || i = Array.length sizes - 1 then size else go (i + 1) (acc +. w)
  in
  go 0 0.0

let start ~src ~dst profile =
  let sim = Node.sim src in
  let rng = Rng.split (Node.rng src) in
  Proc.spawn sim (fun () ->
      let rec burst_cycle () =
        Proc.sleep sim (Rng.exponential rng profile.off_mean);
        let burst_end =
          Renofs_engine.Sim.now sim +. Rng.exponential rng profile.on_mean
        in
        let rec pump () =
          if Renofs_engine.Sim.now sim < burst_end then begin
            let size = pick_size rng profile.sizes in
            let payload = Mbuf.of_bytes (Bytes.create size) in
            Node.send_datagram src ~proto:Packet.Udp ~dst:(Node.id dst)
              ~src_port:discard_port ~dst_port:discard_port payload;
            Proc.sleep sim (Rng.exponential rng (1.0 /. profile.on_rate));
            pump ()
          end
        in
        pump ();
        burst_cycle ()
      in
      burst_cycle ())

let sink node =
  Node.set_proto_handler node Packet.Udp (fun _ -> ())
