(* The event queue is a calendar queue (Brown, CACM 1988): an array of
   buckets, each a sorted intrusive doubly-linked list, indexed by
   event time modulo a "year" of [nbuckets * width] seconds.  For the
   timer-heavy simulation workload (most scheduling is a short hop
   forward from [now]) push, pop and cancel are all O(1) on average:
   insertion appends at a bucket tail, the minimum is at the head of
   the current bucket, and cancellation unlinks the node outright —
   cancelled events never reach a pop.  Ordering is exactly (time,
   seq): same-time events share a bucket, where insertion keeps them
   FIFO by sequence number. *)

type event = {
  time : float;
  tkey : int;
      (* [time] in integer nanoseconds (truncated): a monotone
         approximation that resolves almost every ordering with one
         untagged int compare instead of chasing boxed floats.  Ties
         fall back to the exact float, then to [seq]. *)
  seq : int;
  fn : unit -> unit;
  tag : int;
      (* the probe slot active when the event was scheduled; 0 when no
         probe is attached.  Lets the profiler attribute each fire to
         the subsystem that requested it. *)
  mutable queued : bool;
  mutable vb : int;  (* virtual bucket, cached by [insert] *)
  mutable prev : event;
  mutable next : event;
  count : int ref;  (* the owning queue's size, so [cancel] can maintain it *)
}

type timer = event

type t = {
  mutable buckets : event array;  (* circular lists, one sentinel each *)
  mutable nbuckets : int;  (* power of two *)
  mutable mask : int;
  mutable width : float;  (* seconds per bucket *)
  mutable inv_width : float;  (* 1 / width: multiply beats divide *)
  mutable vcur : int;
      (* search cursor: a lower bound on the least virtual bucket
         (floor (time / width)) over queued events *)
  size : int ref;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable probe : Probe.t option;
}

let dummy_count = ref 0

let sentinel () =
  let rec s =
    { time = nan; tkey = max_int; seq = -1; fn = ignore; tag = 0;
      queued = false; vb = -1; prev = s; next = s; count = dummy_count }
  in
  s

let min_buckets = 16

let create () =
  {
    buckets = Array.init min_buckets (fun _ -> sentinel ());
    nbuckets = min_buckets;
    mask = min_buckets - 1;
    width = 1e-3;
    inv_width = 1e3;
    vcur = 0;
    size = ref 0;
    clock = 0.0;
    next_seq = 0;
    processed = 0;
    probe = None;
  }

let now t = t.clock
let set_probe t p = t.probe <- p
let probe t = t.probe

(* Virtual bucket of a time: all times are >= 0, so truncation is
   floor.  The same expression indexes inserts and pops, so boundary
   rounding is self-consistent (and monotone in time, which is all
   correctness needs — the exact boundary only shifts which bucket a
   borderline event lands in). *)
let vbucket t time = int_of_float (time *. t.inv_width)

let before a b =
  a.tkey < b.tkey
  || (a.tkey = b.tkey
     && (a.time < b.time || (a.time = b.time && a.seq < b.seq)))

(* Sorted insertion scanning from the tail: the common case (an event
   later than everything already in its bucket) appends in O(1),
   branch-predictably, with no scan state. *)
let insert t ev =
  let vb = vbucket t ev.time in
  ev.vb <- vb;
  let s = t.buckets.(vb land t.mask) in
  let tail = s.prev in
  if tail == s || before tail ev then begin
    ev.prev <- tail;
    ev.next <- s;
    tail.next <- ev;
    s.prev <- ev;
    ev.queued <- true
  end
  else begin
    let p = ref tail.prev in
    while not (!p == s || before !p ev) do
      p := !p.prev
    done;
    let p = !p in
    ev.prev <- p;
    ev.next <- p.next;
    p.next.prev <- ev;
    p.next <- ev;
    ev.queued <- true
  end

let unlink ev =
  ev.prev.next <- ev.next;
  ev.next.prev <- ev.prev;
  ev.prev <- ev;
  ev.next <- ev;
  ev.queued <- false

(* ------------------------------------------------------------------ *)
(* Resizing                                                           *)
(* ------------------------------------------------------------------ *)

(* Bucket width from a sample of pending event times: the mean gap
   across the middle half of the sorted sample, so a tail of far-future
   timers cannot stretch every bucket.  A few events per bucket keeps
   both the insertion scans and the year sweeps short. *)
let choose_width t evs =
  let n = Array.length evs in
  if n < 2 then t.width
  else begin
    let k = min n 64 in
    let sample = Array.init k (fun i -> evs.(i * n / k).time) in
    Array.sort compare sample;
    let lo = k / 4 and hi = k - 1 - (k / 4) in
    if hi <= lo then t.width
    else
      let w = 4.0 *. ((sample.(hi) -. sample.(lo)) /. float_of_int (hi - lo)) in
      if Float.is_finite w && w > 1e-9 then w else t.width
  end

let resize t nbuckets =
  let evs = Array.make !(t.size) (sentinel ()) in
  let i = ref 0 in
  Array.iter
    (fun s ->
      let p = ref s.next in
      while !p != s do
        let nx = (!p).next in
        evs.(!i) <- !p;
        incr i;
        p := nx
      done)
    t.buckets;
  t.width <- choose_width t evs;
  t.inv_width <- 1.0 /. t.width;
  t.nbuckets <- nbuckets;
  t.mask <- nbuckets - 1;
  t.buckets <- Array.init nbuckets (fun _ -> sentinel ());
  t.vcur <- max_int;
  Array.iter
    (fun ev ->
      ev.prev <- ev;
      ev.next <- ev;
      insert t ev;
      let vb = vbucket t ev.time in
      if vb < t.vcur then t.vcur <- vb)
    evs

let maybe_grow t = if !(t.size) > 2 * t.nbuckets then resize t (2 * t.nbuckets)

let maybe_shrink t =
  if t.nbuckets > min_buckets && !(t.size) < t.nbuckets / 2 then
    resize t (t.nbuckets / 2)

(* ------------------------------------------------------------------ *)
(* Finding the minimum                                                *)
(* ------------------------------------------------------------------ *)

(* Fallback when a whole year of buckets holds nothing due this year
   (the pending set is sparse): each bucket head is that bucket's
   minimum, so one pass over the heads finds the global minimum and
   jumps the cursor straight to its year. *)
let direct_search t =
  let best = ref None in
  Array.iter
    (fun s ->
      let h = s.next in
      if h != s then
        match !best with
        | Some b when not (before h b) -> ()
        | _ -> best := Some h)
    t.buckets;
  let b = Option.get !best in
  t.vcur <- b.vb;
  b

(* The head of bucket [vcur land mask] is the minimum iff it is due in
   the cursor's year; otherwise no event of that year exists in the
   bucket (later years sort after it) and the cursor advances. *)
let find_min t =
  if !(t.size) = 0 then None
  else begin
    let rec scan vcur n =
      if n = t.nbuckets then direct_search t
      else
        let s = t.buckets.(vcur land t.mask) in
        let h = s.next in
        if h != s && h.vb = vcur then begin
          t.vcur <- vcur;
          h
        end
        else scan (vcur + 1) (n + 1)
    in
    Some (scan t.vcur 0)
  end

let pop t =
  match find_min t with
  | None -> None
  | Some ev ->
      unlink ev;
      decr t.size;
      maybe_shrink t;
      Some ev

(* ------------------------------------------------------------------ *)
(* Public interface                                                   *)
(* ------------------------------------------------------------------ *)

let schedule t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is before now %g" time t.clock);
  let tag = match t.probe with None -> 0 | Some p -> p.Probe.current () in
  let rec ev =
    { time; tkey = int_of_float (time *. 1e9); seq = t.next_seq;
      fn; tag; queued = false; vb = 0; prev = ev; next = ev; count = t.size }
  in
  t.next_seq <- t.next_seq + 1;
  insert t ev;
  if ev.vb < t.vcur || !(t.size) = 0 then t.vcur <- ev.vb;
  incr t.size;
  maybe_grow t;
  ev

let at t time fn = ignore (schedule t time fn)
let after t delay fn = ignore (schedule t (t.clock +. delay) fn)
let timer_after t delay fn = schedule t (t.clock +. delay) fn

let cancel ev =
  if ev.queued then begin
    unlink ev;
    decr ev.count
  end

let pending ev = ev.queued

(* One branch when detached; when probed, the fire is bracketed so the
   profiler can charge the event's wall time to the slot that scheduled
   it (the event [tag]) and histogram its duration. *)
let fire t ev =
  match t.probe with
  | None -> ev.fn ()
  | Some p ->
      let d = p.Probe.fire_enter ev.tag in
      (try ev.fn () with e -> p.Probe.fire_leave d; raise e);
      p.Probe.fire_leave d

let step t =
  match pop t with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.processed <- t.processed + 1;
      fire t ev;
      true

let run ?until t =
  let body () =
    match until with
    | None -> while step t do () done
    | Some limit ->
        (* One [find_min] per event: peek, and only if the minimum is due
           within the horizon unlink and fire it directly — going through
           [step] would scan for the same minimum twice. *)
        let rec loop () =
          match find_min t with
          | Some ev when ev.time <= limit ->
              unlink ev;
              decr t.size;
              maybe_shrink t;
              t.clock <- ev.time;
              t.processed <- t.processed + 1;
              fire t ev;
              loop ()
          | Some _ | None -> if t.clock < limit then t.clock <- limit
        in
        loop ()
  in
  (* The run loop itself is the "scheduler" slot: queue scans, resizes
     and clock advances between fires are charged to it, while each
     fire's body is charged to its own tag by [fire]. *)
  match t.probe with
  | None -> body ()
  | Some p ->
      let d = p.Probe.enter Probe.scheduler in
      (try body () with e -> p.Probe.leave d; raise e);
      p.Probe.leave d

let events_processed t = t.processed
let pending_events t = !(t.size)
