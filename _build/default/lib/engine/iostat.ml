type t = {
  sim : Sim.t;
  cpu : Cpu.t;
  interval : float;
  series : Stats.Series.t;
  started_at : float;
  started_busy : float;
  mutable running : bool;
}

let start sim cpu ?(interval = 1.0) () =
  if interval <= 0.0 then invalid_arg "Iostat.start: interval must be positive";
  let t =
    {
      sim;
      cpu;
      interval;
      series = Stats.Series.create ~name:"cpu-util" ();
      started_at = Sim.now sim;
      started_busy = Cpu.busy_time cpu;
      running = true;
    }
  in
  Proc.spawn sim (fun () ->
      let rec tick prev_busy =
        if t.running then begin
          Proc.sleep sim interval;
          let busy = Cpu.busy_time cpu in
          Stats.Series.add t.series (Sim.now sim) ((busy -. prev_busy) /. interval);
          tick busy
        end
      in
      tick t.started_busy);
  t

let stop t = t.running <- false
let samples t = Stats.Series.to_list t.series

let mean_utilization t =
  let elapsed = Sim.now t.sim -. t.started_at in
  if elapsed <= 0.0 then 0.0
  else (Cpu.busy_time t.cpu -. t.started_busy) /. elapsed

let peak_utilization t =
  List.fold_left (fun acc (_, u) -> Float.max acc u) 0.0 (samples t)
