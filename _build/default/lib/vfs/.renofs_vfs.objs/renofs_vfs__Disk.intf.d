lib/vfs/disk.mli: Renofs_engine
