(* Quickstart: build a simulated LAN, start an NFS server on one host,
   mount it from the other, and do ordinary file I/O through the
   syscall-level client.

     dune exec examples/quickstart.exe *)

module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Topology = Renofs_net.Topology
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module Client_transport = Renofs_core.Client_transport

let () =
  (* One simulator owns the whole world. *)
  let sim = Sim.create () in

  (* Two 0.9 MIPS MicroVAXII-class hosts on one Ethernet. *)
  let topo = Topology.build sim Topology.default_spec in

  (* Protocol stacks, the server and its filesystem. *)
  let server_udp = Udp.install topo.Topology.server in
  let server_tcp = Tcp.install topo.Topology.server in
  let server =
    Nfs_server.create topo.Topology.server ~udp:server_udp ~tcp:server_tcp ()
  in
  Nfs_server.start server;
  let client_udp = Udp.install topo.Topology.client in
  let client_tcp = Tcp.install topo.Topology.client in

  (* Everything that touches the simulated world runs as a process. *)
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:client_udp ~tcp:client_tcp
          ~server:(Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          Nfs_client.reno_mount
      in
      Nfs_client.mkdir m "home";
      let fd = Nfs_client.create m "home/hello.txt" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "hello from 1991!");
      Nfs_client.close m fd;

      let fd = Nfs_client.open_ m "home/hello.txt" in
      let data = Nfs_client.read m fd ~off:0 ~len:100 in
      Printf.printf "read back: %S\n" (Bytes.to_string data);

      let a = Nfs_client.stat m "home/hello.txt" in
      Printf.printf "size=%d bytes, took %.1f ms of virtual time so far\n"
        a.Renofs_core.Nfs_proto.size
        (Sim.now sim *. 1000.0);

      let s = Client_transport.summary (Nfs_client.transport m) in
      Printf.printf "RPCs: %d calls, %d retransmits, mean RTT %.1f ms\n"
        s.Client_transport.calls s.Client_transport.retransmits
        (s.Client_transport.mean_rtt *. 1000.0);
      Printf.printf "server served %d RPCs: %s\n"
        (Nfs_server.rpcs_served server)
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              (Renofs_engine.Stats.Counter.to_list (Nfs_server.counters server)))));
  (* The mount keeps a 30-second sync daemon alive, so bound the run. *)
  Sim.run ~until:60.0 sim
