lib/core/nfs_server.ml: Bytes Float Hashtbl List Nfs_proto Option Queue Renofs_engine Renofs_mbuf Renofs_net Renofs_rpc Renofs_transport Renofs_vfs Renofs_xdr String
