(** Deterministic splittable pseudo-random numbers (splitmix64).

    The simulator never touches the global [Random] state or the wall
    clock; every stochastic component owns an [Rng.t] derived from the
    experiment seed, so runs are exactly reproducible. *)

type t

val create : int -> t
(** Seed a new generator. *)

val split : t -> t
(** Derive an independent generator; the parent advances. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean;
    used for Poisson arrival processes. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
