(* The fault layer: schedule parsing, the trace-driven invariant
   checker (each invariant must reject a seeded violation and pass a
   clean stream), deterministic chaos results at any --jobs, a real
   over-the-wire duplicate-CREATE probe of the Juszczak cache, and the
   crash scenario from test_crash ported onto the schedule API. *)

open Renofs_core
module Net = Renofs_net
module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Rpc_msg = Renofs_rpc.Rpc_msg
module Xdr = Renofs_xdr.Xdr
module Trace = Renofs_trace.Trace
module Fault = Renofs_fault.Fault
module Check = Fault.Check
module E = Renofs_workload.Experiments
module Bench_json = Renofs_workload.Bench_json
module P = Nfs_proto

(* ---------------------------------------------------------------- *)
(* Schedule JSON                                                     *)
(* ---------------------------------------------------------------- *)

let test_schedule_json () =
  let text =
    {|{ "schema": "renofs-fault/1", "name": "x", "description": "d",
        "actions": [
          {"kind":"server_crash","at":4.0,"downtime":3.0},
          {"kind":"link_down","at":3.0,"duration":0.5,"link":"eth0"},
          {"kind":"loss_burst","at":2.0,"duration":6.0,"link":"*","loss":0.05},
          {"kind":"cpu_slow","at":2.0,"duration":6.0,"node":"server","factor":8.0},
          {"kind":"partition","at":3.0,"duration":2.0,
           "between":["client","server"]} ] }|}
  in
  (match Fault.parse text with
  | Error e -> Alcotest.fail e
  | Ok s -> (
      Alcotest.(check string) "name" "x" s.Fault.name;
      Alcotest.(check int) "actions" 5 (List.length s.Fault.actions);
      match s.Fault.actions with
      | Fault.Server_crash { at; downtime; server } :: _ ->
          Alcotest.(check (float 1e-9)) "at" 4.0 at;
          Alcotest.(check (float 1e-9)) "downtime" 3.0 downtime;
          Alcotest.(check string) "server" "*" server
      | _ -> Alcotest.fail "first action should be server_crash"));
  (match Fault.parse "{}" with
  | Ok _ -> Alcotest.fail "missing schema accepted"
  | Error _ -> ());
  (match
     Fault.parse
       {|{"schema":"renofs-fault/1","name":"x","actions":[{"kind":"nope"}]}|}
   with
  | Ok _ -> Alcotest.fail "unknown action kind accepted"
  | Error _ -> ());
  (match Fault.resolve "crash" with
  | Ok s -> Alcotest.(check string) "builtin resolves" "crash" s.Fault.name
  | Error e -> Alcotest.fail e);
  match Fault.resolve "/no/such/schedule.json" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

let test_mangle_actions_json () =
  let text =
    {|{ "schema": "renofs-fault/1", "name": "m", "actions": [
         {"kind":"corrupt","at":1.0,"duration":8.0,"link":"*","rate":0.01,"seed":7},
         {"kind":"truncate","at":1.0,"duration":8.0,"link":"eth0","rate":0.02},
         {"kind":"duplicate","at":1.0,"duration":8.0,"link":"*","rate":0.03},
         {"kind":"reorder","at":1.0,"duration":8.0,"link":"*","rate":0.04} ] }|}
  in
  (match Fault.parse text with
  | Error e -> Alcotest.fail e
  | Ok s -> (
      match s.Fault.actions with
      | [
       Fault.Corrupt c; Fault.Truncate t; Fault.Duplicate d; Fault.Reorder o;
      ] ->
          Alcotest.(check int) "explicit seed" 7 c.Fault.seed;
          Alcotest.(check int) "seed defaults to 0" 0 t.Fault.seed;
          Alcotest.(check string) "link" "eth0" t.Fault.link;
          Alcotest.(check (float 1e-9)) "rate" 0.03 d.Fault.rate;
          Alcotest.(check (float 1e-9)) "at" 1.0 o.Fault.at
      | _ -> Alcotest.fail "expected the four mangle actions in order"));
  (* missing rate *)
  (match
     Fault.parse
       {|{"schema":"renofs-fault/1","name":"m",
          "actions":[{"kind":"corrupt","at":1.0,"duration":8.0,"link":"*"}]}|}
   with
  | Ok _ -> Alcotest.fail "corrupt without rate accepted"
  | Error _ -> ());
  match Fault.resolve "garble" with
  | Ok s -> (
      match s.Fault.actions with
      | [ Fault.Corrupt _ ] -> ()
      | _ -> Alcotest.fail "garble should be a single corrupt action")
  | Error e -> Alcotest.fail e

let test_data_integrity_check () =
  let store : (int * int, bytes) Hashtbl.t = Hashtbl.create 8 in
  let read_back ~file ~off ~len =
    Option.bind (Hashtbl.find_opt store (file, off)) (fun b ->
        if Bytes.length b = len then Some b else None)
  in
  let expected = [ (0, 0, Bytes.of_string "good"); (1, 8, Bytes.of_string "data") ] in
  Hashtbl.replace store (0, 0) (Bytes.of_string "good");
  Hashtbl.replace store (1, 8) (Bytes.of_string "data");
  Alcotest.(check bool) "clean store passes" true
    (Check.data_integrity ~expected ~read_back).Check.v_ok;
  (* One silently corrupted byte — what a checksum-less UDP write
     suffers — must be flagged. *)
  Hashtbl.replace store (1, 8) (Bytes.of_string "dXta");
  let v = Check.data_integrity ~expected ~read_back in
  Alcotest.(check bool) "corrupted extent flagged" false v.Check.v_ok;
  Alcotest.(check string) "named" "data-integrity" v.Check.v_name;
  Hashtbl.remove store (0, 0);
  Alcotest.(check bool) "vanished extent flagged" false
    (Check.data_integrity ~expected ~read_back).Check.v_ok

let test_new_events_jsonl_roundtrip () =
  List.iter
    (fun ev ->
      let r = { Trace.time = 1.25; node = 3; ev } in
      Alcotest.(check bool)
        (Trace.line_of_record r)
        true
        (Trace.record_of_line (Trace.line_of_record r) = r))
    [
      Trace.Srv_crash;
      Trace.Srv_reboot;
      Trace.Write_committed
        { file = 7; off = 1024; len = 512; digest = 12345; mtime = 1.0 };
      Trace.Lease_grant { file = 7; mode = "write"; holder = 1; duration = 6.0 };
      Trace.Cached_read { file = 7; holder = 1; mtime = 0.5 };
      Trace.Wl_error { op = "create"; soft = true };
      Trace.Fault_inject { action = "server_crash at=4 downtime=3" };
      Trace.Pkt_drop { link = "eth0:client>server"; bytes = 1500; reason = Trace.Link_down };
      Trace.Pkt_drop { link = "udp:2049"; bytes = 1500; reason = Trace.Bad_checksum };
      Trace.Pkt_drop { link = "client:rpc"; bytes = 40; reason = Trace.Garbled };
      Trace.Pkt_mangle { link = "eth0:client>server"; bytes = 1500; op = "corrupt" };
      Trace.Write_unstable
        { file = 7; off = 1024; len = 512; digest = 12345; verf = 77 };
      Trace.Commit_ok { file = 7; off = 0; count = 0; verf = 77 };
      Trace.Verf_mismatch { file = 7; expected = 77; got = 91 };
    ]

(* ---------------------------------------------------------------- *)
(* Invariants against synthetic streams                              *)
(* ---------------------------------------------------------------- *)

let r ?(node = 1) time ev = { Trace.time; node; ev }

let test_hard_mount_invariant () =
  let bad = [ r 1.0 (Trace.Wl_error { op = "write"; soft = false }) ] in
  Alcotest.(check bool) "hard-mount error flagged" false
    (Check.hard_mount_errors bad).Check.v_ok;
  let ok = [ r 1.0 (Trace.Wl_error { op = "write"; soft = true }) ] in
  Alcotest.(check bool) "soft give-up is legal" true
    (Check.hard_mount_errors ok).Check.v_ok

let test_double_effect_invariant () =
  let svc t =
    r ~node:2 t (Trace.Srv_service { xid = 7l; proc = 9; service = 0.001 })
  in
  Alcotest.(check bool) "double CREATE flagged" false
    (Check.no_double_effect [ svc 1.0; svc 2.0 ]).Check.v_ok;
  (* A crash between the two executions is the paper's known
     at-least-once hazard — the cache died with the server. *)
  let crashed =
    [ svc 1.0; r ~node:2 1.5 Trace.Srv_crash; r ~node:2 1.6 Trace.Srv_reboot;
      svc 2.0 ]
  in
  Alcotest.(check bool) "re-execution across a crash tolerated" true
    (Check.no_double_effect crashed).Check.v_ok

let test_stale_lease_invariant () =
  let base =
    [
      r ~node:2 1.0
        (Trace.Lease_grant { file = 5; mode = "write"; holder = 1; duration = 6.0 });
      r ~node:2 2.0
        (Trace.Write_committed
           { file = 5; off = 0; len = 4; digest = 0; mtime = 2.0 });
    ]
  in
  let stale =
    base @ [ r ~node:3 3.0 (Trace.Cached_read { file = 5; holder = 3; mtime = 1.0 }) ]
  in
  Alcotest.(check bool) "stale cached read flagged" false
    (Check.no_stale_lease_reads stale).Check.v_ok;
  let after_crash =
    base
    @ [
        r ~node:2 2.5 Trace.Srv_crash;
        r ~node:3 3.0 (Trace.Cached_read { file = 5; holder = 3; mtime = 1.0 });
      ]
  in
  Alcotest.(check bool) "crash voids the conflicting lease" true
    (Check.no_stale_lease_reads after_crash).Check.v_ok

let test_durability_invariant () =
  let commit t data =
    r ~node:2 t
      (Trace.Write_committed
         {
           file = 9;
           off = 0;
           len = Bytes.length data;
           digest = Trace.digest data;
           mtime = t;
         })
  in
  let w = commit 1.0 (Bytes.of_string "hello") in
  let returns s ~file:_ ~off:_ ~len:_ = Some (Bytes.of_string s) in
  let gone ~file:_ ~off:_ ~len:_ = None in
  Alcotest.(check bool) "matching read-back passes" true
    (Check.durable_writes ~read_back:(returns "hello") [ w ]).Check.v_ok;
  Alcotest.(check bool) "corrupted read-back flagged" false
    (Check.durable_writes ~read_back:(returns "jello") [ w ]).Check.v_ok;
  Alcotest.(check bool) "vanished file flagged" false
    (Check.durable_writes ~read_back:gone [ w ]).Check.v_ok;
  (* A later overlapping write supersedes the first: only the final
     extent is digest-checked. *)
  let w2 = commit 2.0 (Bytes.of_string "world") in
  Alcotest.(check bool) "superseded write not checked" true
    (Check.durable_writes ~read_back:(returns "world") [ w; w2 ]).Check.v_ok;
  Alcotest.(check bool) "summary names the failure" true
    (String.length
       (Check.summary [ Check.hard_mount_errors [ r 1.0 (Trace.Wl_error { op = "x"; soft = false }) ] ])
    >= 4)

let test_committed_durable_invariant () =
  let data = Bytes.of_string "hello" in
  let wu t verf =
    r ~node:2 t
      (Trace.Write_unstable
         { file = 9; off = 0; len = 5; digest = Trace.digest data; verf })
  in
  let cok t verf =
    r ~node:2 t (Trace.Commit_ok { file = 9; off = 0; count = 0; verf })
  in
  let wc t s =
    r ~node:2 t
      (Trace.Write_committed
         {
           file = 9;
           off = 0;
           len = String.length s;
           digest = Trace.digest (Bytes.of_string s);
           mtime = t;
         })
  in
  let returns s ~file:_ ~off:_ ~len:_ = Some (Bytes.of_string s) in
  let gone ~file:_ ~off:_ ~len:_ = None in
  (* The contract: commit-covered unstable data must survive. *)
  Alcotest.(check bool) "covered + present passes" true
    (Check.committed_durable ~read_back:(returns "hello") [ wu 1.0 7; cok 2.0 7 ])
      .Check.v_ok;
  let v =
    Check.committed_durable ~read_back:gone [ wu 1.0 7; cok 2.0 7 ]
  in
  Alcotest.(check bool) "covered + vanished flagged" false v.Check.v_ok;
  Alcotest.(check string) "named" "committed-durable" v.Check.v_name;
  (* Unstable data never covered by a COMMIT may legally vanish. *)
  Alcotest.(check bool) "uncovered may vanish" true
    (Check.committed_durable ~read_back:gone [ wu 1.0 7 ]).Check.v_ok;
  (* A verifier change between write and commit leaves the write
     uncovered by construction: the client owes the replay, not the
     server the data. *)
  Alcotest.(check bool) "verifier change uncovers" true
    (Check.committed_durable ~read_back:gone [ wu 1.0 7; cok 2.0 8 ]).Check.v_ok;
  (* A later different committed write supersedes the extent... *)
  Alcotest.(check bool) "superseded extent not checked" true
    (Check.committed_durable ~read_back:(returns "world")
       [ wu 1.0 7; cok 2.0 7; wc 3.0 "world" ])
      .Check.v_ok;
  (* ...but the server's own COMMIT-flush echo (identical extent and
     digest) does not — the data must still read back. *)
  Alcotest.(check bool) "flush echo does not supersede" false
    (Check.committed_durable ~read_back:(returns "jello")
       [ wu 1.0 7; cok 2.0 7; wc 2.0 "hello" ])
      .Check.v_ok;
  (* No read-back handle: vacuous pass, and it says so. *)
  let vac = Check.committed_durable [ wu 1.0 7; cok 2.0 7 ] in
  Alcotest.(check bool) "vacuous without read_back" true vac.Check.v_ok

(* ---------------------------------------------------------------- *)
(* v3 over the wire: lying COMMIT convicted, crash replay heals,     *)
(* soft COMMIT give-up never wedges the ledger                       *)
(* ---------------------------------------------------------------- *)

type v3_world = {
  w_sim : Sim.t;
  w_server : Nfs_server.t;
  w_trace : Trace.t;
  w_cudp : Udp.stack;
  w_server_id : int;
  w_mount : Nfs_client.mount_opts -> Nfs_client.t;
}

let make_v3_world () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let tr = Trace.create () in
  List.iter
    (fun n -> Net.Node.attach n { Net.Node.detached with trace = Some tr })
    topo.Net.Topology.all;
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let server =
    Nfs_server.create topo.Net.Topology.server ~udp:sudp ~tcp:stcp ()
  in
  Nfs_server.start server;
  let cudp = Udp.install topo.Net.Topology.client in
  let ctcp = Tcp.install topo.Net.Topology.client in
  let w_mount opts =
    Nfs_client.mount ~udp:cudp ~tcp:ctcp
      ~server:(Net.Topology.server_id topo)
      ~root:(Nfs_server.root_fhandle server)
      opts
  in
  {
    w_sim = sim;
    w_server = server;
    w_trace = tr;
    w_cudp = cudp;
    w_server_id = Net.Topology.server_id topo;
    w_mount;
  }

let server_read_back server ~file ~off ~len =
  let fs = Nfs_server.fs server in
  try Some (Renofs_vfs.Fs.read fs (Renofs_vfs.Fs.vnode_by_ino fs file) ~off ~len)
  with _ -> None

let commit_durable_verdict_with ~lie =
  let w = make_v3_world () in
  Nfs_server.set_lie_on_commit w.w_server lie;
  let verdict = ref None in
  Proc.spawn w.w_sim (fun () ->
      let m = w.w_mount Nfs_client.v3_mount in
      let fd = Nfs_client.create m "liar" in
      Nfs_client.write m fd ~off:0 (Bytes.make 4096 'L');
      (* fsync = flush UNSTABLE + COMMIT; a lying server acks the
         COMMIT while the data never leaves its volatile buffer. *)
      Nfs_client.fsync m fd;
      Nfs_client.close m fd;
      (* [Fs] operations suspend on the modelled CPU, so the read-back
         must run inside a fiber too. *)
      verdict :=
        Some
          (Check.committed_durable
             ~read_back:(server_read_back w.w_server)
             (Trace.to_list w.w_trace)));
  Sim.run ~until:600.0 w.w_sim;
  match !verdict with
  | None -> Alcotest.fail "client never finished"
  | Some v -> v

let test_lying_commit_convicted () =
  (* The seeded negative case: a server acking COMMIT without durable
     data must be caught by the invariant... *)
  Alcotest.(check bool) "lying server convicted" false
    (commit_durable_verdict_with ~lie:true).Check.v_ok;
  (* ...and the honest server must pass the identical workload. *)
  Alcotest.(check bool) "honest server passes" true
    (commit_durable_verdict_with ~lie:false).Check.v_ok

let test_v3_crash_replay () =
  let w = make_v3_world () in
  let wsize = Nfs_client.v3_mount.Nfs_client.wsize in
  let payload = Bytes.init wsize (fun i -> Char.chr (i land 0xff)) in
  let finished = ref false in
  Proc.spawn w.w_sim (fun () ->
      let m = w.w_mount Nfs_client.v3_mount in
      let fd = Nfs_client.create m "replay" in
      (* A full block goes out asynchronously as UNSTABLE; wait for
         the biod push so the server is really buffering it. *)
      Nfs_client.write m fd ~off:0 payload;
      Proc.sleep w.w_sim 2.0;
      Alcotest.(check bool) "server buffers unstable data" true
        (Nfs_server.unstable_bytes w.w_server > 0);
      let verf0 = Nfs_server.write_verf w.w_server in
      (* Crash: the buffered data legally vanishes, the verifier
         changes on reboot. *)
      Nfs_server.crash w.w_server;
      Proc.sleep w.w_sim 1.0;
      Nfs_server.reboot w.w_server;
      Alcotest.(check bool) "verifier regenerated" true
        (Nfs_server.write_verf w.w_server <> verf0);
      (* fsync's COMMIT sees the new verifier and must rewrite the
         lost ranges before succeeding. *)
      Nfs_client.fsync m fd;
      Nfs_client.close m fd;
      let records = Trace.to_list w.w_trace in
      Alcotest.(check bool) "verifier mismatch traced" true
        (List.exists
           (fun r ->
             match r.Trace.ev with Trace.Verf_mismatch _ -> true | _ -> false)
           records);
      (* The replay made it durable: the bytes are on stable storage and
         every invariant (including committed-durable) holds. *)
      let fs = Nfs_server.fs w.w_server in
      let v = Renofs_vfs.Fs.lookup fs (Renofs_vfs.Fs.root fs) "replay" in
      Alcotest.(check bytes) "replayed data durable" payload
        (Renofs_vfs.Fs.read fs v ~off:0 ~len:wsize);
      Alcotest.(check int) "no unstable residue" 0
        (Nfs_server.unstable_bytes w.w_server);
      List.iter
        (fun verdict ->
          Alcotest.(check bool) (verdict.Check.v_name ^ " holds") true
            verdict.Check.v_ok)
        (Check.check_all ~read_back:(server_read_back w.w_server) records);
      finished := true);
  Sim.run ~until:600.0 w.w_sim;
  Alcotest.(check bool) "client finished" true !finished

let test_soft_v3_commit_never_wedges () =
  let w = make_v3_world () in
  let soft = Nfs_client.with_soft Nfs_client.v3_mount ~retrans:2 in
  let wsize = soft.Nfs_client.wsize in
  let payload = Bytes.make wsize 's' in
  let finished = ref false in
  Proc.spawn w.w_sim (fun () ->
      let m = w.w_mount soft in
      let fd = Nfs_client.create m "soft" in
      Nfs_client.write m fd ~off:0 payload;
      Proc.sleep w.w_sim 2.0;
      (* Server dies holding the unstable data and stays down past the
         soft give-up: the COMMIT must fail with EIO, not wedge. *)
      Nfs_server.crash w.w_server;
      (match Nfs_client.fsync m fd with
      | () -> Alcotest.fail "soft COMMIT against a dead server succeeded"
      | exception Nfs_client.Nfs_error _ -> ());
      (* The give-up released the write-behind ledger: once the server
         returns, the same fd keeps working and a clean write commits. *)
      Nfs_server.reboot w.w_server;
      let second = Bytes.make wsize 'S' in
      Nfs_client.write m fd ~off:0 second;
      Nfs_client.fsync m fd;
      Nfs_client.close m fd;
      let fs = Nfs_server.fs w.w_server in
      let v = Renofs_vfs.Fs.lookup fs (Renofs_vfs.Fs.root fs) "soft" in
      Alcotest.(check bytes) "post-recovery write durable" second
        (Renofs_vfs.Fs.read fs v ~off:0 ~len:wsize);
      finished := true);
  Sim.run ~until:3_600.0 w.w_sim;
  Alcotest.(check bool) "client finished" true !finished

let test_soft_giveup_reports_capped_timeo () =
  (* The Rpc_timeout record carries the final backed-off timeout, and
     the exponential backoff is clamped at 60 s (BSD's NFS_MAXTIMEO):
     timeo 25 s doubled twice would be 100 s without the cap. *)
  let w = make_v3_world () in
  let root = Nfs_server.root_fhandle w.w_server in
  Nfs_server.crash w.w_server;
  let observed = ref None in
  Proc.spawn w.w_sim (fun () ->
      let x =
        Client_transport.create_udp_fixed w.w_cudp ~server:w.w_server_id
          ~timeo:25.0 ~max_retries:2 ()
      in
      match Client_transport.call x (P.Getattr root) with
      | _ -> Alcotest.fail "call against a dead server completed"
      | exception Client_transport.Rpc_timed_out { proc; final_timeo } ->
          observed := Some (proc, final_timeo));
  Sim.run ~until:3_600.0 w.w_sim;
  match !observed with
  | None -> Alcotest.fail "never gave up"
  | Some (proc, final_timeo) ->
      Alcotest.(check string) "names the procedure" "getattr" proc;
      Alcotest.(check bool) "backed off past the mount timeo" true
        (final_timeo > 25.0);
      Alcotest.(check (float 1e-9)) "capped at NFS_MAXTIMEO" 60.0 final_timeo

(* ---------------------------------------------------------------- *)
(* Duplicate CREATE over the wire: the checker sees what the         *)
(* Juszczak cache does (and flags its absence)                       *)
(* ---------------------------------------------------------------- *)

let double_create_verdict ~dup_cache =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let tr = Trace.create () in
  List.iter (fun n -> Net.Node.attach n { Net.Node.detached with trace = Some tr }) topo.Net.Topology.all;
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let profile = Nfs_server.with_duplicate_cache Nfs_server.default_config dup_cache in
  let server =
    Nfs_server.create topo.Net.Topology.server ~profile ~udp:sudp ~tcp:stcp ()
  in
  Nfs_server.start server;
  let cudp = Udp.install topo.Net.Topology.client in
  Proc.spawn sim (fun () ->
      let sock = Udp.bind_ephemeral cudp in
      let call =
        P.Create
          {
            P.where = { P.dir = Nfs_server.root_fhandle server; name = "dup" };
            attributes =
              {
                P.s_mode = 0o644;
                s_uid = 0;
                s_gid = 0;
                s_size = 0;
                s_atime = None;
                s_mtime = None;
              };
          }
      in
      (* The same xid twice: a retransmitted non-idempotent request. *)
      let send () =
        let enc =
          Rpc_msg.encode_call
            {
              Rpc_msg.xid = 4242l;
              prog = P.program;
              vers = P.version;
              proc = P.proc_of_call call;
              cred = Rpc_msg.Auth_unix { stamp = 0; machine = "t"; uid = 0; gid = 0 };
            }
        in
        P.encode_call enc call;
        Udp.sendto sock ~dst:(Net.Topology.server_id topo) ~dst_port:P.port
          (Xdr.Enc.chain enc)
      in
      send ();
      Proc.sleep sim 0.5;
      send ());
  Sim.run ~until:5.0 sim;
  Check.no_double_effect (Trace.to_list tr)

let test_dup_cache_off_double_create_flagged () =
  Alcotest.(check bool) "no cache: double effect flagged" false
    (double_create_verdict ~dup_cache:false).Check.v_ok

let test_dup_cache_on_double_create_clean () =
  Alcotest.(check bool) "cache replays, no second effect" true
    (double_create_verdict ~dup_cache:true).Check.v_ok

(* ---------------------------------------------------------------- *)
(* Chaos determinism: identical trace and JSON at any --jobs         *)
(* ---------------------------------------------------------------- *)

let test_chaos_determinism () =
  let spec = Option.get (E.spec ~scale:E.Quick "chaos") in
  (* Two cells keep the test fast; determinism does not depend on the
     cell count. *)
  let mini =
    { spec with E.sp_cells = List.filteri (fun i _ -> i < 2) spec.E.sp_cells }
  in
  let run jobs =
    let tr = Trace.create ~capacity:(1 lsl 18) () in
    let results = E.run_spec ~jobs ~trace:tr mini in
    ( Bench_json.emit ~scale:E.Quick ~jobs:1 [ results ],
      List.map Trace.line_of_record (Trace.to_list tr) )
  in
  let json1, trace1 = run 1 in
  let json3, trace3 = run 3 in
  Alcotest.(check string) "JSON byte-identical across jobs" json1 json3;
  Alcotest.(check (list string)) "trace byte-identical across jobs" trace1 trace3;
  Alcotest.(check bool) "invariants green on defaults" true
    (String.length json1 > 0
    && not
         (List.exists
            (List.exists (function
              | E.Text s -> String.length s >= 4 && String.sub s 0 4 = "FAIL"
              | _ -> false))
            (E.run_spec ~jobs:1 mini).E.r_rows))

(* Two fuzz cells (corrupt and truncate on udp-fixed), deterministic
   across --jobs, and green with checksums on. *)
let test_fuzz_smoke_and_determinism () =
  let spec = E.fuzz_spec ~seeds:2 ~base_seed:0 E.Quick in
  let run jobs = Bench_json.emit ~scale:E.Quick ~jobs:1 [ E.run_spec ~jobs spec ] in
  let j1 = run 1 in
  Alcotest.(check string) "byte-identical across jobs" j1 (run 2);
  let rows = (E.run_spec ~jobs:1 spec).E.r_rows in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (List.iter (function
      | E.Text s when String.length s >= 4 && String.sub s 0 4 = "FAIL" ->
          Alcotest.failf "fuzz cell failed: %s" s
      | _ -> ()))
    rows

(* ---------------------------------------------------------------- *)
(* test_crash's hard-mount scenario on the schedule API              *)
(* ---------------------------------------------------------------- *)

let test_schedule_crash_rides_through () =
  let sim = Sim.create () in
  let topo = Net.Topology.build sim Net.Topology.default_spec in
  let sudp = Udp.install topo.Net.Topology.server in
  let stcp = Tcp.install topo.Net.Topology.server in
  let server = Nfs_server.create topo.Net.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  Fault.install
    { Fault.sim; nodes = topo.Net.Topology.all; servers = [ server ]; trace = None }
    {
      Fault.name = "crash-early";
      description = "crash at 0.5s, reboot 5s later";
      actions = [ Fault.Server_crash { at = 0.5; downtime = 5.0; server = "*" } ];
    };
  let cudp = Udp.install topo.Net.Topology.client in
  let ctcp = Tcp.install topo.Net.Topology.client in
  let finished = ref false in
  Proc.spawn sim (fun () ->
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp
          ~server:(Net.Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          Nfs_client.reno_mount
      in
      let fd = Nfs_client.create m "before" in
      Nfs_client.write m fd ~off:0 (Bytes.of_string "pre-crash");
      Nfs_client.close m fd;
      Proc.sleep sim 0.6;
      Alcotest.(check bool) "schedule crashed the server" false
        (Nfs_server.is_up server);
      (* The hard mount blocks and retransmits until the reboot. *)
      let t0 = Sim.now sim in
      let fd2 = Nfs_client.create m "during" in
      Nfs_client.close m fd2;
      Alcotest.(check bool) "operation stalled across downtime" true
        (Sim.now sim -. t0 >= 3.0);
      let back = Nfs_client.read m (Nfs_client.open_ m "before") ~off:0 ~len:100 in
      Alcotest.(check string) "stable storage survived" "pre-crash"
        (Bytes.to_string back);
      Alcotest.(check bool) "client retransmitted" true
        (Client_transport.retransmits (Nfs_client.transport m) > 0);
      finished := true);
  Sim.run ~until:36_000.0 sim;
  if not !finished then Alcotest.fail "never finished"

let () =
  Alcotest.run "fault"
    [
      ( "schedules",
        [
          Alcotest.test_case "json round-trip and errors" `Quick test_schedule_json;
          Alcotest.test_case "mangle actions json" `Quick test_mangle_actions_json;
          Alcotest.test_case "new trace events roundtrip jsonl" `Quick
            test_new_events_jsonl_roundtrip;
          Alcotest.test_case "crash schedule rides through" `Quick
            test_schedule_crash_rides_through;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "hard mount errors" `Quick test_hard_mount_invariant;
          Alcotest.test_case "double effect" `Quick test_double_effect_invariant;
          Alcotest.test_case "stale lease reads" `Quick test_stale_lease_invariant;
          Alcotest.test_case "durable writes" `Quick test_durability_invariant;
          Alcotest.test_case "dup cache off: flagged" `Quick
            test_dup_cache_off_double_create_flagged;
          Alcotest.test_case "dup cache on: clean" `Quick
            test_dup_cache_on_double_create_clean;
          Alcotest.test_case "data integrity" `Quick test_data_integrity_check;
          Alcotest.test_case "committed durable" `Quick
            test_committed_durable_invariant;
        ] );
      ( "v3",
        [
          Alcotest.test_case "lying COMMIT convicted" `Quick
            test_lying_commit_convicted;
          Alcotest.test_case "crash replay heals" `Quick test_v3_crash_replay;
          Alcotest.test_case "soft COMMIT never wedges" `Quick
            test_soft_v3_commit_never_wedges;
          Alcotest.test_case "soft give-up reports capped timeo" `Quick
            test_soft_giveup_reports_capped_timeo;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "deterministic at any --jobs" `Quick
            test_chaos_determinism;
          Alcotest.test_case "fuzz smoke + determinism" `Quick
            test_fuzz_smoke_and_determinism;
        ] );
    ]
