# Convenience wrapper around dune.  `make check` is the tier-1 gate:
# everything must build, every test must pass, the dune files must be
# formatted (ocamlformat is not vendored, so @fmt covers dune files
# only — see dune-project), and the nfsbench CLI must survive a smoke
# run: list the registry, run one experiment across 2 domains with
# JSON output, validate that output against the renofs-bench/1
# schema, and exercise the fault layer (builtin listing, a schedule
# file on a normal experiment, the chaos invariant matrix).

.PHONY: all build test fmt smoke check clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

smoke: build
	dune exec bin/nfsbench.exe -- list
	dune exec bin/nfsbench.exe -- run graph1 --jobs 2 --json /tmp/renofs-smoke.json
	dune exec bin/nfsbench.exe -- validate-json /tmp/renofs-smoke.json
	dune exec bin/nfsbench.exe -- faults
	dune exec bin/nfsbench.exe -- run graph1 --jobs 2 --faults examples/crash.json
	dune exec bin/nfsbench.exe -- chaos --scale quick

check: build test fmt smoke

clean:
	dune clean
