module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc

type t = {
  sim : Sim.t;
  avg_seek : float;
  avg_rotation : float;
  transfer_rate : float;
  lock : Proc.Semaphore.t;
  mutable reads : int;
  mutable writes : int;
  mutable busy : float;
}

let create sim ?(avg_seek = 0.030) ?(avg_rotation = 0.0083)
    ?(transfer_rate = 0.6e6) () =
  {
    sim;
    avg_seek;
    avg_rotation;
    transfer_rate;
    lock = Proc.Semaphore.create sim 1;
    reads = 0;
    writes = 0;
    busy = 0.0;
  }

let io t ~bytes =
  let service =
    t.avg_seek +. t.avg_rotation +. (float_of_int bytes /. t.transfer_rate)
  in
  Proc.Semaphore.acquire t.lock;
  t.busy <- t.busy +. service;
  Proc.sleep t.sim service;
  Proc.Semaphore.release t.lock

let read t ~bytes =
  t.reads <- t.reads + 1;
  io t ~bytes

let write t ~bytes =
  t.writes <- t.writes + 1;
  io t ~bytes

let reads t = t.reads
let writes t = t.writes
let busy_time t = t.busy
