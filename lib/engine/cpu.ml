type priority = Interrupt | Normal

(* A job is (work seconds, completion callback); [ignore] marks fire-
   and-forget [charge] work.  Jobs live in ring buffers — a float array
   for work and a closure array for callbacks — rather than a [Queue.t]
   of records: the float array stores work unboxed, so queueing a job
   allocates nothing (the old shape cost a record, an option, a queue
   cell and a boxed float per job, on a path taken several times per
   packet). *)
type ring = {
  mutable works : float array;
  mutable fins : (unit -> unit) array;
  mutable head : int;
  mutable tail : int;  (* count = tail - head; capacity a power of two *)
}

let ring_create () =
  { works = Array.make 16 0.0; fins = Array.make 16 ignore; head = 0; tail = 0 }

let ring_grow r =
  let cap = Array.length r.works in
  let works = Array.make (2 * cap) 0.0 in
  let fins = Array.make (2 * cap) ignore in
  let n = r.tail - r.head in
  for i = 0 to n - 1 do
    works.(i) <- r.works.((r.head + i) land (cap - 1));
    fins.(i) <- r.fins.((r.head + i) land (cap - 1))
  done;
  r.works <- works;
  r.fins <- fins;
  r.head <- 0;
  r.tail <- n

(* All-float sub-record: the busy-time counters update once per job,
   and a float field of a mixed record would box each new value. *)
type busy = {
  mutable completed : float; (* busy seconds fully served *)
  mutable cur_start : float;
  mutable cur_len : float;   (* work of the job in service; 0 when idle *)
}

type t = {
  sim : Sim.t;
  mips : float;
  mutable slowdown : float; (* work multiplier, >= epsilon; 1.0 = nominal *)
  intr_q : ring;
  norm_q : ring;
  mutable serving : bool;
  busy : busy;
  (* The CPU serves one job at a time, so the job in service sits in
     fields ([busy.cur_len] is its work) and one shared completion
     closure (tied in [create]) reads it back — no closure allocation
     per served job. *)
  mutable cur_fin : unit -> unit;
  mutable job_done : unit -> unit;
}

let rec serve t =
  let q = if t.intr_q.head <> t.intr_q.tail then t.intr_q else t.norm_q in
  if q.head = q.tail then t.serving <- false
  else begin
    let i = q.head land (Array.length q.works - 1) in
    let work = q.works.(i) in
    let fin = q.fins.(i) in
    q.fins.(i) <- ignore;
    q.head <- q.head + 1;
    t.serving <- true;
    t.busy.cur_start <- Sim.now t.sim;
    t.busy.cur_len <- work;
    t.cur_fin <- fin;
    Sim.after t.sim work t.job_done
  end

and job_done t =
  let work = t.busy.cur_len in
  let fin = t.cur_fin in
  t.cur_fin <- ignore;
  t.busy.completed <- t.busy.completed +. work;
  t.busy.cur_len <- 0.0;
  (* [fin] resumes whatever fiber was waiting on the CPU; the resumed
     segment runs here, so charge it to the cpu slot when probed. *)
  (match Sim.probe t.sim with
  | None -> fin ()
  | Some p ->
      let d = p.Probe.enter Probe.cpu in
      (try fin () with e -> p.Probe.leave d; raise e);
      p.Probe.leave d);
  serve t

let create sim ~mips =
  if mips <= 0.0 then invalid_arg "Cpu.create: mips must be positive";
  let t =
    {
      sim;
      mips;
      slowdown = 1.0;
      intr_q = ring_create ();
      norm_q = ring_create ();
      serving = false;
      busy = { completed = 0.0; cur_start = 0.0; cur_len = 0.0 };
      cur_fin = ignore;
      job_done = ignore;
    }
  in
  t.job_done <- (fun () -> job_done t);
  t

let mips t = t.mips
let seconds_of_instructions t instructions = instructions /. (t.mips *. 1e6)
let slowdown t = t.slowdown

let set_slowdown t factor =
  if factor <= 0.0 then invalid_arg "Cpu.set_slowdown: factor must be positive";
  t.slowdown <- factor

(* [seconds] is pre-slowdown: multiplying inside the array store keeps
   the scaled work unboxed end to end. *)
let enqueue t priority seconds fin =
  let q = match priority with Interrupt -> t.intr_q | Normal -> t.norm_q in
  if q.tail - q.head = Array.length q.works then ring_grow q;
  let i = q.tail land (Array.length q.works - 1) in
  q.works.(i) <- seconds *. t.slowdown;
  q.fins.(i) <- fin;
  q.tail <- q.tail + 1;
  if not t.serving then serve t

let consume_k ?(priority = Normal) t seconds k =
  if seconds < 0.0 then invalid_arg "Cpu.consume: negative work";
  if seconds = 0.0 then k () else enqueue t priority seconds k

let consume ?(priority = Normal) t seconds =
  if seconds < 0.0 then invalid_arg "Cpu.consume: negative work";
  if seconds = 0.0 then ()
  else Proc.suspend (fun resume -> enqueue t priority seconds resume)

let charge ?(priority = Normal) t seconds =
  if seconds < 0.0 then invalid_arg "Cpu.charge: negative work";
  if seconds > 0.0 then enqueue t priority seconds ignore

let busy_time t =
  let in_service =
    if t.busy.cur_len > 0.0 then
      Float.min t.busy.cur_len (Sim.now t.sim -. t.busy.cur_start)
    else 0.0
  in
  t.busy.completed +. in_service

let utilization t ~since_time ~since_busy =
  let elapsed = Sim.now t.sim -. since_time in
  if elapsed <= 0.0 then 0.0 else (busy_time t -. since_busy) /. elapsed
