examples/transport_shootout.mli:
