(** Chrome trace-event export: turn a trace's RPC spans and server
    slices (plus an optional profiler summary) into a [trace_event]
    JSON file that https://ui.perfetto.dev loads directly.

    Layout: process 1 ("rpc spans") holds one thread per run-mark
    label with an async begin/end pair per completed RPC (async events
    tolerate the overlapping spans a pipelined client produces);
    process 2 ("servers") holds one thread per server node with
    complete ("X") slices for service and queue-wait intervals, plus
    instant events for retransmissions, packet drops, crashes and
    reboots; process 3 ("profiler"), present when a profile snapshot is
    supplied, shows each subsystem's total self-time as one slice.
    Timestamps are virtual sim time in microseconds. *)

val export :
  path:string ->
  ?profile:Profile.snapshot ->
  Renofs_trace.Trace.record_ list ->
  int
(** Write the file and return the number of trace events emitted
    (metadata records not counted). *)
