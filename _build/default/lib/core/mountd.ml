module Proc = Renofs_engine.Proc
module Cpu = Renofs_engine.Cpu
module Xdr = Renofs_xdr.Xdr
module Rpc_msg = Renofs_rpc.Rpc_msg
module Node = Renofs_net.Node
module Udp = Renofs_transport.Udp
module Fs = Renofs_vfs.Fs
module MP = Mount_proto

type t = {
  server : Nfs_server.t;
  mutable records : (string * string) list; (* newest first *)
  mutable served : int;
}

let mounts t = List.rev t.records
let requests_served t = t.served

let client_name src src_port = Printf.sprintf "host%d:%d" src src_port

(* Resolve an exported path to a file handle by walking the server's
   filesystem directly (mountd runs on the server host). *)
let resolve t path =
  let fs = Nfs_server.fs t.server in
  let components =
    String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")
  in
  try
    let v = List.fold_left (fun dir c -> Fs.lookup fs dir c) (Fs.root fs) components in
    MP.Mnt_ok (Fs.ino v)
  with Fs.Err Fs.Enoent -> MP.Mnt_error 2 (* ENOENT *)
     | Fs.Err Fs.Enotdir -> MP.Mnt_error 20

let execute t ~src ~src_port (call : MP.call) : MP.reply =
  match call with
  | MP.Mnt_null -> MP.Rmnt_null
  | MP.Mnt path ->
      let status = resolve t path in
      (match status with
      | MP.Mnt_ok _ -> t.records <- (client_name src src_port, path) :: t.records
      | MP.Mnt_error _ -> ());
      MP.Rmnt status
  | MP.Dump -> MP.Rdump (mounts t)
  | MP.Umnt path ->
      let me = client_name src src_port in
      t.records <-
        List.filter (fun (host, p) -> not (host = me && p = path)) t.records;
      MP.Rumnt
  | MP.Umntall ->
      let me = client_name src src_port in
      t.records <- List.filter (fun (host, _) -> host <> me) t.records;
      MP.Rumnt
  | MP.Export -> MP.Rexport [ "/" ]

let start server =
  let t = { server; records = []; served = 0 } in
  let node = Nfs_server.node server in
  let sock = Udp.bind (Nfs_server.udp_stack server) ~port:MP.port in
  Proc.spawn (Node.sim node) (fun () ->
      let rec serve () =
        let dg = Udp.recv sock in
        Cpu.consume (Node.cpu node)
          (Cpu.seconds_of_instructions (Node.cpu node) 500.0);
        (match Rpc_msg.decode_call dg.Udp.payload with
        | exception (Rpc_msg.Bad_message _ | Xdr.Decode_error _) -> ()
        | hdr, dec -> (
            match MP.decode_call ~proc:hdr.Rpc_msg.proc dec with
            | exception Xdr.Decode_error _ -> ()
            | call ->
                t.served <- t.served + 1;
                let reply =
                  execute t ~src:dg.Udp.src ~src_port:dg.Udp.src_port call
                in
                let enc =
                  Rpc_msg.encode_reply ~xid:hdr.Rpc_msg.xid
                    (Rpc_msg.Accepted Rpc_msg.Success)
                in
                MP.encode_reply enc reply;
                Udp.sendto sock ~dst:dg.Udp.src ~dst_port:dg.Udp.src_port
                  (Xdr.Enc.chain enc)));
        serve ()
      in
      serve ());
  t
