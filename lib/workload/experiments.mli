(** One runner per paper artifact (Graphs 1-9, Tables 1-5, and the
    Section 3 NIC tuning numbers).

    Each runner builds fresh simulated worlds, drives the workload, and
    returns a printable {!table} whose shape matches the paper's figure
    or table.  [Quick] scale keeps every experiment in seconds of wall
    time for tests; [Full] runs longer sweeps for the bench harness. *)

type scale = Quick | Full

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
}

val print_table : Format.formatter -> table -> unit

val with_trace : Renofs_trace.Trace.t -> (unit -> 'a) -> 'a
(** [with_trace tr f] runs [f] with [tr] attached to every world any
    experiment builds: each world opens a new {!Renofs_trace.Trace}
    mark-delimited segment labelled with its transport/profile/topology
    name, and warmup phases are gated out with
    [Renofs_trace.Trace.set_enabled].  The sink is detached (for future
    worlds) when [f] returns. *)

val graph1 : ?scale:scale -> unit -> table
(** RTT vs offered load, 100% lookup mix, same-LAN topology, three
    transports. *)

val graph2 : ?scale:scale -> unit -> table
(** As {!graph1} with the 50/50 read/lookup mix. *)

val graph3 : ?scale:scale -> unit -> table
(** Lookup mix across the token ring and two routers. *)

val graph4 : ?scale:scale -> unit -> table
(** Read/lookup mix across the token ring. *)

val graph5 : ?scale:scale -> unit -> table
(** Lookup mix across the 56 Kbit/s line and three routers. *)

val table1 : ?scale:scale -> unit -> table
(** Achieved read rates by transport and interconnect. *)

val graph6 : ?scale:scale -> unit -> table
(** Server CPU per RPC, UDP vs TCP, read mix. *)

val graph7 : ?scale:scale -> unit -> table
(** A trace of read-RPC RTT and the dynamic RTO = A+4D envelope. *)

val graph8 : ?scale:scale -> unit -> table
(** Lookup RTT vs load: Reno server, Reno without its server name
    cache (the paper's ablation), and the reference-port server. *)

val graph9 : ?scale:scale -> unit -> table
(** As {!graph8} with the read/lookup mix. *)

val table2 : ?scale:scale -> unit -> table
(** Modified Andrew Benchmark times, MicroVAXII client. *)

val table3 : ?scale:scale -> unit -> table
(** Modified Andrew Benchmark RPC counts: Reno, Reno-noconsist,
    Ultrix. *)

val table4 : ?scale:scale -> unit -> table
(** Modified Andrew Benchmark times, DS3100 client. *)

val table5 : ?scale:scale -> unit -> table
(** Create-Delete milliseconds by write policy and file size. *)

val section3 : ?scale:scale -> unit -> table
(** Server CPU per RPC with the stock vs tuned DEQNA driver. *)

val leases : ?scale:scale -> unit -> table
(** Extension ablation (not in the paper): the NQNFS-style lease
    protocol's RPC economy against Reno and the unsafe noconsist bound —
    the quantitative check of the paper's "a cache consistency protocol
    would reduce the number of write RPCs by at least half". *)

val scaling : ?scale:scale -> unit -> table
(** Extension (not in the paper, which cites [Keith90] for server
    characterization): aggregate throughput, latency and server CPU as
    the number of client hosts grows. *)

val all : (string * (?scale:scale -> unit -> table)) list
(** Every experiment, keyed by id ("graph1" ... "table5", "section3",
    plus the extensions "leases" and "scaling"). *)
