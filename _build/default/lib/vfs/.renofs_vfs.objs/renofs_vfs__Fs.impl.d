lib/vfs/fs.ml: Bcache Bytes Disk Hashtbl List Namecache Option Printf Renofs_engine String
