(* Transport shootout: the paper's Section 4 question in miniature.
   Run the same Nhfsstone load over UDP-with-fixed-RTO, UDP with dynamic
   RTO + congestion window, and TCP, across the campus internetwork
   (two Ethernets, an 80 Mbit/s token ring, two routers, bursty cross
   traffic), and compare.

     dune exec examples/transport_shootout.exe *)

module Sim = Renofs_engine.Sim
module Proc = Renofs_engine.Proc
module Topology = Renofs_net.Topology
module Udp = Renofs_transport.Udp
module Tcp = Renofs_transport.Tcp
module Nfs_server = Renofs_core.Nfs_server
module Nfs_client = Renofs_core.Nfs_client
module Client_transport = Renofs_core.Client_transport
open Renofs_workload

let run_one name opts =
  let sim = Sim.create () in
  let topo = Topology.build sim { Topology.default_spec with Topology.shape = Topology.Campus } in
  let sudp = Udp.install topo.Topology.server in
  let stcp = Tcp.install topo.Topology.server in
  let server = Nfs_server.create topo.Topology.server ~udp:sudp ~tcp:stcp () in
  Nfs_server.start server;
  let cudp = Udp.install topo.Topology.client in
  let ctcp = Tcp.install topo.Topology.client in
  let fileset =
    Fileset.generate ~dirs:10 ~files_per_dir:20 ~file_size:16384 ~long_names:true
  in
  let result = ref None in
  Proc.spawn sim (fun () ->
      Fileset.preload_server server fileset;
      let m =
        Nfs_client.mount ~udp:cudp ~tcp:ctcp ~server:(Topology.server_id topo)
          ~root:(Nfs_server.root_fhandle server)
          { opts with Nfs_client.mss = 512 }
      in
      let r =
        Nhfsstone.run m fileset
          {
            Nhfsstone.rate = 15.0;
            duration = 60.0;
            children = 4;
            mix = Nhfsstone.read_lookup_mix;
            seed = 11;
          }
      in
      result := Some (r, Client_transport.summary (Nfs_client.transport m)));
  while !result = None do
    Sim.run ~until:(Sim.now sim +. 50.0) sim
  done;
  let r, s = Option.get !result in
  Printf.printf "%-10s  achieved %5.1f op/s  mean latency %6.1f ms  reads %4.2f/s  retransmits %d\n"
    name r.Nhfsstone.achieved
    (r.Nhfsstone.mean_op_latency *. 1000.0)
    r.Nhfsstone.read_rate s.Client_transport.retransmits

let () =
  print_endline "Nhfsstone 50/50 read/lookup at 15 op/s across the campus internetwork:";
  run_one "udp-fixed" Nfs_client.reno_mount;
  run_one "udp-dyn" Nfs_client.reno_dynamic_mount;
  run_one "tcp" Nfs_client.reno_tcp_mount;
  print_endline "\n(the paper's finding: congestion control — either flavour — pays for";
  print_endline " itself once routers and loss are in the path, and TCP is not the";
  print_endline " disaster for NFS that folklore said it was)"
