examples/cache_policies.mli:
