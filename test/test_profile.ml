(* Self-profiler suite: attribution semantics on a fake clock, the
   deterministic counts contract across --jobs, the renofs-profile/1
   JSON (including the attribution-sum check), the Perfetto exporter's
   span pairing, the trace-export metadata header, and the flight
   recorder's trigger paths (stuck driver, invariant FAIL, SLO
   breach). *)

module Probe = Renofs_engine.Probe
module Profile = Renofs_profile.Profile
module Perfetto = Renofs_profile.Perfetto
module Flight = Renofs_profile.Flight
module Trace = Renofs_trace.Trace
module Json = Renofs_json.Json
module Fault = Renofs_fault.Fault
module E = Renofs_workload.Experiments
module R = Renofs_workload.Run_spec
module Scenario = Renofs_scenario.Scenario

let slot s name =
  match
    List.find_opt (fun ss -> ss.Profile.ss_name = name) s.Profile.p_slots
  with
  | Some ss -> ss
  | None -> Alcotest.failf "no slot %S in snapshot" name

let self_sum s =
  List.fold_left (fun a ss -> a +. ss.Profile.ss_self_s) 0.0 s.Profile.p_slots

let tmppath prefix suffix =
  let f = Filename.temp_file prefix suffix in
  Sys.remove f;
  f

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Attribution on a fake clock                                         *)
(* ------------------------------------------------------------------ *)

let test_scoped_attribution () =
  let now = ref 0.0 in
  let p = Profile.create ~clock:(fun () -> !now) () in
  let pr = Profile.probe p in
  Profile.start p;
  now := 1.0;
  let d = pr.Probe.enter Probe.cpu in
  now := 3.0;
  pr.Probe.leave d;
  now := 3.5;
  Profile.stop p;
  let s = Profile.snapshot p in
  Alcotest.(check (float 1e-9)) "wall" 3.5 s.Profile.p_wall_s;
  Alcotest.(check (float 1e-9))
    "harness self" 1.5 (slot s "harness").Profile.ss_self_s;
  Alcotest.(check (float 1e-9)) "cpu self" 2.0 (slot s "cpu").Profile.ss_self_s;
  Alcotest.(check (float 1e-9)) "conserved" s.Profile.p_wall_s (self_sum s);
  Alcotest.(check int) "cpu enters" 1 (slot s "cpu").Profile.ss_enters

(* leave is a truncation: one token unwinds nested frames, and a stale
   token from a resumed fiber is a no-op. *)
let test_leave_truncates () =
  let now = ref 0.0 in
  let p = Profile.create ~clock:(fun () -> !now) () in
  let pr = Profile.probe p in
  Profile.start p;
  now := 1.0;
  let d0 = pr.Probe.enter Probe.link in
  now := 2.0;
  let d1 = pr.Probe.enter Probe.transport in
  now := 3.0;
  pr.Probe.leave d0;
  Alcotest.(check int) "back to harness" Probe.harness (pr.Probe.current ());
  now := 4.0;
  pr.Probe.leave d1 (* stale: deeper than the current stack *);
  Profile.stop p;
  let s = Profile.snapshot p in
  Alcotest.(check (float 1e-9))
    "link self" 1.0 (slot s "link").Profile.ss_self_s;
  Alcotest.(check (float 1e-9))
    "transport self" 1.0 (slot s "transport").Profile.ss_self_s;
  Alcotest.(check (float 1e-9))
    "harness absorbs the rest" 2.0 (slot s "harness").Profile.ss_self_s;
  Alcotest.(check (float 1e-9)) "conserved" 4.0 (self_sum s)

let test_fire_counts_and_durations () =
  let now = ref 0.0 in
  let p = Profile.create ~clock:(fun () -> !now) () in
  let pr = Profile.probe p in
  Profile.start p;
  now := 1.0;
  let d = pr.Probe.fire_enter Probe.link in
  now := 1.5;
  pr.Probe.fire_leave d;
  Profile.stop p;
  let s = Profile.snapshot p in
  Alcotest.(check int) "one probed event" 1 s.Profile.p_events;
  let link = slot s "link" in
  Alcotest.(check int) "link fires" 1 link.Profile.ss_fires;
  Alcotest.(check (float 1e-9))
    "fire duration summed" 0.5 link.Profile.ss_fire_s;
  Alcotest.(check int) "one histogram entry" 1
    (Array.fold_left ( + ) 0 link.Profile.ss_hist)

(* ------------------------------------------------------------------ *)
(* A real profiled run: determinism and conservation                   *)
(* ------------------------------------------------------------------ *)

let profiled_run jobs =
  let p = Profile.create () in
  ignore (E.run_spec ~jobs ~profile:p ((List.assoc "graph1" E.specs) E.Quick));
  p

let p_serial = lazy (profiled_run 1)

let test_counts_deterministic_across_jobs () =
  Alcotest.(check string)
    "enter/fire counts identical at --jobs 1 and 4"
    (Profile.counts (Lazy.force p_serial))
    (Profile.counts (profiled_run 4))

let test_real_run_attribution () =
  let s = Profile.snapshot (Lazy.force p_serial) in
  Alcotest.(check bool) "wall measured" true (s.Profile.p_wall_s > 0.0);
  Alcotest.(check bool) "events probed" true (s.Profile.p_events > 0);
  Alcotest.(check bool) "scheduler entered" true
    ((slot s "scheduler").Profile.ss_enters > 0);
  Alcotest.(check bool) "link events fired" true
    ((slot s "link").Profile.ss_fires > 0);
  Alcotest.(check bool) "server time attributed" true
    ((slot s "server").Profile.ss_self_s > 0.0);
  let err = abs_float (self_sum s -. s.Profile.p_wall_s) in
  Alcotest.(check bool) "self times sum to wall (10%)" true
    (err <= 0.10 *. s.Profile.p_wall_s)

let test_profile_json_roundtrip () =
  let p = Lazy.force p_serial in
  let path = tmppath "renofs_profile" ".json" in
  Profile.write_file ~path p;
  match Profile.read_file path with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
      let orig = Profile.snapshot p in
      Alcotest.(check int)
        "events survive" orig.Profile.p_events s.Profile.p_events;
      Alcotest.(check int) "slot count"
        (List.length orig.Profile.p_slots)
        (List.length s.Profile.p_slots);
      Alcotest.(check int) "fires survive" (slot orig "link").Profile.ss_fires
        (slot s "link").Profile.ss_fires

(* The validator is also the accountant: a profile whose self-times do
   not sum to its wall time is rejected. *)
let test_profile_json_rejects_bad_attribution () =
  let now = ref 0.0 in
  let p = Profile.create ~clock:(fun () -> !now) () in
  Profile.start p;
  now := 2.0;
  Profile.stop p;
  let js = Profile.emit (Profile.snapshot p) in
  (* Inflate the recorded wall so the slot sum can no longer match. *)
  let sub = "\"wall_s\":2" and by = "\"wall_s\":20" in
  let rec replace s =
    let n = String.length sub in
    let rec find i =
      if i + n > String.length s then None
      else if String.sub s i n = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> s
    | Some i ->
        String.sub s 0 i ^ by
        ^ replace (String.sub s (i + n) (String.length s - i - n))
  in
  let tampered = replace js in
  Alcotest.(check bool) "tamper applied" true (tampered <> js);
  let path = tmppath "renofs_profile_bad" ".json" in
  let oc = open_out path in
  output_string oc tampered;
  close_out oc;
  match Profile.read_file path with
  | Ok _ -> Alcotest.fail "mismatched attribution accepted"
  | Error msg -> Alcotest.(check bool) "names the sum" true (contains "sum" msg)

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)
(* ------------------------------------------------------------------ *)

let rec_ ?(node = 0) time ev = { Trace.time; node; ev }

let synthetic_records =
  [
    rec_ 0.0 (Trace.Run_mark { label = "cellA" });
    rec_ 1.0 (Trace.Rpc_send { xid = 1l; proc = 4 });
    (* second RPC overlaps the first: async pairs must not collide *)
    rec_ 1.2 (Trace.Rpc_send { xid = 2l; proc = 6 });
    rec_ ~node:1 1.8 (Trace.Srv_service { xid = 1l; proc = 4; service = 0.2 });
    rec_ 2.0 (Trace.Rpc_reply { xid = 1l; proc = 4; rtt = 1.0 });
    rec_ 2.5 (Trace.Rpc_reply { xid = 2l; proc = 6; rtt = 1.3 });
    rec_ 2.6 (Trace.Rpc_retransmit { xid = 3l; proc = 4; retry = 1; rto = 0.5 });
  ]

let load_events path =
  match Json.load_file path with
  | Error msg -> Alcotest.fail msg
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Json.Arr evs) ->
          List.map
            (function
              | Json.Obj o -> o | _ -> Alcotest.fail "event not an object")
            evs
      | _ -> Alcotest.fail "no traceEvents array")
  | Ok _ -> Alcotest.fail "top level is not an object"

let sfield o name =
  match List.assoc_opt name o with Some (Json.Str s) -> s | _ -> ""

let nfield o name =
  match List.assoc_opt name o with Some (Json.Num n) -> n | _ -> Float.nan

let test_perfetto_export () =
  let now = ref 0.0 in
  let p = Profile.create ~clock:(fun () -> !now) () in
  let pr = Profile.probe p in
  Profile.start p;
  now := 1.0;
  let d = pr.Probe.enter Probe.cpu in
  now := 2.0;
  pr.Probe.leave d;
  Profile.stop p;
  let path = tmppath "renofs_perfetto" ".json" in
  let n =
    Perfetto.export ~path ~profile:(Profile.snapshot p) synthetic_records
  in
  let events = load_events path in
  let non_meta = List.filter (fun o -> sfield o "ph" <> "M") events in
  Alcotest.(check int) "returned count matches the file" n
    (List.length non_meta);
  let bs = List.filter (fun o -> sfield o "ph" = "b") events in
  let es = List.filter (fun o -> sfield o "ph" = "e") events in
  Alcotest.(check int) "two async begins" 2 (List.length bs);
  Alcotest.(check int) "two async ends" 2 (List.length es);
  List.iter
    (fun b ->
      let id = nfield b "id" in
      match List.filter (fun e -> nfield e "id" = id) es with
      | [ e ] ->
          Alcotest.(check bool) "end after begin" true
            (nfield e "ts" >= nfield b "ts")
      | other -> Alcotest.failf "begin id %g has %d ends" id (List.length other))
    bs;
  Alcotest.(check bool) "service slice present" true
    (List.exists
       (fun o -> sfield o "ph" = "X" && sfield o "cat" = "service")
       events);
  Alcotest.(check bool) "retransmit instant present" true
    (List.exists (fun o -> sfield o "cat" = "retransmit") events);
  Alcotest.(check bool) "profiler slices present" true
    (List.exists (fun o -> sfield o "cat" = "profile") events)

(* ------------------------------------------------------------------ *)
(* Trace export metadata header                                        *)
(* ------------------------------------------------------------------ *)

let test_trace_export_header () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record tr ~time:(float_of_int i) ~node:0 Trace.Srv_crash
  done;
  let path = tmppath "renofs_trace" ".jsonl" in
  Trace.export_jsonl tr path;
  let header =
    match String.split_on_char '\n' (read_all path) with
    | h :: _ -> h
    | [] -> Alcotest.fail "empty export"
  in
  Alcotest.(check bool) "schema named" true (contains "renofs-trace/1" header);
  Alcotest.(check bool) "held" true (contains "\"held\":4" header);
  Alcotest.(check bool) "total" true (contains "\"total\":6" header);
  Alcotest.(check bool) "overwritten" true (contains "\"overwritten\":2" header);
  let back = Trace.import_jsonl path in
  Alcotest.(check int) "header skipped on import" 4 (List.length back);
  match back with
  | { Trace.time; _ } :: _ ->
      Alcotest.(check (float 0.0)) "oldest survivor" 3.0 time
  | [] -> Alcotest.fail "no records back"

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let member bundle name = Sys.file_exists (Filename.concat bundle name)

let check_bundle bundle =
  List.iter
    (fun m -> Alcotest.(check bool) m true (member bundle m))
    [
      "MANIFEST.json"; "reason.txt"; "run_spec.json"; "trace_tail.jsonl";
      "profile.json";
    ]

let one_cell_spec ~id run =
  {
    E.sp_id = id;
    sp_title = id;
    sp_header = [ "result" ];
    sp_cells = [ { E.cell_label = id ^ "/one"; cell_run = run } ];
    sp_assemble = (fun rows -> rows);
  }

let test_flight_on_driver_stuck () =
  let dir = tmppath "renofs_flight_stuck" "" in
  let flight = Flight.arm ~dir ~spec_json:"{}" ~seed:7 in
  let spec =
    one_cell_spec ~id:"stuck" (fun _ ->
        raise (E.Driver_stuck "stuck/one: synthetic"))
  in
  Alcotest.check_raises "driver stuck still propagates"
    (E.Driver_stuck "stuck/one: synthetic") (fun () ->
      ignore (E.run_spec ~jobs:1 ~flight spec));
  let bundle = Filename.concat dir "stuck_one" in
  check_bundle bundle;
  Alcotest.(check bool) "reason names the stuck driver" true
    (contains "stuck" (read_all (Filename.concat bundle "reason.txt")))

let test_flight_on_fail_value () =
  let dir = tmppath "renofs_flight_fail" "" in
  let flight = Flight.arm ~dir ~spec_json:"{}" ~seed:0 in
  let spec =
    one_cell_spec ~id:"failcell" (fun _ -> [ E.Text "FAIL: synthetic" ])
  in
  let results = E.run_spec ~jobs:1 ~flight spec in
  Alcotest.(check int) "run completes" 1 (List.length results.E.r_rows);
  let bundle = Filename.concat dir "failcell_one" in
  check_bundle bundle;
  Alcotest.(check bool) "reason carries the verdict" true
    (contains "FAIL: synthetic"
       (read_all (Filename.concat bundle "reason.txt")))

(* The full CLI path: an SLO-breaching scenario under Run_spec with
   rs_flight set leaves a bundle, exactly what
   [nfsbench slo ... --flight DIR] does. *)
let test_flight_on_slo_breach () =
  match Scenario.find_builtin "crash-at-peak" with
  | None -> Alcotest.fail "crash-at-peak builtin missing"
  | Some sc ->
      let sc =
        {
          sc with
          Scenario.sc_name = "crash-noreboot";
          sc_faults =
            [
              Fault.Server_crash
                { at = 12.0; downtime = 9999.0; server = "server0" };
            ];
        }
      in
      let dir = tmppath "renofs_flight_slo" "" in
      let rs = { R.empty with R.rs_jobs = Some 1; rs_flight = Some dir } in
      (match R.execute rs (Scenario.suite_spec [ sc ]) with
      | Error msg -> Alcotest.fail msg
      | Ok results ->
          Alcotest.(check int) "the SLO breach is reported" 1
            (List.length (Scenario.failures results)));
      let bundles =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun d ->
               Sys.is_directory (Filename.concat dir d)
               && member (Filename.concat dir d) "MANIFEST.json")
      in
      (match bundles with
      | [ b ] ->
          let bundle = Filename.concat dir b in
          check_bundle bundle;
          let manifest = read_all (Filename.concat bundle "MANIFEST.json") in
          Alcotest.(check bool) "manifest schema" true
            (contains "renofs-flight/1" manifest);
          Alcotest.(check bool) "run spec preserved" true
            (contains "renofs-runspec/1"
               (read_all (Filename.concat bundle "run_spec.json")))
      | other ->
          Alcotest.failf "expected one bundle, found %d" (List.length other))

let () =
  Alcotest.run "profile"
    [
      ( "attribution",
        [
          Alcotest.test_case "scoped self-time" `Quick test_scoped_attribution;
          Alcotest.test_case "leave truncates" `Quick test_leave_truncates;
          Alcotest.test_case "fire counts" `Quick test_fire_counts_and_durations;
        ] );
      ( "real run",
        [
          Alcotest.test_case "counts deterministic across jobs" `Quick
            test_counts_deterministic_across_jobs;
          Alcotest.test_case "attribution sums to wall" `Quick
            test_real_run_attribution;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_profile_json_roundtrip;
          Alcotest.test_case "rejects bad attribution" `Quick
            test_profile_json_rejects_bad_attribution;
        ] );
      ( "perfetto",
        [ Alcotest.test_case "export pairs spans" `Quick test_perfetto_export ]
      );
      ( "trace header",
        [ Alcotest.test_case "export metadata" `Quick test_trace_export_header ]
      );
      ( "flight",
        [
          Alcotest.test_case "driver stuck" `Quick test_flight_on_driver_stuck;
          Alcotest.test_case "invariant FAIL" `Quick test_flight_on_fail_value;
          Alcotest.test_case "slo breach via run spec" `Quick
            test_flight_on_slo_breach;
        ] );
    ]
