examples/wan_tuning.mli:
