(** Terminal line charts for the regenerated figures.

    The paper's graphs are RTT-vs-load curves; a table of numbers hides
    the shape, so the bench harness renders each graph experiment as an
    ASCII chart too. *)

val render :
  ?width:int ->
  ?height:int ->
  x_label:string ->
  y_label:string ->
  x:float list ->
  series:(string * float list) list ->
  unit ->
  string
(** A chart with one marker per series ([*], [+], [o], [x], [#]), a
    zero-based y axis, and a legend.  Series shorter than [x] are
    truncated to the common length.  Non-finite coordinates (NaN,
    infinities) are skipped and never affect the axis ranges; a chart
    with no finite x at all renders as ["(no data)\n"]. *)

val render_table : Experiments.table -> string option
(** Interpret an experiment table whose first column is numeric x and
    remaining columns are numeric series; [None] when it is not that
    shape (e.g. Tables 2-5). *)
