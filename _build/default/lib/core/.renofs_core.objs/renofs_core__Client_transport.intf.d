lib/core/client_transport.mli: Nfs_proto Renofs_engine Renofs_transport
