lib/core/mountd.mli: Nfs_server
