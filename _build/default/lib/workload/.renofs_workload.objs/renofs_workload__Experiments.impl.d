lib/workload/experiments.ml: Andrew Create_delete Fileset Format List Nhfsstone Option Printf Renofs_core Renofs_engine Renofs_mbuf Renofs_net Renofs_transport Renofs_vfs String
