type priority = Interrupt | Normal

type job = { work : float; finished : (unit -> unit) option }

type t = {
  sim : Sim.t;
  mips : float;
  mutable slowdown : float; (* work multiplier, >= epsilon; 1.0 = nominal *)
  intr_q : job Queue.t;
  norm_q : job Queue.t;
  mutable serving : bool;
  mutable completed : float; (* busy seconds fully served *)
  mutable cur_start : float;
  mutable cur_len : float;
}

let create sim ~mips =
  if mips <= 0.0 then invalid_arg "Cpu.create: mips must be positive";
  {
    sim;
    mips;
    slowdown = 1.0;
    intr_q = Queue.create ();
    norm_q = Queue.create ();
    serving = false;
    completed = 0.0;
    cur_start = 0.0;
    cur_len = 0.0;
  }

let mips t = t.mips
let seconds_of_instructions t instructions = instructions /. (t.mips *. 1e6)
let slowdown t = t.slowdown

let set_slowdown t factor =
  if factor <= 0.0 then invalid_arg "Cpu.set_slowdown: factor must be positive";
  t.slowdown <- factor

let rec serve t =
  let job =
    match Queue.take_opt t.intr_q with
    | Some j -> Some j
    | None -> Queue.take_opt t.norm_q
  in
  match job with
  | None -> t.serving <- false
  | Some job ->
      t.serving <- true;
      t.cur_start <- Sim.now t.sim;
      t.cur_len <- job.work;
      Sim.after t.sim job.work (fun () ->
          t.completed <- t.completed +. job.work;
          t.cur_len <- 0.0;
          (match job.finished with Some f -> f () | None -> ());
          serve t)

let enqueue t priority job =
  let q = match priority with Interrupt -> t.intr_q | Normal -> t.norm_q in
  Queue.add job q;
  if not t.serving then serve t

let consume ?(priority = Normal) t seconds =
  if seconds < 0.0 then invalid_arg "Cpu.consume: negative work";
  if seconds = 0.0 then ()
  else
    let work = seconds *. t.slowdown in
    Proc.suspend (fun resume ->
        enqueue t priority { work; finished = Some resume })

let charge ?(priority = Normal) t seconds =
  if seconds < 0.0 then invalid_arg "Cpu.charge: negative work";
  if seconds > 0.0 then
    enqueue t priority { work = seconds *. t.slowdown; finished = None }

let busy_time t =
  let in_service =
    if t.cur_len > 0.0 then
      Float.min t.cur_len (Sim.now t.sim -. t.cur_start)
    else 0.0
  in
  t.completed +. in_service

let utilization t ~since_time ~since_busy =
  let elapsed = Sim.now t.sim -. since_time in
  if elapsed <= 0.0 then 0.0 else (busy_time t -. since_busy) /. elapsed
