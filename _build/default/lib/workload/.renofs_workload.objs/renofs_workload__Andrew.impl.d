lib/workload/andrew.ml: Array Bytes Char Hashtbl List Printf Renofs_core Renofs_engine Renofs_net String
