(** Wire packets: IP fragments of transport datagrams.

    A transport datagram (one UDP RPC message, or one TCP segment) larger
    than the outgoing link's MTU is carried as several fragments sharing
    an [ip_id].  Losing any one fragment loses the whole datagram — the
    "fragmentation considered harmful" failure mode [Kent87b] that drives
    the paper's transport experiments.  Transport headers are modelled as
    per-datagram virtual bytes counted in the first fragment's wire size;
    [payload] carries only data bytes. *)

type proto = Udp | Tcp

type t = {
  proto : proto;
  src : int;  (** source host id *)
  dst : int;  (** destination host id *)
  src_port : int;
  dst_port : int;
  ip_id : int;  (** datagram identity for reassembly *)
  frag_off : int;  (** byte offset of [payload] within the datagram data *)
  more : bool;  (** more fragments follow *)
  total_data : int;  (** data length of the whole datagram *)
  payload : Renofs_mbuf.Mbuf.t;
  sum : (int * int) option;
      (** UDP checksum metadata, [(data length, Internet checksum)] as
          computed by the sender.  Virtual like the UDP header itself:
          not counted in {!wire_size}, copied onto every fragment, and
          verified (against the reassembled payload) by the receiving
          transport.  [None] means the sender sent without a checksum —
          the Sun-checksums-off configuration. *)
}

val ip_header_bytes : int
(** 20. *)

val proto_header_bytes : proto -> int
(** Virtual header bytes counted in the first fragment's wire size: 8 for
    UDP.  0 for TCP, which writes a real 20-byte header into its
    payload (it needs sequence/ack fields that metadata does not carry). *)

val data_len : t -> int
val wire_size : t -> int
(** Bytes on the wire: IP header + (first fragment only) transport header
    + data. *)

val is_fragmented : t -> bool
(** True if this packet is one piece of a multi-fragment datagram. *)

val make_datagram :
  ?sum:int * int ->
  proto:proto ->
  src:int ->
  dst:int ->
  src_port:int ->
  dst_port:int ->
  ip_id:int ->
  Renofs_mbuf.Mbuf.t ->
  t
(** An unfragmented datagram-as-single-packet (fragment it with
    {!fragment} before transmission if needed).  [sum] is the sender's
    checksum metadata (absent = unchecksummed). *)

val fragment : t -> mtu:int -> t list
(** Split (or further split — routers re-fragment fragments) so every
    piece fits [mtu].  Non-final pieces carry a multiple of 8 data bytes,
    as IP requires.  The input packet's payload chain is consumed.
    Raises [Invalid_argument] if [mtu] cannot fit even one aligned data
    unit. *)
