module Sim = Renofs_engine.Sim
module Rng = Renofs_engine.Rng

type stats = {
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable queue_drops : int;
  mutable error_drops : int;
}

type t = {
  sim : Sim.t;
  name : string;
  bandwidth_bps : float;
  delay : float;
  queue_limit : int;
  loss : float;
  rng : Rng.t;
  deliver : Packet.t -> unit;
  queue : Packet.t Queue.t;
  mutable transmitting : bool;
  stats : stats;
  mutable busy : float;
}

let create sim ~name ~bandwidth_bps ~delay ~queue_limit ?(loss = 0.0) ~rng ~deliver () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  {
    sim;
    name;
    bandwidth_bps;
    delay;
    queue_limit;
    loss;
    rng;
    deliver;
    queue = Queue.create ();
    transmitting = false;
    stats = { packets_sent = 0; bytes_sent = 0; queue_drops = 0; error_drops = 0 };
    busy = 0.0;
  }

let rec start_next t =
  match Queue.take_opt t.queue with
  | None -> t.transmitting <- false
  | Some pkt ->
      t.transmitting <- true;
      let bytes = Packet.wire_size pkt in
      let tx_time = float_of_int (bytes * 8) /. t.bandwidth_bps in
      t.busy <- t.busy +. tx_time;
      Sim.after t.sim tx_time (fun () ->
          t.stats.packets_sent <- t.stats.packets_sent + 1;
          t.stats.bytes_sent <- t.stats.bytes_sent + bytes;
          if t.loss > 0.0 && Rng.chance t.rng t.loss then
            t.stats.error_drops <- t.stats.error_drops + 1
          else
            Sim.after t.sim t.delay (fun () -> t.deliver pkt);
          start_next t)

let send t pkt =
  if Queue.length t.queue >= t.queue_limit then
    t.stats.queue_drops <- t.stats.queue_drops + 1
  else begin
    Queue.add pkt t.queue;
    if not t.transmitting then start_next t
  end

let name t = t.name
let queue_length t = Queue.length t.queue
let stats t = t.stats

let utilization t =
  let now = Sim.now t.sim in
  if now <= 0.0 then 0.0 else t.busy /. now
