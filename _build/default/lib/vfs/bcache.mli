(** Server buffer-cache residency model.

    Tracks which (inode, logical block) pairs are resident, with LRU
    eviction, and charges the CPU for the cost of *searching* the cache.
    4.3BSD Reno chains a vnode's buffers directly off the vnode, making
    the search cheap and independent of cache size; the Sun reference
    port searches a global table.  The paper attributes most of the
    server lookup-rate gap between Reno and Ultrix (Graphs 8-9) to this
    difference, not to the name cache. *)

type search_mode =
  | Vnode_chained  (** constant-cost search (Reno) *)
  | Global_scan  (** cost proportional to resident buffers (reference port) *)

type stats = { mutable hits : int; mutable misses : int }

type t

val create :
  Renofs_engine.Sim.t ->
  Renofs_engine.Cpu.t ->
  blocks:int ->
  search:search_mode ->
  unit ->
  t
(** [blocks] is the cache capacity in buffers (identically sized caches
    were configured for the paper's Reno/Ultrix comparison). *)

val search_mode : t -> search_mode

val lookup : t -> ino:int -> blk:int -> bool
(** Consult the cache, charging search CPU; [true] on hit (refreshes
    LRU).  Must run inside a process. *)

val insert : t -> ino:int -> blk:int -> unit
(** Make a block resident, evicting the LRU victim if full. *)

val invalidate_ino : t -> int -> unit
val resident : t -> int
val stats : t -> stats
