lib/core/mount_proto.ml: Bytes Int32 List Nfs_proto Printf Renofs_xdr
