lib/workload/andrew.mli: Renofs_core
