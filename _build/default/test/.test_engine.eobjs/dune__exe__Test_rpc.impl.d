test/test_rpc.ml: Alcotest Bytes Gen Int32 List QCheck QCheck_alcotest Record_mark Renofs_mbuf Renofs_rpc Renofs_xdr Rpc_msg
