(** The biod pool: daemons that perform asynchronous I/O for the NFS
    client.

    Write-behind and read-ahead RPCs are handed to the pool so the user
    process does not block; with zero daemons the work runs inline and
    the write policy degrades to write-through, exactly as in the
    paper's Table 5 ("With no biods running, the write policy becomes
    write through"). *)

type t

val create : Renofs_engine.Sim.t -> count:int -> t

val count : t -> int

val submit : t -> (unit -> unit) -> unit
(** Queue a job for a daemon; runs inline (blocking the caller) when the
    pool has no daemons. *)

val queued : t -> int
(** Jobs waiting for a daemon. *)

val jobs_run : t -> int
