(** The MOUNT protocol (RFC 1094 Appendix A), program 100005.

    NFS itself has no way to turn a path name into an initial file
    handle — that is the mount protocol's job.  Our server registers it
    on the same UDP stack (port 635, as many systems did) and supports
    the calls the paper's experiments would have used: MNT to obtain a
    root handle, UMNT/UMNTALL to drop the record, DUMP to list current
    mounts and EXPORT to list exported trees. *)

val program : int
(** 100005. *)

val version : int
(** 1. *)

val port : int
(** 635. *)

type call =
  | Mnt_null
  | Mnt of string  (** directory path -> file handle *)
  | Dump  (** list (hostname, path) mount records *)
  | Umnt of string
  | Umntall
  | Export  (** list exported directories *)

type mnt_status = Mnt_ok of Nfs_proto.fhandle | Mnt_error of int

type reply =
  | Rmnt_null
  | Rmnt of mnt_status
  | Rdump of (string * string) list
  | Rumnt
  | Rexport of string list

val proc_of_call : call -> int
val proc_name : int -> string

val encode_call : Renofs_xdr.Xdr.Enc.t -> call -> unit
val decode_call : proc:int -> Renofs_xdr.Xdr.Dec.t -> call
val encode_reply : Renofs_xdr.Xdr.Enc.t -> reply -> unit
val decode_reply : proc:int -> Renofs_xdr.Xdr.Dec.t -> reply
