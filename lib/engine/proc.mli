(** Simulated processes built on OCaml effect handlers.

    A process is plain OCaml code that may block — on a timer, an {!Ivar},
    a {!Mailbox} or a {!Cpu} — without inverting control.  Blocking is a
    [Suspend] effect: the process hands a [resume] thunk to a registrar and
    is continued later from the event queue, which preserves deterministic
    ordering. *)

val spawn : Sim.t -> (unit -> unit) -> unit
(** Start [body] as a new process at the current time (it first runs from
    the event queue, not synchronously). *)

val run : (unit -> unit) -> unit
(** Run [body] as a process synchronously, right now, with no event in
    between — the fiber-allocating half of {!spawn}.  For dispatch
    points that are already at the right simulated moment (e.g. a
    packet handler firing from a CPU-completion event) and only need a
    suspension context for the code they call. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process; [register resume] must
    arrange for [resume] to be called exactly once, later.  Only valid
    inside a process. *)

val sleep : Sim.t -> float -> unit
(** Block the calling process for a virtual duration. *)

val yield : Sim.t -> unit
(** Reschedule the calling process at the current time, letting other
    ready events run first. *)

(** Write-once cells; the simulated analogue of a reply slot. *)
module Ivar : sig
  type 'a t

  val create : Sim.t -> 'a t
  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val is_full : 'a t -> bool
  val peek : 'a t -> 'a option

  val read : 'a t -> 'a
  (** Block until filled; returns immediately if already full. *)
end

(** Unbounded FIFO queues with blocking receive. *)
module Mailbox : sig
  type 'a t

  val create : Sim.t -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

(** Counting semaphore; used for bounded resources such as biod slots. *)
module Semaphore : sig
  type t

  val create : Sim.t -> int -> t
  val acquire : t -> unit
  val release : t -> unit
  val available : t -> int
end
