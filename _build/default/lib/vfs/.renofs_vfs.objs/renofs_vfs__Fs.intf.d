lib/vfs/fs.mli: Bcache Disk Namecache Renofs_engine
